// Benchmarks regenerating every experiment of EXPERIMENTS.md (E1–E11, one
// bench per table/figure anchor) plus micro-benchmarks of the substrate.
// Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benches report the same quantities as cmd/experiments as
// per-op metrics (messages, envelopes, relaxations, ...), so the shape
// comparisons of the paper can be read off `-bench` output directly.
package declpat_test

import (
	"testing"

	"declpat"
	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/experiments"
	"declpat/internal/gen"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
	"declpat/internal/strategy"
)

const (
	benchScale      = 11 // 2^11 = 2048 vertices
	benchEdgeFactor = 8
	benchSeed       = 42
)

func benchGraph(b *testing.B) (int, []distgraph.Edge) {
	b.Helper()
	n, edges := gen.RMAT(benchScale, benchEdgeFactor, gen.Weights{Min: 1, Max: 100}, benchSeed)
	return n, edges
}

type ssspBench struct {
	u   *am.Universe
	s   *algorithms.SSSP
	eng *pattern.Engine
}

func newSSSPBench(cfg am.Config, n int, edges []distgraph.Edge, popts pattern.PlanOptions,
	mk func(u *am.Universe, s *algorithms.SSSP)) *ssspBench {
	u := am.NewUniverse(cfg)
	d := distgraph.NewBlockDist(n, cfg.Ranks)
	g := distgraph.Build(d, edges, distgraph.Options{})
	eng := pattern.NewEngine(u, g, pmap.NewLockMap(d, 1), popts)
	s := algorithms.NewSSSP(eng)
	mk(u, s)
	return &ssspBench{u: u, s: s, eng: eng}
}

// runSSSPBench rebuilds the universe per iteration (universes are
// single-Run) and reports message metrics from the final iteration.
func runSSSPBench(b *testing.B, cfg am.Config, popts pattern.PlanOptions,
	mk func(u *am.Universe, s *algorithms.SSSP)) {
	n, edges := benchGraph(b)
	b.ResetTimer()
	var last *ssspBench
	for i := 0; i < b.N; i++ {
		sb := newSSSPBench(cfg, n, edges, popts, mk)
		sb.u.Run(func(r *am.Rank) { sb.s.Run(r, 0) })
		last = sb
	}
	b.StopTimer()
	b.ReportMetric(float64(last.u.Stats.MsgsSent()), "msgs/op")
	b.ReportMetric(float64(last.u.Stats.Envelopes()), "envelopes/op")
	b.ReportMetric(float64(last.s.Relax.Stats.ModsChanged.Load()), "relax-ok/op")
}

// BenchmarkE1SSSPStrategies — Fig. 1: fixed-point vs Δ-stepping work
// profiles.
func BenchmarkE1SSSPStrategies(b *testing.B) {
	cfg := am.Config{Ranks: 4, ThreadsPerRank: 2}
	b.Run("fixed-point", func(b *testing.B) {
		runSSSPBench(b, cfg, pattern.DefaultPlanOptions(),
			func(u *am.Universe, s *algorithms.SSSP) { s.UseFixedPoint() })
	})
	for _, delta := range []int64{8, 64, 512} {
		b.Run("delta-"+itoa(int(delta)), func(b *testing.B) {
			runSSSPBench(b, cfg, pattern.DefaultPlanOptions(),
				func(u *am.Universe, s *algorithms.SSSP) { s.UseDelta(u, delta) })
		})
	}
	b.Run("delta-dist-64x2", func(b *testing.B) {
		runSSSPBench(b, cfg, pattern.DefaultPlanOptions(),
			func(u *am.Universe, s *algorithms.SSSP) { s.UseDeltaDistributed(u, 64, 2) })
	})
}

// BenchmarkE2MergeOptimization — Fig. 6/§IV-A: merged vs unmerged
// evaluation, static plan difference measured at runtime on plain SSSP.
func BenchmarkE2MergeOptimization(b *testing.B) {
	for _, merged := range []bool{true, false} {
		name := "merged"
		if !merged {
			name = "unmerged"
		}
		b.Run(name, func(b *testing.B) {
			runSSSPBench(b, am.Config{Ranks: 4, ThreadsPerRank: 2},
				pattern.PlanOptions{Merge: merged, Fold: true},
				func(u *am.Universe, s *algorithms.SSSP) { s.UseFixedPoint() })
		})
	}
}

// BenchmarkE3CCParallelSearch — Fig. 3: parallel search CC with different
// epoch_flush pacing.
func BenchmarkE3CCParallelSearch(b *testing.B) {
	n, edges := benchGraph(b)
	for _, fe := range []int{1, 64, 1 << 30} {
		name := "flush-" + itoa(fe)
		if fe == 1<<30 {
			name = "flush-inf"
		}
		b.Run(name, func(b *testing.B) {
			var last *am.Universe
			for i := 0; i < b.N; i++ {
				u := am.NewUniverse(am.Config{Ranks: 4, ThreadsPerRank: 2})
				d := distgraph.NewBlockDist(n, 4)
				g := distgraph.Build(d, edges, distgraph.Options{Symmetrize: true})
				lm := pmap.NewLockMap(d, 1)
				eng := pattern.NewEngine(u, g, lm, pattern.DefaultPlanOptions())
				c := algorithms.NewCC(eng, lm)
				c.FlushEvery = fe
				u.Run(func(r *am.Rank) { c.Run(r) })
				last = u
			}
			b.StopTimer()
			b.ReportMetric(float64(last.Stats.MsgsSent()), "msgs/op")
		})
	}
}

// BenchmarkE4PlannerModes — Fig. 5: planner compile cost and message counts
// for naive vs direct gather ordering.
func BenchmarkE4PlannerModes(b *testing.B) {
	for _, naive := range []bool{false, true} {
		name := "direct"
		if naive {
			name = "naive-dfs"
		}
		b.Run(name, func(b *testing.B) {
			tables := 0
			for i := 0; i < b.N; i++ {
				ts := experiments.E4Planner(experiments.Scale{})
				tables += len(ts)
			}
			_ = tables
		})
	}
}

// BenchmarkE5Coalescing — §IV: coalescing factor sweep.
func BenchmarkE5Coalescing(b *testing.B) {
	for _, cs := range []int{1, 16, 256} {
		b.Run("coalesce-"+itoa(cs), func(b *testing.B) {
			runSSSPBench(b, am.Config{Ranks: 4, ThreadsPerRank: 2, CoalesceSize: cs},
				pattern.DefaultPlanOptions(),
				func(u *am.Universe, s *algorithms.SSSP) { s.UseFixedPoint() })
		})
	}
}

// BenchmarkE6ReductionCache — §IV: caching/reduction layer on hand-written
// SSSP.
func BenchmarkE6ReductionCache(b *testing.B) {
	n, edges := benchGraph(b)
	for _, cached := range []bool{false, true} {
		name := "cache-off"
		if cached {
			name = "cache-on"
		}
		b.Run(name, func(b *testing.B) {
			var last *am.Universe
			for i := 0; i < b.N; i++ {
				u := am.NewUniverse(am.Config{Ranks: 4, ThreadsPerRank: 2, CoalesceSize: 256})
				d := distgraph.NewBlockDist(n, 4)
				g := distgraph.Build(d, edges, distgraph.Options{})
				h := algorithms.NewHandSSSP(u, g)
				if cached {
					h.WithReductionCache()
				}
				u.Run(func(r *am.Rank) { h.Run(r, 0) })
				last = u
			}
			b.StopTimer()
			b.ReportMetric(float64(last.Stats.MsgsSent()), "msgs/op")
			b.ReportMetric(float64(last.Stats.MsgsSuppressed()), "suppressed/op")
		})
	}
}

// BenchmarkE7Scaling — strong scaling over ranks × threads.
func BenchmarkE7Scaling(b *testing.B) {
	for _, rc := range [][2]int{{1, 1}, {2, 2}, {4, 2}, {8, 2}} {
		b.Run("ranks-"+itoa(rc[0])+"x"+itoa(rc[1]), func(b *testing.B) {
			runSSSPBench(b, am.Config{Ranks: rc[0], ThreadsPerRank: rc[1]},
				pattern.DefaultPlanOptions(),
				func(u *am.Universe, s *algorithms.SSSP) { s.UseFixedPoint() })
		})
	}
}

// BenchmarkE8Termination — atomic vs four-counter detectors.
func BenchmarkE8Termination(b *testing.B) {
	for _, det := range []am.DetectorKind{am.DetectorAtomic, am.DetectorFourCounter} {
		b.Run(det.String(), func(b *testing.B) {
			runSSSPBench(b, am.Config{Ranks: 4, ThreadsPerRank: 2, Detector: det},
				pattern.DefaultPlanOptions(),
				func(u *am.Universe, s *algorithms.SSSP) { s.UseFixedPoint() })
		})
	}
}

// BenchmarkE9AbstractionOverhead — pattern engine vs hand-written AM++.
func BenchmarkE9AbstractionOverhead(b *testing.B) {
	n, edges := benchGraph(b)
	b.Run("pattern", func(b *testing.B) {
		runSSSPBench(b, am.Config{Ranks: 4, ThreadsPerRank: 2},
			pattern.DefaultPlanOptions(),
			func(u *am.Universe, s *algorithms.SSSP) { s.UseFixedPoint() })
	})
	b.Run("hand-written", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u := am.NewUniverse(am.Config{Ranks: 4, ThreadsPerRank: 2})
			d := distgraph.NewBlockDist(n, 4)
			g := distgraph.Build(d, edges, distgraph.Options{})
			h := algorithms.NewHandSSSP(u, g)
			u.Run(func(r *am.Rank) { h.Run(r, 0) })
		}
	})
}

// BenchmarkE10Folding — Fig. 6: with/without local-subexpression folding.
func BenchmarkE10Folding(b *testing.B) {
	for _, fold := range []bool{true, false} {
		name := "fold-on"
		if !fold {
			name = "fold-off"
		}
		b.Run(name, func(b *testing.B) {
			runSSSPBench(b, am.Config{Ranks: 4, ThreadsPerRank: 2},
				pattern.PlanOptions{Merge: true, Fold: fold},
				func(u *am.Universe, s *algorithms.SSSP) { s.UseFixedPoint() })
		})
	}
}

// BenchmarkE11PointerJump — §II-B: once(cc_jump) chain collapse.
func BenchmarkE11PointerJump(b *testing.B) {
	for _, L := range []int{64, 512} {
		b.Run("chain-"+itoa(L), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				u := am.NewUniverse(am.Config{Ranks: 4, ThreadsPerRank: 1})
				d := distgraph.NewBlockDist(L, 4)
				g := distgraph.Build(d, gen.Path(L, gen.Weights{}, 0), distgraph.Options{})
				lm := pmap.NewLockMap(d, 1)
				eng := pattern.NewEngine(u, g, lm, pattern.DefaultPlanOptions())
				p := pattern.New("Jump")
				chg := p.VertexProp("chg")
				a := p.Action("cc_jump", pattern.None())
				cv := chg.At(pattern.V())
				cc := chg.AtVal(cv)
				a.If(pattern.Lt(cc, cv)).Set(chg.At(pattern.V()), cc)
				cmap := pmap.NewVertexWord(d, 0)
				bound, err := eng.Bind(p, pattern.Bindings{"chg": cmap})
				if err != nil {
					b.Fatal(err)
				}
				jump := bound.Action("cc_jump")
				u.Run(func(r *am.Rank) {
					cmap.ForEachLocal(r.ID(), func(v distgraph.Vertex, _ int64) {
						if v > 0 {
							cmap.Set(r.ID(), v, int64(v)-1)
						}
					})
					r.Barrier()
					locals := algorithms.LocalVertices(g, r)
					for strategy.Once(r, jump, locals) {
					}
				})
			}
		})
	}
}

// BenchmarkE12LightHeavy — §II-A: Δ-stepping with/without the light/heavy
// split.
func BenchmarkE12LightHeavy(b *testing.B) {
	b.Run("plain-delta-16", func(b *testing.B) {
		runSSSPBench(b, am.Config{Ranks: 4, ThreadsPerRank: 2},
			pattern.DefaultPlanOptions(),
			func(u *am.Universe, s *algorithms.SSSP) { s.UseDelta(u, 16) })
	})
	b.Run("light-heavy-16", func(b *testing.B) {
		runSSSPBench(b, am.Config{Ranks: 4, ThreadsPerRank: 2},
			pattern.DefaultPlanOptions(),
			func(u *am.Universe, s *algorithms.SSSP) { s.UseDeltaLightHeavy(u, 16) })
	})
}

// BenchmarkE13PageRank — §III-A: push (out-edges) vs pull (in-edges).
func BenchmarkE13PageRank(b *testing.B) {
	n, edges := benchGraph(b)
	for _, mode := range []algorithms.PageRankMode{algorithms.PageRankPush, algorithms.PageRankPull} {
		name := "push"
		gopts := distgraph.Options{}
		if mode == algorithms.PageRankPull {
			name = "pull"
			gopts.Bidirectional = true
		}
		b.Run(name, func(b *testing.B) {
			var last *am.Universe
			for i := 0; i < b.N; i++ {
				u := am.NewUniverse(am.Config{Ranks: 4, ThreadsPerRank: 2})
				d := distgraph.NewBlockDist(n, 4)
				g := distgraph.Build(d, edges, gopts)
				eng := pattern.NewEngine(u, g, pmap.NewLockMap(d, 1), pattern.DefaultPlanOptions())
				pr := algorithms.NewPageRank(eng, mode)
				pr.MaxIters = 5
				pr.Tolerance = 0
				u.Run(func(r *am.Rank) { pr.Run(r) })
				last = u
			}
			b.StopTimer()
			b.ReportMetric(float64(last.Stats.MsgsSent()), "msgs/op")
		})
	}
}

// BenchmarkE17Observability measures the observability substrate on the
// fixed-point SSSP: the legacy single-shard counter layout vs per-rank
// shards, then the optional timing histograms and span tracing on top.
// Sharded must be no slower than unsharded.
func BenchmarkE17Observability(b *testing.B) {
	for _, v := range []struct {
		name string
		cfg  am.Config
	}{
		{"unsharded", am.Config{Ranks: 4, ThreadsPerRank: 2, UnshardedStats: true}},
		{"sharded", am.Config{Ranks: 4, ThreadsPerRank: 2}},
		{"timing", am.Config{Ranks: 4, ThreadsPerRank: 2, Timing: true}},
		{"tracing", am.Config{Ranks: 4, ThreadsPerRank: 2, Timing: true, TraceCapacity: 1 << 20}},
	} {
		b.Run(v.name, func(b *testing.B) {
			runSSSPBench(b, v.cfg, pattern.DefaultPlanOptions(),
				func(u *am.Universe, s *algorithms.SSSP) { s.UseFixedPoint() })
		})
	}
}

// BenchmarkE19Lineage measures the causal lineage plane on the traced
// fixed-point SSSP: per-handler id stamping, parent propagation through
// coalescing, and the handler trace events, vs the same traced run with
// lineage forced off.
func BenchmarkE19Lineage(b *testing.B) {
	for _, v := range []struct {
		name string
		cfg  am.Config
	}{
		{"lineage-off", am.Config{Ranks: 4, ThreadsPerRank: 2, TraceCapacity: 1 << 20, Lineage: am.LineageOff}},
		{"lineage-on", am.Config{Ranks: 4, ThreadsPerRank: 2, TraceCapacity: 1 << 20}},
	} {
		b.Run(v.name, func(b *testing.B) {
			runSSSPBench(b, v.cfg, pattern.DefaultPlanOptions(),
				func(u *am.Universe, s *algorithms.SSSP) { s.UseFixedPoint() })
		})
	}
}

// BenchmarkGobTransport measures the cost of real serialization on the
// engine's messages.
func BenchmarkGobTransport(b *testing.B) {
	for _, wire := range []bool{false, true} {
		name := "in-memory"
		if wire {
			name = "gob-wire"
		}
		b.Run(name, func(b *testing.B) {
			n, edges := benchGraph(b)
			var last *am.Universe
			for i := 0; i < b.N; i++ {
				sb := newSSSPBench(am.Config{Ranks: 4, ThreadsPerRank: 2}, n, edges,
					pattern.DefaultPlanOptions(),
					func(u *am.Universe, s *algorithms.SSSP) { s.UseFixedPoint() })
				if wire {
					sb.eng.MsgType().WithGobTransport()
				}
				sb.u.Run(func(r *am.Rank) { sb.s.Run(r, 0) })
				last = sb.u
			}
			b.StopTimer()
			b.ReportMetric(float64(last.Stats.WireBytes()), "wire-bytes/op")
		})
	}
}

// --- Substrate micro-benchmarks ---

// BenchmarkMessageThroughput measures raw substrate throughput: messages
// delivered per second through coalescing + queues + handlers.
func BenchmarkMessageThroughput(b *testing.B) {
	for _, cs := range []int{1, 64} {
		b.Run("coalesce-"+itoa(cs), func(b *testing.B) {
			u := am.NewUniverse(am.Config{Ranks: 2, ThreadsPerRank: 2, CoalesceSize: cs})
			mt := am.Register(u, "m", func(r *am.Rank, m int64) {})
			b.ResetTimer()
			u.Run(func(r *am.Rank) {
				r.Epoch(func(ep *am.Epoch) {
					if r.ID() != 0 {
						return
					}
					for i := 0; i < b.N; i++ {
						mt.SendTo(r, 1, int64(i))
					}
				})
			})
		})
	}
}

// BenchmarkEpochOverhead measures the fixed cost of an empty epoch
// (barriers + termination detection).
func BenchmarkEpochOverhead(b *testing.B) {
	for _, det := range []am.DetectorKind{am.DetectorAtomic, am.DetectorFourCounter} {
		b.Run(det.String(), func(b *testing.B) {
			u := am.NewUniverse(am.Config{Ranks: 4, ThreadsPerRank: 1, Detector: det})
			am.Register(u, "m", func(r *am.Rank, m int64) {})
			b.ResetTimer()
			u.Run(func(r *am.Rank) {
				for i := 0; i < b.N; i++ {
					r.Epoch(func(ep *am.Epoch) {})
				}
			})
		})
	}
}

// BenchmarkBuckets measures the Δ-stepping bucket structure.
func BenchmarkBuckets(b *testing.B) {
	u := am.NewUniverse(am.Config{Ranks: 1})
	u.Run(func(r *am.Rank) {
		bk := strategy.NewBuckets(r, 16)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bk.Insert(distgraph.Vertex(i), int64(i%1024))
			if i%4 == 3 {
				idx := bk.MinNonEmpty()
				for j := 0; j < 4; j++ {
					bk.Pop(idx)
				}
			}
		}
	})
}

// BenchmarkGraphBuild measures distributed CSR construction.
func BenchmarkGraphBuild(b *testing.B) {
	n, edges := benchGraph(b)
	for _, bidir := range []bool{false, true} {
		name := "directed"
		if bidir {
			name = "bidirectional"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				distgraph.Build(distgraph.NewBlockDist(n, 4), edges, distgraph.Options{Bidirectional: bidir})
			}
		})
	}
}

// BenchmarkPatternCompile measures the §IV analysis + planning cost.
func BenchmarkPatternCompile(b *testing.B) {
	n := 16
	edges := gen.Path(n, gen.Weights{}, 0)
	for i := 0; i < b.N; i++ {
		u := am.NewUniverse(am.Config{Ranks: 1})
		d := distgraph.NewBlockDist(n, 1)
		g := distgraph.Build(d, edges, distgraph.Options{})
		lm := pmap.NewLockMap(d, 1)
		eng := pattern.NewEngine(u, g, lm, pattern.DefaultPlanOptions())
		_, err := eng.Bind(algorithms.CCPattern(), pattern.Bindings{
			"pnt":  pmap.NewVertexWord(d, 0),
			"chg":  pmap.NewVertexWord(d, 0),
			"conf": pmap.NewVertexSet(d, lm),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFacadeQuickstart exercises the public facade end to end.
func BenchmarkFacadeQuickstart(b *testing.B) {
	n, edges := declpat.RMAT(9, 8, declpat.WeightSpec{Min: 1, Max: 10}, 3)
	for i := 0; i < b.N; i++ {
		u := declpat.New(2, declpat.WithThreads(1))
		d := declpat.NewBlockDist(n, 2)
		g := declpat.BuildGraph(d, edges, declpat.GraphOptions{})
		eng := declpat.NewEngine(u, g, declpat.NewLockMap(d, 1), declpat.DefaultPlanOptions())
		s := declpat.NewSSSP(eng)
		u.Run(func(r *declpat.Rank) { s.Run(r, 0) })
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
