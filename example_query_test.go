package declpat_test

import (
	"fmt"

	"declpat"
)

// ExampleNewQueryService runs a resident query service over a small path
// graph and answers one BFS query: build the universe, graph, and engine as
// usual, construct the service before Universe.Run, drive the universe with
// Serve, and submit queries from any goroutine.
func ExampleNewQueryService() {
	const n = 8
	edges := declpat.PathGraph(n, declpat.WeightSpec{Min: 1, Max: 1}, 1)
	u := declpat.New(2, declpat.WithThreads(1))
	dist := declpat.NewBlockDist(n, 2)
	g := declpat.BuildGraph(dist, edges, declpat.GraphOptions{})
	eng := declpat.NewEngine(u, g, declpat.NewLockMap(dist, 1), declpat.DefaultPlanOptions())
	svc := declpat.NewQueryService(eng, declpat.WithMaxFusion(4))

	served := make(chan error, 1)
	go func() { served <- svc.Serve() }()

	t, err := svc.Submit(declpat.QueryRequest{Algo: declpat.QueryBFS, Source: 0})
	if err != nil {
		fmt.Println("submit:", err)
		return
	}
	res, err := t.Wait()
	if err != nil {
		fmt.Println("wait:", err)
		return
	}
	fmt.Println("hops 0→7:", res.Values[7])

	svc.Stop()
	<-served
	// Output:
	// hops 0→7: 7
}
