package declpat_test

import (
	"strings"
	"sync"
	"testing"

	"declpat"
	"declpat/internal/seq"
)

// TestPublicAPIQuickstart exercises the facade end to end: build a universe
// and graph, author the paper's pattern through the public combinators, run
// it with a public strategy, and verify.
func TestPublicAPIQuickstart(t *testing.T) {
	n, edges := declpat.RMAT(8, 8, declpat.WeightSpec{Min: 1, Max: 30}, 11)
	want := seq.Dijkstra(n, edges, 0)

	u := declpat.New(3, declpat.WithThreads(2))
	dist := declpat.NewBlockDist(n, 3)
	g := declpat.BuildGraph(dist, edges, declpat.GraphOptions{})
	eng := declpat.NewEngine(u, g, declpat.NewLockMap(dist, 1), declpat.DefaultPlanOptions())

	// Author the Fig. 2 pattern through the facade.
	p := declpat.NewPattern("SSSP")
	dmapProp := p.VertexProp("dist")
	wProp := p.EdgeProp("weight")
	relax := p.Action("relax", declpat.GenOutEdges())
	d := declpat.Add(dmapProp.At(declpat.AtV()), wProp.At(declpat.AtE()))
	relax.If(declpat.Lt(d, dmapProp.At(declpat.AtTrg()))).Set(dmapProp.At(declpat.AtTrg()), d)

	dmap := declpat.NewVertexWordMap(dist, declpat.Inf)
	bound, err := eng.Bind(p, declpat.Bindings{"dist": dmap, "weight": declpat.WeightMap(g)})
	if err != nil {
		t.Fatal(err)
	}
	fp := declpat.NewFixedPoint(bound.Action("relax"))
	u.Run(func(r *declpat.Rank) {
		var seeds []declpat.Vertex
		if g.Owner(0) == r.ID() {
			dmap.Set(r.ID(), 0, 0)
			seeds = []declpat.Vertex{0}
		}
		r.Barrier()
		fp.Run(r, seeds)
	})
	got := dmap.Gather()
	for v := range want {
		w := want[v]
		if w == seq.Inf {
			w = declpat.Inf
		}
		if got[v] != w {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], w)
		}
	}
}

// TestPublicAPIAlgorithms smoke-tests every packaged algorithm constructor
// through the facade on one small graph each.
func TestPublicAPIAlgorithms(t *testing.T) {
	n, edges := declpat.Torus2D(6, 6, declpat.WeightSpec{Min: 1, Max: 5}, 1)
	mk := func(gopts declpat.GraphOptions) (*declpat.Universe, *declpat.Engine, *declpat.LockMap, declpat.Distribution) {
		u := declpat.New(2, declpat.WithThreads(1))
		dist := declpat.NewCyclicDist(n, 2)
		g := declpat.BuildGraphParallel(dist, edges, gopts)
		lm := declpat.NewLockMap(dist, 1)
		return u, declpat.NewEngine(u, g, lm, declpat.DefaultPlanOptions()), lm, dist
	}
	{
		u, eng, _, _ := mk(declpat.GraphOptions{})
		s := declpat.NewSSSP(eng).UseDelta(u, 4)
		u.Run(func(r *declpat.Rank) { s.Run(r, 0) })
		if s.Dist.Gather()[0] != 0 {
			t.Error("sssp source distance")
		}
	}
	{
		u, eng, lm, _ := mk(declpat.GraphOptions{Symmetrize: true})
		c := declpat.NewCC(eng, lm)
		u.Run(func(r *declpat.Rank) { c.Run(r) })
		comp := c.Comp.Gather()
		for v := range comp {
			if comp[v] != comp[0] {
				t.Fatal("torus should be one component")
			}
		}
	}
	{
		u, eng, _, _ := mk(declpat.GraphOptions{Symmetrize: true})
		m := declpat.NewMIS(eng)
		u.Run(func(r *declpat.Rank) { m.Run(r) })
	}
	{
		u, eng, _, _ := mk(declpat.GraphOptions{Bidirectional: true})
		pr := declpat.NewPageRank(eng, declpat.PageRankPull)
		pr.MaxIters = 3
		u.Run(func(r *declpat.Rank) { pr.Run(r) })
	}
	{
		u, eng, _, _ := mk(declpat.GraphOptions{Symmetrize: true})
		kc := declpat.NewKCore(eng, 2)
		u.Run(func(r *declpat.Rank) { kc.Run(r) })
	}
	{
		u, eng, _, _ := mk(declpat.GraphOptions{})
		b := declpat.NewBFSTree(eng)
		u.Run(func(r *declpat.Rank) { b.Run(r, 0) })
	}
	{
		u, eng, _, _ := mk(declpat.GraphOptions{})
		w := declpat.NewWidest(eng)
		dcount := declpat.NewDegreeCount(eng)
		u.Run(func(r *declpat.Rank) {
			w.Run(r, 0)
			dcount.Run(r)
		})
	}
}

// TestPublicAPITranslator round-trips the facade's GenerateGo.
func TestPublicAPITranslator(t *testing.T) {
	src, err := declpat.GenerateGo(declpat.SSSPPattern(), declpat.DefaultPlanOptions(), "out")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "package out") || !strings.Contains(src, "atomic") && !strings.Contains(src, "Min") {
		t.Fatalf("unexpected generated source header")
	}
}

// TestPublicAPIStats exercises the workload helpers.
func TestPublicAPIStats(t *testing.T) {
	edges := declpat.SmallWorld(50, 4, 0.2, declpat.WeightSpec{Min: 1, Max: 3}, 4)
	s := declpat.StatsOf(50, edges)
	if s.Edges != 100 || s.Vertices != 50 {
		t.Fatalf("%+v", s)
	}
	if s.MinW < 1 || s.MaxW > 3 {
		t.Fatalf("weights %+v", s)
	}
}

// TestPublicAPICodecSeam exercises the exported message-type and codec
// surface: RegisterMsgType with options, the fixed/gob codec constructors,
// and a custom Codec implementation, all without touching internal/am.
func TestPublicAPICodecSeam(t *testing.T) {
	type pair struct {
		V declpat.Vertex
		D int64
	}
	if !declpat.HasFixedLayout[pair]() {
		t.Fatal("pair should have a fixed layout")
	}
	if declpat.HasFixedLayout[struct{ S string }]() {
		t.Fatal("string payloads must not qualify for the fixed codec")
	}

	run := func(opt declpat.MsgOption[pair]) int64 {
		u := declpat.New(2, declpat.WithThreads(1), declpat.WithCoalesce(8))
		var sum int64
		var mu sync.Mutex
		opts := []declpat.MsgOption[pair]{
			declpat.WithAddresser[pair](func(m pair) int { return int(m.V) % 2 }),
		}
		if opt != nil {
			opts = append(opts, opt)
		}
		mt := declpat.RegisterMsgType(u, "pair", func(r *declpat.Rank, m pair) {
			mu.Lock()
			sum += int64(m.V) + m.D
			mu.Unlock()
		}, opts...)
		if err := u.Run(func(r *declpat.Rank) {
			r.Epoch(func(ep *declpat.EpochHandle) {
				for i := 0; i < 50; i++ {
					mt.Send(r, pair{V: declpat.Vertex(i), D: int64(i) * 3})
				}
			})
		}); err != nil {
			t.Fatal(err)
		}
		return sum
	}

	fixed, err := declpat.FixedCodec[pair]()
	if err != nil {
		t.Fatal(err)
	}
	base := run(nil)
	for name, opt := range map[string]declpat.MsgOption[pair]{
		"wire-auto":   declpat.WithWire[pair](),
		"codec-fixed": declpat.WithCodec(fixed),
		"codec-gob":   declpat.WithCodec(declpat.GobCodec[pair]()),
	} {
		if got := run(opt); got != base {
			t.Fatalf("%s: sum = %d, want %d", name, got, base)
		}
	}
}
