// Telemetry: run BFS with the live telemetry plane on — per-phase kernel
// timers, a counter sampler, and an OpenMetrics /metrics endpoint served
// while the run is in flight.
//
// Single process:
//
//	go run ./examples/telemetry
//
// Two processes (the README quickstart): start the relay worker, then point
// -relay at it. The universe's data plane splices through the worker over
// Unix-domain sockets, and the worker's connection counters and splice-phase
// histograms are queried over the same address and merged into the
// coordinator's telemetry — visible in the printed per-process breakdown and
// on /metrics under process="relay":
//
//	go run ./cmd/declpat-worker -listen unix:///tmp/declpat-relay.sock &
//	go run ./examples/telemetry -relay unix:///tmp/declpat-relay.sock
//
// With -hold the process keeps serving /metrics after the run finishes, so
// a scraper (curl, Prometheus) can collect the final state:
//
//	go run ./examples/telemetry -hold 30s &
//	curl http://127.0.0.1:9140/metrics
package main

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"declpat"
)

func main() {
	relay := ""
	listen := "127.0.0.1:9140"
	scale := 10
	hold := time.Duration(0)
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-relay":
			i++
			relay = args[i]
		case "-listen":
			i++
			listen = args[i]
		case "-hold":
			i++
			d, err := time.ParseDuration(args[i])
			if err != nil {
				fmt.Fprintln(os.Stderr, "telemetry: bad -hold:", err)
				os.Exit(2)
			}
			hold = d
		default:
			fmt.Fprintf(os.Stderr, "telemetry: unknown flag %q (want -relay ADDR, -listen ADDR, -hold DUR)\n", args[i])
			os.Exit(2)
		}
	}

	const ranks = 4
	opts := []declpat.Option{declpat.WithThreads(2), declpat.WithTiming()}
	if relay != "" {
		// The socket transport needs a scheme-matched network; the relay
		// address decides it (unix:// or tcp://).
		network := "tcp"
		if strings.HasPrefix(relay, "unix://") {
			network = "unix"
		}
		opts = append(opts, declpat.WithTransport(declpat.SockTransport(
			declpat.SockOptions{Network: network, Relay: relay})))
	}
	u := declpat.New(ranks, opts...)

	n, edges := declpat.RMAT(scale, 8, declpat.WeightSpec{}, 42)
	dist := declpat.NewBlockDist(n, ranks)
	g := declpat.BuildGraph(dist, edges, declpat.GraphOptions{})
	eng := declpat.NewEngine(u, g, declpat.NewLockMap(dist, 1), declpat.DefaultPlanOptions())
	if relay != "" {
		eng.MsgType().WithWire() // sockets need a wire codec
	}
	bfs := declpat.NewBFS(eng)

	// The /metrics endpoint serves the live universe for the whole run.
	srv, err := declpat.NewDebugServer(listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "telemetry:", err)
		os.Exit(1)
	}
	defer srv.Close()
	srv.HandleMetrics(u.WriteOpenMetrics)
	fmt.Printf("serving http://%s/metrics (pprof under /debug/pprof/)\n", srv.Addr())

	// A sampler ticking during the run turns the counters into rates.
	sampler := declpat.NewSampler(256, u.CounterSeries)
	sampler.Start(50 * time.Millisecond)

	if err := u.Run(func(r *declpat.Rank) { bfs.Run(r, 0) }); err != nil {
		fmt.Fprintln(os.Stderr, "telemetry: run failed:", err)
		os.Exit(1)
	}
	sampler.Stop()
	sampler.Tick() // final sample: the completed run's totals

	m := u.Metrics()
	fmt.Printf("\nBFS over %d vertices done — %d messages, transport %s\n",
		n, m.Counters.MsgsSent, m.Transport)
	fmt.Printf("sampler: %d ticks, peak msgs_sent rate %.0f/s\n",
		sampler.Len(), sampler.Rate("msgs_sent"))

	fmt.Println("\nper-process telemetry:")
	for _, p := range m.Processes {
		fmt.Printf("  %-12s pid=%-7d counters=%-3d phases=%v\n",
			p.Process, p.PID, len(p.Counters), sortedPhaseNames(p.Phases))
	}
	fmt.Println("\nmerged phase totals:")
	for _, name := range sortedPhaseNames(m.Merged.Phases) {
		h := m.Merged.Phases[name]
		fmt.Printf("  %-10s %6d spans  %12s total\n",
			name, h.Count, time.Duration(h.Sum))
	}

	if hold > 0 {
		fmt.Printf("\nholding /metrics for %s — scrape me\n", hold)
		time.Sleep(hold)
	}
}

func sortedPhaseNames(phases map[string]declpat.HistSnapshot) []string {
	names := make([]string, 0, len(phases))
	for n := range phases {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
