// Centrality: approximate betweenness centrality of a small-world network
// with Brandes' algorithm — a staged pattern computation (level-synchronous
// forward BFS epochs, then backward dependency-accumulation epochs over
// in-edges) driven by imperative support code, exactly the declarative ×
// imperative split the paper advocates.
package main

import (
	"fmt"
	"sort"

	"declpat"
)

func main() {
	const n, ranks = 400, 4
	// A small-world network: a ring with shortcuts; shortcut endpoints
	// become high-betweenness hubs.
	edges := declpat.SmallWorld(n, 4, 0.05, declpat.WeightSpec{}, 12)
	s := declpat.StatsOf(n, edges)
	fmt.Printf("network: %d nodes, %d links, avg degree %.1f, max out-degree %d\n\n",
		s.Vertices, s.Edges, s.AvgDeg, s.MaxOutDeg)

	u := declpat.New(ranks, declpat.WithThreads(2))
	dist := declpat.NewBlockDist(n, ranks)
	g := declpat.BuildGraphParallel(dist, edges, declpat.GraphOptions{Symmetrize: true, Bidirectional: true})
	eng := declpat.NewEngine(u, g, declpat.NewLockMap(dist, 1), declpat.DefaultPlanOptions())
	bc := declpat.NewBetweenness(eng)

	// Approximate: sample every 8th vertex as a source.
	var sources []declpat.Vertex
	for v := declpat.Vertex(0); int(v) < n; v += 8 {
		sources = append(sources, v)
	}
	u.Run(func(r *declpat.Rank) { bc.Run(r, sources) })

	type vb struct {
		v  declpat.Vertex
		bc float64
	}
	var ranked []vb
	for v, raw := range bc.BC.Gather() {
		ranked = append(ranked, vb{declpat.Vertex(v), float64(raw) / float64(1<<20)})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].bc > ranked[j].bc })
	fmt.Printf("most central nodes (%d BFS sources sampled):\n", len(sources))
	for _, r := range ranked[:10] {
		fmt.Printf("  node %4d: betweenness %9.1f\n", r.v, r.bc)
	}
	fmt.Printf("\nmessages: %d across %d epochs\n", u.Stats.MsgsSent(), u.Stats.Epochs())
}
