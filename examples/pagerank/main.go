// Pagerank: ranks the users of a scale-free network with the push pattern
// (one remote atomic add per edge) and cross-checks against the pull pattern
// over in-edges (a two-hop gather per edge, enabled by the bidirectional
// storage model). Prints the top-ranked vertices and the push/pull message
// asymmetry.
package main

import (
	"fmt"
	"sort"

	"declpat"
)

func run(n int, edges []declpat.Edge, mode declpat.PageRankMode) (*declpat.PageRank, *declpat.Universe) {
	const ranks = 4
	gopts := declpat.GraphOptions{}
	if mode == declpat.PageRankPull {
		gopts.Bidirectional = true
	}
	u := declpat.New(ranks, declpat.WithThreads(2))
	dist := declpat.NewBlockDist(n, ranks)
	g := declpat.BuildGraph(dist, edges, gopts)
	eng := declpat.NewEngine(u, g, declpat.NewLockMap(dist, 1), declpat.DefaultPlanOptions())
	pr := declpat.NewPageRank(eng, mode)
	pr.MaxIters = 30
	u.Run(func(r *declpat.Rank) { pr.Run(r) })
	return pr, u
}

func main() {
	n, edges := declpat.RMAT(12, 12, declpat.WeightSpec{}, 99)
	fmt.Printf("web graph: %d pages, %d links\n\n", n, len(edges))

	push, pushU := run(n, edges, declpat.PageRankPush)
	pull, pullU := run(n, edges, declpat.PageRankPull)

	fmt.Printf("%-18s %12s %12s\n", "", "push", "pull")
	fmt.Printf("%-18s %12d %12d\n", "messages", pushU.Stats.MsgsSent(), pullU.Stats.MsgsSent())
	fmt.Printf("%-18s %12d %12d\n", "rounds", push.Rounds, pull.Rounds)

	ranks := push.Rank.Gather()
	type vr struct {
		v declpat.Vertex
		r int64
	}
	var top []vr
	for v, r := range ranks {
		top = append(top, vr{declpat.Vertex(v), r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	fmt.Println("\ntop pages (rank as fraction of total):")
	for _, t := range top[:8] {
		fmt.Printf("  page %5d: %.5f\n", t.v, float64(t.r)/float64(declpat.PRScaleConst))
	}

	// Push and pull must agree exactly (same fixed-point arithmetic).
	pullRanks := pull.Rank.Gather()
	for v := range ranks {
		if ranks[v] != pullRanks[v] {
			fmt.Printf("MISMATCH at %d: push=%d pull=%d\n", v, ranks[v], pullRanks[v])
			return
		}
	}
	fmt.Println("\npush and pull agree exactly on every vertex")
}
