// Roadnet: single-source shortest paths over a torus "road network" —
// the workload where Δ-stepping's bucket structure matters, since the graph
// has a large diameter and uniform weights. Sweeps Δ and compares against
// the fixed-point strategy, printing the work profile of each run (the
// comparison of the paper's Fig. 1).
package main

import (
	"fmt"
	"time"

	"declpat"
)

func run(n int, edges []declpat.Edge, configure func(*declpat.Universe, *declpat.SSSP)) (dur time.Duration, attempts, succeeded int64, epochs int) {
	const ranks = 4
	u := declpat.New(ranks, declpat.WithThreads(2))
	dist := declpat.NewBlockDist(n, ranks)
	g := declpat.BuildGraph(dist, edges, declpat.GraphOptions{})
	eng := declpat.NewEngine(u, g, declpat.NewLockMap(dist, 1), declpat.DefaultPlanOptions())
	s := declpat.NewSSSP(eng)
	configure(u, s)
	start := time.Now()
	u.Run(func(r *declpat.Rank) { s.Run(r, 0) })
	dur = time.Since(start)
	attempts = s.Relax.Stats.TestsTrue.Load() + s.Relax.Stats.TestsFalse.Load()
	succeeded = s.Relax.Stats.ModsChanged.Load()
	return dur, attempts, succeeded, s.BucketEpochs()
}

func main() {
	// 96×96 torus, weights 1..10: diameter ~96, so label-correcting
	// strategies differ sharply in wasted relaxations.
	n, edges := declpat.Torus2D(96, 96, declpat.WeightSpec{Min: 1, Max: 10}, 7)
	fmt.Printf("road network: %d intersections, %d road segments\n\n", n, len(edges))
	fmt.Printf("%-16s %-8s %-10s %-12s %-12s %s\n", "strategy", "delta", "epochs", "relaxations", "successful", "time")

	d, a, s, _ := run(n, edges, func(u *declpat.Universe, ss *declpat.SSSP) { ss.UseFixedPoint() })
	fmt.Printf("%-16s %-8s %-10d %-12d %-12d %s\n", "fixed_point", "-", 1, a, s, d.Round(time.Microsecond))

	for _, delta := range []int64{2, 8, 32, 128, 1024} {
		d, a, s, ep := run(n, edges, func(u *declpat.Universe, ss *declpat.SSSP) { ss.UseDelta(u, delta) })
		fmt.Printf("%-16s %-8d %-10d %-12d %-12d %s\n", "delta", delta, ep, a, s, d.Round(time.Microsecond))
	}
	d, a, s, ep := run(n, edges, func(u *declpat.Universe, ss *declpat.SSSP) { ss.UseDeltaDistributed(u, 32, 2) })
	fmt.Printf("%-16s %-8d %-10d %-12d %-12d %s\n", "delta-dist", 32, ep, a, s, d.Round(time.Microsecond))
}
