// Patterns: author a custom pattern from scratch — a "influence tracking"
// computation that records, for every user, the set of higher-influence
// neighbours (the paper's preds[v].insert(u) modification form) and caps
// runaway influence values with an if/else-if chain. Shows the pattern DSL,
// plan introspection, and the `once` strategy.
package main

import (
	"fmt"

	"declpat"
)

func main() {
	const n, ranks = 64, 2
	// Ring plus a few long-range "influencer" links.
	_, edges := declpat.Torus2D(8, 8, declpat.WeightSpec{}, 5)

	u := declpat.New(ranks, declpat.WithThreads(1))
	dist := declpat.NewBlockDist(n, ranks)
	g := declpat.BuildGraph(dist, edges, declpat.GraphOptions{Symmetrize: true})
	lm := declpat.NewLockMap(dist, 1)
	eng := declpat.NewEngine(u, g, lm, declpat.DefaultPlanOptions())

	// The pattern: two properties and two actions.
	p := declpat.NewPattern("influence")
	inf := p.VertexProp("inf")            // influence score
	mentors := p.VertexSetProp("mentors") // higher-influence neighbours

	// track(v): for each neighbour u, if v is strictly more influential,
	// u records v as a mentor.
	track := p.Action("track", declpat.GenAdj())
	track.If(declpat.Gt(inf.At(declpat.AtV()), inf.At(declpat.AtU()))).
		Insert(mentors.At(declpat.AtU()), declpat.Vtx(declpat.AtV()))

	// cap(v): an if/else-if chain clamping influence into bands.
	cap_ := p.Action("cap", declpat.GenNone())
	iv := inf.At(declpat.AtV())
	cap_.If(declpat.Gt(iv, declpat.C(100))).Set(inf.At(declpat.AtV()), declpat.C(100))
	cap_.Elif(declpat.Lt(iv, declpat.C(0))).Set(inf.At(declpat.AtV()), declpat.C(0))

	infMap := declpat.NewVertexWordMap(dist, 0)
	mentorMap := declpat.NewVertexSetMap(dist, lm)
	bound, err := eng.Bind(p, declpat.Bindings{"inf": infMap, "mentors": mentorMap})
	if err != nil {
		panic(err)
	}
	trackA, capA := bound.Action("track"), bound.Action("cap")

	fmt.Println("compiled plans:")
	fmt.Print(trackA.PlanInfo())
	fmt.Print(capA.PlanInfo())

	u.Run(func(r *declpat.Rank) {
		// Seed influence scores: v² mod 251 (some out of band).
		infMap.ForEachLocal(r.ID(), func(v declpat.Vertex, _ int64) {
			infMap.Set(r.ID(), v, int64(v*v%251)-20)
		})
		r.Barrier()
		locals := declpat.LocalVertices(g, r)
		// Clamp bands with `once` until stable, then track mentors.
		for declpat.Once(r, capA, locals) {
		}
		r.Epoch(func(ep *declpat.EpochHandle) {
			for _, v := range locals {
				trackA.Invoke(r, v)
			}
		})
	})

	fmt.Println("\nmentor sets of the first few users:")
	for v := declpat.Vertex(0); v < 6; v++ {
		own := g.Owner(v)
		fmt.Printf("  user %d (influence %3d): mentors %v\n",
			v, infMap.Get(own, v), mentorMap.Members(own, v))
	}
	fmt.Printf("\nmodifications applied: %d set-inserts, %d clamps\n",
		trackA.Stats.ModsChanged.Load(), capA.Stats.ModsChanged.Load())
}
