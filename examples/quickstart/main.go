// Quickstart: declare the paper's SSSP pattern, run it with the fixed_point
// strategy on a small weighted graph across 2 simulated ranks, and print the
// distances together with the compiled message plan (which is the single
// message of the paper's Fig. 6).
package main

import (
	"fmt"

	"declpat"
)

func main() {
	// A small weighted digraph:
	//
	//	0 --5--> 1 --1--> 2
	//	 \--3--> 2 --7--> 3 --2--> 0
	edges := []declpat.Edge{
		{Src: 0, Dst: 1, W: 5},
		{Src: 1, Dst: 2, W: 1},
		{Src: 0, Dst: 2, W: 3},
		{Src: 2, Dst: 3, W: 7},
		{Src: 3, Dst: 0, W: 2},
	}
	const n, ranks = 4, 2

	u := declpat.New(ranks, declpat.WithThreads(1))
	dist := declpat.NewBlockDist(n, ranks)
	g := declpat.BuildGraph(dist, edges, declpat.GraphOptions{})
	eng := declpat.NewEngine(u, g, declpat.NewLockMap(dist, 1), declpat.DefaultPlanOptions())

	sssp := declpat.NewSSSP(eng) // binds the Fig. 2 pattern, fixed_point strategy
	u.Run(func(r *declpat.Rank) {
		sssp.Run(r, 0)
	})

	fmt.Println("distances from vertex 0:")
	for v, d := range sssp.Dist.Gather() {
		fmt.Printf("  dist[%d] = %d\n", v, d)
	}
	fmt.Println("\ncompiled plan for the relax action (Fig. 6: one message, atomic min):")
	fmt.Print(sssp.Relax.PlanInfo())
	fmt.Printf("\nmessages sent: %d, handlers run: %d, epochs: %d\n",
		u.Stats.MsgsSent(), u.Stats.HandlersRun(), u.Stats.Epochs())
}
