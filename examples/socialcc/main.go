// Socialcc: connected components of a scale-free "social network" (RMAT)
// using the paper's §II-B parallel-search algorithm — concurrent searches
// claim territory, collisions are recorded at the component roots, and
// pointer jumping resolves the final labels. Prints the component-size
// histogram (one giant component plus a tail of small ones, the signature of
// scale-free graphs).
package main

import (
	"fmt"
	"sort"
	"time"

	"declpat"
	"declpat/internal/algorithms"
)

func main() {
	const scale, edgeFactor, ranks = 13, 4, 4
	n, edges := declpat.RMAT(scale, edgeFactor, declpat.WeightSpec{}, 2026)
	fmt.Printf("social graph: %d users, %d friendships (RMAT scale %d)\n", n, len(edges), scale)

	u := declpat.New(ranks, declpat.WithThreads(2))
	dist := declpat.NewBlockDist(n, ranks)
	g := declpat.BuildGraph(dist, edges, declpat.GraphOptions{Symmetrize: true})
	lm := declpat.NewLockMap(dist, 1)
	eng := declpat.NewEngine(u, g, lm, declpat.DefaultPlanOptions())

	cc := algorithms.NewCC(eng, lm)
	cc.FlushEvery = 8 // start a few searches per flush

	start := time.Now()
	u.Run(func(r *declpat.Rank) { cc.Run(r) })
	fmt.Printf("computed in %s: %d searches, %d resolution rounds, %d messages\n",
		time.Since(start).Round(time.Microsecond), cc.SearchesStarted(), cc.JumpRounds, u.Stats.MsgsSent())

	sizes := map[int64]int{}
	for _, label := range cc.Comp.Gather() {
		sizes[label]++
	}
	hist := map[int]int{} // size -> how many components of that size
	var order []int
	for _, sz := range sizes {
		if hist[sz] == 0 {
			order = append(order, sz)
		}
		hist[sz]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(order)))
	fmt.Printf("\n%d components:\n", len(sizes))
	for i, sz := range order {
		if i >= 8 {
			fmt.Printf("  ... and %d more sizes\n", len(order)-i)
			break
		}
		fmt.Printf("  %7d vertices × %d component(s)\n", sz, hist[sz])
	}
}
