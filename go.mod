module declpat

go 1.24
