// Package declpat is a Go implementation of "Declarative Patterns for
// Imperative Distributed Graph Algorithms" (Zalewski, Edmonds, Lumsdaine,
// IPDPS Workshops 2015): graph algorithms are written as declarative
// patterns — property-map declarations plus actions made of a generator and
// condition-guarded modifications — whose communication is derived
// automatically, and driven by imperative strategies (fixed_point, once,
// Δ-stepping) running in epochs over an AM++-style active-message substrate.
//
// This package is the public facade: it re-exports the user-facing surface
// of the internal packages. A minimal SSSP looks like:
//
//	u := declpat.New(4, declpat.WithThreads(2))
//	dist := declpat.NewBlockDist(n, 4)
//	g := declpat.BuildGraph(dist, edges, declpat.GraphOptions{})
//	eng := declpat.NewEngine(u, g, declpat.NewLockMap(dist, 1), declpat.DefaultPlanOptions())
//	sssp := declpat.NewSSSP(eng)
//	u.Run(func(r *declpat.Rank) { sssp.Run(r, src) })
//	distances := sssp.Dist.Gather()
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced experiments.
package declpat

import (
	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/gen"
	"declpat/internal/harness"
	"declpat/internal/mp"
	"declpat/internal/obs"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
	"declpat/internal/query"
	"declpat/internal/strategy"
)

// Messaging substrate (internal/am).
type (
	// Universe is a simulated distributed machine of message-connected
	// ranks.
	Universe = am.Universe
	// Config configures ranks, handler threads, coalescing, the
	// termination detector, and the optional fault plan.
	Config = am.Config
	// FaultPlan injects seeded transport faults (drop, duplication,
	// delay/reordering, corruption) and switches the universe onto the
	// ack/retransmit reliable-delivery protocol.
	FaultPlan = am.FaultPlan
	// Crash schedules a deterministic crash-stop rank failure (at epoch
	// entry, or after the k-th handled message).
	Crash = am.Crash
	// DeadLink permanently severs one directed link from a given epoch on.
	DeadLink = am.DeadLink
	// Checkpointer is rank-sharded state that can snapshot/restore at
	// epoch boundaries; register with Universe.RegisterCheckpointer to
	// participate in Recovery rollback/replay.
	Checkpointer = am.Checkpointer
	// RankFault describes a contained rank failure (crash, handler panic,
	// dead link, watchdog) in Run errors and the fault log.
	RankFault = am.RankFault
	// FaultKind classifies a RankFault.
	FaultKind = am.FaultKind
	// Rank is one simulated node; SPMD bodies receive theirs from Run.
	Rank = am.Rank
	// EpochHandle is the in-epoch handle (Flush, TryFinish, AuxAdd).
	EpochHandle = am.Epoch
	// DetectorKind selects the termination-detection protocol.
	DetectorKind = am.DetectorKind
	// LineageMode controls causal message lineage (Config.Lineage).
	LineageMode = am.LineageMode
	// MessageStats is the universe-wide message accounting.
	MessageStats = am.Stats
	// Transport is the message-plane backend seam (Config.Transport): the
	// in-process channel backend, or real sockets via SockTransport.
	Transport = am.Transport
	// SockOptions configures the socket transport: network (tcp/unix),
	// heartbeat and liveness deadlines, reconnect backoff and budget, an
	// optional relay (cmd/declpat-worker) address, and socket-level fault
	// injection.
	SockOptions = am.SockOptions
	// SockFaultPlan injects deterministic socket-level failures into a
	// socket transport: connection kills, one-way partitions, link flaps.
	SockFaultPlan = am.SockFaultPlan
	// SockDisconnect kills one directed link's connection after a frame
	// count (it reconnects and requeues).
	SockDisconnect = am.SockDisconnect
	// SockPartition black-holes one direction over a frame window with no
	// closing frame (heartbeats vanish; liveness and escalation fire).
	SockPartition = am.SockPartition
	// SockFlap kills a link every Period-th frame, Count times.
	SockFlap = am.SockFlap
)

// Termination detectors.
const (
	DetectorAtomic      = am.DetectorAtomic
	DetectorFourCounter = am.DetectorFourCounter
)

// Lineage modes (Config.Lineage): LineageAuto stamps causal lineage exactly
// when tracing is enabled; LineageOn forces stamping without tracing;
// LineageOff disables it even in traced runs.
const (
	LineageAuto = am.LineageAuto
	LineageOn   = am.LineageOn
	LineageOff  = am.LineageOff
)

// Rank-fault kinds (RankFault.Kind).
const (
	FaultCrash        = am.FaultCrash
	FaultHandlerPanic = am.FaultHandlerPanic
	FaultLinkDead     = am.FaultLinkDead
	FaultWatchdog     = am.FaultWatchdog
	FaultTransport    = am.FaultTransport
)

// Transport constructors: ChanTransport is the in-process default;
// SockTransport runs the data plane over TCP or Unix-domain sockets with
// heartbeats, liveness deadlines, automatic reconnect, and escalation to
// checkpoint/restart when the reconnect budget is exhausted.
var (
	ChanTransport = am.ChanTransport
	SockTransport = am.SockTransport
)

// Option configures a Universe built with New.
type Option = am.Option

// Universe construction options (see internal/am's Config fields for the
// full semantics of each knob).
var (
	// WithThreads sets message-handler threads per rank.
	WithThreads = am.WithThreads
	// WithCoalesce sets the default coalescing factor.
	WithCoalesce = am.WithCoalesce
	// WithDetector selects the termination-detection protocol.
	WithDetector = am.WithDetector
	// WithFaultPlan enables reliable delivery and injects transport faults.
	WithFaultPlan = am.WithFaultPlan
	// WithRecovery enables epoch-granular checkpoint/restart.
	WithRecovery = am.WithRecovery
	// WithMaxRecoveries bounds recovery attempts per epoch.
	WithMaxRecoveries = am.WithMaxRecoveries
	// WithTraceCapacity enables event tracing (total events across ranks).
	WithTraceCapacity = am.WithTraceCapacity
	// WithTraceRingSize pins each rank's trace ring size.
	WithTraceRingSize = am.WithTraceRingSize
	// WithLineage sets the causal-lineage mode.
	WithLineage = am.WithLineage
	// WithTiming enables latency histograms.
	WithTiming = am.WithTiming
	// WithUnshardedStats collapses metric shards (measurement only).
	WithUnshardedStats = am.WithUnshardedStats
	// WithWatchdog arms the stuck-epoch watchdog.
	WithWatchdog = am.WithWatchdog
	// WithTransport selects the message transport backend.
	WithTransport = am.WithTransport
)

// New creates a simulated machine of `ranks` ranks configured by options:
//
//	u := declpat.New(4, declpat.WithThreads(2))
func New(ranks int, opts ...Option) *Universe { return am.New(ranks, opts...) }

// Active-message types and wire codecs (internal/am). These generic aliases
// expose the codec seam on the facade so downstream users never import
// internal packages.
type (
	// MsgType is a registered active-message type with payload T.
	MsgType[T any] = am.MsgType[T]
	// Codec serializes batches of one message type for the wire transport.
	// Implementations must be safe for concurrent use, must reject
	// malformed input from Decode with an error (never a panic), and — for
	// custom codecs — must keep Append(Decode(b)) bit-identical to b's
	// source batch.
	Codec[T any] = am.Codec[T]
)

// MsgOption configures a message type at registration.
type MsgOption[T any] func(*MsgType[T])

// WithCodec routes the message type through the wire transport with the
// given codec: batches are serialized, checksummed, accounted in
// Stats.WireBytes, and decoded on arrival.
func WithCodec[T any](c Codec[T]) MsgOption[T] {
	return func(t *MsgType[T]) { t.WithCodec(c) }
}

// WithWire routes the message type through the wire transport with the best
// bundled codec: the zero-reflection fixed word-schema codec when T is a
// fixed-layout type, the gob fallback otherwise.
func WithWire[T any]() MsgOption[T] {
	return func(t *MsgType[T]) { t.WithWire() }
}

// WithAddresser installs an object-based address function so Send can route
// from the payload itself.
func WithAddresser[T any](f func(m T) int) MsgOption[T] {
	return func(t *MsgType[T]) { t.WithAddresser(f) }
}

// WithCoalescing overrides the universe-default coalescing factor for this
// message type.
func WithCoalescing[T any](n int) MsgOption[T] {
	return func(t *MsgType[T]) { t.WithCoalescing(n) }
}

// RegisterMsgType declares a new active-message type on u. The handler runs
// on the destination rank, possibly concurrently on several handler threads.
// Must be called before Universe.Run.
//
//	pings := declpat.RegisterMsgType(u, "ping", handlePing, declpat.WithWire[Ping]())
func RegisterMsgType[T any](u *Universe, name string, handler func(r *Rank, m T), opts ...MsgOption[T]) *MsgType[T] {
	mt := am.Register(u, name, handler)
	for _, opt := range opts {
		opt(mt)
	}
	return mt
}

// FixedCodec constructs the zero-reflection fixed word-schema codec for T,
// or an error when T contains reference or complex components (use GobCodec
// for those).
func FixedCodec[T any]() (Codec[T], error) { return am.FixedCodec[T]() }

// GobCodec returns the encoding/gob fallback codec for T.
func GobCodec[T any]() Codec[T] { return am.GobCodec[T]() }

// HasFixedLayout reports whether FixedCodec[T] would succeed.
func HasFixedLayout[T any]() bool { return am.HasFixedLayout[T]() }

// NewUniverse creates a simulated machine from a Config literal.
//
// Deprecated: use New with functional options. NewUniverse remains only so
// existing Config-literal callers keep compiling during the migration window;
// it will be removed once the window closes (see README "API stability").
func NewUniverse(cfg Config) *Universe { return am.NewUniverse(cfg) }

// Distributed graph (internal/distgraph).
type (
	// Vertex is a global vertex id.
	Vertex = distgraph.Vertex
	// Edge is a weighted input edge.
	Edge = distgraph.Edge
	// EdgeRef identifies a stored edge copy.
	EdgeRef = distgraph.EdgeRef
	// Graph is a distributed CSR graph.
	Graph = distgraph.Graph
	// GraphOptions selects symmetrization and bidirectional storage.
	GraphOptions = distgraph.Options
	// Distribution maps vertices to owning ranks.
	Distribution = distgraph.Distribution
)

// NilVertex is the "no vertex" sentinel (the paper's NULL).
const NilVertex = distgraph.NilVertex

// NewBlockDist distributes n vertices in contiguous blocks over ranks.
func NewBlockDist(n, ranks int) Distribution { return distgraph.NewBlockDist(n, ranks) }

// NewCyclicDist distributes n vertices round-robin over ranks.
func NewCyclicDist(n, ranks int) Distribution { return distgraph.NewCyclicDist(n, ranks) }

// NewHashDist distributes n vertices by hashed blocks over ranks.
func NewHashDist(n, ranks int, seed uint64) Distribution {
	return distgraph.NewHashDist(n, ranks, seed)
}

// BuildGraph constructs a distributed graph from an edge list.
func BuildGraph(d Distribution, edges []Edge, opts GraphOptions) *Graph {
	return distgraph.Build(d, edges, opts)
}

// Property maps (internal/pmap).
type (
	// VertexWordMap is a word-valued distributed vertex property map.
	VertexWordMap = pmap.VertexWord
	// EdgeWordMap is a word-valued distributed edge property map.
	EdgeWordMap = pmap.EdgeWord
	// VertexSetMap is a set-of-vertices vertex property map.
	VertexSetMap = pmap.VertexSet
	// LockMap is the §IV-B lock-map abstraction.
	LockMap = pmap.LockMap
)

// NewVertexWordMap allocates a vertex word map with initial value init.
func NewVertexWordMap(d Distribution, init int64) *VertexWordMap { return pmap.NewVertexWord(d, init) }

// NewEdgeWordMap allocates an edge word map with initial value init.
func NewEdgeWordMap(g *Graph, init int64) *EdgeWordMap { return pmap.NewEdgeWord(g, init) }

// WeightMap views the graph's built-in weights as an edge property map.
func WeightMap(g *Graph) *EdgeWordMap { return pmap.WeightMap(g) }

// NewVertexSetMap allocates a set-valued vertex map synchronized by locks.
func NewVertexSetMap(d Distribution, locks *LockMap) *VertexSetMap {
	return pmap.NewVertexSet(d, locks)
}

// NewLockMap creates a lock map with the given vertices-per-lock
// granularity.
func NewLockMap(d Distribution, granularity int) *LockMap { return pmap.NewLockMap(d, granularity) }

// Patterns (internal/pattern).
type (
	// Pattern is a declarative graph-access pattern (§III).
	Pattern = pattern.Pattern
	// PatternProp is a property declaration inside a pattern.
	PatternProp = pattern.Prop
	// PatternAction is one action of a pattern.
	PatternAction = pattern.Action
	// Expr is a pattern expression.
	Expr = pattern.Expr
	// Generator selects an action's fan-out.
	Generator = pattern.Generator
	// PlanOptions toggles the §IV planning optimizations.
	PlanOptions = pattern.PlanOptions
	// Engine executes compiled patterns over a universe and graph.
	Engine = pattern.Engine
	// Bindings maps pattern property names to storage.
	Bindings = pattern.Bindings
	// BoundAction is an action bound to storage, ready to invoke.
	BoundAction = pattern.BoundAction
	// PlanInfo describes an action's compiled message plan.
	PlanInfo = pattern.PlanInfo
)

// Word-level constants.
const (
	// Inf is the conventional "unreached" value.
	Inf = pattern.Inf
	// NilWord encodes NULL vertices in word maps.
	NilWord = pattern.NilWord
)

// NewPattern creates an empty pattern.
func NewPattern(name string) *Pattern { return pattern.New(name) }

// DefaultPlanOptions returns the paper's configuration (merge + fold).
func DefaultPlanOptions() PlanOptions { return pattern.DefaultPlanOptions() }

// NewEngine creates a pattern engine; call before Universe.Run.
func NewEngine(u *Universe, g *Graph, lm *LockMap, opts PlanOptions) *Engine {
	return pattern.NewEngine(u, g, lm, opts)
}

// Generator constructors.
var (
	// GenNone runs the action at the input vertex only.
	GenNone = pattern.None
	// GenOutEdges fans out over out-edges.
	GenOutEdges = pattern.OutEdges
	// GenInEdges fans out over in-edges.
	GenInEdges = pattern.InEdges
	// GenAdj fans out over out-neighbours.
	GenAdj = pattern.Adj
	// GenSetOf fans out over a set-valued property's members.
	GenSetOf = pattern.SetOf
)

// Locality designators (Def. 1).
var (
	// AtV designates the input vertex.
	AtV = pattern.V
	// AtU designates the generated vertex.
	AtU = pattern.U
	// AtTrg designates the generated edge's target.
	AtTrg = pattern.Trg
	// AtSrc designates the generated edge's source.
	AtSrc = pattern.Src
	// AtE designates the generated edge.
	AtE = pattern.E
)

// Expression combinators.
var (
	C   = pattern.C
	Vtx = pattern.Vtx
	Add = pattern.Add
	Sub = pattern.Sub
	Mul = pattern.Mul
	Min = pattern.MinE
	Max = pattern.MaxE
	Lt  = pattern.Lt
	Le  = pattern.Le
	Gt  = pattern.Gt
	Ge  = pattern.Ge
	Eq  = pattern.Eq
	Ne  = pattern.Ne
	And = pattern.And
	Or  = pattern.Or
	Not = pattern.Not
)

// Strategies (internal/strategy).
type (
	// FixedPointStrategy reruns the action at dependent vertices until
	// global quiescence.
	FixedPointStrategy = strategy.FixedPoint
	// DeltaStrategy is bucketed Δ-stepping.
	DeltaStrategy = strategy.Delta
	// DeltaDistributedStrategy uses per-thread buckets and try_finish.
	DeltaDistributedStrategy = strategy.DeltaDistributed
	// Buckets is the thread-safe Δ-stepping bucket structure.
	Buckets = strategy.Buckets
)

// NewFixedPoint installs the rerun-on-dependency hook; call before Run.
func NewFixedPoint(a *BoundAction) *FixedPointStrategy { return strategy.NewFixedPoint(a) }

// NewDelta installs the bucket-insert hook; call before Run.
func NewDelta(u *Universe, a *BoundAction, keys *VertexWordMap, delta int64) *DeltaStrategy {
	return strategy.NewDelta(u, a, keys, delta)
}

// NewDeltaDistributed installs the per-thread bucket hook; call before Run.
func NewDeltaDistributed(u *Universe, a *BoundAction, keys *VertexWordMap, delta int64, threads int) *DeltaDistributedStrategy {
	return strategy.NewDeltaDistributed(u, a, keys, delta, threads)
}

// Once applies the action to a vertex set in one epoch and reports whether
// anything changed anywhere. Collective.
func Once(r *Rank, a *BoundAction, vs []Vertex) bool { return strategy.Once(r, a, vs) }

// Algorithms (internal/algorithms).
type (
	// SSSP is the pattern-based single-source shortest paths solver.
	SSSP = algorithms.SSSP
	// CC is the parallel-search connected-components solver.
	CC = algorithms.CC
	// BFS is the pattern-based breadth-first level solver.
	BFS = algorithms.BFS
	// BFSTree is the Graph500-style parent-tree BFS.
	BFSTree = algorithms.BFSTree
	// Widest is the pattern-based widest-path solver.
	Widest = algorithms.Widest
	// PageRank is the fixed-point PageRank solver (push or pull).
	PageRank = algorithms.PageRank
	// PageRankMode selects push (out-edges) or pull (in-edges).
	PageRankMode = algorithms.PageRankMode
	// KCore is the chained-action k-core peeler.
	KCore = algorithms.KCore
	// DegreeCount computes in-degrees by remote atomic adds.
	DegreeCount = algorithms.DegreeCount
	// MIS is the Luby-style maximal-independent-set solver.
	MIS = algorithms.MIS
	// Betweenness is the Brandes betweenness-centrality solver.
	Betweenness = algorithms.Betweenness
)

// PageRank modes.
const (
	PageRankPush = algorithms.PageRankPush
	PageRankPull = algorithms.PageRankPull
)

// PRScaleConst is the fixed-point scale of PageRank values.
const PRScaleConst = algorithms.PRScale

// NewSSSP binds the paper's SSSP pattern; call before Universe.Run.
func NewSSSP(eng *Engine) *SSSP { return algorithms.NewSSSP(eng) }

// NewCC binds the §II-B CC pattern; the graph must be symmetrized.
func NewCC(eng *Engine, lm *LockMap) *CC { return algorithms.NewCC(eng, lm) }

// NewBFS binds the BFS pattern; call before Universe.Run.
func NewBFS(eng *Engine) *BFS { return algorithms.NewBFS(eng) }

// NewBFSTree binds the parent-tree BFS pattern; call before Universe.Run.
func NewBFSTree(eng *Engine) *BFSTree { return algorithms.NewBFSTree(eng) }

// NewWidest binds the widest-path pattern; call before Universe.Run.
func NewWidest(eng *Engine) *Widest { return algorithms.NewWidest(eng) }

// NewPageRank binds a PageRank pattern (pull mode needs a bidirectional
// graph); call before Universe.Run.
func NewPageRank(eng *Engine, mode PageRankMode) *PageRank { return algorithms.NewPageRank(eng, mode) }

// NewKCore binds the k-core pattern over a symmetrized graph; call before
// Universe.Run.
func NewKCore(eng *Engine, k int64) *KCore { return algorithms.NewKCore(eng, k) }

// NewDegreeCount binds the degree pattern; call before Universe.Run.
func NewDegreeCount(eng *Engine) *DegreeCount { return algorithms.NewDegreeCount(eng) }

// NewMIS binds the MIS pattern over a symmetrized graph; call before
// Universe.Run.
func NewMIS(eng *Engine) *MIS { return algorithms.NewMIS(eng) }

// NewBetweenness binds the Brandes pattern over a bidirectional graph; call
// before Universe.Run.
func NewBetweenness(eng *Engine) *Betweenness { return algorithms.NewBetweenness(eng) }

// GenerateGo translates a pattern into standalone Go messaging code (the
// paper's §VI translator); see cmd/codegen.
func GenerateGo(p *Pattern, opts PlanOptions, pkg string) (string, error) {
	return pattern.GenerateGo(p, opts, pkg)
}

// BuildGraphParallel is BuildGraph with one construction worker per rank
// (identical layout, parallel build).
func BuildGraphParallel(d Distribution, edges []Edge, opts GraphOptions) *Graph {
	return distgraph.BuildParallel(d, edges, opts)
}

// GraphStats summarizes an edge list.
type GraphStats = gen.GraphStats

// StatsOf computes summary statistics of an edge list over n vertices.
func StatsOf(n int, edges []Edge) GraphStats { return gen.Stats(n, edges) }

// SmallWorld generates a Watts–Strogatz small-world graph.
func SmallWorld(n, k int, beta float64, w WeightSpec, seed uint64) []Edge {
	return gen.SmallWorld(n, k, beta, w, seed)
}

// SSSPPattern returns the paper's Fig. 2 pattern.
func SSSPPattern() *Pattern { return algorithms.SSSPPattern() }

// CCPattern returns the §II-B connected-components pattern.
func CCPattern() *Pattern { return algorithms.CCPattern() }

// LocalVertices lists the vertices owned by r.
func LocalVertices(g *Graph, r *Rank) []Vertex { return algorithms.LocalVertices(g, r) }

// Generators (internal/gen).
type (
	// WeightSpec configures edge-weight generation.
	WeightSpec = gen.Weights
)

// RMAT generates a Graph500-parameter RMAT graph.
func RMAT(scale, edgeFactor int, w WeightSpec, seed uint64) (n int, edges []Edge) {
	return gen.RMAT(scale, edgeFactor, w, seed)
}

// ER generates an Erdős–Rényi G(n, m) multigraph.
func ER(n, m int, w WeightSpec, seed uint64) []Edge { return gen.ER(n, m, w, seed) }

// Torus2D generates a directed 2D torus.
func Torus2D(rows, cols int, w WeightSpec, seed uint64) (n int, edges []Edge) {
	return gen.Torus2D(rows, cols, w, seed)
}

// PathGraph generates the directed path 0→1→…→n-1.
func PathGraph(n int, w WeightSpec, seed uint64) []Edge { return gen.Path(n, w, seed) }

// Telemetry plane (internal/obs, internal/am, internal/harness): per-phase
// kernel timers, live counter sampling, OpenMetrics export, and the debug
// HTTP server behind /metrics. See DESIGN.md "Telemetry plane".
type (
	// Metrics is the full observability snapshot (Universe.Metrics): counters,
	// per-rank breakdowns, per-type traffic, phase histograms, and the
	// per-process telemetry merge.
	Metrics = am.Metrics
	// ProcessTelemetry is one process's telemetry export — what a
	// declpat-worker ships back to the coordinator over a telemetry frame.
	ProcessTelemetry = obs.ProcessTelemetry
	// HistSnapshot is a plain histogram view (bounds, counts, sum, max).
	HistSnapshot = obs.HistSnapshot
	// Phase identifies one epoch phase of the timer taxonomy
	// (collect/build_csr/kernel/emit/barrier/recovery).
	Phase = obs.Phase
	// PhaseScope is an open phase timer on a rank; close with End. The zero
	// value (timing off) is a no-op.
	PhaseScope = am.PhaseScope
	// Sampler periodically diffs a cumulative counter source into a
	// fixed-size time-series ring (Universe.CounterSeries is the usual
	// source).
	Sampler = obs.Sampler
	// Sample is one sampler tick: cumulative values plus deltas since the
	// previous tick.
	Sample = obs.Sample
	// DebugServer serves pprof, expvar, and — once HandleMetrics registers a
	// source — OpenMetrics under /metrics, with graceful shutdown.
	DebugServer = harness.DebugServer
)

// Epoch phase identifiers (Rank.Phase). The substrate times kernel, barrier,
// and recovery automatically under Config.Timing; strategies and algorithm
// drivers mark collect/build_csr/emit sections explicitly.
const (
	PhaseCollect  = obs.PhaseCollect
	PhaseBuildCSR = obs.PhaseBuildCSR
	PhaseKernel   = obs.PhaseKernel
	PhaseEmit     = obs.PhaseEmit
	PhaseBarrier  = obs.PhaseBarrier
	PhaseRecovery = obs.PhaseRecovery
)

// NewSampler creates a live metrics sampler over a cumulative counter
// source; drive it manually with Tick or on an interval with Start/Stop:
//
//	s := declpat.NewSampler(256, u.CounterSeries)
//	s.Start(250 * time.Millisecond)
//	defer s.Stop()
func NewSampler(size int, src func() map[string]int64) *Sampler { return obs.NewSampler(size, src) }

// NewDebugServer binds the diagnostic HTTP server (pprof, expvar, /metrics)
// on addr (":0" for ephemeral) and starts serving; the caller owns shutdown:
//
//	d, _ := declpat.NewDebugServer("127.0.0.1:0")
//	defer d.Close()
//	d.HandleMetrics(u.WriteOpenMetrics)
func NewDebugServer(addr string) (*DebugServer, error) { return harness.NewDebugServer(addr) }

// MergeTelemetry folds src's counters, gauges, and phase histograms into
// dst (how the coordinator builds Metrics.Merged from the per-process
// entries). Histogram bound mismatches skip that phase and surface as the
// returned error; the rest of the merge still happens.
func MergeTelemetry(dst *ProcessTelemetry, src *ProcessTelemetry) error {
	return obs.MergeTelemetry(dst, src)
}

// Multi-process SPMD: run algorithms across real OS worker processes, with
// barriers, gathers, termination waves, and checkpoint-commit votes carried
// as wire frames on a launcher-hosted control plane. A killed worker is
// respawned and the fleet restarts from the last committed checkpoint; the
// final result is bit-identical to the fault-free run.
type (
	// MPJobSpec describes the algorithm workload a launched fleet executes
	// (every worker receives it inside its welcome frame).
	MPJobSpec = mp.JobSpec
	// MPKillSpec schedules one seeded worker kill for a fault drill.
	MPKillSpec = mp.KillSpec
	// MPLaunchSpec configures a fleet: job, worker count, seeds, kill
	// schedule, restart budget.
	MPLaunchSpec = mp.LaunchSpec
	// MPLaunchResult is a completed launch: result vectors, attempt count,
	// and per-attempt worker exit codes.
	MPLaunchResult = mp.LaunchResult
)

// Launch spawns a worker fleet, serves the wire control plane, and drives
// the run — respawning and restoring from checkpoints on worker death —
// until completion or restart-budget exhaustion.
func Launch(spec MPLaunchSpec) (*MPLaunchResult, error) { return mp.Launch(spec) }

// MaybeWorker turns the current process into a launched rank host when the
// DECLPAT_MP_ADDR / DECLPAT_MP_WORKER environment is set (never returning in
// that case), and is a no-op otherwise. Call it early in main or TestMain of
// any binary used as a LaunchSpec.WorkerCommand — including the launcher
// itself for the default self-exec pattern.
func MaybeWorker() { mp.MaybeWorker() }

// WorkerSeed derives the deterministic fault/chaos seed for worker idx
// hosting ranks [lo, hi) from a launch root seed: stable across respawns of
// the same worker, distinct across workers and across rank splits.
func WorkerSeed(root uint64, idx, lo, hi int) uint64 { return harness.WorkerSeed(root, idx, lo, hi) }

// Query plane (internal/query): a resident QueryService owns a long-lived
// universe, a graph, and pre-bound algorithm slots, and multiplexes many
// concurrent, independently-deadlined queries over them — admission control
// with a bounded queue, same-algorithm fusion into single epoch sweeps, and
// per-query context tagging of every epoch. cmd/declpat-serve is the HTTP
// front end. See DESIGN.md "Query plane".
type (
	// QueryService is the resident query plane; construct with
	// NewQueryService before Universe.Run, drive with Serve, submit from any
	// goroutine.
	QueryService = query.Service
	// QueryRequest describes one query (algorithm, source, deadline).
	QueryRequest = query.Request
	// QueryResult is a completed query's answer: the per-vertex property
	// vector plus lifecycle timestamps and fusion width.
	QueryResult = query.Result
	// QueryStatus is a point-in-time lifecycle snapshot of one query.
	QueryStatus = query.Status
	// QueryTicket is the submitter's handle: ID, Done, Wait, Cancel.
	QueryTicket = query.Ticket
	// QueryAlgo identifies a served algorithm (QueryBFS, QuerySSSP,
	// QueryPageRank).
	QueryAlgo = query.Algo
	// QueryOption configures a QueryService at construction.
	QueryOption = query.Option
	// QueryStats is a plain-value snapshot of the query plane's metrics.
	QueryStats = query.ServiceStats
)

// Served algorithms (QueryRequest.Algo).
const (
	QueryBFS      = query.BFS
	QuerySSSP     = query.SSSP
	QueryPageRank = query.PageRank
)

// Query lifecycle states (QueryStatus.State).
const (
	QueryStateQueued  = query.StateQueued
	QueryStateRunning = query.StateRunning
	QueryStateDone    = query.StateDone
	QueryStateFailed  = query.StateFailed
)

// Query-plane errors: the first three are Submit-time rejections; the rest
// surface as a failed ticket's error.
var (
	ErrQueryQueueFull = query.ErrQueueFull
	ErrQueryBadSource = query.ErrBadSource
	ErrQueryStopped   = query.ErrStopped
	ErrQueryCanceled  = query.ErrCanceled
	ErrQueryDeadline  = query.ErrDeadline
	ErrQueryUnknown   = query.ErrUnknown
	ErrQueryNotDone   = query.ErrNotDone
)

// QueryService construction options.
var (
	// WithMaxFusion bounds how many same-algorithm queries fuse into one
	// epoch sweep (and sizes the pre-bound slot pools).
	WithMaxFusion = query.WithMaxFusion
	// WithQueueDepth bounds the admission queue.
	WithQueueDepth = query.WithQueueDepth
	// WithDefaultDeadline applies a deadline to requests without their own.
	WithDefaultDeadline = query.WithDefaultDeadline
	// WithRetain bounds how many finished results stay for point lookups.
	WithRetain = query.WithRetain
	// WithPageRank tunes the shared PageRank job (rounds cap, tolerance).
	WithPageRank = query.WithPageRank
)

// NewQueryService builds a resident query service over eng's universe and
// graph. Must be called before Universe.Run; then drive the universe with
// QueryService.Serve and submit queries from any goroutine.
func NewQueryService(eng *Engine, opts ...QueryOption) *QueryService { return query.New(eng, opts...) }

// ParseQueryAlgo parses a wire name ("bfs", "sssp", "pagerank") produced by
// QueryAlgo.String.
func ParseQueryAlgo(s string) (QueryAlgo, error) { return query.ParseAlgo(s) }
