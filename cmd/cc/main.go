// Command cc runs the §II-B parallel-search connected-components algorithm
// and verifies the partition against sequential union-find.
//
// Usage:
//
//	cc -scale 14 -ranks 4 -threads 2 -flushevery 16
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"declpat"
	"declpat/internal/algorithms"
	"declpat/internal/seq"
)

func main() {
	scale := flag.Int("scale", 14, "RMAT scale (2^scale vertices)")
	ef := flag.Int("edgefactor", 4, "edges per vertex")
	seed := flag.Uint64("seed", 1, "generator seed")
	ranks := flag.Int("ranks", 4, "simulated ranks")
	threads := flag.Int("threads", 2, "handler threads per rank")
	flushEvery := flag.Int("flushevery", 1, "search starts per epoch_flush (Fig. 3 pacing)")
	verify := flag.Bool("verify", true, "check against sequential union-find")
	flag.Parse()

	n, edges := declpat.RMAT(*scale, *ef, declpat.WeightSpec{}, *seed)
	u := declpat.New(*ranks, declpat.WithThreads(*threads))
	dist := declpat.NewBlockDist(n, *ranks)
	g := declpat.BuildGraph(dist, edges, declpat.GraphOptions{Symmetrize: true})
	lm := declpat.NewLockMap(dist, 1)
	eng := declpat.NewEngine(u, g, lm, declpat.DefaultPlanOptions())
	c := algorithms.NewCC(eng, lm)
	c.FlushEvery = *flushEvery

	start := time.Now()
	if err := u.Run(func(r *declpat.Rank) { c.Run(r) }); err != nil {
		fmt.Fprintln(os.Stderr, "cc: run failed:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	comp := c.Comp.Gather()
	sizes := map[int64]int{}
	for _, l := range comp {
		sizes[l]++
	}
	var sorted []int
	for _, s := range sizes {
		sorted = append(sorted, s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	top := sorted
	if len(top) > 5 {
		top = top[:5]
	}
	fmt.Printf("cc: n=%d m=%d ranks=%d threads=%d flush-every=%d\n", n, len(edges), *ranks, *threads, *flushEvery)
	fmt.Printf("time=%s components=%d largest=%v\n", elapsed.Round(time.Microsecond), len(sizes), top)
	fmt.Printf("searches=%d jump-rounds=%d messages=%d\n", c.SearchesStarted(), c.JumpRounds, u.Stats.MsgsSent())

	if *verify {
		want := seq.Components(n, edges)
		repr := map[int64]declpat.Vertex{}
		back := map[declpat.Vertex]int64{}
		bad := 0
		for v := range comp {
			cl, w := comp[v], want[v]
			if r, ok := repr[cl]; ok && r != w {
				bad++
				continue
			}
			repr[cl] = w
			if r, ok := back[w]; ok && r != cl {
				bad++
				continue
			}
			back[w] = cl
		}
		if bad != 0 {
			fmt.Printf("VERIFY FAILED: %d inconsistent vertices\n", bad)
			os.Exit(1)
		}
		fmt.Println("verify: OK (partition matches union-find)")
	}
}
