// Command plan prints the library patterns in the paper's concrete syntax
// (§III) together with their compiled message plans (§IV), under a chosen
// set of planner options — a developer tool for inspecting what
// communication a pattern turns into.
//
// Usage:
//
//	plan [-merge=false] [-fold=false] [-naive] [-earlyexit=false] [SSSP|CC|BFS|Widest|Degree|PageRankPush|PageRankPull]
package main

import (
	"flag"
	"fmt"
	"os"

	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
)

func main() {
	merge := flag.Bool("merge", true, "merge condition evaluation with the first modification (§IV-A)")
	fold := flag.Bool("fold", true, "fold local subexpressions into payload temporaries (Fig. 6)")
	naive := flag.Bool("naive", false, "naive depth-first gather order with backtracking (Fig. 5)")
	earlyExit := flag.Bool("earlyexit", true, "evaluate entry-decidable test conjuncts before sending")
	dot := flag.Bool("dot", false, "emit Graphviz digraphs of the plans instead of text")
	flag.Parse()

	library := map[string]func() *pattern.Pattern{
		"SSSP":         algorithms.SSSPPattern,
		"CC":           algorithms.CCPattern,
		"BFS":          algorithms.BFSPattern,
		"Widest":       algorithms.WidestPattern,
		"Degree":       algorithms.DegreePattern,
		"BFSTree":      algorithms.BFSTreePattern,
		"PageRankPush": algorithms.PageRankPushPattern,
		"PageRankPull": algorithms.PageRankPullPattern,
		"LightHeavy":   func() *pattern.Pattern { return algorithms.SSSPLightHeavyPattern(32) },
		"KCore":        func() *pattern.Pattern { return algorithms.KCorePattern(3) },
	}
	names := flag.Args()
	if len(names) == 0 {
		names = []string{"SSSP", "CC", "BFS", "Widest", "Degree", "BFSTree", "PageRankPush", "PageRankPull", "LightHeavy", "KCore"}
	}
	opts := pattern.PlanOptions{Merge: *merge, Fold: *fold, NaiveDFS: *naive, EarlyExit: *earlyExit}
	fmt.Printf("planner options: %+v\n\n", opts)
	for _, name := range names {
		mk, ok := library[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown pattern %q\n", name)
			os.Exit(2)
		}
		p := mk()
		if *dot {
			for _, pi := range compile(p, opts) {
				fmt.Print(pi.Dot())
			}
			continue
		}
		fmt.Print(p.String())
		for _, pi := range compile(p, opts) {
			fmt.Print(pi)
		}
		fmt.Println()
	}
}

// compile binds p against throwaway storage to obtain plans.
func compile(p *pattern.Pattern, opts pattern.PlanOptions) []pattern.PlanInfo {
	u := am.New(1)
	d := distgraph.NewBlockDist(2, 1)
	g := distgraph.Build(d, []distgraph.Edge{{Src: 0, Dst: 1, W: 1}}, distgraph.Options{Bidirectional: true})
	lm := pmap.NewLockMap(d, 1)
	eng := pattern.NewEngine(u, g, lm, opts)
	binds := pattern.Bindings{}
	for _, pr := range p.Props {
		switch pr.Kind {
		case pattern.VertexWordProp:
			binds[pr.Name] = pmap.NewVertexWord(d, 0)
		case pattern.EdgeWordProp:
			binds[pr.Name] = pmap.WeightMap(g)
		case pattern.VertexSetProp:
			binds[pr.Name] = pmap.NewVertexSet(d, lm)
		}
	}
	bound, err := eng.Bind(p, binds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compile %s: %v\n", p.Name, err)
		os.Exit(1)
	}
	var out []pattern.PlanInfo
	for _, a := range p.Actions {
		out = append(out, bound.Action(a.Name).PlanInfo())
	}
	return out
}
