// Command declpat-serve runs the resident query plane behind an HTTP API:
// one long-lived universe with an RMAT graph and pre-bound algorithm slots
// serves concurrent BFS / SSSP / PageRank queries submitted over HTTP, with
// admission control, per-query deadlines, same-algorithm fusion, and an
// OpenMetrics endpoint carrying per-query latency percentiles and queue
// depth.
//
// Usage:
//
//	declpat-serve -scale 14 -ranks 4 -threads 2 -listen 127.0.0.1:8080
//
// API:
//
//	POST /query              {"algo":"bfs|sssp|pagerank","source":N,"deadline_ms":D} → {"id":N}
//	GET  /query/{id}         lifecycle snapshot
//	GET  /query/{id}/wait    block until done (optional ?timeout_ms=N)
//	GET  /query/{id}/value?v=N   point lookup into the result vector
//	GET  /metrics            OpenMetrics: declpat_query_* + substrate families
//	GET  /healthz            liveness
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"declpat"
)

func main() {
	scale := flag.Int("scale", 12, "RMAT scale (2^scale vertices)")
	ef := flag.Int("edgefactor", 8, "edges per vertex")
	seed := flag.Uint64("seed", 1, "generator seed")
	ranks := flag.Int("ranks", 4, "simulated ranks")
	threads := flag.Int("threads", 2, "handler threads per rank")
	listen := flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
	fusion := flag.Int("fusion", 8, "max same-algorithm queries fused per sweep")
	queue := flag.Int("queue", 256, "admission queue depth")
	deadline := flag.Duration("deadline", 0, "default per-query deadline (0 = none)")
	retain := flag.Int("retain", 256, "finished results retained for lookups")
	flag.Parse()

	n, edges := declpat.RMAT(*scale, *ef, declpat.WeightSpec{Min: 1, Max: 100}, *seed)
	u := declpat.New(*ranks, declpat.WithThreads(*threads))
	dist := declpat.NewBlockDist(n, *ranks)
	g := declpat.BuildGraph(dist, edges, declpat.GraphOptions{})
	eng := declpat.NewEngine(u, g, declpat.NewLockMap(dist, 1), declpat.DefaultPlanOptions())
	svc := declpat.NewQueryService(eng,
		declpat.WithMaxFusion(*fusion),
		declpat.WithQueueDepth(*queue),
		declpat.WithDefaultDeadline(*deadline),
		declpat.WithRetain(*retain),
	)

	served := make(chan error, 1)
	go func() { served <- svc.Serve() }()

	srv := &http.Server{Addr: *listen, Handler: routes(svc)}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("declpat-serve: listen: %v", err)
	}
	log.Printf("declpat-serve: n=%d m=%d ranks=%d threads=%d listening on http://%s",
		n, len(edges), *ranks, *threads, ln.Addr())

	httpErr := make(chan error, 1)
	go func() { httpErr <- srv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case <-stop:
		log.Printf("declpat-serve: shutting down")
	case err := <-served:
		// The universe exited underneath us (substrate fault): fail fast.
		log.Printf("declpat-serve: query plane exited: %v", err)
		served <- err
	case err := <-httpErr:
		log.Printf("declpat-serve: http server failed: %v", err)
		httpErr <- err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	svc.Stop()
	if err := <-served; err != nil {
		log.Fatalf("declpat-serve: query plane: %v", err)
	}
}

// routes wires the HTTP API over the query service.
func routes(svc *declpat.QueryService) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) { handleSubmit(svc, w, r) })
	mux.HandleFunc("GET /query/{id}", func(w http.ResponseWriter, r *http.Request) { handleStatus(svc, w, r) })
	mux.HandleFunc("GET /query/{id}/wait", func(w http.ResponseWriter, r *http.Request) { handleWait(svc, w, r) })
	mux.HandleFunc("GET /query/{id}/value", func(w http.ResponseWriter, r *http.Request) { handleValue(svc, w, r) })
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		if err := svc.WriteOpenMetrics(w); err != nil {
			log.Printf("declpat-serve: /metrics: %v", err)
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	return mux
}

// submitBody is the POST /query request payload.
type submitBody struct {
	Algo       string `json:"algo"`
	Source     int64  `json:"source"`
	DeadlineMS int64  `json:"deadline_ms"`
}

func handleSubmit(svc *declpat.QueryService, w http.ResponseWriter, r *http.Request) {
	var body submitBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	algo, err := declpat.ParseQueryAlgo(body.Algo)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	t, err := svc.Submit(declpat.QueryRequest{
		Algo:     algo,
		Source:   declpat.Vertex(body.Source),
		Deadline: time.Duration(body.DeadlineMS) * time.Millisecond,
	})
	if err != nil {
		httpError(w, submitCode(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": t.ID()})
}

func handleStatus(svc *declpat.QueryService, w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	st, err := svc.Status(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, statusJSON(st))
}

func handleWait(svc *declpat.QueryService, w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	t, found := svc.Ticket(id)
	if !found {
		httpError(w, http.StatusNotFound, declpat.ErrQueryUnknown)
		return
	}
	wait := t.Done()
	var timeout <-chan time.Time
	if ms := r.URL.Query().Get("timeout_ms"); ms != "" {
		d, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || d < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad timeout_ms %q", ms))
			return
		}
		timeout = time.After(time.Duration(d) * time.Millisecond)
	}
	select {
	case <-wait:
	case <-timeout:
		httpError(w, http.StatusRequestTimeout, errors.New("query still running"))
		return
	case <-r.Context().Done():
		return
	}
	st, err := svc.Status(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, statusJSON(st))
}

func handleValue(svc *declpat.QueryService, w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	v, err := strconv.ParseInt(r.URL.Query().Get("v"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad vertex %q", r.URL.Query().Get("v")))
		return
	}
	val, err := svc.Value(id, declpat.Vertex(v))
	if err != nil {
		httpError(w, valueCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "vertex": v, "value": val})
}

// statusJSON flattens a lifecycle snapshot for the wire.
func statusJSON(st declpat.QueryStatus) map[string]any {
	out := map[string]any{
		"id":     st.ID,
		"algo":   st.Algo.String(),
		"source": int64(st.Source),
		"state":  st.State,
	}
	if st.Err != nil {
		out["error"] = st.Err.Error()
	}
	if st.State == declpat.QueryStateDone {
		out["rounds"] = st.Rounds
		out["batch"] = st.Batch
		out["latency_ms"] = float64(st.Done.Sub(st.Queued).Microseconds()) / 1000
	}
	return out
}

// pathID parses the {id} path segment, answering 400 itself on failure.
func pathID(w http.ResponseWriter, r *http.Request) (int64, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad query id %q", r.PathValue("id")))
		return 0, false
	}
	return id, true
}

// submitCode maps Submit rejections to HTTP statuses.
func submitCode(err error) int {
	switch {
	case errors.Is(err, declpat.ErrQueryQueueFull), errors.Is(err, declpat.ErrQueryStopped):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// valueCode maps point-lookup failures to HTTP statuses.
func valueCode(err error) int {
	switch {
	case errors.Is(err, declpat.ErrQueryUnknown):
		return http.StatusNotFound
	case errors.Is(err, declpat.ErrQueryNotDone):
		return http.StatusConflict
	case errors.Is(err, declpat.ErrQueryBadSource):
		return http.StatusBadRequest
	default:
		// A failed query's stored error (deadline, cancel, stop).
		return http.StatusGone
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]any{"error": err.Error()})
}
