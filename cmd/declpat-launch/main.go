// declpat-launch runs a declpat algorithm across real OS worker processes.
// It spawns N copies of itself (or of -worker-bin) as rank hosts, serves the
// wire control plane — address exchange, barriers, gathers, termination
// waves, checkpoint-commit votes — and reassembles the distributed result.
//
//	declpat-launch -algo bfs -workers 4 -scale 12
//
// Fault drills: -kill-worker/-kill-epoch/-kill-mode schedule one seeded kill
// on the first attempt, after which the launcher respawns the fleet and
// drives checkpoint/restart to completion. The final result is bit-identical
// to the fault-free run:
//
//	declpat-launch -algo bfs -workers 4 -kill-worker 1 -kill-epoch 1 -kill-mode body
//
// Or kill any worker yourself mid-run (kill -9 <pid>; pids are logged) — the
// heartbeat watchdog notices, the fleet restarts from the last committed
// checkpoint, and the run still completes. Every worker keeps an always-on
// flight recorder; after a kill, declpat-trace -postmortem FLIGHT_DIR
// reconstructs the dead worker's final moments. With -watch the launcher
// prints a live per-epoch imbalance line as the workers' streamed phase data
// completes each epoch, and -metrics ADDR serves the fleet's straggler
// gauges and departure census as OpenMetrics at http://ADDR/metrics:
//
//	declpat-launch -algo sssp -workers 4 -trace-dir /tmp/trace -flight-dir /tmp/flight -watch
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"declpat/internal/harness"
	"declpat/internal/mp"
)

func main() {
	// Spawned copies of this binary become rank hosts here and never return.
	mp.MaybeWorker()

	algo := flag.String("algo", "bfs", "algorithm: bfs, sssp, or cc")
	workers := flag.Int("workers", 4, "number of OS worker processes")
	ranks := flag.Int("ranks", 0, "global ranks (0 = 2 per worker)")
	threads := flag.Int("threads", 2, "handler threads per rank")
	scale := flag.Int("scale", 10, "RMAT scale (2^scale vertices)")
	edgeFactor := flag.Int("edgefactor", 8, "RMAT edges per vertex")
	seed := flag.Uint64("seed", 42, "workload + fault schedule root seed")
	source := flag.Uint("source", 0, "bfs/sssp source vertex")
	delta := flag.Int64("delta", 8, "sssp bucket width")
	network := flag.String("network", "tcp", "worker data-plane sockets: tcp or unix")
	drop := flag.Float64("drop", 0, "data-plane drop rate (per worker, seeded)")
	killWorker := flag.Int("kill-worker", -1, "worker index to kill on attempt 0 (-1 = none)")
	killEpoch := flag.Int64("kill-epoch", 1, "epoch whose commit vote triggers the kill")
	killMode := flag.String("kill-mode", "body", "kill point: entry, body, or term")
	restarts := flag.Int("restarts", 3, "max fleet respawns")
	traceDir := flag.String("trace-dir", "", "write per-worker traces + the merged fleet timeline here (declpat-trace -fleet)")
	flightDir := flag.String("flight-dir", "", "flight-recorder dump directory (default: the checkpoint dir; declpat-trace -postmortem)")
	ckptDir := flag.String("ckpt-dir", "", "checkpoint slot directory (default: a temp dir removed after the run)")
	watch := flag.Bool("watch", false, "print a live per-epoch straggler/imbalance line")
	metricsAddr := flag.String("metrics", "", "serve fleet OpenMetrics (straggler gauges, departure census) on this address")
	workerBin := flag.String("worker-bin", "", "worker executable (default: this binary, self-exec)")
	timeout := flag.Duration("round-timeout", 30*time.Second, "control-round watchdog")
	flag.Parse()

	if *ranks <= 0 {
		*ranks = 2 * *workers
	}
	spec := mp.LaunchSpec{
		Job: mp.JobSpec{
			Algo:       *algo,
			Scale:      *scale,
			EdgeFactor: *edgeFactor,
			Seed:       *seed,
			Ranks:      *ranks,
			Threads:    *threads,
			Source:     uint32(*source),
			Delta:      *delta,
			Network:    *network,
			Drop:       *drop,
			TraceDir:   *traceDir,
			FlightDir:  *flightDir,
		},
		Workers:       *workers,
		RootSeed:      *seed,
		MaxRestarts:   *restarts,
		RoundTimeout:  *timeout,
		CheckpointDir: *ckptDir,
		Log:           os.Stderr,
	}
	if *workerBin != "" {
		spec.WorkerCommand = []string{*workerBin}
	}
	if *killWorker >= 0 {
		spec.Kill = &mp.KillSpec{Worker: *killWorker, Epoch: *killEpoch, Mode: *killMode}
	}

	mon := mp.NewFleetMonitor()
	spec.OnStraggler = func(st mp.StragglerStat) {
		mon.Straggler(st)
		if *watch {
			fmt.Fprintln(os.Stderr, "declpat-launch: "+st.String())
		}
	}
	if *metricsAddr != "" {
		srv, err := harness.NewDebugServer(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "declpat-launch: metrics server:", err)
			os.Exit(1)
		}
		srv.HandleMetrics(mon.WriteOpenMetrics)
		fmt.Fprintf(os.Stderr, "declpat-launch: fleet metrics at http://%s/metrics\n", srv.Addr())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
	}

	start := time.Now()
	res, err := mp.Launch(spec)
	mon.Finish(res)
	if err != nil {
		fmt.Fprintln(os.Stderr, "declpat-launch:", err)
		os.Exit(1)
	}
	fmt.Printf("declpat-launch: %s over %d workers done in %v (attempts=%d clean-departures=%d run-id=%x)\n",
		*algo, *workers, time.Since(start).Round(time.Millisecond), res.Attempts, res.CleanDepartures, res.RunID)
	if st, ok := mon.Latest(); ok {
		fmt.Printf("declpat-launch: last %s\n", st.String())
	}
	if res.ClockErrNS > 0 {
		fmt.Printf("declpat-launch: fleet timeline aligned within ±%.1fµs\n", float64(res.ClockErrNS)/1e3)
	}
	if *flightDir != "" {
		fmt.Printf("declpat-launch: flight dumps in %s (declpat-trace -postmortem %s)\n", *flightDir, *flightDir)
	}
	for _, vec := range res.Vectors {
		nz := 0
		for _, v := range vec {
			if v != 0 {
				nz++
			}
		}
		fmt.Printf("declpat-launch: result vector: %d entries, %d nonzero\n", len(vec), nz)
	}
}
