package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: declpat/internal/am
BenchmarkCodecEncode/fixed-8   200   5690 ns/op   598.0 wire_B   9 B/op   0 allocs/op
BenchmarkCodecEncode/gob-8     200  17777 ns/op  1731 wire_B  8081 B/op  89 allocs/op
PASS
ok  	declpat/internal/am	0.217s
`

func TestParse(t *testing.T) {
	bs, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(bs))
	}
	b := bs[0]
	if b.Name != "BenchmarkCodecEncode/fixed" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", b.Name)
	}
	if b.Iters != 200 || b.Metrics["B/op"] != 9 || b.Metrics["wire_B"] != 598 || b.Metrics["allocs/op"] != 0 {
		t.Fatalf("bad parse: %+v", b)
	}
}

func TestCompare(t *testing.T) {
	tol := tolerances{def: 0.20, byKey: map[string]float64{}}
	base := []Benchmark{{Name: "BenchmarkCodecEncode/fixed",
		Metrics: map[string]float64{"B/op": 100, "allocs/op": 0, "wire_B": 600}}}
	ok := []Benchmark{{Name: "BenchmarkCodecEncode/fixed",
		Metrics: map[string]float64{"B/op": 110, "allocs/op": 1, "wire_B": 600}}}
	if bad := compare(ok, base, "fixed", tol, 64); len(bad) != 0 {
		t.Fatalf("within-limit run flagged: %v", bad)
	}
	regressed := []Benchmark{{Name: "BenchmarkCodecEncode/fixed",
		Metrics: map[string]float64{"B/op": 100, "allocs/op": 0, "wire_B": 900}}}
	if bad := compare(regressed, base, "fixed", tol, 64); len(bad) != 1 {
		t.Fatalf("wire_B regression not flagged: %v", bad)
	}
	// A filter that matches nothing in the baseline must fail loudly, not
	// silently pass.
	if bad := compare(ok, nil, "fixed", tol, 64); len(bad) == 0 {
		t.Fatal("empty baseline passed silently")
	}
}

func TestParseTolerance(t *testing.T) {
	// Unset spec falls back to -max-regress.
	tol, err := parseTolerance("", 0.20)
	if err != nil || tol.of("B/op") != 0.20 {
		t.Fatalf("fallback: tol=%v err=%v", tol, err)
	}
	// A bare percent applies to every metric.
	tol, err = parseTolerance("50", 0.20)
	if err != nil || tol.of("B/op") != 0.50 || tol.of("wire_B") != 0.50 {
		t.Fatalf("bare percent: tol=%+v err=%v", tol, err)
	}
	// Per-metric entries override the default; unlisted metrics keep it.
	tol, err = parseTolerance("B/op=20, allocs/op=5", 0.10)
	if err != nil || tol.of("B/op") != 0.20 || tol.of("allocs/op") != 0.05 || tol.of("wire_B") != 0.10 {
		t.Fatalf("per-metric: tol=%+v err=%v", tol, err)
	}
	// Mixed: bare default plus a per-metric budget.
	tol, err = parseTolerance("30,wire_B=10", 0.20)
	if err != nil || tol.of("B/op") != 0.30 || tol.of("wire_B") != 0.10 {
		t.Fatalf("mixed: tol=%+v err=%v", tol, err)
	}
	if _, err = parseTolerance("B/op=lots", 0.20); err == nil {
		t.Fatal("malformed percent accepted")
	}
	if _, err = parseTolerance("-5", 0.20); err == nil {
		t.Fatal("negative percent accepted")
	}

	// A per-metric tolerance gates exactly its metric.
	base := []Benchmark{{Name: "BenchmarkX/fixed", Metrics: map[string]float64{"B/op": 1000, "wire_B": 1000}}}
	cur := []Benchmark{{Name: "BenchmarkX/fixed", Metrics: map[string]float64{"B/op": 1200, "wire_B": 1200}}}
	tight, _ := parseTolerance("B/op=30,wire_B=5", 0.20)
	bad := compare(cur, base, "fixed", tight, 0)
	if len(bad) != 1 || !strings.Contains(bad[0], "wire_B") {
		t.Fatalf("per-metric gate: %v", bad)
	}
}
