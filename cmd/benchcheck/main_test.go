package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: declpat/internal/am
BenchmarkCodecEncode/fixed-8   200   5690 ns/op   598.0 wire_B   9 B/op   0 allocs/op
BenchmarkCodecEncode/gob-8     200  17777 ns/op  1731 wire_B  8081 B/op  89 allocs/op
PASS
ok  	declpat/internal/am	0.217s
`

func TestParse(t *testing.T) {
	bs, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(bs))
	}
	b := bs[0]
	if b.Name != "BenchmarkCodecEncode/fixed" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", b.Name)
	}
	if b.Iters != 200 || b.Metrics["B/op"] != 9 || b.Metrics["wire_B"] != 598 || b.Metrics["allocs/op"] != 0 {
		t.Fatalf("bad parse: %+v", b)
	}
}

func TestCompare(t *testing.T) {
	base := []Benchmark{{Name: "BenchmarkCodecEncode/fixed",
		Metrics: map[string]float64{"B/op": 100, "allocs/op": 0, "wire_B": 600}}}
	ok := []Benchmark{{Name: "BenchmarkCodecEncode/fixed",
		Metrics: map[string]float64{"B/op": 110, "allocs/op": 1, "wire_B": 600}}}
	if bad := compare(ok, base, "fixed", 0.20, 64); len(bad) != 0 {
		t.Fatalf("within-limit run flagged: %v", bad)
	}
	regressed := []Benchmark{{Name: "BenchmarkCodecEncode/fixed",
		Metrics: map[string]float64{"B/op": 100, "allocs/op": 0, "wire_B": 900}}}
	if bad := compare(regressed, base, "fixed", 0.20, 64); len(bad) != 1 {
		t.Fatalf("wire_B regression not flagged: %v", bad)
	}
	// A filter that matches nothing in the baseline must fail loudly, not
	// silently pass.
	if bad := compare(ok, nil, "fixed", 0.20, 64); len(bad) == 0 {
		t.Fatal("empty baseline passed silently")
	}
}
