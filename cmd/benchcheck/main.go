// Command benchcheck turns `go test -bench -benchmem` output into a
// machine-readable JSON report and gates CI on allocation/size regressions.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkCodec' -benchmem ./internal/am/ > bench.txt
//	benchcheck -in bench.txt [-e20 e20.json] [-e21 e21.json] [-json BENCH_codec.json] \
//	           [-baseline BENCH_codec.json] [-filter fixed] [-tolerance "B/op=20,allocs/op=5"]
//
// Parsing accepts any benchmark line (name, iterations, then value/unit
// pairs); the trailing -N GOMAXPROCS suffix is stripped so results match
// across machines with different core counts. With -baseline, every parsed
// benchmark whose name contains -filter is compared against the same name
// in the baseline on the B/op, allocs/op, and wire_B metrics; a current
// value exceeding baseline*(1+tolerance)+slack fails the run. ns/op is
// deliberately not gated — wall time is too machine-dependent for CI.
//
// -tolerance sets the allowed regression in percent: a bare number ("20")
// applies to every gated metric, and metric=percent entries ("B/op=20,
// allocs/op=5") set per-metric budgets (unlisted metrics keep the default).
// The older -max-regress fraction is the fallback when -tolerance is unset.
//
// With -e20/-e21/-e22 the given JSON files (the E20 codec matrix from
// `experiments -codec-json`, the E21 transport matrix from
// `experiments -transport-json`, the E22 phase-timer matrix from
// `experiments -obs-json`) are embedded in the report, so the committed
// BENCH_*.json carries both the microbenchmark baseline and the
// end-to-end table.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the BENCH_*.json document.
type Report struct {
	Benchmarks []Benchmark     `json:"benchmarks"`
	E20        json.RawMessage `json:"e20,omitempty"`
	E21        json.RawMessage `json:"e21,omitempty"`
	E22        json.RawMessage `json:"e22,omitempty"`
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parse reads `go test -bench` output: every line starting with "Benchmark"
// becomes one Benchmark; everything else (goos/pkg headers, PASS) is
// ignored.
func parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:    gomaxprocsSuffix.ReplaceAllString(fields[0], ""),
			Iters:   iters,
			Metrics: map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchcheck: bad value %q on line %q", fields[i], sc.Text())
			}
			b.Metrics[fields[i+1]] = v
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// gatedMetrics are the deterministic-enough metrics compared against the
// baseline. ns/op is excluded on purpose.
var gatedMetrics = []string{"B/op", "allocs/op", "wire_B"}

// tolerances holds the allowed fractional regression per metric plus the
// default for metrics without their own entry.
type tolerances struct {
	def   float64
	byKey map[string]float64
}

func (t tolerances) of(metric string) float64 {
	if v, ok := t.byKey[metric]; ok {
		return v
	}
	return t.def
}

// parseTolerance reads the -tolerance spec: a bare percent ("20") sets the
// default for every gated metric; metric=percent entries ("B/op=20,
// allocs/op=5") set per-metric budgets. fallback (the -max-regress fraction)
// is the default when the spec has no bare entry.
func parseTolerance(spec string, fallback float64) (tolerances, error) {
	t := tolerances{def: fallback, byKey: map[string]float64{}}
	if spec == "" {
		return t, nil
	}
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		key, val := "", ent
		if i := strings.LastIndex(ent, "="); i >= 0 {
			key, val = strings.TrimSpace(ent[:i]), strings.TrimSpace(ent[i+1:])
		}
		pct, err := strconv.ParseFloat(val, 64)
		if err != nil || pct < 0 {
			return t, fmt.Errorf("bad tolerance entry %q (want percent, e.g. \"20\" or \"B/op=20\")", ent)
		}
		if key == "" {
			t.def = pct / 100
		} else {
			t.byKey[key] = pct / 100
		}
	}
	return t, nil
}

// compare checks every current benchmark matching filter against the
// baseline and returns the list of violations.
func compare(current, baseline []Benchmark, filter string, tol tolerances, slack float64) []string {
	base := map[string]Benchmark{}
	for _, b := range baseline {
		base[b.Name] = b
	}
	var bad []string
	matched := 0
	for _, b := range current {
		if filter != "" && !strings.Contains(b.Name, filter) {
			continue
		}
		ref, ok := base[b.Name]
		if !ok {
			continue // new benchmark: no baseline yet, passes
		}
		matched++
		for _, m := range gatedMetrics {
			cur, ok1 := b.Metrics[m]
			was, ok2 := ref.Metrics[m]
			if !ok1 || !ok2 {
				continue
			}
			limit := was*(1+tol.of(m)) + slack
			if cur > limit {
				bad = append(bad, fmt.Sprintf("%s %s: %.1f > limit %.1f (baseline %.1f, +%.0f%% + %.0f slack)",
					b.Name, m, cur, limit, was, tol.of(m)*100, slack))
			}
		}
	}
	if matched == 0 {
		bad = append(bad, fmt.Sprintf("no current benchmark matching %q had a baseline entry — wrong -filter or empty baseline?", filter))
	}
	return bad
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}

func main() {
	in := flag.String("in", "", "bench output file (default: stdin)")
	e20 := flag.String("e20", "", "E20 codec-matrix JSON to embed in the report")
	e21 := flag.String("e21", "", "E21 transport-matrix JSON to embed in the report")
	e22 := flag.String("e22", "", "E22 phase-timer-matrix JSON to embed in the report")
	jsonOut := flag.String("json", "", "write the parsed report to this file")
	baseline := flag.String("baseline", "", "compare against this committed report")
	filter := flag.String("filter", "fixed", "substring of benchmark names to gate")
	maxRegress := flag.Float64("max-regress", 0.20, "allowed fractional regression vs baseline (fallback when -tolerance is unset)")
	tolerance := flag.String("tolerance", "", `allowed regression in percent: "20" for all gated metrics, or per-metric "B/op=20,allocs/op=5"`)
	slack := flag.Float64("slack", 64, "absolute slack added to each limit (absorbs noise on near-zero baselines)")
	flag.Parse()

	tol, err := parseTolerance(*tolerance, *maxRegress)
	if err != nil {
		fail(err)
	}

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		src = f
	}
	benches, err := parse(src)
	if err != nil {
		fail(err)
	}
	if len(benches) == 0 {
		fail(fmt.Errorf("no benchmark lines found in input"))
	}
	rep := Report{Benchmarks: benches}
	embed := func(path string) json.RawMessage {
		raw, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		if !json.Valid(raw) {
			fail(fmt.Errorf("%s: not valid JSON", path))
		}
		return json.RawMessage(raw)
	}
	if *e20 != "" {
		rep.E20 = embed(*e20)
	}
	if *e21 != "" {
		rep.E21 = embed(*e21)
	}
	if *e22 != "" {
		rep.E22 = embed(*e22)
	}

	// Compare BEFORE writing: -json and -baseline may be the same path.
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fail(err)
		}
		var ref Report
		if err := json.Unmarshal(raw, &ref); err != nil {
			fail(fmt.Errorf("%s: %v", *baseline, err))
		}
		if bad := compare(benches, ref.Benchmarks, *filter, tol, *slack); len(bad) > 0 {
			for _, m := range bad {
				fmt.Fprintln(os.Stderr, "REGRESSION:", m)
			}
			os.Exit(1)
		}
		fmt.Printf("benchcheck: %d benchmarks, %q gate passed vs %s\n", len(benches), *filter, *baseline)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(rep)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("benchcheck: wrote %s (%d benchmarks)\n", *jsonOut, len(benches))
	}
}
