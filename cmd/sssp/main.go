// Command sssp runs single-source shortest paths over the simulated
// distributed machine and verifies the result against sequential Dijkstra.
//
// Usage:
//
//	sssp -scale 14 -ranks 4 -threads 2 -strategy delta -delta 32
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"declpat"
	"declpat/internal/seq"
)

func main() {
	scale := flag.Int("scale", 14, "RMAT scale (2^scale vertices)")
	ef := flag.Int("edgefactor", 8, "edges per vertex")
	seed := flag.Uint64("seed", 1, "generator seed")
	ranks := flag.Int("ranks", 4, "simulated ranks")
	threads := flag.Int("threads", 2, "handler threads per rank")
	strat := flag.String("strategy", "fixed-point", "fixed-point | delta | delta-dist")
	delta := flag.Int64("delta", 32, "Δ-stepping bucket width")
	src := flag.Uint("src", 0, "source vertex")
	verify := flag.Bool("verify", true, "check against sequential Dijkstra")
	trace := flag.Int("trace", 0, "record N substrate events and print the tail")
	typeStats := flag.Bool("typestats", false, "print per-message-type traffic")
	flag.Parse()

	n, edges := declpat.RMAT(*scale, *ef, declpat.WeightSpec{Min: 1, Max: 100}, *seed)
	u := declpat.New(*ranks, declpat.WithThreads(*threads), declpat.WithTraceCapacity(*trace))
	dist := declpat.NewBlockDist(n, *ranks)
	g := declpat.BuildGraph(dist, edges, declpat.GraphOptions{})
	eng := declpat.NewEngine(u, g, declpat.NewLockMap(dist, 1), declpat.DefaultPlanOptions())
	s := declpat.NewSSSP(eng)
	switch *strat {
	case "fixed-point":
		s.UseFixedPoint()
	case "delta":
		s.UseDelta(u, *delta)
	case "delta-dist":
		s.UseDeltaDistributed(u, *delta, *threads)
	default:
		log.Fatalf("unknown strategy %q", *strat)
	}

	start := time.Now()
	if err := u.Run(func(r *declpat.Rank) { s.Run(r, declpat.Vertex(*src)) }); err != nil {
		log.Fatalf("run failed: %v", err)
	}
	elapsed := time.Since(start)

	got := s.Dist.Gather()
	reached := 0
	for _, d := range got {
		if d < declpat.Inf {
			reached++
		}
	}
	fmt.Printf("sssp: n=%d m=%d ranks=%d threads=%d strategy=%s\n", n, len(edges), *ranks, *threads, *strat)
	fmt.Printf("time=%s reached=%d/%d\n", elapsed.Round(time.Microsecond), reached, n)
	fmt.Printf("messages=%d envelopes=%d bytes=%d handlers=%d epochs=%d\n",
		u.Stats.MsgsSent(), u.Stats.Envelopes(), u.Stats.BytesSent(),
		u.Stats.HandlersRun(), u.Stats.Epochs())
	fmt.Printf("relax: attempts=%d succeeded=%d work-items=%d bucket-epochs=%d\n",
		s.Relax.Stats.TestsTrue.Load()+s.Relax.Stats.TestsFalse.Load(),
		s.Relax.Stats.ModsChanged.Load(), s.Relax.Stats.WorkItems.Load(), s.BucketEpochs())

	if *typeStats {
		fmt.Println("per-type traffic:")
		for _, ts := range u.TypeStats() {
			fmt.Printf("  %-24s size=%-3d sent=%-9d handled=%-9d envelopes=%d\n",
				ts.Name, ts.Size, ts.Sent, ts.Handled, ts.Envelopes)
		}
	}
	if *trace > 0 {
		events := u.Trace()
		fmt.Printf("trace: %d events recorded (%d dropped); tail:\n", len(events), u.TraceDropped())
		tail := events
		if len(tail) > 12 {
			tail = tail[len(tail)-12:]
		}
		for _, ev := range tail {
			fmt.Printf("  %s\n", ev)
		}
	}

	if *verify {
		want := seq.Dijkstra(n, edges, declpat.Vertex(*src))
		bad := 0
		for v := range want {
			w := want[v]
			if w == seq.Inf {
				w = declpat.Inf
			}
			if got[v] != w {
				bad++
			}
		}
		if bad != 0 {
			fmt.Printf("VERIFY FAILED: %d wrong distances\n", bad)
			os.Exit(1)
		}
		fmt.Println("verify: OK (matches sequential Dijkstra)")
	}
}
