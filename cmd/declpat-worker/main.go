// declpat-worker is the external data-plane process of the socket transport:
// a frame relay. A universe configured with SockOptions.Relay pointed at a
// running worker dials every inter-rank connection *through* it — the worker
// reads a small hello naming the target rank's listen address, dials it, and
// splices the two connections byte-for-byte. Every data frame, ack,
// heartbeat, handshake, and reconnect then genuinely crosses an OS process
// boundary, which is what makes killing the worker a real connection
// failure the transport's reconnect machinery has to survive.
//
// Usage:
//
//	declpat-worker -listen tcp://127.0.0.1:9730
//	declpat-worker -listen unix:///tmp/declpat-worker.sock
//
// Then run any declpat program with the socket transport and
// SockOptions.Relay set to the same address (see the README two-process
// quickstart). The worker is stateless: kill it mid-run and start a fresh
// one on the same address, and the transport reconnects through it.
//
// The same listener answers telemetry queries (relay.QueryTelemetry): the
// coordinator's Universe.Metrics() folds the worker's connection counters,
// byte totals, and splice-phase histograms into its per-process breakdown.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"declpat/internal/relay"
)

func main() {
	listen := flag.String("listen", "tcp://127.0.0.1:9730",
		"relay listen address (tcp://host:port or unix:///path)")
	name := flag.String("name", "relay",
		"process name reported in telemetry frames")
	flag.Parse()

	network, addr, err := relay.SplitAddr(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "declpat-worker:", err)
		os.Exit(2)
	}
	if network == "unix" {
		// A stale socket file from a killed predecessor would block the
		// restart-on-same-address workflow.
		os.Remove(addr)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "declpat-worker:", err)
		os.Exit(1)
	}
	fmt.Printf("declpat-worker: relaying on %s://%s (telemetry on the same address)\n", network, ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		ln.Close()
	}()

	if err := relay.NewServer(*name).Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "declpat-worker:", err)
		os.Exit(1)
	}
}
