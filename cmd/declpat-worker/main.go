// declpat-worker is the external worker process of the distributed runtime,
// in one of two modes.
//
// Rank-host mode (-host, or the DECLPAT_MP_ADDR / DECLPAT_MP_WORKER
// environment set by declpat-launch): the process dials the launcher's
// control plane, receives its job and contiguous global rank range in the
// welcome frame, and runs the unmodified algorithm kernels with every
// barrier, gather, termination wave, and recovery fence carried as wire
// frames. Kill it mid-run and the launcher respawns it; the replacement
// reloads the last committed checkpoint and the fleet converges on a result
// bit-identical to the fault-free run.
//
// Relay mode (-listen, the default): a stateless frame relay for the socket
// transport. A universe configured with SockOptions.Relay pointed at a
// running worker dials every inter-rank connection *through* it — the worker
// reads a small hello naming the target rank's listen address, dials it, and
// splices the two connections byte-for-byte. The same listener answers
// telemetry queries (relay.QueryTelemetry).
//
// Usage:
//
//	declpat-worker -listen tcp://127.0.0.1:9730
//	declpat-worker -listen unix:///tmp/declpat-worker.sock
//	declpat-worker -host 127.0.0.1:9731 -index 2
//
// Exit codes (rank-host mode; the launcher logs which it saw on respawn):
//
//	0 clean completion or graceful SIGTERM departure
//	1 fatal error (bad job, dial failure)
//	2 usage
//	3 restart requested (the fleet aborted; respawn me)
//	4 control peer closed the connection
//	5 control frame failed to decode (protocol damage, not a dead peer)
//
// Relay mode reuses codes 1, 2, and 4 (4 when the listener died to a
// connection-level error rather than a local fault).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"

	"declpat/internal/mp"
	"declpat/internal/relay"
)

func main() {
	// Launcher-spawned rank hosts are configured by environment; this call
	// does not return for them.
	mp.MaybeWorker()

	listen := flag.String("listen", "tcp://127.0.0.1:9730",
		"relay listen address (tcp://host:port or unix:///path)")
	name := flag.String("name", "relay",
		"process name reported in telemetry frames")
	host := flag.String("host", "",
		"control-plane address to dial as a rank host (switches off relay mode)")
	index := flag.Int("index", -1,
		"worker index within the fleet (rank-host mode)")
	flag.Parse()

	if *host != "" {
		if *index < 0 {
			fmt.Fprintln(os.Stderr, "declpat-worker: -host needs -index")
			os.Exit(mp.ExitUsage)
		}
		os.Exit(mp.RunWorker(*host, *index))
	}

	network, addr, err := relay.SplitAddr(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "declpat-worker:", err)
		os.Exit(mp.ExitUsage)
	}
	if network == "unix" {
		// A stale socket file from a killed predecessor would block the
		// restart-on-same-address workflow.
		os.Remove(addr)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "declpat-worker:", err)
		os.Exit(mp.ExitFatal)
	}
	fmt.Printf("declpat-worker: relaying on %s://%s (telemetry on the same address)\n", network, ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		ln.Close()
	}()

	if err := relay.NewServer(*name).Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "declpat-worker:", err)
		os.Exit(relayExitCode(err))
	}
}

// relayExitCode distinguishes a listener killed by a connection-level error
// from a local fault, mirroring the rank-host codes.
func relayExitCode(err error) int {
	var oe *net.OpError
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNRESET) || errors.As(err, &oe) {
		return mp.ExitPeerClosed
	}
	return mp.ExitFatal
}
