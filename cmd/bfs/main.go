// Command bfs runs a Graph500-style breadth-first search over the simulated
// machine, reporting traversed edges per second (TEPS) and verifying levels
// against a sequential BFS.
//
// Usage:
//
//	bfs -scale 15 -ranks 4 -threads 2 -roots 8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"declpat"
	"declpat/internal/seq"
)

func main() {
	scale := flag.Int("scale", 14, "RMAT scale (2^scale vertices)")
	ef := flag.Int("edgefactor", 16, "edges per vertex (Graph500 default 16)")
	seed := flag.Uint64("seed", 1, "generator seed")
	ranks := flag.Int("ranks", 4, "simulated ranks")
	threads := flag.Int("threads", 2, "handler threads per rank")
	roots := flag.Int("roots", 4, "number of BFS roots (Graph500 style)")
	verify := flag.Bool("verify", true, "check against sequential BFS")
	flag.Parse()

	n, edges := declpat.RMAT(*scale, *ef, declpat.WeightSpec{}, *seed)
	u := declpat.New(*ranks, declpat.WithThreads(*threads))
	dist := declpat.NewBlockDist(n, *ranks)
	g := declpat.BuildGraph(dist, edges, declpat.GraphOptions{})
	eng := declpat.NewEngine(u, g, declpat.NewLockMap(dist, 1), declpat.DefaultPlanOptions())
	b := declpat.NewBFS(eng)

	srcs := make([]declpat.Vertex, *roots)
	for i := range srcs {
		srcs[i] = declpat.Vertex((uint64(i)*2654435761 + *seed) % uint64(n))
	}

	fmt.Printf("bfs: n=%d m=%d ranks=%d threads=%d roots=%d\n", n, len(edges), *ranks, *threads, *roots)
	levels := make([][]int64, *roots)
	i := 0
	err := u.Run(func(r *declpat.Rank) {
		for ri, src := range srcs {
			start := time.Now()
			b.Run(r, src)
			r.Barrier()
			if r.ID() == 0 {
				elapsed := time.Since(start)
				lv := b.Level.Gather()
				levels[ri] = lv
				traversed := int64(0)
				for _, e := range edges {
					if lv[e.Src] < declpat.Inf {
						traversed++
					}
				}
				teps := float64(traversed) / elapsed.Seconds()
				fmt.Printf("root %6d: time=%-12s traversed=%-9d TEPS=%.3g\n",
					src, elapsed.Round(time.Microsecond), traversed, teps)
				i++
			}
			r.Barrier()
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfs: run failed:", err)
		os.Exit(1)
	}

	if *verify {
		bad := 0
		for ri, src := range srcs {
			want := seq.BFS(n, edges, src)
			for v := range want {
				w := want[v]
				if w == seq.Inf {
					w = declpat.Inf
				}
				if levels[ri][v] != w {
					bad++
				}
			}
		}
		if bad != 0 {
			fmt.Printf("VERIFY FAILED: %d wrong levels\n", bad)
			os.Exit(1)
		}
		fmt.Println("verify: OK (matches sequential BFS)")
	}
}
