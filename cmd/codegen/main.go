// Command codegen runs the pattern→Go translator (the paper's §VI future
// work): it prints a standalone Go source file implementing the chosen
// library pattern with direct AM++-style messaging, equivalent to the
// interpretive engine but without plan-dispatch overhead.
//
// Usage:
//
//	codegen -pattern SSSP -package ssspgen > internal/ssspgen/ssspgen.go
package main

import (
	"flag"
	"fmt"
	"os"

	"declpat/internal/algorithms"
	"declpat/internal/pattern"
)

func main() {
	name := flag.String("pattern", "SSSP", "library pattern to translate (SSSP, BFS, Widest, Degree)")
	pkg := flag.String("package", "gen", "package name for the generated file")
	flag.Parse()

	library := map[string]func() *pattern.Pattern{
		"SSSP":   algorithms.SSSPPattern,
		"BFS":    algorithms.BFSPattern,
		"Widest": algorithms.WidestPattern,
		"Degree": algorithms.DegreePattern,
	}
	mk, ok := library[*name]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown or untranslatable pattern %q\n", *name)
		os.Exit(2)
	}
	src, err := pattern.GenerateGo(mk(), pattern.DefaultPlanOptions(), *pkg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(src)
}
