// Command declpat-trace analyzes substrate trace exports: per-epoch summary
// tables, handler-latency percentiles per message type, per-rank load
// imbalance, and conversion to Chrome trace-event JSON (loadable in Perfetto
// at ui.perfetto.dev, or chrome://tracing).
//
// It either ingests a JSONL trace produced by Universe.WriteTraceJSONL:
//
//	declpat-trace -in run.jsonl
//	declpat-trace -in run.jsonl -chrome run.chrome.json
//
// or runs a built-in traced workload itself and analyzes the capture:
//
//	declpat-trace -run bfs -scale 12 -ranks 4 -out bfs.jsonl -chrome bfs.chrome.json
//
// With -critical-path the tool reconstructs the causal lineage DAG from the
// handler events and reports, per epoch, the weighted critical path (handler
// execution + queue/link wait + quiescence tail), per-rank slack, chain-depth
// histograms, and the slowest epoch's chain itself, rank by rank:
//
//	declpat-trace -run bfs -critical-path
//	declpat-trace -in run.jsonl -critical-path -path-epoch 2 -path-max 32
//
// With -phases the tool reports the phase-timer breakdown instead: per
// epoch, the distribution of collect/build_csr/kernel/emit/barrier/recovery
// spans across ranks, and per rank, the total time in each phase (the
// straggler view). Requires a trace captured with Config.Timing on. With
// -json any table report is emitted as a JSON array for downstream tooling:
//
//	declpat-trace -run sssp -phases
//	declpat-trace -in run.jsonl -phases -json
//
// -in also accepts a *directory* of per-worker traces from a multi-process
// launch (worker-*.trace.jsonl, or the coordinator's own fleet.trace.jsonl
// when present): the files are merged onto the launcher timebase using each
// worker's measured clock offset, and every analyzer — -phases, -chrome,
// -critical-path — consumes the merged fleet timeline. -fleet DIR is the
// same thing, spelled explicitly:
//
//	declpat-trace -fleet /tmp/trace -chrome fleet.chrome.json
//	declpat-trace -in /tmp/trace -phases
//
// With -postmortem the tool reads the flight-recorder dumps
// (flight-*.dpfr) a launched fleet leaves in its checkpoint/flight
// directory and reconstructs each worker's final moments: the reason and
// epoch of death, phases still open at the kill (a SIGKILLed worker is
// dumped mid-phase), the last landmark events, and per-epoch counter deltas:
//
//	declpat-trace -postmortem /tmp/ckpt
//
// Supported -run workloads: bfs, sssp, cc.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"declpat"
	"declpat/internal/harness"
	"declpat/internal/obs"
)

func main() {
	in := flag.String("in", "", "JSONL trace to analyze, or a directory of worker-*.trace.jsonl to merge")
	fleet := flag.String("fleet", "", "directory of per-worker traces to merge onto the launcher timebase (same as -in DIR)")
	postmortem := flag.String("postmortem", "", "directory of flight-recorder dumps (flight-*.dpfr) to reconstruct")
	run := flag.String("run", "", "run a built-in traced workload instead: bfs | sssp | cc")
	out := flag.String("out", "", "with -run: write the captured trace as JSONL to this file")
	chrome := flag.String("chrome", "", "write Chrome trace-event JSON (Perfetto-loadable) to this file")
	scale := flag.Int("scale", 12, "with -run: RMAT scale (2^scale vertices)")
	ef := flag.Int("edgefactor", 8, "with -run: edges per vertex")
	seed := flag.Uint64("seed", 42, "with -run: generator seed")
	ranks := flag.Int("ranks", 4, "with -run: simulated ranks")
	threads := flag.Int("threads", 2, "with -run: handler threads per rank")
	capacity := flag.Int("cap", 1<<20, "with -run: trace ring capacity (events, split across ranks)")
	ring := flag.Int("ring", 0, "with -run: per-rank trace ring size in events (0 = derive from -cap)")
	critPath := flag.Bool("critical-path", false, "reconstruct the causal lineage DAG and report per-epoch critical paths")
	pathEpoch := flag.Int64("path-epoch", -1, "with -critical-path: print the chain of this epoch (-1 = slowest)")
	pathMax := flag.Int("path-max", 48, "with -critical-path: elide chain rows beyond this many hops (0 = no limit)")
	phases := flag.Bool("phases", false, "report the per-epoch phase breakdown and per-rank phase load (needs Timing-on trace)")
	asJSON := flag.Bool("json", false, "emit the analyzer tables as a JSON array instead of text")
	flag.Parse()

	if *postmortem != "" {
		if err := postmortemReport(os.Stdout, *postmortem); err != nil {
			fmt.Fprintln(os.Stderr, "declpat-trace:", err)
			os.Exit(1)
		}
		return
	}
	if *fleet != "" {
		*in = *fleet
	}

	var meta obs.Meta
	var recs []obs.Record
	switch {
	case *run != "":
		u, err := runWorkload(*run, *scale, *ef, *seed, *ranks, *threads, *capacity, *ring)
		if err != nil {
			fmt.Fprintln(os.Stderr, "declpat-trace:", err)
			fmt.Fprintln(os.Stderr, "usage: declpat-trace -run WORKLOAD [-scale N] [-ranks N] [-out FILE] [-chrome FILE]")
			fmt.Fprintln(os.Stderr, "supported workloads: bfs, sssp, cc")
			os.Exit(2)
		}
		meta, recs = u.ExportTrace(*run)
		if *out != "" {
			if err := writeFile(*out, func(f *os.File) error {
				return obs.WriteJSONL(f, meta, recs)
			}); err != nil {
				fmt.Fprintln(os.Stderr, "declpat-trace:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d trace records to %s\n", len(recs), *out)
		}
	case *in != "":
		var err error
		if st, serr := os.Stat(*in); serr == nil && st.IsDir() {
			meta, recs, err = obs.ReadTraceDir(*in)
		} else {
			err = func() error {
				f, err := os.Open(*in)
				if err != nil {
					return err
				}
				defer f.Close()
				meta, recs, err = obs.ReadJSONL(f)
				return err
			}()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "declpat-trace:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "declpat-trace: need -in FILE|DIR, -fleet DIR, -postmortem DIR, or -run bfs|sssp|cc (see -help)")
		os.Exit(2)
	}

	if *chrome != "" {
		if err := writeFile(*chrome, func(f *os.File) error {
			return obs.WriteChromeTrace(f, meta, recs)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "declpat-trace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote Chrome trace to %s (load at ui.perfetto.dev)\n", *chrome)
	}

	label := meta.Label
	if label == "" {
		label = "(unlabeled)"
	}
	// With -json the tables go to stdout as pure JSON; the banner moves to
	// stderr so the output stays machine-parseable.
	banner := os.Stdout
	if *asJSON {
		banner = os.Stderr
	}
	fmt.Fprintf(banner, "trace: %s — %d records, %d ranks, %d message types", label, len(recs), meta.Ranks, len(meta.Types))
	if meta.ClockErrNS > 0 {
		fmt.Fprintf(banner, " (cross-process alignment ±%.1fµs)", float64(meta.ClockErrNS)/1e3)
	}
	if meta.Dropped > 0 {
		fmt.Fprintf(banner, " (%d events overwritten by the ring — raise -cap or TraceCapacity)", meta.Dropped)
	}
	fmt.Fprintln(banner)
	if *critPath {
		if err := criticalPathReport(os.Stdout, meta, recs, *pathEpoch, *pathMax); err != nil {
			fmt.Fprintln(os.Stderr, "declpat-trace:", err)
			os.Exit(1)
		}
		return
	}

	var tables []*harness.Table
	if *phases {
		tables = obs.PhaseTables(meta, recs)
		if tables[0].Rows() == 0 && tables[1].Rows() == 0 {
			fmt.Fprintln(os.Stderr, "declpat-trace: trace has no phase spans (captured with Config.Timing off?)")
			os.Exit(1)
		}
	} else {
		tables = obs.Analyze(meta, recs)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintln(os.Stderr, "declpat-trace:", err)
			os.Exit(1)
		}
		return
	}
	for _, t := range tables {
		fmt.Println()
		t.Fprint(os.Stdout)
	}
}

// criticalPathReport reconstructs the lineage forest and prints the
// per-epoch critical-path summary, per-rank slack, the chain-depth
// histogram, and the hop-by-hop chain of one epoch (the slowest by span
// unless epochSel selects another). It errors — so the CLI can exit
// non-zero — when the trace carries no lineage or yields no path.
func criticalPathReport(w io.Writer, meta obs.Meta, recs []obs.Record, epochSel int64, maxHops int) error {
	lin := obs.BuildLineage(meta, recs)
	if lin.Handlers() == 0 {
		return fmt.Errorf("trace has no handler lineage events (captured with Lineage off, or before lineage existed)")
	}
	paths := lin.CriticalPaths()
	if len(paths) == 0 {
		return fmt.Errorf("no epoch yielded a critical path")
	}
	if !lin.Connected() {
		fmt.Fprintf(w, "warning: %d handler events have unresolvable parents (ring overwrote their producers — raise -cap/-ring); paths may be truncated\n\n", lin.Orphans)
	}
	obs.CriticalPathTable(lin).Fprint(w)
	fmt.Fprintln(w)
	obs.RankSlackTable(lin).Fprint(w)
	fmt.Fprintln(w)
	obs.ChainDepthTable(lin).Fprint(w)
	fmt.Fprintln(w)

	var pick *obs.CriticalPath
	if epochSel >= 0 {
		for _, cp := range paths {
			if cp.Epoch == epochSel {
				pick = cp
				break
			}
		}
		if pick == nil {
			return fmt.Errorf("epoch %d not in trace (epochs 0..%d)", epochSel, len(lin.Epochs)-1)
		}
	} else {
		for _, cp := range paths {
			if pick == nil || cp.SpanNs > pick.SpanNs {
				pick = cp
			}
		}
	}
	if len(pick.Hops) == 0 {
		return fmt.Errorf("epoch %d has an empty critical path", pick.Epoch)
	}
	obs.ChainTable(pick, maxHops).Fprint(w)
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runWorkload executes one traced built-in workload and returns its universe.
func runWorkload(name string, scale, ef int, seed uint64, ranks, threads, capacity, ring int) (*declpat.Universe, error) {
	u := declpat.New(ranks,
		declpat.WithThreads(threads),
		declpat.WithTraceCapacity(capacity),
		declpat.WithTraceRingSize(ring),
		declpat.WithTiming())
	dist := declpat.NewBlockDist(1<<scale, ranks)
	var err error
	switch name {
	case "bfs":
		n, edges := declpat.RMAT(scale, ef, declpat.WeightSpec{}, seed)
		g := declpat.BuildGraph(dist, edges, declpat.GraphOptions{})
		eng := declpat.NewEngine(u, g, declpat.NewLockMap(dist, 1), declpat.DefaultPlanOptions())
		b := declpat.NewBFS(eng)
		err = u.Run(func(r *declpat.Rank) { b.Run(r, declpat.Vertex(seed%uint64(n))) })
	case "sssp":
		n, edges := declpat.RMAT(scale, ef, declpat.WeightSpec{Min: 1, Max: 100}, seed)
		g := declpat.BuildGraph(dist, edges, declpat.GraphOptions{})
		eng := declpat.NewEngine(u, g, declpat.NewLockMap(dist, 1), declpat.DefaultPlanOptions())
		s := declpat.NewSSSP(eng)
		err = u.Run(func(r *declpat.Rank) { s.Run(r, declpat.Vertex(seed%uint64(n))) })
	case "cc":
		_, edges := declpat.RMAT(scale, ef, declpat.WeightSpec{}, seed)
		g := declpat.BuildGraph(dist, edges, declpat.GraphOptions{Symmetrize: true})
		lm := declpat.NewLockMap(dist, 1)
		eng := declpat.NewEngine(u, g, lm, declpat.DefaultPlanOptions())
		c := declpat.NewCC(eng, lm)
		err = u.Run(func(r *declpat.Rank) { c.Run(r) })
	default:
		return nil, fmt.Errorf("unknown workload %q (want bfs, sssp, or cc)", name)
	}
	if err != nil {
		return nil, fmt.Errorf("%s run failed: %w", name, err)
	}
	return u, nil
}
