package main

import (
	"fmt"
	"io"
	"sort"

	"declpat/internal/obs"
)

// postmortemEvents bounds how many trailing landmark events each worker's
// report shows — the black box holds more; the report shows the final moments.
const postmortemEvents = 16

// postmortemReport renders every flight-recorder dump in dir: who died, when,
// in which epoch and phase, what the last landmark events were, and how the
// counters moved over the final epochs. Corrupt dumps are reported but do not
// suppress the readable ones.
func postmortemReport(w io.Writer, dir string) error {
	dumps, errs := obs.LoadFlightDir(dir)
	for _, err := range errs {
		fmt.Fprintf(w, "warning: %v\n", err)
	}
	if len(dumps) == 0 {
		return fmt.Errorf("no readable flight-*.dpfr dumps in %s", dir)
	}
	fmt.Fprintf(w, "postmortem: %d flight dump(s) in %s\n", len(dumps), dir)
	for _, d := range dumps {
		fmt.Fprintln(w)
		writeDump(w, d)
	}
	return nil
}

func writeDump(w io.Writer, d *obs.FlightDump) {
	fmt.Fprintf(w, "worker %d (ranks [%d,%d))", d.Worker, d.RankLo, d.RankHi)
	if d.RunID != 0 {
		fmt.Fprintf(w, " run %016x", d.RunID)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  reason: %s\n", d.Reason)
	fmt.Fprintf(w, "  epoch:  %d\n", d.Epoch)
	if d.WallTime != "" {
		fmt.Fprintf(w, "  dumped: %s (local t=%s)\n", d.WallTime, fmtNS(d.DumpedTS))
	}
	if d.ClockErrNS != 0 || d.ClockOffsetNS != 0 {
		off := fmtNS(d.ClockOffsetNS)
		if d.ClockOffsetNS >= 0 {
			off = "+" + off
		}
		fmt.Fprintf(w, "  clock:  launcher = local %s (±%s)\n", off, fmtNS(d.ClockErrNS))
	}
	// Open phases are the heart of the postmortem: a rank listed here never
	// reached its PhaseExit, so this is the phase it died in.
	if len(d.OpenPhases) > 0 {
		fmt.Fprintln(w, "  open phases at dump (the phase each rank died in):")
		for _, p := range d.OpenPhases {
			fmt.Fprintf(w, "    rank %d: %s (epoch %d), open for %s\n",
				p.Rank, p.Phase, p.Epoch, fmtNS(d.DumpedTS-p.Since))
		}
	} else {
		fmt.Fprintln(w, "  open phases at dump: none (between phases)")
	}
	if n := len(d.Events); n > 0 {
		show := d.Events
		if len(show) > postmortemEvents {
			show = show[len(show)-postmortemEvents:]
		}
		fmt.Fprintf(w, "  last %d of %d landmark events:\n", len(show), n)
		for _, ev := range show {
			fmt.Fprintf(w, "    %12s  rank %-3d %-16s", fmtNS(ev.TS), ev.Rank, ev.Kind)
			if ev.Dur > 0 {
				fmt.Fprintf(w, " dur=%s", fmtNS(ev.Dur))
			}
			if ev.Arg != 0 || ev.Arg2 != 0 {
				fmt.Fprintf(w, " arg=%d arg2=%d", ev.Arg, ev.Arg2)
			}
			if ev.Note != "" {
				fmt.Fprintf(w, " %s", ev.Note)
			}
			fmt.Fprintln(w)
		}
	}
	if len(d.Epochs) > 0 {
		fmt.Fprintln(w, "  per-epoch counter deltas (committed epochs in the window):")
		var prev map[string]int64
		for _, ec := range d.Epochs {
			fmt.Fprintf(w, "    epoch %d @ %s:%s\n", ec.Epoch, fmtNS(ec.TS), fmtCounterDelta(ec.Counters, prev))
			prev = ec.Counters
		}
	}
	for _, note := range d.Notes {
		fmt.Fprintf(w, "  note: %s\n", note)
	}
}

// fmtCounterDelta prints the counters that moved since the previous epoch's
// snapshot (all of them for the first snapshot), sorted by name.
func fmtCounterDelta(cur, prev map[string]int64) string {
	names := make([]string, 0, len(cur))
	for name := range cur {
		if cur[name] != prev[name] {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return " (no counter movement)"
	}
	sort.Strings(names)
	out := ""
	for _, name := range names {
		out += fmt.Sprintf(" %s+%d", name, cur[name]-prev[name])
	}
	return out
}

// fmtNS renders a monotonic-ns value human-first (µs under a ms, ms above).
func fmtNS(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	switch {
	case ns < 1_000:
		return fmt.Sprintf("%s%dns", neg, ns)
	case ns < 1_000_000:
		return fmt.Sprintf("%s%.1fµs", neg, float64(ns)/1e3)
	case ns < 1_000_000_000:
		return fmt.Sprintf("%s%.2fms", neg, float64(ns)/1e6)
	}
	return fmt.Sprintf("%s%.3fs", neg, float64(ns)/1e9)
}
