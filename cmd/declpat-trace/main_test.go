package main

import (
	"strings"
	"testing"

	"declpat/internal/obs"
)

// TestTracedBFSLineageConnected is the end-to-end causal-DAG check on a real
// workload: every non-root handler event in a small traced BFS resolves to a
// recorded parent, and each epoch's critical path starts at a root send and
// ends in the epoch's final quiescence.
func TestTracedBFSLineageConnected(t *testing.T) {
	u, err := runWorkload("bfs", 8, 8, 42, 2, 1, 1<<18, 0)
	if err != nil {
		t.Fatal(err)
	}
	meta, recs := u.ExportTrace("bfs")
	lin := obs.BuildLineage(meta, recs)
	if lin.Handlers() == 0 {
		t.Fatal("traced BFS produced no handler events")
	}
	if !lin.Connected() {
		t.Fatalf("%d handler events have unresolvable parents (dropped=%d)",
			lin.Orphans, meta.Dropped)
	}
	// Spot-check the invariant directly, not just through the aggregate.
	for _, n := range lin.ByID {
		if obs.IsRootLineageID(n.Parent) || n.Parent == 0 {
			continue
		}
		if _, ok := lin.ByID[n.Parent]; !ok {
			t.Fatalf("handler %#x has unresolvable parent %#x", n.ID, n.Parent)
		}
	}
	for _, e := range lin.Epochs {
		cp := lin.CriticalPathOf(e)
		if cp == nil {
			continue // epoch without handler traffic (e.g. final empty frontier)
		}
		if !obs.IsRootLineageID(cp.Root) {
			t.Fatalf("epoch %d: critical path does not start at a root send (%#x)", e.Epoch, cp.Root)
		}
		sink := cp.Hops[len(cp.Hops)-1].Node
		if sink.End+cp.TailNs != e.End {
			t.Fatalf("epoch %d: path does not end in the epoch's quiescence (sink %d + tail %d != end %d)",
				e.Epoch, sink.End, cp.TailNs, e.End)
		}
	}
}

// TestCriticalPathReport drives the CLI's -critical-path mode end to end on
// traced workloads and on lineage-free input.
func TestCriticalPathReport(t *testing.T) {
	u, err := runWorkload("bfs", 8, 8, 42, 2, 1, 1<<18, 0)
	if err != nil {
		t.Fatal(err)
	}
	meta, recs := u.ExportTrace("bfs")
	var sb strings.Builder
	if err := criticalPathReport(&sb, meta, recs, -1, 48); err != nil {
		t.Fatalf("report failed: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"critical path", "rank slack", "chain-depth", "quiescence"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}

	// Selecting an epoch outside the trace must error, not print garbage.
	if err := criticalPathReport(&strings.Builder{}, meta, recs, 999, 48); err == nil {
		t.Fatal("bogus -path-epoch accepted")
	}

	// A trace without lineage (handler records stripped) must error so the
	// CLI exits non-zero instead of printing empty tables.
	var bare []obs.Record
	for _, r := range recs {
		if r.Kind != "handler" {
			bare = append(bare, r)
		}
	}
	if err := criticalPathReport(&strings.Builder{}, meta, bare, -1, 48); err == nil {
		t.Fatal("lineage-free trace accepted")
	}
}

// TestRunWorkloadRing checks the -ring plumb-through: a tiny per-rank ring
// bounds retention and reports drops.
func TestRunWorkloadRing(t *testing.T) {
	u, err := runWorkload("cc", 7, 4, 1, 2, 1, 0, 128)
	if err != nil {
		t.Fatal(err)
	}
	if u.TraceDropped() == 0 {
		t.Fatal("tiny ring did not overflow; -ring not wired through")
	}
	if evs := u.Trace(); len(evs) > 2*128 {
		t.Fatalf("retained %d events with -ring 128", len(evs))
	}
}
