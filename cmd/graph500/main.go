// Command graph500 runs a Graph500-style BFS benchmark (the workload class
// the paper's introduction cites for HPC-scale graph analytics): kernel 1
// builds the distributed graph from a Kronecker/RMAT edge list, kernel 2
// runs BFS from sampled roots producing parent trees, every tree is
// validated, and TEPS statistics are reported (min/median/max/harmonic
// mean, as the benchmark specifies).
//
// Usage:
//
//	graph500 -scale 16 -edgefactor 16 -roots 16 -ranks 4 -threads 2
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"declpat"
	"declpat/internal/algorithms"
	"declpat/internal/seq"
)

func main() {
	scale := flag.Int("scale", 14, "RMAT scale (2^scale vertices)")
	ef := flag.Int("edgefactor", 16, "edges per vertex (Graph500 default 16)")
	seed := flag.Uint64("seed", 2, "generator seed")
	roots := flag.Int("roots", 8, "BFS roots (Graph500 uses 64)")
	ranks := flag.Int("ranks", 4, "simulated ranks")
	threads := flag.Int("threads", 2, "handler threads per rank")
	validate := flag.Bool("validate", true, "validate every parent tree")
	flag.Parse()

	fmt.Printf("graph500: SCALE=%d edgefactor=%d (%d vertices, %d edges)\n",
		*scale, *ef, 1<<*scale, (1<<*scale)*(*ef))

	// Kernel 1: construction.
	genStart := time.Now()
	n, edges := declpat.RMAT(*scale, *ef, declpat.WeightSpec{}, *seed)
	genTime := time.Since(genStart)

	u := declpat.New(*ranks, declpat.WithThreads(*threads))
	dist := declpat.NewBlockDist(n, *ranks)
	k1 := time.Now()
	g := declpat.BuildGraph(dist, edges, declpat.GraphOptions{})
	k1Time := time.Since(k1)
	fmt.Printf("generation: %s   kernel1 (construction): %s\n",
		genTime.Round(time.Millisecond), k1Time.Round(time.Millisecond))

	bfs := declpat.NewBFSTree(engFor(u, g, dist))

	// Sample roots with out-degree > 0, deterministically.
	outdeg := make([]int, n)
	for _, e := range edges {
		outdeg[e.Src]++
	}
	var rootList []declpat.Vertex
	x := *seed
	for len(rootList) < *roots {
		x = x*6364136223846793005 + 1442695040888963407
		v := declpat.Vertex(x % uint64(n))
		if outdeg[v] > 0 {
			rootList = append(rootList, v)
		}
	}

	// Kernel 2: BFS per root.
	type result struct {
		root      declpat.Vertex
		teps      float64
		traversed int64
		dur       time.Duration
		parent    []int64
	}
	var results []result
	err := u.Run(func(r *declpat.Rank) {
		for _, root := range rootList {
			start := time.Now()
			bfs.Run(r, root)
			r.Barrier()
			if r.ID() == 0 {
				dur := time.Since(start)
				parent := bfs.Parent.Gather()
				traversed := int64(0)
				for _, e := range edges {
					if parent[e.Src] != int64(declpat.NilWord) {
						traversed++
					}
				}
				results = append(results, result{
					root: root, dur: dur, traversed: traversed,
					teps:   float64(traversed) / dur.Seconds(),
					parent: parent,
				})
			}
			r.Barrier()
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "graph500: run failed:", err)
		os.Exit(1)
	}

	fmt.Printf("\n%-8s %-12s %-10s %s\n", "root", "time", "edges", "TEPS")
	var teps []float64
	for _, res := range results {
		fmt.Printf("%-8d %-12s %-10d %.4g\n", res.root, res.dur.Round(time.Microsecond), res.traversed, res.teps)
		teps = append(teps, res.teps)
	}
	sort.Float64s(teps)
	harm := 0.0
	for _, t := range teps {
		harm += 1 / t
	}
	harm = float64(len(teps)) / harm
	fmt.Printf("\nTEPS: min=%.4g median=%.4g max=%.4g harmonic-mean=%.4g\n",
		teps[0], teps[len(teps)/2], teps[len(teps)-1], harm)

	if *validate {
		for _, res := range results {
			depths := seq.BFS(n, edges, res.root)
			reach := make([]bool, n)
			for v := range depths {
				reach[v] = depths[v] != seq.Inf
			}
			if err := algorithms.ValidateTree(n, edges, res.root, res.parent, reach); err != nil {
				fmt.Printf("VALIDATION FAILED for root %d: %v\n", res.root, err)
				os.Exit(1)
			}
		}
		fmt.Printf("validation: OK (%d trees)\n", len(results))
	}
}

func engFor(u *declpat.Universe, g *declpat.Graph, dist declpat.Distribution) *declpat.Engine {
	return declpat.NewEngine(u, g, declpat.NewLockMap(dist, 1), declpat.DefaultPlanOptions())
}
