// Command experiments runs the full reproduction suite (E1–E21, see
// DESIGN.md) and prints every table. EXPERIMENTS.md records one run of this
// command.
//
// Usage:
//
//	experiments [-scale N] [-edgefactor N] [-seed N] [-only E5,E8] [-debug ADDR] [-bench-json FILE]
//
// With -bench-json the suite additionally writes a machine-readable report
// (per-experiment wall time plus message/envelope/handler totals summed
// from Universe.Metrics of every universe the experiment built); CI archives
// it so substrate-cost regressions are a diffable artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"declpat/internal/experiments"
	"declpat/internal/harness"
)

func main() {
	scale := flag.Int("scale", 12, "RMAT scale (2^scale vertices)")
	ef := flag.Int("edgefactor", 8, "edges per vertex")
	seed := flag.Uint64("seed", 42, "generator seed")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	debug := flag.String("debug", "", "serve pprof/expvar on this address (e.g. localhost:6060) while the suite runs")
	benchJSON := flag.String("bench-json", "", "write a machine-readable per-experiment bench report to this file")
	codecJSON := flag.String("codec-json", "", "run only the E20 codec matrix and write its records as JSON to this file")
	transportJSON := flag.String("transport-json", "", "run only the E21 transport matrix and write its records as JSON to this file")
	obsJSON := flag.String("obs-json", "", "run only the E22 phase-timer matrix and write its records as JSON to this file")
	flag.Parse()

	writeJSON := func(path, label string, v any, n int) {
		f, err := os.Create(path)
		if err == nil {
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			err = enc.Encode(v)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("# %s report: %s (%d records)\n", label, path, n)
	}

	if *codecJSON != "" {
		sc := experiments.Scale{RMATScale: *scale, EdgeFactor: *ef, Seed: *seed}
		recs := experiments.E20CodecRecords(sc)
		writeJSON(*codecJSON, "codec", recs, len(recs))
		return
	}
	if *transportJSON != "" {
		sc := experiments.Scale{RMATScale: *scale, EdgeFactor: *ef, Seed: *seed}
		recs := experiments.E21TransportRecords(sc)
		writeJSON(*transportJSON, "transport", recs, len(recs))
		return
	}
	if *obsJSON != "" {
		sc := experiments.Scale{RMATScale: *scale, EdgeFactor: *ef, Seed: *seed}
		recs := experiments.E22ObsRecords(sc)
		writeJSON(*obsJSON, "obs", recs, len(recs))
		return
	}

	if *debug != "" {
		addr, err := harness.ServeDebug(*debug)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		// The process-wide server holds the listener until the suite ends;
		// releasing it on exit keeps repeated in-process invocations (tests,
		// drivers) from leaking ports.
		defer harness.StopDebug()
		fmt.Printf("debug server: http://%s/debug/pprof/ (expvar at /debug/vars)\n\n", addr)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	sc := experiments.Scale{RMATScale: *scale, EdgeFactor: *ef, Seed: *seed}
	rep := experiments.BenchReport{RMATScale: *scale, EdgeFactor: *ef, Seed: *seed}
	if *benchJSON != "" {
		experiments.BenchEnable()
	}
	fmt.Printf("# Experiment suite — RMAT scale %d, edge factor %d, seed %d\n\n", *scale, *ef, *seed)
	total := time.Now()
	for _, ex := range experiments.All() {
		if len(want) > 0 && !want[ex.ID] {
			continue
		}
		fmt.Printf("# %s: %s\n\n", ex.ID, ex.Title)
		start := time.Now()
		tables := ex.Run(sc)
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		elapsed := time.Since(start)
		fmt.Printf("(%s in %s)\n\n", ex.ID, elapsed.Round(time.Millisecond))
		if *benchJSON != "" {
			msgs, envelopes, handlers, universes := experiments.BenchCollect()
			rep.Records = append(rep.Records, experiments.BenchRecord{
				ID: ex.ID, Title: ex.Title, WallNs: elapsed.Nanoseconds(),
				Msgs: msgs, Envelopes: envelopes, Handlers: handlers, Universes: universes,
			})
		}
	}
	fmt.Printf("# total: %s\n", time.Since(total).Round(time.Millisecond))
	if *benchJSON != "" {
		rep.TotalNs = time.Since(total).Nanoseconds()
		f, err := os.Create(*benchJSON)
		if err == nil {
			err = experiments.WriteBenchJSON(f, rep)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("# bench report: %s (%d experiments)\n", *benchJSON, len(rep.Records))
	}
}
