package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestEncDecRoundTrip(t *testing.T) {
	var e Enc
	e.U8(7)
	e.U16(65500)
	e.U32(1 << 30)
	e.U64(1 << 60)
	e.I64(-42)
	e.Bytes([]byte{1, 2, 3})
	e.String("hello")
	e.I64Slice([]int64{-1, 0, 9})
	e.I64Slice(nil)

	d := Dec{B: e.B}
	if got := d.U8(); got != 7 {
		t.Fatalf("u8 = %d", got)
	}
	if got := d.U16(); got != 65500 {
		t.Fatalf("u16 = %d", got)
	}
	if got := d.U32(); got != 1<<30 {
		t.Fatalf("u32 = %d", got)
	}
	if got := d.U64(); got != 1<<60 {
		t.Fatalf("u64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Fatalf("i64 = %d", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("bytes = %v", got)
	}
	if got := d.String(); got != "hello" {
		t.Fatalf("string = %q", got)
	}
	got := d.I64Slice()
	if len(got) != 3 || got[0] != -1 || got[2] != 9 {
		t.Fatalf("i64slice = %v", got)
	}
	if got := d.I64Slice(); len(got) != 0 {
		t.Fatalf("empty i64slice = %v", got)
	}
	if err := d.Done(true); err != nil {
		t.Fatalf("done: %v", err)
	}
}

func TestDecTruncation(t *testing.T) {
	var e Enc
	e.String("payload")
	for cut := 0; cut < len(e.B); cut++ {
		d := Dec{B: e.B[:cut]}
		_ = d.String()
		if d.Err == nil && cut < len(e.B) {
			t.Fatalf("cut=%d: expected sticky error", cut)
		}
		// Reads after the error stay zero-valued instead of panicking.
		if v := d.U64(); v != 0 {
			t.Fatalf("cut=%d: post-error read = %d", cut, v)
		}
	}
}

func testSnapshot() *Snapshot {
	return &Snapshot{
		RunID: 0xfeedface,
		Epoch: 17,
		Lo:    2,
		Hi:    4,
		Blobs: [][][]byte{
			{[]byte("rank2-ckpt0"), nil, []byte{0xff}},
			{[]byte("rank3-ckpt0"), []byte("rank3-ckpt1"), []byte{}},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := testSnapshot()
	got, err := Decode(s.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.RunID != s.RunID || got.Epoch != s.Epoch || got.Lo != s.Lo || got.Hi != s.Hi {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Blobs) != 2 || len(got.Blobs[0]) != 3 {
		t.Fatalf("blob shape: %+v", got.Blobs)
	}
	if string(got.Blobs[1][1]) != "rank3-ckpt1" {
		t.Fatalf("blob content: %q", got.Blobs[1][1])
	}
}

func TestSnapshotCorruption(t *testing.T) {
	enc := testSnapshot().Encode()
	for _, flip := range []int{0, 5, len(enc) / 2, len(enc) - 1} {
		bad := append([]byte(nil), enc...)
		bad[flip] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Fatalf("flip at %d: corruption not detected", flip)
		}
	}
	if _, err := Decode(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncation not detected")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty input not rejected")
	}
}

func TestSnapshotVersionReject(t *testing.T) {
	enc := testSnapshot().Encode()
	// Bump the version field and re-seal the CRC: version mismatches must be
	// reported as such, not as corruption.
	enc[len(Magic)] = 99
	body := enc[:len(enc)-8]
	var e Enc
	e.B = append(e.B, body...)
	e.U64(Checksum(body))
	if _, err := Decode(e.B); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestFileRoundTripAndAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt-w0-s1.dpck")
	s := testSnapshot()
	if err := WriteFile(path, s); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Epoch != s.Epoch || string(got.Blobs[0][0]) != "rank2-ckpt0" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// Overwrite with a different epoch; the rename must fully replace it and
	// leave no temp files behind.
	s.Epoch = 18
	if err := WriteFile(path, s); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	got, err = ReadFile(path)
	if err != nil {
		t.Fatalf("reread: %v", err)
	}
	if got.Epoch != 18 {
		t.Fatalf("epoch after rewrite = %d", got.Epoch)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("leftover files: %v", ents)
	}
}
