// Package ckpt is the serialized checkpoint layer behind multi-process
// crash recovery: a tiny append-style binary codec (Enc/Dec) shared by the
// property-map / Δ-bucket / engine snapshot encoders and the control-plane
// wire frames, plus the versioned on-disk checkpoint file a replacement
// worker process reloads after a crash.
//
// The file format (magic "DPCK") is deliberately dumb: a fixed header
// identifying the run, epoch and rank range, one length-prefixed blob per
// (local rank, registered checkpointer) pair in registration order, and a
// CRC-64 trailer over everything before it. Files are written atomically
// (temp + rename) so a crash mid-write can never corrupt the previous slot.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"math"
	"os"
	"path/filepath"
)

// Magic identifies a checkpoint file ("DeclPat ChecKpoint").
const Magic = "DPCK"

// Version is the current checkpoint file format version. Readers reject
// files with a different version rather than guessing.
const Version uint16 = 1

var crcTable = crc64.MakeTable(crc64.ECMA)

// Checksum is the CRC-64/ECMA checksum used by every ckpt seal.
func Checksum(b []byte) uint64 { return crc64.Checksum(b, crcTable) }

// ErrCorrupt is wrapped by ReadFile when the file fails structural or CRC
// validation.
var ErrCorrupt = errors.New("ckpt: corrupt checkpoint")

// Enc is an append-style binary encoder. The zero value is ready to use;
// all integers are little-endian, variable-length fields are u32
// length-prefixed.
type Enc struct {
	B []byte
}

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.B = append(e.B, v) }

// U16 appends a little-endian uint16.
func (e *Enc) U16(v uint16) { e.B = binary.LittleEndian.AppendUint16(e.B, v) }

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) { e.B = binary.LittleEndian.AppendUint32(e.B, v) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.B = binary.LittleEndian.AppendUint64(e.B, v) }

// I64 appends a little-endian int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Bytes appends a u32 length prefix followed by the raw bytes.
func (e *Enc) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.B = append(e.B, b...)
}

// String appends a u32 length prefix followed by the string bytes.
func (e *Enc) String(s string) {
	e.U32(uint32(len(s)))
	e.B = append(e.B, s...)
}

// I64Slice appends a u32 count followed by the values.
func (e *Enc) I64Slice(vs []int64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.I64(v)
	}
}

// Dec is the matching sticky-error decoder: the first malformed field sets
// Err and every later read returns a zero value, so callers validate once
// at the end instead of after every field.
type Dec struct {
	B   []byte
	Off int
	Err error
}

// fail records the first decode error.
func (d *Dec) fail(what string) {
	if d.Err == nil {
		d.Err = fmt.Errorf("%w: truncated %s at offset %d", ErrCorrupt, what, d.Off)
	}
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	if d.Err != nil || d.Off+1 > len(d.B) {
		d.fail("u8")
		return 0
	}
	v := d.B[d.Off]
	d.Off++
	return v
}

// U16 reads a little-endian uint16.
func (d *Dec) U16() uint16 {
	if d.Err != nil || d.Off+2 > len(d.B) {
		d.fail("u16")
		return 0
	}
	v := binary.LittleEndian.Uint16(d.B[d.Off:])
	d.Off += 2
	return v
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	if d.Err != nil || d.Off+4 > len(d.B) {
		d.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.B[d.Off:])
	d.Off += 4
	return v
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	if d.Err != nil || d.Off+8 > len(d.B) {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.B[d.Off:])
	d.Off += 8
	return v
}

// I64 reads a little-endian int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Bytes reads a u32 length prefix and returns a subslice of the input (no
// copy; callers that retain it past the buffer's life must copy).
func (d *Dec) Bytes() []byte {
	n := int(d.U32())
	if d.Err != nil || n < 0 || d.Off+n > len(d.B) {
		d.fail("bytes")
		return nil
	}
	v := d.B[d.Off : d.Off+n : d.Off+n]
	d.Off += n
	return v
}

// String reads a u32 length-prefixed string.
func (d *Dec) String() string { return string(d.Bytes()) }

// I64Slice reads a u32 count followed by the values.
func (d *Dec) I64Slice() []int64 {
	n := int(d.U32())
	if d.Err != nil || n < 0 || d.Off+8*n > len(d.B) {
		d.fail("i64 slice")
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = d.I64()
	}
	return vs
}

// Done returns the sticky decode error, or an error if trailing bytes
// remain when strict is set.
func (d *Dec) Done(strict bool) error {
	if d.Err != nil {
		return d.Err
	}
	if strict && d.Off != len(d.B) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.B)-d.Off)
	}
	return nil
}

// Snapshot is one worker's checkpoint: the state of every registered
// checkpointer for every rank in [Lo, Hi), taken at an epoch boundary.
// Blobs[rank-Lo][i] is checkpointer i's encoded snapshot of that rank, in
// universe registration order (the order is part of the format: a
// replacement process registers the same checkpointers in the same order,
// so indices line up without names).
type Snapshot struct {
	RunID uint64
	Epoch int64
	Lo    uint32
	Hi    uint32
	Blobs [][][]byte
}

// Encode serializes the snapshot, including the magic, version and CRC-64
// trailer, ready to be written to disk or shipped over a frame.
func (s *Snapshot) Encode() []byte {
	var e Enc
	e.B = append(e.B, Magic...)
	e.U16(Version)
	e.U64(s.RunID)
	e.I64(s.Epoch)
	e.U32(s.Lo)
	e.U32(s.Hi)
	e.U32(uint32(len(s.Blobs)))
	for _, rankBlobs := range s.Blobs {
		e.U32(uint32(len(rankBlobs)))
		for _, b := range rankBlobs {
			e.Bytes(b)
		}
	}
	e.U64(crc64.Checksum(e.B, crcTable))
	return e.B
}

// Decode parses and validates an encoded snapshot.
func Decode(b []byte) (*Snapshot, error) {
	if len(b) < len(Magic)+2+8 {
		return nil, fmt.Errorf("%w: short file (%d bytes)", ErrCorrupt, len(b))
	}
	if string(b[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:len(Magic)])
	}
	body, trailer := b[:len(b)-8], b[len(b)-8:]
	want := binary.LittleEndian.Uint64(trailer)
	if got := crc64.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (got %016x want %016x)", ErrCorrupt, got, want)
	}
	d := Dec{B: body, Off: len(Magic)}
	if v := d.U16(); v != Version {
		return nil, fmt.Errorf("ckpt: unsupported checkpoint version %d (want %d)", v, Version)
	}
	s := &Snapshot{RunID: d.U64(), Epoch: d.I64(), Lo: d.U32(), Hi: d.U32()}
	nRanks := int(d.U32())
	if d.Err == nil && nRanks > math.MaxInt32 {
		return nil, fmt.Errorf("%w: absurd rank count %d", ErrCorrupt, nRanks)
	}
	for i := 0; i < nRanks && d.Err == nil; i++ {
		nBlobs := int(d.U32())
		blobs := make([][]byte, 0, nBlobs)
		for j := 0; j < nBlobs && d.Err == nil; j++ {
			blobs = append(blobs, d.Bytes())
		}
		s.Blobs = append(s.Blobs, blobs)
	}
	if err := d.Done(true); err != nil {
		return nil, err
	}
	return s, nil
}

// WriteFile atomically writes the snapshot to path: the encoding goes to a
// temp file in the same directory which is fsynced and renamed over the
// target, so readers only ever see the old complete file or the new one.
func WriteFile(path string, s *Snapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("ckpt: create temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(s.Encode()); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: rename: %w", err)
	}
	return nil
}

// ReadFile reads and validates a snapshot written by WriteFile.
func ReadFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", path, err)
	}
	return s, nil
}
