// Package gen provides deterministic workload generators for the experiment
// suite: Graph500-style RMAT graphs (the scale-free inputs the paper's
// motivation cites), Erdős–Rényi graphs, and structured graphs (torus, path,
// star) whose properties make algorithm behaviour easy to predict in tests.
package gen

import (
	"math/rand/v2"

	"declpat/internal/distgraph"
)

// Weights configures edge weight generation: uniform integers in [Min, Max].
// The zero value produces unit weights.
type Weights struct {
	Min, Max int64
}

func (w Weights) draw(rng *rand.Rand) int64 {
	if w.Max <= w.Min {
		if w.Min == 0 {
			return 1
		}
		return w.Min
	}
	return w.Min + rng.Int64N(w.Max-w.Min+1)
}

func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// RMAT generates an RMAT graph with 2^scale vertices and edgeFactor×2^scale
// edges using the Graph500 parameters (a=0.57, b=0.19, c=0.19, d=0.05).
// Self-loops and parallel edges are kept, as in the Graph500 generator.
func RMAT(scale, edgeFactor int, w Weights, seed uint64) (n int, edges []distgraph.Edge) {
	const a, b, c = 0.57, 0.19, 0.19
	n = 1 << scale
	m := n * edgeFactor
	rng := newRNG(seed)
	edges = make([]distgraph.Edge, 0, m)
	for i := 0; i < m; i++ {
		var src, dst int
		for lvl := 0; lvl < scale; lvl++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				dst |= 1 << lvl
			case r < a+b+c:
				src |= 1 << lvl
			default:
				src |= 1 << lvl
				dst |= 1 << lvl
			}
		}
		edges = append(edges, distgraph.Edge{
			Src: distgraph.Vertex(src), Dst: distgraph.Vertex(dst), W: w.draw(rng),
		})
	}
	return n, edges
}

// ER generates an Erdős–Rényi G(n, m) multigraph: m edges with independently
// uniform endpoints.
func ER(n, m int, w Weights, seed uint64) []distgraph.Edge {
	rng := newRNG(seed)
	edges := make([]distgraph.Edge, m)
	for i := range edges {
		edges[i] = distgraph.Edge{
			Src: distgraph.Vertex(rng.IntN(n)),
			Dst: distgraph.Vertex(rng.IntN(n)),
			W:   w.draw(rng),
		}
	}
	return edges
}

// Torus2D generates a directed 2D torus of rows×cols vertices; each vertex
// has edges to its right and down neighbours (wrapping). Vertex (i,j) has id
// i*cols+j.
func Torus2D(rows, cols int, w Weights, seed uint64) (n int, edges []distgraph.Edge) {
	rng := newRNG(seed)
	n = rows * cols
	edges = make([]distgraph.Edge, 0, 2*n)
	id := func(i, j int) distgraph.Vertex {
		return distgraph.Vertex(((i+rows)%rows)*cols + (j+cols)%cols)
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			edges = append(edges,
				distgraph.Edge{Src: id(i, j), Dst: id(i, j+1), W: w.draw(rng)},
				distgraph.Edge{Src: id(i, j), Dst: id(i+1, j), W: w.draw(rng)},
			)
		}
	}
	return n, edges
}

// Path generates the directed path 0→1→…→n-1.
func Path(n int, w Weights, seed uint64) []distgraph.Edge {
	rng := newRNG(seed)
	edges := make([]distgraph.Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, distgraph.Edge{
			Src: distgraph.Vertex(i), Dst: distgraph.Vertex(i + 1), W: w.draw(rng),
		})
	}
	return edges
}

// Star generates edges from vertex 0 to every other vertex.
func Star(n int, w Weights, seed uint64) []distgraph.Edge {
	rng := newRNG(seed)
	edges := make([]distgraph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, distgraph.Edge{
			Src: 0, Dst: distgraph.Vertex(i), W: w.draw(rng),
		})
	}
	return edges
}

// GraphStats summarizes an edge list (used by the CLI tools to describe
// workloads).
type GraphStats struct {
	Vertices, Edges     int
	SelfLoops, Isolated int
	MaxOutDeg, MaxInDeg int
	AvgDeg              float64
	MinW, MaxW          int64
}

// Stats computes summary statistics of an edge list over n vertices.
func Stats(n int, edges []distgraph.Edge) GraphStats {
	s := GraphStats{Vertices: n, Edges: len(edges)}
	outdeg := make([]int, n)
	indeg := make([]int, n)
	if len(edges) > 0 {
		s.MinW, s.MaxW = edges[0].W, edges[0].W
	}
	for _, e := range edges {
		outdeg[e.Src]++
		indeg[e.Dst]++
		if e.Src == e.Dst {
			s.SelfLoops++
		}
		if e.W < s.MinW {
			s.MinW = e.W
		}
		if e.W > s.MaxW {
			s.MaxW = e.W
		}
	}
	for v := 0; v < n; v++ {
		if outdeg[v] > s.MaxOutDeg {
			s.MaxOutDeg = outdeg[v]
		}
		if indeg[v] > s.MaxInDeg {
			s.MaxInDeg = indeg[v]
		}
		if outdeg[v] == 0 && indeg[v] == 0 {
			s.Isolated++
		}
	}
	if n > 0 {
		s.AvgDeg = float64(len(edges)) / float64(n)
	}
	return s
}

// SmallWorld generates a Watts–Strogatz-style small-world graph: a ring
// where every vertex connects to its next k/2 clockwise neighbours, with
// each edge's far endpoint rewired to a uniform random vertex with
// probability beta. k must be even.
func SmallWorld(n, k int, beta float64, w Weights, seed uint64) []distgraph.Edge {
	if k%2 != 0 {
		panic("gen: SmallWorld requires even k")
	}
	rng := newRNG(seed)
	edges := make([]distgraph.Edge, 0, n*k/2)
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			dst := (v + j) % n
			if rng.Float64() < beta {
				dst = rng.IntN(n)
			}
			edges = append(edges, distgraph.Edge{
				Src: distgraph.Vertex(v), Dst: distgraph.Vertex(dst), W: w.draw(rng),
			})
		}
	}
	return edges
}

// Components generates k disjoint cycles of the given sizes (for CC tests):
// component i is a cycle over its vertex block. Returns total vertex count.
func Components(sizes []int, seed uint64) (n int, edges []distgraph.Edge) {
	rng := newRNG(seed)
	base := 0
	for _, sz := range sizes {
		for i := 0; i < sz; i++ {
			if sz == 1 {
				break
			}
			edges = append(edges, distgraph.Edge{
				Src: distgraph.Vertex(base + i),
				Dst: distgraph.Vertex(base + (i+1)%sz),
				W:   w1(rng),
			})
		}
		base += sz
	}
	return base, edges
}

func w1(rng *rand.Rand) int64 { return 1 }
