package gen

import (
	"testing"

	"declpat/internal/distgraph"
)

func TestRMATDeterministicAndSized(t *testing.T) {
	n, e1 := RMAT(10, 16, Weights{Min: 1, Max: 100}, 7)
	_, e2 := RMAT(10, 16, Weights{Min: 1, Max: 100}, 7)
	if n != 1024 {
		t.Fatalf("n=%d", n)
	}
	if len(e1) != 1024*16 {
		t.Fatalf("edges=%d", len(e1))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, e1[i], e2[i])
		}
		if int(e1[i].Src) >= n || int(e1[i].Dst) >= n {
			t.Fatalf("edge out of range: %v", e1[i])
		}
		if e1[i].W < 1 || e1[i].W > 100 {
			t.Fatalf("weight out of range: %v", e1[i])
		}
	}
	_, e3 := RMAT(10, 16, Weights{Min: 1, Max: 100}, 8)
	same := 0
	for i := range e1 {
		if e1[i] == e3[i] {
			same++
		}
	}
	if same == len(e1) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRMATSkew(t *testing.T) {
	// RMAT graphs are scale-free: the max out-degree should far exceed the
	// mean (16), unlike ER.
	n, edges := RMAT(12, 16, Weights{}, 3)
	deg := make([]int, n)
	for _, e := range edges {
		deg[e.Src]++
	}
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	if max < 100 {
		t.Fatalf("RMAT max degree %d suspiciously small", max)
	}
	er := ER(n, len(edges), Weights{}, 3)
	deg2 := make([]int, n)
	for _, e := range er {
		deg2[e.Src]++
	}
	max2 := 0
	for _, d := range deg2 {
		if d > max2 {
			max2 = d
		}
	}
	if max2 >= max {
		t.Fatalf("ER max degree %d >= RMAT max degree %d", max2, max)
	}
}

func TestTorus2D(t *testing.T) {
	n, edges := Torus2D(4, 5, Weights{}, 1)
	if n != 20 || len(edges) != 40 {
		t.Fatalf("n=%d m=%d", n, len(edges))
	}
	outdeg := make([]int, n)
	indeg := make([]int, n)
	for _, e := range edges {
		outdeg[e.Src]++
		indeg[e.Dst]++
		if e.W != 1 {
			t.Fatalf("unit weights expected, got %d", e.W)
		}
	}
	for v := 0; v < n; v++ {
		if outdeg[v] != 2 || indeg[v] != 2 {
			t.Fatalf("vertex %d: outdeg=%d indeg=%d", v, outdeg[v], indeg[v])
		}
	}
}

func TestStats(t *testing.T) {
	edges := []distgraph.Edge{
		{Src: 0, Dst: 1, W: 5}, {Src: 0, Dst: 2, W: 2}, {Src: 1, Dst: 1, W: 9},
	}
	s := Stats(5, edges)
	if s.Vertices != 5 || s.Edges != 3 {
		t.Fatalf("%+v", s)
	}
	if s.SelfLoops != 1 {
		t.Fatalf("self-loops %d", s.SelfLoops)
	}
	if s.Isolated != 2 { // vertices 3 and 4
		t.Fatalf("isolated %d", s.Isolated)
	}
	if s.MaxOutDeg != 2 || s.MaxInDeg != 2 {
		t.Fatalf("degrees %+v", s)
	}
	if s.MinW != 2 || s.MaxW != 9 {
		t.Fatalf("weights %+v", s)
	}
	if s.AvgDeg != 0.6 {
		t.Fatalf("avg %v", s.AvgDeg)
	}
	empty := Stats(3, nil)
	if empty.Edges != 0 || empty.Isolated != 3 {
		t.Fatalf("%+v", empty)
	}
}

func TestSmallWorld(t *testing.T) {
	edges := SmallWorld(100, 4, 0.1, Weights{}, 3)
	if len(edges) != 200 {
		t.Fatalf("edges=%d", len(edges))
	}
	rewired := 0
	for i, e := range edges {
		if int(e.Src) >= 100 || int(e.Dst) >= 100 {
			t.Fatalf("edge out of range: %v", e)
		}
		// Ring edges connect to v+1 or v+2 (mod n).
		d := (int(e.Dst) - int(e.Src) + 100) % 100
		if d != 1 && d != 2 {
			rewired++
		}
		_ = i
	}
	// beta=0.1 over 200 edges: expect ~20 rewired; allow wide slack.
	if rewired < 5 || rewired > 60 {
		t.Fatalf("rewired=%d, outside plausible range for beta=0.1", rewired)
	}
	// beta=0: pure ring.
	for _, e := range SmallWorld(50, 2, 0, Weights{}, 1) {
		if (int(e.Dst)-int(e.Src)+50)%50 != 1 {
			t.Fatalf("beta=0 produced non-ring edge %v", e)
		}
	}
	// Deterministic.
	a := SmallWorld(64, 4, 0.3, Weights{Min: 1, Max: 5}, 9)
	b := SmallWorld(64, 4, 0.3, Weights{Min: 1, Max: 5}, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic")
		}
	}
}

func TestPathStarComponents(t *testing.T) {
	p := Path(5, Weights{Min: 3, Max: 3}, 0)
	if len(p) != 4 || p[0].W != 3 {
		t.Fatalf("path: %v", p)
	}
	s := Star(6, Weights{}, 0)
	if len(s) != 5 {
		t.Fatalf("star: %v", s)
	}
	for _, e := range s {
		if e.Src != 0 {
			t.Fatalf("star edge from %d", e.Src)
		}
	}
	n, edges := Components([]int{3, 1, 4}, 0)
	if n != 8 {
		t.Fatalf("n=%d", n)
	}
	// Cycle of size 1 contributes no edges; sizes 3 and 4 contribute 3+4.
	if len(edges) != 7 {
		t.Fatalf("edges=%d", len(edges))
	}
	for _, e := range edges {
		if e.Src == distgraph.Vertex(3) || e.Dst == distgraph.Vertex(3) {
			t.Fatalf("singleton vertex 3 has an edge: %v", e)
		}
	}
}
