package pattern

import (
	"fmt"

	"declpat/internal/ckpt"
)

// Serialized checkpoint support (am.SerializedCheckpointer) for the engine's
// per-rank modification flags, one presence byte per bound action.

// EncodeSnapshot serializes an engine snapshot (am.SerializedCheckpointer).
func (e *Engine) EncodeSnapshot(snap any) ([]byte, error) {
	flags, ok := snap.([]bool)
	if !ok {
		return nil, fmt.Errorf("pattern: engine snapshot has type %T, want []bool", snap)
	}
	var enc ckpt.Enc
	enc.U32(uint32(len(flags)))
	for _, f := range flags {
		if f {
			enc.U8(1)
		} else {
			enc.U8(0)
		}
	}
	return enc.B, nil
}

// DecodeSnapshot parses an engine snapshot (am.SerializedCheckpointer).
func (e *Engine) DecodeSnapshot(data []byte) (any, error) {
	d := ckpt.Dec{B: data}
	n := int(d.U32())
	if d.Err != nil {
		return nil, fmt.Errorf("pattern: engine snapshot: %w", d.Err)
	}
	flags := make([]bool, n)
	for i := 0; i < n && d.Err == nil; i++ {
		flags[i] = d.U8() == 1
	}
	if err := d.Done(true); err != nil {
		return nil, fmt.Errorf("pattern: engine snapshot: %w", err)
	}
	return flags, nil
}
