package pattern

import (
	"testing"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/gen"
	"declpat/internal/pmap"
	"declpat/internal/seq"
)

// TestEngineOverGobTransport runs SSSP with the engine's message type routed
// through a real serialization round trip: the entire pattern-engine message
// protocol must be wire-safe (a distributed deployment could ship patMsg
// as-is), and results must stay exact.
func TestEngineOverGobTransport(t *testing.T) {
	n, edges := gen.RMAT(8, 8, gen.Weights{Min: 1, Max: 30}, 13)
	want := seq.Dijkstra(n, edges, 0)

	u := am.NewUniverse(am.Config{Ranks: 3, ThreadsPerRank: 2})
	d := distgraph.NewBlockDist(n, 3)
	g := distgraph.Build(d, edges, distgraph.Options{})
	lm := pmap.NewLockMap(d, 1)
	eng := NewEngine(u, g, lm, DefaultPlanOptions())
	eng.MsgType().WithGobTransport()

	dmap := pmap.NewVertexWord(d, Inf)
	bound, err := eng.Bind(buildSSSP(), Bindings{"dist": dmap, "weight": pmap.WeightMap(g)})
	if err != nil {
		t.Fatal(err)
	}
	relax := bound.Action("relax")
	relax.SetWork(func(r *am.Rank, v distgraph.Vertex) { relax.InvokeAsync(r, v) })

	u.Run(func(r *am.Rank) {
		if g.Owner(0) == r.ID() {
			dmap.Set(r.ID(), 0, 0)
		}
		r.Barrier()
		r.Epoch(func(ep *am.Epoch) {
			if g.Owner(0) == r.ID() {
				relax.Invoke(r, 0)
			}
		})
	})
	got := dmap.Gather()
	for v := range want {
		w := want[v]
		if w == seq.Inf {
			w = Inf
		}
		if got[v] != w {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], w)
		}
	}
	if u.Stats.WireBytes() == 0 {
		t.Fatal("no serialized bytes — gob transport not exercised")
	}
	t.Logf("wire bytes: %d for %d messages (%d raw payload bytes)",
		u.Stats.WireBytes(), u.Stats.MsgsSent(), u.Stats.BytesSent())
}
