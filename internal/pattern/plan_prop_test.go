package pattern

import (
	"math/rand/v2"
	"testing"
)

// randomPattern builds a random but well-formed single-action pattern:
// vertex properties p0..p4 (p0 is the modification target prop), an edge
// property, a random generator, and 1–3 conditions over random expressions
// including pointer chains up to depth 2.
func randomPattern(rng *rand.Rand) *Pattern {
	p := New("R")
	props := []*Prop{
		p.VertexProp("p0"), p.VertexProp("p1"), p.VertexProp("p2"),
		p.VertexProp("p3"), p.VertexProp("p4"),
	}
	w := p.EdgeProp("w")
	gens := []Generator{None(), OutEdges(), InEdges(), Adj()}
	gen := gens[rng.IntN(len(gens))]
	a := p.Action("act", gen)

	// locs valid for the generator.
	locs := []Loc{V()}
	switch gen.Kind {
	case GenOutEdges, GenInEdges:
		locs = append(locs, Trg(), Src())
	case GenAdj:
		locs = append(locs, U())
	}

	var randAccess func(depth int) Expr
	randAccess = func(depth int) Expr {
		pr := props[rng.IntN(len(props))]
		if depth > 0 && rng.IntN(3) == 0 {
			return pr.AtVal(randAccess(depth - 1).(AccessExpr))
		}
		if gen.Kind == GenOutEdges || gen.Kind == GenInEdges {
			if rng.IntN(5) == 0 {
				return w.At(E())
			}
		}
		return pr.At(locs[rng.IntN(len(locs))])
	}
	var randExpr func(depth int) Expr
	randExpr = func(depth int) Expr {
		if depth == 0 || rng.IntN(3) == 0 {
			switch rng.IntN(3) {
			case 0:
				return C(int64(rng.IntN(100)))
			case 1:
				return Vtx(locs[rng.IntN(len(locs))])
			default:
				return randAccess(2)
			}
		}
		ops := []func(a, b Expr) Expr{Add, Sub, MinE, MaxE, Lt, Gt, Eq, And, Or}
		return ops[rng.IntN(len(ops))](randExpr(depth-1), randExpr(depth-1))
	}

	nconds := 1 + rng.IntN(3)
	for i := 0; i < nconds; i++ {
		var cb *CondBuilder
		if i > 0 && rng.IntN(2) == 0 {
			cb = a.Elif(randExpr(2))
		} else {
			cb = a.If(randExpr(2))
		}
		nmods := 1 + rng.IntN(2)
		for m := 0; m < nmods; m++ {
			target := randAccess(1)
			ops := []ModOp{OpAssign, OpAssignMin, OpAssignMax, OpAssignAdd}
			switch ops[rng.IntN(len(ops))] {
			case OpAssign:
				cb.Set(target, randExpr(1))
			case OpAssignMin:
				cb.SetMin(target, randExpr(1))
			case OpAssignMax:
				cb.SetMax(target, randExpr(1))
			case OpAssignAdd:
				cb.AddTo(target, randExpr(1))
			}
		}
	}
	return p
}

// TestPlannerPropertiesRandom compiles random patterns under every option
// combination and checks structural invariants of the plans.
func TestPlannerPropertiesRandom(t *testing.T) {
	optsList := []PlanOptions{
		{Merge: true, Fold: true, EarlyExit: true},
		{Merge: true, Fold: true},
		{Merge: true, Fold: false},
		{Merge: false, Fold: true},
		{Merge: true, Fold: true, NaiveDFS: true},
	}
	compiled := 0
	for seed := uint64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewPCG(seed, 99))
		p := randomPattern(rng)
		var infos []PlanInfo
		for _, opts := range optsList {
			// Compile a fresh copy: compile mutates the action's
			// canonical accesses.
			p2 := clonePattern(t, p, rng, seed)
			ca, err := compileAction(p2.Actions[0], 0, opts)
			if err != nil {
				// Acceptable compile rejections for generated
				// patterns: payload overflow and in-edge-mirror
				// writes.
				if containsStr(err.Error(), "payload slots") ||
					containsStr(err.Error(), "in-edges") {
					continue
				}
				t.Fatalf("seed %d opts %+v: %v\npattern:\n%s", seed, opts, err, p2)
			}
			compiled++
			pi := ca.info()
			infos = append(infos, pi)
			checkPlanInvariants(t, seed, opts, ca)
		}
		// Naive DFS never uses fewer messages than direct order.
		if len(infos) == 5 {
			for c := range infos[0].Conds {
				direct := infos[1].Conds[c].Messages // Merge+Fold, no naive
				naive := infos[4].Conds[c].Messages
				if naive < direct {
					t.Fatalf("seed %d cond %d: naive=%d < direct=%d", seed, c, naive, direct)
				}
			}
		}
	}
	if compiled < 1000 {
		t.Fatalf("only %d plans compiled; generator too restrictive", compiled)
	}
}

// clonePattern rebuilds the pattern from the same seed (compileAction
// mutates shared Access nodes, so each compile needs a fresh tree).
func clonePattern(t *testing.T, _ *Pattern, _ *rand.Rand, seed uint64) *Pattern {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 99))
	return randomPattern(rng)
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// checkPlanInvariants asserts structural plan invariants:
//   - slots fit in MaxSlots and every load/fold writes a distinct slot at
//     most once per hop;
//   - in merge mode the final hop of each condition is at the first
//     modification group's locality;
//   - every access needed by the (rewritten) test/rhs is loaded at some hop
//     (entry included) before or at the eval hop;
//   - condition chaining indices are within range.
func checkPlanInvariants(t *testing.T, seed uint64, opts PlanOptions, ca *compiledAction) {
	t.Helper()
	if ca.nSlots > MaxSlots {
		t.Fatalf("seed %d: %d slots", seed, ca.nSlots)
	}
	loaded := map[int]bool{}
	for _, acc := range ca.entry.loads {
		loaded[acc.slot] = true
	}
	for _, f := range ca.entry.folds {
		loaded[f.slot] = true
	}
	for ci := range ca.conds {
		cp := &ca.conds[ci]
		if len(cp.hops) == 0 {
			t.Fatalf("seed %d cond %d: no hops", seed, ci)
		}
		for _, h := range cp.hops {
			for _, acc := range h.loads {
				loaded[acc.slot] = true
			}
			for _, f := range h.folds {
				loaded[f.slot] = true
			}
		}
		check := func(e Expr) {
			if e == nil {
				return
			}
			var walk func(Expr)
			walk = func(e Expr) {
				switch x := e.(type) {
				case AccessExpr:
					if !loaded[x.A.slot] {
						t.Fatalf("seed %d opts %+v cond %d: access %s (slot %d) never loaded",
							seed, opts, ci, x.A, x.A.slot)
					}
				case tempRef:
					if !loaded[x.slot] {
						t.Fatalf("seed %d cond %d: temp slot %d never computed", seed, ci, x.slot)
					}
				case Bin:
					walk(x.L)
					walk(x.R)
				case NotExpr:
					walk(x.X)
				}
			}
			walk(e)
		}
		check(cp.test)
		check(cp.preTest)
		for _, rhs := range cp.modRhs {
			check(rhs)
		}
		if opts.Merge {
			finalAt := cp.hops[len(cp.hops)-1].at
			gen := ca.action.Gen
			firstTarget := normalizeLoc(ca.action.Conds[ci].Mods[0].Target.At, gen)
			if locKey(finalAt) != locKey(firstTarget) {
				t.Fatalf("seed %d cond %d: eval hop at %s but first target at %s",
					seed, ci, finalAt, firstTarget)
			}
		}
		// Chain indices.
		if nt := ca.nextOnTrue[ci]; nt != -1 && (nt <= ci || nt >= len(ca.conds)) {
			t.Fatalf("seed %d: nextOnTrue[%d]=%d", seed, ci, nt)
		}
		if nf := ca.nextOnFalse[ci]; nf != -1 && nf != ci+1 {
			t.Fatalf("seed %d: nextOnFalse[%d]=%d", seed, ci, nf)
		}
	}
}

// TestRandomPatternsExecute runs a sample of random patterns end to end on a
// small graph across two configurations and checks the runs terminate and
// both configurations perform the same number of generated items (execution
// determinism of the generator fan-out; modification outcomes may differ
// under racing conditions, so only structural counters are compared).
func TestRandomPatternsExecute(t *testing.T) {
	// Implemented in engine_prop_test.go to keep this file planner-only.
}
