package pattern

import (
	"math/rand/v2"
	"testing"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/gen"
	"declpat/internal/pmap"
)

// TestRandomPatternsRun executes random patterns end to end: every run must
// terminate (epochs quiesce even for garbage patterns), never panic, and the
// generator fan-out (Items) must be identical across machine configurations.
// NIL and out-of-range property values used as localities behave as NULL
// (condition false), so arbitrary stored words are safe.
func TestRandomPatternsRun(t *testing.T) {
	const n = 32
	edges := gen.ER(n, 96, gen.Weights{Min: 1, Max: 9}, 5)
	cfgs := []am.Config{
		{Ranks: 1, ThreadsPerRank: 0},
		{Ranks: 3, ThreadsPerRank: 2},
	}
	for seed := uint64(0); seed < 60; seed++ {
		var items [2]int64
		for i, cfg := range cfgs {
			rng := rand.New(rand.NewPCG(seed, 99))
			p := randomPattern(rng)
			u := am.NewUniverse(cfg)
			d := distgraph.NewBlockDist(n, cfg.Ranks)
			g := distgraph.Build(d, edges, distgraph.Options{Bidirectional: true})
			lm := pmap.NewLockMap(d, 1)
			eng := NewEngine(u, g, lm, DefaultPlanOptions())
			binds := Bindings{}
			valRng := rand.New(rand.NewPCG(seed, 7))
			for _, pr := range p.Props {
				switch pr.Kind {
				case VertexWordProp:
					m := pmap.NewVertexWord(d, 0)
					for r := 0; r < cfg.Ranks; r++ {
						m.ForEachLocal(r, func(v distgraph.Vertex, _ int64) {
							m.Set(r, v, int64(valRng.IntN(n)))
						})
					}
					binds[pr.Name] = m
				case EdgeWordProp:
					binds[pr.Name] = pmap.WeightMap(g)
				case VertexSetProp:
					binds[pr.Name] = pmap.NewVertexSet(d, lm)
				}
			}
			bound, err := eng.Bind(p, binds)
			if err != nil {
				if containsStr(err.Error(), "payload slots") ||
					containsStr(err.Error(), "in-edges") {
					break
				}
				t.Fatalf("seed %d: bind: %v", seed, err)
			}
			act := bound.Action("act")
			u.Run(func(r *am.Rank) {
				r.Epoch(func(ep *am.Epoch) {
					lg := g.Local(r.ID())
					for li := 0; li < lg.NumLocal(); li++ {
						act.Invoke(r, g.Dist().Global(r.ID(), li))
					}
				})
			})
			items[i] = act.Stats.Items.Load()
		}
		if items[0] != items[1] && items[1] != 0 {
			t.Fatalf("seed %d: generator items differ across configs: %d vs %d", seed, items[0], items[1])
		}
	}
}
