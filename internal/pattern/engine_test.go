package pattern

import (
	"testing"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/gen"
	"declpat/internal/pmap"
	"declpat/internal/seq"
)

// runSSSP executes a fixed-point SSSP through the raw engine (the strategy
// layer is exercised in its own package) and returns the gathered distances.
func runSSSP(t *testing.T, cfg am.Config, n int, edges []distgraph.Edge, src distgraph.Vertex, opts PlanOptions) []int64 {
	t.Helper()
	u := am.NewUniverse(cfg)
	dist := distgraph.NewBlockDist(n, cfg.Ranks)
	g := distgraph.Build(dist, edges, distgraph.Options{})
	lm := pmap.NewLockMap(dist, 1)
	eng := NewEngine(u, g, lm, opts)

	dmap := pmap.NewVertexWord(dist, Inf)
	wmap := pmap.WeightMap(g)
	bound, err := eng.Bind(buildSSSP(), Bindings{"dist": dmap, "weight": wmap})
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	relax := bound.Action("relax")
	relax.SetWork(func(r *am.Rank, v distgraph.Vertex) { relax.InvokeAsync(r, v) })

	u.Run(func(r *am.Rank) {
		if r.ID() == g.Owner(src) {
			dmap.Set(r.ID(), src, 0)
		}
		r.Barrier()
		r.Epoch(func(ep *am.Epoch) {
			if r.ID() == g.Owner(src) {
				relax.Invoke(r, src)
			}
		})
	})
	return dmap.Gather()
}

func engineConfigs() []am.Config {
	return []am.Config{
		{Ranks: 1, ThreadsPerRank: 0},
		{Ranks: 1, ThreadsPerRank: 2},
		{Ranks: 3, ThreadsPerRank: 1},
		{Ranks: 4, ThreadsPerRank: 2},
		{Ranks: 2, ThreadsPerRank: 2, Detector: am.DetectorFourCounter},
	}
}

func TestEngineSSSPMatchesDijkstra(t *testing.T) {
	n, edges := gen.RMAT(8, 8, gen.Weights{Min: 1, Max: 50}, 11)
	want := seq.Dijkstra(n, edges, 0)
	for _, cfg := range engineConfigs() {
		got := runSSSP(t, cfg, n, edges, 0, DefaultPlanOptions())
		for v := range want {
			w := want[v]
			if w == seq.Inf {
				w = Inf
			}
			if got[v] != w {
				t.Fatalf("cfg %+v: dist[%d] = %d, want %d", cfg, v, got[v], w)
			}
		}
	}
}

// TestEngineSSSPPlanVariants: every planner configuration that preserves the
// min-semantics must produce correct distances.
func TestEngineSSSPPlanVariants(t *testing.T) {
	n, edges := gen.RMAT(7, 8, gen.Weights{Min: 1, Max: 20}, 5)
	want := seq.Dijkstra(n, edges, 0)
	variants := []PlanOptions{
		{Merge: true, Fold: true},
		{Merge: true, Fold: false},
		{Merge: true, Fold: true, NaiveDFS: true},
	}
	for _, opts := range variants {
		got := runSSSP(t, am.Config{Ranks: 3, ThreadsPerRank: 1}, n, edges, 0, opts)
		for v := range want {
			w := want[v]
			if w == seq.Inf {
				w = Inf
			}
			if got[v] != w {
				t.Fatalf("opts %+v: dist[%d] = %d, want %d", opts, v, got[v], w)
			}
		}
	}
}

// TestEnginePointerJumpRuntime drives the cc_jump two-hop gather: chains
// chg[i] = i+1 collapse toward the minimum via repeated pointer jumping.
func TestEnginePointerJumpRuntime(t *testing.T) {
	const n = 16
	for _, ranks := range []int{1, 4} {
		u := am.NewUniverse(am.Config{Ranks: ranks, ThreadsPerRank: 1})
		dist := distgraph.NewBlockDist(n, ranks)
		// Graph structure is irrelevant for a GenNone action; a path
		// keeps the builder happy.
		g := distgraph.Build(dist, gen.Path(n, gen.Weights{}, 0), distgraph.Options{})
		lm := pmap.NewLockMap(dist, 1)
		eng := NewEngine(u, g, lm, DefaultPlanOptions())

		p := New("CCJ")
		chg := p.VertexProp("chg")
		a := p.Action("cc_jump", None())
		inner := chg.At(V())
		outer := chg.AtVal(inner)
		// if (chg[chg[v]] >= 0 && chg[chg[v]] < chg[v]) chg[v] = chg[chg[v]]
		a.If(And(Ge(outer, C(0)), Lt(outer, inner))).Set(chg.At(V()), outer)

		cmap := pmap.NewVertexWord(dist, 0)
		bound, err := eng.Bind(p, Bindings{"chg": cmap})
		if err != nil {
			t.Fatalf("bind: %v", err)
		}
		jump := bound.Action("cc_jump")

		u.Run(func(r *am.Rank) {
			// chg[i] = i-1 (chg[0] = 0): a chain pointing down.
			cmap.ForEachLocal(r.ID(), func(v distgraph.Vertex, _ int64) {
				if v == 0 {
					cmap.Set(r.ID(), v, 0)
				} else {
					cmap.Set(r.ID(), v, int64(v)-1)
				}
			})
			r.Barrier()
			// Repeated rounds of pointer jumping halve chain depth;
			// log2(16)=4 rounds suffice, run 5.
			for round := 0; round < 5; round++ {
				r.Epoch(func(ep *am.Epoch) {
					lg := g.Local(r.ID())
					for li := 0; li < lg.NumLocal(); li++ {
						jump.Invoke(r, g.Dist().Global(r.ID(), li))
					}
				})
			}
		})
		for v, c := range cmap.Gather() {
			if c != 0 {
				t.Fatalf("ranks=%d: chg[%d]=%d after jumping, want 0", ranks, v, c)
			}
		}
	}
}

// TestEngineSetInsert exercises the paper's preds[v].insert(u) modification:
// collect each vertex's predecessors through the out-edge generator.
func TestEngineSetInsert(t *testing.T) {
	n, edges := gen.Torus2D(4, 4, gen.Weights{}, 0)
	for _, ranks := range []int{1, 3} {
		u := am.NewUniverse(am.Config{Ranks: ranks, ThreadsPerRank: 1})
		dist := distgraph.NewBlockDist(n, ranks)
		g := distgraph.Build(dist, edges, distgraph.Options{})
		lm := pmap.NewLockMap(dist, 1)
		eng := NewEngine(u, g, lm, DefaultPlanOptions())

		p := New("Preds")
		preds := p.VertexSetProp("preds")
		a := p.Action("record", OutEdges())
		a.Do().Insert(preds.At(Trg()), Vtx(Src()))

		pm := pmap.NewVertexSet(dist, lm)
		bound, err := eng.Bind(p, Bindings{"preds": pm})
		if err != nil {
			t.Fatalf("bind: %v", err)
		}
		rec := bound.Action("record")
		u.Run(func(r *am.Rank) {
			r.Epoch(func(ep *am.Epoch) {
				lg := g.Local(r.ID())
				for li := 0; li < lg.NumLocal(); li++ {
					rec.Invoke(r, g.Dist().Global(r.ID(), li))
				}
			})
		})
		// Check against the edge list.
		want := map[distgraph.Vertex]map[distgraph.Vertex]bool{}
		for _, e := range edges {
			if want[e.Dst] == nil {
				want[e.Dst] = map[distgraph.Vertex]bool{}
			}
			want[e.Dst][e.Src] = true
		}
		for v := distgraph.Vertex(0); int(v) < n; v++ {
			got := pm.Members(dist.Owner(v), v)
			if len(got) != len(want[v]) {
				t.Fatalf("ranks=%d: preds[%d] = %v, want %d members", ranks, v, got, len(want[v]))
			}
			for _, s := range got {
				if !want[v][s] {
					t.Fatalf("preds[%d] contains %d unexpectedly", v, s)
				}
			}
		}
	}
}

// TestEngineAdjGenerator runs a one-round "minimum label propagation" over
// the adj generator and checks the SSSP-style invariant for one round.
func TestEngineAdjGenerator(t *testing.T) {
	n, edges := gen.Torus2D(3, 3, gen.Weights{}, 0)
	u := am.NewUniverse(am.Config{Ranks: 2, ThreadsPerRank: 1})
	dist := distgraph.NewBlockDist(n, 2)
	g := distgraph.Build(dist, edges, distgraph.Options{Symmetrize: true})
	lm := pmap.NewLockMap(dist, 1)
	eng := NewEngine(u, g, lm, DefaultPlanOptions())

	p := New("MinLabel")
	lab := p.VertexProp("lab")
	a := p.Action("prop", Adj())
	// if (lab[v] < lab[u]) lab[u] = lab[v]
	a.If(Lt(lab.At(V()), lab.At(U()))).Set(lab.At(U()), lab.At(V()))

	lmap := pmap.NewVertexWord(dist, 0)
	bound, err := eng.Bind(p, Bindings{"lab": lmap})
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	prop := bound.Action("prop")
	prop.SetWork(func(r *am.Rank, v distgraph.Vertex) { prop.InvokeAsync(r, v) })

	u.Run(func(r *am.Rank) {
		lmap.ForEachLocal(r.ID(), func(v distgraph.Vertex, _ int64) {
			lmap.Set(r.ID(), v, int64(v)+100)
		})
		r.Barrier()
		r.Epoch(func(ep *am.Epoch) {
			lg := g.Local(r.ID())
			for li := 0; li < lg.NumLocal(); li++ {
				prop.Invoke(r, g.Dist().Global(r.ID(), li))
			}
		})
	})
	// The torus is connected: with the work hook re-running to a fixed
	// point, every vertex ends at the global minimum label.
	for v, l := range lmap.Gather() {
		if l != 100 {
			t.Fatalf("lab[%d] = %d, want 100", v, l)
		}
	}
	if prop.Stats.WorkItems.Load() == 0 {
		t.Error("expected dependency work items")
	}
}

// TestEngineModifiedFlag verifies the per-rank modification flag used by the
// `once` strategy.
func TestEngineModifiedFlag(t *testing.T) {
	n := 8
	u := am.NewUniverse(am.Config{Ranks: 2, ThreadsPerRank: 0})
	dist := distgraph.NewBlockDist(n, 2)
	g := distgraph.Build(dist, gen.Path(n, gen.Weights{}, 0), distgraph.Options{})
	lm := pmap.NewLockMap(dist, 1)
	eng := NewEngine(u, g, lm, DefaultPlanOptions())

	p := New("M")
	x := p.VertexProp("x")
	a := p.Action("cap", None())
	a.If(Gt(x.At(V()), C(5))).Set(x.At(V()), C(5))

	xmap := pmap.NewVertexWord(dist, 9)
	bound, err := eng.Bind(p, Bindings{"x": xmap})
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	cap_ := bound.Action("cap")
	u.Run(func(r *am.Rank) {
		for round := 0; round < 2; round++ {
			cap_.ResetModified(r)
			r.Barrier()
			r.Epoch(func(ep *am.Epoch) {
				lg := g.Local(r.ID())
				for li := 0; li < lg.NumLocal(); li++ {
					cap_.Invoke(r, g.Dist().Global(r.ID(), li))
				}
			})
			any := r.AllReduceOr(cap_.ModifiedLocal(r))
			if round == 0 && !any {
				t.Error("round 0: expected modifications")
			}
			if round == 1 && any {
				t.Error("round 1: expected a fixed point")
			}
		}
	})
}

// TestEngineBindErrors checks binding validation.
func TestEngineBindErrors(t *testing.T) {
	u := am.NewUniverse(am.Config{Ranks: 1})
	dist := distgraph.NewBlockDist(4, 1)
	g := distgraph.Build(dist, gen.Path(4, gen.Weights{}, 0), distgraph.Options{})
	eng := NewEngine(u, g, pmap.NewLockMap(dist, 1), DefaultPlanOptions())
	p := buildSSSP()
	if _, err := eng.Bind(p, Bindings{"dist": pmap.NewVertexWord(dist, 0)}); err == nil {
		t.Error("expected error for missing weight binding")
	}
	if _, err := eng.Bind(p, Bindings{"dist": pmap.NewVertexWord(dist, 0), "weight": pmap.NewVertexWord(dist, 0)}); err == nil {
		t.Error("expected error for mis-typed weight binding")
	}
}

// TestEngineHandWrittenEquivalence cross-checks the engine against a
// hand-written AM++ SSSP (the E9 baseline shape): both must produce the same
// distances and the same relaxation counts on the same graph.
func TestEngineHandWrittenEquivalence(t *testing.T) {
	n, edges := gen.RMAT(7, 8, gen.Weights{Min: 1, Max: 30}, 9)
	want := seq.Dijkstra(n, edges, 0)

	// Hand-written: one message type carrying (target, candidate dist).
	cfg := am.Config{Ranks: 3, ThreadsPerRank: 1}
	u := am.NewUniverse(cfg)
	dist := distgraph.NewBlockDist(n, cfg.Ranks)
	g := distgraph.Build(dist, edges, distgraph.Options{})
	dmap := pmap.NewVertexWord(dist, Inf)
	type relaxMsg struct {
		T distgraph.Vertex
		D int64
	}
	var mt *am.MsgType[relaxMsg]
	mt = am.Register(u, "relax", func(r *am.Rank, m relaxMsg) {
		if dmap.Min(r.ID(), m.T, m.D) {
			g.ForOutEdges(r.ID(), m.T, func(e distgraph.EdgeRef) {
				mt.Send(r, relaxMsg{T: e.Trg(), D: m.D + g.Weight(r.ID(), e)})
			})
		}
	}).WithAddresser(func(m relaxMsg) int { return g.Owner(m.T) })
	u.Run(func(r *am.Rank) {
		r.Epoch(func(ep *am.Epoch) {
			if r.ID() == g.Owner(0) {
				mt.Send(r, relaxMsg{T: 0, D: 0})
			}
		})
	})
	got := dmap.Gather()
	for v := range want {
		w := want[v]
		if w == seq.Inf {
			w = Inf
		}
		if got[v] != w {
			t.Fatalf("hand-written dist[%d] = %d, want %d", v, got[v], w)
		}
	}
}
