package pattern

import (
	"fmt"

	"declpat/internal/distgraph"
)

// Word is the engine's value type: patterns compute over 64-bit words.
// Vertices appearing as values are widened to words.
type Word = int64

// Inf is the conventional "unreached" distance value (fits comfortably in
// sums without overflowing).
const Inf Word = 1 << 60

// NilWord encodes the paper's NULL vertex value inside word-valued property
// maps.
const NilWord Word = -1

// MaxSlots bounds the number of payload words a single action may carry
// (gathered accesses plus folded temporaries).
const MaxSlots = 12

// PropKind distinguishes the property families a pattern may declare.
type PropKind int

const (
	// VertexWordProp is a word-valued vertex property.
	VertexWordProp PropKind = iota
	// EdgeWordProp is a word-valued edge property.
	EdgeWordProp
	// VertexSetProp is a set-of-vertices-valued vertex property.
	VertexSetProp
)

func (k PropKind) String() string {
	switch k {
	case VertexWordProp:
		return "vertex-property"
	case EdgeWordProp:
		return "edge-property"
	case VertexSetProp:
		return "vertex-set-property"
	}
	return fmt.Sprintf("PropKind(%d)", int(k))
}

// Prop is a property-map declaration inside a pattern (§III-B). It is bound
// to concrete storage when the pattern is bound to an Engine.
type Prop struct {
	Name string
	Kind PropKind
	pat  *Pattern
}

// Pattern is a named collection of property declarations and actions (§III).
type Pattern struct {
	Name    string
	Props   []*Prop
	Actions []*Action
}

// New creates an empty pattern.
func New(name string) *Pattern { return &Pattern{Name: name} }

// VertexProp declares a word-valued vertex property.
func (p *Pattern) VertexProp(name string) *Prop { return p.addProp(name, VertexWordProp) }

// EdgeProp declares a word-valued edge property.
func (p *Pattern) EdgeProp(name string) *Prop { return p.addProp(name, EdgeWordProp) }

// VertexSetProp declares a set-of-vertices vertex property (the paper's
// preds example).
func (p *Pattern) VertexSetProp(name string) *Prop { return p.addProp(name, VertexSetProp) }

func (p *Pattern) addProp(name string, kind PropKind) *Prop {
	for _, q := range p.Props {
		if q.Name == name {
			panic("pattern: duplicate property " + name)
		}
	}
	pr := &Prop{Name: name, Kind: kind, pat: p}
	p.Props = append(p.Props, pr)
	return pr
}

// GenKind selects an action's generator (§III-C: zero or one generator).
type GenKind int

const (
	// GenNone runs the action at the input vertex only.
	GenNone GenKind = iota
	// GenOutEdges generates the out-edges of v.
	GenOutEdges
	// GenInEdges generates the in-edges of v (bidirectional graphs).
	GenInEdges
	// GenAdj generates the out-neighbour vertices of v.
	GenAdj
	// GenPropSet generates the vertices stored in a set-valued property
	// at v.
	GenPropSet
)

// Generator describes an action's fan-out.
type Generator struct {
	Kind GenKind
	Set  *Prop // for GenPropSet
}

// None returns the empty generator.
func None() Generator { return Generator{Kind: GenNone} }

// OutEdges returns the out_edges generator.
func OutEdges() Generator { return Generator{Kind: GenOutEdges} }

// InEdges returns the in_edges generator.
func InEdges() Generator { return Generator{Kind: GenInEdges} }

// Adj returns the adj generator.
func Adj() Generator { return Generator{Kind: GenAdj} }

// SetOf returns a generator over the vertices stored in set-valued property
// p at the input vertex.
func SetOf(p *Prop) Generator { return Generator{Kind: GenPropSet, Set: p} }

// Loc designates the vertex a value is accessed at (Def. 1). For edge
// properties, LocE designates the generated edge, whose locality is the
// generation vertex.
type Loc struct {
	Kind LocKind
	A    *Access // for LocAccess: the access whose gathered value is the vertex
}

// LocKind enumerates locality designators.
type LocKind int

const (
	// LocV is the action's input vertex.
	LocV LocKind = iota
	// LocU is the generated vertex (adj / set generators).
	LocU
	// LocTrg is the target of the generated edge.
	LocTrg
	// LocSrc is the source of the generated edge.
	LocSrc
	// LocE is the generated edge itself (edge property index).
	LocE
	// LocAccess is a vertex read from a property map (pointer chains).
	LocAccess
)

// V designates the input vertex.
func V() Loc { return Loc{Kind: LocV} }

// U designates the generated vertex.
func U() Loc { return Loc{Kind: LocU} }

// Trg designates the generated edge's target.
func Trg() Loc { return Loc{Kind: LocTrg} }

// Src designates the generated edge's source.
func Src() Loc { return Loc{Kind: LocSrc} }

// E designates the generated edge (edge property index).
func E() Loc { return Loc{Kind: LocE} }

func (l Loc) String() string {
	switch l.Kind {
	case LocV:
		return "v"
	case LocU:
		return "u"
	case LocTrg:
		return "trg(e)"
	case LocSrc:
		return "src(e)"
	case LocE:
		return "e"
	case LocAccess:
		return "val(" + l.A.String() + ")"
	}
	return "?"
}

// Access is one property-map read or write site: property p indexed at
// locality At. Structurally equal accesses are unified by Compile and share
// one payload slot.
type Access struct {
	Prop *Prop
	At   Loc
	slot int // assigned by Compile
}

func (a *Access) String() string { return a.Prop.Name + "[" + a.At.String() + "]" }

// At builds an access to p indexed by the given locality designator.
func (p *Prop) At(l Loc) Expr {
	if p.Kind == EdgeWordProp && l.Kind != LocE {
		panic("pattern: edge property " + p.Name + " must be indexed by the generated edge (pattern.E())")
	}
	if p.Kind != EdgeWordProp && l.Kind == LocE {
		panic("pattern: vertex property " + p.Name + " indexed by an edge")
	}
	return AccessExpr{A: &Access{Prop: p, At: l}}
}

// AtVal builds an access to p indexed by a vertex value read from another
// property map (the pointer-jumping form, e.g. chg[chg[v]]). idx must be a
// property access yielding a vertex.
func (p *Prop) AtVal(idx Expr) Expr {
	ae, ok := idx.(AccessExpr)
	if !ok {
		panic("pattern: AtVal index must be a property access (vertices can only come from generators and property maps)")
	}
	if p.Kind == EdgeWordProp {
		panic("pattern: edge property " + p.Name + " cannot be indexed by a vertex value")
	}
	return AccessExpr{A: &Access{Prop: p, At: Loc{Kind: LocAccess, A: ae.A}}}
}

// Expr is a side-effect-free pattern expression over words.
type Expr interface {
	exprNode()
	String() string
}

// Const is a literal word.
type Const struct{ X Word }

func (Const) exprNode()        {}
func (c Const) String() string { return fmt.Sprintf("%d", c.X) }

// VertexVal is a vertex id used as a value (e.g. comp[v] = v).
type VertexVal struct{ L Loc }

func (VertexVal) exprNode()        {}
func (x VertexVal) String() string { return x.L.String() }

// AccessExpr is the value of a property access.
type AccessExpr struct{ A *Access }

func (AccessExpr) exprNode()        {}
func (x AccessExpr) String() string { return x.A.String() }

// BinOp enumerates binary operators.
type BinOp int

// Binary operators usable in pattern expressions.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpMin
	OpMax
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	OpAnd
	OpOr
)

var binOpNames = [...]string{"+", "-", "*", "/", "%", "min", "max", "<", "<=", ">", ">=", "==", "!=", "&&", "||"}

// Bin is a binary operation.
type Bin struct {
	Op   BinOp
	L, R Expr
}

func (Bin) exprNode() {}
func (b Bin) String() string {
	return "(" + b.L.String() + " " + binOpNames[b.Op] + " " + b.R.String() + ")"
}

// NotExpr is logical negation.
type NotExpr struct{ X Expr }

func (NotExpr) exprNode()        {}
func (n NotExpr) String() string { return "!" + n.X.String() }

// tempRef refers to a folded temporary's payload slot (created by the
// planner; never constructed by users).
type tempRef struct {
	slot int
	orig Expr
}

func (tempRef) exprNode()        {}
func (t tempRef) String() string { return "tmp" + fmt.Sprintf("%d", t.slot) }

// Convenience constructors mirroring the paper's expression forms.

// C returns a constant expression.
func C(x Word) Expr { return Const{X: x} }

// Vtx returns the vertex at l as a word value.
func Vtx(l Loc) Expr { return VertexVal{L: l} }

// Add returns l + r.
func Add(l, r Expr) Expr { return Bin{Op: OpAdd, L: l, R: r} }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return Bin{Op: OpSub, L: l, R: r} }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return Bin{Op: OpMul, L: l, R: r} }

// Div returns l / r (integer division; division by zero yields 0, keeping
// actions total).
func Div(l, r Expr) Expr { return Bin{Op: OpDiv, L: l, R: r} }

// ModE returns l % r (modulo by zero yields 0).
func ModE(l, r Expr) Expr { return Bin{Op: OpMod, L: l, R: r} }

// MinE returns min(l, r).
func MinE(l, r Expr) Expr { return Bin{Op: OpMin, L: l, R: r} }

// MaxE returns max(l, r).
func MaxE(l, r Expr) Expr { return Bin{Op: OpMax, L: l, R: r} }

// Lt returns l < r.
func Lt(l, r Expr) Expr { return Bin{Op: OpLt, L: l, R: r} }

// Le returns l <= r.
func Le(l, r Expr) Expr { return Bin{Op: OpLe, L: l, R: r} }

// Gt returns l > r.
func Gt(l, r Expr) Expr { return Bin{Op: OpGt, L: l, R: r} }

// Ge returns l >= r.
func Ge(l, r Expr) Expr { return Bin{Op: OpGe, L: l, R: r} }

// Eq returns l == r.
func Eq(l, r Expr) Expr { return Bin{Op: OpEq, L: l, R: r} }

// Ne returns l != r.
func Ne(l, r Expr) Expr { return Bin{Op: OpNe, L: l, R: r} }

// And returns l && r.
func And(l, r Expr) Expr { return Bin{Op: OpAnd, L: l, R: r} }

// Or returns l || r.
func Or(l, r Expr) Expr { return Bin{Op: OpOr, L: l, R: r} }

// Not returns !x.
func Not(x Expr) Expr { return NotExpr{X: x} }

// ModOp enumerates modification operators; the leftmost accessed value of a
// modification statement is the modified one (§III-C).
type ModOp int

const (
	// OpAssign stores the right-hand side.
	OpAssign ModOp = iota
	// OpAssignMin lowers the target to min(target, rhs).
	OpAssignMin
	// OpAssignMax raises the target to max(target, rhs).
	OpAssignMax
	// OpAssignAdd adds the rhs to the target.
	OpAssignAdd
	// OpInsert inserts a vertex into a set-valued target
	// (preds[v].insert(u)).
	OpInsert
)

var modOpNames = [...]string{"=", "min=", "max=", "+=", ".insert"}

// Mod is one modification statement.
type Mod struct {
	Target *Access
	Op     ModOp
	Rhs    Expr

	// firesDependency is set by Compile when Target's property is also
	// read somewhere in the action (§IV-C).
	firesDependency bool
}

func (m Mod) String() string {
	return m.Target.String() + " " + modOpNames[m.Op] + " " + m.Rhs.String()
}

// Cond is one condition: a guard expression and the modifications it
// protects. Elif marks it as the else-branch of the preceding condition;
// non-Elif conditions form the paper's "series of if statements".
type Cond struct {
	Test Expr // nil = unconditional (a bare else / unconditional statement)
	Mods []Mod
	Elif bool
}

// Action is a pattern action (§III-C): a name, an optional generator, and a
// condition chain.
type Action struct {
	Name  string
	Gen   Generator
	Conds []Cond
	pat   *Pattern
}

// Action declares a new action on the pattern.
func (p *Pattern) Action(name string, gen Generator) *Action {
	for _, a := range p.Actions {
		if a.Name == name {
			panic("pattern: duplicate action " + name)
		}
	}
	if gen.Kind == GenPropSet && (gen.Set == nil || gen.Set.Kind != VertexSetProp) {
		panic("pattern: SetOf generator requires a vertex-set property")
	}
	a := &Action{Name: name, Gen: gen, pat: p}
	p.Actions = append(p.Actions, a)
	return a
}

// CondBuilder accumulates the modifications of one condition.
type CondBuilder struct {
	a  *Action
	ci int
}

// If appends a new independent condition guarded by test.
func (a *Action) If(test Expr) *CondBuilder {
	a.Conds = append(a.Conds, Cond{Test: test})
	return &CondBuilder{a: a, ci: len(a.Conds) - 1}
}

// Elif appends an else-if branch of the previous condition.
func (a *Action) Elif(test Expr) *CondBuilder {
	if len(a.Conds) == 0 {
		panic("pattern: Elif without a preceding If")
	}
	a.Conds = append(a.Conds, Cond{Test: test, Elif: true})
	return &CondBuilder{a: a, ci: len(a.Conds) - 1}
}

// Else appends an unconditional else branch of the previous condition.
func (a *Action) Else() *CondBuilder {
	if len(a.Conds) == 0 {
		panic("pattern: Else without a preceding If")
	}
	a.Conds = append(a.Conds, Cond{Test: nil, Elif: true})
	return &CondBuilder{a: a, ci: len(a.Conds) - 1}
}

// Do appends an unconditional independent statement group.
func (a *Action) Do() *CondBuilder {
	a.Conds = append(a.Conds, Cond{Test: nil})
	return &CondBuilder{a: a, ci: len(a.Conds) - 1}
}

func (cb *CondBuilder) addMod(target Expr, op ModOp, rhs Expr) *CondBuilder {
	ae, ok := target.(AccessExpr)
	if !ok {
		panic("pattern: modification target must be a property access")
	}
	cb.a.Conds[cb.ci].Mods = append(cb.a.Conds[cb.ci].Mods, Mod{Target: ae.A, Op: op, Rhs: rhs})
	return cb
}

// Set adds the modification target = rhs.
func (cb *CondBuilder) Set(target Expr, rhs Expr) *CondBuilder {
	return cb.addMod(target, OpAssign, rhs)
}

// SetMin adds target = min(target, rhs).
func (cb *CondBuilder) SetMin(target Expr, rhs Expr) *CondBuilder {
	return cb.addMod(target, OpAssignMin, rhs)
}

// SetMax adds target = max(target, rhs).
func (cb *CondBuilder) SetMax(target Expr, rhs Expr) *CondBuilder {
	return cb.addMod(target, OpAssignMax, rhs)
}

// AddTo adds target += rhs.
func (cb *CondBuilder) AddTo(target Expr, rhs Expr) *CondBuilder {
	return cb.addMod(target, OpAssignAdd, rhs)
}

// Insert adds target.insert(rhs) for set-valued targets; rhs must yield a
// vertex.
func (cb *CondBuilder) Insert(target Expr, rhs Expr) *CondBuilder {
	return cb.addMod(target, OpInsert, rhs)
}

// nilVertexWord converts a vertex to its word encoding (NilWord for
// NilVertex).
func vertexWord(v distgraph.Vertex) Word {
	if v == distgraph.NilVertex {
		return NilWord
	}
	return Word(v)
}

// wordVertex converts a word back to a vertex; negative words map to
// NilVertex.
func wordVertex(w Word) distgraph.Vertex {
	if w < 0 {
		return distgraph.NilVertex
	}
	return distgraph.Vertex(w)
}
