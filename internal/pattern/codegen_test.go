package pattern

import (
	"strings"
	"testing"
)

func TestCodegenSSSPShape(t *testing.T) {
	src, err := GenerateGo(buildSSSP(), DefaultPlanOptions(), "x")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package x",
		"type Relax struct",
		"a.dist.Min(r.ID(), m.Dest,", // atomic-min eval
		"ForOutEdges",
		"a.dist.Get(r.ID(), v) + a.weight.Get(r.ID(), e)", // folded subexpression inline
		"DO NOT EDIT",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in generated source", want)
		}
	}
	// The generated relax fires the work hook (dist read+written).
	if !strings.Contains(src, "a.work(r, m.Dest)") {
		t.Error("work hook not fired in generated eval")
	}
}

func TestCodegenSupportedLibrary(t *testing.T) {
	cases := []struct {
		name   string
		mk     func() *Pattern
		atomic string
	}{
		{"widest", buildWidestForGen, ".Max(r.ID(), m.Dest,"},
		{"degree", buildDegreeForGen, ".Add(r.ID(), m.Dest,"},
	}
	for _, tc := range cases {
		src, err := GenerateGo(tc.mk(), DefaultPlanOptions(), "x")
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !strings.Contains(src, tc.atomic) {
			t.Errorf("%s: expected %q in generated source", tc.name, tc.atomic)
		}
	}
}

func buildWidestForGen() *Pattern {
	p := New("Widest")
	capP := p.VertexProp("cap")
	weight := p.EdgeProp("weight")
	widen := p.Action("widen", OutEdges())
	c := MinE(capP.At(V()), weight.At(E()))
	widen.If(Gt(c, capP.At(Trg()))).Set(capP.At(Trg()), c)
	return p
}

func buildDegreeForGen() *Pattern {
	p := New("Degree")
	indeg := p.VertexProp("indeg")
	count := p.Action("count", OutEdges())
	count.Do().AddTo(indeg.At(Trg()), C(1))
	return p
}

func TestCodegenUnsupportedShapes(t *testing.T) {
	// Set-valued property.
	p1 := New("S")
	s := p1.VertexSetProp("s")
	a1 := p1.Action("ins", Adj())
	a1.Do().Insert(s.At(U()), Vtx(V()))
	if _, err := GenerateGo(p1, DefaultPlanOptions(), "x"); err == nil {
		t.Error("expected error for set property")
	}
	// Multi-hop plan (pointer jump).
	p2 := New("J")
	chg := p2.VertexProp("chg")
	a2 := p2.Action("jump", None())
	cv := chg.At(V())
	a2.If(Lt(chg.AtVal(cv), cv)).Set(chg.At(V()), chg.AtVal(cv))
	if _, err := GenerateGo(p2, DefaultPlanOptions(), "x"); err == nil {
		t.Error("expected error for multi-hop plan")
	}
	// In-edges generator.
	p3 := New("I")
	x := p3.VertexProp("x")
	a3 := p3.Action("pull", InEdges())
	a3.Do().AddTo(x.At(Trg()), x.At(Src()))
	if _, err := GenerateGo(p3, DefaultPlanOptions(), "x"); err == nil {
		t.Error("expected error for in-edges generator")
	}
	// Unmerged plans.
	if _, err := GenerateGo(buildSSSP(), PlanOptions{Merge: false, Fold: true}, "x"); err == nil {
		t.Error("expected error for unmerged plan")
	}
	// Lock-path condition (multi-value).
	p4 := New("L")
	y := p4.VertexProp("y")
	z := p4.VertexProp("z")
	a4 := p4.Action("two", OutEdges())
	a4.If(Gt(y.At(Trg()), C(0))).Set(y.At(Trg()), C(0)).Set(z.At(Trg()), C(1))
	if _, err := GenerateGo(p4, DefaultPlanOptions(), "x"); err == nil {
		t.Error("expected error for lock-path condition")
	}
}
