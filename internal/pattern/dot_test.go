package pattern

import (
	"strings"
	"testing"
)

func TestPlanDot(t *testing.T) {
	ca := compileOne(t, buildSSSP(), DefaultPlanOptions())
	dot := ca.info().Dot()
	for _, want := range []string{
		"digraph \"relax\"",
		"cond 0: 1 msgs, atomic-min",
		"label=\"trg(e)\"",
		"peripheries=2", // eval site marker
		"rankdir=LR",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("missing %q in dot:\n%s", want, dot)
		}
	}
	// Unmerged three-locality plan has a dashed mod edge.
	ca2 := compileOne(t, threeLocRelax(), PlanOptions{Merge: false, Fold: true})
	dot2 := ca2.info().Dot()
	if !strings.Contains(dot2, "style=dashed") {
		t.Errorf("unmerged plan should render a dashed mod edge:\n%s", dot2)
	}
	// Balanced braces.
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Error("unbalanced braces")
	}
}
