package pattern

import (
	"strings"
	"testing"
)

// buildSSSP constructs the paper's Fig. 2 SSSP pattern:
//
//	pattern SSSP {
//	  vertex-property(dist); edge-property(weight);
//	  relax(vertex v) {
//	    generator: e in out_edges;
//	    alias: d = dist[v] + weight[e];
//	    if (d < dist[trg(e)]) dist[trg(e)] = d;
//	  }
//	}
func buildSSSP() *Pattern {
	p := New("SSSP")
	dist := p.VertexProp("dist")
	weight := p.EdgeProp("weight")
	relax := p.Action("relax", OutEdges())
	d := Add(dist.At(V()), weight.At(E())) // the alias
	relax.If(Lt(d, dist.At(Trg()))).Set(dist.At(Trg()), d)
	return p
}

func compileOne(t *testing.T, p *Pattern, opts PlanOptions) *compiledAction {
	t.Helper()
	ca, err := compileAction(p.Actions[0], 0, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return ca
}

// TestSSSPPlanFig6 asserts the headline result of §IV-A/Fig. 6: the SSSP
// relax compiles to a single message whose payload is the precomputed
// subexpression dist[v]+weight[e] (one word), evaluated and applied with an
// atomic instruction at trg(e).
func TestSSSPPlanFig6(t *testing.T) {
	ca := compileOne(t, buildSSSP(), DefaultPlanOptions())
	pi := ca.info()
	if len(pi.Conds) != 1 {
		t.Fatalf("conds: %d", len(pi.Conds))
	}
	c := pi.Conds[0]
	if c.Messages != 1 {
		t.Errorf("messages = %d, want 1 (Fig. 6)\n%s", c.Messages, pi)
	}
	if c.PayloadWords != 1 {
		t.Errorf("payload = %d words, want 1 (folded dist[v]+weight[e])\n%s", c.PayloadWords, pi)
	}
	if c.Sync != "atomic-min" {
		t.Errorf("sync = %s, want atomic-min (§IV-B single-value case)\n%s", c.Sync, pi)
	}
	if len(c.Route) != 1 || c.Route[0] != "trg(e)" {
		t.Errorf("route = %v, want [trg(e)]", c.Route)
	}
}

// TestSSSPPlanNoFold shows the Fig. 6 payload optimization: without folding
// the message carries both raw values.
func TestSSSPPlanNoFold(t *testing.T) {
	ca := compileOne(t, buildSSSP(), PlanOptions{Merge: true, Fold: false})
	c := ca.info().Conds[0]
	if c.Messages != 1 {
		t.Errorf("messages = %d, want 1", c.Messages)
	}
	if c.PayloadWords != 2 {
		t.Errorf("payload = %d words, want 2 (dist[v] and weight[e] raw)", c.PayloadWords)
	}
	// Without folding the test/rhs are distinct expressions; the relax
	// shape is still detected structurally.
	if c.Sync != "atomic-min" {
		t.Errorf("sync = %s, want atomic-min", c.Sync)
	}
}

// threeLocRelax is a relax variant whose condition reads a third remote
// vertex (a penalty stored at pen[v]'s vertex), so the merged and unmerged
// plans differ in message count: merged evaluates at trg(e) after picking up
// the penalty (2 messages), unmerged gathers trg(e)'s distance first, then
// the penalty, evaluates there, and ships a separate modification message
// back (3 messages).
func threeLocRelax() *Pattern {
	p := New("SSSP3")
	dist := p.VertexProp("dist")
	pen := p.VertexProp("pen") // penalty value stored at a helper vertex
	via := p.VertexProp("via") // via[v]: helper vertex of v
	weight := p.EdgeProp("weight")
	relax := p.Action("relax", OutEdges())
	d := Add(Add(dist.At(V()), weight.At(E())), pen.AtVal(via.At(V())))
	relax.If(Lt(d, dist.At(Trg()))).Set(dist.At(Trg()), d)
	return p
}

func TestMergeOptimizationMessageCounts(t *testing.T) {
	merged := compileOne(t, threeLocRelax(), DefaultPlanOptions()).info().Conds[0]
	unmerged := compileOne(t, threeLocRelax(), PlanOptions{Merge: false, Fold: true}).info().Conds[0]
	if merged.Messages != 2 {
		t.Errorf("merged messages = %d, want 2 (penalty hop + merged eval at trg)\nroute: %v", merged.Messages, merged.Route)
	}
	if unmerged.Messages != 3 {
		t.Errorf("unmerged messages = %d, want 3 (gather trg, gather penalty+eval, modify trg)\nroute: %v", unmerged.Messages, unmerged.Route)
	}
	if merged.Sync != "atomic-min" {
		t.Errorf("merged sync = %s, want atomic-min", merged.Sync)
	}
	if last := merged.Route[len(merged.Route)-1]; last != "trg(e)" {
		t.Errorf("merged route must end at trg(e): %v", merged.Route)
	}
	if last := unmerged.Route[len(unmerged.Route)-1]; !strings.HasPrefix(last, "mod@") {
		t.Errorf("unmerged route must end with a modification message: %v", unmerged.Route)
	}
}

// fig5Pattern reconstructs the shape of the paper's Fig. 5 example: a
// dependency tree rooted at v with one short branch and one long pointer
// chain ending at the evaluation site. The naive depth-first traversal
// needs 8 messages (it backtracks to v between subtrees); direct sibling
// jumps need 7 — the counts the figure discusses.
func fig5Pattern() *Pattern {
	p := New("Fig5")
	// Branch: b[v] holds a helper vertex; its value bval[b[v]] is read.
	b := p.VertexProp("b")
	bval := p.VertexProp("bval")
	// Chain: c1[v] -> c2[...] -> ... -> c6, each holding the next vertex.
	c1 := p.VertexProp("c1")
	c2 := p.VertexProp("c2")
	c3 := p.VertexProp("c3")
	c4 := p.VertexProp("c4")
	c5 := p.VertexProp("c5")
	c6 := p.VertexProp("c6")
	out := p.VertexProp("out")
	a := p.Action("gather", None())
	x1 := c1.At(V())   // vertex 1, read at v
	x2 := c2.AtVal(x1) // read at vertex 1
	x3 := c3.AtVal(x2) // read at vertex 2
	x4 := c4.AtVal(x3) // read at vertex 3
	x5 := c5.AtVal(x4) // read at vertex 4
	x6 := c6.AtVal(x5) // read at vertex 5
	bv := bval.AtVal(b.At(V()))
	// Evaluation site: vertex 6 (the chain end), where out is modified.
	a.If(Gt(Add(bv, x6), C(0))).Set(out.AtVal(x6), Add(bv, x6))
	return p
}

func TestFig5NaiveVsDirect(t *testing.T) {
	direct := compileOne(t, fig5Pattern(), PlanOptions{Merge: true, Fold: true}).info().Conds[0]
	naive := compileOne(t, fig5Pattern(), PlanOptions{Merge: true, Fold: true, NaiveDFS: true}).info().Conds[0]
	// Direct: branch hop (bval at b[v]) then the 5-vertex chain, eval at
	// the chain end: 1 + 5 + 1(eval at out's vertex = x5's vertex) = 7.
	if direct.Messages != 7 {
		t.Errorf("direct messages = %d, want 7\nroute: %v", direct.Messages, direct.Route)
	}
	// Naive: same hops plus one backtrack to v between the branch subtree
	// and the chain subtree: 8.
	if naive.Messages != 8 {
		t.Errorf("naive messages = %d, want 8\nroute: %v", naive.Messages, naive.Route)
	}
}

// TestPointerJumpPlan: cc_jump's chg[chg[v]] is a two-hop gather whose
// evaluation returns to v (E11).
func TestPointerJumpPlan(t *testing.T) {
	p := New("CCJ")
	chg := p.VertexProp("chg")
	a := p.Action("cc_jump", None())
	inner := chg.At(V())
	outer := chg.AtVal(inner)
	a.If(And(Ge(outer, C(0)), Lt(outer, inner))).Set(chg.At(V()), outer)
	ca := compileOne(t, p, DefaultPlanOptions())
	c := ca.info().Conds[0]
	// Hop to chg[v]'s vertex, then back to v to evaluate and modify.
	if c.Messages != 2 {
		t.Errorf("messages = %d, want 2\nroute: %v", c.Messages, c.Route)
	}
	if c.Route[len(c.Route)-1] != "v" {
		t.Errorf("must evaluate back at v: %v", c.Route)
	}
	if c.Sync != "lock" {
		t.Errorf("sync = %s, want lock (multi-value condition)", c.Sync)
	}
}

func TestAccessDedup(t *testing.T) {
	p := New("D")
	x := p.VertexProp("x")
	a := p.Action("act", OutEdges())
	// dist[trg(e)] appears three times; one slot.
	a.If(Lt(x.At(Trg()), C(10))).Set(x.At(Trg()), Add(x.At(Trg()), C(1)))
	ca := compileOne(t, p, DefaultPlanOptions())
	if len(ca.accesses) != 1 {
		t.Fatalf("accesses = %d, want 1 (dedup)", len(ca.accesses))
	}
}

func TestDependencyDetection(t *testing.T) {
	// SSSP reads and writes dist → the mod fires the work hook.
	ca := compileOne(t, buildSSSP(), DefaultPlanOptions())
	if !ca.action.Conds[0].Mods[0].firesDependency {
		t.Error("SSSP relax must fire dependencies (§IV-C)")
	}
	// A pattern writing a property it never reads must not.
	p := New("W")
	x := p.VertexProp("x")
	y := p.VertexProp("y")
	a := p.Action("copy", OutEdges())
	a.If(Gt(x.At(V()), C(0))).Set(y.At(Trg()), x.At(V()))
	ca2 := compileOne(t, p, DefaultPlanOptions())
	if ca2.action.Conds[0].Mods[0].firesDependency {
		t.Error("write-only property must not fire dependencies")
	}
}

func TestElifChaining(t *testing.T) {
	p := New("E")
	x := p.VertexProp("x")
	a := p.Action("act", None())
	a.If(Gt(x.At(V()), C(10))).Set(x.At(V()), C(10))
	a.Elif(Gt(x.At(V()), C(5))).Set(x.At(V()), C(5))
	a.Else().Set(x.At(V()), C(0))
	a.If(Lt(x.At(V()), C(-1))).Set(x.At(V()), C(-1)) // independent if
	ca := compileOne(t, p, DefaultPlanOptions())
	// True from cond 0 skips the elif and else, landing on cond 3.
	if ca.nextOnTrue[0] != 3 {
		t.Errorf("nextOnTrue[0] = %d, want 3", ca.nextOnTrue[0])
	}
	if ca.nextOnFalse[0] != 1 || ca.nextOnFalse[1] != 2 {
		t.Errorf("false chain: %v", ca.nextOnFalse)
	}
	if ca.nextOnTrue[2] != 3 {
		t.Errorf("nextOnTrue[2] = %d, want 3", ca.nextOnTrue[2])
	}
	if ca.nextOnTrue[3] != -1 || ca.nextOnFalse[3] != -1 {
		t.Error("cond 3 must terminate the chain")
	}
}

func TestCompileErrors(t *testing.T) {
	// No conditions.
	p := New("X")
	p.VertexProp("x")
	p.Action("empty", None())
	if _, err := compileAction(p.Actions[0], 0, DefaultPlanOptions()); err == nil {
		t.Error("expected error for action without conditions")
	}
	// Condition without modifications.
	p2 := New("X2")
	x2 := p2.VertexProp("x")
	a2 := p2.Action("nomod", None())
	a2.If(Gt(x2.At(V()), C(0)))
	if _, err := compileAction(p2.Actions[0], 0, DefaultPlanOptions()); err == nil {
		t.Error("expected error for condition without modifications")
	}
	// Generated-edge access without an edge generator.
	p3 := New("X3")
	x3 := p3.VertexProp("x")
	a3 := p3.Action("badloc", Adj())
	a3.If(Gt(x3.At(Trg()), C(0))).Set(x3.At(Trg()), C(1))
	if _, err := compileAction(p3.Actions[0], 0, DefaultPlanOptions()); err == nil {
		t.Error("expected error for trg(e) under adj generator")
	}
	// Starting with an elif.
	p4 := New("X4")
	x4 := p4.VertexProp("x")
	a4 := p4.Action("elif", None())
	a4.Conds = append(a4.Conds, Cond{Test: Gt(x4.At(V()), C(0)), Elif: true, Mods: []Mod{}})
	if _, err := compileAction(p4.Actions[0], 0, DefaultPlanOptions()); err == nil {
		t.Error("expected error for leading elif")
	}
}

func TestBuilderPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	p := New("P")
	x := p.VertexProp("x")
	w := p.EdgeProp("w")
	s := p.VertexSetProp("s")
	expectPanic("duplicate prop", func() { p.VertexProp("x") })
	expectPanic("edge prop at vertex", func() { w.At(V()) })
	expectPanic("vertex prop at edge", func() { x.At(E()) })
	expectPanic("AtVal non-access", func() { x.AtVal(C(3)) })
	expectPanic("set read as word", func() {
		a := p.Action("bad", None())
		a.If(Gt(s.At(V()), C(0))).Set(x.At(V()), C(1))
		compileAction(a, 0, DefaultPlanOptions())
	})
}

func TestGatherElisionAcrossConditions(t *testing.T) {
	// Two conditions reading the same remote value: the second condition
	// must not re-gather it (§IV-A elision).
	p := New("El")
	x := p.VertexProp("x")
	y := p.VertexProp("y")
	a := p.Action("act", OutEdges())
	a.If(Gt(x.At(Trg()), C(0))).Set(y.At(V()), x.At(Trg()))
	a.If(Gt(x.At(Trg()), C(5))).Set(y.At(V()), C(99))
	ca := compileOne(t, p, DefaultPlanOptions())
	// Cond 0: x[trg] is needed for the test but the mod target y[v] is at
	// v: hops = gather trg, eval at v = 2 messages.
	if got := ca.conds[0].messages(); got != 2 {
		t.Errorf("cond0 messages = %d, want 2\n%s", got, ca.info())
	}
	// Cond 1: x[trg] already gathered; eval at v where we already stand =
	// 1 hop (at v), 0 new gathers.
	if got := len(ca.conds[1].hops); got != 1 {
		t.Errorf("cond1 hops = %d, want 1 (elided gather)\n%s", got, ca.info())
	}
}
