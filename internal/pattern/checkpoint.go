package pattern

// Epoch-granular checkpoint/restart support (am.Checkpointer). The engine's
// only mutable per-rank state outside the user's property maps is each bound
// action's modification flag (the `once` strategy's changed-anything bit);
// everything else — compiled actions, bindings, work hooks — is frozen
// before Run. Action-level Stats counters are diagnostics, not algorithm
// state, and are deliberately not rewound.

// SnapshotRank saves every bound action's modification flag for one rank
// (am.Checkpointer).
func (e *Engine) SnapshotRank(rank int) any {
	flags := make([]bool, len(e.actions))
	for i, ba := range e.actions {
		flags[i] = ba.modified[rank].Load()
	}
	return flags
}

// RestoreRank rolls every bound action's modification flag back for one rank
// (am.Checkpointer).
func (e *Engine) RestoreRank(rank int, snap any) {
	for i, f := range snap.([]bool) {
		e.actions[i].modified[rank].Store(f)
	}
}
