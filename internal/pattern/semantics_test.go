package pattern

import (
	"testing"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/gen"
	"declpat/internal/pmap"
)

// This file encodes the paper's §III-C synchronization guarantees as tests:
//
//  1. every modification is atomic;
//  2. in every condition, the first modification synchronizes with the reads
//     of property values indexed by the same vertex;
//  3. reads at other vertices are NOT synchronized (stale values are
//     permitted) — the framework stays correct for monotone algorithms but
//     makes no stronger promise.

// TestSemanticsFirstModificationSynchronized hammers one vertex with
// concurrent conditional increments; guarantee (2) makes the
// read-test-write atomic, so the final value is exact.
func TestSemanticsFirstModificationSynchronized(t *testing.T) {
	const n = 4
	u := am.NewUniverse(am.Config{Ranks: 2, ThreadsPerRank: 4})
	d := distgraph.NewBlockDist(n, 2)
	// Star onto vertex 3: every other vertex has 64 parallel edges to it.
	var edges []distgraph.Edge
	for src := 0; src < 3; src++ {
		for k := 0; k < 64; k++ {
			edges = append(edges, distgraph.Edge{Src: distgraph.Vertex(src), Dst: 3, W: 1})
		}
	}
	g := distgraph.Build(d, edges, distgraph.Options{})
	lm := pmap.NewLockMap(d, 1)
	eng := NewEngine(u, g, lm, DefaultPlanOptions())

	p := New("Inc")
	x := p.VertexProp("x")
	cap_ := p.VertexProp("cap")
	a := p.Action("inc", OutEdges())
	// if (x[trg] < cap[trg]) x[trg] = x[trg] + 1 — a two-value condition
	// at the same vertex: lock path, exact counting required.
	a.If(Lt(x.At(Trg()), cap_.At(Trg()))).
		Set(x.At(Trg()), Add(x.At(Trg()), C(1)))
	xm := pmap.NewVertexWord(d, 0)
	cm := pmap.NewVertexWord(d, 150)
	bound, err := eng.Bind(p, Bindings{"x": xm, "cap": cm})
	if err != nil {
		t.Fatal(err)
	}
	inc := bound.Action("inc")
	u.Run(func(r *am.Rank) {
		r.Epoch(func(ep *am.Epoch) {
			lg := g.Local(r.ID())
			for li := 0; li < lg.NumLocal(); li++ {
				inc.Invoke(r, g.Dist().Global(r.ID(), li))
			}
		})
	})
	// 192 increment attempts against a cap of 150: exactly 150 land.
	if got := xm.Get(d.Owner(3), 3); got != 150 {
		t.Fatalf("x[3] = %d, want exactly 150 (first-modification synchronization)", got)
	}
	if inc.PlanInfo().Conds[0].Sync != "lock" {
		t.Fatalf("two-value condition must use the lock map")
	}
}

// TestSemanticsAtomicModifications: guarantee (1) — concurrent set inserts
// and adds from many handler threads never lose updates.
func TestSemanticsAtomicModifications(t *testing.T) {
	const n = 64
	u := am.NewUniverse(am.Config{Ranks: 4, ThreadsPerRank: 4})
	d := distgraph.NewBlockDist(n, 4)
	edges := gen.ER(n, 2000, gen.Weights{}, 3)
	g := distgraph.Build(d, edges, distgraph.Options{})
	lm := pmap.NewLockMap(d, 1)
	eng := NewEngine(u, g, lm, DefaultPlanOptions())

	p := New("Acc")
	total := p.VertexProp("total")
	preds := p.VertexSetProp("preds")
	a := p.Action("acc", OutEdges())
	a.Do().AddTo(total.At(Trg()), C(1)).Insert(preds.At(Trg()), Vtx(Src()))
	tm := pmap.NewVertexWord(d, 0)
	pm := pmap.NewVertexSet(d, lm)
	bound, err := eng.Bind(p, Bindings{"total": tm, "preds": pm})
	if err != nil {
		t.Fatal(err)
	}
	acc := bound.Action("acc")
	u.Run(func(r *am.Rank) {
		r.Epoch(func(ep *am.Epoch) {
			lg := g.Local(r.ID())
			for li := 0; li < lg.NumLocal(); li++ {
				acc.Invoke(r, g.Dist().Global(r.ID(), li))
			}
		})
	})
	wantTotal := make([]int64, n)
	wantPreds := make([]map[distgraph.Vertex]bool, n)
	for i := range wantPreds {
		wantPreds[i] = map[distgraph.Vertex]bool{}
	}
	for _, e := range edges {
		wantTotal[e.Dst]++
		wantPreds[e.Dst][e.Src] = true
	}
	for v := 0; v < n; v++ {
		vr := d.Owner(distgraph.Vertex(v))
		if got := tm.Get(vr, distgraph.Vertex(v)); got != wantTotal[v] {
			t.Fatalf("total[%d] = %d, want %d (lost atomic add)", v, got, wantTotal[v])
		}
		if got := pm.Len(vr, distgraph.Vertex(v)); got != len(wantPreds[v]) {
			t.Fatalf("preds[%d] has %d members, want %d", v, got, len(wantPreds[v]))
		}
	}
}

// TestSemanticsRemoteReadsUnsynchronized documents guarantee (3): a value
// read at the input vertex and carried to a remote modification can be
// stale. The test builds a copy pattern where src values change concurrently
// and asserts only the weaker property that every written value WAS a value
// of the source at some point — not necessarily the latest.
func TestSemanticsRemoteReadsUnsynchronized(t *testing.T) {
	const n = 8
	u := am.NewUniverse(am.Config{Ranks: 2, ThreadsPerRank: 2})
	d := distgraph.NewBlockDist(n, 2)
	edges := gen.Path(n, gen.Weights{}, 0)
	g := distgraph.Build(d, edges, distgraph.Options{})
	lm := pmap.NewLockMap(d, 1)
	eng := NewEngine(u, g, lm, DefaultPlanOptions())

	p := New("Copy")
	src := p.VertexProp("src")
	dst := p.VertexProp("dst")
	a := p.Action("copy", OutEdges())
	a.If(Ge(src.At(V()), C(0))).Set(dst.At(Trg()), src.At(V()))
	sm := pmap.NewVertexWord(d, 0)
	dm := pmap.NewVertexWord(d, -1)
	bound, err := eng.Bind(p, Bindings{"src": sm, "dst": dm})
	if err != nil {
		t.Fatal(err)
	}
	cp := bound.Action("copy")
	var legalValues [2]int64
	legalValues[0], legalValues[1] = 10, 20
	u.Run(func(r *am.Rank) {
		r.Epoch(func(ep *am.Epoch) {
			lg := g.Local(r.ID())
			for li := 0; li < lg.NumLocal(); li++ {
				v := g.Dist().Global(r.ID(), li)
				sm.Set(r.ID(), v, legalValues[0])
				cp.Invoke(r, v)
				sm.Set(r.ID(), v, legalValues[1])
				cp.Invoke(r, v)
			}
		})
	})
	for v := 1; v < n; v++ {
		got := dm.Get(d.Owner(distgraph.Vertex(v)), distgraph.Vertex(v))
		if got != 10 && got != 20 {
			t.Fatalf("dst[%d] = %d: written value was never a source value", v, got)
		}
	}
}

// TestSemanticsLockGranularities: §IV-B's lock-map parameterization — the
// synchronized-counting test stays exact under coarse lock blocks too.
func TestSemanticsLockGranularities(t *testing.T) {
	for _, gran := range []int{1, 8, 1 << 20} {
		const n = 4
		u := am.NewUniverse(am.Config{Ranks: 1, ThreadsPerRank: 4})
		d := distgraph.NewBlockDist(n, 1)
		var edges []distgraph.Edge
		for k := 0; k < 200; k++ {
			edges = append(edges, distgraph.Edge{Src: distgraph.Vertex(k % 3), Dst: 3, W: 1})
		}
		g := distgraph.Build(d, edges, distgraph.Options{})
		lm := pmap.NewLockMap(d, gran)
		eng := NewEngine(u, g, lm, DefaultPlanOptions())
		p := New("Inc")
		x := p.VertexProp("x")
		capP := p.VertexProp("cap")
		a := p.Action("inc", OutEdges())
		a.If(Lt(x.At(Trg()), capP.At(Trg()))).Set(x.At(Trg()), Add(x.At(Trg()), C(1)))
		xm := pmap.NewVertexWord(d, 0)
		cm := pmap.NewVertexWord(d, 120)
		bound, err := eng.Bind(p, Bindings{"x": xm, "cap": cm})
		if err != nil {
			t.Fatal(err)
		}
		inc := bound.Action("inc")
		u.Run(func(r *am.Rank) {
			r.Epoch(func(ep *am.Epoch) {
				for li := 0; li < g.Local(0).NumLocal(); li++ {
					inc.Invoke(r, distgraph.Vertex(li))
				}
			})
		})
		if got := xm.Get(0, 3); got != 120 {
			t.Fatalf("granularity %d: x[3] = %d, want 120", gran, got)
		}
	}
}
