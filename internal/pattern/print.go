package pattern

import (
	"fmt"
	"strings"
)

// String renders the pattern in the paper's concrete syntax (§III):
//
//	pattern SSSP {
//	  vertex-property(dist);
//	  edge-property(weight);
//	  relax(vertex v) {
//	    generator: e in out_edges;
//	    if (((dist[v] + weight[e]) < dist[trg(e)]))
//	      dist[trg(e)] = (dist[v] + weight[e]);
//	  }
//	}
//
// Aliases are expanded (they are "just shortcuts ... pasting in the
// expression", §III-C).
func (p *Pattern) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pattern %s {\n", p.Name)
	for _, pr := range p.Props {
		fmt.Fprintf(&b, "  %s(%s);\n", pr.Kind, pr.Name)
	}
	for _, a := range p.Actions {
		b.WriteString(a.render("  "))
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders one action in the paper's syntax.
func (a *Action) String() string { return a.render("") }

func (a *Action) render(indent string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s%s(vertex v) {\n", indent, a.Name)
	switch a.Gen.Kind {
	case GenOutEdges:
		fmt.Fprintf(&b, "%s  generator: e in out_edges;\n", indent)
	case GenInEdges:
		fmt.Fprintf(&b, "%s  generator: e in in_edges;\n", indent)
	case GenAdj:
		fmt.Fprintf(&b, "%s  generator: u in adj;\n", indent)
	case GenPropSet:
		fmt.Fprintf(&b, "%s  generator: u in %s[v];\n", indent, a.Gen.Set.Name)
	}
	for _, c := range a.Conds {
		kw := "if"
		if c.Elif {
			if c.Test == nil {
				kw = "else"
			} else {
				kw = "else if"
			}
		} else if c.Test == nil {
			kw = "always"
		}
		if c.Test != nil {
			fmt.Fprintf(&b, "%s  %s (%s)\n", indent, kw, c.Test)
		} else {
			fmt.Fprintf(&b, "%s  %s\n", indent, kw)
		}
		for _, m := range c.Mods {
			fmt.Fprintf(&b, "%s    %s;\n", indent, renderMod(m))
		}
	}
	fmt.Fprintf(&b, "%s}\n", indent)
	return b.String()
}

func renderMod(m Mod) string {
	switch m.Op {
	case OpInsert:
		return fmt.Sprintf("%s.insert(%s)", m.Target, m.Rhs)
	case OpAssignMin:
		return fmt.Sprintf("%s = min(%s, %s)", m.Target, m.Target, m.Rhs)
	case OpAssignMax:
		return fmt.Sprintf("%s = max(%s, %s)", m.Target, m.Target, m.Rhs)
	case OpAssignAdd:
		return fmt.Sprintf("%s += %s", m.Target, m.Rhs)
	default:
		return fmt.Sprintf("%s = %s", m.Target, m.Rhs)
	}
}
