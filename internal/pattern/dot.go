package pattern

import (
	"fmt"
	"strings"
)

// Dot renders the action's compiled message plan as a Graphviz digraph (the
// style of the paper's Figs. 5–6): nodes are localities, solid edges are
// gather/evaluate messages in route order, dashed edges are tail
// modification messages. One subgraph per condition.
func (pi PlanInfo) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", pi.Action)
	b.WriteString("  rankdir=LR;\n  node [shape=circle, fontsize=11];\n")
	for ci, c := range pi.Conds {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n", ci)
		fmt.Fprintf(&b, "    label=\"cond %d: %d msgs, %s\";\n", ci, c.Messages, c.Sync)
		node := func(name string) string {
			return fmt.Sprintf("\"c%d_%s\"", ci, name)
		}
		fmt.Fprintf(&b, "    %s [label=\"v\", style=bold];\n", node("entry"))
		prev := node("entry")
		seen := map[string]int{}
		for i, loc := range c.Route {
			isMod := strings.HasPrefix(loc, "mod@")
			label := strings.TrimPrefix(loc, "mod@")
			seen[label]++
			id := node(fmt.Sprintf("%d_%s", i, sanitizeDot(label)))
			style := ""
			if i == len(c.Route)-1 && !isMod {
				style = ", peripheries=2" // eval site (Fig. 5's dashed vertex)
			}
			fmt.Fprintf(&b, "    %s [label=%q%s];\n", id, label, style)
			edgeAttr := ""
			if isMod {
				edgeAttr = " [style=dashed, label=\"mod\"]"
			} else {
				edgeAttr = fmt.Sprintf(" [label=\"%d\"]", i+1)
			}
			fmt.Fprintf(&b, "    %s -> %s%s;\n", prev, id, edgeAttr)
			prev = id
		}
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func sanitizeDot(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
