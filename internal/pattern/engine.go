package pattern

import (
	"fmt"
	"sync/atomic"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/pmap"
)

// patMsg is the engine's single active-message type: one step of an action's
// execution, carrying the generator bindings and the gathered payload. Dest
// is the locality vertex, from which the destination rank is computed
// (object-based addressing, §IV-D).
type patMsg struct {
	Action int32
	Cond   int16
	Hop    int16 // -1 = entry: run the generator at owner(V)
	Dest   distgraph.Vertex
	V      distgraph.Vertex
	U      distgraph.Vertex
	ES, ET distgraph.Vertex
	ESlot  uint32
	EIn    bool
	HasE   bool
	Vals   [MaxSlots]Word
}

func (m *patMsg) edgeRef() distgraph.EdgeRef {
	return distgraph.EdgeRef{S: m.ES, T: m.ET, Slot: m.ESlot, In: m.EIn}
}

// binding resolves a declared property to concrete storage.
type binding struct {
	vw *pmap.VertexWord
	ew *pmap.EdgeWord
	vs *pmap.VertexSet
}

// Bindings maps property names to storage: *pmap.VertexWord for
// vertex-properties, *pmap.EdgeWord for edge-properties, *pmap.VertexSet for
// vertex-set-properties.
type Bindings map[string]any

// Engine executes compiled patterns over a universe and a distributed
// graph. Create it (and Bind patterns) before Universe.Run; the engine
// registers one message type.
type Engine struct {
	u       *am.Universe
	g       *distgraph.Graph
	lm      *pmap.LockMap
	opts    PlanOptions
	msg     *am.MsgType[patMsg]
	actions []*BoundAction
}

// NewEngine creates a pattern engine. lm provides §IV-B's lock map (used for
// multi-value conditions); opts selects the §IV planning optimizations.
func NewEngine(u *am.Universe, g *distgraph.Graph, lm *pmap.LockMap, opts PlanOptions) *Engine {
	e := &Engine{u: u, g: g, lm: lm, opts: opts}
	e.msg = am.Register(u, "pattern-step", func(r *am.Rank, m patMsg) {
		e.dispatch(r, m)
	}).WithAddresser(func(m patMsg) int { return g.Owner(m.Dest) })
	u.RegisterCheckpointer(e)
	return e
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *distgraph.Graph { return e.g }

// Universe returns the engine's universe.
func (e *Engine) Universe() *am.Universe { return e.u }

// MsgType exposes the engine's message type (for configuring coalescing or
// reductions in experiments).
func (e *Engine) MsgType() *am.MsgType[patMsg] { return e.msg }

// Bound is one pattern bound to storage with compiled plans.
type Bound struct {
	Pattern *Pattern
	actions map[string]*BoundAction
}

// Action returns the named bound action, panicking if absent.
func (b *Bound) Action(name string) *BoundAction {
	ba, ok := b.actions[name]
	if !ok {
		panic("pattern: no action " + name + " in pattern " + b.Pattern.Name)
	}
	return ba
}

// Bind compiles p's actions against the engine's plan options and resolves
// its property declarations to storage. Must be called before Universe.Run.
func (e *Engine) Bind(p *Pattern, binds Bindings) (*Bound, error) {
	resolved := map[*Prop]binding{}
	for _, pr := range p.Props {
		raw, ok := binds[pr.Name]
		if !ok {
			return nil, fmt.Errorf("pattern %s: no binding for property %s", p.Name, pr.Name)
		}
		var bd binding
		switch m := raw.(type) {
		case *pmap.VertexWord:
			if pr.Kind != VertexWordProp {
				return nil, fmt.Errorf("property %s is %v, bound to VertexWord", pr.Name, pr.Kind)
			}
			bd.vw = m
		case *pmap.EdgeWord:
			if pr.Kind != EdgeWordProp {
				return nil, fmt.Errorf("property %s is %v, bound to EdgeWord", pr.Name, pr.Kind)
			}
			bd.ew = m
		case *pmap.VertexSet:
			if pr.Kind != VertexSetProp {
				return nil, fmt.Errorf("property %s is %v, bound to VertexSet", pr.Name, pr.Kind)
			}
			bd.vs = m
		default:
			return nil, fmt.Errorf("property %s: unsupported binding type %T", pr.Name, raw)
		}
		resolved[pr] = bd
	}
	b := &Bound{Pattern: p, actions: map[string]*BoundAction{}}
	for _, a := range p.Actions {
		ca, err := compileAction(a, len(e.actions), e.opts)
		if err != nil {
			return nil, err
		}
		ba := &BoundAction{
			eng:      e,
			ca:       ca,
			binds:    resolved,
			modified: make([]atomic.Bool, e.u.Ranks()),
		}
		e.actions = append(e.actions, ba)
		b.actions[a.Name] = ba
	}
	return b, nil
}

// Stats counts engine-level events per action; all fields are atomic.
type Stats struct {
	// Invocations counts action entries (one per Invoke).
	Invocations atomic.Int64
	// Items counts generated items (edges/vertices fanned out to).
	Items atomic.Int64
	// TestsTrue / TestsFalse count condition evaluations by outcome.
	TestsTrue, TestsFalse atomic.Int64
	// ModsChanged / ModsUnchanged count modification applications.
	ModsChanged, ModsUnchanged atomic.Int64
	// WorkItems counts dependency work-hook firings (§IV-C).
	WorkItems atomic.Int64
}

// BoundAction is an action bound to storage, ready to invoke inside epochs.
type BoundAction struct {
	eng      *Engine
	ca       *compiledAction
	binds    map[*Prop]binding
	work     func(r *am.Rank, v distgraph.Vertex)
	modified []atomic.Bool
	Stats    Stats
}

// Name returns the action's name.
func (ba *BoundAction) Name() string { return ba.ca.action.Name }

// PlanInfo returns the compiled message plan for inspection.
func (ba *BoundAction) PlanInfo() PlanInfo { return ba.ca.info() }

// SetWork installs the work hook called at the owner of a dependent vertex
// when a modification read by the action changes its value (§IV-C). The
// paper's `a.work(Vertex v) = {...}` customization point. The hook runs in
// handler context and must not block; to re-run the action use InvokeAsync,
// not Invoke.
func (ba *BoundAction) SetWork(fn func(r *am.Rank, v distgraph.Vertex)) { ba.work = fn }

// ResetModified clears this rank's modification flag (used by the `once`
// strategy).
func (ba *BoundAction) ResetModified(r *am.Rank) { ba.modified[r.ID()].Store(false) }

// ModifiedLocal reports whether any modification changed a value on this
// rank since ResetModified.
func (ba *BoundAction) ModifiedLocal(r *am.Rank) bool { return ba.modified[r.ID()].Load() }

// Invoke runs the action at v. If v is local the entry executes inline;
// otherwise an entry message is sent. Must be called inside an epoch.
func (ba *BoundAction) Invoke(r *am.Rank, v distgraph.Vertex) {
	if ba.eng.g.Owner(v) == r.ID() {
		ba.runEntry(r, v)
		return
	}
	ba.eng.msg.Send(r, patMsg{Action: int32(ba.ca.id), Hop: -1, Dest: v, V: v})
}

// InvokeAsync enqueues the action at v through the messaging layer even when
// v is local, bounding stack depth; safe to call from work hooks.
func (ba *BoundAction) InvokeAsync(r *am.Rank, v distgraph.Vertex) {
	ba.eng.msg.Send(r, patMsg{Action: int32(ba.ca.id), Hop: -1, Dest: v, V: v})
}

// dispatch routes an incoming engine message.
func (e *Engine) dispatch(r *am.Rank, m patMsg) {
	ba := e.actions[m.Action]
	if m.Hop < 0 {
		ba.runEntry(r, m.V)
		return
	}
	ba.resume(r, &m)
}

// runEntry executes the generator at owner(v) and starts every generated
// item through the condition chain.
func (ba *BoundAction) runEntry(r *am.Rank, v distgraph.Vertex) {
	ba.Stats.Invocations.Add(1)
	g := ba.eng.g
	a := ba.ca.action
	base := patMsg{Action: int32(ba.ca.id), V: v, U: distgraph.NilVertex}
	switch a.Gen.Kind {
	case GenNone:
		ba.startItem(r, base)
	case GenOutEdges:
		g.ForOutEdges(r.ID(), v, func(er distgraph.EdgeRef) {
			m := base
			m.HasE, m.ES, m.ET, m.ESlot, m.EIn = true, er.S, er.T, er.Slot, er.In
			ba.startItem(r, m)
		})
	case GenInEdges:
		g.ForInEdges(r.ID(), v, func(er distgraph.EdgeRef) {
			m := base
			m.HasE, m.ES, m.ET, m.ESlot, m.EIn = true, er.S, er.T, er.Slot, er.In
			ba.startItem(r, m)
		})
	case GenAdj:
		g.ForAdj(r.ID(), v, func(u distgraph.Vertex) {
			m := base
			m.U = u
			ba.startItem(r, m)
		})
	case GenPropSet:
		vs := ba.binds[a.Gen.Set].vs
		for _, u := range vs.Members(r.ID(), v) {
			m := base
			m.U = u
			ba.startItem(r, m)
		}
	}
}

func (ba *BoundAction) startItem(r *am.Rank, m patMsg) {
	ba.Stats.Items.Add(1)
	ba.execSteps(r, &m, &ba.ca.entry)
	ba.advance(r, &m, 0, 0)
}

// resume continues execution at an incoming hop message. The sender already
// evaluated the condition's early-exit preTest, so it is skipped here.
func (ba *BoundAction) resume(r *am.Rank, m *patMsg) {
	ba.advanceFrom(r, m, int(m.Cond), int(m.Hop), true)
}

// locVertex resolves a normalized locality to a concrete vertex in the
// context of m. Returns NilVertex for NIL pointer chains.
func (ba *BoundAction) locVertex(m *patMsg, l Loc) distgraph.Vertex {
	switch l.Kind {
	case LocV:
		return m.V
	case LocU:
		return m.U
	case LocTrg:
		return m.ET
	case LocSrc:
		return m.ES
	case LocAccess:
		return wordVertex(m.Vals[l.A.slot])
	case LocE:
		// The generated edge's locality is its generation vertex
		// (Def. 1); reached for raw (unnormalized) edge-property
		// targets, e.g. when firing dependencies.
		return m.edgeRef().GenVertex()
	}
	panic("pattern: unresolvable locality " + l.String())
}

// advance drives the (cond, hop) cursor, executing hops inline while their
// locality vertex is owned by this rank and sending one message when it is
// not. Hop indices >= len(hops) address tail modification groups.
func (ba *BoundAction) advance(r *am.Rank, m *patMsg, ci, hi int) {
	ba.advanceFrom(r, m, ci, hi, false)
}

func (ba *BoundAction) advanceFrom(r *am.Rank, m *patMsg, ci, hi int, fromWire bool) {
	for ci >= 0 {
		first := fromWire
		fromWire = false
		cp := &ba.ca.conds[ci]
		nHops := len(cp.hops)
		// Early exit: the pre-decidable conjuncts are evaluated before
		// the eval-hop message is sent (skipped when this position
		// arrived over the wire — the sender already checked).
		if !first && hi == nHops-1 && cp.preTest != nil {
			if ba.eval(r, m, cp.preTest) == 0 {
				ba.Stats.TestsFalse.Add(1)
				ci, hi = ba.ca.nextOnFalse[ci], 0
				continue
			}
		}
		var at Loc
		isTail := hi >= nHops
		if isTail {
			ti := hi - nHops
			if ti >= len(cp.tailGroups) {
				// Condition complete (true path): next if-group.
				ci, hi = ba.ca.nextOnTrue[ci], 0
				continue
			}
			at = cp.tailGroups[ti].at
		} else {
			at = cp.hops[hi].at
		}
		dest := ba.locVertex(m, at)
		if dest == distgraph.NilVertex || int(dest) >= ba.eng.g.NumVertices() {
			// A NIL pointer (or an out-of-range word used as a
			// vertex) in the locality chain: the condition cannot
			// be evaluated; treat it as false.
			ba.Stats.TestsFalse.Add(1)
			ci, hi = ba.ca.nextOnFalse[ci], 0
			continue
		}
		if ba.eng.g.Owner(dest) != r.ID() {
			m.Dest, m.Cond, m.Hop = dest, int16(ci), int16(hi)
			ba.eng.msg.Send(r, *m)
			return
		}
		if isTail {
			ba.execTail(r, m, cp, hi-nHops, dest)
			hi++
			continue
		}
		if hi == nHops-1 {
			// Eval hop.
			if ba.execEval(r, m, cp, dest) {
				hi = nHops // proceed to tail modification groups
			} else {
				ci, hi = ba.ca.nextOnFalse[ci], 0
			}
			continue
		}
		ba.execSteps(r, m, &cp.hops[hi])
		hi++
	}
}

// execSteps performs a gather hop: loads then folds.
func (ba *BoundAction) execSteps(r *am.Rank, m *patMsg, h *hop) {
	for _, acc := range h.loads {
		m.Vals[acc.slot] = ba.readAccess(r, m, acc)
	}
	for _, f := range h.folds {
		m.Vals[f.slot] = ba.eval(r, m, f.expr)
	}
}

// readAccess loads one property value; the access's locality vertex must be
// owned by this rank.
func (ba *BoundAction) readAccess(r *am.Rank, m *patMsg, acc *Access) Word {
	bd := ba.binds[acc.Prop]
	switch acc.Prop.Kind {
	case EdgeWordProp:
		return bd.ew.Get(r.ID(), m.edgeRef())
	case VertexWordProp:
		idx := ba.locVertex(m, acc.At)
		return bd.vw.Get(r.ID(), idx)
	}
	panic("pattern: unreadable property " + acc.Prop.Name)
}

// eval evaluates an expression against the gathered payload.
func (ba *BoundAction) eval(r *am.Rank, m *patMsg, e Expr) Word {
	switch x := e.(type) {
	case Const:
		return x.X
	case VertexVal:
		return vertexWord(ba.locVertex(m, x.L))
	case AccessExpr:
		return m.Vals[x.A.slot]
	case tempRef:
		return m.Vals[x.slot]
	case NotExpr:
		if ba.eval(r, m, x.X) != 0 {
			return 0
		}
		return 1
	case Bin:
		l := ba.eval(r, m, x.L)
		rr := ba.eval(r, m, x.R)
		switch x.Op {
		case OpAdd:
			return l + rr
		case OpSub:
			return l - rr
		case OpMul:
			return l * rr
		case OpDiv:
			if rr == 0 {
				return 0
			}
			return l / rr
		case OpMod:
			if rr == 0 {
				return 0
			}
			return l % rr
		case OpMin:
			if l < rr {
				return l
			}
			return rr
		case OpMax:
			if l > rr {
				return l
			}
			return rr
		case OpLt:
			return b2w(l < rr)
		case OpLe:
			return b2w(l <= rr)
		case OpGt:
			return b2w(l > rr)
		case OpGe:
			return b2w(l >= rr)
		case OpEq:
			return b2w(l == rr)
		case OpNe:
			return b2w(l != rr)
		case OpAnd:
			return b2w(l != 0 && rr != 0)
		case OpOr:
			return b2w(l != 0 || rr != 0)
		}
	}
	panic("pattern: unevaluable expression")
}

func b2w(b bool) Word {
	if b {
		return 1
	}
	return 0
}

// execEval runs the eval hop at dest (owned by this rank): deferred loads,
// condition test, and — in merge mode — the first modification group, all
// synchronized per §IV-B.
func (ba *BoundAction) execEval(r *am.Rank, m *patMsg, cp *condPlan, dest distgraph.Vertex) bool {
	h := &cp.hops[len(cp.hops)-1]
	var fired []distgraph.Vertex

	result := false
	switch cp.sync {
	case syncAtomicMin, syncAtomicMax, syncAtomicAdd, syncAtomicInsert:
		mi := cp.mergedMods[0]
		mod := &cp.cond.Mods[mi]
		changed := ba.applyAtomic(r, m, cp, mi, dest)
		ba.recordMod(r, changed)
		if changed && mod.firesDependency {
			fired = append(fired, dest)
		}
		// For the detected relax shape the condition outcome is
		// whether the update improved the value.
		result = changed
		if changed {
			ba.Stats.TestsTrue.Add(1)
		} else {
			ba.Stats.TestsFalse.Add(1)
		}
	case syncLock:
		ba.eng.lm.With(r.ID(), dest, func() {
			for _, acc := range h.loads {
				m.Vals[acc.slot] = ba.readAccess(r, m, acc)
			}
			for _, f := range h.folds {
				m.Vals[f.slot] = ba.eval(r, m, f.expr)
			}
			result = cp.test == nil || ba.eval(r, m, cp.test) != 0
			if result {
				ba.Stats.TestsTrue.Add(1)
				for _, mi := range cp.mergedMods {
					changed := ba.applyMod(r, m, cp, mi)
					ba.recordMod(r, changed)
					if changed && cp.cond.Mods[mi].firesDependency {
						fired = append(fired, ba.locVertex(m, cp.cond.Mods[mi].Target.At))
					}
				}
			} else {
				ba.Stats.TestsFalse.Add(1)
			}
		})
	}
	for _, v := range fired {
		ba.fireWork(r, v)
	}
	return result
}

// execTail applies one tail modification group at dest (owned by this rank).
func (ba *BoundAction) execTail(r *am.Rank, m *patMsg, cp *condPlan, ti int, dest distgraph.Vertex) {
	grp := cp.tailGroups[ti]
	var fired []distgraph.Vertex
	ba.eng.lm.With(r.ID(), dest, func() {
		for _, mi := range grp.mods {
			changed := ba.applyMod(r, m, cp, mi)
			ba.recordMod(r, changed)
			if changed && cp.cond.Mods[mi].firesDependency {
				fired = append(fired, ba.locVertex(m, cp.cond.Mods[mi].Target.At))
			}
		}
	})
	for _, v := range fired {
		ba.fireWork(r, v)
	}
}

// applyAtomic performs the single-value atomic path (§IV-B).
func (ba *BoundAction) applyAtomic(r *am.Rank, m *patMsg, cp *condPlan, mi int, dest distgraph.Vertex) bool {
	mod := &cp.cond.Mods[mi]
	bd := ba.binds[mod.Target.Prop]
	switch cp.sync {
	case syncAtomicInsert:
		return bd.vs.Insert(r.ID(), dest, wordVertex(ba.eval(r, m, cp.modRhs[mi])))
	case syncAtomicMin:
		return bd.vw.Min(r.ID(), dest, ba.eval(r, m, cp.modRhs[mi]))
	case syncAtomicMax:
		return bd.vw.Max(r.ID(), dest, ba.eval(r, m, cp.modRhs[mi]))
	case syncAtomicAdd:
		delta := ba.eval(r, m, cp.modRhs[mi])
		bd.vw.Add(r.ID(), dest, delta)
		return delta != 0
	}
	panic("pattern: applyAtomic on lock-classified condition")
}

// applyMod applies one modification (caller holds the target's lock) and
// reports whether the stored value changed.
func (ba *BoundAction) applyMod(r *am.Rank, m *patMsg, cp *condPlan, mi int) bool {
	mod := &cp.cond.Mods[mi]
	bd := ba.binds[mod.Target.Prop]
	switch mod.Target.Prop.Kind {
	case VertexSetProp:
		tv := ba.locVertex(m, mod.Target.At)
		u := wordVertex(ba.eval(r, m, cp.modRhs[mi]))
		if bd.vs.Locks() == ba.eng.lm {
			// The caller (execEval/execTail) already holds tv's
			// lock from the engine's lock map; re-locking the same
			// non-reentrant lock would self-deadlock.
			return bd.vs.InsertLocked(r.ID(), tv, u)
		}
		return bd.vs.Insert(r.ID(), tv, u)
	case EdgeWordProp:
		rhs := ba.eval(r, m, cp.modRhs[mi])
		old := bd.ew.Get(r.ID(), m.edgeRef())
		nv := modValue(mod.Op, old, rhs)
		if nv == old {
			return false
		}
		bd.ew.Set(r.ID(), m.edgeRef(), nv)
		return true
	case VertexWordProp:
		tv := ba.locVertex(m, mod.Target.At)
		rhs := ba.eval(r, m, cp.modRhs[mi])
		old := bd.vw.Get(r.ID(), tv)
		nv := modValue(mod.Op, old, rhs)
		if nv == old {
			return false
		}
		bd.vw.Set(r.ID(), tv, nv)
		return true
	}
	panic("pattern: unapplicable modification")
}

func modValue(op ModOp, old, rhs Word) Word {
	switch op {
	case OpAssign:
		return rhs
	case OpAssignMin:
		if rhs < old {
			return rhs
		}
		return old
	case OpAssignMax:
		if rhs > old {
			return rhs
		}
		return old
	case OpAssignAdd:
		return old + rhs
	}
	panic("pattern: bad mod op")
}

func (ba *BoundAction) recordMod(r *am.Rank, changed bool) {
	if changed {
		ba.Stats.ModsChanged.Add(1)
		ba.modified[r.ID()].Store(true)
	} else {
		ba.Stats.ModsUnchanged.Add(1)
	}
}

func (ba *BoundAction) fireWork(r *am.Rank, v distgraph.Vertex) {
	ba.Stats.WorkItems.Add(1)
	if ba.work != nil {
		ba.work(r, v)
	}
}
