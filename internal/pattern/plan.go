package pattern

import (
	"fmt"
	"strings"
)

// PlanOptions toggles the paper's §IV optimizations individually so the
// experiment suite can measure each one.
type PlanOptions struct {
	// Merge places the gather hop at the first modification's locality
	// last and merges condition evaluation with the modification there
	// (§IV-A). Disabling it reproduces the separate gather/evaluate/modify
	// message scheme (more messages, and no read-modify-write consistency
	// for the modified value).
	Merge bool
	// Fold precomputes subexpressions whose inputs are available before
	// the final hop and carries them as single payload words (Fig. 6's
	// dist[v]+weight[e]).
	Fold bool
	// NaiveDFS gathers values in depth-first tree order with explicit
	// backtracking hops instead of jumping directly between siblings
	// (the unoptimized traversal of Fig. 5).
	NaiveDFS bool
	// EarlyExit splits off the conjuncts of a condition's test whose
	// values are available before the final hop and evaluates them
	// early: when they fail, the evaluate message is never sent. This
	// generalizes §IV-A's "if the previous condition is false, the next
	// condition is evaluated right away if all the necessary values are
	// available" to intra-condition filters (e.g. Δ-stepping's light/heavy
	// edge split, which guards relaxation with a weight test local to v).
	EarlyExit bool
}

// DefaultPlanOptions returns the paper's configuration: merged evaluation,
// folding, direct sibling jumps, early exit.
func DefaultPlanOptions() PlanOptions { return PlanOptions{Merge: true, Fold: true, EarlyExit: true} }

// normalizeLoc maps a locality designator to the vertex it denotes, folding
// entry-local designators onto LocV (src(e)=v for out-edges, trg(e)=v for
// in-edges, and the generated edge itself lives at the generation vertex).
func normalizeLoc(l Loc, gen Generator) Loc {
	switch l.Kind {
	case LocE:
		return Loc{Kind: LocV}
	case LocSrc:
		if gen.Kind == GenOutEdges {
			return Loc{Kind: LocV}
		}
	case LocTrg:
		if gen.Kind == GenInEdges {
			return Loc{Kind: LocV}
		}
	}
	return l
}

// locKey builds a structural identity for a normalized locality.
func locKey(l Loc) string {
	if l.Kind == LocAccess {
		return "@" + accessKey(l.A)
	}
	return l.String()
}

func accessKey(a *Access) string {
	return a.Prop.Name + "[" + locKey(Loc{Kind: a.At.Kind, A: a.At.A}) + keySuffix(a.At) + "]"
}

// keySuffix distinguishes raw designators that normalize identically only in
// context; accesses are keyed pre-normalization so dist[src(e)] and dist[v]
// stay distinct accesses even when co-located.
func keySuffix(l Loc) string {
	switch l.Kind {
	case LocSrc:
		return "#src"
	case LocTrg:
		return "#trg"
	case LocE:
		return "#e"
	}
	return ""
}

// hop is one step of a condition's message plan: the locality to execute at,
// the accesses to load there, and the temporaries computable afterwards.
type hop struct {
	at    Loc // normalized
	loads []*Access
	folds []foldStep
}

type foldStep struct {
	expr Expr
	slot int
}

// atomicKind classifies how a merged condition synchronizes (§IV-B).
type atomicKind int

const (
	syncLock atomicKind = iota
	syncAtomicMin
	syncAtomicMax
	syncAtomicAdd
	syncAtomicInsert
)

func (k atomicKind) String() string {
	return [...]string{"lock", "atomic-min", "atomic-max", "atomic-add", "atomic-insert"}[k]
}

type modGroup struct {
	at   Loc
	mods []int // indices into cond.Mods
}

// condPlan is the compiled message plan of one condition.
type condPlan struct {
	cond *Cond
	// test and modRhs are the (possibly fold-rewritten) expressions.
	test   Expr
	modRhs []Expr
	// preTest holds the early-exit conjuncts (nil when disabled or when
	// no conjunct is decidable before the eval hop). It is evaluated
	// before the eval-hop message is sent; false short-circuits the
	// condition.
	preTest Expr

	hops       []hop // first hop may be at LocV (returning to v); last hop = eval site
	mergedMods []int // mod indices applied at the eval hop (Merge mode)
	tailGroups []modGroup

	sync         atomicKind
	payloadWords int // live slots carried into the eval hop (E10 metric)
}

// messages returns the per-generated-item message count of this condition's
// plan when every hop crosses vertices: gather+eval hops plus tail
// modification messages.
func (cp *condPlan) messages() int { return len(cp.hops) + len(cp.tailGroups) }

// compiledAction is an action plus its compiled plans.
type compiledAction struct {
	action   *Action
	id       int
	accesses []*Access // canonical, slot = index
	nSlots   int
	entry    hop // entry-local loads + folds (at LocV, executed at owner(v))
	conds    []condPlan
	// nextOnTrue/nextOnFalse give the next condition index (or -1) for the
	// if/elif/else chaining.
	nextOnTrue  []int
	nextOnFalse []int
}

// compiler holds per-pattern compile state.
type compiler struct {
	opts PlanOptions
	// canonical access registry.
	canon map[string]*Access
	order []*Access
	// foldCache unifies structurally identical folded subexpressions of
	// the condition being planned so the test and the rhs share one
	// temporary (required for the atomic relax-shape detection).
	foldCache map[string]tempRef
}

// compileAction analyzes and plans one action.
func compileAction(a *Action, id int, opts PlanOptions) (*compiledAction, error) {
	if len(a.Conds) == 0 {
		return nil, fmt.Errorf("pattern %s: action %s has no conditions", a.pat.Name, a.Name)
	}
	if a.Conds[0].Elif {
		return nil, fmt.Errorf("pattern %s: action %s starts with an else-if", a.pat.Name, a.Name)
	}
	c := &compiler{opts: opts, canon: map[string]*Access{}}
	ca := &compiledAction{action: a, id: id}

	// Canonicalize all expressions and mods.
	for ci := range a.Conds {
		cond := &a.Conds[ci]
		if len(cond.Mods) == 0 {
			return nil, fmt.Errorf("action %s condition %d guards no modifications", a.Name, ci)
		}
		if cond.Test != nil {
			cond.Test = c.canonExpr(cond.Test)
		}
		for mi := range cond.Mods {
			m := &cond.Mods[mi]
			m.Target = c.canonAccess(m.Target)
			m.Rhs = c.canonExpr(m.Rhs)
			if err := validateMod(a, m); err != nil {
				return nil, err
			}
		}
	}
	ca.accesses = c.order
	ca.nSlots = len(c.order)

	// Validate accesses against the generator and kinds.
	for _, acc := range ca.accesses {
		if err := validateAccess(a, acc); err != nil {
			return nil, err
		}
	}

	// §IV-C dependency detection: a modification fires the work hook when
	// its property is read anywhere in the action.
	readProps := map[*Prop]bool{}
	for ci := range a.Conds {
		cond := &a.Conds[ci]
		if cond.Test != nil {
			walkAccesses(cond.Test, func(x *Access) { readProps[x.Prop] = true })
		}
		for mi := range cond.Mods {
			walkAccesses(cond.Mods[mi].Rhs, func(x *Access) { readProps[x.Prop] = true })
			// Read-modify-write ops read the target too.
			if op := cond.Mods[mi].Op; op == OpAssignMin || op == OpAssignMax || op == OpAssignAdd {
				readProps[cond.Mods[mi].Target.Prop] = true
			}
			// The target's index being a gathered value is a read of
			// that property as well (already covered via canon
			// accesses when it appears in expressions; cover the
			// index chain explicitly).
			for l := cond.Mods[mi].Target.At; l.Kind == LocAccess; l = l.A.At {
				readProps[l.A.Prop] = true
			}
		}
	}
	for ci := range a.Conds {
		for mi := range a.Conds[ci].Mods {
			m := &a.Conds[ci].Mods[mi]
			m.firesDependency = readProps[m.Target.Prop]
		}
	}

	// Entry hop: all entry-local accesses used anywhere in the action.
	loaded := map[*Access]bool{}
	for _, acc := range ca.accesses {
		if normalizeLoc(acc.At, a.Gen).Kind == LocV {
			ca.entry.loads = append(ca.entry.loads, acc)
			loaded[acc] = true
		}
	}
	ca.entry.at = Loc{Kind: LocV}

	// Plan every condition in order, carrying the loaded set forward
	// (gather elision across conditions, §IV-A). written tracks payload
	// slots populated before each condition's eval hop for the E10
	// payload metric.
	written := map[int]bool{}
	for _, acc := range ca.entry.loads {
		written[acc.slot] = true
	}
	ca.conds = make([]condPlan, len(a.Conds))
	for ci := range a.Conds {
		cp, err := c.planCond(a, &a.Conds[ci], loaded, ca, written)
		if err != nil {
			return nil, err
		}
		ca.conds[ci] = cp
		for _, h := range cp.hops {
			for _, acc := range h.loads {
				written[acc.slot] = true
			}
			for _, f := range h.folds {
				written[f.slot] = true
			}
		}
		for _, f := range ca.entry.folds {
			written[f.slot] = true
		}
	}
	if ca.nSlots > MaxSlots {
		return nil, fmt.Errorf("action %s needs %d payload slots (max %d)", a.Name, ca.nSlots, MaxSlots)
	}

	// Chain resolution for if/elif/else.
	ca.nextOnTrue = make([]int, len(a.Conds))
	ca.nextOnFalse = make([]int, len(a.Conds))
	for ci := range a.Conds {
		ca.nextOnTrue[ci] = -1
		for j := ci + 1; j < len(a.Conds); j++ {
			if !a.Conds[j].Elif {
				ca.nextOnTrue[ci] = j
				break
			}
		}
		if ci+1 < len(a.Conds) {
			ca.nextOnFalse[ci] = ci + 1
		} else {
			ca.nextOnFalse[ci] = -1
		}
	}
	return ca, nil
}

func validateAccess(a *Action, acc *Access) error {
	l := acc.At
	switch l.Kind {
	case LocU:
		if a.Gen.Kind != GenAdj && a.Gen.Kind != GenPropSet {
			return fmt.Errorf("action %s: access %s uses the generated vertex but the generator is %v", a.Name, acc, a.Gen.Kind)
		}
	case LocTrg, LocSrc, LocE:
		if a.Gen.Kind != GenOutEdges && a.Gen.Kind != GenInEdges {
			return fmt.Errorf("action %s: access %s uses the generated edge but the generator is %v", a.Name, acc, a.Gen.Kind)
		}
	case LocAccess:
		if l.A.Prop.Kind == VertexSetProp {
			return fmt.Errorf("action %s: access %s indexes with a set-valued property", a.Name, acc)
		}
	}
	return nil
}

func validateMod(a *Action, m *Mod) error {
	switch m.Op {
	case OpInsert:
		if m.Target.Prop.Kind != VertexSetProp {
			return fmt.Errorf("action %s: insert into non-set property %s", a.Name, m.Target.Prop.Name)
		}
		switch m.Rhs.(type) {
		case VertexVal, AccessExpr:
		default:
			return fmt.Errorf("action %s: insert argument must be a vertex (generator value or property access)", a.Name)
		}
	default:
		if m.Target.Prop.Kind == VertexSetProp {
			return fmt.Errorf("action %s: word assignment to set property %s", a.Name, m.Target.Prop.Name)
		}
	}
	if m.Target.Prop.Kind == EdgeWordProp && a.Gen.Kind == GenInEdges {
		// In-edge slots are read-only mirrors of the canonical
		// out-edge copies (bidirectional storage, §III-A).
		return fmt.Errorf("action %s: edge property %s cannot be modified through in-edges (mirrors are read-only)",
			a.Name, m.Target.Prop.Name)
	}
	return nil
}

// canonAccess unifies structurally equal accesses and assigns slots.
func (c *compiler) canonAccess(a *Access) *Access {
	// Canonicalize the index chain first.
	if a.At.Kind == LocAccess {
		a.At.A = c.canonAccess(a.At.A)
	}
	k := accessKey(a)
	if got, ok := c.canon[k]; ok {
		return got
	}
	a.slot = len(c.order)
	c.canon[k] = a
	c.order = append(c.order, a)
	return a
}

func (c *compiler) canonExpr(e Expr) Expr {
	switch x := e.(type) {
	case AccessExpr:
		if x.A.Prop.Kind == VertexSetProp {
			panic("pattern: set-valued property " + x.A.Prop.Name + " read as a word")
		}
		return AccessExpr{A: c.canonAccess(x.A)}
	case Bin:
		l, r := c.canonExpr(x.L), c.canonExpr(x.R)
		if lc, ok := l.(Const); ok {
			if rc, ok := r.(Const); ok {
				// Constant folding: evaluate at compile time so
				// constant subexpressions neither occupy payload
				// slots nor cost per-item evaluation.
				return Const{X: evalConstBin(x.Op, lc.X, rc.X)}
			}
		}
		return Bin{Op: x.Op, L: l, R: r}
	case NotExpr:
		in := c.canonExpr(x.X)
		if ic, ok := in.(Const); ok {
			if ic.X != 0 {
				return Const{X: 0}
			}
			return Const{X: 1}
		}
		return NotExpr{X: in}
	default:
		return e
	}
}

// evalConstBin mirrors the engine's operator semantics for compile-time
// folding.
func evalConstBin(op BinOp, l, r Word) Word {
	b := func(v bool) Word {
		if v {
			return 1
		}
		return 0
	}
	switch op {
	case OpAdd:
		return l + r
	case OpSub:
		return l - r
	case OpMul:
		return l * r
	case OpDiv:
		if r == 0 {
			return 0
		}
		return l / r
	case OpMod:
		if r == 0 {
			return 0
		}
		return l % r
	case OpMin:
		if l < r {
			return l
		}
		return r
	case OpMax:
		if l > r {
			return l
		}
		return r
	case OpLt:
		return b(l < r)
	case OpLe:
		return b(l <= r)
	case OpGt:
		return b(l > r)
	case OpGe:
		return b(l >= r)
	case OpEq:
		return b(l == r)
	case OpNe:
		return b(l != r)
	case OpAnd:
		return b(l != 0 && r != 0)
	case OpOr:
		return b(l != 0 || r != 0)
	}
	panic("pattern: unknown operator in constant folding")
}

func walkAccesses(e Expr, fn func(*Access)) {
	switch x := e.(type) {
	case AccessExpr:
		fn(x.A)
		for l := x.A.At; l.Kind == LocAccess; l = l.A.At {
			fn(l.A)
		}
	case Bin:
		walkAccesses(x.L, fn)
		walkAccesses(x.R, fn)
	case NotExpr:
		walkAccesses(x.X, fn)
	case tempRef:
		walkAccesses(x.orig, fn)
	}
}

// planCond builds the message plan for one condition given the set of
// accesses already gathered and the payload slots already written.
func (c *compiler) planCond(a *Action, cond *Cond, loaded map[*Access]bool, ca *compiledAction, written map[int]bool) (condPlan, error) {
	c.foldCache = map[string]tempRef{}
	cp := condPlan{cond: cond, test: cond.Test}
	cp.modRhs = make([]Expr, len(cond.Mods))
	for i := range cond.Mods {
		cp.modRhs[i] = cond.Mods[i].Rhs
	}

	// Required accesses: reads of the test, reads of every rhs, and the
	// index chains of every modification target. The targets' own values
	// are read only by read-modify-write ops, at the modification site.
	need := map[*Access]bool{}
	addNeed := func(e Expr) {
		walkAccesses(e, func(x *Access) {
			if x.Prop.Kind != VertexSetProp {
				need[x] = true
			}
		})
	}
	if cond.Test != nil {
		addNeed(cond.Test)
	}
	for i := range cond.Mods {
		addNeed(cond.Mods[i].Rhs)
		for l := cond.Mods[i].Target.At; l.Kind == LocAccess; l = l.A.At {
			need[l.A] = true
			// And transitively what that index needs.
			addNeed(AccessExpr{A: l.A})
		}
	}

	// Group mods by consecutive normalized target locality (no reordering,
	// §IV-A).
	var groups []modGroup
	for i := range cond.Mods {
		tl := normalizeLoc(cond.Mods[i].Target.At, a.Gen)
		if len(groups) > 0 && locKey(groups[len(groups)-1].at) == locKey(tl) {
			groups[len(groups)-1].mods = append(groups[len(groups)-1].mods, i)
		} else {
			groups = append(groups, modGroup{at: tl, mods: []int{i}})
		}
	}
	finalLoc := groups[0].at

	// Pending remote accesses, grouped by normalized locality.
	var pend []*locGroup
	byKey := map[string]*locGroup{}
	for _, acc := range ca.accesses {
		if !need[acc] || loaded[acc] {
			continue
		}
		nl := normalizeLoc(acc.At, a.Gen)
		if nl.Kind == LocV {
			// Entry-local and not loaded can only happen for
			// accesses discovered after entry planning; entry loads
			// the union up front, so this indicates a bug.
			return cp, fmt.Errorf("internal: entry-local access %s not preloaded", acc)
		}
		k := locKey(nl)
		g, ok := byKey[k]
		if !ok {
			g = &locGroup{key: k, at: nl}
			byKey[k] = g
			pend = append(pend, g)
		}
		g.accs = append(g.accs, acc)
	}

	// The eval hop executes at finalLoc. Loads at finalLoc are deferred to
	// the eval hop unless another pending access depends on them. This
	// deferral (and the target-last hop ordering below) is the §IV-A
	// merge optimization; the unmerged baseline gathers every read in
	// plain dependency order and ships modifications separately.
	finalKey := locKey(finalLoc)
	if !c.opts.Merge {
		finalKey = ""
	}
	var deferred []*Access
	if g, ok := byKey[finalKey]; c.opts.Merge && ok {
		dependedOn := func(acc *Access) bool {
			for _, other := range ca.accesses {
				if need[other] && other.At.Kind == LocAccess && other.At.A == acc {
					return true
				}
			}
			return false
		}
		var keep []*Access
		for _, acc := range g.accs {
			if dependedOn(acc) {
				keep = append(keep, acc)
			} else {
				deferred = append(deferred, acc)
			}
		}
		if len(keep) == 0 {
			// Remove the group entirely; eval hop covers it.
			var np []*locGroup
			for _, g2 := range pend {
				if g2.key != finalKey {
					np = append(np, g2)
				}
			}
			pend = np
			delete(byKey, finalKey)
		} else {
			g.accs = keep
		}
	}

	// Topologically order the gather hops: a hop depends on the hop (or
	// entry/previous conds) that loads its locality's defining access.
	hops, err := orderHops(pend, loaded, a, c.opts, finalKey)
	if err != nil {
		return cp, fmt.Errorf("action %s: %v", a.Name, err)
	}

	if c.opts.Merge {
		// Eval hop at the first modification group's locality. Reads
		// of the modified properties at that vertex are (re)loaded
		// there, under synchronization — the paper's same-vertex
		// consistency guarantee (§III-C, §IV-A).
		evalHop := hop{at: finalLoc, loads: deferred}
		tprops := map[*Prop]bool{}
		for _, mi := range groups[0].mods {
			tprops[cond.Mods[mi].Target.Prop] = true
		}
		inEval := map[*Access]bool{}
		for _, acc := range deferred {
			inEval[acc] = true
		}
		for _, acc := range ca.accesses {
			if need[acc] && !inEval[acc] && tprops[acc.Prop] &&
				locKey(normalizeLoc(acc.At, a.Gen)) == locKey(finalLoc) {
				evalHop.loads = append(evalHop.loads, acc)
			}
		}
		hops = append(hops, evalHop)
		cp.mergedMods = groups[0].mods
		cp.tailGroups = append(cp.tailGroups, groups[1:]...)
	} else {
		// Unmerged: evaluate at the last gather hop and ship every
		// modification group as a separate message (§IV-A's
		// non-merged scheme).
		if len(hops) == 0 {
			// Everything entry-local: evaluate at v.
			hops = append(hops, hop{at: Loc{Kind: LocV}})
		}
		cp.tailGroups = groups
	}
	cp.hops = hops

	// Mark the gathered accesses as loaded for later conditions.
	for _, h := range hops {
		for _, acc := range h.loads {
			loaded[acc] = true
		}
	}

	// Availability before the eval hop (drives folding and early exit).
	availBefore := map[*Access]bool{}
	for acc := range loaded {
		availBefore[acc] = true
	}
	// Accesses loaded at the eval hop itself are not available early.
	for _, acc := range hops[len(hops)-1].loads {
		delete(availBefore, acc)
	}

	// Folding (Fig. 6): rewrite test/rhs subexpressions whose inputs are
	// all available before the eval hop.
	if c.opts.Fold {
		foldAt := len(hops) - 2 // -1 means entry hop
		if cp.test != nil {
			cp.test = c.foldExpr(cp.test, availBefore, ca, &hops, foldAt, &cp)
		}
		for i := range cp.modRhs {
			if cond.Mods[i].Op != OpInsert {
				cp.modRhs[i] = c.foldExpr(cp.modRhs[i], availBefore, ca, &hops, foldAt, &cp)
			}
		}
		cp.hops = hops
	}

	// Early exit: hoist the test conjuncts decidable before the eval hop
	// into preTest, evaluated before the eval message is sent.
	if c.opts.EarlyExit && cp.test != nil {
		var pre, rest []Expr
		for _, conj := range flattenAnd(cp.test) {
			if foldable(conj, availBefore) {
				pre = append(pre, conj)
			} else {
				rest = append(rest, conj)
			}
		}
		if len(pre) > 0 {
			cp.preTest = joinAnd(pre)
			cp.test = joinAnd(rest) // nil when everything is decidable early
		}
	}

	// Synchronization classification (§IV-B).
	cp.sync = classifySync(&cp, cond)

	// Payload metric: slots written before the eval hop (anywhere in the
	// action so far) and read at or after it — Fig. 6's per-message
	// payload.
	cp.payloadWords = countLivePayload(&cp, ca, written)
	return cp, nil
}

// locGroup is a set of pending accesses sharing one normalized locality.
type locGroup struct {
	key  string
	at   Loc
	accs []*Access
}

// orderHops sequences gather hops. Direct mode: topological order with the
// final locality's ancestors visited last and siblings visited back-to-back
// (direct jumps). NaiveDFS mode: depth-first traversal of the dependency
// tree with explicit backtracking hops (Fig. 5's unoptimized traversal).
func orderHops(pend []*locGroup, loaded map[*Access]bool, a *Action, opts PlanOptions, finalKey string) ([]hop, error) {
	// depOf returns the key of the group that loads g's defining access
	// ("" when g's address is known from entry context or earlier conds).
	depOf := func(g *locGroup) string {
		if g.at.Kind != LocAccess {
			return ""
		}
		if loaded[g.at.A] {
			return ""
		}
		return locKey(normalizeLoc(g.at.A.At, a.Gen))
	}
	byKey := map[string]*locGroup{}
	for _, g := range pend {
		byKey[g.key] = g
	}

	// Ancestors of the final locality: the chain of groups that load the
	// addresses leading to the eval site. They are visited last so the
	// route ends next to the eval hop.
	isFinalAncestor := map[string]bool{}
	if fg, ok := byKey[finalKey]; ok {
		for cur := fg; ; {
			isFinalAncestor[cur.key] = true
			dk := depOf(cur)
			if dk == "" {
				break
			}
			next, ok := byKey[dk]
			if !ok {
				break
			}
			cur = next
		}
	}

	if !opts.NaiveDFS {
		var out []hop
		done := map[string]bool{}
		visiting := map[string]bool{}
		var visit func(g *locGroup) error
		visit = func(g *locGroup) error {
			if done[g.key] {
				return nil
			}
			if visiting[g.key] {
				return fmt.Errorf("cyclic locality dependency at %s", g.key)
			}
			visiting[g.key] = true
			if dk := depOf(g); dk != "" {
				if dep, ok := byKey[dk]; ok {
					if err := visit(dep); err != nil {
						return err
					}
				}
			}
			visiting[g.key] = false
			done[g.key] = true
			out = append(out, hop{at: g.at, loads: g.accs})
			return nil
		}
		for _, g := range pend {
			if !isFinalAncestor[g.key] {
				if err := visit(g); err != nil {
					return nil, err
				}
			}
		}
		for _, g := range pend {
			if isFinalAncestor[g.key] {
				if err := visit(g); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}

	// Naive DFS: walk the dependency tree rooted at the entry vertex,
	// inserting a backtracking hop on every return to a parent before the
	// next sibling subtree.
	children := map[string][]*locGroup{}
	var roots []*locGroup
	for _, g := range pend {
		dk := depOf(g)
		if dk == "" || byKey[dk] == nil {
			roots = append(roots, g)
		} else {
			children[dk] = append(children[dk], g)
		}
	}
	orderKids := func(ks []*locGroup) []*locGroup {
		var head, tail []*locGroup
		for _, k := range ks {
			if isFinalAncestor[k.key] {
				tail = append(tail, k)
			} else {
				head = append(head, k)
			}
		}
		return append(head, tail...)
	}
	var naive []hop
	var dfs func(g *locGroup)
	dfs = func(g *locGroup) {
		naive = append(naive, hop{at: g.at, loads: g.accs})
		kids := orderKids(children[g.key])
		for i, k := range kids {
			dfs(k)
			if i < len(kids)-1 {
				naive = append(naive, hop{at: g.at}) // backtrack
			}
		}
	}
	roots = orderKids(roots)
	for i, g := range roots {
		if i > 0 {
			naive = append(naive, hop{at: Loc{Kind: LocV}}) // backtrack to v
		}
		dfs(g)
	}
	return naive, nil
}

// foldExpr rewrites e, replacing maximal subexpressions whose accesses are
// all available before the eval hop with temporaries computed at foldAt
// (hop index; -1 = entry hop).
func (c *compiler) foldExpr(e Expr, avail map[*Access]bool, ca *compiledAction, hops *[]hop, foldAt int, cp *condPlan) Expr {
	if foldable(e, avail) {
		switch e.(type) {
		case Const, AccessExpr, VertexVal, tempRef:
			return e // nothing saved by folding a leaf
		}
		if t, ok := c.foldCache[e.String()]; ok {
			return t
		}
		slot := ca.nSlots
		ca.nSlots++
		t := tempRef{slot: slot, orig: e}
		c.foldCache[e.String()] = t
		step := foldStep{expr: e, slot: slot}
		if foldAt < 0 {
			ca.entry.folds = append(ca.entry.folds, step)
		} else {
			(*hops)[foldAt].folds = append((*hops)[foldAt].folds, step)
		}
		return t
	}
	switch x := e.(type) {
	case Bin:
		return Bin{Op: x.Op, L: c.foldExpr(x.L, avail, ca, hops, foldAt, cp), R: c.foldExpr(x.R, avail, ca, hops, foldAt, cp)}
	case NotExpr:
		return NotExpr{X: c.foldExpr(x.X, avail, ca, hops, foldAt, cp)}
	default:
		return e
	}
}

// flattenAnd returns the operand list of a (possibly nested) top-level
// conjunction.
func flattenAnd(e Expr) []Expr {
	if b, ok := e.(Bin); ok && b.Op == OpAnd {
		return append(flattenAnd(b.L), flattenAnd(b.R)...)
	}
	return []Expr{e}
}

// joinAnd rebuilds a conjunction; nil for an empty operand list.
func joinAnd(es []Expr) Expr {
	if len(es) == 0 {
		return nil
	}
	out := es[0]
	for _, e := range es[1:] {
		out = Bin{Op: OpAnd, L: out, R: e}
	}
	return out
}

func foldable(e Expr, avail map[*Access]bool) bool {
	ok := true
	walkAccesses(e, func(a *Access) {
		if !avail[a] {
			ok = false
		}
	})
	return ok
}

// classifySync decides atomic vs lock for the merged evaluation (§IV-B):
// atomic instructions when a single value is read and written (the SSSP
// relax shape), locking otherwise.
func classifySync(cp *condPlan, cond *Cond) atomicKind {
	if len(cp.mergedMods) != 1 {
		return syncLock
	}
	mi := cp.mergedMods[0]
	m := &cond.Mods[mi]
	evalLoads := cp.hops[len(cp.hops)-1].loads
	// All values read at the eval hop must be the target itself.
	for _, acc := range evalLoads {
		if acc != m.Target {
			return syncLock
		}
	}
	switch m.Op {
	case OpAssignMin:
		if cp.test == nil {
			return syncAtomicMin
		}
	case OpAssignMax:
		if cp.test == nil {
			return syncAtomicMax
		}
	case OpAssignAdd:
		if cp.test == nil {
			return syncAtomicAdd
		}
	case OpInsert:
		if cp.test == nil {
			return syncAtomicInsert
		}
	case OpAssign:
		// The canonical relax shape: if (rhs < target) target = rhs
		// (or the mirrored comparison) is an atomic min; the dual is
		// an atomic max.
		if b, ok := cp.test.(Bin); ok {
			tgt := func(e Expr) bool {
				ae, ok := e.(AccessExpr)
				return ok && ae.A == m.Target
			}
			same := func(e Expr) bool { return exprEqual(e, cp.modRhs[mi]) }
			switch {
			case b.Op == OpLt && same(b.L) && tgt(b.R):
				return syncAtomicMin
			case b.Op == OpGt && tgt(b.L) && same(b.R):
				return syncAtomicMin
			case b.Op == OpGt && same(b.L) && tgt(b.R):
				return syncAtomicMax
			case b.Op == OpLt && tgt(b.L) && same(b.R):
				return syncAtomicMax
			}
		}
	}
	return syncLock
}

func exprEqual(a, b Expr) bool { return a.String() == b.String() }

// countLivePayload counts payload slots carried into the eval hop: slots
// written strictly before it (entry hop, earlier conditions, and this
// condition's gather hops) and read at or after it.
func countLivePayload(cp *condPlan, ca *compiledAction, written map[int]bool) int {
	writtenBefore := map[int]bool{}
	for s := range written {
		writtenBefore[s] = true
	}
	for _, f := range ca.entry.folds {
		writtenBefore[f.slot] = true
	}
	collect := func(h hop) {
		for _, acc := range h.loads {
			writtenBefore[acc.slot] = true
		}
		for _, f := range h.folds {
			writtenBefore[f.slot] = true
		}
	}
	for i := 0; i < len(cp.hops)-1; i++ {
		collect(cp.hops[i])
	}
	readAtEval := map[int]bool{}
	mark := func(e Expr) {
		var walk func(Expr)
		walk = func(e Expr) {
			switch x := e.(type) {
			case AccessExpr:
				readAtEval[x.A.slot] = true
			case tempRef:
				readAtEval[x.slot] = true
			case Bin:
				walk(x.L)
				walk(x.R)
			case NotExpr:
				walk(x.X)
			}
		}
		walk(e)
	}
	if cp.test != nil {
		mark(cp.test)
	}
	for _, mi := range cp.mergedMods {
		mark(cp.modRhs[mi])
	}
	for _, g := range cp.tailGroups {
		for _, mi := range g.mods {
			mark(cp.modRhs[mi])
		}
	}
	n := 0
	for slot := range readAtEval {
		if writtenBefore[slot] {
			n++
		}
	}
	return n
}

// PlanInfo describes an action's compiled plan for tests and experiments.
type PlanInfo struct {
	Action string
	Conds  []CondPlanInfo
}

// CondPlanInfo summarizes one condition's plan.
type CondPlanInfo struct {
	// GatherHops is the number of hops before the eval hop.
	GatherHops int
	// Messages is the worst-case per-item message count (hops plus tail
	// modification messages), assuming every hop changes vertex.
	Messages int
	// PayloadWords is the number of live payload words carried into the
	// eval hop.
	PayloadWords int
	// Sync names the synchronization used at the merged eval hop.
	Sync string
	// EarlyExit reports whether part of the test is evaluated before the
	// eval-hop message is sent.
	EarlyExit bool
	// Route lists hop localities in order.
	Route []string
}

func (ca *compiledAction) info() PlanInfo {
	pi := PlanInfo{Action: ca.action.Name}
	for i := range ca.conds {
		cp := &ca.conds[i]
		ci := CondPlanInfo{
			GatherHops:   len(cp.hops) - 1,
			Messages:     cp.messages(),
			PayloadWords: cp.payloadWords,
			Sync:         cp.sync.String(),
			EarlyExit:    cp.preTest != nil,
		}
		for _, h := range cp.hops {
			ci.Route = append(ci.Route, h.at.String())
		}
		for _, g := range cp.tailGroups {
			ci.Route = append(ci.Route, "mod@"+g.at.String())
		}
		pi.Conds = append(pi.Conds, ci)
	}
	return pi
}

// String renders the plan compactly.
func (pi PlanInfo) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "action %s:\n", pi.Action)
	for i, c := range pi.Conds {
		fmt.Fprintf(&b, "  cond %d: msgs=%d payload=%d sync=%s route=%s\n",
			i, c.Messages, c.PayloadWords, c.Sync, strings.Join(c.Route, " -> "))
	}
	return b.String()
}
