// Package pattern implements the paper's primary contribution: declarative
// graph-access patterns that compile into active-message communication.
//
// A Pattern (§III) is a collection of vertex/edge property declarations and
// actions. An action starts at an input vertex v, optionally "fans out" once
// through a generator (out_edges, in_edges, adj, or the vertices stored in a
// set-valued property), and consists of a chain of conditions guarding
// property-map modifications. Expressions are built with the combinators in
// this package; the paper's aliases correspond to ordinary Go variables
// holding subexpressions.
//
// Compile performs the paper's §IV analysis:
//
//   - locality analysis (Def. 1): every value used is located at a vertex —
//     the input vertex, a generated vertex/edge (local to v), or the index
//     of a property access (possibly itself a gathered value, enabling
//     pointer-jumping chains like chg[chg[v]]);
//   - the dependency graph (Def. 2) over accesses, from which per-condition
//     message plans are derived: gather hops that accumulate values in the
//     message payload, and a final evaluate hop;
//   - the merge optimization (§IV-A): the hop at the locality of the first
//     modification is placed last and merged with condition evaluation, so
//     the read-modify-write of the modified value is synchronized at one
//     vertex (atomic instructions for the single-value case, the lock map
//     otherwise, §IV-B) — for the SSSP pattern this yields the single
//     message of Fig. 6;
//   - local-subexpression folding (Fig. 6's precomputed dist[v]+weight[e]):
//     subexpressions whose inputs are available before the final hop are
//     computed early and carried as one payload word;
//   - dependency detection (§IV-C): a modification whose property is also
//     read anywhere in the action fires the action's work hook at the
//     modified vertex when the value actually changes.
//
// Plan options disable each optimization individually (naive DFS gather
// order with backtracking, unmerged evaluation, no folding) so the
// experiment suite can reproduce the message-count comparisons of Figs. 5
// and 6.
//
// The Engine executes compiled patterns over the am substrate: hops become
// active messages addressed by locality vertex (object-based addressing,
// §IV-D), executed inline when the destination vertex is owned by the
// current rank.
package pattern
