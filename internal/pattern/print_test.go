package pattern

import (
	"strings"
	"testing"
)

func TestPatternStringPaperSyntax(t *testing.T) {
	out := buildSSSP().String()
	for _, want := range []string{
		"pattern SSSP {",
		"vertex-property(dist);",
		"edge-property(weight);",
		"relax(vertex v) {",
		"generator: e in out_edges;",
		"if (((dist[v] + weight[e]) < dist[trg(e)]))",
		"dist[trg(e)] = (dist[v] + weight[e]);",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPatternStringChains(t *testing.T) {
	p := New("X")
	x := p.VertexProp("x")
	s := p.VertexSetProp("s")
	a := p.Action("act", Adj())
	a.If(Gt(x.At(V()), C(1))).Set(x.At(V()), C(1))
	a.Elif(Lt(x.At(V()), C(0))).Insert(s.At(U()), Vtx(V()))
	a.Else().AddTo(x.At(V()), C(5))
	a.Do().SetMin(x.At(U()), x.At(V()))
	out := p.String()
	for _, want := range []string{
		"generator: u in adj;",
		"else if ((x[v] < 0))",
		"s[u].insert(v);",
		"else\n",
		"x[v] += 5;",
		"always\n",
		"x[u] = min(x[u], x[v]);",
		"vertex-set-property(s);",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestDivModConstantFolding(t *testing.T) {
	p := New("DM")
	x := p.VertexProp("x")
	a := p.Action("set", None())
	a.Do().Set(x.At(V()), Add(Div(C(17), C(5)), ModE(C(17), C(5))))
	// 17/5 + 17%5 = 3 + 2 = 5, folded at compile time.
	if _, err := compileAction(a, 0, DefaultPlanOptions()); err != nil {
		t.Fatal(err)
	}
	if got := a.Conds[0].Mods[0].Rhs.String(); got != "5" {
		t.Errorf("constant rhs not folded: %s", got)
	}
	// Division and modulo by zero fold to 0 (total semantics).
	b := p.Action("zero", None())
	b.Do().Set(x.At(V()), Add(Div(C(9), C(0)), ModE(C(9), C(0))))
	if _, err := compileAction(b, 0, DefaultPlanOptions()); err != nil {
		t.Fatal(err)
	}
	if got := b.Conds[0].Mods[0].Rhs.String(); got != "0" {
		t.Errorf("div/mod by zero rhs: %s", got)
	}
	// A constant-true guard folds and the condition always fires; a
	// non-constant expression is left intact.
	c := p.Action("guard", None())
	c.If(Gt(C(3), C(1))).Set(x.At(V()), Mul(x.At(V()), C(2)))
	if _, err := compileAction(c, 0, DefaultPlanOptions()); err != nil {
		t.Fatal(err)
	}
	if got := c.Conds[0].Test.String(); got != "1" {
		t.Errorf("constant guard not folded: %s", got)
	}
	if got := c.Conds[0].Mods[0].Rhs.String(); !strings.Contains(got, "*") {
		t.Errorf("non-constant rhs wrongly folded: %s", got)
	}
}
