package harness

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "count", "time")
	tb.Add("alpha", 12, 1500*time.Microsecond)
	tb.Add("beta-longer", 3456, 2*time.Millisecond)
	out := tb.String()
	if !strings.Contains(out, "## Demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title, blank, header, separator, two rows.
	if len(lines) != 5 && len(lines) != 6 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows=%d", tb.Rows())
	}
	// Numeric cells right-align: "12" should be preceded by spaces up to
	// the width of "count".
	if !strings.Contains(out, "   12") {
		t.Errorf("count not right-aligned:\n%s", out)
	}
}

func TestTableArityPanic(t *testing.T) {
	tb := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong arity")
		}
	}()
	tb.Add(1)
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != "2.00x" {
		t.Errorf("got %s", Ratio(6, 3))
	}
	if Ratio(1, 0) != "-" {
		t.Errorf("got %s", Ratio(1, 0))
	}
}

func TestMinMed(t *testing.T) {
	n := 0
	min, med := MinMed(5, func() { n++ })
	if n != 5 {
		t.Fatalf("ran %d times", n)
	}
	if min > med {
		t.Fatalf("min %v > med %v", min, med)
	}
}

func TestServeDebug(t *testing.T) {
	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	Publish("harness_test", func() any { return map[string]int{"x": 1} })
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if string(vars["harness_test"]) != `{"x":1}` {
		t.Fatalf("published var = %s", vars["harness_test"])
	}
	if resp, err = http.Get("http://" + addr + "/debug/pprof/cmdline"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint returned %d", resp.StatusCode)
	}
}
