package harness

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "count", "time")
	tb.Add("alpha", 12, 1500*time.Microsecond)
	tb.Add("beta-longer", 3456, 2*time.Millisecond)
	out := tb.String()
	if !strings.Contains(out, "## Demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title, blank, header, separator, two rows.
	if len(lines) != 5 && len(lines) != 6 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows=%d", tb.Rows())
	}
	// Numeric cells right-align: "12" should be preceded by spaces up to
	// the width of "count".
	if !strings.Contains(out, "   12") {
		t.Errorf("count not right-aligned:\n%s", out)
	}
}

func TestTableArityPanic(t *testing.T) {
	tb := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong arity")
		}
	}()
	tb.Add(1)
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != "2.00x" {
		t.Errorf("got %s", Ratio(6, 3))
	}
	if Ratio(1, 0) != "-" {
		t.Errorf("got %s", Ratio(1, 0))
	}
}

func TestMinMed(t *testing.T) {
	n := 0
	min, med := MinMed(5, func() { n++ })
	if n != 5 {
		t.Fatalf("ran %d times", n)
	}
	if min > med {
		t.Fatalf("min %v > med %v", min, med)
	}
}
