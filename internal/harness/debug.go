package harness

import (
	"context"
	"errors"
	"expvar"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// DebugServer is the diagnostic HTTP server: pprof profiles under
// /debug/pprof/, expvar JSON under /debug/vars, and — when a metrics source
// is registered — an OpenMetrics/Prometheus scrape endpoint under /metrics.
// Unlike the old ServeDebug it owns its mux (so two servers in one process
// don't fight over the default mux's pprof routes), and it shuts down
// gracefully: Shutdown drains in-flight scrapes, Close drops them, and both
// release the listener — experiments that exit no longer leak it.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
	mux *http.ServeMux

	mu      sync.Mutex
	metrics func(io.Writer) error
}

// NewDebugServer binds addr (":0" for an ephemeral port) and starts serving
// in a background goroutine. The caller owns shutdown: defer Shutdown or
// Close.
func NewDebugServer(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{ln: ln, mux: http.NewServeMux()}
	// pprof registers on the default mux via its init; mount the handlers on
	// our own mux explicitly so this server is self-contained.
	d.mux.HandleFunc("/debug/pprof/", pprof.Index)
	d.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	d.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	d.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	d.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d.mux.Handle("/debug/vars", expvar.Handler())
	d.mux.HandleFunc("/metrics", d.serveMetrics)
	d.srv = &http.Server{Handler: d.mux}
	go d.srv.Serve(ln)
	return d, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// HandleMetrics registers the /metrics payload writer — typically
// Universe.WriteOpenMetrics. Until one is registered, /metrics answers 503
// (so a scraper distinguishes "no universe yet" from an empty export).
// Callable at any time, including replacing the source mid-run.
func (d *DebugServer) HandleMetrics(fn func(io.Writer) error) {
	d.mu.Lock()
	d.metrics = fn
	d.mu.Unlock()
}

func (d *DebugServer) serveMetrics(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	fn := d.metrics
	d.mu.Unlock()
	if fn == nil {
		http.Error(w, "no metrics source registered", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	if err := fn(w); err != nil {
		// Headers are gone; all we can do is abort the scrape visibly.
		panic(http.ErrAbortHandler)
	}
}

// Shutdown gracefully stops the server: the listener closes immediately,
// in-flight requests drain until ctx expires, then remaining connections
// are closed.
//
// The listener is closed here, not left to http.Server: Serve starts on a
// background goroutine, so a prompt Shutdown can beat the goroutine to the
// server's listener registry — http.Server.Shutdown would then close
// nothing and Serve would return without closing ln, leaking the port.
func (d *DebugServer) Shutdown(ctx context.Context) error {
	d.ln.Close()
	err := d.srv.Shutdown(ctx)
	if errors.Is(err, net.ErrClosed) {
		err = nil // our own listener close surfacing back; the port is free
	}
	return err
}

// Close stops the server immediately, dropping in-flight requests.
func (d *DebugServer) Close() error {
	d.ln.Close()
	err := d.srv.Close()
	if errors.Is(err, net.ErrClosed) {
		err = nil
	}
	return err
}

// defaultDebug backs the package-level ServeDebug/HandleMetrics
// compatibility layer: one process-wide server, like the old default-mux
// behavior, but with its shutdown reachable via StopDebug.
var (
	defaultDebugMu sync.Mutex
	defaultDebug   *DebugServer
)

// ServeDebug starts the process-wide diagnostic server on addr and returns
// the bound address. Use ":0" for an ephemeral port. Successive calls reuse
// the first server (its address is returned; addr is ignored). Prefer
// NewDebugServer in new code — it makes shutdown explicit.
func ServeDebug(addr string) (string, error) {
	defaultDebugMu.Lock()
	defer defaultDebugMu.Unlock()
	if defaultDebug != nil {
		return defaultDebug.Addr(), nil
	}
	d, err := NewDebugServer(addr)
	if err != nil {
		return "", err
	}
	defaultDebug = d
	return d.Addr(), nil
}

// HandleMetrics registers the /metrics source on the process-wide server
// (starting it on an ephemeral port if ServeDebug was never called).
func HandleMetrics(fn func(io.Writer) error) (string, error) {
	addr, err := ServeDebug(":0")
	if err != nil {
		return "", err
	}
	defaultDebugMu.Lock()
	defaultDebug.HandleMetrics(fn)
	defaultDebugMu.Unlock()
	return addr, nil
}

// StopDebug gracefully shuts down the process-wide diagnostic server (a
// 2-second drain), releasing its listener. No-op when it never started.
func StopDebug() {
	defaultDebugMu.Lock()
	d := defaultDebug
	defaultDebug = nil
	defaultDebugMu.Unlock()
	if d == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	d.Shutdown(ctx)
}

// Publish exposes fn's result as JSON at /debug/vars under name, via expvar.
// Use it to publish live substrate metrics (e.g. a Universe.Metrics closure)
// while a long run is in flight. Each name can be published once per process;
// a second Publish with the same name panics (expvar semantics).
func Publish(name string, fn func() any) {
	expvar.Publish(name, expvar.Func(fn))
}
