package harness

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux
)

// ServeDebug starts Go's diagnostic HTTP server — pprof profiles under
// /debug/pprof/ and expvar JSON under /debug/vars — on addr in a background
// goroutine and returns the bound address. Use ":0" for an ephemeral port.
// The server runs for the life of the process; there is no shutdown because
// it serves read-only diagnostics.
func ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{} // nil handler: the default mux carries pprof + expvar
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Publish exposes fn's result as JSON at /debug/vars under name, via expvar.
// Use it to publish live substrate metrics (e.g. a Universe.Metrics closure)
// while a long run is in flight. Each name can be published once per process;
// a second Publish with the same name panics (expvar semantics).
func Publish(name string, fn func() any) {
	expvar.Publish(name, expvar.Func(fn))
}
