// Package harness provides the experiment-suite plumbing: fixed-width table
// rendering (the rows EXPERIMENTS.md records), wall-clock timing, explicit
// seed derivation (no global rand anywhere in the suite), and small
// statistics helpers. It is used by cmd/experiments, the chaos harness, and
// the benchmarks.
package harness

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"strings"
	"time"
)

// DeriveSeed derives a named sub-seed from a base seed, deterministically:
// the same (base, label) always yields the same seed. Every component that
// needs randomness — workload generators, fault plans, shuffles — takes an
// explicit seed derived this way from the experiment's single base seed, so
// a whole run (and any failure) is reproducible from one number and no code
// path consults a global random source.
func DeriveSeed(base uint64, label string) uint64 {
	h := fnv.New64a()
	fmt.Fprint(h, label)
	x := base ^ h.Sum64()
	// SplitMix64 finalizer: decorrelates adjacent bases and labels.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// WorkerSeed derives the fault/chaos seed for one worker process of a
// multi-process launch from the launcher's root seed and the worker's
// identity (index and owned rank range). Deterministic across processes and
// respawns: the launcher and every replacement of worker idx compute the
// same seed, so a respawned worker replays the same synthesized fault
// schedule the dead one was running.
func WorkerSeed(root uint64, idx, lo, hi int) uint64 {
	return DeriveSeed(root, fmt.Sprintf("worker-%d-ranks-%d-%d", idx, lo, hi))
}

// Table accumulates rows and renders them with fixed-width columns. Cells
// are formatted with %v; numbers right-align, text left-aligns.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends one row; it must have exactly one cell per header column.
func (t *Table) Add(cells ...any) {
	if len(cells) != len(t.Header) {
		panic(fmt.Sprintf("harness: row has %d cells, table has %d columns", len(cells), len(t.Header)))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// MarshalJSON renders the table as a machine-readable object:
// {"title": ..., "header": [...], "rows": [[...], ...]}. Cells are the same
// formatted strings Fprint renders, so the JSON view and the text view of a
// table never disagree.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}{t.Title, t.Header, rows})
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if (r < '0' || r > '9') && r != '.' && r != '-' && r != '+' && r != 'e' && r != 'x' {
			return false
		}
	}
	return true
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if isNumeric(c) {
				parts[i] = fmt.Sprintf("%*s", widths[i], c)
			} else {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, strings.Join(seps, "  "))
	for _, row := range t.rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Time runs fn and returns its wall-clock duration.
func Time(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// Ratio formats a/b as a factor string ("3.2x"); "-" when b is zero.
func Ratio(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

// MinMed runs fn reps times and returns the minimum and median durations
// (minimum is the usual benchmark statistic; median guards against a lucky
// outlier).
func MinMed(reps int, fn func()) (min, med time.Duration) {
	if reps < 1 {
		reps = 1
	}
	ds := make([]time.Duration, reps)
	for i := range ds {
		ds[i] = Time(fn)
	}
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return ds[0], ds[len(ds)/2]
}
