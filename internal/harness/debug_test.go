package harness

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerMetricsLifecycle(t *testing.T) {
	d, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback sockets unavailable: %v", err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	// Before a source is registered the scrape must 503, not serve an empty
	// document (a scraper can't tell "no universe yet" from "no metrics").
	code, _ := get(t, base+"/metrics")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("pre-registration /metrics = %d, want 503", code)
	}

	d.HandleMetrics(func(w io.Writer) error {
		_, err := io.WriteString(w, "declpat_up 1\n# EOF\n")
		return err
	})
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "declpat_up 1") || !strings.Contains(body, "# EOF") {
		t.Fatalf("post-registration scrape = %d %q", code, body)
	}

	// The diagnostic routes are mounted on the server's own mux.
	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars = %d %q", code, body[:min(len(body), 80)])
	}
	code, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d, want 200", code)
	}
}

func TestDebugServerShutdownReleasesListener(t *testing.T) {
	d, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback sockets unavailable: %v", err)
	}
	addr := d.Addr()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The port must be rebindable immediately — the leak the old ServeDebug
	// had was exactly this listener living until process exit.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s after Shutdown: %v", addr, err)
	}
	ln.Close()
}

func TestDebugServerConcurrentScrape(t *testing.T) {
	d, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback sockets unavailable: %v", err)
	}
	defer d.Close()
	var n atomic.Int64
	d.HandleMetrics(func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "declpat_scrapes %d\n# EOF\n", n.Add(1))
		return err
	})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				code, body := get(t, "http://"+d.Addr()+"/metrics")
				if code != http.StatusOK || !strings.Contains(body, "# EOF") {
					t.Errorf("scrape = %d %q", code, body)
					return
				}
				// Re-registering mid-scrape-storm must be safe.
				d.HandleMetrics(func(w io.Writer) error {
					_, err := fmt.Fprintf(w, "declpat_scrapes %d\n# EOF\n", n.Add(1))
					return err
				})
			}
		}()
	}
	wg.Wait()
	if n.Load() < 40 {
		t.Fatalf("expected >= 40 scrapes, got %d", n.Load())
	}
}

func TestStopDebugResetsProcessServer(t *testing.T) {
	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback sockets unavailable: %v", err)
	}
	// Successive calls reuse the first server.
	again, err := ServeDebug("127.0.0.1:0")
	if err != nil || again != addr {
		t.Fatalf("second ServeDebug = %q, %v; want %q reused", again, err, addr)
	}
	StopDebug()
	StopDebug() // idempotent
	// After StopDebug a fresh server can start (on a fresh port).
	addr2, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeDebug after StopDebug: %v", err)
	}
	defer StopDebug()
	if addr2 == "" {
		t.Fatal("empty address from restarted debug server")
	}
}
