package am

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"declpat/internal/obs"
	"declpat/internal/relay"
)

// Socket transport backend: envelopes cross real TCP or Unix-domain sockets
// as length-prefixed CRC-sealed frames.
//
// Topology: every rank binds one listener; every directed link (src → dest,
// src != dest) is one dialed connection, written only by src's send path and
// read only by a reader goroutine that pushes reconstructed envelopes onto
// dest's inbox. Self-sends bypass the sockets entirely.
//
// The backend is deliberately *best-effort* (see the Transport contract): a
// frame written into a dying connection is gone, exactly like a dropped
// packet, and the reliable layer's unack→retransmit table recovers it. What
// the backend does own is the connection lifecycle — a version/rank
// handshake on dial, per-link heartbeats with a liveness deadline on the
// read side, and automatic reconnection with capped exponential backoff.
// On reconnect it marks every unacknowledged envelope bound for the peer
// due-now (requeueOutstanding), so frames lost in the dead connection replay
// at the next poll instead of waiting out their backoff. A link whose
// reconnect budget is exhausted escalates to the crash-stop path: a
// FaultTransport rank fault aborts the epoch, and recovery (healEpoch)
// grants the link a fresh budget before the replay.
//
// Scope: all ranks still live in one OS process — the control plane
// (barriers, detectors, collectives) stays shared-memory, which is what
// makes the chaos matrix's bit-identity comparison meaningful. The data
// plane genuinely leaves the process: with SockOptions.Relay every frame is
// tunneled through an external declpat-worker process (cmd/declpat-worker),
// so kill -9 on the worker is a real connection failure.

// Handshake constants. The dialer opens every connection with
// magic, version, src rank, dest rank, and the universe's instance id; the
// acceptor validates all five and answers one status byte.
const (
	sockMagic   = "DPS1"
	sockVersion = 1

	helloLen  = 4 + 2 + 4 + 4 + 8
	statusOK  = 0
	statusBad = 1
)

// Frame kinds.
const (
	frameData      = 1
	frameAck       = 2
	frameHeartbeat = 3
)

// maxFrameLen bounds a frame announced by the length prefix; anything larger
// marks the stream corrupt (a desynced or hostile peer).
const maxFrameLen = 64 << 20

// sockUniverseSeq distinguishes universes within one process for the
// handshake's instance id.
var sockUniverseSeq atomic.Uint64

// framePool recycles frame build/read buffers.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 2048); return &b }}

// SockOptions configures the socket transport backend.
type SockOptions struct {
	// Network selects the socket family: "tcp" (loopback; the default) or
	// "unix" (Unix-domain sockets).
	Network string
	// Dir is the directory for Unix socket files; "" creates (and owns) a
	// temporary directory removed at close. Ignored for TCP.
	Dir string
	// Relay, when set ("tcp://host:port" or "unix:///path"), routes every
	// dialed connection through a frame-relay process (cmd/declpat-worker)
	// at that address, putting a second OS process on the data path.
	Relay string
	// Heartbeat is the idle interval after which a link's writer emits a
	// heartbeat frame, keeping the peer's liveness deadline fed on quiet
	// links. 0 selects the default (50ms).
	Heartbeat time.Duration
	// Liveness is the read-side deadline: a connection on which no frame
	// (data, ack, or heartbeat) arrives within it is declared dead and
	// closed, counted as a heartbeat miss. 0 selects 10×Heartbeat.
	Liveness time.Duration
	// DialTimeout bounds each connection attempt (including the handshake
	// round trip). 0 selects the default (2s).
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write; an expired write kills the
	// connection (the reliable layer recovers the frame). 0 selects the
	// default (2s).
	WriteTimeout time.Duration
	// ReconnectBase / ReconnectMax shape the reconnect backoff: attempt n
	// sleeps ReconnectBase << (n-1), capped at ReconnectMax, spread by a
	// deterministic ±50% jitter. 0 selects 1ms / 100ms.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// ReconnectBudget is the number of reconnect attempts per outage before
	// the link escalates to a FaultTransport rank fault (crash-stop path).
	// 0 selects the default (10); negative disables reconnection entirely
	// (the first connection death escalates immediately).
	ReconnectBudget int
	// TickInterval paces the retransmit clock (Transport.tickInterval): the
	// link tick advances at most once per interval, so RetransmitBase ticks
	// correspond to real socket latency. 0 selects the default (1ms);
	// negative restores the in-process one-tick-per-poll behavior.
	TickInterval time.Duration
	// Faults, when non-nil, injects deterministic connection-level failures
	// (see SockFaultPlan).
	Faults *SockFaultPlan
}

func (o SockOptions) withDefaults() SockOptions {
	if o.Network == "" {
		o.Network = "tcp"
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 50 * time.Millisecond
	}
	if o.Liveness <= 0 {
		o.Liveness = 10 * o.Heartbeat
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 2 * time.Second
	}
	if o.ReconnectBase <= 0 {
		o.ReconnectBase = time.Millisecond
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = 100 * time.Millisecond
	}
	switch {
	case o.ReconnectBudget == 0:
		o.ReconnectBudget = 10
	case o.ReconnectBudget < 0:
		o.ReconnectBudget = 0 // escalate on first death, no reconnect attempts
	}
	switch {
	case o.TickInterval == 0:
		o.TickInterval = time.Millisecond
	case o.TickInterval < 0:
		o.TickInterval = 0
	}
	return o
}

// SockFaultPlan injects deterministic connection-level failures into the
// socket transport. Triggers are counted in *frames written* on the directed
// link (data and ack frames; heartbeats don't advance the count), so a
// schedule is reproducible regardless of wall-clock timing: the k-th frame a
// link writes always meets the same fate.
type SockFaultPlan struct {
	// Disconnects kill a link's connection once, when its frame count
	// reaches AfterFrames (the triggering frame is lost). The writer then
	// reconnects through the normal backoff path. Each entry fires at most
	// once per run.
	Disconnects []SockDisconnect
	// Partitions black-hole one direction: every frame (heartbeats
	// included) written while FromFrame <= frames < ToFrame vanishes
	// silently — the connection stays open, so only the peer's liveness
	// deadline notices. ToFrame <= 0 keeps the window open until epoch
	// recovery heals it.
	Partitions []SockPartition
	// Flaps kill a link's connection repeatedly: every Period-th frame, up
	// to Count times.
	Flaps []SockFlap
}

// SockDisconnect kills the (Src → Dest) connection when the link has written
// AfterFrames frames (<= 1 kills the very first frame).
type SockDisconnect struct {
	Src, Dest   int
	AfterFrames uint64
}

// SockPartition black-holes (Src → Dest) for frames in [FromFrame, ToFrame).
type SockPartition struct {
	Src, Dest          int
	FromFrame, ToFrame uint64
}

// SockFlap kills the (Src → Dest) connection on every Period-th frame, Count
// times.
type SockFlap struct {
	Src, Dest int
	Period    uint64
	Count     int
}

// sockTransport implements Transport over TCP or Unix-domain sockets.
type sockTransport struct {
	opt SockOptions
	u   *Universe
	id  uint64 // handshake instance id

	network  string
	dir      string // unix socket dir
	ownDir   bool
	relayNet string // parsed SockOptions.Relay ("" = direct dial)
	relayAdr string

	addrs []string       // per-rank listen address
	lns   []net.Listener // per-rank listener
	links [][]*sockLink  // [src][dest]; nil on the diagonal

	// readMu guards the accepted-connection registries: readers maps each
	// directed link to its current reader connection (a replacement closes
	// the old one), pending holds connections still in their handshake so
	// close can reach them.
	readMu  sync.Mutex
	readers map[[2]int]net.Conn
	pending map[net.Conn]struct{}

	closed atomic.Bool
	done   chan struct{}
	wg     sync.WaitGroup
}

// sockLink is the writer-side state of one directed connection.
type sockLink struct {
	t         *sockTransport
	src, dest int

	mu           sync.Mutex
	conn         net.Conn
	dead         bool // reconnect budget exhausted; healEpoch revives
	reconnecting bool
	frames       uint64 // data+ack frames written (fault-schedule clock)
	lastWriteNs  int64

	// Fault-schedule state, indexed like the plan's slices; only entries
	// matching (src, dest) ever fire.
	discFired  []bool
	partClosed []bool
	flapFired  []int
}

// SockTransport returns a socket transport backend with the given options.
// The universe it binds to must register every message type with a wire
// codec (WithWire / WithCodec): frames carry encoded bytes, and a type
// without a codec cannot cross a socket.
func SockTransport(opts SockOptions) Transport {
	return &sockTransport{
		opt:     opts.withDefaults(),
		id:      uint64(os.Getpid())<<32 ^ sockUniverseSeq.Add(1),
		readers: make(map[[2]int]net.Conn),
		pending: make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
}

func (t *sockTransport) Name() string {
	if t.opt.Network == "unix" {
		return "sock-unix"
	}
	return "sock-tcp"
}

func (t *sockTransport) reliable() bool              { return true }
func (t *sockTransport) tickInterval() time.Duration { return t.opt.TickInterval }

// processTelemetry implements the optional telemetry-source extension of
// Transport (see Universe.Metrics): when a relay (declpat-worker) sits on
// the data path, query its telemetry over the same listener the tunnels
// use. Best-effort — an unreachable or pre-telemetry relay contributes no
// entry rather than an error, so Metrics() never fails because a worker
// died mid-scrape.
func (t *sockTransport) processTelemetry() []obs.ProcessTelemetry {
	if t.relayAdr == "" {
		return nil
	}
	pt, err := relay.QueryTelemetry(t.relayNet, t.relayAdr, t.opt.DialTimeout)
	if err != nil {
		return nil
	}
	if pt.Addr == "" {
		pt.Addr = t.opt.Relay
	}
	return []obs.ProcessTelemetry{pt}
}

func (t *sockTransport) start(u *Universe) error {
	if t.u != nil {
		return errTransportReused
	}
	switch t.opt.Network {
	case "tcp", "unix":
		t.network = t.opt.Network
	default:
		return fmt.Errorf("SockOptions.Network %q (want \"tcp\" or \"unix\")", t.opt.Network)
	}
	for _, mt := range u.types {
		if !mt.wire {
			return fmt.Errorf("message type %q has no wire codec; every type on a socket transport needs one (WithWire or WithCodec)", mt.name)
		}
	}
	if t.opt.Relay != "" {
		rn, ra, err := relay.SplitAddr(t.opt.Relay)
		if err != nil {
			return err
		}
		t.relayNet, t.relayAdr = rn, ra
	}
	t.u = u
	n := u.cfg.Ranks
	// In multi-process mode this transport instance serves one worker's rank
	// range: it binds listeners and owns writer links only for local ranks,
	// learns every other rank's address through the control plane, and seals
	// handshakes with the fleet-wide run id so workers of one launch accept
	// each other (and reject strays from other launches or stale attempts).
	lo, hi := 0, n
	if u.mp != nil {
		lo, hi = u.mp.lo, u.mp.hi
		t.id = u.mp.cfg.RunID
	}

	cleanup := func(err error) error {
		t.close()
		return err
	}
	if t.network == "unix" {
		t.dir = t.opt.Dir
		if t.dir == "" {
			d, err := os.MkdirTemp("", "declpat-sock-")
			if err != nil {
				return err
			}
			t.dir, t.ownDir = d, true
		}
	}
	t.addrs = make([]string, n)
	t.lns = make([]net.Listener, n)
	for rank := lo; rank < hi; rank++ {
		var ln net.Listener
		var err error
		if t.network == "unix" {
			path := fmt.Sprintf("%s/rank-%d.sock", t.dir, rank)
			// A respawned worker reuses the same path; a stale socket file
			// from the killed predecessor would fail the bind.
			os.Remove(path)
			ln, err = net.Listen("unix", path)
		} else {
			ln, err = net.Listen("tcp", "127.0.0.1:0")
		}
		if err != nil {
			return cleanup(fmt.Errorf("listen rank %d: %w", rank, err))
		}
		t.lns[rank] = ln
		t.addrs[rank] = ln.Addr().String()
	}
	if u.mp != nil {
		table, err := u.mp.plane.ExchangeAddrs(t.addrs[lo:hi])
		if err != nil {
			return cleanup(fmt.Errorf("exchanging rank addresses: %w", err))
		}
		if len(table) != n {
			return cleanup(fmt.Errorf("address table covers %d ranks, want %d", len(table), n))
		}
		copy(t.addrs, table)
	}
	for rank := lo; rank < hi; rank++ {
		t.wg.Add(1)
		go t.acceptLoop(rank, t.lns[rank])
	}
	t.links = make([][]*sockLink, n)
	for src := lo; src < hi; src++ {
		t.links[src] = make([]*sockLink, n)
		for dest := 0; dest < n; dest++ {
			if src == dest {
				continue
			}
			l := &sockLink{t: t, src: src, dest: dest}
			if fp := t.opt.Faults; fp != nil {
				l.discFired = make([]bool, len(fp.Disconnects))
				l.partClosed = make([]bool, len(fp.Partitions))
				l.flapFired = make([]int, len(fp.Flaps))
			}
			t.links[src][dest] = l
			// Eager synchronous dial: a misconfiguration (unreachable relay,
			// bad address) fails the run before it starts instead of
			// surfacing as a reconnect storm mid-epoch.
			conn, err := t.dialLink(src, dest)
			if err != nil {
				return cleanup(fmt.Errorf("dial link %d->%d: %w", src, dest, err))
			}
			l.conn = conn
			l.lastWriteNs = obs.Now()
		}
	}
	t.wg.Add(1)
	go t.heartbeatLoop()
	return nil
}

// dialLink establishes and handshakes one (src → dest) connection,
// optionally through the relay.
func (t *sockTransport) dialLink(src, dest int) (net.Conn, error) {
	var conn net.Conn
	var err error
	if t.relayNet != "" {
		conn, err = relay.Dial(t.relayNet, t.relayAdr, t.network, t.addrs[dest], t.opt.DialTimeout)
	} else {
		conn, err = net.DialTimeout(t.network, t.addrs[dest], t.opt.DialTimeout)
	}
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	if err := t.handshake(conn, src, dest); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// handshake runs the dialer side: hello out, status byte back.
func (t *sockTransport) handshake(conn net.Conn, src, dest int) error {
	hello := make([]byte, 0, helloLen)
	hello = append(hello, sockMagic...)
	hello = binary.LittleEndian.AppendUint16(hello, sockVersion)
	hello = binary.LittleEndian.AppendUint32(hello, uint32(src))
	hello = binary.LittleEndian.AppendUint32(hello, uint32(dest))
	hello = binary.LittleEndian.AppendUint64(hello, t.id)
	deadline := time.Now().Add(t.opt.DialTimeout)
	conn.SetDeadline(deadline)
	if _, err := conn.Write(hello); err != nil {
		return fmt.Errorf("handshake write: %w", err)
	}
	var status [1]byte
	if _, err := io.ReadFull(conn, status[:]); err != nil {
		return fmt.Errorf("handshake status: %w", err)
	}
	if status[0] != statusOK {
		return fmt.Errorf("handshake rejected by peer (status %d)", status[0])
	}
	conn.SetDeadline(time.Time{})
	return nil
}

// acceptLoop accepts connections on rank's listener and hands each to its
// own handshake + reader goroutine.
func (t *sockTransport) acceptLoop(rank int, ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed (shutdown) or fatal; reconnects re-dial anyway
		}
		t.readMu.Lock()
		if t.closed.Load() {
			t.readMu.Unlock()
			conn.Close()
			return
		}
		t.pending[conn] = struct{}{}
		// Add under readMu: close() sets closed before acquiring readMu,
		// so this Add happens-before its wg.Wait.
		t.wg.Add(1)
		t.readMu.Unlock()
		go t.handleConn(rank, conn)
	}
}

// handleConn validates the acceptor side of the handshake, registers the
// connection as the link's reader, and runs the frame-read loop.
func (t *sockTransport) handleConn(rank int, conn net.Conn) {
	defer t.wg.Done()
	reject := func() {
		conn.Write([]byte{statusBad})
		t.unregister(conn, -1, -1)
		conn.Close()
	}
	conn.SetDeadline(time.Now().Add(t.opt.DialTimeout))
	hello := make([]byte, helloLen)
	if _, err := io.ReadFull(conn, hello); err != nil {
		t.unregister(conn, -1, -1)
		conn.Close()
		return
	}
	src := int(binary.LittleEndian.Uint32(hello[6:]))
	dest := int(binary.LittleEndian.Uint32(hello[10:]))
	uid := binary.LittleEndian.Uint64(hello[14:])
	if string(hello[:4]) != sockMagic ||
		binary.LittleEndian.Uint16(hello[4:]) != sockVersion ||
		uid != t.id || dest != rank ||
		src < 0 || src >= t.u.cfg.Ranks || src == dest {
		reject()
		return
	}
	if _, err := conn.Write([]byte{statusOK}); err != nil {
		t.unregister(conn, -1, -1)
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})
	if !t.register(conn, src, dest) {
		conn.Close()
		return
	}
	t.serveConn(conn, src, dest)
	t.unregister(conn, src, dest)
	conn.Close()
}

// register promotes a handshaken connection to the (src → dest) reader slot,
// closing any stale predecessor (its reader exits on the closed conn, which
// is not a liveness timeout and so counts no heartbeat miss). Reports false
// when the transport is closing.
func (t *sockTransport) register(conn net.Conn, src, dest int) bool {
	t.readMu.Lock()
	defer t.readMu.Unlock()
	delete(t.pending, conn)
	if t.closed.Load() {
		return false
	}
	key := [2]int{src, dest}
	if prev, ok := t.readers[key]; ok {
		prev.Close()
	}
	t.readers[key] = conn
	return true
}

// unregister drops a connection from the registries (reader slot only if it
// is still the current holder).
func (t *sockTransport) unregister(conn net.Conn, src, dest int) {
	t.readMu.Lock()
	defer t.readMu.Unlock()
	delete(t.pending, conn)
	if src >= 0 {
		key := [2]int{src, dest}
		if t.readers[key] == conn {
			delete(t.readers, key)
		}
	}
}

// serveConn is the read loop of one (src → dest) connection: it enforces the
// liveness deadline, verifies each frame's CRC, and pushes reconstructed
// envelopes onto dest's inbox. Any error ends the connection; the writer
// side's next write (or the peer's reconnector) re-establishes it.
func (t *sockTransport) serveConn(conn net.Conn, src, dest int) {
	u := t.u
	r := u.ranks[dest]
	br := bufio.NewReaderSize(conn, 64<<10)
	var lenBuf [4]byte
	for {
		conn.SetReadDeadline(time.Now().Add(t.opt.Liveness))
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() && !t.closed.Load() {
				// Liveness expiry: the peer wrote nothing — not even a
				// heartbeat — within the deadline. Declare the connection
				// dead; the peer's writer will notice and reconnect.
				r.st.Inc(cHeartbeatMisses)
				u.trace(dest, TraceHeartbeatMiss, int64(src), 0)
			}
			return
		}
		frameLen := binary.LittleEndian.Uint32(lenBuf[:])
		if frameLen < 9 || frameLen > maxFrameLen {
			r.st.Inc(cCorruptionsDetected)
			u.trace(dest, TraceCorrupt, int64(ackTypeID), int64(frameLen))
			return // stream desynced; only a fresh connection recovers
		}
		bp := framePool.Get().(*[]byte)
		frame := (*bp)[:0]
		if cap(frame) < int(frameLen) {
			frame = make([]byte, frameLen)
		} else {
			frame = frame[:frameLen]
		}
		if _, err := io.ReadFull(br, frame); err != nil {
			framePool.Put(bp)
			return
		}
		body := frame[:frameLen-8]
		ok := crc64Sum(body) == binary.LittleEndian.Uint64(frame[frameLen-8:]) &&
			t.deliverFrame(r, src, body)
		*bp = frame[:0]
		framePool.Put(bp)
		if !ok {
			r.st.Inc(cCorruptionsDetected)
			u.trace(dest, TraceCorrupt, int64(ackTypeID), 0)
			return
		}
	}
}

// deliverFrame parses one CRC-verified frame body (kind byte + payload) and
// pushes the reconstructed envelope. It reports false on a malformed body
// (possible only through transport corruption that survived the frame CRC,
// or a protocol bug).
func (t *sockTransport) deliverFrame(r *Rank, src int, body []byte) bool {
	u := t.u
	switch body[0] {
	case frameHeartbeat:
		return true
	case frameAck:
		if len(body) != 1+4+8+8 {
			return false
		}
		typ := int32(binary.LittleEndian.Uint32(body[1:]))
		seq := binary.LittleEndian.Uint64(body[5:])
		gen := binary.LittleEndian.Uint64(body[13:])
		if typ < 0 || int(typ) >= len(u.types) {
			return false
		}
		r.inbox.Push(envelope{
			typeID: ackTypeID, src: int32(src), seq: seq, gen: gen, data: ackBody{typ: typ},
		})
		return true
	case frameData:
		if len(body) < 1+4+8+8+8+8+4 {
			return false
		}
		typ := int32(binary.LittleEndian.Uint32(body[1:]))
		seq := binary.LittleEndian.Uint64(body[5:])
		gen := binary.LittleEndian.Uint64(body[13:])
		qid := int64(binary.LittleEndian.Uint64(body[21:]))
		sum := binary.LittleEndian.Uint64(body[29:])
		nlin := binary.LittleEndian.Uint32(body[37:])
		b := body[41:]
		if typ < 0 || int(typ) >= len(u.types) || uint64(nlin)*8+4 > uint64(len(b)) {
			return false
		}
		var lin []uint64
		if nlin > 0 {
			lin = make([]uint64, nlin)
			for i := range lin {
				lin[i] = binary.LittleEndian.Uint64(b[i*8:])
			}
			b = b[nlin*8:]
		}
		plen := binary.LittleEndian.Uint32(b)
		if uint64(plen)+4 != uint64(len(b)) {
			return false
		}
		// The payload outlives the frame buffer: copy it into a pooled
		// encode buffer and hand the receiver a single-reference payload —
		// deliverEnvelope verifies the end-to-end codec checksum (sum) and
		// releases the buffer on every exit path.
		eb := encBufPool.Get().(*encBuf)
		eb.b = append(eb.b[:0], b[4:]...)
		eb.refs.Store(1)
		r.inbox.Push(envelope{
			typeID: typ, src: int32(src), seq: seq, gen: gen, qid: qid,
			data: wirePayload{b: eb.b, sum: sum, eb: eb}, lin: lin,
		})
		return true
	default:
		return false
	}
}

// send implements Transport.send: serialize the envelope into a frame and
// write it on the (src → dest) link. Never blocks on the peer; every failure
// mode drops the frame and lets the reliable layer recover it.
func (t *sockTransport) send(src, dest int, e envelope) {
	if src == dest {
		// Self-sends bypass the sockets; the delivery reference transfers
		// to the receiver as on the in-process backend.
		t.u.ranks[dest].inbox.Push(e)
		return
	}
	if t.closed.Load() {
		if wp, ok := e.data.(wirePayload); ok {
			wp.release()
		}
		return
	}
	bp := framePool.Get().(*[]byte)
	frame := (*bp)[:0]
	frame = append(frame, 0, 0, 0, 0) // length prefix, patched below
	switch data := e.data.(type) {
	case ackBody:
		frame = append(frame, frameAck)
		frame = binary.LittleEndian.AppendUint32(frame, uint32(data.typ))
		frame = binary.LittleEndian.AppendUint64(frame, e.seq)
		frame = binary.LittleEndian.AppendUint64(frame, e.gen)
	case wirePayload:
		frame = append(frame, frameData)
		frame = binary.LittleEndian.AppendUint32(frame, uint32(e.typeID))
		frame = binary.LittleEndian.AppendUint64(frame, e.seq)
		frame = binary.LittleEndian.AppendUint64(frame, e.gen)
		frame = binary.LittleEndian.AppendUint64(frame, uint64(e.qid))
		frame = binary.LittleEndian.AppendUint64(frame, data.sum)
		frame = binary.LittleEndian.AppendUint32(frame, uint32(len(e.lin)))
		for _, id := range e.lin {
			frame = binary.LittleEndian.AppendUint64(frame, id)
		}
		frame = binary.LittleEndian.AppendUint32(frame, uint32(len(data.b)))
		frame = append(frame, data.b...)
		data.release() // the frame now carries the bytes; the sender's reference is spent
	default:
		// Unencodable payload (a non-wire batch); unreachable — start()
		// validates every type — but never panic on the send path.
		*bp = frame[:0]
		framePool.Put(bp)
		t.u.ranks[src].st.Inc(cFramesDropped)
		return
	}
	frame = binary.LittleEndian.AppendUint64(frame, crc64Sum(frame[4:]))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	t.links[src][dest].write(frame, false)
	*bp = frame[:0]
	framePool.Put(bp)
}

// write puts one built frame on the link's connection, applying the socket
// fault schedule. Heartbeats (hb) don't advance the fault clock and are
// never counted as drops.
func (l *sockLink) write(frame []byte, hb bool) {
	t := l.t
	st := t.u.ranks[l.src].st
	drop := func() {
		if !hb {
			st.Inc(cFramesDropped)
		}
	}
	l.mu.Lock()
	if l.dead || t.closed.Load() {
		l.mu.Unlock()
		drop()
		return
	}
	f := l.frames
	if !hb {
		l.frames++
		f = l.frames
		if l.killDueLocked(f) {
			// Injected disconnect/flap: the triggering frame dies with the
			// connection; the reconnector takes over.
			l.closeConnLocked()
			l.spawnReconnectorLocked()
			l.mu.Unlock()
			drop()
			return
		}
	}
	if l.blackholedLocked(f) {
		l.mu.Unlock()
		drop()
		return
	}
	conn := l.conn
	if conn == nil {
		l.spawnReconnectorLocked()
		l.mu.Unlock()
		drop()
		return
	}
	conn.SetWriteDeadline(time.Now().Add(t.opt.WriteTimeout))
	_, err := conn.Write(frame)
	if err == nil {
		l.lastWriteNs = obs.Now()
		l.mu.Unlock()
		return
	}
	l.closeConnLocked()
	l.spawnReconnectorLocked()
	l.mu.Unlock()
	drop()
}

// killDueLocked reports whether the fault schedule kills the connection on
// frame f, consuming the matching trigger. Caller holds l.mu.
func (l *sockLink) killDueLocked(f uint64) bool {
	fp := l.t.opt.Faults
	if fp == nil {
		return false
	}
	for i, d := range fp.Disconnects {
		if d.Src == l.src && d.Dest == l.dest && !l.discFired[i] && f >= max(d.AfterFrames, 1) {
			l.discFired[i] = true
			return true
		}
	}
	for i, fl := range fp.Flaps {
		if fl.Src == l.src && fl.Dest == l.dest && fl.Period > 0 &&
			l.flapFired[i] < fl.Count && f%fl.Period == 0 {
			l.flapFired[i]++
			return true
		}
	}
	return false
}

// blackholedLocked reports whether frame f falls inside an open partition
// window on this link. Caller holds l.mu.
func (l *sockLink) blackholedLocked(f uint64) bool {
	fp := l.t.opt.Faults
	if fp == nil {
		return false
	}
	for i, p := range fp.Partitions {
		if p.Src == l.src && p.Dest == l.dest && !l.partClosed[i] &&
			f >= p.FromFrame && (p.ToFrame <= 0 || f < p.ToFrame) {
			return true
		}
	}
	return false
}

// closeConnLocked drops the link's connection. Caller holds l.mu.
func (l *sockLink) closeConnLocked() {
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
}

// spawnReconnectorLocked starts the link's reconnect goroutine if none is
// running. Caller holds l.mu; close() sets closed before acquiring every
// link's mu, so an Add here happens-before its wg.Wait.
func (l *sockLink) spawnReconnectorLocked() {
	if l.reconnecting || l.dead || l.t.closed.Load() {
		return
	}
	l.reconnecting = true
	l.t.wg.Add(1)
	go l.reconnect()
}

// reconnect re-establishes the link's connection with capped exponential
// backoff and deterministic jitter. On success it marks every unacknowledged
// envelope bound for the peer due-now, so frames lost in the dead connection
// replay through the retransmit path at the sender's next poll. Exhausting
// the budget escalates to the crash-stop path: the link is marked dead and a
// FaultTransport rank fault aborts the epoch (recovery heals the link and
// grants a fresh budget via healEpoch).
func (l *sockLink) reconnect() {
	t := l.t
	defer t.wg.Done()
	stop := func() {
		l.mu.Lock()
		l.reconnecting = false
		l.mu.Unlock()
	}
	u := t.u
	for attempt := 1; ; attempt++ {
		if t.closed.Load() {
			stop()
			return
		}
		if attempt > t.opt.ReconnectBudget {
			l.mu.Lock()
			l.dead = true
			l.reconnecting = false
			l.mu.Unlock()
			u.ranks[l.src].st.Inc(cLinkDeaths)
			u.trace(l.src, TraceLinkDead, int64(ackTypeID), int64(l.dest))
			u.raiseFault(RankFault{
				Kind: FaultTransport, Rank: l.dest, Epoch: u.epochSeq.Load(),
				Detail: fmt.Sprintf("link %d->%d: reconnect budget (%d attempts) exhausted on %s transport",
					l.src, l.dest, t.opt.ReconnectBudget, t.Name()),
			})
			return
		}
		timer := time.NewTimer(l.backoff(attempt))
		select {
		case <-t.done:
			timer.Stop()
			stop()
			return
		case <-timer.C:
		}
		conn, err := t.dialLink(l.src, l.dest)
		if err != nil {
			continue
		}
		l.mu.Lock()
		if t.closed.Load() || l.dead {
			l.reconnecting = false
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.conn = conn
		l.lastWriteNs = obs.Now()
		l.reconnecting = false
		l.mu.Unlock()
		n := u.ranks[l.src].requeueOutstanding(l.dest)
		st := u.ranks[l.src].st
		st.Inc(cReconnects)
		st.Add(cFramesRequeued, int64(n))
		u.trace(l.src, TraceReconnect, int64(l.dest), int64(attempt))
		return
	}
}

// backoff returns the sleep before reconnect attempt n: exponential from
// ReconnectBase, capped at ReconnectMax, spread by a deterministic factor in
// [0.5, 1.5) keyed on (link, attempt) so a flock of links killed together
// doesn't redial in lockstep.
func (l *sockLink) backoff(attempt int) time.Duration {
	t := l.t
	d := t.opt.ReconnectBase << min(attempt-1, 20)
	if d <= 0 || d > t.opt.ReconnectMax {
		d = t.opt.ReconnectMax
	}
	h := splitmix64(uint64(l.src)<<40 | uint64(l.dest)<<20 | uint64(attempt))
	f := 0.5 + float64(h>>11)/(1<<53)
	return time.Duration(float64(d) * f)
}

// heartbeatLoop keeps quiet links alive: every Heartbeat/2 it writes a
// heartbeat frame on each link idle for at least Heartbeat, so the peer's
// liveness deadline only expires when the connection is actually gone (or a
// partition window swallows the heartbeats too — by design).
func (t *sockTransport) heartbeatLoop() {
	defer t.wg.Done()
	// One static heartbeat frame serves every link.
	frame := []byte{0, 0, 0, 0, frameHeartbeat}
	frame = binary.LittleEndian.AppendUint64(frame, crc64Sum(frame[4:]))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	ticker := time.NewTicker(t.opt.Heartbeat / 2)
	defer ticker.Stop()
	for {
		select {
		case <-t.done:
			return
		case <-ticker.C:
		}
		now := obs.Now()
		for _, row := range t.links {
			for _, l := range row {
				if l == nil {
					continue
				}
				l.mu.Lock()
				idle := l.conn != nil && now-l.lastWriteNs >= int64(t.opt.Heartbeat)
				l.mu.Unlock()
				if idle {
					l.write(frame, true)
				}
			}
		}
	}
}

// healEpoch implements Transport.healEpoch: during epoch recovery every
// link's failure state is reset — open partition windows close, dead links
// come back with a fresh reconnect budget — so the replay is not doomed by
// the outage that aborted the attempt. Disconnect and flap triggers stay
// consumed (they are once-per-run, like FaultPlan.Crashes).
func (t *sockTransport) healEpoch() {
	for _, row := range t.links {
		for _, l := range row {
			if l == nil {
				continue
			}
			l.mu.Lock()
			if fp := t.opt.Faults; fp != nil {
				for i, p := range fp.Partitions {
					if p.Src == l.src && p.Dest == l.dest && l.frames >= p.FromFrame {
						l.partClosed[i] = true
					}
				}
			}
			l.dead = false
			if l.conn == nil {
				l.spawnReconnectorLocked()
			}
			l.mu.Unlock()
		}
	}
}

// close implements Transport.close: stop accepting, kill every connection,
// join every goroutine. Safe to call at any point after construction (start
// error paths included); idempotent.
func (t *sockTransport) close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(t.done)
	for _, ln := range t.lns {
		if ln != nil {
			ln.Close()
		}
	}
	for _, row := range t.links {
		for _, l := range row {
			if l == nil {
				continue
			}
			l.mu.Lock()
			l.closeConnLocked()
			l.mu.Unlock()
		}
	}
	t.readMu.Lock()
	for _, c := range t.readers {
		c.Close()
	}
	for c := range t.pending {
		c.Close()
	}
	t.readMu.Unlock()
	t.wg.Wait()
	if t.ownDir && t.dir != "" {
		os.RemoveAll(t.dir)
	}
	return nil
}
