package am

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestNewWithOptions(t *testing.T) {
	fp := &FaultPlan{Drop: 0.05, Seed: 7}
	u := New(3,
		WithThreads(2),
		WithCoalesce(16),
		WithDetector(DetectorFourCounter),
		WithFaultPlan(fp),
		WithRecovery(),
		WithMaxRecoveries(3),
		WithTraceCapacity(1024),
		WithLineage(LineageOn),
		WithTiming(),
		WithWatchdog(30*time.Second),
	)
	if u.Ranks() != 3 {
		t.Fatalf("ranks = %d, want 3", u.Ranks())
	}
	c := u.Config()
	if c.ThreadsPerRank != 2 || c.CoalesceSize != 16 || c.Detector != DetectorFourCounter ||
		c.FaultPlan != fp || !c.Recovery || c.MaxRecoveries != 3 ||
		c.TraceCapacity != 1024 || c.Lineage != LineageOn || !c.Timing ||
		c.Watchdog != 30*time.Second {
		t.Fatalf("options not applied: %+v", c)
	}
}

// TestNewMatchesNewUniverse runs the same tiny workload through both
// constructors and checks the option form behaves like the struct form.
func TestNewMatchesNewUniverse(t *testing.T) {
	run := func(u *Universe) int64 {
		var n atomic.Int64
		mt := Register(u, "ping", func(r *Rank, m int64) { n.Add(m) })
		if err := u.Run(func(r *Rank) {
			r.Epoch(func(ep *Epoch) {
				for i := int64(1); i <= 10; i++ {
					mt.SendTo(r, (r.ID()+1)%u.Ranks(), i)
				}
			})
		}); err != nil {
			t.Fatal(err)
		}
		return n.Load()
	}
	a := run(New(2, WithThreads(1), WithCoalesce(4)))
	b := run(NewUniverse(Config{Ranks: 2, ThreadsPerRank: 1, CoalesceSize: 4}))
	if a != b || a != 2*55 {
		t.Fatalf("New=%d NewUniverse=%d, want both %d", a, b, 2*55)
	}
}
