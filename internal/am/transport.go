package am

import (
	"errors"
	"time"
)

// errTransportReused rejects binding one Transport value to a second
// universe: backends hold per-universe link state.
var errTransportReused = errors.New("transport value already bound to a universe (construct one per universe)")

// Transport moves envelopes between the ranks of one universe. It is the
// seam between the message plane (coalescing, reliable delivery, fault
// injection — everything above) and the medium frames actually cross:
// the default chanTransport hands envelopes to the destination rank's inbox
// in-process, while sockTransport (sock.go) serializes them into
// length-prefixed CRC-sealed frames over TCP or Unix-domain sockets.
//
// The contract is deliberately weaker than reliable delivery: a transport
// provides per-link ordered *best-effort* frame transfer. Frames may vanish
// (a dropped connection, a black-holed direction, an injected fault); the
// reliable layer (reliable.go) recovers them through its unack→retransmit
// table, which is why a backend that can lose frames must report
// reliable() == true so the universe runs the full protocol. Semantics
// above the seam are identical on every backend — that is the chaos
// matrix's bit-identity claim.
//
// A Transport value is single-use: it binds to one universe at start and
// cannot be reused. The interface is intentionally unexported-method-only;
// backends live in this package and are constructed through ChanTransport /
// SockTransport (re-exported by the declpat facade).
type Transport interface {
	// Name identifies the backend in diagnostics and Metrics
	// ("chan", "sock-tcp", "sock-unix").
	Name() string

	// reliable reports whether the backend can lose frames and therefore
	// requires the reliable-delivery layer. NewUniverse synthesizes a
	// zero-valued FaultPlan (full protocol, no injected faults) for a
	// reliable backend configured without one.
	reliable() bool

	// tickInterval paces the retransmit clock: pollLinks advances a rank's
	// link tick at most once per interval, so tick-denominated timeouts
	// (RetransmitBase, backoff) correspond to real time on backends with
	// real latency. 0 (the in-process backend) keeps the original
	// one-tick-per-poll behavior.
	tickInterval() time.Duration

	// start binds the transport to u. Called from Run once the type set is
	// frozen and per-rank state is allocated, before any goroutine that can
	// send. A non-nil error fails the run before it starts; start must
	// release anything it acquired before returning an error.
	start(u *Universe) error

	// send ships envelope e from rank src to rank dest. It never blocks on
	// the destination making progress and never fails loudly: a frame the
	// backend cannot deliver (link down, connection mid-reconnect, transport
	// closed) is dropped, counted, and left to the reliable layer. send owns
	// one delivery reference of a wirePayload envelope and must release it
	// exactly once (the in-process backend transfers it to the receiver).
	send(src, dest int, e envelope)

	// healEpoch resets per-link failure state — dead links, reconnect
	// attempt counters, open fault-schedule windows — during epoch recovery,
	// so the replay is not doomed by the fault that aborted the attempt.
	// Called by rank 0 between recovery barriers (all ranks quiescent).
	healEpoch()

	// close tears the backend down and joins its goroutines. Called after
	// every rank main has returned; sends arriving after close are safe
	// no-ops (mirroring inbox.Push on a closed queue). Idempotent.
	close() error
}

// chanTransport is the default in-process backend: an envelope push is a
// direct hand-off to the destination rank's inbox queue. It cannot lose,
// reorder, or corrupt anything, so it works in trusted mode (no FaultPlan)
// with zero protocol overhead — the original behavior of the substrate.
type chanTransport struct {
	u *Universe
}

// ChanTransport returns the in-process channel backend (the default).
func ChanTransport() Transport { return &chanTransport{} }

func (t *chanTransport) Name() string                { return "chan" }
func (t *chanTransport) reliable() bool              { return false }
func (t *chanTransport) tickInterval() time.Duration { return 0 }

func (t *chanTransport) start(u *Universe) error {
	if t.u != nil {
		return errTransportReused
	}
	t.u = u
	return nil
}

func (t *chanTransport) send(src, dest int, e envelope) {
	t.u.ranks[dest].inbox.Push(e)
}

func (t *chanTransport) healEpoch() {}
func (t *chanTransport) close() error {
	return nil
}

// push ships envelope e from rank src to rank dest through the configured
// transport. Every sender-side hand-off in the message plane (ship, the
// fault injector's duplicates and final pushes, acks, delayed-envelope
// releases) goes through here; receiver-side deliveries of frames a socket
// backend reads stay direct inbox pushes inside the backend.
func (u *Universe) push(src, dest int, e envelope) {
	u.net.send(src, dest, e)
}
