package am

import (
	"net"
	"strings"
	"testing"

	"declpat/internal/obs"
	"declpat/internal/relay"
)

// TestPhaseTimersRecorded proves the tentpole's first layer: with
// Config.Timing on, every epoch lands kernel and barrier spans in the
// per-phase histograms, broken down per rank; with it off the whole plane
// is absent and Rank.Phase is inert.
func TestPhaseTimersRecorded(t *testing.T) {
	cfg := Config{Ranks: 3, ThreadsPerRank: 2, Timing: true}
	u := NewUniverse(cfg)
	mt := Register(u, "ping", func(r *Rank, m chatterPayload) {})
	err := u.Run(func(r *Rank) {
		for epoch := 0; epoch < 2; epoch++ {
			r.Epoch(func(ep *Epoch) {
				ph := r.Phase(obs.PhaseCollect)
				mt.SendTo(r, (r.ID()+1)%r.N(), chatterPayload{ID: int64(r.ID())})
				ph.End()
			})
			r.Barrier()
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	phases := u.Phases()
	for _, want := range []string{"collect", "kernel", "barrier"} {
		h, ok := phases[want]
		if !ok || h.Count == 0 {
			t.Fatalf("phase %q missing or empty: %v", want, phases)
		}
		if h.Sum < 0 || h.Max < 0 {
			t.Fatalf("phase %q has negative durations: %+v", want, h)
		}
	}
	// 3 ranks x 2 epochs of explicit collect scopes.
	if got := phases["collect"].Count; got != 6 {
		t.Fatalf("collect spans = %d, want 6", got)
	}
	rp := u.RankPhases()
	if len(rp) != cfg.Ranks {
		t.Fatalf("RankPhases len = %d, want %d", len(rp), cfg.Ranks)
	}
	var perRank int64
	for _, m := range rp {
		perRank += m["collect"].Count
	}
	if perRank != phases["collect"].Count {
		t.Fatalf("per-rank collect spans sum to %d, aggregate says %d", perRank, phases["collect"].Count)
	}

	// Timing off: no histograms, and scopes are the zero value.
	u2 := NewUniverse(Config{Ranks: 1})
	err = u2.Run(func(r *Rank) {
		ph := r.Phase(obs.PhaseKernel)
		if ph != (PhaseScope{}) {
			t.Error("Phase with timing and tracing off must return the zero scope")
		}
		ph.End() // must be a no-op, not a nil deref
	})
	if err != nil {
		t.Fatalf("Run (timing off): %v", err)
	}
	if u2.Phases() != nil {
		t.Fatalf("Phases() with timing off = %v, want nil", u2.Phases())
	}
}

// TestRelayTelemetryMerged is the cross-process aggregation acceptance test:
// a relay server (the in-process twin of cmd/declpat-worker) sits on the
// data path, the workload crosses it, and afterwards Universe.Metrics()
// must carry the relay's counters and phase histograms as a second process
// — merged into the combined export and visible on the /metrics payload.
func TestRelayTelemetryMerged(t *testing.T) {
	requireLoopback(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("relay listen: %v", err)
	}
	defer ln.Close()
	go relay.NewServer("relay").Serve(ln)

	opt := fastSockOptions("tcp")
	opt.Relay = "tcp://" + ln.Addr().String()
	cfg := Config{Ranks: 2, ThreadsPerRank: 1, CoalesceSize: 4, Timing: true,
		Transport: SockTransport(opt)}
	counts, u := runSockChatter(t, cfg, 16)
	checkExactlyOnce(t, counts, 0)

	m := u.Metrics()
	if len(m.Processes) != 2 {
		t.Fatalf("Processes = %d entries, want coordinator + relay: %+v", len(m.Processes), m.Processes)
	}
	if m.Processes[0].Process != "coordinator" {
		t.Fatalf("Processes[0] = %q, want coordinator first", m.Processes[0].Process)
	}
	rl := m.Processes[1]
	if rl.Process != "relay" || rl.PID == 0 {
		t.Fatalf("relay telemetry identity: %+v", rl)
	}
	if rl.Addr != opt.Relay {
		t.Fatalf("relay Addr = %q, want %q", rl.Addr, opt.Relay)
	}
	// Every inter-rank connection tunnels through the relay, and its dial
	// latency lands in the relay's collect phase synchronously.
	if rl.Counters["relay_conns"] < 1 {
		t.Fatalf("relay_conns = %d, want >= 1", rl.Counters["relay_conns"])
	}
	if rl.Counters["relay_bytes_to_target"] == 0 {
		t.Fatal("no bytes spliced toward targets — did the workload bypass the relay?")
	}
	if rl.Phases["collect"].Count < 1 {
		t.Fatalf("relay collect phase empty: %+v", rl.Phases)
	}

	// The merged export folds both processes together.
	if m.Merged.Process != "merged" {
		t.Fatalf("Merged.Process = %q", m.Merged.Process)
	}
	if m.Merged.Counters["relay_conns"] != rl.Counters["relay_conns"] {
		t.Fatalf("merged relay_conns = %d, want %d", m.Merged.Counters["relay_conns"], rl.Counters["relay_conns"])
	}
	if m.Merged.Counters["msgs_sent"] == 0 {
		t.Fatal("merged export lost the coordinator's counters")
	}
	coordKernel := m.Processes[0].Phases["kernel"].Count
	if coordKernel == 0 {
		t.Fatal("coordinator kernel phase empty despite Timing")
	}
	if got := m.Merged.Phases["collect"].Count; got < rl.Phases["collect"].Count {
		t.Fatalf("merged collect spans = %d, want >= relay's %d", got, rl.Phases["collect"].Count)
	}

	// And the same breakdown is what /metrics serves.
	var b strings.Builder
	if err := u.WriteOpenMetrics(&b); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	om := b.String()
	for _, want := range []string{
		`declpat_universe_info{transport="sock-tcp"} 1`,
		`declpat_msgs_sent_total{process="coordinator"}`,
		`declpat_relay_conns_total{process="relay"}`,
		`declpat_phase_duration_seconds_bucket{process="coordinator",phase="kernel"`,
		`declpat_phase_duration_seconds_bucket{process="relay",phase="collect"`,
		"# EOF",
	} {
		if !strings.Contains(om, want) {
			t.Fatalf("scrape missing %q in:\n%s", want, om)
		}
	}
}

// TestCounterSeriesFeedsSampler wires the universe's counter series into an
// obs.Sampler and checks the live-sampling layer sees real totals.
func TestCounterSeriesFeedsSampler(t *testing.T) {
	u := NewUniverse(Config{Ranks: 2})
	mt := Register(u, "c", func(r *Rank, m chatterPayload) {})
	s := obs.NewSampler(8, u.CounterSeries)
	s.Tick() // empty universe: zero baseline
	err := u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {
			for i := 0; i < 10; i++ {
				mt.SendTo(r, (r.ID()+1)%r.N(), chatterPayload{ID: int64(i)})
			}
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	s.Tick()
	w := s.Samples()
	last := w[len(w)-1]
	if last.Values["msgs_sent"] != 20 || last.Deltas["msgs_sent"] != 20 {
		t.Fatalf("sampler saw msgs_sent=%d delta=%d, want 20/20", last.Values["msgs_sent"], last.Deltas["msgs_sent"])
	}
}
