package am

import "declpat/internal/obs"

// Counter ids of the universe-wide message accounting. The write path is
// sharded per rank (see internal/obs): every handler thread updates its own
// rank's padded shard, so counting never contends across ranks; reads
// aggregate over shards and should happen at quiescent points (between
// epochs or after Run) for exact values.
const (
	cMsgsSent = iota
	cMsgsSuppressed
	cMsgsCombined
	cEnvelopes
	cBytesSent
	cWireBytes
	cHandlersRun
	cCtrlMsgs
	cEpochs
	cFlushes
	cTDWaves
	cEnvelopesDropped
	cEnvelopesDuplicated
	cEnvelopesDelayed
	cRetransmits
	cDupsSuppressed
	cCorruptionsDetected
	cDecodeErrors
	cAckMsgs
	cAcksDropped
	cRankCrashes
	cHandlerPanics
	cLinkDeaths
	cEpochAborts
	cRecoveries
	cCheckpoints
	cWatchdogFires
	cReconnects
	cHeartbeatMisses
	cFramesRequeued
	cFramesDropped
	cCleanDepartures
	cCrashDepartures
	cQueryMismatches
	numCounters
)

// counterNames are the exported metric names, indexed by counter id.
var counterNames = [numCounters]string{
	"msgs_sent", "msgs_suppressed", "msgs_combined",
	"envelopes", "bytes_sent", "wire_bytes",
	"handlers_run", "ctrl_msgs", "epochs", "flushes", "td_waves",
	"envelopes_dropped", "envelopes_duplicated", "envelopes_delayed",
	"retransmits", "dups_suppressed", "corruptions_detected",
	"decode_errors",
	"ack_msgs", "acks_dropped",
	"rank_crashes", "handler_panics", "link_deaths",
	"epoch_aborts", "recoveries", "checkpoints", "watchdog_fires",
	"reconnects", "heartbeat_misses", "frames_requeued", "frames_dropped",
	"clean_departures", "crash_departures",
	"query_mismatches",
}

// Stats is the read-side view of the universe's message accounting. It used
// to be a block of globally shared atomics — the one cache line every
// handler thread in the machine contended on; it is now backed by per-rank
// shards and aggregates on read. Each accessor returns the sum over shards;
// Snapshot returns all counters at once.
type Stats struct {
	c *obs.Counters
}

// Counters exposes the backing sharded counter set (per-rank reads,
// expvar publishing).
func (s *Stats) Counters() *obs.Counters { return s.c }

// MsgsSent counts user-level messages accepted by Send (after the reduction
// layer; suppressed messages are in MsgsSuppressed).
func (s *Stats) MsgsSent() int64 { return s.c.Total(cMsgsSent) }

// MsgsSuppressed counts messages absorbed by the caching/reduction layer
// (combined into an already-buffered message).
func (s *Stats) MsgsSuppressed() int64 { return s.c.Total(cMsgsSuppressed) }

// MsgsCombined counts messages that replaced/merged the payload of a
// buffered message (a combine that changed the buffered value).
func (s *Stats) MsgsCombined() int64 { return s.c.Total(cMsgsCombined) }

// Envelopes counts coalesced batches shipped between ranks.
func (s *Stats) Envelopes() int64 { return s.c.Total(cEnvelopes) }

// BytesSent counts payload bytes (message size × messages, exact).
func (s *Stats) BytesSent() int64 { return s.c.Total(cBytesSent) }

// WireBytes counts serialized envelope bytes for message types using the gob
// wire transport (0 for in-memory transport).
func (s *Stats) WireBytes() int64 { return s.c.Total(cWireBytes) }

// HandlersRun counts individual message handler invocations.
func (s *Stats) HandlersRun() int64 { return s.c.Total(cHandlersRun) }

// CtrlMsgs counts termination-detection control messages (four-counter
// detector only; the atomic detector sends none).
func (s *Stats) CtrlMsgs() int64 { return s.c.Total(cCtrlMsgs) }

// Epochs counts completed epochs.
func (s *Stats) Epochs() int64 { return s.c.Total(cEpochs) }

// Flushes counts explicit Flush (epoch_flush) calls.
func (s *Stats) Flushes() int64 { return s.c.Total(cFlushes) }

// TDWaves counts four-counter probe waves.
func (s *Stats) TDWaves() int64 { return s.c.Total(cTDWaves) }

// EnvelopesDropped counts data-envelope transmissions the injector discarded
// in flight.
func (s *Stats) EnvelopesDropped() int64 { return s.c.Total(cEnvelopesDropped) }

// EnvelopesDuplicated counts envelopes the injector delivered twice.
func (s *Stats) EnvelopesDuplicated() int64 { return s.c.Total(cEnvelopesDuplicated) }

// EnvelopesDelayed counts envelopes held back and released out of order.
func (s *Stats) EnvelopesDelayed() int64 { return s.c.Total(cEnvelopesDelayed) }

// Retransmits counts envelope retransmissions (attempts beyond the first).
func (s *Stats) Retransmits() int64 { return s.c.Total(cRetransmits) }

// DupsSuppressed counts envelopes the receiver's dedup window discarded.
func (s *Stats) DupsSuppressed() int64 { return s.c.Total(cDupsSuppressed) }

// CorruptionsDetected counts wire envelopes whose checksum failed at the
// receiver (discarded; recovered by retransmit).
func (s *Stats) CorruptionsDetected() int64 { return s.c.Total(cCorruptionsDetected) }

// DecodeErrors counts wire envelopes that passed the checksum but failed to
// decode (discarded unacknowledged; recovered by retransmit).
func (s *Stats) DecodeErrors() int64 { return s.c.Total(cDecodeErrors) }

// AckMsgs counts acknowledgement envelopes actually sent.
func (s *Stats) AckMsgs() int64 { return s.c.Total(cAckMsgs) }

// AcksDropped counts acknowledgements the injector discarded.
func (s *Stats) AcksDropped() int64 { return s.c.Total(cAcksDropped) }

// RankCrashes counts injected crash-stop rank failures (FaultPlan.Crashes).
func (s *Stats) RankCrashes() int64 { return s.c.Total(cRankCrashes) }

// HandlerPanics counts message-handler panics contained as rank faults.
func (s *Stats) HandlerPanics() int64 { return s.c.Total(cHandlerPanics) }

// LinkDeaths counts links declared dead at the retransmit ceiling.
func (s *Stats) LinkDeaths() int64 { return s.c.Total(cLinkDeaths) }

// EpochAborts counts epoch attempts aborted by a rank fault.
func (s *Stats) EpochAborts() int64 { return s.c.Total(cEpochAborts) }

// Recoveries counts completed epoch rollback-and-replay cycles.
func (s *Stats) Recoveries() int64 { return s.c.Total(cRecoveries) }

// Checkpoints counts per-rank epoch-boundary snapshots (Config.Recovery).
func (s *Stats) Checkpoints() int64 { return s.c.Total(cCheckpoints) }

// WatchdogFires counts stuck-epoch watchdog activations (at most one per
// run; the watchdog fault is fatal).
func (s *Stats) WatchdogFires() int64 { return s.c.Total(cWatchdogFires) }

// Reconnects counts successful link re-establishments by a socket
// transport after a connection died (always 0 on the in-process backend).
func (s *Stats) Reconnects() int64 { return s.c.Total(cReconnects) }

// HeartbeatMisses counts liveness-deadline expiries on a socket transport's
// receive side: no frame (data or heartbeat) arrived on a link within the
// deadline, so the connection was declared dead and closed.
func (s *Stats) HeartbeatMisses() int64 { return s.c.Total(cHeartbeatMisses) }

// FramesRequeued counts unacknowledged envelopes marked due-now after a
// reconnect, replaying frames lost in the dead connection through the
// normal retransmit path.
func (s *Stats) FramesRequeued() int64 { return s.c.Total(cFramesRequeued) }

// FramesDropped counts frames a socket transport discarded at the sender —
// link down, mid-reconnect, black-holed by the socket fault schedule, or a
// write error; the reliable layer recovers every one of them.
func (s *Stats) FramesDropped() int64 { return s.c.Total(cFramesDropped) }

// CleanDepartures counts fleet peers that left gracefully (goodbye frame
// acknowledged before the connection closed) in a multi-process run.
func (s *Stats) CleanDepartures() int64 { return s.c.Total(cCleanDepartures) }

// CrashDepartures counts fleet peers that died without a goodbye (heartbeat
// expiry or connection loss) in a multi-process run.
func (s *Stats) CrashDepartures() int64 { return s.c.Total(cCrashDepartures) }

// QueryMismatches counts deliveries discarded because their envelope's query
// context did not match the running epoch's (cross-talk between multiplexed
// queries; see Rank.EpochCtx). Always 0 on a correct substrate.
func (s *Stats) QueryMismatches() int64 { return s.c.Total(cQueryMismatches) }

// Snapshot is a plain-value copy of Stats, convenient for diffing across an
// experiment phase.
type Snapshot struct {
	MsgsSent, MsgsSuppressed, MsgsCombined int64
	Envelopes, BytesSent, WireBytes        int64
	HandlersRun                            int64
	CtrlMsgs, Epochs, Flushes, TDWaves     int64
	EnvelopesDropped, EnvelopesDuplicated  int64
	EnvelopesDelayed, Retransmits          int64
	DupsSuppressed, CorruptionsDetected    int64
	DecodeErrors                           int64
	AckMsgs, AcksDropped                   int64
	RankCrashes, HandlerPanics, LinkDeaths int64
	EpochAborts, Recoveries, Checkpoints   int64
	WatchdogFires                          int64
	Reconnects, HeartbeatMisses            int64
	FramesRequeued, FramesDropped          int64
	CleanDepartures, CrashDepartures       int64
	QueryMismatches                        int64
}

// snapshotOf builds a Snapshot from a per-counter read function.
func snapshotOf(get func(id int) int64) Snapshot {
	return Snapshot{
		MsgsSent:       get(cMsgsSent),
		MsgsSuppressed: get(cMsgsSuppressed),
		MsgsCombined:   get(cMsgsCombined),
		Envelopes:      get(cEnvelopes),
		BytesSent:      get(cBytesSent),
		WireBytes:      get(cWireBytes),
		HandlersRun:    get(cHandlersRun),
		CtrlMsgs:       get(cCtrlMsgs),
		Epochs:         get(cEpochs),
		Flushes:        get(cFlushes),
		TDWaves:        get(cTDWaves),

		EnvelopesDropped:    get(cEnvelopesDropped),
		EnvelopesDuplicated: get(cEnvelopesDuplicated),
		EnvelopesDelayed:    get(cEnvelopesDelayed),
		Retransmits:         get(cRetransmits),
		DupsSuppressed:      get(cDupsSuppressed),
		CorruptionsDetected: get(cCorruptionsDetected),
		DecodeErrors:        get(cDecodeErrors),
		AckMsgs:             get(cAckMsgs),
		AcksDropped:         get(cAcksDropped),

		RankCrashes:   get(cRankCrashes),
		HandlerPanics: get(cHandlerPanics),
		LinkDeaths:    get(cLinkDeaths),
		EpochAborts:   get(cEpochAborts),
		Recoveries:    get(cRecoveries),
		Checkpoints:   get(cCheckpoints),
		WatchdogFires: get(cWatchdogFires),

		Reconnects:      get(cReconnects),
		HeartbeatMisses: get(cHeartbeatMisses),
		FramesRequeued:  get(cFramesRequeued),
		FramesDropped:   get(cFramesDropped),

		CleanDepartures: get(cCleanDepartures),
		CrashDepartures: get(cCrashDepartures),

		QueryMismatches: get(cQueryMismatches),
	}
}

// Snapshot returns an aggregated copy of every counter, consistent enough
// for use at quiescent points (between epochs).
func (s *Stats) Snapshot() Snapshot {
	return snapshotOf(s.c.Total)
}

// PerRank returns one Snapshot per shard. With the default per-rank sharding
// this is the per-rank accounting (who sent, who handled); under
// Config.UnshardedStats it has a single entry.
func (s *Stats) PerRank() []Snapshot {
	out := make([]Snapshot, s.c.Shards())
	for i := range out {
		out[i] = snapshotOf(func(id int) int64 { return s.c.ShardTotal(i, id) })
	}
	return out
}

// Sub returns s - o, counter by counter.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		MsgsSent:       s.MsgsSent - o.MsgsSent,
		MsgsSuppressed: s.MsgsSuppressed - o.MsgsSuppressed,
		MsgsCombined:   s.MsgsCombined - o.MsgsCombined,
		Envelopes:      s.Envelopes - o.Envelopes,
		BytesSent:      s.BytesSent - o.BytesSent,
		WireBytes:      s.WireBytes - o.WireBytes,
		HandlersRun:    s.HandlersRun - o.HandlersRun,
		CtrlMsgs:       s.CtrlMsgs - o.CtrlMsgs,
		Epochs:         s.Epochs - o.Epochs,
		Flushes:        s.Flushes - o.Flushes,
		TDWaves:        s.TDWaves - o.TDWaves,

		EnvelopesDropped:    s.EnvelopesDropped - o.EnvelopesDropped,
		EnvelopesDuplicated: s.EnvelopesDuplicated - o.EnvelopesDuplicated,
		EnvelopesDelayed:    s.EnvelopesDelayed - o.EnvelopesDelayed,
		Retransmits:         s.Retransmits - o.Retransmits,
		DupsSuppressed:      s.DupsSuppressed - o.DupsSuppressed,
		CorruptionsDetected: s.CorruptionsDetected - o.CorruptionsDetected,
		DecodeErrors:        s.DecodeErrors - o.DecodeErrors,
		AckMsgs:             s.AckMsgs - o.AckMsgs,
		AcksDropped:         s.AcksDropped - o.AcksDropped,

		RankCrashes:   s.RankCrashes - o.RankCrashes,
		HandlerPanics: s.HandlerPanics - o.HandlerPanics,
		LinkDeaths:    s.LinkDeaths - o.LinkDeaths,
		EpochAborts:   s.EpochAborts - o.EpochAborts,
		Recoveries:    s.Recoveries - o.Recoveries,
		Checkpoints:   s.Checkpoints - o.Checkpoints,
		WatchdogFires: s.WatchdogFires - o.WatchdogFires,

		Reconnects:      s.Reconnects - o.Reconnects,
		HeartbeatMisses: s.HeartbeatMisses - o.HeartbeatMisses,
		FramesRequeued:  s.FramesRequeued - o.FramesRequeued,
		FramesDropped:   s.FramesDropped - o.FramesDropped,

		CleanDepartures: s.CleanDepartures - o.CleanDepartures,
		CrashDepartures: s.CrashDepartures - o.CrashDepartures,

		QueryMismatches: s.QueryMismatches - o.QueryMismatches,
	}
}
