package am

import "sync/atomic"

// Stats holds the universe-wide message accounting. All counters are updated
// atomically by every rank and handler thread; read them between epochs (or
// after Run) for exact values.
type Stats struct {
	// MsgsSent counts user-level messages accepted by Send (after the
	// reduction layer; suppressed messages are in MsgsSuppressed).
	MsgsSent atomic.Int64
	// MsgsSuppressed counts messages absorbed by the caching/reduction
	// layer (combined into an already-buffered message).
	MsgsSuppressed atomic.Int64
	// MsgsCombined counts messages that replaced/merged the payload of a
	// buffered message (a subset of MsgsSuppressed bookkeeping: a combine
	// that changed the buffered value).
	MsgsCombined atomic.Int64
	// Envelopes counts coalesced batches shipped between ranks.
	Envelopes atomic.Int64
	// BytesSent counts payload bytes (message size × messages, exact).
	BytesSent atomic.Int64
	// WireBytes counts serialized envelope bytes for message types using
	// the gob wire transport (0 for in-memory transport).
	WireBytes atomic.Int64
	// HandlersRun counts individual message handler invocations.
	HandlersRun atomic.Int64
	// CtrlMsgs counts termination-detection control messages
	// (four-counter detector only; the atomic detector sends none).
	CtrlMsgs atomic.Int64
	// Epochs counts completed epochs.
	Epochs atomic.Int64
	// Flushes counts explicit Flush (epoch_flush) calls.
	Flushes atomic.Int64
	// TDWaves counts four-counter probe waves.
	TDWaves atomic.Int64

	// Fault-injection / reliable-delivery counters (all zero on the
	// trusted transport, i.e. with a nil FaultPlan).

	// EnvelopesDropped counts data-envelope transmissions the injector
	// discarded in flight.
	EnvelopesDropped atomic.Int64
	// EnvelopesDuplicated counts envelopes the injector delivered twice.
	EnvelopesDuplicated atomic.Int64
	// EnvelopesDelayed counts envelopes held back and released out of
	// order.
	EnvelopesDelayed atomic.Int64
	// Retransmits counts envelope retransmissions (attempts beyond the
	// first).
	Retransmits atomic.Int64
	// DupsSuppressed counts envelopes the receiver's dedup window
	// discarded (network duplicates and redundant retransmits); their
	// messages never reach a handler a second time.
	DupsSuppressed atomic.Int64
	// CorruptionsDetected counts gob-wire envelopes whose checksum failed
	// at the receiver (discarded; recovered by retransmit).
	CorruptionsDetected atomic.Int64
	// AckMsgs counts acknowledgement envelopes actually sent.
	AckMsgs atomic.Int64
	// AcksDropped counts acknowledgements the injector discarded.
	AcksDropped atomic.Int64
}

// Snapshot is a plain-value copy of Stats, convenient for diffing across an
// experiment phase.
type Snapshot struct {
	MsgsSent, MsgsSuppressed, MsgsCombined int64
	Envelopes, BytesSent, WireBytes        int64
	HandlersRun                            int64
	CtrlMsgs, Epochs, Flushes, TDWaves     int64
	EnvelopesDropped, EnvelopesDuplicated  int64
	EnvelopesDelayed, Retransmits          int64
	DupsSuppressed, CorruptionsDetected    int64
	AckMsgs, AcksDropped                   int64
}

// Snapshot returns a consistent-enough copy for use at quiescent points
// (between epochs).
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		MsgsSent:       s.MsgsSent.Load(),
		MsgsSuppressed: s.MsgsSuppressed.Load(),
		MsgsCombined:   s.MsgsCombined.Load(),
		Envelopes:      s.Envelopes.Load(),
		BytesSent:      s.BytesSent.Load(),
		WireBytes:      s.WireBytes.Load(),
		HandlersRun:    s.HandlersRun.Load(),
		CtrlMsgs:       s.CtrlMsgs.Load(),
		Epochs:         s.Epochs.Load(),
		Flushes:        s.Flushes.Load(),
		TDWaves:        s.TDWaves.Load(),

		EnvelopesDropped:    s.EnvelopesDropped.Load(),
		EnvelopesDuplicated: s.EnvelopesDuplicated.Load(),
		EnvelopesDelayed:    s.EnvelopesDelayed.Load(),
		Retransmits:         s.Retransmits.Load(),
		DupsSuppressed:      s.DupsSuppressed.Load(),
		CorruptionsDetected: s.CorruptionsDetected.Load(),
		AckMsgs:             s.AckMsgs.Load(),
		AcksDropped:         s.AcksDropped.Load(),
	}
}

// Sub returns s - o, counter by counter.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		MsgsSent:       s.MsgsSent - o.MsgsSent,
		MsgsSuppressed: s.MsgsSuppressed - o.MsgsSuppressed,
		MsgsCombined:   s.MsgsCombined - o.MsgsCombined,
		Envelopes:      s.Envelopes - o.Envelopes,
		BytesSent:      s.BytesSent - o.BytesSent,
		WireBytes:      s.WireBytes - o.WireBytes,
		HandlersRun:    s.HandlersRun - o.HandlersRun,
		CtrlMsgs:       s.CtrlMsgs - o.CtrlMsgs,
		Epochs:         s.Epochs - o.Epochs,
		Flushes:        s.Flushes - o.Flushes,
		TDWaves:        s.TDWaves - o.TDWaves,

		EnvelopesDropped:    s.EnvelopesDropped - o.EnvelopesDropped,
		EnvelopesDuplicated: s.EnvelopesDuplicated - o.EnvelopesDuplicated,
		EnvelopesDelayed:    s.EnvelopesDelayed - o.EnvelopesDelayed,
		Retransmits:         s.Retransmits - o.Retransmits,
		DupsSuppressed:      s.DupsSuppressed - o.DupsSuppressed,
		CorruptionsDetected: s.CorruptionsDetected - o.CorruptionsDetected,
		AckMsgs:             s.AckMsgs - o.AckMsgs,
		AcksDropped:         s.AcksDropped - o.AcksDropped,
	}
}
