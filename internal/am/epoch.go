package am

import (
	"runtime"
	"sync"

	"declpat/internal/obs"
)

// Epoch is the handle an epoch body uses to interact with the messaging
// layer: flushing, cooperative progress, and early-termination attempts.
// One Epoch value is passed to each body participant (rank thread).
type Epoch struct {
	r   *Rank
	tid int
}

// Rank returns the rank this epoch participant runs on.
func (ep *Epoch) Rank() *Rank { return ep.r }

// Thread returns this participant's thread id within its rank (0 for plain
// Epoch bodies).
func (ep *Epoch) Thread() int { return ep.tid }

// Epoch runs body inside a collective epoch: every rank of the universe must
// call Epoch "at the same time" (same sequence of collective calls). The
// call returns on every rank only after all messages sent by any body or any
// handler — transitively — have been handled everywhere (the paper's epoch
// guarantee, §II and §III-D).
func (r *Rank) Epoch(body func(ep *Epoch)) {
	r.EpochThreaded(1, func(_ int, ep *Epoch) { body(ep) })
}

// EpochCtx is Epoch tagged with a query context: every envelope the body (or
// any transitively-triggered handler) sends carries qid, every trace event
// recorded during the epoch attributes to qid, and deliveries validate the
// stamp — an envelope from another query context is never handled. Like
// Epoch, the call is collective: every rank must call EpochCtx with the same
// qid (mixing EpochCtx and Epoch, or disagreeing on qid, across ranks of one
// collective call is a bug and trips the cross-talk check). qid 0 is the
// untagged context and makes EpochCtx identical to Epoch.
//
// This is the primitive the query plane (internal/query) multiplexes on: a
// resident universe interleaves epochs of many independent queries, and the
// tag is what keeps BFS-from-A and SSSP-from-B apart in the message plane,
// the detector waves, and the exported timelines.
func (r *Rank) EpochCtx(qid int64, body func(ep *Epoch)) {
	r.EpochThreadedCtx(qid, 1, func(_ int, ep *Epoch) { body(ep) })
}

// EpochThreadedCtx is EpochThreaded tagged with a query context (see
// EpochCtx).
func (r *Rank) EpochThreadedCtx(qid int64, nthreads int, body func(tid int, ep *Epoch)) {
	r.nextQID = qid
	defer func() { r.nextQID = 0 }()
	r.EpochThreaded(nthreads, body)
}

// EpochThreaded is Epoch with nthreads body participants per rank, used by
// strategies that subdivide rank-local work across threads (the distributed
// Δ-stepping of §III-D). Each participant may call Flush and TryFinish on
// its own Epoch handle.
//
// Contract for TryFinish users: any rank-local deferred work (e.g. bucket
// contents) must be registered with AuxAdd before the message that created
// it finishes handling, and unregistered when consumed; otherwise the epoch
// can terminate while work remains.
//
// With Config.Recovery the epoch boundary entered here is also the recovery
// point: registered checkpointers are snapshotted before the opening
// barrier (the previous epoch ended acknowledged-quiet, so the state is a
// consistent cut), and a rank fault inside the epoch rolls every rank back
// to that snapshot and re-runs the body. Bodies therefore re-execute after
// a fault; they must be deterministic functions of the checkpointed state
// (every property map and frontier they touch registered), which all
// built-in strategies and algorithms are.
func (r *Rank) EpochThreaded(nthreads int, body func(tid int, ep *Epoch)) {
	if nthreads < 1 {
		panic("am: EpochThreaded needs at least one body thread")
	}
	u := r.u
	r.inEpoch.Store(true)
	// Publish the epoch's query context. Every rank of the collective call
	// stores the same value (a disagreement is caught by the delivery-side
	// cross-talk check), and the previous epoch's closing barrier guarantees
	// no envelope of the old context is still in flight, so the store cannot
	// race a legitimate delivery.
	u.curQuery.Store(r.nextQID)
	// Capture the epoch sequence once: rank 0 advances epochSeq before the
	// closing barrier, so a slower rank reading it at TraceEpochEnd would
	// mislabel its span (and mis-attribute every event inside it).
	epochSeq := u.epochSeq.Load()
	if u.mp != nil && epochSeq < u.mp.restart {
		// Restart fast-forward: this epoch committed before the crash. Its
		// body is skipped and any collective it consumed replays from the
		// coordinator's log; only the epoch bookkeeping advances. Every
		// worker skips the same prefix independently, with no wire traffic.
		r.mpSkipEpoch()
		return
	}
	if u.tracer != nil || u.flight != nil {
		// Stamp the span open so TraceEpochEnd can close it with a
		// duration (the rank's wall time inside the epoch, recovery
		// attempts included). Epoch boundaries are flight-recorder
		// landmarks, so this fires for the black box even with the trace
		// rings off.
		r.epochBeginNs = obs.Now()
		u.traceSpan(r.id, TraceEpochBegin, epochSeq, int64(nthreads), r.epochBeginNs, 0)
	}
	// Checkpoint at the boundary, before any rank can send into the epoch.
	if u.mp != nil {
		// Multi-process: restore from the committed checkpoint when this is
		// the restart epoch, serialize this epoch's snapshot to its slot
		// file, and vote it committed via the epoch-tagged wire barrier.
		u.mpEpochOpen(r, epochSeq)
	} else if u.cfg.Recovery {
		u.snapshotRank(r.id)
		r.st.Inc(cCheckpoints)
	}
	for {
		r.totalBodies.Store(int32(nthreads))
		r.idleBodies.Store(0)
		r.handledInEpoch.Store(0)
		if u.cfg.Detector == DetectorFourCounter && r.id == 0 {
			// A fresh driver per attempt: a rolled-back epoch must not
			// inherit wave snapshots from the aborted attempt.
			r.fc = newFourCounterDriver(u)
		}
		u.touchProgress()
		// Arm (or fire) injected crashes before the barrier: an
		// epoch-entry crash is visible before any peer's body can send,
		// and a mid-epoch trigger is armed before any envelope of this
		// attempt can arrive.
		r.armCrashes()
		r.Barrier() // all ranks registered before anyone can quiesce
		kernel := r.Phase(obs.PhaseKernel)
		r.runBodies(nthreads, body)
		kernel.End() // the attempt's body+drain span: the epoch's kernel phase
		r.Barrier() // every rank observed the same commit-or-abort outcome
		if u.epochState.Load() != epochAborting {
			break
		}
		if u.mp != nil {
			// No in-process rollback in multi-process mode: any fault aborts
			// the whole fleet and the launcher respawns every worker from
			// the last committed on-disk checkpoint. (Normally the poisoned
			// local barrier unwinds the rank before it gets here.)
			panic(runAbort{})
		}
		r.recoverEpoch() // unwinds via runAbort when the fault is unrecoverable
	}
	if u.tracer != nil || u.flight != nil {
		now := obs.Now()
		u.traceSpan(r.id, TraceEpochEnd, epochSeq, 0, now, now-r.epochBeginNs)
	}
	// All ranks observed the commit and stopped sending; the leader rank
	// (rank 0, or the lowest local rank of a worker process) resets the
	// shared state between the two barriers so the next epoch starts clean.
	if r.id == u.leaderID() {
		u.epochState.Store(epochRunning)
		u.epochSeq.Add(1)
		u.recoveries = 0
		r.st.Inc(cEpochs)
	}
	r.inEpoch.Store(false)
	r.auxWork.Store(0)
	r.totalBodies.Store(0)
	r.idleBodies.Store(0)
	// A crash that lost the race to the epoch commit (the detector finished
	// first) dies with the epoch: the committed state is intact, and the
	// rank must not stay silent into the next epoch.
	r.crashed.Store(false)
	r.fc = nil
	r.Barrier()
}

// runBodies runs one epoch attempt: the body participants plus the rank
// main's progress loop, returning once the epoch has globally finished or
// is rolling back (with every participant goroutine joined either way).
func (r *Rank) runBodies(nthreads int, body func(tid int, ep *Epoch)) {
	if nthreads == 1 {
		r.runBody(0, body)
		r.idleBodies.Add(1)
		r.progressUntilDone()
		return
	}
	var wg sync.WaitGroup
	for t := 0; t < nthreads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			r.runBody(t, body)
			r.idleBodies.Add(1)
		}(t)
	}
	// The rank main participates in progress while bodies run.
	r.progressUntilDone()
	wg.Wait()
	// Keep making progress until the whole universe is quiescent.
	r.progressUntilDone()
}

// runBody runs one body participant, absorbing the epochAbort unwind: a
// participant whose epoch is rolling back simply stops (Flush and TryFinish
// throw the sentinel), and the restored state replays under a fresh call.
// A rank that is dead on epoch entry never runs its body. All other panics
// propagate — a body bug is not a containable rank fault.
//
// The participant runs on a fresh facet of the rank: its deliveries (Flush,
// TryFinish drain envelopes inline) set the facet's ambient lineage parent
// without racing sibling participants, and an attempt unwound mid-handler
// cannot leak a stale parent into the replay.
func (r *Rank) runBody(tid int, body func(int, *Epoch)) {
	if r.crashed.Load() {
		return
	}
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(epochAbort); !ok {
				panic(p)
			}
		}
	}()
	body(tid, &Epoch{r: r.facet(), tid: tid})
}

// progressUntilDone flushes, delivers, and participates in termination
// detection until the epoch is globally finished or rolling back. It runs on
// its own facet: the deliveries of drainSome need a lineage context separate
// from the body participants'.
func (r *Rank) progressUntilDone() {
	r = r.facet()
	u := r.u
	for u.epochState.Load() == epochRunning {
		if r.crashed.Load() {
			// Crash-stop: a dead rank neither flushes nor delivers; it
			// waits for the abort its crash raised to become visible.
			runtime.Gosched()
			continue
		}
		flushed := r.flushAll()
		worked := r.drainSome(64)
		if flushed || worked {
			u.touchProgress()
			continue
		}
		switch u.cfg.Detector {
		case DetectorAtomic:
			if u.atomicQuiesced() {
				u.finishEpoch()
			}
		case DetectorFourCounter:
			if r.fc != nil && r.fc.wave() {
				u.finishEpoch()
			}
		}
		r.checkWatchdog()
		runtime.Gosched()
	}
	if u.epochState.Load() == epochAborting {
		return // recovery scrubs the leftovers
	}
	// Drain leftovers addressed to us that raced with the done flag. By
	// the detector's guarantee no user envelope remains (in reliable mode
	// the detectors additionally waited for every envelope to be
	// acknowledged), but redundant duplicate acks — re-acks of a
	// suppressed retransmit whose original ack already landed — may still
	// arrive; their handler is a no-op, and this sweep keeps the inbox
	// empty for the next epoch.
	for r.drainSome(64) {
	}
}

// Flush implements the paper's epoch_flush: ship all locally buffered
// messages and perform as much pending local work as possible before
// returning control to the body. When the epoch is rolling back, Flush
// unwinds the calling participant instead (see recovery.go).
func (ep *Epoch) Flush() {
	r := ep.r
	r.st.Inc(cFlushes)
	r.u.trace(r.id, TraceFlush, 0, 0)
	for {
		r.abortCheck()
		flushed := r.flushAll()
		worked := r.drainSome(1 << 30)
		if !flushed && !worked {
			return
		}
	}
}

// AuxAdd registers n units of rank-local deferred work (e.g. items inserted
// into Δ-stepping buckets) with the termination detector. Call with negative
// n when work is consumed. Work must be registered on the rank that owns it.
func (ep *Epoch) AuxAdd(n int64) { ep.r.auxWork.Add(n) }

// AuxAdd on the rank is the handler-side equivalent of Epoch.AuxAdd; message
// handlers run without an Epoch handle but may create rank-local work.
func (r *Rank) AuxAdd(n int64) { r.auxWork.Add(n) }

// tryFinishSpins bounds the idle confirmation loop inside TryFinish.
const tryFinishSpins = 32

// TryFinish implements the paper's try_finish: flush, help with pending
// work, and attempt to end the epoch. It returns true when the epoch has
// terminated globally (the caller must then leave the body); false means
// more work may exist (possibly the caller's own, newly arrived) and the
// body should continue. When the epoch is rolling back, TryFinish unwinds
// the calling participant instead (see recovery.go).
//
// The caller must have drained its own deferred work (AuxAdd balance of its
// contributions zero) before calling.
func (ep *Epoch) TryFinish() bool {
	r := ep.r
	u := r.u
	r.abortCheck()
	r.flushAll()
	r.drainSome(1 << 30)
	if u.epochState.Load() == epochFinished {
		return true
	}
	r.idleBodies.Add(1)
	for i := 0; i < tryFinishSpins; i++ {
		switch u.epochState.Load() {
		case epochFinished:
			// Stay counted as idle: the epoch is over.
			return true
		case epochAborting:
			panic(epochAbort{})
		}
		switch u.cfg.Detector {
		case DetectorAtomic:
			if u.atomicQuiesced() {
				if u.finishEpoch() {
					return true
				}
				continue // lost to a fault: re-read the state
			}
			if u.pending.Load() > 0 || u.totalAux() > 0 || u.totalRelPending() > 0 {
				// Real work exists somewhere — possibly an envelope
				// awaiting retransmit that only this rank's polls can
				// re-ship — so go back to the body loop (whose next
				// TryFinish flushes and polls links) instead of
				// spinning here.
				i = tryFinishSpins
			}
		case DetectorFourCounter:
			// Rank 0 drives waves itself so a body that only ever
			// loops on TryFinish still terminates; other ranks
			// wait for the outcome while idle.
			if r.fc != nil && r.fc.wave() {
				if u.finishEpoch() {
					return true
				}
				continue
			}
		}
		r.checkWatchdog()
		runtime.Gosched()
	}
	r.idleBodies.Add(-1)
	return false
}

// totalAux sums the per-rank deferred-work counters.
func (u *Universe) totalAux() int64 {
	var s int64
	for _, r := range u.ranks {
		s += r.auxWork.Load()
	}
	return s
}
