package am

import (
	"runtime"
	"sync"

	"declpat/internal/obs"
)

// Epoch is the handle an epoch body uses to interact with the messaging
// layer: flushing, cooperative progress, and early-termination attempts.
// One Epoch value is passed to each body participant (rank thread).
type Epoch struct {
	r   *Rank
	tid int
}

// Rank returns the rank this epoch participant runs on.
func (ep *Epoch) Rank() *Rank { return ep.r }

// Thread returns this participant's thread id within its rank (0 for plain
// Epoch bodies).
func (ep *Epoch) Thread() int { return ep.tid }

// Epoch runs body inside a collective epoch: every rank of the universe must
// call Epoch "at the same time" (same sequence of collective calls). The
// call returns on every rank only after all messages sent by any body or any
// handler — transitively — have been handled everywhere (the paper's epoch
// guarantee, §II and §III-D).
func (r *Rank) Epoch(body func(ep *Epoch)) {
	r.EpochThreaded(1, func(_ int, ep *Epoch) { body(ep) })
}

// EpochThreaded is Epoch with nthreads body participants per rank, used by
// strategies that subdivide rank-local work across threads (the distributed
// Δ-stepping of §III-D). Each participant may call Flush and TryFinish on
// its own Epoch handle.
//
// Contract for TryFinish users: any rank-local deferred work (e.g. bucket
// contents) must be registered with AuxAdd before the message that created
// it finishes handling, and unregistered when consumed; otherwise the epoch
// can terminate while work remains.
func (r *Rank) EpochThreaded(nthreads int, body func(tid int, ep *Epoch)) {
	if nthreads < 1 {
		panic("am: EpochThreaded needs at least one body thread")
	}
	u := r.u
	r.totalBodies.Store(int32(nthreads))
	r.idleBodies.Store(0)
	r.inEpoch.Store(true)
	if u.cfg.Detector == DetectorFourCounter && r.id == 0 {
		r.fc = newFourCounterDriver(u)
	}
	if u.tracer != nil {
		// Stamp the span open so TraceEpochEnd can close it with a
		// duration (the rank's wall time inside the epoch).
		r.epochBeginNs = obs.Now()
		u.traceSpan(r.id, TraceEpochBegin, u.epochSeq.Load(), int64(nthreads), r.epochBeginNs, 0)
	}
	r.Barrier() // all ranks registered before anyone can quiesce

	if nthreads == 1 {
		body(0, &Epoch{r: r, tid: 0})
		r.idleBodies.Add(1)
	} else {
		var wg sync.WaitGroup
		for t := 0; t < nthreads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				body(t, &Epoch{r: r, tid: t})
				r.idleBodies.Add(1)
			}(t)
		}
		// The rank main participates in progress while bodies run.
		r.progressUntilDone()
		wg.Wait()
	}
	// Keep making progress until the whole universe is quiescent.
	r.progressUntilDone()

	r.Barrier()
	if u.tracer != nil {
		now := obs.Now()
		u.traceSpan(r.id, TraceEpochEnd, u.epochSeq.Load(), 0, now, now-r.epochBeginNs)
	}
	// All ranks observed epochDone and stopped sending; rank 0 resets the
	// shared flag between the two barriers so the next epoch starts clean.
	if r.id == 0 {
		u.epochDone.Store(false)
		u.epochSeq.Add(1)
		r.st.Inc(cEpochs)
	}
	r.inEpoch.Store(false)
	r.auxWork.Store(0)
	r.totalBodies.Store(0)
	r.idleBodies.Store(0)
	r.fc = nil
	r.Barrier()
}

// progressUntilDone flushes, delivers, and participates in termination
// detection until the epoch is globally finished.
func (r *Rank) progressUntilDone() {
	u := r.u
	for !u.epochDone.Load() {
		flushed := r.flushAll()
		worked := r.drainSome(64)
		if flushed || worked {
			continue
		}
		switch u.cfg.Detector {
		case DetectorAtomic:
			if u.atomicQuiesced() {
				u.epochDone.Store(true)
			}
		case DetectorFourCounter:
			if r.fc != nil && r.fc.wave() {
				u.epochDone.Store(true)
			}
		}
		runtime.Gosched()
	}
	// Drain leftovers addressed to us that raced with the done flag. By
	// the detector's guarantee no user envelope remains (in reliable mode
	// the detectors additionally waited for every envelope to be
	// acknowledged), but redundant duplicate acks — re-acks of a
	// suppressed retransmit whose original ack already landed — may still
	// arrive; their handler is a no-op, and this sweep keeps the inbox
	// empty for the next epoch.
	for r.drainSome(64) {
	}
}

// Flush implements the paper's epoch_flush: ship all locally buffered
// messages and perform as much pending local work as possible before
// returning control to the body.
func (ep *Epoch) Flush() {
	r := ep.r
	r.st.Inc(cFlushes)
	r.u.trace(r.id, TraceFlush, 0, 0)
	for {
		flushed := r.flushAll()
		worked := r.drainSome(1 << 30)
		if !flushed && !worked {
			return
		}
	}
}

// AuxAdd registers n units of rank-local deferred work (e.g. items inserted
// into Δ-stepping buckets) with the termination detector. Call with negative
// n when work is consumed. Work must be registered on the rank that owns it.
func (ep *Epoch) AuxAdd(n int64) { ep.r.auxWork.Add(n) }

// AuxAdd on the rank is the handler-side equivalent of Epoch.AuxAdd; message
// handlers run without an Epoch handle but may create rank-local work.
func (r *Rank) AuxAdd(n int64) { r.auxWork.Add(n) }

// tryFinishSpins bounds the idle confirmation loop inside TryFinish.
const tryFinishSpins = 32

// TryFinish implements the paper's try_finish: flush, help with pending
// work, and attempt to end the epoch. It returns true when the epoch has
// terminated globally (the caller must then leave the body); false means
// more work may exist (possibly the caller's own, newly arrived) and the
// body should continue.
//
// The caller must have drained its own deferred work (AuxAdd balance of its
// contributions zero) before calling.
func (ep *Epoch) TryFinish() bool {
	r := ep.r
	u := r.u
	r.flushAll()
	r.drainSome(1 << 30)
	if u.epochDone.Load() {
		return true
	}
	r.idleBodies.Add(1)
	for i := 0; i < tryFinishSpins; i++ {
		if u.epochDone.Load() {
			// Stay counted as idle: the epoch is over.
			return true
		}
		switch u.cfg.Detector {
		case DetectorAtomic:
			if u.atomicQuiesced() {
				u.epochDone.Store(true)
				return true
			}
			if u.pending.Load() > 0 || u.totalAux() > 0 || u.totalRelPending() > 0 {
				// Real work exists somewhere — possibly an envelope
				// awaiting retransmit that only this rank's polls can
				// re-ship — so go back to the body loop (whose next
				// TryFinish flushes and polls links) instead of
				// spinning here.
				i = tryFinishSpins
			}
		case DetectorFourCounter:
			// Rank 0 drives waves itself so a body that only ever
			// loops on TryFinish still terminates; other ranks
			// wait for the outcome while idle.
			if r.fc != nil && r.fc.wave() {
				u.epochDone.Store(true)
				return true
			}
		}
		runtime.Gosched()
	}
	r.idleBodies.Add(-1)
	return false
}

// totalAux sums the per-rank deferred-work counters.
func (u *Universe) totalAux() int64 {
	var s int64
	for _, r := range u.ranks {
		s += r.auxWork.Load()
	}
	return s
}
