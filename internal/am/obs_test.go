package am

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"declpat/internal/obs"
)

// TestTraceConcurrentWithRecording reads the trace continuously while every
// rank records from concurrent handler threads. The old global
// atomic-indexed ring made this a documented torn-read hazard; the per-rank
// mutex rings make it race-free by construction. Run under -race in CI.
func TestTraceConcurrentWithRecording(t *testing.T) {
	u := NewUniverse(Config{Ranks: 4, ThreadsPerRank: 2, CoalesceSize: 2, TraceCapacity: 512})
	mt := Register(u, "ping", func(r *Rank, m int64) {})
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := u.Trace()
			for i, ev := range evs {
				// A torn read would surface as garbage fields; every
				// observed event must be fully formed.
				if int64(i) != ev.Seq {
					t.Errorf("Seq %d at index %d", ev.Seq, i)
					return
				}
				if ev.Rank < 0 || ev.Rank >= 4 || ev.Kind > maxTraceKind {
					t.Errorf("malformed event %+v", ev)
					return
				}
			}
			_ = u.TraceDropped()
		}
	}()
	u.Run(func(r *Rank) {
		for e := 0; e < 4; e++ {
			r.Epoch(func(ep *Epoch) {
				for i := 0; i < 200; i++ {
					mt.SendTo(r, (r.ID()+1+i)%r.N(), int64(i))
				}
				ep.Flush()
			})
		}
	})
	close(stop)
	reader.Wait()
}

// obsWorkload runs a deterministic (ThreadsPerRank 0) multi-epoch exchange
// and returns the universe for counter comparison.
func obsWorkload(t *testing.T, cfg Config) *Universe {
	t.Helper()
	cfg.ThreadsPerRank = 0
	cfg.CoalesceSize = 4
	u := NewUniverse(cfg)
	relax := Register(u, "relax", func(r *Rank, m int64) {})
	probe := Register(u, "probe", func(r *Rank, m int32) {})
	u.Run(func(r *Rank) {
		for e := 0; e < 3; e++ {
			r.Epoch(func(ep *Epoch) {
				for i := 0; i < 50; i++ {
					relax.SendTo(r, (r.ID()+i)%r.N(), int64(i))
					if i%5 == 0 {
						probe.SendTo(r, (r.ID()+1)%r.N(), int32(i))
					}
				}
				ep.Flush()
			})
		}
	})
	return u
}

// TestShardedMatchesUnsharded runs the identical deterministic workload with
// per-rank shards and with the single-shard legacy layout and requires every
// counter — aggregate and per-type — to agree exactly: sharding changes where
// counts land, never what is counted.
func TestShardedMatchesUnsharded(t *testing.T) {
	sharded := obsWorkload(t, Config{Ranks: 4})
	unsharded := obsWorkload(t, Config{Ranks: 4, UnshardedStats: true})
	if s, us := sharded.Stats.Snapshot(), unsharded.Stats.Snapshot(); s != us {
		t.Fatalf("sharded snapshot %+v\n!= unsharded %+v", s, us)
	}
	st, ust := sharded.TypeStats(), unsharded.TypeStats()
	for i := range st {
		if st[i] != ust[i] {
			t.Fatalf("type %d: sharded %+v != unsharded %+v", i, st[i], ust[i])
		}
	}
	// Per-rank shards sum to the aggregate.
	var sum Snapshot
	for _, pr := range sharded.Stats.PerRank() {
		sum.MsgsSent += pr.MsgsSent
		sum.Envelopes += pr.Envelopes
		sum.HandlersRun += pr.HandlersRun
		sum.Epochs += pr.Epochs
	}
	agg := sharded.Stats.Snapshot()
	if sum.MsgsSent != agg.MsgsSent || sum.Envelopes != agg.Envelopes ||
		sum.HandlersRun != agg.HandlersRun || sum.Epochs != agg.Epochs {
		t.Fatalf("per-rank sums %+v != aggregate %+v", sum, agg)
	}
	if got := unsharded.Stats.PerRank(); len(got) != 1 {
		t.Fatalf("unsharded layout has %d shards, want 1", len(got))
	}
}

// TestExportTraceRoundTrip checks the am→obs export: JSONL round-trips, the
// type-name table resolves, epoch begin/end pairs fold into spans, and the
// Chrome conversion is schema-valid.
func TestExportTraceRoundTrip(t *testing.T) {
	u := NewUniverse(Config{Ranks: 2, ThreadsPerRank: 1, CoalesceSize: 4, TraceCapacity: 4096})
	mt := Register(u, "relax", func(r *Rank, m int64) {})
	u.Run(func(r *Rank) {
		for e := 0; e < 2; e++ {
			r.Epoch(func(ep *Epoch) {
				for i := 0; i < 20; i++ {
					mt.SendTo(r, 1-r.ID(), int64(i))
				}
				ep.Flush()
			})
		}
	})
	meta, recs := u.ExportTrace("round-trip")
	if meta.Ranks != 2 || len(meta.Types) != 1 || meta.Types[0] != "relax" {
		t.Fatalf("meta = %+v", meta)
	}
	epochs, delivers, ships := 0, 0, 0
	var epochDur int64
	for _, rec := range recs {
		switch rec.Kind {
		case "epoch":
			epochs++
			epochDur += rec.Dur
		case "deliver":
			delivers++
			if rec.Type != "relax" {
				t.Fatalf("deliver without resolved type: %+v", rec)
			}
		case "ship":
			ships++
			if rec.Type != "relax" {
				t.Fatalf("ship without resolved type: %+v", rec)
			}
		case "epoch-begin", "epoch-end":
			t.Fatalf("unfolded epoch event leaked into export: %+v", rec)
		}
	}
	if epochs != 4 { // 2 ranks × 2 epochs
		t.Fatalf("epoch spans = %d, want 4", epochs)
	}
	if epochDur <= 0 {
		t.Fatal("epoch spans carry no duration")
	}
	if ships == 0 || delivers != ships {
		t.Fatalf("ships=%d delivers=%d", ships, delivers)
	}

	var jsonl bytes.Buffer
	if err := u.WriteTraceJSONL(&jsonl, "round-trip"); err != nil {
		t.Fatal(err)
	}
	meta2, recs2, err := obs.ReadJSONL(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if meta2.Ranks != meta.Ranks || meta2.Label != "round-trip" || len(recs2) != len(recs) {
		t.Fatalf("round trip: meta %+v, %d records (want %d)", meta2, len(recs2), len(recs))
	}
	for i := range recs {
		if recs2[i] != recs[i] {
			t.Fatalf("record %d changed in round trip: %+v vs %+v", i, recs[i], recs2[i])
		}
	}

	var chrome bytes.Buffer
	if err := u.WriteChromeTrace(&chrome, "round-trip"); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace does not unmarshal: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("empty chrome trace")
	}
	for i, ev := range parsed.TraceEvents {
		for _, field := range []string{"ph", "ts", "pid", "tid", "name"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("chrome event %d missing %q: %v", i, field, ev)
			}
		}
	}
}

// TestMetricsSnapshot checks the Metrics invariants on a timed reliable run:
// histogram counts tie out against the counters, gauges saw traffic, and
// everything is quiet at the end.
func TestMetricsSnapshot(t *testing.T) {
	u := NewUniverse(Config{
		Ranks: 2, ThreadsPerRank: 1, CoalesceSize: 4,
		Timing:    true,
		FaultPlan: &FaultPlan{}, // full reliable protocol, no injected faults
	})
	mt := Register(u, "relax", func(r *Rank, m int64) {})
	u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {
			for i := 0; i < 100; i++ {
				mt.SendTo(r, 1-r.ID(), int64(i))
			}
			ep.Flush()
		})
	})
	m := u.Metrics()
	if m.Counters != u.Stats.Snapshot() {
		t.Fatal("Metrics.Counters disagrees with Stats.Snapshot")
	}
	if len(m.Types) != 1 {
		t.Fatalf("types = %d", len(m.Types))
	}
	ty := m.Types[0]
	if ty.BatchSize.Count != ty.Envelopes {
		t.Fatalf("batch histogram count %d != envelopes %d", ty.BatchSize.Count, ty.Envelopes)
	}
	if ty.BatchSize.Sum != ty.Sent {
		t.Fatalf("batch histogram sum %d != messages sent %d", ty.BatchSize.Sum, ty.Sent)
	}
	if ty.HandlerLatency.Count != ty.Envelopes {
		t.Fatalf("latency histogram count %d != envelopes delivered %d",
			ty.HandlerLatency.Count, ty.Envelopes)
	}
	// Every data envelope was acknowledged exactly once (no faults).
	if m.AckRTT.Count != m.Counters.Envelopes {
		t.Fatalf("ack RTT count %d != envelopes %d", m.AckRTT.Count, m.Counters.Envelopes)
	}
	var inboxPeak int64
	for i, g := range m.InboxDepth {
		inboxPeak += g.Peak
		if g.Value != 0 {
			t.Fatalf("rank %d inbox not drained: %+v", i, g)
		}
	}
	if inboxPeak == 0 {
		t.Fatal("no inbox ever held an envelope")
	}
	for i, g := range m.RelPending {
		if g.Value != 0 || g.Peak == 0 {
			t.Fatalf("rank %d rel-pending gauge %+v (want value 0, peak > 0)", i, g)
		}
	}
	for i, n := range m.CoalesceBuffered {
		if n != 0 {
			t.Fatalf("rank %d still buffers %d messages after Run", i, n)
		}
	}
}
