package am

import (
	"sync/atomic"
	"testing"
)

// benchMsg mirrors the pattern engine's message shape: a handful of live
// word lanes and a mostly-zero Vals array. This is the payload the codec
// fast path was built for.
type benchMsg struct {
	Action int32
	Cond   int16
	Hop    int16
	Dest   uint32
	V      uint32
	U      uint32
	Vals   [12]int64
}

func benchBatch(n int) []benchMsg {
	batch := make([]benchMsg, n)
	for i := range batch {
		batch[i] = benchMsg{Action: 1, Dest: uint32(i * 7), V: uint32(i), U: uint32(i + 1)}
		batch[i].Vals[0] = int64(i) * 3
	}
	return batch
}

func benchCodecs(b *testing.B) map[string]Codec[benchMsg] {
	fixed, err := FixedCodec[benchMsg]()
	if err != nil {
		b.Fatal(err)
	}
	return map[string]Codec[benchMsg]{"fixed": fixed, "gob": GobCodec[benchMsg]()}
}

// BenchmarkCodecEncode measures encoding a coalesced 64-message batch into a
// reused buffer. wire_B reports the encoded size.
func BenchmarkCodecEncode(b *testing.B) {
	batch := benchBatch(64)
	for name, c := range benchCodecs(b) {
		b.Run(name, func(b *testing.B) {
			var buf []byte
			var n int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = c.Append(buf[:0], batch)
				if err != nil {
					b.Fatal(err)
				}
				n = len(buf)
			}
			b.ReportMetric(float64(n), "wire_B")
		})
	}
}

// BenchmarkCodecDecode measures decoding into a reused destination slice —
// the receive-side pool pattern.
func BenchmarkCodecDecode(b *testing.B) {
	batch := benchBatch(64)
	for name, c := range benchCodecs(b) {
		b.Run(name, func(b *testing.B) {
			wire, err := c.Append(nil, batch)
			if err != nil {
				b.Fatal(err)
			}
			dst := make([]benchMsg, 0, len(batch))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := c.Decode(dst[:0], wire)
				if err != nil {
					b.Fatal(err)
				}
				dst = out[:0]
			}
		})
	}
}

// BenchmarkCodecTransport runs a full wire-encoded epoch (encode, checksum,
// decode, pooled buffers, reliable delivery) under each codec, plus the
// trusted in-memory transport as the floor.
func BenchmarkCodecTransport(b *testing.B) {
	const ranks, per = 2, 256
	run := func(b *testing.B, mk func(*MsgType[benchMsg])) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			u := NewUniverse(Config{Ranks: ranks, ThreadsPerRank: 2, CoalesceSize: 32,
				FaultPlan: &FaultPlan{Seed: 1}})
			var sum atomic.Int64
			mt := Register(u, "bench", func(r *Rank, m benchMsg) { sum.Add(m.Vals[0]) })
			if mk != nil {
				mk(mt)
			}
			if err := u.Run(func(r *Rank) {
				r.Epoch(func(ep *Epoch) {
					for j := 0; j < per; j++ {
						mt.SendTo(r, (r.ID()+1)%ranks, benchMsg{V: uint32(j), Vals: [12]int64{int64(j)}})
					}
				})
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("reference", func(b *testing.B) { run(b, nil) })
	b.Run("fixed", func(b *testing.B) { run(b, func(mt *MsgType[benchMsg]) { mt.WithWire() }) })
	b.Run("gob", func(b *testing.B) { run(b, func(mt *MsgType[benchMsg]) { mt.WithGobTransport() }) })
}
