package am

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"declpat/internal/relay"
)

// requireLoopback skips socket tests in environments that forbid binding
// loopback sockets (restricted sandboxes).
func requireLoopback(t *testing.T) {
	t.Helper()
	ln, err := netListenLoopback()
	if err != nil {
		t.Skipf("loopback sockets unavailable: %v", err)
	}
	ln.Close()
}

func netListenLoopback() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

// fastSockOptions returns socket options tuned for tests: millisecond-scale
// heartbeats and reconnect backoff so failure machinery exercises quickly.
// Real-time deadlines stretch by raceTimingScale under the race detector.
func fastSockOptions(network string) SockOptions {
	return SockOptions{
		Network:       network,
		Heartbeat:     5 * time.Millisecond * raceTimingScale,
		Liveness:      25 * time.Millisecond * raceTimingScale,
		ReconnectBase: 2 * time.Millisecond,
		ReconnectMax:  20 * time.Millisecond,
		TickInterval:  200 * time.Microsecond,
	}
}

// runSockChatter runs the two-epoch forwarding workload from fault_test.go
// over the given config (the chatter type registered with the fixed wire
// codec, as the socket backend requires) and returns per-message handle
// counts plus the finished universe.
func runSockChatter(t *testing.T, cfg Config, perRank int) ([]int64, *Universe) {
	t.Helper()
	u := NewUniverse(cfg)
	n := cfg.Ranks
	total := 2 * n * perRank
	counts := make([]int64, total)
	var mt *MsgType[chatterPayload]
	mt = Register(u, "chatter", func(r *Rank, m chatterPayload) {
		atomic.AddInt64(&counts[m.ID], 1)
		if m.Hop == 0 {
			mt.SendTo(r, (r.ID()+1)%r.N(), chatterPayload{ID: m.ID + int64(n*perRank), Hop: 1})
		}
	}).WithWire()
	err := u.Run(func(r *Rank) {
		for epoch := 0; epoch < 2; epoch++ {
			r.Epoch(func(ep *Epoch) {
				base := epoch * n * perRank / 2
				for i := 0; i < perRank/2; i++ {
					id := int64(base + r.ID()*perRank/2 + i)
					mt.SendTo(r, (r.ID()+1+i)%r.N(), chatterPayload{ID: id, Hop: 0})
				}
			})
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return counts, u
}

// TestSockExactlyOnce proves the headline semantics claim of the transport
// seam: the same workload over TCP loopback and Unix-domain sockets, on both
// detectors, handles every message exactly once — identical to the
// in-process backend.
func TestSockExactlyOnce(t *testing.T) {
	requireLoopback(t)
	for _, network := range []string{"tcp", "unix"} {
		for _, det := range []DetectorKind{DetectorAtomic, DetectorFourCounter} {
			t.Run(fmt.Sprintf("%s/%s", network, det), func(t *testing.T) {
				cfg := Config{Ranks: 3, ThreadsPerRank: 2, CoalesceSize: 4, Detector: det,
					Transport: SockTransport(fastSockOptions(network))}
				counts, u := runSockChatter(t, cfg, 48)
				checkExactlyOnce(t, counts, 0)
				m := u.Metrics()
				want := "sock-tcp"
				if network == "unix" {
					want = "sock-unix"
				}
				if m.Transport != want {
					t.Fatalf("Metrics().Transport = %q, want %q", m.Transport, want)
				}
				if m.Counters.WireBytes == 0 {
					t.Fatalf("expected wire bytes on a socket transport, got 0")
				}
			})
		}
	}
}

// TestSockDisconnectReconnect injects connection kills (a one-shot
// disconnect plus a flapping link) and asserts the transport reconnected,
// requeued the frames lost in the dead connections, and still delivered
// everything exactly once.
func TestSockDisconnectReconnect(t *testing.T) {
	requireLoopback(t)
	opt := fastSockOptions("tcp")
	opt.Faults = &SockFaultPlan{
		Disconnects: []SockDisconnect{{Src: 0, Dest: 1, AfterFrames: 3}},
		Flaps:       []SockFlap{{Src: 1, Dest: 2, Period: 5, Count: 3}},
	}
	cfg := Config{Ranks: 3, ThreadsPerRank: 2, CoalesceSize: 4,
		Transport: SockTransport(opt)}
	counts, u := runSockChatter(t, cfg, 64)
	checkExactlyOnce(t, counts, 0)
	s := u.Stats.Snapshot()
	if s.Reconnects < 1 {
		t.Fatalf("expected reconnects after injected disconnects, got %+v", s)
	}
	if s.FramesDropped < 1 {
		t.Fatalf("killed frames must be counted dropped, got %+v", s)
	}
	m := u.Metrics()
	if m.Wire.Reconnects != s.Reconnects || m.Wire.FramesRequeued != s.FramesRequeued {
		t.Fatalf("Metrics().Wire out of sync with counters: %+v vs %+v", m.Wire, s)
	}
}

// sockRingSum runs a one-epoch ring workload over a socket transport with a
// checkpointed per-rank accumulator (handler results survive epoch rollback
// and replay exactly once). gate, when non-nil, is waited on by rank 0's
// epoch body, holding the epoch open until the test has injected its
// failure. Returns the universe and the accumulated total; the fault-free
// expectation is ringWant(ranks, per).
func sockRingSum(t *testing.T, cfg Config, per int, gate <-chan struct{}) (*Universe, int64) {
	t.Helper()
	u := NewUniverse(cfg)
	ck := newSliceCkpt(u.Ranks())
	u.RegisterCheckpointer(ck)
	mt := Register(u, "val", func(r *Rank, m chatterPayload) {
		ck.add(r.ID(), m.ID)
	}).WithWire()
	err := u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {
			for i := 0; i < per; i++ {
				mt.SendTo(r, (r.ID()+1)%r.N(), chatterPayload{ID: int64(i + 1)})
			}
			if gate != nil && r.ID() == 0 {
				<-gate
			}
		})
	})
	if err != nil {
		for i, f := range u.FaultLog() {
			t.Logf("fault[%d]: kind=%s rank=%d epoch=%d detail=%s", i, f.Kind, f.Rank, f.Epoch, f.Detail)
		}
		t.Logf("counters: %+v", u.Stats.Snapshot())
		t.Fatalf("Run: %v", err)
	}
	return u, ck.sum()
}

// TestSockPartitionEscalatesToRecovery black-holes one direction with no
// closing frame: heartbeats vanish too, so the receiver's liveness deadline
// trips, and the sender's retransmits die until the retransmit ceiling
// raises a rank fault. With Recovery on, the epoch must roll back, the
// recovery must heal the partition window, and the replay must produce the
// exact fault-free result — a severed link costs an epoch attempt, never
// correctness and never a hang.
func TestSockPartitionEscalatesToRecovery(t *testing.T) {
	requireLoopback(t)
	opt := fastSockOptions("tcp")
	opt.Heartbeat = 3 * time.Millisecond * raceTimingScale
	opt.Liveness = 15 * time.Millisecond * raceTimingScale
	opt.Faults = &SockFaultPlan{
		Partitions: []SockPartition{{Src: 0, Dest: 1, FromFrame: 1, ToFrame: 0}}, // open-ended
	}
	// The retransmit ceiling (sum of the backoff schedule) must outlast a
	// worst-case reconnect cycle — liveness expiry on the receiver, a write
	// error surfacing on the sender, capped backoff, dial, handshake,
	// requeue — or the post-heal replay re-faults and burns recoveries.
	cfg := Config{Ranks: 2, ThreadsPerRank: 1, CoalesceSize: 4,
		Recovery: true, MaxRecoveries: 20,
		FaultPlan: &FaultPlan{RetransmitBase: 2, MaxAttempts: 12, BackoffJitter: 0.25},
		Transport: SockTransport(opt)}
	u, got := sockRingSum(t, cfg, 64, nil)
	if want := ringWant(2, 64); got != want {
		t.Fatalf("ring sum = %d after partition recovery, want %d", got, want)
	}
	s := u.Stats.Snapshot()
	if s.Recoveries < 1 || s.EpochAborts < 1 {
		t.Fatalf("open-ended partition must force an epoch rollback, got %+v", s)
	}
	if s.HeartbeatMisses < 1 {
		t.Fatalf("a black-holed direction must trip the liveness deadline, got %+v", s)
	}
	if s.FramesDropped < 1 {
		t.Fatalf("black-holed frames must be counted dropped, got %+v", s)
	}
}

// TestSockHeartbeatsKeepQuietLinksAlive holds an epoch open with no traffic
// for several liveness windows: heartbeats alone must keep every connection
// alive (no misses, no reconnects).
func TestSockHeartbeatsKeepQuietLinksAlive(t *testing.T) {
	requireLoopback(t)
	opt := fastSockOptions("tcp")
	cfg := Config{Ranks: 2, ThreadsPerRank: 1, Transport: SockTransport(opt)}
	u := NewUniverse(cfg)
	mt := Register(u, "ping", func(r *Rank, m chatterPayload) {}).WithWire()
	err := u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {
			mt.SendTo(r, (r.ID()+1)%r.N(), chatterPayload{ID: int64(r.ID())})
			time.Sleep(4 * opt.Liveness)
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	s := u.Stats.Snapshot()
	if s.HeartbeatMisses != 0 || s.Reconnects != 0 {
		t.Fatalf("quiet links must stay alive on heartbeats alone, got %+v", s)
	}
}

// killableRelay is an in-process stand-in for a declpat-worker process: it
// serves the relay protocol on a TCP listener and can be killed (listener
// and every spliced connection closed at once) and later restarted on the
// same address.
type killableRelay struct {
	addr string

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
}

func startKillableRelay(t *testing.T, addr string) *killableRelay {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relay listen: %v", err)
	}
	kr := &killableRelay{addr: ln.Addr().String(), ln: ln, conns: make(map[net.Conn]struct{})}
	go relay.Serve(trackListener{ln, kr})
	return kr
}

// kill severs the relay: no new tunnels, and every live tunnel's client side
// is closed (the relay's splice then closes the target side), so the
// transport sees the same outage a killed worker process causes.
func (kr *killableRelay) kill() {
	kr.mu.Lock()
	defer kr.mu.Unlock()
	kr.ln.Close()
	for c := range kr.conns {
		c.Close()
	}
	kr.conns = make(map[net.Conn]struct{})
}

// restart brings a fresh relay up on the same address (SO_REUSEADDR makes
// the rebind race-free on loopback). Safe to call from any goroutine: test
// failures are reported with Errorf, never FailNow.
func (kr *killableRelay) restart(t *testing.T) {
	ln, err := net.Listen("tcp", kr.addr)
	if err != nil {
		t.Errorf("relay restart on %s: %v", kr.addr, err)
		return
	}
	kr.mu.Lock()
	kr.ln = ln
	kr.conns = make(map[net.Conn]struct{})
	kr.mu.Unlock()
	go relay.Serve(trackListener{ln, kr})
}

// trackListener records accepted connections on the relay for kill().
type trackListener struct {
	net.Listener
	kr *killableRelay
}

func (tl trackListener) Accept() (net.Conn, error) {
	c, err := tl.Listener.Accept()
	if err == nil {
		tl.kr.mu.Lock()
		tl.kr.conns[c] = struct{}{}
		tl.kr.mu.Unlock()
	}
	return c, err
}

// TestSockRelayKillEscalatesAndRecovers is the reconnect-budget acceptance
// test: every inter-rank connection runs through a relay (the in-process
// twin of cmd/declpat-worker), which is killed mid-epoch. Rank 0 then sends
// a burst that can only cross the dead relay, so reconnect attempts fail
// until the budget is exhausted, which must escalate to a FaultTransport
// rank fault and checkpoint/restart — not a hung epoch. A fresh relay then
// comes up on the same address and a replay attempt reconnects through it
// and completes exactly once.
func TestSockRelayKillEscalatesAndRecovers(t *testing.T) {
	requireLoopback(t)
	kr := startKillableRelay(t, "")
	defer kr.kill()

	opt := fastSockOptions("tcp")
	opt.Relay = "tcp://" + kr.addr
	opt.ReconnectBudget = 3
	cfg := Config{Ranks: 2, ThreadsPerRank: 1, CoalesceSize: 4,
		Recovery: true, MaxRecoveries: 1000,
		FaultPlan: &FaultPlan{RetransmitBase: 2, MaxAttempts: 12, BackoffJitter: 0.25},
		Transport: SockTransport(opt)}

	// Event-driven failure injection: rank 0 signals once its epoch is live
	// (so the kill always lands after the eager dials), the relay dies, and
	// only then does rank 0 send its second burst — those frames are
	// guaranteed to face a dead relay no matter how the scheduler raced the
	// first batch's delivery.
	const per, burst = 64, 16
	var startedOnce sync.Once
	started := make(chan struct{})
	gate := make(chan struct{})
	go func() {
		<-started
		kr.kill()
		close(gate)
		time.Sleep(60 * time.Millisecond * raceTimingScale)
		kr.restart(t)
	}()

	u := NewUniverse(cfg)
	ck := newSliceCkpt(u.Ranks())
	u.RegisterCheckpointer(ck)
	mt := Register(u, "val", func(r *Rank, m chatterPayload) {
		ck.add(r.ID(), m.ID)
	}).WithWire()
	err := u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {
			for i := 1; i <= per; i++ {
				mt.SendTo(r, (r.ID()+1)%r.N(), chatterPayload{ID: int64(i)})
			}
			if r.ID() == 0 {
				startedOnce.Do(func() { close(started) })
				<-gate
				for i := per + 1; i <= per+burst; i++ {
					mt.SendTo(r, 1, chatterPayload{ID: int64(i)})
				}
			}
		})
	})
	if err != nil {
		for i, f := range u.FaultLog() {
			t.Logf("fault[%d]: kind=%s rank=%d epoch=%d detail=%s", i, f.Kind, f.Rank, f.Epoch, f.Detail)
		}
		t.Logf("counters: %+v", u.Stats.Snapshot())
		t.Fatalf("Run: %v", err)
	}
	want := ringWant(2, per) + int64(burst)*int64(2*per+burst+1)/2
	if got := ck.sum(); got != want {
		t.Fatalf("ring sum = %d after relay kill + recovery, want %d", got, want)
	}
	s := u.Stats.Snapshot()
	if s.Recoveries < 1 || s.EpochAborts < 1 {
		t.Fatalf("a dead relay must cost an epoch attempt, got %+v", s)
	}
	if s.Reconnects < 1 {
		t.Fatalf("the replay must have reconnected through the fresh relay, got %+v", s)
	}
	var sawTransportFault bool
	for _, f := range u.FaultLog() {
		if f.Kind == FaultTransport {
			sawTransportFault = true
		}
	}
	if !sawTransportFault {
		t.Fatalf("exhausted reconnect budget must raise FaultTransport; fault log: %v", u.FaultLog())
	}
}
