package am

import "fmt"

// FaultPlan configures deterministic fault injection on the simulated
// network. Setting a non-nil FaultPlan on Config switches the transport into
// *reliable* mode: every shipped envelope carries a per-(src, dest, type)
// sequence number, the receiver deduplicates and acknowledges envelopes, and
// the sender retransmits unacknowledged envelopes with exponential backoff.
// With a nil FaultPlan the transport runs in the original trusted mode
// (direct hand-off, zero protocol overhead).
//
// Fault decisions are *stateless*: whether transmission attempt a of
// envelope seq on link (src, dest, type) is dropped, duplicated, delayed, or
// corrupted is a pure function of (Seed, link, seq, a). This makes the fault
// schedule on the data path reproducible for a fixed seed regardless of
// goroutine interleaving — the k-th envelope a link ships always suffers the
// same fate, and a retransmit (a new attempt) rolls fresh faults, so
// delivery eventually succeeds.
//
// All probabilities are in [0, 1]. Zero-valued rates inject nothing but
// still exercise the full reliable-delivery protocol (sequence numbers,
// acks, dedup), which is how the protocol's overhead is measured (E16).
type FaultPlan struct {
	// Seed drives every fault decision. Two universes configured with the
	// same plan see the same per-link fault schedule.
	Seed uint64
	// Drop is the probability that a transmitted envelope vanishes.
	// Acknowledgements are dropped with the same probability (a lost ack
	// forces a retransmit that the receiver suppresses as a duplicate).
	Drop float64
	// Dup is the probability that the network delivers an envelope twice.
	Dup float64
	// Delay is the probability that an envelope is held back by the
	// network and released out of order (after ~DelayTicks sender progress
	// ticks), reordering it behind envelopes shipped later.
	Delay float64
	// DelayTicks is the mean hold time of a delayed envelope, measured in
	// sender progress ticks (a tick elapses each time the sending rank
	// polls its links). 0 selects the default (8).
	DelayTicks int
	// Corrupt is the probability that the payload of an envelope of a
	// wire (codec-equipped) type is corrupted in flight (a byte of the
	// encoded stream is flipped after the wire checksum is computed, so the
	// receiver detects the damage, discards the envelope, and lets the
	// retransmit path recover). Types without a wire codec ship by
	// reference and cannot be corrupted.
	Corrupt float64
	// RetransmitBase is the initial retransmit timeout in sender progress
	// ticks; attempt n waits RetransmitBase << min(n, 6) ticks. 0 selects
	// the default (8).
	RetransmitBase int
	// BackoffJitter, when in (0, 1], spreads every retransmit timeout by a
	// deterministic factor drawn uniformly from
	// [1-BackoffJitter, 1+BackoffJitter) — a pure function of
	// (Seed, link, seq, attempt), so schedules stay reproducible. 0 (the
	// default) keeps the exact exponential timeouts; socket transports
	// default it on (via their synthesized plan) to desynchronize the
	// retransmit burst that follows a reconnect.
	BackoffJitter float64
	// MaxAttempts bounds transmissions per envelope; exceeding it raises a
	// structured LinkDead rank fault (at Drop = 0.2 the default ceiling of
	// 30 is reached with probability 0.2^30 ≈ 1e-21 per envelope). With
	// Config.Recovery the damaged epoch rolls back to its checkpoint and
	// replays; without it Universe.Run returns the fault as an error.
	// 0 selects the default (30).
	MaxAttempts int
	// Crashes injects deterministic crash-stop rank failures: each entry
	// kills one rank during one epoch (at entry, or after its k-th handled
	// message). A crashed rank stops handling, drops its inbox, and goes
	// silent; peers observe it only through missing acknowledgements. Each
	// entry fires at most once per run. Requires Config.Recovery for the
	// run to survive.
	Crashes []Crash
	// DeadLinks severs directed links for one epoch each: every
	// transmission (data and acks) from Src to Dest during that epoch
	// vanishes, so the sender's retransmit ceiling eventually raises a
	// LinkDead fault. A severed link is healed when the epoch recovers,
	// making link death deterministic *and* recoverable.
	DeadLinks []DeadLink
}

// Crash is one injected crash-stop failure: rank Rank dies during epoch
// Epoch (the universe-wide epoch sequence number, starting at 0).
type Crash struct {
	Rank  int
	Epoch int64
	// AfterHandled delays the crash until the rank has handled this many
	// messages within the epoch (a mid-epoch crash, with handlers half
	// applied); <= 0 crashes at epoch entry, before the body runs.
	AfterHandled int
}

// DeadLink severs the directed link Src→Dest for the duration of epoch
// Epoch (until the epoch's recovery heals it).
type DeadLink struct {
	Src, Dest int
	Epoch     int64
}

func (fp *FaultPlan) withDefaults() *FaultPlan {
	c := *fp
	if c.DelayTicks <= 0 {
		c.DelayTicks = 8
	}
	if c.RetransmitBase <= 0 {
		c.RetransmitBase = 8
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 30
	}
	for _, p := range []float64{c.Drop, c.Dup, c.Delay, c.Corrupt, c.BackoffJitter} {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("am: FaultPlan probability %v outside [0,1]", p))
		}
	}
	return &c
}

// defaultSockBackoffJitter is the BackoffJitter a socket transport's
// synthesized fault plan uses (see NewUniverse).
const defaultSockBackoffJitter = 0.25

// Fault decision kinds, mixed into the hash so each decision on the same
// (link, seq, attempt) is independent.
const (
	faultDrop = iota + 1
	faultDup
	faultDelay
	faultCorrupt
	faultCorruptByte
	faultDelayTicks
	faultAckDrop
	faultBackoffJitter
)

// splitmix64 is the SplitMix64 output function: a bijective avalanche mix
// used here as a keyed hash over fault-decision coordinates.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll returns a uniform float64 in [0, 1) for one fault decision.
func (fp *FaultPlan) roll(kind, src, dest, typ int, seq uint64, attempt int) float64 {
	h := splitmix64(fp.Seed ^ splitmix64(uint64(kind)<<56|uint64(src)<<42|uint64(dest)<<28|uint64(typ)<<14|uint64(attempt)) ^ splitmix64(seq))
	return float64(h>>11) / (1 << 53)
}

// rollN returns a deterministic integer in [1, n] for one fault decision.
func (fp *FaultPlan) rollN(kind, src, dest, typ int, seq uint64, attempt, n int) int {
	if n <= 1 {
		return 1
	}
	return 1 + int(uint64(fp.roll(kind, src, dest, typ, seq, attempt)*float64(n)))%n
}
