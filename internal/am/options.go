package am

import (
	"time"

	"declpat/internal/obs"
)

// Option configures a Universe at construction. Options are applied in order
// over the defaults, so later options win; the zero behaviour of every knob
// is documented on the corresponding Config field.
//
// New(ranks, opts...) is the preferred constructor. The Config struct form
// (NewUniverse) keeps working for existing callers, but it is a grow-only
// literal — every new knob is a new field — whereas options let call sites
// name exactly the knobs they set:
//
//	u := am.New(4, am.WithThreads(2), am.WithFaultPlan(&am.FaultPlan{Drop: 0.05}))
type Option func(*Config)

// New creates a simulated machine of `ranks` ranks configured by opts.
func New(ranks int, opts ...Option) *Universe {
	cfg := Config{Ranks: ranks}
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewUniverse(cfg)
}

// WithConfig applies a whole Config value, keeping the ranks passed to New.
// It is the migration bridge for call sites (the experiment harness in
// particular) that still assemble a Config programmatically before handing it
// to the constructor; new code should name individual With* options instead.
func WithConfig(cfg Config) Option {
	return func(c *Config) {
		ranks := c.Ranks
		*c = cfg
		c.Ranks = ranks
	}
}

// WithThreads sets the number of message-handler threads per rank
// (Config.ThreadsPerRank). 0 gives deterministic poll-driven handling.
func WithThreads(n int) Option { return func(c *Config) { c.ThreadsPerRank = n } }

// WithCoalesce sets the default coalescing factor (Config.CoalesceSize).
func WithCoalesce(n int) Option { return func(c *Config) { c.CoalesceSize = n } }

// WithDetector selects the termination-detection protocol (Config.Detector).
func WithDetector(d DetectorKind) Option { return func(c *Config) { c.Detector = d } }

// WithFaultPlan switches the transport into reliable mode and injects the
// plan's faults (Config.FaultPlan).
func WithFaultPlan(fp *FaultPlan) Option { return func(c *Config) { c.FaultPlan = fp } }

// WithRecovery enables epoch-granular checkpoint/restart (Config.Recovery).
func WithRecovery() Option { return func(c *Config) { c.Recovery = true } }

// WithMaxRecoveries bounds recovery attempts per epoch
// (Config.MaxRecoveries).
func WithMaxRecoveries(n int) Option { return func(c *Config) { c.MaxRecoveries = n } }

// WithTraceCapacity enables event tracing with per-rank rings totalling n
// events (Config.TraceCapacity).
func WithTraceCapacity(n int) Option { return func(c *Config) { c.TraceCapacity = n } }

// WithTraceRingSize pins each rank's trace ring to exactly n events
// (Config.TraceRingSize).
func WithTraceRingSize(n int) Option { return func(c *Config) { c.TraceRingSize = n } }

// WithLineage sets the causal-lineage mode (Config.Lineage).
func WithLineage(m LineageMode) Option { return func(c *Config) { c.Lineage = m } }

// WithTiming enables clock-based latency histograms (Config.Timing).
func WithTiming() Option { return func(c *Config) { c.Timing = true } }

// WithUnshardedStats collapses the metric shards into one
// (Config.UnshardedStats; measurement only — see E17).
func WithUnshardedStats() Option { return func(c *Config) { c.UnshardedStats = true } }

// WithWatchdog arms the stuck-epoch watchdog (Config.Watchdog).
func WithWatchdog(d time.Duration) Option { return func(c *Config) { c.Watchdog = d } }

// WithTransport selects the message transport backend (Config.Transport):
// ChanTransport (the in-process default) or SockTransport (length-prefixed
// CRC-sealed frames over TCP or Unix-domain sockets, with handshakes,
// heartbeats, and automatic reconnect). A transport value is single-use —
// construct one per universe.
func WithTransport(t Transport) Option { return func(c *Config) { c.Transport = t } }

// WithControlPlane runs the universe as one worker process of a
// multi-process SPMD fleet (Config.MP): it hosts global ranks [mp.Lo,
// mp.Hi) and carries barriers, all-reduces, termination-detector waves and
// fault/recovery coordination over mp.Plane instead of process-local shared
// memory. Requires a socket transport for the data plane, forces the
// four-counter detector (the atomic detector reads process-local counters),
// and is mutually exclusive with Config.Recovery — faults abort the fleet
// and the launcher drives checkpoint/restart across processes instead.
func WithControlPlane(mp MPConfig) Option { return func(c *Config) { c.MP = &mp } }

// WithFlightRecorder attaches an always-on black-box flight recorder
// (Config.Flight): landmark events — epoch boundaries, phase transitions,
// faults, recovery, control-plane trouble — are mirrored into its bounded
// rings even when full tracing is off, and the substrate persists it at
// epoch commits and on every fault path so a killed process leaves a
// postmortem dump at most one epoch stale.
func WithFlightRecorder(f *obs.FlightRecorder) Option {
	return func(c *Config) { c.Flight = f }
}
