package am

import (
	"sync/atomic"
	"testing"
)

func TestGobTransportDeliversIntact(t *testing.T) {
	type payload struct {
		ID   uint64
		Vals [4]int64
		Tag  string
	}
	u := NewUniverse(Config{Ranks: 2, ThreadsPerRank: 1, CoalesceSize: 8})
	var sum atomic.Int64
	var handled atomic.Int64
	mt := Register(u, "wire", func(r *Rank, m payload) {
		handled.Add(1)
		sum.Add(int64(m.ID) + m.Vals[0] + m.Vals[3])
		if m.Tag != "x" {
			t.Errorf("tag corrupted: %q", m.Tag)
		}
	}).WithGobTransport()
	const per = 100
	u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {
			for i := 0; i < per; i++ {
				mt.SendTo(r, 1-r.ID(), payload{
					ID: uint64(i), Vals: [4]int64{int64(i), 0, 0, 7}, Tag: "x",
				})
			}
		})
	})
	if handled.Load() != 2*per {
		t.Fatalf("handled %d", handled.Load())
	}
	want := int64(0)
	for i := 0; i < per; i++ {
		want += 2 * (int64(i) + int64(i) + 7)
	}
	if sum.Load() != want {
		t.Fatalf("sum=%d want %d (payload corrupted in transit)", sum.Load(), want)
	}
	if u.Stats.WireBytes() == 0 {
		t.Fatal("no wire bytes accounted")
	}
}

func TestGobTransportWithReduction(t *testing.T) {
	type upd struct {
		K uint64
		V int64
	}
	u := NewUniverse(Config{Ranks: 2, ThreadsPerRank: 1, CoalesceSize: 1 << 20})
	var handled atomic.Int64
	mt := Register(u, "upd", func(r *Rank, m upd) { handled.Add(1) }).
		WithGobTransport().
		WithReduction(
			func(m upd) uint64 { return m.K },
			func(old, in upd) (upd, bool) { return old, false },
		)
	u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {
			if r.ID() == 0 {
				for i := 0; i < 50; i++ {
					mt.SendTo(r, 1, upd{K: uint64(i % 10), V: int64(i)})
				}
			}
		})
	})
	if handled.Load() != 10 {
		t.Fatalf("handled %d, want 10 (reduction through wire transport)", handled.Load())
	}
}
