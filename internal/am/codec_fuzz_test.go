package am

import (
	"math"
	"reflect"
	"testing"
)

// FuzzFixedCodecDecode throws arbitrary bytes at the fixed codec's decoder.
// The invariant under attack: Decode either returns an error or a batch that
// re-encodes and re-decodes to the same values — never a panic, never an
// out-of-bounds read, never a fabricated value that doesn't survive a round
// trip. (Byte-level canonicality is NOT asserted: binary.Uvarint accepts
// non-minimal varints, so distinct byte strings can decode to equal values.)
func FuzzFixedCodecDecode(f *testing.F) {
	c, err := FixedCodec[codecPayload]()
	if err != nil {
		f.Fatal(err)
	}
	valid, _ := c.Append(nil, samplePayloads())
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{fixedWireVersion})
	f.Add([]byte{fixedWireVersion, 0x00})
	f.Add([]byte{0x02, 0x01})
	f.Add(valid[:len(valid)-1])
	f.Add(append(append([]byte{}, valid...), 0xff))
	f.Fuzz(func(t *testing.T, b []byte) {
		batch, err := c.Decode(nil, b)
		if err != nil {
			return
		}
		b2, err := c.Append(nil, batch)
		if err != nil {
			t.Fatalf("re-encode of decoded batch failed: %v", err)
		}
		batch2, err := c.Decode(nil, b2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(batch) != len(batch2) {
			t.Fatalf("round trip changed count: %d vs %d", len(batch), len(batch2))
		}
		for i := range batch {
			if !payloadBitsEqual(batch[i], batch2[i]) {
				t.Fatalf("round trip diverged at message %d:\n first %+v\nsecond %+v",
					i, batch[i], batch2[i])
			}
		}
	})
}

// payloadBitsEqual compares two payloads with float lanes compared by bit
// pattern (NaN-safe; == and reflect.DeepEqual treat NaN as unequal to
// itself).
func payloadBitsEqual(a, b codecPayload) bool {
	af32, bf32 := math.Float32bits(a.F32), math.Float32bits(b.F32)
	af64, bf64 := math.Float64bits(a.F64), math.Float64bits(b.F64)
	a.F32, b.F32, a.F64, b.F64 = 0, 0, 0, 0
	return a == b && af32 == bf32 && af64 == bf64
}

// FuzzFixedCodecRoundTrip drives the encoder with fuzz-chosen field values
// (including a dirty recycled destination) and asserts exact value recovery.
func FuzzFixedCodecRoundTrip(f *testing.F) {
	c, err := FixedCodec[codecPayload]()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint8(0), uint64(0), int64(0), false, 0.0, uint8(1))
	f.Add(uint8(255), uint64(math.MaxUint64), int64(math.MinInt64), true, math.Inf(-1), uint8(64))
	f.Add(uint8(7), uint64(1)<<33, int64(-1), true, math.Pi, uint8(3))
	f.Fuzz(func(t *testing.T, u8 uint8, u64 uint64, i64 int64, b bool, fl float64, n uint8) {
		count := int(n%65) + 1
		batch := make([]codecPayload, count)
		for i := range batch {
			m := &batch[i]
			m.U8 = u8 + uint8(i)
			m.U32 = uint32(u64 >> 16)
			m.U64 = u64 ^ uint64(i)
			m.I16 = int16(i64)
			m.I64 = i64 - int64(i)
			m.B = b != (i%2 == 0)
			m.F32 = float32(fl)
			m.F64 = fl * float64(i)
			m.Arr = [3]int64{i64, -i64, int64(i)}
			m.Nest.V = uint32(u64)
			m.Nest.W = int8(i64 >> 8)
		}
		enc, err := c.Append(nil, batch)
		if err != nil {
			t.Fatal(err)
		}
		dirty := make([]codecPayload, 4)
		for i := range dirty {
			dirty[i] = codecPayload{U64: ^uint64(0), B: true}
		}
		got, err := c.Decode(dirty[:0], enc)
		if err != nil {
			t.Fatalf("decode of valid encoding failed: %v", err)
		}
		// NaN != NaN breaks DeepEqual; compare through bit patterns.
		for i := range batch {
			w, g := batch[i], got[i]
			wf32, gf32 := math.Float32bits(w.F32), math.Float32bits(g.F32)
			wf64, gf64 := math.Float64bits(w.F64), math.Float64bits(g.F64)
			w.F32, g.F32, w.F64, g.F64 = 0, 0, 0, 0
			if w != g || wf32 != gf32 || wf64 != gf64 {
				t.Fatalf("message %d mismatch:\n got %+v (f32=%x f64=%x)\nwant %+v (f32=%x f64=%x)",
					i, g, gf32, gf64, w, wf32, wf64)
			}
		}
	})
}

// FuzzGobCodecDecode asserts the gob fallback also converts arbitrary bytes
// into errors, not panics, and that successful decodes survive a round trip.
func FuzzGobCodecDecode(f *testing.F) {
	type refPayload struct {
		ID  uint64
		Tag string
		Vs  []int64
	}
	c := GobCodec[refPayload]()
	valid, _ := c.Append(nil, []refPayload{{ID: 9, Tag: "seed", Vs: []int64{1, -2}}, {}})
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Add(valid[:len(valid)/2])
	f.Fuzz(func(t *testing.T, b []byte) {
		batch, err := c.Decode(nil, b)
		if err != nil {
			return
		}
		b2, err := c.Append(nil, batch)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		batch2, err := c.Decode(nil, b2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(batch, batch2) {
			t.Fatalf("round trip diverged")
		}
	})
}
