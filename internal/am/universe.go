package am

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"declpat/internal/obs"
)

// DetectorKind selects the termination-detection protocol used to end epochs.
type DetectorKind int

const (
	// DetectorAtomic uses a shared message counter (incremented at send,
	// decremented after handler completion). It is the fast path available
	// because the simulated ranks share an address space.
	DetectorAtomic DetectorKind = iota
	// DetectorFourCounter runs a Mattern-style four-counter protocol with
	// explicit control messages: rank 0 repeatedly probes every rank for
	// (sent, received, active) counters and terminates the epoch after two
	// consecutive identical quiescent snapshots. This is what a real
	// distributed deployment would run; it exists both for fidelity and so
	// that its overhead can be measured (experiment E8).
	DetectorFourCounter
)

func (d DetectorKind) String() string {
	switch d {
	case DetectorAtomic:
		return "atomic"
	case DetectorFourCounter:
		return "four-counter"
	}
	return fmt.Sprintf("DetectorKind(%d)", int(d))
}

// LineageMode controls causal message lineage: stamping every sent message
// with the id of the handler invocation that produced it (sends issued by an
// epoch body carry a synthetic per-(epoch, rank) root id). Lineage rides the
// envelope through coalescing, retransmission, and recovery replay, and —
// when tracing is enabled — every handler invocation records a TraceHandler
// span carrying its own id and its parent's, from which internal/obs
// reconstructs the per-epoch causal DAG and its critical path.
type LineageMode int

const (
	// LineageAuto (the default) enables lineage exactly when tracing is
	// enabled: a traced run gets causal attribution for free, an untraced
	// run pays nothing.
	LineageAuto LineageMode = iota
	// LineageOn forces lineage stamping even without tracing (ids propagate
	// through the message plane but no handler events are recorded); mainly
	// useful for measuring the stamping cost in isolation.
	LineageOn
	// LineageOff disables lineage stamping even in traced runs.
	LineageOff
)

func (m LineageMode) String() string {
	switch m {
	case LineageAuto:
		return "auto"
	case LineageOn:
		return "on"
	case LineageOff:
		return "off"
	}
	return fmt.Sprintf("LineageMode(%d)", int(m))
}

// maxTraceRingSize bounds Config.TraceRingSize: beyond 1<<26 events per rank
// (~4 GiB of TraceEvent per rank) a configuration is assumed to be a units
// mistake rather than an intent.
const maxTraceRingSize = 1 << 26

// Config configures a simulated machine. New callers should prefer the
// functional-options constructor New (options.go), which names exactly the
// knobs a call site sets; the struct form remains supported for existing
// code and for programmatic construction.
type Config struct {
	// Ranks is the number of simulated distributed-memory nodes (>= 1).
	Ranks int
	// ThreadsPerRank is the number of message-handler threads per rank.
	// 0 is allowed: handlers then run only when a rank polls (Flush,
	// TryFinish, or end-of-epoch progress), which gives deterministic
	// single-threaded execution useful in tests.
	ThreadsPerRank int
	// CoalesceSize is the default number of messages buffered per
	// (type, destination) before an envelope is shipped. 1 disables
	// coalescing. 0 selects the default (64).
	CoalesceSize int
	// Detector selects the termination-detection protocol.
	Detector DetectorKind
	// TraceCapacity enables event tracing with per-rank rings totalling
	// this many events (0 disables tracing). Traced events carry monotonic
	// timestamps; epoch and delivery events become spans.
	TraceCapacity int
	// TraceRingSize, when > 0, sets each rank's trace ring to exactly this
	// many events, overriding the TraceCapacity/Ranks split (and enabling
	// tracing by itself). The default — TraceRingSize 0 with TraceCapacity
	// set — gives each rank TraceCapacity/Ranks events (minimum 1). Use it
	// to bound memory on lineage-heavy runs: a full ring overwrites its
	// oldest events, which the DAG reconstructor reports as orphaned
	// parents rather than failing. Negative values, or values above 2^26
	// events per rank, are configuration errors and panic in NewUniverse.
	TraceRingSize int
	// Lineage controls causal message lineage (see LineageMode). The
	// default, LineageAuto, turns lineage on exactly when tracing is
	// enabled.
	Lineage LineageMode
	// Timing enables clock-based latency histograms: handler latency per
	// message type, (in reliable mode) ack round-trip time, and the
	// per-rank per-phase epoch timers (phase.go). Off by default because it
	// adds two monotonic clock reads per delivered envelope (and per phase
	// scope) to the hot path.
	Timing bool
	// UnshardedStats collapses the per-rank metric shards into a single
	// shard, reproducing the old globally-shared-atomics layout where
	// every rank contends on the same cache lines. It exists so the cost
	// of that contention can be measured (experiment E17); leave it off.
	UnshardedStats bool
	// FaultPlan, when non-nil, switches the transport into reliable mode
	// (sequence numbers, acks, dedup, retransmit — see fault.go and
	// reliable.go) and injects the configured faults. A zero-valued plan
	// injects nothing but still runs the full protocol.
	FaultPlan *FaultPlan
	// Recovery enables epoch-granular checkpoint/restart (see recovery.go):
	// state registered via RegisterCheckpointer is snapshotted at every
	// epoch boundary, and a rank fault (injected crash, contained handler
	// panic, dead link) aborts the damaged epoch, rolls every rank back to
	// the checkpoint, restarts the dead rank, and replays. Without it a
	// rank fault makes Universe.Run return an error.
	Recovery bool
	// MaxRecoveries bounds recovery attempts per epoch; a fault that
	// persists past the budget (e.g. a deterministic handler panic that
	// recurs on every replay) fails the run. 0 selects the default (8).
	MaxRecoveries int
	// Watchdog arms the stuck-epoch watchdog: when no substrate progress
	// (deliveries, flushes, detector transitions) is observed for this
	// long, the run fails with a diagnostic dump of the detector counters
	// and trace rings instead of hanging. 0 disables it. Set it well above
	// the longest legitimate gap between deliveries (long-running handler
	// bodies included), and leave it off for latency-insensitive batch
	// work guarded by an external test timeout.
	Watchdog time.Duration
	// Transport selects the message transport backend (see transport.go).
	// nil selects the in-process channel backend (ChanTransport), the
	// original zero-copy behavior. A backend that can lose frames (the
	// socket backend) forces reliable mode: when FaultPlan is nil a
	// zero-valued plan (full protocol, no injected faults) is synthesized.
	Transport Transport
	// MP, when non-nil, runs this universe as one worker process of a
	// multi-process SPMD fleet (see controlplane.go and WithControlPlane):
	// the universe hosts only ranks [MP.Lo, MP.Hi) and carries every global
	// control operation over MP.Plane. Forces the four-counter detector and
	// is mutually exclusive with Recovery.
	MP *MPConfig
	// Flight, when non-nil, attaches a black-box flight recorder (see
	// internal/obs and flight.go): low-rate landmark events — epoch
	// boundaries, phase transitions, faults, recovery — are mirrored into
	// its bounded rings regardless of whether tracing is on, and the
	// substrate persists it at epoch commits and on every fault path.
	Flight *obs.FlightRecorder
}

func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.ThreadsPerRank < 0 {
		c.ThreadsPerRank = 0
	}
	if c.CoalesceSize <= 0 {
		c.CoalesceSize = 64
	}
	if c.Transport == nil {
		c.Transport = ChanTransport()
	}
	return c
}

// perRankRing resolves the per-rank trace-ring size: an explicit
// TraceRingSize wins, otherwise TraceCapacity is split evenly across ranks.
// 0 means tracing is disabled.
func (c Config) perRankRing() int {
	if c.TraceRingSize > 0 {
		return c.TraceRingSize
	}
	if c.TraceCapacity <= 0 {
		return 0
	}
	per := c.TraceCapacity / c.Ranks
	if per < 1 {
		per = 1
	}
	return per
}

// envelope is one coalesced batch of messages of a single type, shipped
// between two ranks.
type envelope struct {
	typeID int32  // registered message type, or ackTypeID for acks
	src    int32  // sending rank
	seq    uint64 // per-(src, dest, type) sequence number (reliable mode)
	gen    uint64 // epoch generation at creation; stale generations are discarded
	data   any    // []T, wirePayload (codec-equipped wire types), or ackBody
	// qid is the query context the envelope belongs to (0 outside any query
	// epoch — see Rank.EpochCtx). The epoch guarantee means an envelope is
	// always delivered inside the epoch that created it, so the receiver
	// validates qid against the universe's current query: a mismatch is
	// cross-talk between multiplexed queries and is never delivered. Acks are
	// exempt (a redundant duplicate ack is the one legitimate straggler
	// across an epoch boundary).
	qid int64
	// lin carries one causal-lineage id per message of the batch, aligned
	// with data (nil when lineage is off). Read-only once shipped, so
	// duplicates and retransmits share the slice safely.
	lin []uint64
}

// Universe is a simulated distributed machine: a set of ranks connected by
// message queues. Register all message types before calling Run.
type Universe struct {
	cfg    Config
	Stats  Stats
	ranks  []*Rank
	types  []*msgType
	frozen atomic.Bool

	// fp is the defaulted fault plan; nil selects the trusted transport.
	fp *FaultPlan

	// net is the configured transport backend; tickIntNs its retransmit-
	// clock pacing interval (0 = advance the tick on every poll).
	net      Transport
	tickIntNs int64

	// pending counts user messages sent but not yet fully handled.
	// Maintained in all detector modes; consulted only by DetectorAtomic.
	pending atomic.Int64

	// epochState is the shared epoch state machine (running / finished /
	// aborting — see recovery.go); epochGen numbers recovery generations
	// so envelopes created before a rollback are recognizably stale; and
	// epochSeq numbers committed epochs.
	epochState atomic.Int32
	epochGen   atomic.Uint64
	epochSeq   atomic.Int64

	// curQuery is the query context of the epoch currently running (0 for
	// plain untagged epochs). Every rank stores its nextQID here at epoch
	// entry — a collective EpochCtx call stores the same value from every
	// rank, and the opening barrier orders the stores before any send — so
	// sends stamp envelopes with it, deliveries validate against it, trace
	// events attribute to it, and detector-wave replies echo it.
	curQuery atomic.Int64

	barrier *Barrier
	coll    collectives
	tracer  *tracer
	// flight is the always-on black box (nil unless Config.Flight): trace
	// and phase paths mirror landmark events into it even when the trace
	// rings are off. See flight.go.
	flight *obs.FlightRecorder

	// mp is the multi-process control-plane state (nil in single-process
	// mode — the overwhelmingly common case, so every mp hook is a single
	// nil check on the hot path).
	mp *mpState

	// lineage is the resolved Config.Lineage decision (LineageAuto folds to
	// whether tracing is on); when set, every send is stamped with its
	// causal parent and every handler invocation gets a lineage id.
	lineage bool

	// Rank-fault containment and checkpoint/restart state (recovery.go).
	// ckpts[rank][i] is checkpointers[i]'s snapshot for rank, retaken at
	// every epoch boundary when Config.Recovery is on. faultMu guards
	// fault (the aborting epoch's deciding fault), faultLog, and runErr;
	// recoveries (rank-0-only) counts rollbacks of the current epoch.
	checkpointers []Checkpointer
	ckpts         [][]any
	faultMu       sync.Mutex
	fault         *RankFault
	faultLog      []RankFault
	runErr        error
	runFailed     atomic.Bool
	recoveries    int
	// runExited flips once every rank main has returned: the algorithm is
	// complete and its results are final. Transport failures observed after
	// this point (peers tearing down data-plane sockets at slightly
	// different times in multi-process mode) must not fault a finished run.
	runExited atomic.Bool

	// Injected-fault bookkeeping: one fired/healed flag per
	// FaultPlan.Crashes / DeadLinks entry; the has* fields gate the hot
	// paths.
	crashFired   []atomic.Bool
	linkHealed   []atomic.Bool
	hasCrashes   bool
	hasDeadLinks bool

	// Watchdog state: the monotonic timestamp of the last observed
	// substrate progress, and a once-flag for the fault.
	lastProgress  atomic.Int64
	watchdogFired atomic.Bool

	// Observability state (internal/obs). c backs Stats; typeC holds the
	// per-message-type counters (allocated in Run, once the type set is
	// frozen); relPending is the outstanding-retransmit gauge (reliable
	// mode); batchHist / latHist are per-type envelope-batch-size and
	// handler-latency histograms; ackRTT is the ack round-trip histogram.
	// latHist and ackRTT are nil unless Config.Timing is set.
	c          *obs.Counters
	typeC      *obs.Counters
	relPending *obs.Gauge
	batchHist  []*obs.Histogram
	latHist    []*obs.Histogram
	ackRTT     *obs.Histogram
	// phases holds the per-rank per-phase duration histograms (see phase.go);
	// nil unless Config.Timing is set, which keeps Rank.Phase free of clock
	// reads in untimed untraced runs.
	phases *obs.PhaseSet
}

// statShards returns the shard count of the metric write path.
func (c Config) statShards() int {
	if c.UnshardedStats {
		return 1
	}
	return c.Ranks
}

// NewUniverse creates a machine with the given configuration.
func NewUniverse(cfg Config) *Universe {
	cfg = cfg.withDefaults()
	if mp := cfg.MP; mp != nil {
		if mp.Plane == nil {
			panic("am: Config.MP needs a ControlPlane")
		}
		if mp.Lo < 0 || mp.Hi > cfg.Ranks || mp.Lo >= mp.Hi {
			panic(fmt.Sprintf("am: Config.MP rank range [%d,%d) outside [0,%d)", mp.Lo, mp.Hi, cfg.Ranks))
		}
		if cfg.Recovery {
			panic("am: Config.Recovery is incompatible with Config.MP: multi-process faults abort the fleet and the launcher drives checkpoint/restart")
		}
		// The atomic detector counts process-local state; only the
		// four-counter protocol generalizes to samples merged over the wire.
		cfg.Detector = DetectorFourCounter
	}
	u := &Universe{cfg: cfg, net: cfg.Transport}
	if cfg.MP != nil {
		u.mp = newMPState(*cfg.MP)
		if (u.mp.lo != 0 || u.mp.hi != cfg.Ranks) && !u.net.reliable() {
			panic("am: a multi-process universe hosting a partial rank range needs a socket transport (WithTransport(SockTransport(...)))")
		}
	}
	u.tickIntNs = int64(u.net.tickInterval())
	plan := cfg.FaultPlan
	if plan == nil && u.net.reliable() {
		// A backend that can lose frames needs the full reliable-delivery
		// protocol even when the caller injects nothing: a lost frame on a
		// trusted transport would hang the epoch. The synthesized plan sets
		// only backoff jitter (desynchronizing retransmit storms after a
		// reconnect); every injection rate is zero.
		plan = &FaultPlan{BackoffJitter: defaultSockBackoffJitter}
	}
	if plan != nil {
		u.fp = plan.withDefaults()
		for i, c := range u.fp.Crashes {
			if c.Rank < 0 || c.Rank >= cfg.Ranks {
				panic(fmt.Sprintf("am: FaultPlan.Crashes[%d] targets rank %d outside [0,%d)", i, c.Rank, cfg.Ranks))
			}
		}
		for i, dl := range u.fp.DeadLinks {
			if dl.Src < 0 || dl.Src >= cfg.Ranks || dl.Dest < 0 || dl.Dest >= cfg.Ranks {
				panic(fmt.Sprintf("am: FaultPlan.DeadLinks[%d] outside [0,%d)", i, cfg.Ranks))
			}
		}
		u.crashFired = make([]atomic.Bool, len(u.fp.Crashes))
		u.linkHealed = make([]atomic.Bool, len(u.fp.DeadLinks))
		u.hasCrashes = len(u.fp.Crashes) > 0
		u.hasDeadLinks = len(u.fp.DeadLinks) > 0
	}
	u.barrier = NewBarrier(cfg.Ranks)
	u.coll.init(cfg.Ranks)
	if cfg.TraceRingSize < 0 || cfg.TraceRingSize > maxTraceRingSize {
		panic(fmt.Sprintf("am: Config.TraceRingSize %d out of range [0, %d] events per rank",
			cfg.TraceRingSize, maxTraceRingSize))
	}
	if per := cfg.perRankRing(); per > 0 {
		u.tracer = newTracer(per, cfg.Ranks)
	}
	u.flight = cfg.Flight
	u.lineage = cfg.Lineage == LineageOn || (cfg.Lineage == LineageAuto && u.tracer != nil)
	u.c = obs.NewCounters(cfg.statShards(), counterNames[:]...)
	u.Stats = Stats{c: u.c}
	u.relPending = obs.NewGauge(cfg.Ranks)
	u.ranks = make([]*Rank, cfg.Ranks)
	for i := range u.ranks {
		u.ranks[i] = &Rank{rankState: &rankState{
			u:     u,
			id:    i,
			inbox: newQueue(),
			ctrl:  make(chan ctrlProbe, cfg.Ranks+1),
			st:    u.c.Shard(i % cfg.statShards()),
			shard: i % cfg.statShards(),
		}}
		u.ranks[i].crashAfter.Store(-1)
	}
	return u
}

// Config returns the (defaulted) configuration.
func (u *Universe) Config() Config { return u.cfg }

// Ranks returns the number of ranks.
func (u *Universe) Ranks() int { return u.cfg.Ranks }

// Rank is one simulated node. The SPMD body passed to Run receives its own
// Rank; all sends and property-map accesses happen through it.
//
// Internally a Rank value is a *facet*: all durable state lives in the
// embedded rankState (shared by every facet of the node), while the facet
// itself carries only goroutine-local context — the ambient lineage parent.
// Every goroutine that can deliver envelopes (handler workers, epoch-body
// participants, the rank main's progress loop) runs on its own facet, so a
// handler's sends can be stamped with the invocation that made them without
// any synchronization and without racing sibling threads of the same rank.
type Rank struct {
	*rankState

	// cur is the lineage id of the handler invocation currently executing
	// on this facet, or 0 when the facet is running epoch-body code (whose
	// sends are stamped with the synthetic per-(epoch, rank) root id).
	// Facet-local by construction; never touched when lineage is off.
	cur uint64
}

// facet derives a fresh goroutine-local view of the same rank. The canonical
// facets in Universe.ranks never have cur set, so code holding one (send
// paths reached outside any handler) stamps root lineage.
func (r *Rank) facet() *Rank { return &Rank{rankState: r.rankState} }

// rankState is the durable per-node state shared by all facets of one rank.
type rankState struct {
	u     *Universe
	id    int
	inbox *queue
	ctrl  chan ctrlProbe

	// linSeq numbers this rank's handler invocations for lineage ids
	// (first invocation gets 1, so no handler id collides with 0 = none).
	linSeq atomic.Uint64

	// st / tst are this rank's shards of the universe counters and the
	// per-message-type counters: every hot-path count lands on this rank's
	// padded cache lines (tst is assigned in Run, once types are frozen).
	// shard is the backing shard index, also used for histogram writes.
	st    obs.Shard
	tst   obs.Shard
	shard int

	// buffers indexed by message type id; element is *typedBufs[T].
	bufs []any

	// four-counter protocol counters. activeH covers the whole delivery
	// path (checks through handler completion): recovery's quiesce phase
	// spins on it to prove no in-flight delivery can still write state.
	sentC   atomic.Int64
	recvC   atomic.Int64
	activeH atomic.Int32

	// Crash-stop state (recovery.go): crashed marks the rank dead for the
	// current epoch attempt; crashAfter (>= 0 when armed) is the
	// handled-message count that triggers a mid-epoch injected crash, with
	// crashIdx the FaultPlan.Crashes entry it consumes; handledInEpoch
	// counts messages handled within the current epoch attempt.
	crashed        atomic.Bool
	crashAfter     atomic.Int64
	crashIdx       int
	handledInEpoch atomic.Int64

	// epoch-body bookkeeping (see epoch.go).
	idleBodies  atomic.Int32
	totalBodies atomic.Int32
	auxWork     atomic.Int64

	inEpoch atomic.Bool

	// nextQID is the query context the rank's next epoch will run under
	// (EpochCtx sets it, EpochThreaded consumes it). Written and read only
	// by the goroutine entering the epoch, between epochs, so it needs no
	// synchronization.
	nextQID int64

	// epochBeginNs closes the rank's epoch span at TraceEpochEnd; written
	// and read only by the rank main goroutine.
	epochBeginNs int64

	// fc is rank 0's four-counter driver for the current epoch (nil on
	// other ranks and in atomic-detector mode).
	fc *fourCounterDriver

	// Reliable-transport state (allocated only when a FaultPlan is set):
	// send[dest][type] / recv[src][type] link state and the rank-local
	// progress tick driving retransmit timeouts. The count of
	// unacknowledged + delayed envelopes this rank is responsible for
	// lives in the universe's relPending gauge, sharded by rank.
	// relInit orders link-table swaps (initReliability, at Run and in
	// recovery's scrub) against requeueOutstanding, which a socket
	// backend's reconnector calls from a transport goroutine.
	relInit  sync.Mutex
	send     [][]sendLink
	recv     [][]recvLink
	linkTick atomic.Uint64
	// lastTickNs paces linkTick on real-latency transports (see
	// Transport.tickInterval and pollLinks); unused when the interval is 0.
	lastTickNs atomic.Int64
}

// ID returns this rank's id in [0, Ranks).
func (r *Rank) ID() int { return r.id }

// N returns the number of ranks in the universe.
func (r *Rank) N() int { return r.u.cfg.Ranks }

// Universe returns the universe this rank belongs to.
func (r *Rank) Universe() *Universe { return r.u }

// relAdd adjusts this rank's outstanding-retransmit gauge.
func (r *Rank) relAdd(d int64) { r.u.relPending.Add(r.id, d) }

// relPending reads this rank's outstanding-retransmit count.
func (r *Rank) relPendingNow() int64 { return r.u.relPending.ShardValue(r.id) }

// batchBounds / latencyBounds / rttBounds are the fixed histogram bucket
// boundaries: batch sizes 1..8192 messages, latencies 256ns..~134ms, ack
// round trips 256ns..~2.1s, each doubling per bucket.
var (
	batchBounds   = obs.ExpBounds(1, 14)
	latencyBounds = obs.ExpBounds(256, 20)
	rttBounds     = obs.ExpBounds(256, 24)
)

// initObs allocates the type-dimensioned metric state; called from Run once
// the type set is frozen.
func (u *Universe) initObs() {
	shards := u.cfg.statShards()
	names := make([]string, 0, 3*len(u.types))
	for _, mt := range u.types {
		names = append(names, mt.name+"/sent", mt.name+"/handled", mt.name+"/envelopes")
	}
	u.typeC = obs.NewCounters(shards, names...)
	u.batchHist = make([]*obs.Histogram, len(u.types))
	for i := range u.batchHist {
		u.batchHist[i] = obs.NewHistogram(shards, batchBounds...)
	}
	if u.cfg.Timing {
		u.latHist = make([]*obs.Histogram, len(u.types))
		for i := range u.latHist {
			u.latHist[i] = obs.NewHistogram(shards, latencyBounds...)
		}
		if u.fp != nil {
			u.ackRTT = obs.NewHistogram(shards, rttBounds...)
		}
		u.phases = obs.NewPhaseSet(shards)
	}
	for _, r := range u.ranks {
		r.tst = u.typeC.Shard(r.shard)
	}
}

// Run executes body SPMD-style, once per rank, each on its own goroutine,
// with ThreadsPerRank handler threads per rank delivering messages
// concurrently. It returns when every rank's body has returned and all
// handler threads have drained. Run may be called only once per Universe.
//
// The returned error is nil on a clean run. It is non-nil when a rank fault
// (injected crash, contained handler panic, dead link — see recovery.go)
// could not be recovered: recovery disabled, the per-epoch recovery budget
// exhausted, or the stuck-epoch watchdog fired. The wrapped *RankFault
// carries the fault kind, rank, and epoch; every rank's body is unwound
// before Run returns, so the process survives what used to be a panic.
func (u *Universe) Run(body func(r *Rank)) error {
	if !u.frozen.CompareAndSwap(false, true) {
		panic("am: Universe.Run called twice")
	}
	u.initObs()
	if u.mp != nil {
		// A replacement process can only reload state that round-trips
		// through bytes, so every checkpointer must speak the serialized
		// contract before the run starts (failing mid-epoch would strand
		// the fleet).
		for i, c := range u.checkpointers {
			if _, ok := c.(SerializedCheckpointer); !ok {
				return fmt.Errorf("am: multi-process mode requires SerializedCheckpointer; checkpointer %d (%T) only implements Checkpointer", i, c)
			}
		}
	}
	u.ckpts = make([][]any, u.cfg.Ranks)
	for i := range u.ckpts {
		u.ckpts[i] = make([]any, len(u.checkpointers))
	}
	// Allocate per-rank typed coalescing buffers now that the type set is
	// final.
	for _, r := range u.ranks {
		r.bufs = make([]any, len(u.types))
		for _, mt := range u.types {
			r.bufs[mt.id] = mt.newBufs(u.cfg.Ranks)
		}
		if u.fp != nil {
			r.initReliability(len(u.types))
		}
	}
	// Bind the transport backend now that the type set is frozen and the
	// reliable-layer state exists: a socket backend validates that every
	// registered type is wire-equipped, binds its listeners, and dials its
	// links before any goroutine that can send exists.
	if err := u.net.start(u); err != nil {
		return fmt.Errorf("am: transport %s: %w", u.net.Name(), err)
	}

	var workers sync.WaitGroup
	for _, r := range u.ranks {
		if !u.isLocal(r.id) {
			continue
		}
		for t := 0; t < u.cfg.ThreadsPerRank; t++ {
			workers.Add(1)
			go func(r *Rank) {
				defer workers.Done()
				r = r.facet() // this worker's own lineage context
				for {
					e, ok := r.inbox.Pop()
					if !ok {
						return
					}
					r.deliverEnvelope(e)
				}
			}(r)
		}
	}

	var responders sync.WaitGroup
	for _, r := range u.ranks {
		if !u.isLocal(r.id) {
			continue
		}
		responders.Add(1)
		go func(r *Rank) {
			defer responders.Done()
			for p := range r.ctrl {
				r.st.Add(cCtrlMsgs, 2) // probe + reply
				p.reply <- ctrlReply{
					qid:    u.curQuery.Load(),
					sent:   r.sentC.Load(),
					recv:   r.recvC.Load(),
					aux:    r.auxWork.Load(),
					rel:    r.relPendingNow(),
					active: r.activeH.Load(),
					idle:   r.idleBodies.Load(),
					total:  r.totalBodies.Load(),
				}
			}
		}(r)
	}

	var mains sync.WaitGroup
	for _, r := range u.ranks {
		if !u.isLocal(r.id) {
			continue
		}
		mains.Add(1)
		go func(r *Rank) {
			defer mains.Done()
			defer func() {
				// runAbort unwinds a rank main whose run has failed
				// (recovery.go); every rank throws it from the same
				// recovery barrier, so no rank is left waiting in a
				// collective. Any other panic propagates.
				if p := recover(); p != nil {
					if _, ok := p.(runAbort); !ok {
						panic(p)
					}
				}
			}()
			body(r)
		}(r)
	}
	mains.Wait()
	u.runExited.Store(true)

	// Shutdown audit (no send-on-closed-channel window). Sends on r.ctrl
	// come only from fourCounterDriver.wave, which runs exclusively on
	// epoch-body goroutines and rank mains — all of which have returned by
	// the time mains.Wait() does — so close(r.ctrl) below cannot race a
	// probe. The reliable-delivery layer preserves this: retransmits and
	// delayed-envelope releases are poll-driven from flushAll (bodies and
	// progress loops only, never a timer goroutine), and both detectors
	// require totalRelPending() == 0 before ending an epoch, so no
	// retransmit can fire after the last epoch ends. The only post-epoch
	// traffic is a redundant duplicate ack, and inbox.Push on a closed
	// queue is a safe no-op sink (queues are not Go channels).
	// TestShutdownStress exercises this window under -race. A socket
	// backend adds goroutines of its own (readers, heartbeats,
	// reconnectors); closing it here — after every rank main has returned,
	// before the inboxes close — joins them all, and its post-close sends
	// are safe no-ops, so the audit holds for every backend.
	if err := u.net.close(); err != nil {
		u.failRun(fmt.Errorf("am: transport %s close: %w", u.net.Name(), err))
	}
	for _, r := range u.ranks {
		r.inbox.Close()
	}
	workers.Wait()
	if u.mp != nil {
		// The coordinator may still poll this worker for wave samples after
		// the local mains exit (another worker can lag an epoch behind);
		// latch the control channels closed so sampleWave answers zeros
		// instead of sending on a closed channel.
		u.mpMarkCtrlClosed()
	}
	for _, r := range u.ranks {
		close(r.ctrl)
	}
	responders.Wait()
	return u.runError()
}

// deliverEnvelope runs the handlers for every message in e on rank r. In
// reliable mode it first verifies the wire checksum (codec-equipped types),
// decodes, suppresses duplicates, and acknowledges the envelope; corrupted
// or undecodable envelopes are discarded unacknowledged so the sender's
// retransmit recovers them. Every exit path releases the envelope's pooled
// wire buffer exactly once, and decoded batches the receiver exclusively
// owns return to the type's batch pool after delivery.
//
// activeH brackets the whole function (not just the handler batch): the
// recovery quiesce phase observes activeH == 0 to prove no delivery that
// passed the admission checks can still be running, and the checks
// themselves run after the increment so a delivery is either visibly
// in-flight or sees the abort/stale-generation state and discards itself.
func (r *Rank) deliverEnvelope(e envelope) {
	u := r.u
	r.activeH.Add(1)
	defer r.activeH.Add(-1)
	if u.resilient() {
		// A crashed rank is silent (no handling, no acks — peers see only
		// missing acknowledgements); an aborting epoch discards everything
		// (recovery scrubs the links); and an envelope from a rolled-back
		// generation is stale even if a descheduled worker surfaces it
		// after the epoch replays.
		if r.crashed.Load() || u.epochState.Load() == epochAborting || e.gen != u.epochGen.Load() {
			if wp, ok := e.data.(wirePayload); ok {
				wp.release()
			}
			return
		}
	}
	if e.typeID == ackTypeID {
		r.handleAck(e)
		return
	}
	if e.qid != u.curQuery.Load() {
		// Query cross-talk: the envelope was stamped for a different query
		// context than the epoch now running. The epoch guarantee makes this
		// impossible on a correct substrate (every user envelope is handled
		// inside the epoch that created it), so on the trusted transport it
		// is a routing bug and fails fast. In reliable mode it is discarded
		// unacknowledged and counted — the same containment as corruption —
		// so a misrouted envelope can never relax another query's state.
		if wp, ok := e.data.(wirePayload); ok {
			wp.release()
		}
		r.st.Inc(cQueryMismatches)
		u.trace(r.id, TraceQueryCross, int64(e.typeID), e.qid)
		if u.fp == nil {
			panic(fmt.Sprintf("am: query cross-talk on trusted transport: envelope for query %d delivered under query %d (%s)",
				e.qid, u.curQuery.Load(), u.types[e.typeID].name))
		}
		return
	}
	if u.hasCrashes && r.crashDue() {
		// The rank died before handling this envelope; it dies unacknowledged.
		if wp, ok := e.data.(wirePayload); ok {
			wp.release()
		}
		return
	}
	mt := u.types[e.typeID]
	data := e.data
	fromWire := false
	if wp, ok := data.(wirePayload); ok {
		if crc64Sum(wp.b) != wp.sum {
			wp.release()
			if u.fp == nil {
				panic("am: wire corruption on trusted transport: " + mt.name)
			}
			r.st.Inc(cCorruptionsDetected)
			u.trace(r.id, TraceCorrupt, int64(e.typeID), int64(e.seq))
			return
		}
		decoded, err := mt.decode(wp.b)
		wp.release()
		if err != nil {
			// Malformed bytes that slipped past the checksum. On the
			// trusted transport nothing mutates the wire, so this is a
			// codec bug and fails fast; in reliable mode it is treated
			// exactly like detected corruption — discarded unacknowledged,
			// so the sender's retransmit (a fresh encode) recovers.
			if u.fp == nil {
				panic("am: wire decode on trusted transport: " + mt.name + ": " + err.Error())
			}
			r.st.Inc(cDecodeErrors)
			u.trace(r.id, TraceDecodeError, int64(e.typeID), int64(e.seq))
			return
		}
		data = decoded
		fromWire = true
	}
	if u.fp != nil {
		fresh, salt := r.admit(int(e.src), e.typeID, e.seq)
		r.sendAck(int(e.src), e.typeID, e.seq, salt)
		if !fresh {
			r.st.Inc(cDupsSuppressed)
			u.trace(r.id, TraceSuppress, int64(e.typeID), int64(e.seq))
			if fromWire {
				mt.recycle(data)
			}
			return
		}
	}
	// Time the delivery span only when someone consumes it (trace or
	// latency histograms); the untimed path performs no clock reads.
	var start int64
	timed := u.tracer != nil || u.latHist != nil
	if timed {
		start = obs.Now()
	}
	if !r.deliverBatch(mt, data, e.lin) {
		return // handler panicked; contained as a rank fault
	}
	if u.hasCrashes {
		r.handledInEpoch.Add(int64(mt.batchLen(data)))
	}
	if timed {
		end := obs.Now()
		n := int64(mt.batchLen(data))
		u.traceSpan(r.id, TraceDeliver, int64(e.typeID), n, end, end-start)
		if u.latHist != nil {
			u.latHist[e.typeID].Observe(r.shard, end-start)
		}
	}
	// The receiver exclusively owns wire-decoded batches, and on the trusted
	// transport reference-shipped batches too (the sender relinquished the
	// buffer at push). Reliable-mode reference batches stay with the
	// retransmit table and are never pooled.
	if fromWire || u.fp == nil {
		mt.recycle(data)
	}
	u.touchProgress()
}

// deliverBatch runs the handler batch, containing panics when the universe
// is resilient: a panicking handler becomes a crash of the handling rank (a
// contained rank fault) instead of a process abort. Reports whether the
// batch completed. On the plain trusted transport handler panics propagate
// unchanged (fail-fast).
func (r *Rank) deliverBatch(mt *msgType, data any, lin []uint64) (ok bool) {
	if !r.u.resilient() {
		mt.deliver(r, data, lin)
		return true
	}
	defer func() {
		if p := recover(); p != nil {
			ok = false
			r.cur = 0 // the poisoned ambient parent dies with the attempt
			r.st.Inc(cHandlerPanics)
			r.u.trace(r.id, TracePanic, int64(mt.id), 0)
			r.crashNow(FaultHandlerPanic,
				fmt.Sprintf("handler for %s panicked: %v\n%s", mt.name, p, debug.Stack()))
		}
	}()
	mt.deliver(r, data, lin)
	return true
}

// drainSome delivers up to max envelopes from r's inbox without blocking and
// reports whether it delivered anything.
func (r *Rank) drainSome(max int) bool {
	worked := false
	for i := 0; i < max; i++ {
		e, ok := r.inbox.TryPop()
		if !ok {
			break
		}
		r.deliverEnvelope(e)
		worked = true
	}
	return worked
}

// flushAll ships every non-empty coalescing buffer owned by r, then (in
// reliable mode) polls this rank's links — releasing matured delayed
// envelopes and retransmitting overdue unacknowledged ones. Reports whether
// anything moved. A crashed rank moves nothing: crash-stop silence includes
// buffered sends and retransmits.
func (r *Rank) flushAll() bool {
	if r.crashed.Load() {
		return false
	}
	worked := false
	for _, mt := range r.u.types {
		if mt.flushRank(r) {
			worked = true
		}
	}
	if r.pollLinks() {
		worked = true
	}
	return worked
}
