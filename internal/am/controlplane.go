package am

import (
	"fmt"
	"path/filepath"
	"sync"

	"declpat/internal/ckpt"
	"declpat/internal/obs"
)

// This file is the multi-process SPMD seam: when a universe hosts only a
// contiguous slice of the global rank range (one worker process of a
// launched fleet), the collectives, the termination detector and the
// recovery protocol stop being process-local and ride a ControlPlane — a
// client the launcher's coordinator serves over versioned CRC-sealed wire
// frames (internal/mp). The universe stays oblivious to the wire format; it
// only sees the interface below.

// WaveSample is one process's aggregate contribution to a four-counter
// termination-detection wave: the summed message/aux/reliability counters
// and handler/body activity of its local ranks. Samples from every worker
// merge by field-wise addition; the global wave is quiescent when the
// merged sample says every body everywhere is idle and the counters are
// stable (detector.go has the full predicate).
type WaveSample struct {
	Sent, Recv, Aux, Rel int64
	Active               int32
	Idle, Total          int32
}

// Add merges another process's sample into s (field-wise sum).
func (s *WaveSample) Add(o WaveSample) {
	s.Sent += o.Sent
	s.Recv += o.Recv
	s.Aux += o.Aux
	s.Rel += o.Rel
	s.Active += o.Active
	s.Idle += o.Idle
	s.Total += o.Total
}

// ControlPlane is what a worker-side universe calls to run global control
// operations over the wire. Every method may block on network round trips
// and returns an error when the fleet is aborting (coordinator gone, a peer
// crashed, a round timed out); the universe converts any control-plane
// error into a local run abort so the process exits and the launcher can
// respawn the fleet from the last committed checkpoint.
type ControlPlane interface {
	// ExchangeAddrs registers this worker's data-plane listener addresses
	// (one per local rank) and blocks until every worker has registered,
	// returning the full table indexed by global rank.
	ExchangeAddrs(local []string) ([]string, error)
	// WireBarrier enters the global barrier and blocks until every worker's
	// leader has entered. epoch >= 0 tags the barrier as that epoch's
	// checkpoint-commit vote: completion means every worker has its slot
	// file for that epoch on disk, so the coordinator advances the committed
	// restart point. epoch == PlainBarrier is an untagged barrier.
	WireBarrier(epoch int64) error
	// WireGather contributes this worker's slice of an all-gather (the
	// values of its local ranks, in rank order) and returns the full
	// global vector. Backs AllReduce*/AllGather: reductions fold the full
	// vector locally so the coordinator never needs the op.
	WireGather(local []int64) ([]int64, error)
	// WireWave runs one global termination-detection wave: ships the local
	// sample, the coordinator polls every other worker, and the merged
	// global sample comes back. Only the worker hosting global rank 0
	// calls this.
	WireWave(local WaveSample) (WaveSample, error)
	// AnnounceFinish tells the coordinator this epoch quiesced (called by
	// the worker hosting rank 0 after it flips the epoch to finished); the
	// coordinator rebroadcasts so every other worker's universe finishes
	// the epoch too.
	AnnounceFinish() error
	// ReportFault ships a local rank fault to the coordinator, which aborts
	// the fleet and lets the launcher drive checkpoint/restart.
	ReportFault(f RankFault)
}

// PlainBarrier is the WireBarrier tag for barriers that are not
// checkpoint-commit votes.
const PlainBarrier int64 = -1

// ControlHooks are the callbacks a control-plane client needs from the
// universe: they run on the client's reader goroutine when the coordinator
// polls or broadcasts. Obtain them with Universe.ControlHooks after
// construction.
type ControlHooks struct {
	// SampleWave probes the local ranks and returns this process's wave
	// sample. ok is false once the universe is shutting down (the caller
	// should report an empty, non-quiescent sample upstream or fail the
	// poll).
	SampleWave func() (sample WaveSample, ok bool)
	// RemoteFinish marks the running epoch finished (another worker's
	// detector saw global quiescence). No-op outside a running epoch.
	RemoteFinish func()
	// RemoteAbort fails the run with err and unblocks every parked rank:
	// the fleet is going down (a peer crashed, a peer left cleanly, or a
	// control round failed) and this process must exit so the launcher can
	// respawn it. clean says whether the departed peer said goodbye first.
	RemoteAbort func(err error, clean bool)
}

// MPConfig wires a universe into a multi-process fleet: the universe hosts
// global ranks [Lo, Hi) and runs every global control operation through
// Plane. Zero-value fields mean "fresh run" (no restart, no checkpoint).
type MPConfig struct {
	// Plane carries barriers, gathers, detector waves and fault reports.
	Plane ControlPlane
	// Lo, Hi bound the contiguous global rank range this process hosts.
	Lo, Hi int
	// RunID is the fleet-wide identity shared by every worker of a launch:
	// it seals data-plane handshakes (all workers of one launch accept each
	// other) and validates checkpoint files across respawns.
	RunID uint64
	// RestartEpoch is the first epoch to execute live. Epochs below it were
	// committed before a crash: their bodies are skipped and their
	// collective results replayed from CollectiveLog. Zero for fresh runs.
	RestartEpoch int64
	// HaveCheckpoint says a committed checkpoint exists: at RestartEpoch's
	// entry the universe reloads every registered checkpointer from the
	// slot file before running the epoch.
	HaveCheckpoint bool
	// CollectiveLog replays the all-gather results consumed before
	// RestartEpoch (in execution order). The coordinator records them
	// during the original run and ships the committed prefix on respawn.
	CollectiveLog [][]int64
	// CheckpointDir is where this worker's slot files live. Must be shared
	// (same filesystem path) between a worker and its replacement.
	CheckpointDir string
	// WorkerIndex names this worker within the fleet (stable across
	// respawns; used in slot file names and diagnostics).
	WorkerIndex int
}

// mpState is the universe's runtime view of MPConfig plus the local
// synchronization the wire protocol needs: a process-local barrier that
// elects the leader rank (Lo) to perform each wire round on behalf of all
// local ranks, the collective-replay cursor, and the probe channel for
// coordinator-initiated wave polls.
type mpState struct {
	cfg      MPConfig
	plane    ControlPlane
	lo, hi   int
	localBar *Barrier

	restart  int64
	haveCkpt bool
	log      [][]int64
	logUsed  int

	dir    string
	worker int

	// waveCh serves coordinator wave polls; capacity hi-lo so local probes
	// never block the responders.
	waveCh chan ctrlReply

	// ctrlMu orders coordinator-initiated ctrl-channel probes against
	// shutdown: Run closes the ctrl channels after the rank mains exit, and
	// the client's reader goroutine must not send into a closed channel.
	ctrlMu     sync.RWMutex
	ctrlClosed bool

	// wireErr latches the first control-plane failure for diagnostics.
	wireMu  sync.Mutex
	wireErr error
}

func newMPState(cfg MPConfig) *mpState {
	return &mpState{
		cfg:      cfg,
		plane:    cfg.Plane,
		lo:       cfg.Lo,
		hi:       cfg.Hi,
		localBar: NewBarrier(cfg.Hi - cfg.Lo),
		restart:  cfg.RestartEpoch,
		haveCkpt: cfg.HaveCheckpoint,
		log:      cfg.CollectiveLog,
		dir:      cfg.CheckpointDir,
		worker:   cfg.WorkerIndex,
		waveCh:   make(chan ctrlReply, cfg.Hi-cfg.Lo),
	}
}

// slotPath is the two-slot checkpoint file for epoch: slots alternate by
// epoch parity so the previous committed checkpoint survives a crash while
// the next one is being written.
func (mp *mpState) slotPath(epoch int64) string {
	return filepath.Join(mp.dir, fmt.Sprintf("ckpt-w%d-s%d.dpck", mp.worker, epoch%2))
}

// leaderID is the rank that performs wire rounds for this process (global
// rank 0 in single-process mode).
func (u *Universe) leaderID() int {
	if u.mp != nil {
		return u.mp.lo
	}
	return 0
}

// isLocal reports whether global rank id is hosted by this process.
func (u *Universe) isLocal(id int) bool {
	if u.mp == nil {
		return true
	}
	return id >= u.mp.lo && id < u.mp.hi
}

// localRanks is the slice of ranks this process hosts.
func (u *Universe) localRanks() []*Rank {
	if u.mp == nil {
		return u.ranks
	}
	return u.ranks[u.mp.lo:u.mp.hi]
}

// ControlHooks returns the callbacks a control-plane client invokes on
// coordinator-initiated traffic. Valid once the universe is constructed.
func (u *Universe) ControlHooks() ControlHooks {
	return ControlHooks{
		SampleWave:   u.sampleWave,
		RemoteFinish: u.remoteFinish,
		RemoteAbort:  u.remoteAbort,
	}
}

// sampleWave probes every local rank's ctrl channel and sums the replies
// into this process's wave sample. Runs on the control-plane client's
// reader goroutine, concurrent with the rank mains; the ctrl responders
// answer until Run closes the channels, at which point ok is false.
func (u *Universe) sampleWave() (WaveSample, bool) {
	mp := u.mp
	mp.ctrlMu.RLock()
	defer mp.ctrlMu.RUnlock()
	if mp.ctrlClosed {
		return WaveSample{}, false
	}
	for _, r := range u.localRanks() {
		r.ctrl <- ctrlProbe{reply: mp.waveCh}
	}
	var s WaveSample
	for i := mp.lo; i < mp.hi; i++ {
		rep := <-mp.waveCh
		s.Sent += rep.sent
		s.Recv += rep.recv
		s.Aux += rep.aux
		s.Rel += rep.rel
		s.Active += rep.active
		s.Idle += rep.idle
		s.Total += rep.total
	}
	return s, true
}

// remoteFinish ends the running epoch: another worker's detector proved
// global quiescence and the coordinator broadcast the finish.
func (u *Universe) remoteFinish() {
	if u.epochState.CompareAndSwap(epochRunning, epochFinished) {
		u.touchProgress()
	}
}

// remoteAbort fails the run and unparks every local rank: the fleet is
// aborting. clean distinguishes a peer that said goodbye (SIGTERM drain)
// from one that died; the departure counters keep the two apart in
// Universe.Metrics.
func (u *Universe) remoteAbort(err error, clean bool) {
	st := u.ranks[u.leaderID()].st
	if clean {
		st.Inc(cCleanDepartures)
	} else {
		st.Inc(cCrashDepartures)
	}
	// The fleet is going down around this (still-healthy) worker; its black
	// box is part of the postmortem too.
	u.flightPersist("remote abort: " + err.Error())
	u.mpFail(err)
}

// mpFail is the single local abort path for control-plane failures: latch
// the error, flip a running epoch to aborting (stopping progress loops and
// handler admission), and poison the process-local barrier so parked rank
// mains unwind with runAbort. Idempotent.
func (u *Universe) mpFail(err error) {
	mp := u.mp
	mp.wireMu.Lock()
	if mp.wireErr == nil {
		mp.wireErr = err
	}
	mp.wireMu.Unlock()
	u.failRun(err)
	if u.epochState.CompareAndSwap(epochRunning, epochAborting) {
		u.ranks[u.leaderID()].st.Inc(cEpochAborts)
	}
	u.touchProgress()
	mp.localBar.poison()
}

// mpBarrier is Rank.Barrier in multi-process mode: all local ranks meet at
// the process barrier, the leader enters the global wire barrier (tagged
// with an epoch when it doubles as a checkpoint-commit vote), and a second
// process barrier releases everyone once the wire round completed. A wire
// failure aborts the run on the spot.
func (r *Rank) mpBarrier(tag int64) {
	u := r.u
	mp := u.mp
	mp.localBar.Wait()
	if r.id == mp.lo {
		if err := mp.plane.WireBarrier(tag); err != nil {
			u.mpFail(fmt.Errorf("am: wire barrier failed: %w", err))
			panic(runAbort{})
		}
	}
	mp.localBar.Wait()
}

// mpAllGather backs AllReduce*/AllGatherInt64 in multi-process mode: local
// ranks deposit their values, the leader ships the local slice and spreads
// the returned global vector, and every rank folds or copies it locally.
// During fast-forward replay the leader consumes the next logged vector
// instead of going to the wire — the coordinator records every gather, so
// skipped epochs still observe the exact values of the original run.
func (r *Rank) mpAllGather(x int64) []int64 {
	u := r.u
	mp := u.mp
	u.coll.vals[r.id] = x
	mp.localBar.Wait()
	if r.id == mp.lo {
		var full []int64
		var err error
		if mp.logUsed < len(mp.log) {
			full = mp.log[mp.logUsed]
			mp.logUsed++
			if len(full) != len(u.coll.vals) {
				err = fmt.Errorf("am: replayed collective has %d values, want %d", len(full), len(u.coll.vals))
			}
		} else {
			full, err = mp.plane.WireGather(u.coll.vals[mp.lo:mp.hi])
			if err == nil && len(full) != len(u.coll.vals) {
				err = fmt.Errorf("am: wire gather returned %d values, want %d", len(full), len(u.coll.vals))
			}
		}
		if err != nil {
			u.mpFail(fmt.Errorf("am: wire gather failed: %w", err))
			panic(runAbort{})
		}
		copy(u.coll.vals, full)
	}
	mp.localBar.Wait()
	return u.coll.vals
}

// finishEpoch flips the running epoch to finished after a successful
// termination wave; in multi-process mode it also announces the finish so
// the coordinator can release every other worker's epoch. Returns whether
// this caller won the flip.
func (u *Universe) finishEpoch() bool {
	if !u.epochState.CompareAndSwap(epochRunning, epochFinished) {
		return false
	}
	if u.mp != nil {
		if err := u.mp.plane.AnnounceFinish(); err != nil {
			// The epoch is finished locally but peers cannot learn it; fail
			// the run and let every rank surface the error at the closing
			// barrier.
			u.mpFail(fmt.Errorf("am: announcing epoch finish failed: %w", err))
		}
	}
	return true
}

// mpSkipEpoch fast-forwards one committed epoch during restart: the body
// never runs, no wire traffic happens (every worker skips the same prefix
// independently), and only the epoch bookkeeping advances.
func (r *Rank) mpSkipEpoch() {
	u := r.u
	mp := u.mp
	mp.localBar.Wait()
	if r.id == mp.lo {
		u.epochSeq.Add(1)
		r.st.Inc(cEpochs)
	}
	r.inEpoch.Store(false)
	mp.localBar.Wait()
}

// mpEpochOpen is the epoch-entry protocol in multi-process mode: restore
// from the committed checkpoint when this is the restart epoch, write this
// epoch's snapshot slot, then vote it committed via the epoch-tagged wire
// barrier. When the barrier completes, every worker's slot file is on disk
// and the coordinator has advanced the restart point — a crash at any later
// moment replays from this epoch.
func (u *Universe) mpEpochOpen(r *Rank, epoch int64) {
	mp := u.mp
	mp.localBar.Wait()
	if r.id == mp.lo {
		if err := u.mpOpenLeader(epoch); err != nil {
			u.mpFail(err)
			panic(runAbort{})
		}
		if err := mp.plane.WireBarrier(epoch); err != nil {
			u.mpFail(fmt.Errorf("am: checkpoint-commit barrier failed: %w", err))
			panic(runAbort{})
		}
	}
	mp.localBar.Wait()
}

// mpOpenLeader is the leader's half of mpEpochOpen: restore (restart epoch
// only) then snapshot.
func (u *Universe) mpOpenLeader(epoch int64) error {
	mp := u.mp
	if epoch == mp.restart {
		if mp.logUsed != len(mp.log) {
			return fmt.Errorf("am: collective replay out of sync at restart epoch %d: used %d of %d logged gathers",
				epoch, mp.logUsed, len(mp.log))
		}
		if mp.haveCkpt {
			if err := u.mpRestore(epoch); err != nil {
				return err
			}
		}
	}
	if err := u.mpCheckpoint(epoch); err != nil {
		return err
	}
	for _, lr := range u.localRanks() {
		lr.st.Inc(cCheckpoints)
	}
	// Epoch commit is the periodic black-box persistence point: a later
	// SIGKILL — which runs no cleanup — leaves a flight dump at most one
	// epoch stale next to the checkpoint slots.
	if u.flight != nil {
		u.flight.EpochCommit(epoch, obs.Now())
		u.flightPersist(fmt.Sprintf("epoch %d commit", epoch))
	}
	return nil
}

// mpCheckpoint serializes every registered checkpointer's state for every
// local rank into this epoch's slot file (atomic write).
func (u *Universe) mpCheckpoint(epoch int64) error {
	mp := u.mp
	snap := &ckpt.Snapshot{
		RunID: mp.cfg.RunID,
		Epoch: epoch,
		Lo:    uint32(mp.lo),
		Hi:    uint32(mp.hi),
	}
	for rank := mp.lo; rank < mp.hi; rank++ {
		blobs := make([][]byte, len(u.checkpointers))
		for i, c := range u.checkpointers {
			sc := c.(SerializedCheckpointer) // validated at Run start
			b, err := sc.EncodeSnapshot(c.SnapshotRank(rank))
			if err != nil {
				return fmt.Errorf("am: encoding checkpoint (rank %d, checkpointer %d): %w", rank, i, err)
			}
			blobs[i] = b
		}
		snap.Blobs = append(snap.Blobs, blobs)
	}
	if err := ckpt.WriteFile(mp.slotPath(epoch), snap); err != nil {
		return fmt.Errorf("am: writing checkpoint for epoch %d: %w", epoch, err)
	}
	return nil
}

// mpRestore reloads every registered checkpointer for every local rank
// from the committed slot file written before the crash.
func (u *Universe) mpRestore(epoch int64) error {
	mp := u.mp
	path := mp.slotPath(epoch)
	snap, err := ckpt.ReadFile(path)
	if err != nil {
		return fmt.Errorf("am: reading checkpoint for restart epoch %d: %w", epoch, err)
	}
	switch {
	case snap.RunID != mp.cfg.RunID:
		return fmt.Errorf("am: checkpoint %s belongs to run %016x, want %016x", path, snap.RunID, mp.cfg.RunID)
	case snap.Epoch != epoch:
		return fmt.Errorf("am: checkpoint %s holds epoch %d, want %d", path, snap.Epoch, epoch)
	case int(snap.Lo) != mp.lo || int(snap.Hi) != mp.hi:
		return fmt.Errorf("am: checkpoint %s covers ranks [%d,%d), want [%d,%d)", path, snap.Lo, snap.Hi, mp.lo, mp.hi)
	case len(snap.Blobs) != mp.hi-mp.lo:
		return fmt.Errorf("am: checkpoint %s has %d rank entries, want %d", path, len(snap.Blobs), mp.hi-mp.lo)
	}
	for rank := mp.lo; rank < mp.hi; rank++ {
		blobs := snap.Blobs[rank-mp.lo]
		if len(blobs) != len(u.checkpointers) {
			return fmt.Errorf("am: checkpoint %s rank %d has %d blobs, want %d", path, rank, len(blobs), len(u.checkpointers))
		}
		for i, c := range u.checkpointers {
			sc := c.(SerializedCheckpointer)
			v, err := sc.DecodeSnapshot(blobs[i])
			if err != nil {
				return fmt.Errorf("am: decoding checkpoint (rank %d, checkpointer %d): %w", rank, i, err)
			}
			c.RestoreRank(rank, v)
		}
	}
	return nil
}

// mpMarkCtrlClosed blocks new coordinator-initiated ctrl probes before Run
// closes the ctrl channels.
func (u *Universe) mpMarkCtrlClosed() {
	mp := u.mp
	mp.ctrlMu.Lock()
	mp.ctrlClosed = true
	mp.ctrlMu.Unlock()
}
