//go:build race

package am

// raceTimingScale stretches the socket tests' real-time budgets (heartbeat
// interval, liveness deadline, reconnect backoff) under the race detector,
// whose 5-20x slowdown can stall the heartbeat goroutine past a
// millisecond-scale liveness deadline on a perfectly healthy link. Tick-paced
// quantities (the retransmit ceiling) are unaffected.
const raceTimingScale = 5
