// Package am is a Go reimplementation of the AM++ / Active Pebbles messaging
// substrate the paper builds on (Willcock et al., "AM++: A Generalized Active
// Message Framework"; Willcock et al., "Active Pebbles").
//
// It simulates a distributed machine inside one process: a Universe holds R
// ranks, each with its own inbound message queue and a pool of handler
// threads. User programs run SPMD style, one goroutine per rank, and
// communicate only through typed active messages. The features the paper
// relies on are all present:
//
//   - Typed message types with arbitrary handler functions; handlers may send
//     any number of further messages (no restrictions, unlike classic AM).
//   - Object-based addressing: a message type may carry an address function
//     that computes the destination rank from the payload, so senders address
//     data (vertices), not ranks.
//   - A coalescing layer that buffers messages per destination and ships them
//     in batches (envelopes).
//   - A caching/reduction layer that combines or suppresses redundant
//     messages inside coalescing buffers (e.g. keep only the best distance
//     per target vertex).
//   - Epochs with distributed termination detection: an epoch ends only when
//     every message sent (directly or transitively by handlers) has been
//     handled on every rank. Two detectors are provided: a fast shared
//     atomic-counter detector and a Mattern-style four-counter protocol that
//     uses explicit control messages, as a real distributed system would.
//   - The epoch primitives the paper's strategies need: Flush (epoch_flush)
//     and TryFinish (try_finish).
//   - Collectives (barrier, all-reduce) for use between epochs.
//
// Message and byte counts are tracked exactly (see Stats); they are the
// basis of the message-count experiments in EXPERIMENTS.md.
package am
