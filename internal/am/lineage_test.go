package am

import (
	"strings"
	"testing"

	"declpat/internal/obs"
)

// hop is a chain message: the handler forwards it to the next rank until the
// TTL runs out, producing causal chains of known depth.
type hop struct{ TTL int64 }

// chainUniverse registers the forwarding type on a fresh universe.
func chainUniverse(cfg Config) (*Universe, *MsgType[hop]) {
	u := NewUniverse(cfg)
	var mt *MsgType[hop]
	mt = Register(u, "hop", func(r *Rank, m hop) {
		if m.TTL > 0 {
			mt.SendTo(r, (r.ID()+1)%r.N(), hop{TTL: m.TTL - 1})
		}
	})
	return u, mt
}

// runChains drives epochs×chains chains of depth ttl+1 per rank.
func runChains(t *testing.T, u *Universe, mt *MsgType[hop], epochs, chains int, ttl int64) {
	t.Helper()
	if err := u.Run(func(r *Rank) {
		for e := 0; e < epochs; e++ {
			r.Epoch(func(ep *Epoch) {
				for c := 0; c < chains; c++ {
					mt.SendTo(r, (r.ID()+1)%r.N(), hop{TTL: ttl})
				}
				ep.Flush()
			})
		}
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestLineageConnectedChains is the tentpole invariant: on a traced run with
// concurrent handler threads, every handler event carries a resolvable parent
// (a connected causal forest), chain depths match the workload's TTL, and the
// reconstructed critical path of every epoch starts at an epoch-body root and
// walks parent links hop by hop.
func TestLineageConnectedChains(t *testing.T) {
	const ttl = 6
	u, mt := chainUniverse(Config{Ranks: 4, ThreadsPerRank: 2, CoalesceSize: 4, TraceCapacity: 1 << 16})
	runChains(t, u, mt, 3, 4, ttl)

	meta, recs := u.ExportTrace("chains")
	lin := obs.BuildLineage(meta, recs)
	if lin.Handlers() == 0 {
		t.Fatal("no handler events in traced run")
	}
	if !lin.Connected() {
		t.Fatalf("causal forest has %d orphans (ring did not wrap: dropped=%d)",
			lin.Orphans, u.TraceDropped())
	}
	want := int(u.Stats.Snapshot().HandlersRun)
	if lin.Handlers() != want {
		t.Fatalf("reconstructed %d handler invocations, stats say %d", lin.Handlers(), want)
	}
	maxDepth := 0
	for _, e := range lin.Epochs {
		for _, n := range e.Nodes {
			if n.Depth > maxDepth {
				maxDepth = n.Depth
			}
		}
	}
	if maxDepth != ttl+1 {
		t.Fatalf("max chain depth %d, want %d", maxDepth, ttl+1)
	}
	if len(lin.Epochs) != 3 {
		t.Fatalf("epochs reconstructed = %d, want 3", len(lin.Epochs))
	}
	for _, e := range lin.Epochs {
		cp := lin.CriticalPathOf(e)
		if cp == nil || len(cp.Hops) == 0 {
			t.Fatalf("epoch %d: empty critical path", e.Epoch)
		}
		if cp.Broken {
			t.Fatalf("epoch %d: critical path broken", e.Epoch)
		}
		if !obs.IsRootLineageID(cp.Root) {
			t.Fatalf("epoch %d: path does not start at a root (root id %#x)", e.Epoch, cp.Root)
		}
		if got := obs.RootLineageEpoch(cp.Root); got != e.Epoch {
			t.Fatalf("epoch %d: root id encodes epoch %d", e.Epoch, got)
		}
		if cp.Hops[0].Node.Parent != cp.Root {
			t.Fatalf("epoch %d: first hop's parent %#x != root %#x", e.Epoch, cp.Hops[0].Node.Parent, cp.Root)
		}
		for i := 1; i < len(cp.Hops); i++ {
			if cp.Hops[i].Node.Parent != cp.Hops[i-1].Node.ID {
				t.Fatalf("epoch %d: hop %d parent %#x != previous hop id %#x",
					e.Epoch, i, cp.Hops[i].Node.Parent, cp.Hops[i-1].Node.ID)
			}
			if cp.Hops[i].Wait < 0 {
				t.Fatalf("epoch %d: negative wait at hop %d", e.Epoch, i)
			}
		}
		// The path ends in the epoch's final quiescence: the sink's finish
		// plus the quiesce tail lands exactly on the epoch's end.
		sink := cp.Hops[len(cp.Hops)-1].Node
		if sink.End+cp.TailNs != e.End {
			t.Fatalf("epoch %d: sink end %d + tail %d != epoch end %d",
				e.Epoch, sink.End, cp.TailNs, e.End)
		}
		if cp.TailNs < 0 {
			t.Fatalf("epoch %d: negative quiesce tail", e.Epoch)
		}
	}
	// The rendered tables must not be empty shells.
	if tb := obs.CriticalPathTable(lin); tb.Rows() != 3 {
		t.Fatalf("critical-path table rows = %d, want 3", tb.Rows())
	}
	if tb := obs.ChainDepthTable(lin); tb.Rows() != ttl+1 {
		t.Fatalf("chain-depth table rows = %d, want %d", tb.Rows(), ttl+1)
	}
}

// TestLineageSurvivesRetransmit runs the chain workload over the chaos
// transport: drops, duplicates, and delays force retransmissions, and the
// lineage riding the outstanding table must come through intact.
func TestLineageSurvivesRetransmit(t *testing.T) {
	u, mt := chainUniverse(Config{
		Ranks: 3, ThreadsPerRank: 0, CoalesceSize: 2, TraceCapacity: 1 << 16,
		FaultPlan: &FaultPlan{Seed: 7, Drop: 0.15, Dup: 0.1, Delay: 0.1},
	})
	runChains(t, u, mt, 2, 3, 4)
	if u.Stats.Snapshot().Retransmits == 0 {
		t.Fatal("fault plan injected no retransmits; test is vacuous")
	}
	meta, recs := u.ExportTrace("chaos-chains")
	lin := obs.BuildLineage(meta, recs)
	if !lin.Connected() {
		t.Fatalf("lineage broken under retransmission: %d orphans", lin.Orphans)
	}
	if want := int(u.Stats.Snapshot().HandlersRun); lin.Handlers() != want {
		t.Fatalf("reconstructed %d handlers, stats say %d (dups must not mint ids)", lin.Handlers(), want)
	}
}

// TestLineageRecoveryReplay crashes a rank mid-epoch with recovery enabled:
// the committed replay's lineage must be connected, and its critical path
// must land in the replay attempt, not the aborted one.
func TestLineageRecoveryReplay(t *testing.T) {
	u, mt := chainUniverse(Config{
		Ranks: 3, ThreadsPerRank: 0, CoalesceSize: 2, TraceCapacity: 1 << 16,
		Recovery: true,
		FaultPlan: &FaultPlan{
			Seed:    11,
			Crashes: []Crash{{Rank: 1, Epoch: 1, AfterHandled: 3}},
		},
	})
	runChains(t, u, mt, 3, 3, 4)
	if u.Stats.Snapshot().Recoveries == 0 {
		t.Fatal("no recovery happened; test is vacuous")
	}
	meta, recs := u.ExportTrace("recovery-chains")
	lin := obs.BuildLineage(meta, recs)
	if !lin.Connected() {
		t.Fatalf("lineage broken across recovery replay: %d orphans", lin.Orphans)
	}
	for _, e := range lin.Epochs {
		cp := lin.CriticalPathOf(e)
		if cp == nil || cp.Broken || !obs.IsRootLineageID(cp.Root) {
			t.Fatalf("epoch %d: bad critical path after recovery: %+v", e.Epoch, cp)
		}
	}
}

// TestLineageOff checks the off switch: a traced run with LineageOff records
// no handler events and stamps no ids.
func TestLineageOff(t *testing.T) {
	u, mt := chainUniverse(Config{
		Ranks: 2, ThreadsPerRank: 1, CoalesceSize: 4,
		TraceCapacity: 1 << 14, Lineage: LineageOff,
	})
	runChains(t, u, mt, 1, 4, 3)
	_, recs := u.ExportTrace("off")
	for _, rec := range recs {
		if rec.Kind == "handler" {
			t.Fatalf("LineageOff run exported a handler record: %+v", rec)
		}
	}
	meta, recs := u.ExportTrace("off")
	if lin := obs.BuildLineage(meta, recs); lin.Handlers() != 0 {
		t.Fatalf("BuildLineage found %d handlers in a LineageOff trace", lin.Handlers())
	}
}

// TestLineageOnWithoutTracing checks that forced stamping without a tracer
// runs cleanly (ids propagate, nothing is recorded).
func TestLineageOnWithoutTracing(t *testing.T) {
	u, mt := chainUniverse(Config{Ranks: 2, ThreadsPerRank: 1, CoalesceSize: 4, Lineage: LineageOn})
	runChains(t, u, mt, 1, 4, 3)
	if evs := u.Trace(); evs != nil {
		t.Fatalf("untraced run returned %d events", len(evs))
	}
}

// TestTraceRingSize covers the satellite's memory control: an explicit
// per-rank ring size enables tracing by itself, bounds retention exactly, and
// absurd values fail loudly at construction.
func TestTraceRingSize(t *testing.T) {
	const per = 64
	u, mt := chainUniverse(Config{Ranks: 2, ThreadsPerRank: 1, CoalesceSize: 1, TraceRingSize: per})
	runChains(t, u, mt, 2, 40, 3)
	evs := u.Trace()
	if len(evs) == 0 {
		t.Fatal("TraceRingSize alone did not enable tracing")
	}
	if len(evs) > 2*per {
		t.Fatalf("retained %d events, ring bound is %d", len(evs), 2*per)
	}
	if u.TraceDropped() == 0 {
		t.Fatal("workload did not overflow the ring; bound untested")
	}

	for _, bad := range []int{-1, maxTraceRingSize + 1} {
		func() {
			defer func() {
				p := recover()
				if p == nil {
					t.Fatalf("TraceRingSize %d did not panic", bad)
				}
				if msg, ok := p.(string); !ok || !strings.Contains(msg, "TraceRingSize") {
					t.Fatalf("TraceRingSize %d: unclear panic %v", bad, p)
				}
			}()
			NewUniverse(Config{Ranks: 1, TraceRingSize: bad})
		}()
	}
}

// TestLineageRingOverflow is the satellite's wraparound coverage: when
// lineage events overwrite the ring, ExportTrace stays ordered (timestamps
// non-decreasing, spans well-formed) and the reconstructor degrades to
// reporting orphans instead of failing.
func TestLineageRingOverflow(t *testing.T) {
	u, mt := chainUniverse(Config{Ranks: 4, ThreadsPerRank: 2, CoalesceSize: 2, TraceRingSize: 48})
	runChains(t, u, mt, 3, 16, 5)
	if u.TraceDropped() == 0 {
		t.Fatal("ring did not wrap; overflow untested")
	}
	meta, recs := u.ExportTrace("overflow")
	// Span records are start-anchored (TS = event end − Dur) while the merge
	// orders by event end, so the export's ordering invariant is on end
	// times: rec.TS + rec.Dur never goes backwards.
	last := int64(-1)
	for i, rec := range recs {
		if end := rec.TS + rec.Dur; end < last {
			t.Fatalf("record %d out of order: end %d after %d", i, end, last)
		} else {
			last = end
		}
		if rec.Dur < 0 {
			t.Fatalf("record %d has negative duration: %+v", i, rec)
		}
	}
	lin := obs.BuildLineage(meta, recs)
	for _, e := range lin.Epochs {
		if cp := lin.CriticalPathOf(e); cp != nil {
			// A chain may be truncated at an overwritten parent, but the
			// walk itself must stay sound.
			for i := 1; i < len(cp.Hops); i++ {
				if cp.Hops[i].Node.Parent != cp.Hops[i-1].Node.ID {
					t.Fatalf("epoch %d: truncated path has inconsistent hops", e.Epoch)
				}
			}
		}
	}
}
