package am

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"declpat/internal/obs"
)

// Reliable-delivery layer (active when Config.FaultPlan != nil).
//
// Sender side: each (dest, type) link assigns consecutive sequence numbers
// to shipped envelopes and keeps every envelope in an outstanding table
// until the receiver acknowledges it. Retransmission is poll-driven: every
// flushAll on the sending rank advances that rank's link tick and
// retransmits overdue envelopes with exponential backoff — no timer
// goroutines exist, so nothing can fire after Universe.Run's teardown
// (see the shutdown audit in universe.go).
//
// Receiver side: each (src, type) link tracks the contiguous prefix of
// delivered sequence numbers plus a set of out-of-order arrivals (delay
// faults reorder envelopes). A duplicate — retransmit of a delivered
// envelope or a network duplicate — is suppressed before any handler runs
// and re-acknowledged, so user messages are handled exactly once and the
// termination detectors' counters (pending, sentC/recvC) are never
// double-counted.
//
// Epoch safety: both termination detectors additionally require every link
// to be quiet (no outstanding, no delayed envelopes — relPending == 0 on
// every rank), so an epoch ends only after every envelope it shipped has
// been delivered exactly once *and* acknowledged. The only traffic that can
// cross an epoch boundary is a redundant duplicate ack, whose handler is a
// no-op.

// ackTypeID marks acknowledgement envelopes in the inbox stream.
const ackTypeID int32 = -1

// ackBody is the payload of an acknowledgement envelope: the message type
// whose (src=receiver's view, seq) envelope is being acknowledged.
type ackBody struct {
	typ int32
}

// outEnvelope is one unacknowledged envelope held by the sender.
type outEnvelope struct {
	data     any      // the original []T batch; re-encoded per attempt for wire types
	lin      []uint64 // causal lineage per message, preserved across retransmits
	attempts int      // transmissions performed so far
	due      uint64
	sentNs   int64 // first-transmission timestamp (Config.Timing ack RTT)
	// refs guards the batch against recycling while still reachable: the
	// outstanding table holds one reference and every in-flight
	// retransmission takes one more for the duration of its re-encode.
	// Whoever drops the count to zero owns the batch; for wire types it
	// returns the batch to the type's pool (the receiver only ever sees a
	// decoded copy, so the ack proves the sender's copy is dead). Non-wire
	// batches ship by reference and are never pooled here — the ack precedes
	// the receiver's handler loop, which still reads them.
	refs atomic.Int32
}

// release drops one reference to the outstanding batch and recycles it on
// the last drop (wire types only; see refs).
func (o *outEnvelope) release(rec *msgType) {
	if o.refs.Add(-1) == 0 && rec.wire {
		rec.recycle(o.data)
	}
}

// delayedEnvelope is an envelope held back by the simulated network.
type delayedEnvelope struct {
	env envelope
	due uint64
}

// sendLink is one rank's sender-side state for one (dest, type) link.
type sendLink struct {
	mu      sync.Mutex
	nextSeq uint64
	out     map[uint64]*outEnvelope
	delayed []delayedEnvelope
}

// recvLink is one rank's receiver-side dedup window for one (src, type)
// link: every seq <= contig has been delivered, plus the out-of-order seqs
// in ahead. acks counts acknowledgements issued (the salt for ack-drop
// decisions, so each re-ack rolls an independent fault).
type recvLink struct {
	mu     sync.Mutex
	contig uint64
	ahead  map[uint64]struct{}
	acks   uint64
}

// initReliability allocates the per-rank link state. Called from Run once
// the type set is frozen, and again during recovery's scrub phase. relInit
// orders the table swap against requeueOutstanding, the one reader that
// runs on a transport goroutine instead of a rank-owned one.
func (r *Rank) initReliability(ntypes int) {
	n := r.u.cfg.Ranks
	send := make([][]sendLink, n)
	recv := make([][]recvLink, n)
	for i := 0; i < n; i++ {
		send[i] = make([]sendLink, ntypes)
		recv[i] = make([]recvLink, ntypes)
	}
	r.relInit.Lock()
	r.send = send
	r.recv = recv
	r.relInit.Unlock()
}

// requeueOutstanding marks every unacknowledged envelope bound for dest due
// for immediate retransmission and returns how many it marked. Called by a
// socket backend right after a reconnect: frames written into the dead
// connection were lost exactly like dropped packets, and rather than wait
// out their (possibly deep) backoff the sender replays them through the
// normal retransmit path at the next poll. The attempt count resets too —
// the ceiling measures failures on a connection believed live, and a
// reconnect is proof the prior attempts went into a dead pipe, so each
// connection incarnation gets the full budget. Envelopes parked at the
// retransmit ceiling stay parked — the link-death fault has already been
// raised for them.
func (r *Rank) requeueOutstanding(dest int) int {
	r.relInit.Lock()
	defer r.relInit.Unlock()
	if r.send == nil || dest < 0 || dest >= len(r.send) {
		return 0
	}
	n := 0
	for typ := range r.send[dest] {
		l := &r.send[dest][typ]
		l.mu.Lock()
		for _, o := range l.out {
			if o.due != ^uint64(0) {
				o.due = 0
				o.attempts = 0
				n++
			}
		}
		l.mu.Unlock()
	}
	return n
}

// nextSeq assigns the next sequence number on (r → dest, typ) and records
// the batch as outstanding.
func (r *Rank) nextSeq(dest int, typ int32, data any, lin []uint64) uint64 {
	l := &r.send[dest][typ]
	o := &outEnvelope{
		data: data,
		lin:  lin,
	}
	o.refs.Store(1) // the outstanding table's reference; dropped by handleAck
	if r.u.ackRTT != nil {
		o.sentNs = obs.Now()
	}
	l.mu.Lock()
	l.nextSeq++
	seq := l.nextSeq
	o.due = r.linkTick.Load() + r.u.fp.backoffTicks(r.id, dest, int(typ), seq, 0)
	if l.out == nil {
		l.out = make(map[uint64]*outEnvelope)
	}
	l.out[seq] = o
	l.mu.Unlock()
	r.relAdd(1)
	return seq
}

// holdDelayed parks an envelope on the sending link until the rank's tick
// reaches due (the release happens in pollLinks).
func (r *Rank) holdDelayed(dest int, e envelope, due uint64) {
	l := &r.send[dest][e.typeID]
	l.mu.Lock()
	l.delayed = append(l.delayed, delayedEnvelope{env: e, due: due})
	l.mu.Unlock()
	r.relAdd(1)
}

// admit records (src, typ, seq) in the dedup window. It reports whether the
// envelope is fresh (false: duplicate, must be suppressed) and returns the
// ack salt to use when acknowledging it.
func (r *Rank) admit(src int, typ int32, seq uint64) (fresh bool, salt uint64) {
	l := &r.recv[src][typ]
	l.mu.Lock()
	defer l.mu.Unlock()
	salt = l.acks
	l.acks++
	if seq <= l.contig {
		return false, salt
	}
	if _, dup := l.ahead[seq]; dup {
		return false, salt
	}
	if l.ahead == nil {
		l.ahead = make(map[uint64]struct{})
	}
	l.ahead[seq] = struct{}{}
	for {
		if _, ok := l.ahead[l.contig+1]; !ok {
			break
		}
		delete(l.ahead, l.contig+1)
		l.contig++
	}
	return true, salt
}

// sendAck acknowledges envelope (src→r, typ, seq). Acks ride the same
// simulated network and are dropped with the plan's Drop probability; a
// lost ack is recovered by the sender's retransmit, which the receiver
// suppresses and re-acknowledges with a fresh salt.
func (r *Rank) sendAck(src int, typ int32, seq uint64, salt uint64) {
	u := r.u
	if u.linkDown(r.id, src) {
		// Acks ride the same links: a severed (r → src) direction starves
		// the peer's retransmit loop into declaring the link dead.
		r.st.Inc(cAcksDropped)
		u.trace(r.id, TraceDrop, int64(ackTypeID), int64(seq))
		return
	}
	if u.fp.roll(faultAckDrop, r.id, src, int(typ), seq, int(salt)) < u.fp.Drop {
		r.st.Inc(cAcksDropped)
		u.trace(r.id, TraceDrop, int64(ackTypeID), int64(seq))
		return
	}
	r.st.Inc(cAckMsgs)
	r.st.Add(cBytesSent, envelopeHeaderBytes)
	u.trace(r.id, TraceAck, int64(typ), int64(seq))
	u.push(r.id, src, envelope{
		typeID: ackTypeID, src: int32(r.id), seq: seq, gen: u.epochGen.Load(), data: ackBody{typ: typ},
	})
}

// handleAck clears the acknowledged envelope from the sender's outstanding
// table. Duplicate acks (re-acks of suppressed retransmits) are no-ops.
func (r *Rank) handleAck(e envelope) {
	ab := e.data.(ackBody)
	l := &r.send[int(e.src)][ab.typ]
	l.mu.Lock()
	o, ok := l.out[e.seq]
	if ok {
		delete(l.out, e.seq)
	}
	l.mu.Unlock()
	if ok {
		if r.u.ackRTT != nil && o.sentNs != 0 {
			// RTT from the first transmission, so a retransmitted
			// envelope's RTT includes the recovery latency.
			r.u.ackRTT.Observe(r.shard, obs.Now()-o.sentNs)
		}
		r.relAdd(-1)
		o.release(r.u.types[ab.typ])
	}
}

// backoffShiftCap bounds the exponential retransmit backoff at
// RetransmitBase << 6 ticks.
const backoffShiftCap = 6

// backoffTicks returns the retransmit timeout after `attempts`
// transmissions on link (src → dest, typ, seq): exponential in attempts,
// capped at RetransmitBase << backoffShiftCap, and — when
// FaultPlan.BackoffJitter is set — spread deterministically by up to
// ±BackoffJitter of the nominal value (never below one tick). The jitter is
// a pure function of (seed, link, seq, attempts), so a fixed seed still
// yields a reproducible schedule; an acknowledged envelope leaves the table,
// so a later envelope on the same link restarts from attempts = 0.
func (fp *FaultPlan) backoffTicks(src, dest, typ int, seq uint64, attempts int) uint64 {
	shift := attempts
	if shift > backoffShiftCap {
		shift = backoffShiftCap
	}
	t := uint64(fp.RetransmitBase) << shift
	if fp.BackoffJitter > 0 {
		f := 1 - fp.BackoffJitter + 2*fp.BackoffJitter*fp.roll(faultBackoffJitter, src, dest, typ, seq, attempts)
		if t = uint64(float64(t) * f); t < 1 {
			t = 1
		}
	}
	return t
}

// pollLinks advances this rank's link tick, releases matured delayed
// envelopes, and retransmits overdue unacknowledged envelopes. It reports
// whether it moved anything. Called from flushAll, i.e. from epoch bodies
// and progress loops only — never from a detached goroutine.
func (r *Rank) pollLinks() bool {
	u := r.u
	if u.fp == nil || r.relPendingNow() == 0 {
		return false
	}
	if u.epochState.Load() == epochAborting {
		return false // the epoch is rolling back; recovery resets the links
	}
	if ivl := u.tickIntNs; ivl > 0 {
		// Real-latency backends pace the tick: a spinning progress loop
		// polls millions of times a second, which would turn the
		// tick-denominated retransmit timeouts into microseconds and
		// retransmit every frame long before a socket round trip completes.
		nowNs := obs.Now()
		last := r.lastTickNs.Load()
		if nowNs-last < ivl || !r.lastTickNs.CompareAndSwap(last, nowNs) {
			return false
		}
	}
	now := r.linkTick.Add(1)
	worked := false
	type resend struct {
		rec     *msgType
		o       *outEnvelope
		dest    int
		seq     uint64
		attempt int
	}
	var resends []resend
	var releases []envelope
	var releaseDest []int
	for dest := range r.send {
		for typ := range r.send[dest] {
			l := &r.send[dest][typ]
			l.mu.Lock()
			if len(l.delayed) > 0 {
				kept := l.delayed[:0]
				for _, d := range l.delayed {
					if d.due <= now {
						releases = append(releases, d.env)
						releaseDest = append(releaseDest, dest)
					} else {
						kept = append(kept, d)
					}
				}
				l.delayed = kept
			}
			// Collect due seqs in sorted order: map iteration order is
			// random, and the retransmission order feeds delivery and
			// ack timing, which must be reproducible for a fixed seed
			// on a deterministic (single-threaded) schedule.
			var due []uint64
			for seq, o := range l.out {
				if o.due <= now {
					due = append(due, seq)
				}
			}
			slices.Sort(due)
			for _, seq := range due {
				o := l.out[seq]
				o.attempts++
				if o.attempts > u.fp.MaxAttempts {
					// Retransmit ceiling: declare the link dead. The
					// envelope is parked (never due again) and the
					// structured fault aborts the epoch — recovery heals
					// the link, resets this table, and replays; without
					// recovery Universe.Run returns the fault.
					o.due = ^uint64(0)
					l.mu.Unlock()
					r.st.Inc(cLinkDeaths)
					u.trace(r.id, TraceLinkDead, int64(typ), int64(seq))
					u.raiseFault(RankFault{
						Kind: FaultLinkDead, Rank: dest, Epoch: u.epochSeq.Load(),
						Detail: fmt.Sprintf(
							"link %d->%d type %s seq %d dead after %d attempts (FaultPlan seed %d)",
							r.id, dest, u.types[typ].name, seq, o.attempts, u.fp.Seed),
					})
					return worked
				}
				o.due = now + u.fp.backoffTicks(r.id, dest, typ, seq, o.attempts)
				// Pin the batch across the retransmission: a concurrent ack
				// must not recycle it while xmit is still re-encoding.
				o.refs.Add(1)
				resends = append(resends, resend{u.types[typ], o, dest, seq, o.attempts})
			}
			l.mu.Unlock()
		}
	}
	for i, e := range releases {
		u.push(r.id, releaseDest[i], e)
		r.relAdd(-1)
		worked = true
	}
	for _, rs := range resends {
		rs.rec.xmit(r, rs.dest, rs.seq, rs.attempt, rs.o.data, rs.o.lin)
		rs.o.release(rs.rec)
		worked = true
	}
	return worked
}

// totalRelPending sums the per-rank count of unacknowledged and delayed
// envelopes. Zero means every shipped envelope has been delivered and
// acknowledged — part of both detectors' quiescence condition, so epochs
// never end with protocol traffic still in flight.
func (u *Universe) totalRelPending() int64 {
	if u.fp == nil {
		return 0
	}
	return u.relPending.Value()
}
