package am

import "declpat/internal/obs"

// PhaseScope times one phase of an epoch on one rank. It is a plain value:
// opening a scope when phase timing and tracing are both disabled returns
// the zero scope without reading the clock, and End on the zero scope is a
// no-op — the hot path pays one nil check each way and allocates nothing.
//
// Usage follows the uniform kernel template:
//
//	ph := r.Phase(obs.PhaseCollect)
//	... gather the frontier ...
//	ph.End()
//
// The substrate opens kernel, barrier, and recovery scopes itself;
// strategies and algorithms add collect / build_csr / emit around their
// rank-local sections. Phases are a breakdown of where time goes, not a
// strict partition: a barrier wait inside an epoch attempt is counted both
// in the barrier phase and in the enclosing kernel span.
type PhaseScope struct {
	r     *Rank
	phase obs.Phase
	start int64
}

// Phase opens a phase scope on this rank. Gated like Config.Timing: with
// timing, tracing, and the flight recorder all off the scope is inert and
// free. With a flight recorder attached the scope also marks the rank's
// open-phase cell, so a process killed mid-phase dumps with the phase named.
func (r *Rank) Phase(p obs.Phase) PhaseScope {
	u := r.u
	if u.phases == nil && u.tracer == nil && u.flight == nil {
		return PhaseScope{}
	}
	s := PhaseScope{r: r, phase: p, start: obs.Now()}
	if u.flight != nil {
		u.flight.PhaseEnter(r.id, p, s.start)
	}
	return s
}

// End closes the scope: the elapsed time lands in the rank's per-phase
// histogram (Config.Timing) and, when tracing or the flight recorder is on,
// as a TracePhase span (Arg = phase id, Arg2 = epoch sequence at close).
func (s PhaseScope) End() {
	if s.r == nil {
		return
	}
	r, u := s.r, s.r.u
	end := obs.Now()
	dur := end - s.start
	u.phases.Observe(s.phase, r.shard, dur)
	if u.flight != nil {
		u.flight.PhaseExit(r.id)
	}
	if u.tracer != nil || u.flight != nil {
		u.traceSpan(r.id, TracePhase, int64(s.phase), u.epochSeq.Load(), end, dur)
	}
}

// Phases returns the per-phase duration histograms aggregated over ranks
// (phase name -> snapshot), or nil unless Config.Timing is set.
func (u *Universe) Phases() map[string]obs.HistSnapshot { return u.phases.Snapshot() }

// RankPhases returns each rank's per-phase duration histograms, or nil
// unless Config.Timing is set. With Config.UnshardedStats every rank shares
// shard 0, so index 0 carries the combined view and the rest are empty.
func (u *Universe) RankPhases() []map[string]obs.HistSnapshot {
	if u.phases == nil {
		return nil
	}
	out := make([]map[string]obs.HistSnapshot, u.cfg.Ranks)
	shards := u.cfg.statShards()
	for i := range out {
		if i < shards {
			out[i] = u.phases.ShardSnapshot(i)
		}
	}
	return out
}
