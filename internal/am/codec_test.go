package am

import (
	"math"
	"reflect"
	"sync/atomic"
	"testing"
)

// codecPayload exercises every lane kind: unsigned and signed integers of
// several widths, bools, floats, nested structs, and arrays.
type codecPayload struct {
	U8   uint8
	U32  uint32
	U64  uint64
	I16  int16
	I64  int64
	B    bool
	F32  float32
	F64  float64
	Arr  [3]int64
	Nest struct {
		V uint32
		W int8
	}
}

func samplePayloads() []codecPayload {
	var p1, p2, p3 codecPayload
	p1 = codecPayload{U8: 255, U32: 1 << 30, U64: math.MaxUint64, I16: -32768,
		I64: math.MinInt64, B: true, F32: -1.5, F64: math.Pi, Arr: [3]int64{-1, 0, 7}}
	p1.Nest.V = 42
	p1.Nest.W = -8
	// p2 is all-zero: the cheapest wire case (bitmap only).
	p3 = codecPayload{U32: 1, I64: 1, F64: 1.0}
	return []codecPayload{p1, p2, p3}
}

func TestFixedCodecRoundTrip(t *testing.T) {
	c, err := FixedCodec[codecPayload]()
	if err != nil {
		t.Fatal(err)
	}
	batch := samplePayloads()
	b, err := c.Append(nil, batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, batch) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, batch)
	}
	// Round trip into a dirty recycled destination must be identical too.
	dirty := make([]codecPayload, 8)
	for i := range dirty {
		dirty[i] = codecPayload{U64: 999, I64: -999, B: true}
	}
	got2, err := c.Decode(dirty[:0], b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, batch) {
		t.Fatalf("dirty-destination round trip mismatch: %+v", got2)
	}
}

func TestFixedCodecEmptyBatch(t *testing.T) {
	c, _ := FixedCodec[uint64]()
	b, err := c.Append(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(nil, b)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: got %v, err %v", got, err)
	}
}

func TestFixedCodecRejectsReferenceTypes(t *testing.T) {
	if _, err := FixedCodec[string](); err == nil {
		t.Error("string accepted")
	}
	if _, err := FixedCodec[struct{ P *int }](); err == nil {
		t.Error("pointer field accepted")
	}
	if _, err := FixedCodec[struct{ S []byte }](); err == nil {
		t.Error("slice field accepted")
	}
	if _, err := FixedCodec[struct{ M map[int]int }](); err == nil {
		t.Error("map field accepted")
	}
	if _, err := FixedCodec[struct{ C complex128 }](); err == nil {
		t.Error("complex field accepted")
	}
	if !HasFixedLayout[codecPayload]() {
		t.Error("fixed-layout struct rejected")
	}
}

// TestFixedCodecMalformedInputs feeds the decoder the classic attacker/
// corruption shapes; every one must come back as an error, never a panic.
func TestFixedCodecMalformedInputs(t *testing.T) {
	c, _ := FixedCodec[codecPayload]()
	valid, _ := c.Append(nil, samplePayloads())
	cases := map[string][]byte{
		"empty":           {},
		"bad version":     {0x7f, 0x01},
		"truncated count": {fixedWireVersion},
		"absurd count":    {fixedWireVersion, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		"count past end":  {fixedWireVersion, 0x10},
		"truncated tail":  valid[:len(valid)-1],
		"trailing bytes":  append(append([]byte{}, valid...), 0x00),
	}
	// A word that overflows its lane: one message, bitmap selecting U8
	// (lane 0), carrying a 2-byte varint value 300 > MaxUint8.
	cu8, _ := FixedCodec[struct{ V uint8 }]()
	cases["lane overflow"] = []byte{fixedWireVersion, 0x01, 0x01, 0xac, 0x02}
	for name, b := range cases {
		dec := c
		if name == "lane overflow" {
			if _, err := cu8.Decode(nil, b); err == nil {
				t.Errorf("%s: decode accepted malformed input", name)
			}
			continue
		}
		if _, err := dec.Decode(nil, b); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}

func TestGobCodecRoundTrip(t *testing.T) {
	type refPayload struct {
		ID  uint64
		Tag string
		Vs  []int64
	}
	c := GobCodec[refPayload]()
	batch := []refPayload{{ID: 1, Tag: "a", Vs: []int64{1, 2}}, {}, {ID: 3, Tag: "z"}}
	b, err := c.Append(nil, batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, batch) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := c.Decode(nil, b[:len(b)/2]); err == nil {
		t.Error("truncated gob accepted")
	}
	if _, err := c.Decode(nil, []byte{0xde, 0xad}); err == nil {
		t.Error("garbage gob accepted")
	}
}

// TestGobCodecDirtyDestination pins the regression where gob's omitted
// zero-valued fields left stale data in recycled batch elements.
func TestGobCodecDirtyDestination(t *testing.T) {
	type p struct{ A, B int64 }
	c := GobCodec[p]()
	b, _ := c.Append(nil, []p{{A: 0, B: 5}})
	dirty := []p{{A: 96, B: 96}}
	got, err := c.Decode(dirty[:0], b)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].A != 0 || got[0].B != 5 {
		t.Fatalf("stale field survived decode: %+v", got[0])
	}
}

// flakyCodec wraps the fixed codec but fails its first `failures` decodes,
// simulating a decode error on bytes that passed the checksum (e.g. a codec
// bug or a hash collision on corrupted bytes).
type flakyCodec struct {
	Codec[uint64]
	remaining atomic.Int64
}

func (f *flakyCodec) Name() string { return "flaky" }

func (f *flakyCodec) Decode(dst []uint64, b []byte) ([]uint64, error) {
	if f.remaining.Add(-1) >= 0 {
		return nil, errFlaky
	}
	return f.Codec.Decode(dst, b)
}

var errFlaky = fmtError("flaky codec: injected decode failure")

type fmtError string

func (e fmtError) Error() string { return string(e) }

// TestDecodeErrorRoutesThroughRetransmit proves the bugfix: a decode error
// in reliable mode must not crash the rank — the envelope is discarded
// unacknowledged, the retransmit path re-sends it, and the epoch completes
// with every message handled exactly once.
func TestDecodeErrorRoutesThroughRetransmit(t *testing.T) {
	inner, err := FixedCodec[uint64]()
	if err != nil {
		t.Fatal(err)
	}
	fc := &flakyCodec{Codec: inner}
	fc.remaining.Store(3)
	u := NewUniverse(Config{Ranks: 2, ThreadsPerRank: 1, CoalesceSize: 4,
		FaultPlan: &FaultPlan{Seed: 9}})
	var sum atomic.Int64
	mt := Register(u, "flaky", func(r *Rank, m uint64) { sum.Add(int64(m)) }).WithCodec(fc)
	const per = 40
	if err := u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {
			for i := 1; i <= per; i++ {
				mt.SendTo(r, 1-r.ID(), uint64(i))
			}
		})
	}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	want := int64(2 * per * (per + 1) / 2)
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d (messages lost or duplicated)", sum.Load(), want)
	}
	if got := u.Stats.DecodeErrors(); got != 3 {
		t.Fatalf("DecodeErrors = %d, want 3", got)
	}
	if u.Stats.Retransmits() == 0 {
		t.Fatal("decode errors recovered without retransmits?")
	}
}

// TestWireTransportBothCodecsIdentical ships the same workload through the
// fixed and gob codecs under faults and checks the handler-observed results
// agree.
func TestWireTransportBothCodecsIdentical(t *testing.T) {
	type msg struct {
		V uint32
		D int64
	}
	run := func(mk func(*MsgType[msg])) int64 {
		u := NewUniverse(Config{Ranks: 3, ThreadsPerRank: 2, CoalesceSize: 8,
			FaultPlan: &FaultPlan{Seed: 5, Drop: 0.1, Dup: 0.1, Delay: 0.1, Corrupt: 0.1}})
		var sum atomic.Int64
		mt := Register(u, "m", func(r *Rank, m msg) { sum.Add(int64(m.V)*31 + m.D) })
		mk(mt)
		if err := u.Run(func(r *Rank) {
			r.Epoch(func(ep *Epoch) {
				for i := 0; i < 64; i++ {
					mt.SendTo(r, (r.ID()+1+i)%3, msg{V: uint32(i), D: int64(-i)})
				}
			})
		}); err != nil {
			t.Fatal(err)
		}
		return sum.Load()
	}
	fixed := run(func(mt *MsgType[msg]) {
		if mt.WithWire().CodecName() != "fixed" {
			t.Fatal("expected fixed codec")
		}
	})
	gob := run(func(mt *MsgType[msg]) { mt.WithGobTransport() })
	if fixed != gob {
		t.Fatalf("fixed=%d gob=%d", fixed, gob)
	}
}

// TestFixedCodecSmallerThanGob pins the size win that motivates the codec:
// a coalesced batch of zero-heavy word structs must encode smaller under the
// fixed codec than under gob.
func TestFixedCodecSmallerThanGob(t *testing.T) {
	type pat struct {
		Action int32
		Dest   uint32
		V      uint32
		Vals   [12]int64
	}
	batch := make([]pat, 64)
	for i := range batch {
		batch[i] = pat{Action: 1, Dest: uint32(i), V: uint32(i * 3)}
		batch[i].Vals[0] = int64(i)
	}
	fc, err := FixedCodec[pat]()
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := fc.Append(nil, batch)
	gb, _ := GobCodec[pat]().Append(nil, batch)
	if len(fb) >= len(gb) {
		t.Fatalf("fixed %d B >= gob %d B for a zero-heavy batch", len(fb), len(gb))
	}
	t.Logf("fixed=%d B, gob=%d B (%.1fx)", len(fb), len(gb), float64(len(gb))/float64(len(fb)))
}
