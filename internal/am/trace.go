package am

import (
	"fmt"

	"declpat/internal/obs"
)

// TraceKind classifies trace events.
type TraceKind uint8

// Trace event kinds.
const (
	// TraceEpochBegin: a rank entered an epoch (Arg = epoch sequence).
	TraceEpochBegin TraceKind = iota
	// TraceEpochEnd: a rank left an epoch (Arg = epoch sequence; Dur = the
	// rank's time inside the epoch, making begin/end a span).
	TraceEpochEnd
	// TraceShip: an envelope was shipped (Arg = message type id,
	// Arg2 = batch length).
	TraceShip
	// TraceDeliver: an envelope was delivered (Arg = message type id,
	// Arg2 = batch length; Dur = time spent delivering the batch —
	// dedup, decode, and every handler invocation).
	TraceDeliver
	// TraceFlush: an explicit Flush (epoch_flush) ran.
	TraceFlush
	// TraceTDWave: a four-counter probe wave completed (Arg = 1 if the
	// wave detected termination).
	TraceTDWave
	// TraceDrop: the fault injector discarded a transmission (Arg =
	// message type id, or -1 for an ack; Arg2 = sequence number).
	TraceDrop
	// TraceDup: the fault injector delivered an envelope twice (Arg =
	// type id, Arg2 = seq).
	TraceDup
	// TraceDelay: the fault injector held an envelope for out-of-order
	// release (Arg = type id, Arg2 = seq).
	TraceDelay
	// TraceRetransmit: the sender retransmitted an unacknowledged
	// envelope (Arg = type id, Arg2 = seq).
	TraceRetransmit
	// TraceCorrupt: a gob-wire envelope failed its checksum at the
	// receiver and was discarded (Arg = type id, Arg2 = seq).
	TraceCorrupt
	// TraceSuppress: the receiver's dedup window discarded a duplicate
	// envelope (Arg = type id, Arg2 = seq).
	TraceSuppress
	// TraceAck: the receiver acknowledged an envelope (Arg = type id,
	// Arg2 = seq).
	TraceAck
	// TraceCrash: a rank died crash-stop (Arg = epoch sequence,
	// Arg2 = FaultKind).
	TraceCrash
	// TracePanic: a message handler panicked and was contained (Arg =
	// message type id).
	TracePanic
	// TraceLinkDead: a link hit its retransmit ceiling and was declared
	// dead (Arg = type id, Arg2 = seq).
	TraceLinkDead
	// TraceEpochAbort: a rank fault aborted the current epoch attempt
	// (Arg = epoch sequence, Arg2 = FaultKind).
	TraceEpochAbort
	// TraceRecover: the universe rolled back to the epoch-boundary
	// checkpoint and restarted the dead rank (Arg = epoch sequence,
	// Arg2 = recovery count for this epoch).
	TraceRecover
	// TraceWatchdog: the stuck-epoch watchdog fired (Arg = epoch
	// sequence).
	TraceWatchdog
	// TraceHandler: one handler invocation completed (Arg = message type
	// id; Dur = handler execution time, so the span covers [TS-Dur, TS]).
	// ID is the invocation's lineage id and Parent the lineage id of the
	// invocation (or epoch-body root) whose send triggered it — recorded
	// only when lineage is on (Config.Lineage).
	TraceHandler
	// TraceDecodeError: a wire envelope passed its checksum but failed to
	// decode and was discarded unacknowledged (Arg = type id, Arg2 = seq).
	TraceDecodeError
	// TraceReconnect: a socket transport re-established a dead connection
	// (Arg = destination rank, Arg2 = dial attempts the outage took).
	TraceReconnect
	// TraceHeartbeatMiss: a socket link's liveness deadline expired with no
	// frame received; the connection was declared dead (Arg = peer rank).
	TraceHeartbeatMiss
	// TracePhase: a phase scope closed (Arg = obs.Phase id, Arg2 = epoch
	// sequence at close; Dur = the phase's duration, so the span covers
	// [TS-Dur, TS]).
	TracePhase
	// TraceQueryCross: a delivery carried a query-context stamp different
	// from the epoch's current query and was discarded (Arg = message type
	// id, Arg2 = the envelope's query id). Never emitted on a correct
	// substrate; see Rank.EpochCtx.
	TraceQueryCross

	// maxTraceKind is the highest valid TraceKind (tests use it to detect
	// torn/garbage events).
	maxTraceKind = TraceQueryCross
)

func (k TraceKind) String() string {
	switch k {
	case TraceEpochBegin:
		return "epoch-begin"
	case TraceEpochEnd:
		return "epoch-end"
	case TraceShip:
		return "ship"
	case TraceDeliver:
		return "deliver"
	case TraceFlush:
		return "flush"
	case TraceTDWave:
		return "td-wave"
	case TraceDrop:
		return "drop"
	case TraceDup:
		return "dup"
	case TraceDelay:
		return "delay"
	case TraceRetransmit:
		return "retransmit"
	case TraceCorrupt:
		return "corrupt"
	case TraceSuppress:
		return "suppress"
	case TraceAck:
		return "ack"
	case TraceCrash:
		return "crash"
	case TracePanic:
		return "panic"
	case TraceLinkDead:
		return "link-dead"
	case TraceEpochAbort:
		return "abort"
	case TraceRecover:
		return "recover"
	case TraceWatchdog:
		return "watchdog"
	case TraceHandler:
		return "handler"
	case TraceDecodeError:
		return "decode-error"
	case TraceReconnect:
		return "reconnect"
	case TraceHeartbeatMiss:
		return "hb-miss"
	case TracePhase:
		return "phase"
	case TraceQueryCross:
		return "query-cross"
	}
	return fmt.Sprintf("TraceKind(%d)", uint8(k))
}

// TraceEvent is one recorded substrate event. TS is a monotonic nanosecond
// timestamp (see obs.Now); Dur is non-zero for span-closing events
// (TraceEpochEnd, TraceDeliver) and covers [TS-Dur, TS].
type TraceEvent struct {
	Seq  int64 // global order, assigned by Trace()
	TS   int64 // monotonic ns
	Dur  int64 // span length in ns (0 for point events)
	Rank int32
	Kind TraceKind
	Arg  int64
	Arg2 int64
	// Q is the query context the event was recorded under (0 outside any
	// query epoch — see Rank.EpochCtx). It is what keeps interleaved queries
	// apart in exported timelines and the phase/epoch tables.
	Q int64
	// Causal lineage (TraceHandler only, zero elsewhere): ID identifies
	// this handler invocation, Parent the invocation or epoch-body root
	// whose send triggered it. See internal/obs lineage helpers for the id
	// scheme.
	ID     uint64
	Parent uint64
}

func (e TraceEvent) String() string {
	return fmt.Sprintf("#%d r%d %s arg=%d arg2=%d", e.Seq, e.Rank, e.Kind, e.Arg, e.Arg2)
}

// tracer records events into per-rank rings (obs.Rings): each rank appends
// under its own shard's lock, so recording never contends across ranks and —
// unlike the old single atomic-indexed global ring — a concurrent Trace()
// reads fully written events only (no torn reads). Each rank's ring holds
// perRank events (Config.TraceRingSize, or TraceCapacity split evenly); when
// a ring fills, its oldest events are overwritten (the tail of a long run is
// usually what matters).
type tracer struct {
	rings *obs.Rings[TraceEvent]
}

func newTracer(perRank, ranks int) *tracer {
	return &tracer{rings: obs.NewRings[TraceEvent](ranks, perRank)}
}

func (t *tracer) record(rank int, kind TraceKind, arg, arg2, ts, dur, q int64) {
	t.rings.Append(rank, TraceEvent{
		TS: ts, Dur: dur, Rank: int32(rank), Kind: kind, Arg: arg, Arg2: arg2, Q: q,
	})
}

// trace records a point event if tracing is enabled. Landmark kinds
// (flightKinds) are additionally mirrored into the flight recorder, which is
// on even when the trace rings are off — the gate stays two nil checks and a
// bit test for the high-rate kinds (ship/deliver/ack), which never touch the
// recorder.
func (u *Universe) trace(rank int, kind TraceKind, arg, arg2 int64) {
	landmark := u.flight != nil && flightKinds&(1<<kind) != 0
	if u.tracer == nil && !landmark {
		return
	}
	ts := obs.Now()
	if u.tracer != nil {
		u.tracer.record(rank, kind, arg, arg2, ts, 0, u.curQuery.Load())
	}
	if landmark {
		u.flightEvent(rank, kind, arg, arg2, ts, 0)
	}
}

// traceSpan records a span-closing event (timestamps supplied by the caller)
// if tracing is enabled; landmark kinds also land in the flight recorder.
func (u *Universe) traceSpan(rank int, kind TraceKind, arg, arg2, ts, dur int64) {
	if u.tracer != nil {
		u.tracer.record(rank, kind, arg, arg2, ts, dur, u.curQuery.Load())
	}
	if u.flight != nil && flightKinds&(1<<kind) != 0 {
		u.flightEvent(rank, kind, arg, arg2, ts, dur)
	}
}

// traceHandler records one handler invocation's lineage span (timestamps
// supplied by the caller; the caller checks that tracing is enabled).
func (u *Universe) traceHandler(rank int, typeID int64, id, parent uint64, ts, dur int64) {
	u.tracer.rings.Append(rank, TraceEvent{
		TS: ts, Dur: dur, Rank: int32(rank), Kind: TraceHandler, Arg: typeID,
		Q: u.curQuery.Load(), ID: id, Parent: parent,
	})
}

// Trace returns the recorded events merged across ranks in timestamp order
// (oldest retained first), with Seq assigned in that order. It is safe to
// call concurrently with recording — each rank's ring is read under its lock
// — though a call at a quiescent point (after Run or between epochs) sees a
// complete picture. Returns nil when tracing is disabled.
func (u *Universe) Trace() []TraceEvent {
	if u.tracer == nil {
		return nil
	}
	return u.tracer.rings.Merged(func(a, b TraceEvent) bool { return a.TS < b.TS },
		func(i int, ev TraceEvent) TraceEvent {
			ev.Seq = int64(i)
			return ev
		})
}

// TraceDropped reports how many events were overwritten by the per-rank
// rings.
func (u *Universe) TraceDropped() int64 {
	if u.tracer == nil {
		return 0
	}
	return u.tracer.rings.Dropped()
}
