package am

import (
	"fmt"
	"sync/atomic"
)

// TraceKind classifies trace events.
type TraceKind uint8

// Trace event kinds.
const (
	// TraceEpochBegin: a rank entered an epoch (Arg = epoch sequence).
	TraceEpochBegin TraceKind = iota
	// TraceEpochEnd: a rank left an epoch (Arg = epoch sequence).
	TraceEpochEnd
	// TraceShip: an envelope was shipped (Arg = message type id,
	// Arg2 = batch length).
	TraceShip
	// TraceDeliver: an envelope was delivered (Arg = message type id,
	// Arg2 = batch length).
	TraceDeliver
	// TraceFlush: an explicit Flush (epoch_flush) ran.
	TraceFlush
	// TraceTDWave: a four-counter probe wave completed (Arg = 1 if the
	// wave detected termination).
	TraceTDWave
	// TraceDrop: the fault injector discarded a transmission (Arg =
	// message type id, or -1 for an ack; Arg2 = sequence number).
	TraceDrop
	// TraceDup: the fault injector delivered an envelope twice (Arg =
	// type id, Arg2 = seq).
	TraceDup
	// TraceDelay: the fault injector held an envelope for out-of-order
	// release (Arg = type id, Arg2 = seq).
	TraceDelay
	// TraceRetransmit: the sender retransmitted an unacknowledged
	// envelope (Arg = type id, Arg2 = seq).
	TraceRetransmit
	// TraceCorrupt: a gob-wire envelope failed its checksum at the
	// receiver and was discarded (Arg = type id, Arg2 = seq).
	TraceCorrupt
	// TraceSuppress: the receiver's dedup window discarded a duplicate
	// envelope (Arg = type id, Arg2 = seq).
	TraceSuppress
	// TraceAck: the receiver acknowledged an envelope (Arg = type id,
	// Arg2 = seq).
	TraceAck
)

func (k TraceKind) String() string {
	switch k {
	case TraceEpochBegin:
		return "epoch-begin"
	case TraceEpochEnd:
		return "epoch-end"
	case TraceShip:
		return "ship"
	case TraceDeliver:
		return "deliver"
	case TraceFlush:
		return "flush"
	case TraceTDWave:
		return "td-wave"
	case TraceDrop:
		return "drop"
	case TraceDup:
		return "dup"
	case TraceDelay:
		return "delay"
	case TraceRetransmit:
		return "retransmit"
	case TraceCorrupt:
		return "corrupt"
	case TraceSuppress:
		return "suppress"
	case TraceAck:
		return "ack"
	}
	return fmt.Sprintf("TraceKind(%d)", uint8(k))
}

// TraceEvent is one recorded substrate event.
type TraceEvent struct {
	Seq  int64 // global order
	Rank int32
	Kind TraceKind
	Arg  int64
	Arg2 int64
}

func (e TraceEvent) String() string {
	return fmt.Sprintf("#%d r%d %s arg=%d arg2=%d", e.Seq, e.Rank, e.Kind, e.Arg, e.Arg2)
}

// tracer is a fixed-capacity global ring of events; when full, the oldest
// events are overwritten (the tail of a long run is usually what matters).
type tracer struct {
	ring []TraceEvent
	next atomic.Int64
}

func newTracer(capacity int) *tracer {
	return &tracer{ring: make([]TraceEvent, capacity)}
}

func (t *tracer) record(rank int, kind TraceKind, arg, arg2 int64) {
	seq := t.next.Add(1) - 1
	t.ring[seq%int64(len(t.ring))] = TraceEvent{
		Seq: seq, Rank: int32(rank), Kind: kind, Arg: arg, Arg2: arg2,
	}
}

// trace records an event if tracing is enabled.
func (u *Universe) trace(rank int, kind TraceKind, arg, arg2 int64) {
	if u.tracer != nil {
		u.tracer.record(rank, kind, arg, arg2)
	}
}

// Trace returns the recorded events in sequence order (oldest retained
// first). Call at a quiescent point (after Run or between epochs); events
// recorded concurrently with the call may be torn. Returns nil when tracing
// is disabled.
func (u *Universe) Trace() []TraceEvent {
	if u.tracer == nil {
		return nil
	}
	total := u.tracer.next.Load()
	n := int64(len(u.tracer.ring))
	start := int64(0)
	count := total
	if total > n {
		start = total - n
		count = n
	}
	out := make([]TraceEvent, 0, count)
	for s := start; s < total; s++ {
		ev := u.tracer.ring[s%n]
		if ev.Seq == s {
			out = append(out, ev)
		}
	}
	return out
}

// TraceDropped reports how many events were overwritten by the ring.
func (u *Universe) TraceDropped() int64 {
	if u.tracer == nil {
		return 0
	}
	total := u.tracer.next.Load()
	if n := int64(len(u.tracer.ring)); total > n {
		return total - n
	}
	return 0
}
