package am

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestQueueFIFO(t *testing.T) {
	q := newQueue()
	for i := 0; i < 1000; i++ {
		q.Push(envelope{typeID: int32(i)})
	}
	for i := 0; i < 1000; i++ {
		e, ok := q.TryPop()
		if !ok {
			t.Fatalf("TryPop %d: empty", i)
		}
		if e.typeID != int32(i) {
			t.Fatalf("TryPop %d: got typeID %d", i, e.typeID)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestQueueGrowPreservesOrder(t *testing.T) {
	// Exercise wrap-around + grow: interleave pushes and pops so head is
	// in the middle of the ring when growth happens.
	f := func(ops []bool) bool {
		q := newQueue()
		next, expect := int32(0), int32(0)
		for _, push := range ops {
			if push {
				q.Push(envelope{typeID: next})
				next++
			} else if e, ok := q.TryPop(); ok {
				if e.typeID != expect {
					return false
				}
				expect++
			}
		}
		for {
			e, ok := q.TryPop()
			if !ok {
				break
			}
			if e.typeID != expect {
				return false
			}
			expect++
		}
		return expect == next
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueConcurrent(t *testing.T) {
	q := newQueue()
	const producers, perProducer, consumers = 8, 2000, 4
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(envelope{typeID: 1})
			}
		}()
	}
	got := make(chan int, consumers)
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			n := 0
			for {
				_, ok := q.Pop()
				if !ok {
					break
				}
				n++
			}
			got <- n
		}()
	}
	wg.Wait()
	q.Close()
	cg.Wait()
	close(got)
	total := 0
	for n := range got {
		total += n
	}
	if total != producers*perProducer {
		t.Fatalf("consumed %d, want %d", total, producers*perProducer)
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	q := newQueue()
	done := make(chan envelope)
	go func() {
		e, _ := q.Pop()
		done <- e
	}()
	q.Push(envelope{typeID: 7})
	if e := <-done; e.typeID != 7 {
		t.Fatalf("got typeID %d, want 7", e.typeID)
	}
}

func TestQueueCloseUnblocks(t *testing.T) {
	q := newQueue()
	done := make(chan bool)
	go func() {
		_, ok := q.Pop()
		done <- ok
	}()
	q.Close()
	if ok := <-done; ok {
		t.Fatal("Pop after Close on empty queue should report !ok")
	}
}
