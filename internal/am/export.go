package am

import (
	"io"
	"sort"

	"declpat/internal/obs"
)

// typeNameOf resolves a trace event's Arg to a message-type name where the
// kind carries one ("" otherwise). The reliable layer's ack pseudo-type
// (ackTypeID) resolves to "ack".
func (u *Universe) typeNameOf(kind TraceKind, arg int64) string {
	switch kind {
	case TraceShip, TraceDeliver, TraceDrop, TraceDup, TraceDelay,
		TraceRetransmit, TraceCorrupt, TraceDecodeError, TraceSuppress,
		TraceAck, TracePanic, TraceLinkDead, TraceHandler, TraceQueryCross:
		if arg == int64(ackTypeID) {
			return "ack"
		}
		if arg >= 0 && arg < int64(len(u.types)) {
			return u.types[arg].name
		}
	}
	return ""
}

// ExportTrace converts the recorded trace into the interchange form consumed
// by internal/obs (and the declpat-trace CLI): a Meta header plus one Record
// per event, timestamps in monotonic nanoseconds. Per-rank epoch begin/end
// pairs fold into single "epoch" span records; deliver events are spans
// covering decode + dedup + every handler of the batch; handler events
// (lineage) are per-invocation spans carrying their causal id and parent;
// everything else is a point event. Returns a zero Meta and nil records when
// tracing is disabled.
func (u *Universe) ExportTrace(label string) (obs.Meta, []obs.Record) {
	if u.tracer == nil {
		return obs.Meta{}, nil
	}
	typeNames := make([]string, len(u.types))
	for i, mt := range u.types {
		typeNames[i] = mt.name
	}
	meta := obs.Meta{
		Label:   label,
		Ranks:   u.cfg.Ranks,
		Types:   typeNames,
		Dropped: u.TraceDropped(),
	}
	events := u.Trace()
	recs := make([]obs.Record, 0, len(events))
	for _, ev := range events {
		if rec, ok := u.convertEvent(ev); ok {
			recs = append(recs, rec)
		}
	}
	return meta, recs
}

// convertEvent converts one trace event to its interchange record; ok is
// false for events that do not export (epoch begins — the matching end
// carries the whole span; a begin whose end is not in the ring yet has no
// duration to report).
func (u *Universe) convertEvent(ev TraceEvent) (obs.Record, bool) {
	switch ev.Kind {
	case TraceEpochBegin:
		return obs.Record{}, false
	case TraceEpochEnd:
		return obs.Record{
			Kind: "epoch", TS: ev.TS - ev.Dur, Dur: ev.Dur,
			Rank: int(ev.Rank), Arg: ev.Arg, Q: ev.Q,
		}, true
	case TraceDeliver:
		return obs.Record{
			Kind: "deliver", TS: ev.TS - ev.Dur, Dur: ev.Dur,
			Rank: int(ev.Rank), Arg: ev.Arg, Arg2: ev.Arg2, Q: ev.Q,
			Type: u.typeNameOf(ev.Kind, ev.Arg),
		}, true
	case TracePhase:
		return obs.Record{
			Kind: "phase", TS: ev.TS - ev.Dur, Dur: ev.Dur,
			Rank: int(ev.Rank), Arg: ev.Arg, Arg2: ev.Arg2, Q: ev.Q,
			Type: obs.Phase(ev.Arg).String(),
		}, true
	case TraceHandler:
		return obs.Record{
			Kind: "handler", TS: ev.TS - ev.Dur, Dur: ev.Dur,
			Rank: int(ev.Rank), Arg: ev.Arg, Q: ev.Q,
			Type: u.typeNameOf(ev.Kind, ev.Arg),
			ID:   ev.ID, Parent: ev.Parent,
		}, true
	default:
		return obs.Record{
			Kind: ev.Kind.String(), TS: ev.TS,
			Rank: int(ev.Rank), Arg: ev.Arg, Arg2: ev.Arg2, Q: ev.Q,
			Type: u.typeNameOf(ev.Kind, ev.Arg),
		}, true
	}
}

// ExportTraceSince drains trace events appended since the per-rank cursors
// (nil = from the beginning; see obs.Rings.ShardSince) and converts them to
// interchange records, returning the advanced cursors. This is the
// incremental path behind fleet trace streaming: a flusher polls cheaply and
// ships only the new tail, so the coordinator's merged timeline stays fresh
// without re-serializing the whole ring. Records are sorted per call; the
// receiver's merge handles cross-call ordering. Returns nil records when
// tracing is disabled.
func (u *Universe) ExportTraceSince(cursors []int64) ([]obs.Record, []int64) {
	if u.tracer == nil {
		return nil, cursors
	}
	shards := u.tracer.rings.Shards()
	if len(cursors) != shards {
		cursors = make([]int64, shards)
	}
	var recs []obs.Record
	for shard := 0; shard < shards; shard++ {
		evs, next := u.tracer.rings.ShardSince(shard, cursors[shard])
		cursors[shard] = next
		for _, ev := range evs {
			if rec, ok := u.convertEvent(ev); ok {
				recs = append(recs, rec)
			}
		}
	}
	sortRecords(recs)
	return recs, cursors
}

func sortRecords(recs []obs.Record) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].TS < recs[j].TS })
}

// WriteTraceJSONL exports the recorded trace as JSONL (one meta header line
// plus one record per line) — the interchange format of declpat-trace.
func (u *Universe) WriteTraceJSONL(w io.Writer, label string) error {
	meta, recs := u.ExportTrace(label)
	return obs.WriteJSONL(w, meta, recs)
}

// WriteChromeTrace exports the recorded trace as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing: one thread row
// per rank, epochs and deliveries as spans, everything else as instants.
func (u *Universe) WriteChromeTrace(w io.Writer, label string) error {
	meta, recs := u.ExportTrace(label)
	return obs.WriteChromeTrace(w, meta, recs)
}
