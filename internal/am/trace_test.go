package am

import (
	"testing"
)

func TestTraceRecordsEpochsAndMessages(t *testing.T) {
	u := NewUniverse(Config{Ranks: 2, ThreadsPerRank: 1, CoalesceSize: 4, TraceCapacity: 4096})
	mt := Register(u, "m", func(r *Rank, m int64) {})
	const per = 20
	u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {
			for i := 0; i < per; i++ {
				mt.SendTo(r, 1-r.ID(), int64(i))
			}
			ep.Flush()
		})
		r.Epoch(func(ep *Epoch) {})
	})
	events := u.Trace()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	counts := map[TraceKind]int{}
	perRankEpochs := map[int32]int{}
	for _, ev := range events {
		counts[ev.Kind]++
		if ev.Kind == TraceEpochBegin {
			perRankEpochs[ev.Rank]++
		}
	}
	// 2 ranks × 2 epochs.
	if counts[TraceEpochBegin] != 4 || counts[TraceEpochEnd] != 4 {
		t.Fatalf("epoch events: begin=%d end=%d", counts[TraceEpochBegin], counts[TraceEpochEnd])
	}
	for rank, n := range perRankEpochs {
		if n != 2 {
			t.Fatalf("rank %d began %d epochs", rank, n)
		}
	}
	if counts[TraceFlush] != 2 {
		t.Fatalf("flush events: %d", counts[TraceFlush])
	}
	// Every shipped envelope is delivered; ship count equals the
	// Envelopes stat.
	if int64(counts[TraceShip]) != u.Stats.Envelopes() {
		t.Fatalf("ship events %d != envelopes %d", counts[TraceShip], u.Stats.Envelopes())
	}
	if counts[TraceDeliver] != counts[TraceShip] {
		t.Fatalf("deliver %d != ship %d", counts[TraceDeliver], counts[TraceShip])
	}
	// Total messages across ship events equals MsgsSent.
	var shipped int64
	for _, ev := range events {
		if ev.Kind == TraceShip {
			shipped += ev.Arg2
		}
	}
	if shipped != u.Stats.MsgsSent() {
		t.Fatalf("shipped %d messages in trace, stat says %d", shipped, u.Stats.MsgsSent())
	}
	if u.TraceDropped() != 0 {
		t.Fatalf("dropped %d with ample capacity", u.TraceDropped())
	}
	// Events are in sequence order.
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("out of order at %d: %v then %v", i, events[i-1], events[i])
		}
	}
}

func TestTraceRingOverwrite(t *testing.T) {
	u := NewUniverse(Config{Ranks: 1, ThreadsPerRank: 0, CoalesceSize: 1, TraceCapacity: 8})
	mt := Register(u, "m", func(r *Rank, m int64) {})
	u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {
			for i := 0; i < 100; i++ {
				mt.SendTo(r, 0, int64(i))
			}
		})
	})
	events := u.Trace()
	if len(events) > 8 {
		t.Fatalf("ring returned %d events, capacity 8", len(events))
	}
	if u.TraceDropped() == 0 {
		t.Fatal("expected drops")
	}
}

func TestTraceDisabled(t *testing.T) {
	u := NewUniverse(Config{Ranks: 1})
	u.Run(func(r *Rank) {})
	if u.Trace() != nil || u.TraceDropped() != 0 {
		t.Fatal("tracing should be disabled by default")
	}
}

func TestFourCounterTraceWaves(t *testing.T) {
	u := NewUniverse(Config{Ranks: 2, ThreadsPerRank: 1, Detector: DetectorFourCounter, TraceCapacity: 1024})
	mt := Register(u, "m", func(r *Rank, m int64) {})
	u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {
			mt.SendTo(r, 1-r.ID(), 1)
		})
	})
	waves, success := 0, 0
	for _, ev := range u.Trace() {
		if ev.Kind == TraceTDWave {
			waves++
			if ev.Arg == 1 {
				success++
			}
		}
	}
	if waves < 2 || success != 1 {
		t.Fatalf("waves=%d success=%d", waves, success)
	}
}
