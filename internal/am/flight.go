package am

import "declpat/internal/obs"

// Flight-recorder integration: which trace kinds count as black-box
// landmarks, and how they are mirrored into the recorder. The recorder is
// always-on (it exists precisely for runs where nobody enabled tracing), so
// the set must stay low-rate: epoch boundaries, phase transitions, faults,
// recovery, detector waves, and transport trouble — never per-message kinds.

// flightKinds is the landmark bitmask over TraceKind.
const flightKinds = 1<<TraceEpochBegin |
	1<<TraceEpochEnd |
	1<<TracePhase |
	1<<TraceFlush |
	1<<TraceTDWave |
	1<<TraceCrash |
	1<<TracePanic |
	1<<TraceLinkDead |
	1<<TraceEpochAbort |
	1<<TraceRecover |
	1<<TraceWatchdog |
	1<<TraceReconnect |
	1<<TraceHeartbeatMiss

// flightEvent mirrors one landmark trace event into the recorder; the epoch
// marker tracks epoch begins so a dump names the epoch the process died in
// even when tracing is off.
func (u *Universe) flightEvent(rank int, kind TraceKind, arg, arg2, ts, dur int64) {
	switch kind {
	case TraceEpochBegin:
		u.flight.SetEpoch(arg)
	case TracePhase:
		// The span event closes a phase scope; the open-phase cell was set by
		// Rank.Phase and cleared by PhaseScope.End, so nothing to track here.
	}
	u.flight.Record(rank, obs.FlightEvent{
		TS: ts, Dur: dur, Kind: kind.String(), Arg: arg, Arg2: arg2,
	})
}

// FlightRecorder returns the attached recorder (nil unless Config.Flight).
func (u *Universe) FlightRecorder() *obs.FlightRecorder { return u.flight }

// flightPersist persists the black box with the given reason; a no-op
// without a recorder or configured path. Best-effort by design: every caller
// is already on a failure path.
func (u *Universe) flightPersist(reason string) {
	if u.flight != nil {
		u.flight.Persist(reason)
	}
}
