package am

import "sync"

// atomicQuiesced reports whether the universe is quiescent according to the
// shared-counter detector: every epoch-body participant idle, no message
// pending (sent but not fully handled), no registered deferred work, and —
// in reliable mode — no envelope unacknowledged or held by the fault
// injector (totalRelPending). The last condition makes epoch recovery safe:
// a dropped envelope keeps both pending and relPending non-zero until its
// retransmit lands, and a delivered-but-unacknowledged envelope keeps
// relPending non-zero until its (re)ack lands, so the epoch cannot end with
// protocol traffic still in flight.
//
// Retransmits and suppressed duplicates never touch pending (it is
// incremented once per user message in SendTo and decremented once per
// handled message), so faults cannot double-count toward quiescence.
//
// Once true, the condition is stable: no body is running, no handler is
// running (pending counts messages through handler completion), and work can
// only be created by bodies or handlers. The idle counters are re-read after
// pending to close the window where a body went back to work because it saw
// a pending message that has since been handled (see DESIGN.md).
func (u *Universe) atomicQuiesced() bool {
	if !u.bodiesIdle() {
		return false
	}
	if u.pending.Load() != 0 || u.totalAux() != 0 || u.totalRelPending() != 0 {
		return false
	}
	if !u.bodiesIdle() {
		return false
	}
	return u.pending.Load() == 0 && u.totalAux() == 0 && u.totalRelPending() == 0
}

func (u *Universe) bodiesIdle() bool {
	for _, r := range u.ranks {
		if r.idleBodies.Load() < r.totalBodies.Load() {
			return false
		}
	}
	return true
}

// ctrlProbe is a termination-detection control message; the receiving rank
// replies with a snapshot of its counters.
type ctrlProbe struct {
	reply chan ctrlReply
}

type ctrlReply struct {
	// qid echoes the query context the replying rank observed (the current
	// epoch's tag). The driver invalidates any wave whose replies disagree
	// with its own context: counters sampled under another query must never
	// terminate this query's epoch.
	qid             int64
	sent, recv, aux int64
	// rel is the rank's count of unacknowledged + delayed envelopes
	// (always 0 on the trusted transport). Requiring the global sum to be
	// zero keeps the four-counter protocol exact under injected faults: a
	// dropped or in-flight envelope holds rel > 0 at its sender until the
	// retransmit is delivered and acknowledged, and sentC/recvC count
	// user messages exactly once (retransmits re-ship an envelope without
	// touching sentC; the dedup window keeps duplicates away from
	// handlers and recvC).
	rel         int64
	active      int32
	idle, total int32
}

// fourCounterDriver implements Mattern-style four-counter termination
// detection. Rank 0 owns the driver for the duration of one epoch; wave()
// probes every rank and reports termination after two consecutive identical
// quiescent snapshots (the second wave proves no message was in flight
// during the first).
type fourCounterDriver struct {
	u                  *Universe
	mu                 sync.Mutex
	replyCh            chan ctrlReply
	prevSent, prevRecv int64
	havePrev           bool
}

func newFourCounterDriver(u *Universe) *fourCounterDriver {
	return &fourCounterDriver{u: u, replyCh: make(chan ctrlReply, u.cfg.Ranks)}
}

// wave runs one probe wave and reports whether the epoch has terminated.
// Safe for concurrent callers (waves serialize). In multi-process mode only
// the local ranks are probed directly; the sample ships over the control
// plane, the coordinator polls every other worker, and the merged global
// sample comes back — rank 0 (the only rank with a driver) then applies the
// same two-identical-quiescent-waves predicate to global totals.
func (d *fourCounterDriver) wave() bool {
	u := d.u
	d.mu.Lock()
	defer d.mu.Unlock()
	if u.epochState.Load() == epochFinished {
		return true
	}
	u.ranks[0].st.Inc(cTDWaves) // waves are driven from rank 0 only
	want := u.curQuery.Load()
	for _, r := range u.localRanks() {
		r.ctrl <- ctrlProbe{reply: d.replyCh}
	}
	var sent, recv, aux, rel int64
	var active int32
	quiet := true
	stale := false
	var local WaveSample
	for range u.localRanks() {
		rep := <-d.replyCh
		if rep.qid != want {
			stale = true
		}
		local.Sent += rep.sent
		local.Recv += rep.recv
		local.Aux += rep.aux
		local.Rel += rep.rel
		local.Active += rep.active
		local.Idle += rep.idle
		local.Total += rep.total
	}
	if stale {
		// A reply tagged with another query context is a sample of the wrong
		// epoch; the whole wave (and any snapshot history) is void.
		d.havePrev = false
		return false
	}
	if mp := u.mp; mp != nil {
		global, err := mp.plane.WireWave(local)
		if err != nil {
			// The fleet is aborting; the abort path ends the epoch.
			return false
		}
		local = global
	}
	sent, recv, aux, rel = local.Sent, local.Recv, local.Aux, local.Rel
	active = local.Active
	quiet = local.Idle >= local.Total
	ok := quiet && active == 0 && aux == 0 && rel == 0 && sent == recv &&
		d.havePrev && sent == d.prevSent && recv == d.prevRecv
	d.prevSent, d.prevRecv, d.havePrev = sent, recv, true
	if ok {
		u.trace(0, TraceTDWave, 1, sent)
	} else {
		u.trace(0, TraceTDWave, 0, sent)
	}
	return ok
}
