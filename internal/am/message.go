package am

import (
	"fmt"
	"reflect"
	"sync"

	"declpat/internal/obs"
)

// msgType is the type-erased registration record for one message type.
type msgType struct {
	id   int32
	name string
	size int64 // payload bytes per message
	// wire marks codec-equipped types: envelopes ship as encoded bytes, so
	// the receiver holds a decoded copy and the sender may recycle the
	// original batch once it is no longer reachable (trusted mode: after
	// encode; reliable mode: when the last ack or in-flight retransmit
	// releases it).
	wire bool
	// deliver runs the handler for every message of an envelope payload;
	// lin is the batch-aligned lineage-id slice (nil when lineage is off).
	deliver func(r *Rank, data any, lin []uint64)
	// flushRank ships all non-empty buffers owned by r for this type.
	flushRank func(r *Rank) bool
	// newBufs allocates the per-rank typed coalescing buffers.
	newBufs func(nranks int) any
	// batchLen reports the number of messages in an envelope payload.
	batchLen func(data any) int
	// decode turns a checksum-verified wire payload back into []T (drawn
	// from the type's batch pool). Malformed bytes return an error; in
	// reliable mode the caller routes it through the corruption→retransmit
	// path instead of crashing the rank.
	decode func(b []byte) (any, error)
	// recycle returns a []T batch to the type's pool. Callers must hold the
	// only reference: the receiver after delivering a wire-decoded (or
	// trusted reference-shipped) batch, the reliable layer when the last
	// ack/retransmit reference to a wire type's outstanding batch drops.
	recycle func(data any)
	// xmit performs one (re)transmission of an outstanding batch; used by
	// the reliable layer's type-erased retransmit path.
	xmit func(r *Rank, dest int, seq uint64, attempt int, data any, lin []uint64)
	// buffered counts messages currently held in r's coalescing buffers
	// for this type (sampled occupancy gauge).
	buffered func(r *Rank) int64
	// clear discards r's coalescing buffers for this type (epoch recovery:
	// buffered-but-unshipped messages belong to the rolled-back attempt).
	clear func(r *Rank)
}

// Per-type counter ids within Universe.typeC (layout: typeID*3 + offset).
const (
	tcSent = iota
	tcHandled
	tcEnvelopes
	tcPerType
)

// TypeStats reports one message type's traffic.
type TypeStats struct {
	Name      string
	Size      int64
	Sent      int64
	Handled   int64
	Envelopes int64
}

// TypeStats returns per-message-type traffic counters, in registration
// order. Read at quiescent points. Before Run (when the sharded counters are
// not yet allocated) all counts are zero.
func (u *Universe) TypeStats() []TypeStats {
	out := make([]TypeStats, len(u.types))
	for i, mt := range u.types {
		out[i] = TypeStats{Name: mt.name, Size: mt.size}
		if u.typeC != nil {
			out[i].Sent = u.typeC.Total(int(mt.id)*tcPerType + tcSent)
			out[i].Handled = u.typeC.Total(int(mt.id)*tcPerType + tcHandled)
			out[i].Envelopes = u.typeC.Total(int(mt.id)*tcPerType + tcEnvelopes)
		}
	}
	return out
}

// MsgType is a registered active-message type with payload T. The handler
// runs on the destination rank, possibly concurrently on several handler
// threads; handlers may freely send further messages of any type (the AM++
// property the paper depends on).
type MsgType[T any] struct {
	u        *Universe
	id       int32
	name     string
	size     int64
	handler  func(r *Rank, m T)
	addr     func(m T) int
	coalesce int
	// codec, when non-nil, routes this type's envelopes through the wire
	// transport: batches are encoded, checksummed, accounted in
	// Stats.WireBytes, and decoded on arrival.
	codec Codec[T]
	rec   *msgType

	// batchPool recycles []T slices: coalescing buffers on the send side,
	// decoded batches on the receive side. See newBatch/putBatch for the
	// ownership rules.
	batchPool sync.Pool

	// reduction layer (nil key disables it).
	key     func(m T) uint64
	combine func(old, incoming T) (merged T, changed bool)
}

// newBatch returns an empty batch with reusable capacity, drawn from the
// type's pool when one is available.
func (t *MsgType[T]) newBatch() []T {
	if p, _ := t.batchPool.Get().(*[]T); p != nil {
		return (*p)[:0]
	}
	return make([]T, 0, t.coalesce)
}

// putBatch returns a batch to the pool. The caller must hold the only
// reference to b's backing array.
func (t *MsgType[T]) putBatch(b []T) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	t.batchPool.Put(&b)
}

// typedBufs holds one rank's per-destination coalescing buffers for one
// message type. Buffers are locked per destination because the rank's body
// thread and its handler threads send concurrently.
type typedBufs[T any] struct {
	mu   []sync.Mutex
	buf  [][]T
	par  [][]uint64       // causal parent per buffered message; nil when lineage off
	keys []map[uint64]int // reduction index; nil when reduction disabled
}

// Register declares a new message type on u with the given handler. It must
// be called before Universe.Run. The handler must not be nil.
func Register[T any](u *Universe, name string, handler func(r *Rank, m T)) *MsgType[T] {
	if u.frozen.Load() {
		panic("am: Register after Run")
	}
	if handler == nil {
		panic("am: nil handler for message type " + name)
	}
	var zero T
	mt := &MsgType[T]{
		u:        u,
		id:       int32(len(u.types)),
		name:     name,
		size:     int64(reflect.TypeOf(zero).Size()),
		handler:  handler,
		coalesce: u.cfg.CoalesceSize,
	}
	rec := &msgType{
		id:   mt.id,
		name: name,
		size: mt.size,
		deliver: func(r *Rank, data any, lin []uint64) {
			batch := data.([]T)
			u := r.u
			if !u.lineage {
				for _, m := range batch {
					mt.handler(r, m)
					r.st.Inc(cHandlersRun)
					r.tst.Inc(int(mt.id)*tcPerType + tcHandled)
					r.recvC.Add(1)
					u.pending.Add(-1)
				}
				return
			}
			// Lineage path: each invocation gets its own id, the ambient
			// parent (r.cur, facet-local) covers the handler's sends, and a
			// TraceHandler span records the (id, parent) edge. r.cur returns
			// to 0 before the function exits, so subsequent epoch-body sends
			// on this facet stamp as roots again.
			traced := u.tracer != nil
			for i, m := range batch {
				var parent uint64
				if i < len(lin) {
					parent = lin[i]
				}
				self := obs.HandlerLineageID(r.id, r.linSeq.Add(1))
				r.cur = self
				var start int64
				if traced {
					start = obs.Now()
				}
				mt.handler(r, m)
				if traced {
					end := obs.Now()
					u.traceHandler(r.id, int64(mt.id), self, parent, end, end-start)
				}
				r.st.Inc(cHandlersRun)
				r.tst.Inc(int(mt.id)*tcPerType + tcHandled)
				r.recvC.Add(1)
				u.pending.Add(-1)
			}
			r.cur = 0
		},
		flushRank: func(r *Rank) bool { return mt.flushBuffers(r) },
		batchLen:  func(data any) int { return len(data.([]T)) },
		decode: func(b []byte) (any, error) {
			dst := mt.newBatch()
			decoded, err := mt.codec.Decode(dst, b)
			if err != nil {
				mt.putBatch(dst)
				return nil, err
			}
			return decoded, nil
		},
		recycle: func(data any) { mt.putBatch(data.([]T)) },
		xmit: func(r *Rank, dest int, seq uint64, attempt int, data any, lin []uint64) {
			mt.transmit(r, dest, seq, attempt, data.([]T), lin)
		},
		buffered: func(r *Rank) int64 {
			tb := r.bufs[mt.id].(*typedBufs[T])
			var n int64
			for dest := range tb.buf {
				tb.mu[dest].Lock()
				n += int64(len(tb.buf[dest]))
				tb.mu[dest].Unlock()
			}
			return n
		},
		clear: func(r *Rank) {
			tb := r.bufs[mt.id].(*typedBufs[T])
			for dest := range tb.buf {
				tb.mu[dest].Lock()
				// Buffered-but-unshipped batches are exclusively owned by
				// the coalescing layer, so the rollback may recycle them.
				mt.putBatch(tb.buf[dest])
				tb.buf[dest] = nil
				if tb.par != nil {
					tb.par[dest] = nil
				}
				if tb.keys != nil {
					tb.keys[dest] = nil
				}
				tb.mu[dest].Unlock()
			}
		},
		newBufs: func(nranks int) any {
			tb := &typedBufs[T]{
				mu:  make([]sync.Mutex, nranks),
				buf: make([][]T, nranks),
			}
			if mt.u.lineage {
				tb.par = make([][]uint64, nranks)
			}
			if mt.key != nil {
				tb.keys = make([]map[uint64]int, nranks)
			}
			return tb
		},
	}
	mt.rec = rec
	u.types = append(u.types, rec)
	return mt
}

// WithAddresser installs an object-based address function: Send computes the
// destination rank from the payload (paper §IV-D). Returns the receiver for
// chaining.
func (t *MsgType[T]) WithAddresser(f func(m T) int) *MsgType[T] {
	t.addr = f
	return t
}

// WithCoalescing overrides the universe-default coalescing factor for this
// type. n == 1 disables coalescing (every message ships immediately).
func (t *MsgType[T]) WithCoalescing(n int) *MsgType[T] {
	if n < 1 {
		n = 1
	}
	t.coalesce = n
	return t
}

// WithReduction installs the caching/reduction layer: while a message with
// the same key is still buffered, an incoming message is combined into it
// instead of being enqueued. combine receives the buffered message and the
// incoming one and returns the merged payload plus whether the buffer entry
// should be overwritten. Either way the incoming message is counted as
// suppressed; it will never reach a handler by itself.
func (t *MsgType[T]) WithReduction(key func(m T) uint64, combine func(old, incoming T) (T, bool)) *MsgType[T] {
	if t.u.frozen.Load() {
		panic("am: WithReduction after Run")
	}
	t.key = key
	t.combine = combine
	return t
}

// WithCodec routes this type's envelopes through a real serialization round
// trip with the given codec: every shipped batch is encoded to bytes, sealed
// with the wire checksum, accounted in Stats.WireBytes, and decoded on
// arrival. This both validates that the message type is wire-safe (a
// distributed deployment could ship it as-is) and measures true serialized
// sizes.
func (t *MsgType[T]) WithCodec(c Codec[T]) *MsgType[T] {
	if t.u.frozen.Load() {
		panic("am: WithCodec after Run")
	}
	if c == nil {
		panic("am: nil codec for message type " + t.name)
	}
	t.codec = c
	t.rec.wire = true
	return t
}

// WithWire enables the wire transport with the best available codec: the
// zero-reflection fixed word-schema codec when T qualifies (no reference
// types), the gob fallback otherwise.
func (t *MsgType[T]) WithWire() *MsgType[T] {
	if c, err := FixedCodec[T](); err == nil {
		return t.WithCodec(c)
	}
	return t.WithCodec(GobCodec[T]())
}

// CodecName reports the wire codec in use ("" when the type ships in-memory).
func (t *MsgType[T]) CodecName() string {
	if t.codec == nil {
		return ""
	}
	return t.codec.Name()
}

// WithGobTransport routes this type's envelopes through the encoding/gob
// wire codec. Payload type T must be gob-encodable (exported fields).
//
// Deprecated: use WithWire (auto-selects the fixed codec when T qualifies)
// or WithCodec. WithGobTransport remains for measuring the gob fallback and
// for types that need gob's self-describing stream.
func (t *MsgType[T]) WithGobTransport() *MsgType[T] {
	return t.WithCodec(GobCodec[T]())
}

// Name returns the registration name.
func (t *MsgType[T]) Name() string { return t.name }

// Size returns the payload size in bytes.
func (t *MsgType[T]) Size() int64 { return t.size }

// Send routes m using the type's address function. It panics if no address
// function was installed or if the sender is not inside an epoch.
func (t *MsgType[T]) Send(r *Rank, m T) {
	if t.addr == nil {
		panic("am: Send on type " + t.name + " without addresser; use SendTo")
	}
	t.SendTo(r, t.addr(m), m)
}

// SendTo sends m to rank dest. Must be called inside an epoch (from an epoch
// body or from a handler).
func (t *MsgType[T]) SendTo(r *Rank, dest int, m T) {
	if dest < 0 || dest >= r.u.cfg.Ranks {
		panic(fmt.Sprintf("am: SendTo(%s): destination %d out of range [0,%d)", t.name, dest, r.u.cfg.Ranks))
	}
	if !r.inEpoch.Load() {
		panic("am: SendTo(" + t.name + ") outside an epoch")
	}
	if r.u.resilient() && (r.crashed.Load() || r.u.epochState.Load() == epochAborting) {
		// A crashed rank sends nothing (crash-stop silence), and sends
		// into a rolling-back epoch are moot — the attempt's effects are
		// discarded and the restored state replays. Dropping here (not
		// panicking) matters: handlers call SendTo, and a panic would be
		// miscounted as a handler fault by the containment layer.
		return
	}
	// Causal lineage: the message's parent is the handler invocation
	// currently running on this facet, or — when none is (epoch-body code)
	// — the synthetic root of (current epoch, this rank).
	var parent uint64
	if r.u.lineage {
		if parent = r.cur; parent == 0 {
			parent = obs.RootLineageID(r.u.epochSeq.Load(), r.id)
		}
	}
	tb := r.bufs[t.id].(*typedBufs[T])
	tb.mu[dest].Lock()
	if t.key != nil {
		k := t.key(m)
		km := tb.keys[dest]
		if km == nil {
			km = make(map[uint64]int, t.coalesce)
			tb.keys[dest] = km
		}
		if i, ok := km[k]; ok {
			merged, changed := t.combine(tb.buf[dest][i], m)
			if changed {
				tb.buf[dest][i] = merged
				if tb.par != nil {
					// Lineage follows the surviving value: the incoming
					// message won the combine, so its producer is the one
					// the eventual handler causally descends from.
					tb.par[dest][i] = parent
				}
				r.st.Inc(cMsgsCombined)
			}
			tb.mu[dest].Unlock()
			r.st.Inc(cMsgsSuppressed)
			return
		}
		km[k] = len(tb.buf[dest])
	}
	if tb.buf[dest] == nil {
		tb.buf[dest] = t.newBatch()
	}
	tb.buf[dest] = append(tb.buf[dest], m)
	if tb.par != nil {
		tb.par[dest] = append(tb.par[dest], parent)
	}
	r.st.Inc(cMsgsSent)
	r.tst.Inc(int(t.id)*tcPerType + tcSent)
	r.sentC.Add(1)
	r.u.pending.Add(1)
	var ship []T
	var shipLin []uint64
	if len(tb.buf[dest]) >= t.coalesce {
		ship = tb.buf[dest]
		tb.buf[dest] = nil
		if tb.par != nil {
			shipLin = tb.par[dest]
			tb.par[dest] = nil
		}
		if tb.keys != nil {
			tb.keys[dest] = nil
		}
	}
	tb.mu[dest].Unlock()
	if ship != nil {
		t.ship(r, dest, ship, shipLin)
	}
}

// ship hands a finished batch to the transport. In trusted mode (no
// FaultPlan) the envelope goes straight onto the destination rank's inbox;
// in reliable mode it is assigned a sequence number, recorded as
// outstanding until acknowledged, and transmitted through the fault
// injector (transmit).
func (t *MsgType[T]) ship(r *Rank, dest int, batch []T, lin []uint64) {
	u := r.u
	r.st.Inc(cEnvelopes)
	r.tst.Inc(int(t.id)*tcPerType + tcEnvelopes)
	u.batchHist[t.id].Observe(r.shard, int64(len(batch)))
	u.trace(r.id, TraceShip, int64(t.id), int64(len(batch)))
	if u.fp == nil {
		r.st.Add(cBytesSent, t.wireSize(len(batch)))
		var data any = batch
		if t.codec != nil {
			wp := t.encode(r, batch)
			wp.eb.refs.Store(1)
			data = wp
			// The receiver gets a decoded copy, so the sender's batch is
			// unreachable after encode — recycle it now.
			t.putBatch(batch)
		}
		u.push(r.id, dest, envelope{
			typeID: t.id, src: int32(r.id), gen: u.epochGen.Load(),
			qid: u.curQuery.Load(), data: data, lin: lin,
		})
		return
	}
	seq := r.nextSeq(dest, t.id, batch, lin)
	t.transmit(r, dest, seq, 0, batch, lin)
}

// wireSize models the accounted bytes of one envelope: payload plus header,
// plus one lineage id per message when lineage is on (the id would ride the
// wire in a real deployment).
func (t *MsgType[T]) wireSize(n int) int64 {
	size := t.size*int64(n) + envelopeHeaderBytes
	if t.u.lineage {
		size += lineageIDBytes * int64(n)
	}
	return size
}

// encode serializes a batch with the type's codec into a pooled buffer,
// accounts the true serialized size, and seals it with the wire checksum.
// The caller must set the returned payload's delivery refcount (one per
// envelope push) before the envelope escapes. Encoding failure is a
// programmer error (non-wire-safe type) in every mode: retransmitting a
// batch that cannot be encoded would never succeed, so it panics rather
// than entering the corruption→retransmit path.
func (t *MsgType[T]) encode(r *Rank, batch []T) wirePayload {
	eb := encBufPool.Get().(*encBuf)
	b, err := t.codec.Append(eb.b[:0], batch)
	if err != nil {
		panic(fmt.Sprintf("am: %s encode %s: %v", t.codec.Name(), t.name, err))
	}
	r.st.Add(cWireBytes, int64(len(b)))
	return wirePayload{b: b, sum: crc64Sum(b), eb: eb}
}

// transmit performs one transmission attempt of envelope (r→dest, t, seq)
// through the fault injector: the envelope may be dropped, corrupted (wire
// types), duplicated, or delayed, each decided deterministically from
// (seed, link, seq, attempt). attempt 0 is the initial send; retransmits
// arrive here through msgType.xmit with fresh attempt numbers (and fresh
// fault rolls, so delivery eventually succeeds).
func (t *MsgType[T]) transmit(r *Rank, dest int, seq uint64, attempt int, batch []T, lin []uint64) {
	u := r.u
	fp := u.fp
	if attempt > 0 {
		r.st.Inc(cRetransmits)
		u.trace(r.id, TraceRetransmit, int64(t.id), int64(seq))
	}
	r.st.Add(cBytesSent, t.wireSize(len(batch)))
	if u.linkDown(r.id, dest) {
		// A severed link swallows the transmission outright; the
		// retransmit ceiling will eventually declare it dead.
		r.st.Inc(cEnvelopesDropped)
		u.trace(r.id, TraceDrop, int64(t.id), int64(seq))
		return
	}
	if fp.roll(faultDrop, r.id, dest, int(t.id), seq, attempt) < fp.Drop {
		r.st.Inc(cEnvelopesDropped)
		u.trace(r.id, TraceDrop, int64(t.id), int64(seq))
		return
	}
	dup := fp.roll(faultDup, r.id, dest, int(t.id), seq, attempt) < fp.Dup
	var data any = batch
	if t.codec != nil {
		wp := t.encode(r, batch)
		if fp.roll(faultCorrupt, r.id, dest, int(t.id), seq, attempt) < fp.Corrupt {
			// Flip one byte after sealing the checksum: the receiver
			// detects the mismatch, discards, and awaits retransmit.
			i := fp.rollN(faultCorruptByte, r.id, dest, int(t.id), seq, attempt, len(wp.b)) - 1
			wp.b[i] ^= 0xff
		}
		// Each pushed copy of the envelope (original + duplicate) holds one
		// reference to the pooled buffer; the receiver releases per copy.
		if dup {
			wp.eb.refs.Store(2)
		} else {
			wp.eb.refs.Store(1)
		}
		data = wp
	}
	e := envelope{typeID: t.id, src: int32(r.id), seq: seq, gen: u.epochGen.Load(),
		qid: u.curQuery.Load(), data: data, lin: lin}
	if dup {
		r.st.Inc(cEnvelopesDuplicated)
		u.trace(r.id, TraceDup, int64(t.id), int64(seq))
		u.push(r.id, dest, e)
	}
	if fp.roll(faultDelay, r.id, dest, int(t.id), seq, attempt) < fp.Delay {
		jitter := fp.rollN(faultDelayTicks, r.id, dest, int(t.id), seq, attempt, 2*fp.DelayTicks)
		r.st.Inc(cEnvelopesDelayed)
		u.trace(r.id, TraceDelay, int64(t.id), int64(seq))
		r.holdDelayed(dest, e, r.linkTick.Load()+uint64(jitter))
		return
	}
	u.push(r.id, dest, e)
}

// envelopeHeaderBytes models the fixed per-envelope wire overhead (type id,
// count, routing) included in the byte accounting.
const envelopeHeaderBytes = 16

// lineageIDBytes models the per-message wire cost of a causal lineage id.
const lineageIDBytes = 8

// flushBuffers ships every non-empty buffer r owns for this type.
func (t *MsgType[T]) flushBuffers(r *Rank) bool {
	tb := r.bufs[t.id].(*typedBufs[T])
	worked := false
	for dest := range tb.buf {
		tb.mu[dest].Lock()
		batch := tb.buf[dest]
		if len(batch) == 0 {
			tb.mu[dest].Unlock()
			continue
		}
		tb.buf[dest] = nil
		var lin []uint64
		if tb.par != nil {
			lin = tb.par[dest]
			tb.par[dest] = nil
		}
		if tb.keys != nil {
			tb.keys[dest] = nil
		}
		tb.mu[dest].Unlock()
		t.ship(r, dest, batch, lin)
		worked = true
	}
	return worked
}
