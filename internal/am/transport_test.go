package am

import (
	"strings"
	"testing"
	"time"
)

// TestDefaultTransportIsChan pins the zero-config behavior: no Transport in
// Config selects the in-process channel backend, trusted mode (no
// synthesized fault plan), original semantics.
func TestDefaultTransportIsChan(t *testing.T) {
	u := NewUniverse(Config{Ranks: 2})
	if got := u.net.Name(); got != "chan" {
		t.Fatalf("default transport = %q, want chan", got)
	}
	if u.fp != nil {
		t.Fatalf("chan transport must not synthesize a fault plan")
	}
	if u.tickIntNs != 0 {
		t.Fatalf("chan transport tick interval = %d, want 0", u.tickIntNs)
	}
	if got := u.Metrics().Transport; got != "chan" {
		t.Fatalf("Metrics().Transport = %q, want chan", got)
	}
}

// TestWithTransportOption wires a transport through the functional-options
// constructor and checks the universe picked it up.
func TestWithTransportOption(t *testing.T) {
	u := New(2, WithTransport(ChanTransport()))
	if got := u.Config().Transport.Name(); got != "chan" {
		t.Fatalf("WithTransport: got %q", got)
	}
	u = New(2, WithTransport(SockTransport(SockOptions{Network: "unix"})))
	if got := u.net.Name(); got != "sock-unix" {
		t.Fatalf("WithTransport(sock): got %q", got)
	}
	if u.fp == nil {
		t.Fatalf("sock transport must synthesize a reliable-mode fault plan")
	}
	if u.fp.BackoffJitter != defaultSockBackoffJitter {
		t.Fatalf("synthesized plan jitter = %v, want %v", u.fp.BackoffJitter, defaultSockBackoffJitter)
	}
}

// TestTransportReuseRejected: a Transport value binds to one universe only.
func TestTransportReuseRejected(t *testing.T) {
	tr := ChanTransport()
	u1 := NewUniverse(Config{Ranks: 1, Transport: tr})
	if err := u1.Run(func(r *Rank) {}); err != nil {
		t.Fatalf("first run: %v", err)
	}
	u2 := NewUniverse(Config{Ranks: 1, Transport: tr})
	err := u2.Run(func(r *Rank) {})
	if err == nil || !strings.Contains(err.Error(), "already bound") {
		t.Fatalf("second bind error = %v, want transport-reused", err)
	}
}

// TestSockRejectsNonWireTypes: the socket backend cannot ship a type without
// a codec, and must say which one at startup rather than hang mid-epoch.
func TestSockRejectsNonWireTypes(t *testing.T) {
	u := NewUniverse(Config{Ranks: 2, Transport: SockTransport(SockOptions{Network: "unix"})})
	Register(u, "bare", func(r *Rank, m int64) {})
	err := u.Run(func(r *Rank) {})
	if err == nil || !strings.Contains(err.Error(), `"bare"`) {
		t.Fatalf("Run error = %v, want wire-codec complaint naming the type", err)
	}
}

// TestSockOptionsDefaults pins the defaulting rules, including the sentinel
// values (negative budget = no reconnects, negative tick = per-poll).
func TestSockOptionsDefaults(t *testing.T) {
	o := SockOptions{}.withDefaults()
	if o.Network != "tcp" || o.Heartbeat != 50*time.Millisecond ||
		o.Liveness != 500*time.Millisecond || o.ReconnectBudget != 10 ||
		o.TickInterval != time.Millisecond {
		t.Fatalf("unexpected defaults: %+v", o)
	}
	if b := (SockOptions{ReconnectBudget: -1}.withDefaults()).ReconnectBudget; b != 0 {
		t.Fatalf("negative budget → %d, want 0", b)
	}
	if iv := (SockOptions{TickInterval: -1}.withDefaults()).TickInterval; iv != 0 {
		t.Fatalf("negative tick interval → %v, want 0", iv)
	}
}
