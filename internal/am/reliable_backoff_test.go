package am

import "testing"

// TestBackoffTicksExponentialAndCapped pins the retransmit backoff schedule:
// without jitter, attempt n waits RetransmitBase << n ticks, capped at
// RetransmitBase << backoffShiftCap and constant beyond.
func TestBackoffTicksExponentialAndCapped(t *testing.T) {
	fp := (&FaultPlan{RetransmitBase: 8}).withDefaults()
	for n := 0; n <= backoffShiftCap+4; n++ {
		want := uint64(8) << min(n, backoffShiftCap)
		if got := fp.backoffTicks(0, 1, 0, 7, n); got != want {
			t.Fatalf("backoffTicks(attempt=%d) = %d, want %d", n, got, want)
		}
	}
}

// TestBackoffTicksJitterBounds: with BackoffJitter j, every timeout lies in
// [(1-j)·nominal, (1+j)·nominal), never below one tick, is a pure function
// of its coordinates (deterministic across calls), and actually varies
// across sequence numbers (the whole point of desynchronizing retransmit
// storms after a reconnect).
func TestBackoffTicksJitterBounds(t *testing.T) {
	const j = 0.3
	fp := (&FaultPlan{Seed: 99, RetransmitBase: 16, BackoffJitter: j}).withDefaults()
	distinct := make(map[uint64]bool)
	for seq := uint64(1); seq <= 200; seq++ {
		for n := 0; n <= backoffShiftCap+1; n++ {
			nominal := float64(uint64(16) << min(n, backoffShiftCap))
			got := fp.backoffTicks(0, 1, 0, seq, n)
			if got < 1 {
				t.Fatalf("backoff of 0 ticks at seq %d attempt %d", seq, n)
			}
			if f := float64(got); f < (1-j)*nominal-1 || f >= (1+j)*nominal+1 {
				t.Fatalf("backoffTicks(seq=%d, attempt=%d) = %d outside [%v, %v)",
					seq, n, got, (1-j)*nominal, (1+j)*nominal)
			}
			if again := fp.backoffTicks(0, 1, 0, seq, n); again != got {
				t.Fatalf("backoffTicks not deterministic: %d then %d", got, again)
			}
			if n == 0 {
				distinct[got] = true
			}
		}
	}
	if len(distinct) < 2 {
		t.Fatalf("jittered backoff never varied across %d sequence numbers", 200)
	}
	// A tiny base must still jitter to at least one tick, never zero.
	tiny := (&FaultPlan{RetransmitBase: 1, BackoffJitter: 1}).withDefaults()
	for seq := uint64(1); seq <= 100; seq++ {
		if got := tiny.backoffTicks(0, 1, 0, seq, 0); got < 1 {
			t.Fatalf("base-1 full-jitter backoff hit zero at seq %d", seq)
		}
	}
}

// TestBackoffResetsAfterAck: backoff attempts are per-envelope, so once an
// envelope is acknowledged (and leaves the outstanding table) the next
// envelope on the same link starts over at the base timeout — deep backoff
// from one bad stretch never taxes later traffic.
func TestBackoffResetsAfterAck(t *testing.T) {
	u := NewUniverse(Config{Ranks: 2, FaultPlan: &FaultPlan{RetransmitBase: 4}})
	Register(u, "x", func(r *Rank, m int64) {})
	rk := u.ranks[0]
	rk.initReliability(1)
	r := rk.rankState

	firstDue := func(seq uint64) uint64 {
		l := &r.send[1][0]
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.out[seq].due
	}
	seq := (&Rank{rankState: r}).nextSeq(1, 0, []int64{1}, nil)
	base := r.linkTick.Load() + 4
	if got := firstDue(seq); got != base {
		t.Fatalf("fresh envelope due at tick %d, want %d", got, base)
	}
	// Simulate a rough delivery: several retransmissions drove the envelope
	// deep into backoff before the ack finally landed.
	l := &r.send[1][0]
	l.mu.Lock()
	l.out[seq].attempts = 5
	l.out[seq].due = r.linkTick.Load() + u.fp.backoffTicks(0, 1, 0, seq, 5)
	l.mu.Unlock()
	(&Rank{rankState: r}).handleAck(envelope{src: 1, seq: seq, data: ackBody{typ: 0}})
	l.mu.Lock()
	left := len(l.out)
	l.mu.Unlock()
	if left != 0 {
		t.Fatalf("outstanding table holds %d envelopes after ack, want 0", left)
	}
	if pend := rk.relPendingNow(); pend != 0 {
		t.Fatalf("relPending = %d after ack, want 0", pend)
	}
	seq2 := (&Rank{rankState: r}).nextSeq(1, 0, []int64{2}, nil)
	if got := firstDue(seq2); got != base {
		t.Fatalf("post-ack envelope due at tick %d, want base %d (backoff must reset)", got, base)
	}
}
