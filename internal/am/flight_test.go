package am

import (
	"path/filepath"
	"testing"

	"declpat/internal/obs"
)

// TestFlightRecorderCapturesLandmarks pins the always-on black-box feed: a
// universe with a flight recorder and *no* tracer still records epoch
// boundaries and phase spans, leaves no phase open after a clean run, and
// produces a loadable sealed dump.
func TestFlightRecorderCapturesLandmarks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight-0.dpfr")
	fr := obs.NewFlightRecorder(obs.FlightConfig{
		Path: path, Label: "am-test", RankLo: 0, RankHi: 2,
	})
	u := NewUniverse(Config{Ranks: 2, Flight: fr})
	err := u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {})
		ph := r.Phase(obs.PhaseEmit)
		ph.End()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Persist("test complete"); err != nil {
		t.Fatal(err)
	}
	d, err := obs.LoadFlightDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.OpenPhases) != 0 {
		t.Fatalf("clean run left phases open: %+v", d.OpenPhases)
	}
	kinds := map[string]int{}
	for _, ev := range d.Events {
		kinds[ev.Kind]++
	}
	if kinds[TraceEpochBegin.String()] == 0 || kinds[TraceEpochEnd.String()] == 0 {
		t.Fatalf("no epoch landmarks in the black box: %v", kinds)
	}
	if kinds[TracePhase.String()] == 0 {
		t.Fatalf("no phase spans in the black box: %v", kinds)
	}
}

// TestFlightRecorderOptionWiring pins WithFlightRecorder and the getter.
func TestFlightRecorderOptionWiring(t *testing.T) {
	fr := obs.NewFlightRecorder(obs.FlightConfig{RankLo: 0, RankHi: 1})
	u := New(1, WithFlightRecorder(fr))
	if u.FlightRecorder() != fr {
		t.Fatal("WithFlightRecorder did not reach the universe")
	}
	if New(1).FlightRecorder() != nil {
		t.Fatal("flight recorder present without the option")
	}
}

// BenchmarkFlightRecorder measures the landmark hot paths the recorder adds
// to every epoch: the trace-side Record call and the phase enter/exit pair.
// CI gates allocs/op at zero — the black box must never touch the allocator
// on the recording path (only Persist, which runs at epoch commits and
// faults, is allowed to).
func BenchmarkFlightRecorder(b *testing.B) {
	b.Run("record", func(b *testing.B) {
		fr := obs.NewFlightRecorder(obs.FlightConfig{RankLo: 0, RankHi: 1})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fr.Record(0, obs.FlightEvent{TS: int64(i), Kind: "epoch-begin", Arg: int64(i)})
		}
	})
	b.Run("phase-pair", func(b *testing.B) {
		fr := obs.NewFlightRecorder(obs.FlightConfig{RankLo: 0, RankHi: 1})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fr.PhaseEnter(0, obs.PhaseKernel, int64(i))
			fr.PhaseExit(0)
		}
	})
	// The integrated path: a universe whose only observer is the flight
	// recorder, timing a phase scope per iteration. This is what every epoch
	// of a launched worker pays.
	b.Run("phase-scope", func(b *testing.B) {
		fr := obs.NewFlightRecorder(obs.FlightConfig{RankLo: 0, RankHi: 1})
		u := NewUniverse(Config{Ranks: 1, Flight: fr})
		b.ReportAllocs()
		b.ResetTimer()
		err := u.Run(func(r *Rank) {
			for i := 0; i < b.N; i++ {
				ph := r.Phase(obs.PhaseKernel)
				ph.End()
			}
		})
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
	})
}
