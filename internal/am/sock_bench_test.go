package am

import (
	"sync/atomic"
	"testing"
)

// BenchmarkTransport runs the same wire-encoded epoch workload over each
// transport backend: the in-process channel transport as the floor, then
// Unix-domain sockets and TCP loopback, where every envelope is framed,
// CRC-sealed, written to a real socket, read back, verified, and decoded.
// wire_B reports the total frame bytes a run put on the wire.
func BenchmarkTransport(b *testing.B) {
	const ranks, per = 2, 256
	run := func(b *testing.B, mkTransport func() Transport) {
		b.ReportAllocs()
		var wireBytes int64
		for i := 0; i < b.N; i++ {
			cfg := Config{Ranks: ranks, ThreadsPerRank: 2, CoalesceSize: 32}
			if mkTransport != nil {
				cfg.Transport = mkTransport()
			} else {
				// The channel floor still exercises the codec layer so the
				// comparison isolates the socket hop, not the encoding.
				cfg.FaultPlan = &FaultPlan{Seed: 1}
			}
			u := NewUniverse(cfg)
			var sum atomic.Int64
			mt := Register(u, "bench", func(r *Rank, m benchMsg) { sum.Add(m.Vals[0]) }).WithWire()
			if err := u.Run(func(r *Rank) {
				r.Epoch(func(ep *Epoch) {
					for j := 0; j < per; j++ {
						mt.SendTo(r, (r.ID()+1)%ranks, benchMsg{V: uint32(j), Vals: [12]int64{int64(j)}})
					}
				})
			}); err != nil {
				b.Fatal(err)
			}
			wireBytes = u.Stats.Snapshot().WireBytes
		}
		b.ReportMetric(float64(wireBytes), "wire_B")
	}
	b.Run("chan", func(b *testing.B) { run(b, nil) })
	b.Run("unix", func(b *testing.B) {
		requireLoopbackB(b)
		run(b, func() Transport { return SockTransport(SockOptions{Network: "unix"}) })
	})
	b.Run("tcp", func(b *testing.B) {
		requireLoopbackB(b)
		run(b, func() Transport { return SockTransport(SockOptions{Network: "tcp"}) })
	})
}

// requireLoopbackB is requireLoopback for benchmarks.
func requireLoopbackB(b *testing.B) {
	b.Helper()
	ln, err := netListenLoopback()
	if err != nil {
		b.Skipf("loopback sockets unavailable: %v", err)
	}
	ln.Close()
}
