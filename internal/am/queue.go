package am

import "sync"

// queue is an unbounded multi-producer multi-consumer FIFO of envelopes.
//
// Unboundedness matters: handlers send messages, and a bounded inbox could
// deadlock when all handler threads block sending into full inboxes. AM++
// avoids this with its own buffering; we use a growable ring.
type queue struct {
	mu     sync.Mutex
	nonEmp sync.Cond
	buf    []envelope
	head   int // index of first element
	n      int // number of elements
	peak   int // high-water mark of n (send-queue depth gauge)
	closed bool
}

func newQueue() *queue {
	q := &queue{buf: make([]envelope, 64)}
	q.nonEmp.L = &q.mu
	return q
}

// Push appends e. It never blocks.
func (q *queue) Push(e envelope) {
	q.mu.Lock()
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = e
	q.n++
	if q.n > q.peak {
		q.peak = q.n
	}
	q.mu.Unlock()
	q.nonEmp.Signal()
}

func (q *queue) grow() {
	nb := make([]envelope, 2*len(q.buf))
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}

// Pop removes and returns the oldest envelope, blocking until one is
// available or the queue is closed. ok is false iff the queue was closed and
// drained.
func (q *queue) Pop() (e envelope, ok bool) {
	q.mu.Lock()
	for q.n == 0 && !q.closed {
		q.nonEmp.Wait()
	}
	if q.n == 0 {
		q.mu.Unlock()
		return envelope{}, false
	}
	e = q.take()
	q.mu.Unlock()
	return e, true
}

// TryPop removes and returns the oldest envelope without blocking.
func (q *queue) TryPop() (e envelope, ok bool) {
	q.mu.Lock()
	if q.n == 0 {
		q.mu.Unlock()
		return envelope{}, false
	}
	e = q.take()
	q.mu.Unlock()
	return e, true
}

func (q *queue) take() envelope {
	e := q.buf[q.head]
	q.buf[q.head] = envelope{} // release payload for GC
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return e
}

// DropAll discards every queued envelope (a crashed rank drops its inbox;
// epoch recovery scrubs leftovers of the aborted attempt) and reports how
// many were dropped. Blocked consumers stay blocked.
func (q *queue) DropAll() int {
	q.mu.Lock()
	n := q.n
	for i := 0; i < n; i++ {
		q.buf[(q.head+i)%len(q.buf)] = envelope{} // release payloads for GC
	}
	q.head, q.n = 0, 0
	q.mu.Unlock()
	return n
}

// Len reports the current number of queued envelopes.
func (q *queue) Len() int {
	q.mu.Lock()
	n := q.n
	q.mu.Unlock()
	return n
}

// Peak reports the queue's depth high-water mark.
func (q *queue) Peak() int {
	q.mu.Lock()
	p := q.peak
	q.mu.Unlock()
	return p
}

// Close wakes all blocked consumers; subsequent Pops drain and then report
// !ok.
func (q *queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.nonEmp.Broadcast()
}
