package am

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// sliceCkpt is a minimal Checkpointer: one int64 accumulator slot per rank.
type sliceCkpt struct {
	vals []int64
}

func newSliceCkpt(ranks int) *sliceCkpt { return &sliceCkpt{vals: make([]int64, ranks)} }

func (c *sliceCkpt) SnapshotRank(rank int) any      { return c.vals[rank] }
func (c *sliceCkpt) RestoreRank(rank int, snap any) { c.vals[rank] = snap.(int64) }
func (c *sliceCkpt) add(rank int, x int64)          { atomic.AddInt64(&c.vals[rank], x) }
func (c *sliceCkpt) sum() (s int64)                 { return sumInt64(c.vals) }
func sumInt64(xs []int64) (s int64) {
	for _, x := range xs {
		s += x
	}
	return
}

// ringSum runs a ring workload (each rank sends per values to its successor,
// the handler accumulates into a checkpointed per-rank slot) and returns the
// run error plus the accumulated total. A non-nil hook runs inside each
// handler before accumulation.
func ringSum(u *Universe, per int, hook func(r *Rank, m int64)) (error, int64) {
	ck := newSliceCkpt(u.Ranks())
	u.RegisterCheckpointer(ck)
	mt := Register(u, "val", func(r *Rank, m int64) {
		if hook != nil {
			hook(r, m)
		}
		ck.add(r.ID(), m)
	})
	err := u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {
			for i := 0; i < per; i++ {
				mt.SendTo(r, (r.ID()+1)%r.N(), int64(i+1))
			}
		})
	})
	return err, ck.sum()
}

// ringWant is the fault-free total of ringSum.
func ringWant(ranks, per int) int64 { return int64(ranks) * int64(per) * int64(per+1) / 2 }

// TestHandlerPanicRecovered arms a one-shot handler panic mid-epoch: the
// panic must be contained as a rank fault, the epoch must roll back to its
// checkpoint and replay, and the run must complete with the exact fault-free
// result.
func TestHandlerPanicRecovered(t *testing.T) {
	for _, det := range []DetectorKind{DetectorAtomic, DetectorFourCounter} {
		t.Run(det.String(), func(t *testing.T) {
			u := NewUniverse(Config{
				Ranks: 3, ThreadsPerRank: 2, Detector: det,
				FaultPlan: &FaultPlan{Seed: 42}, Recovery: true,
			})
			var armed atomic.Bool
			armed.Store(true)
			seen := 0
			err, got := ringSum(u, 200, func(r *Rank, m int64) {
				if r.ID() == 1 {
					seen++
					if seen > 50 && armed.CompareAndSwap(true, false) {
						panic("injected handler bug")
					}
				}
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if want := ringWant(3, 200); got != want {
				t.Fatalf("sum = %d after recovery, want %d", got, want)
			}
			s := u.Stats.Snapshot()
			if s.HandlerPanics != 1 {
				t.Fatalf("HandlerPanics = %d, want 1", s.HandlerPanics)
			}
			if s.Recoveries < 1 || s.EpochAborts < 1 || s.Checkpoints == 0 {
				t.Fatalf("recovery not exercised: %+v", s)
			}
		})
	}
}

// TestHandlerPanicWithoutRecoveryFails: with containment on (fault plan set)
// but recovery off, a handler panic must surface as a descriptive Run error
// — not a process abort.
func TestHandlerPanicWithoutRecoveryFails(t *testing.T) {
	u := NewUniverse(Config{
		Ranks: 2, ThreadsPerRank: 1,
		FaultPlan: &FaultPlan{Seed: 7},
	})
	var armed atomic.Bool
	armed.Store(true)
	err, _ := ringSum(u, 50, func(r *Rank, m int64) {
		if armed.CompareAndSwap(true, false) {
			panic("injected handler bug")
		}
	})
	if err == nil {
		t.Fatal("Run returned nil after an uncontained handler panic")
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "Recovery disabled") {
		t.Fatalf("error lacks panic context: %v", err)
	}
	if u.Stats.HandlerPanics() != 1 {
		t.Fatalf("HandlerPanics = %d, want 1", u.Stats.HandlerPanics())
	}
}

// TestCrashRecovered injects crash-stop failures (epoch entry and mid-epoch)
// and requires exact results after rollback/replay.
func TestCrashRecovered(t *testing.T) {
	cases := map[string][]Crash{
		"entry": {{Rank: 1, Epoch: 0}},
		"mid":   {{Rank: 0, Epoch: 0, AfterHandled: 10}},
	}
	for name, crashes := range cases {
		t.Run(name, func(t *testing.T) {
			u := NewUniverse(Config{
				Ranks: 3, ThreadsPerRank: 2,
				FaultPlan: &FaultPlan{Seed: 11, Crashes: crashes},
				Recovery:  true,
			})
			err, got := ringSum(u, 200, nil)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if want := ringWant(3, 200); got != want {
				t.Fatalf("sum = %d after recovery, want %d", got, want)
			}
			s := u.Stats.Snapshot()
			if s.RankCrashes != 1 || s.Recoveries < 1 {
				t.Fatalf("crash/recovery not exercised: crashes=%d recoveries=%d", s.RankCrashes, s.Recoveries)
			}
		})
	}
}

// TestCrashWithoutRecoveryFails: an injected crash with recovery disabled
// must fail the run with a descriptive error.
func TestCrashWithoutRecoveryFails(t *testing.T) {
	u := NewUniverse(Config{
		Ranks:     2,
		FaultPlan: &FaultPlan{Seed: 3, Crashes: []Crash{{Rank: 1, Epoch: 0}}},
	})
	err, _ := ringSum(u, 50, nil)
	if err == nil {
		t.Fatal("Run returned nil after an unrecoverable crash")
	}
	if !strings.Contains(err.Error(), "crash") || !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("error lacks crash context: %v", err)
	}
}

// TestLinkDeadWithoutRecoveryFails: a dead link must exhaust the retransmit
// ceiling into a structured error — the panic this path used to be — when
// recovery is off.
func TestLinkDeadWithoutRecoveryFails(t *testing.T) {
	u := NewUniverse(Config{
		Ranks: 2, ThreadsPerRank: 1,
		FaultPlan: &FaultPlan{
			Seed: 5, RetransmitBase: 1, MaxAttempts: 3,
			DeadLinks: []DeadLink{{Src: 0, Dest: 1, Epoch: 0}},
		},
	})
	err, _ := ringSum(u, 20, nil)
	if err == nil {
		t.Fatal("Run returned nil with a permanently dead link")
	}
	if !strings.Contains(err.Error(), "link-dead") && !strings.Contains(err.Error(), "dead after") {
		t.Fatalf("error lacks link-death context: %v", err)
	}
	if u.Stats.LinkDeaths() == 0 {
		t.Fatal("LinkDeaths = 0")
	}
}

// TestLinkDeadRecovered: the same dead link with recovery on must heal the
// link during rollback and complete exactly.
func TestLinkDeadRecovered(t *testing.T) {
	u := NewUniverse(Config{
		Ranks: 2, ThreadsPerRank: 1,
		FaultPlan: &FaultPlan{
			Seed: 5, RetransmitBase: 1, MaxAttempts: 3,
			DeadLinks: []DeadLink{{Src: 0, Dest: 1, Epoch: 0}},
		},
		Recovery: true,
	})
	err, got := ringSum(u, 20, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := ringWant(2, 20); got != want {
		t.Fatalf("sum = %d after link-death recovery, want %d", got, want)
	}
	if u.Stats.LinkDeaths() == 0 || u.Stats.Recoveries() == 0 {
		t.Fatalf("link death not exercised: deaths=%d recoveries=%d",
			u.Stats.LinkDeaths(), u.Stats.Recoveries())
	}
}

// TestWatchdogConvertsWedge registers deferred work nobody consumes — the
// classic silent wedge: both detectors correctly refuse to end the epoch and
// the run would hang forever. The watchdog must convert the hang into a
// diagnostic failure carrying the trace-ring tail.
func TestWatchdogConvertsWedge(t *testing.T) {
	for _, det := range []DetectorKind{DetectorAtomic, DetectorFourCounter} {
		t.Run(det.String(), func(t *testing.T) {
			u := NewUniverse(Config{
				Ranks: 2, ThreadsPerRank: 1, Detector: det,
				Watchdog: 200 * time.Millisecond, TraceCapacity: 256,
			})
			mt := Register(u, "noop", func(r *Rank, m int64) {})
			err := u.Run(func(r *Rank) {
				r.Epoch(func(ep *Epoch) {
					mt.SendTo(r, (r.ID()+1)%r.N(), 1)
					if r.ID() == 0 {
						// Deferred work that is never consumed: the epoch
						// can never legitimately terminate.
						ep.AuxAdd(1)
					}
					for !ep.TryFinish() {
					}
				})
			})
			if err == nil {
				t.Fatal("Run returned nil on a wedged epoch")
			}
			msg := err.Error()
			if !strings.Contains(msg, "watchdog") || !strings.Contains(msg, "no progress") {
				t.Fatalf("error lacks watchdog context: %v", err)
			}
			if !strings.Contains(msg, "diagnostic dump") || !strings.Contains(msg, "trace tail") {
				t.Fatalf("error lacks diagnostic dump: %v", err)
			}
			if u.Stats.WatchdogFires() != 1 {
				t.Fatalf("WatchdogFires = %d, want 1", u.Stats.WatchdogFires())
			}
		})
	}
}

// TestRecoveryBudgetExhausted: a handler that panics deterministically on
// every replay must fail the run once the per-epoch recovery budget is
// spent, not loop forever.
func TestRecoveryBudgetExhausted(t *testing.T) {
	u := NewUniverse(Config{
		Ranks: 2, ThreadsPerRank: 1,
		FaultPlan: &FaultPlan{Seed: 9}, Recovery: true, MaxRecoveries: 2,
	})
	err, _ := ringSum(u, 50, func(r *Rank, m int64) {
		if r.ID() == 1 && m == 25 {
			panic("deterministic handler bug")
		}
	})
	if err == nil {
		t.Fatal("Run returned nil with a deterministically recurring fault")
	}
	if !strings.Contains(err.Error(), "still failing after 2 recoveries") {
		t.Fatalf("error lacks budget context: %v", err)
	}
	if got := u.Stats.Recoveries(); got != 2 {
		t.Fatalf("Recoveries = %d, want 2", got)
	}
}

// TestRecoveryMultiEpoch runs several epochs with a crash in a middle one:
// committed epochs must be untouched and the total exact.
func TestRecoveryMultiEpoch(t *testing.T) {
	u := NewUniverse(Config{
		Ranks: 3, ThreadsPerRank: 2,
		FaultPlan: &FaultPlan{Seed: 21, Crashes: []Crash{{Rank: 2, Epoch: 1, AfterHandled: 5}}},
		Recovery:  true,
	})
	ck := newSliceCkpt(u.Ranks())
	u.RegisterCheckpointer(ck)
	mt := Register(u, "val", func(r *Rank, m int64) { ck.add(r.ID(), m) })
	const per, epochs = 100, 3
	err := u.Run(func(r *Rank) {
		for e := 0; e < epochs; e++ {
			r.Epoch(func(ep *Epoch) {
				for i := 0; i < per; i++ {
					mt.SendTo(r, (r.ID()+1)%r.N(), int64(i+1))
				}
			})
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := int64(epochs) * ringWant(3, per); ck.sum() != want {
		t.Fatalf("sum = %d, want %d", ck.sum(), want)
	}
	if u.Stats.RankCrashes() != 1 {
		t.Fatalf("RankCrashes = %d, want 1", u.Stats.RankCrashes())
	}
}
