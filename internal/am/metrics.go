package am

import (
	"io"
	"os"

	"declpat/internal/obs"
)

// GaugeSnapshot is one gauge reading: the current value and the high-water
// mark since the universe started.
type GaugeSnapshot struct {
	Value, Peak int64
}

// TypeMetrics extends TypeStats with the type's histograms: envelope batch
// size (always collected) and handler latency in nanoseconds (zero unless
// Config.Timing is set).
type TypeMetrics struct {
	TypeStats
	BatchSize      obs.HistSnapshot
	HandlerLatency obs.HistSnapshot
}

// Metrics is a full observability snapshot of the universe: aggregated and
// per-rank counters, per-type traffic with histograms, and the substrate
// gauges. Take it at a quiescent point (between epochs or after Run) for
// exact values; concurrent reads are safe but may be slightly torn across
// counters.
type Metrics struct {
	// Transport names the active transport backend ("chan", "sock-tcp",
	// "sock-unix").
	Transport string
	// Counters is the aggregated counter snapshot (same as Stats.Snapshot).
	Counters Snapshot
	// Wire surfaces the wire-health counters from Counters at the top
	// level: envelope decode failures plus the socket backends' link-state
	// events (all zero on the in-process backend).
	Wire WireHealth
	// Departures surfaces the multi-process fleet-departure counters at the
	// top level: peers that left gracefully (goodbye acknowledged) vs peers
	// that died without one (heartbeat expiry, connection loss). Both zero
	// in single-process runs.
	Departures DepartureStats
	// PerRank is the per-shard counter breakdown (one entry per rank, or a
	// single entry under Config.UnshardedStats).
	PerRank []Snapshot
	// Types is the per-message-type traffic, in registration order.
	Types []TypeMetrics
	// InboxDepth is each rank's inbox queue depth (current + peak).
	InboxDepth []GaugeSnapshot
	// CoalesceBuffered is each rank's sampled coalescing-buffer occupancy:
	// messages buffered but not yet shipped, summed over types. Sampled on
	// read (walks the buffers under their locks) so it costs the hot path
	// nothing.
	CoalesceBuffered []int64
	// RelPending is each rank's outstanding-retransmit table size
	// (unacknowledged + delayed envelopes; all zero on the trusted
	// transport).
	RelPending []GaugeSnapshot
	// AckRTT is the ack round-trip histogram in nanoseconds (zero unless
	// Config.Timing is set and the transport is reliable).
	AckRTT obs.HistSnapshot
	// Phases is the per-phase epoch duration breakdown aggregated over
	// ranks (phase name -> histogram, durations in ns); nil unless
	// Config.Timing is set. RankPhases is the same per rank.
	Phases     map[string]obs.HistSnapshot
	RankPhases []map[string]obs.HistSnapshot
	// Processes is the per-process telemetry breakdown: this process
	// ("coordinator") first, then every external process the transport can
	// reach (the declpat-worker relay, queried over its own listener).
	// Merged folds them into one export — worker counters and phase
	// histograms combined with the coordinator's.
	Processes []obs.ProcessTelemetry
	Merged    obs.ProcessTelemetry
}

// telemetrySource is the optional Transport extension behind the
// per-process breakdown: a backend with external processes on its data path
// returns their telemetry exports.
type telemetrySource interface {
	processTelemetry() []obs.ProcessTelemetry
}

// DepartureStats is the fleet-departure block of Metrics.
type DepartureStats struct {
	Clean int64
	Crash int64
}

// WireHealth is the wire-facing health block of Metrics: what the link
// layer detected (corruption, undecodable envelopes) and what the socket
// backends did about connection failures (liveness expiries, reconnects,
// requeued and dropped frames).
type WireHealth struct {
	CorruptionsDetected int64
	DecodeErrors        int64
	HeartbeatMisses     int64
	Reconnects          int64
	FramesRequeued      int64
	FramesDropped       int64
}

// Metrics returns a full observability snapshot. Callable once Run has
// started (the type-dimensioned state is allocated when the type set
// freezes); before that only the counter sections are populated.
func (u *Universe) Metrics() Metrics {
	m := Metrics{
		Transport: u.net.Name(),
		Counters:  u.Stats.Snapshot(),
		PerRank:   u.Stats.PerRank(),
	}
	m.Wire = WireHealth{
		CorruptionsDetected: m.Counters.CorruptionsDetected,
		DecodeErrors:        m.Counters.DecodeErrors,
		HeartbeatMisses:     m.Counters.HeartbeatMisses,
		Reconnects:          m.Counters.Reconnects,
		FramesRequeued:      m.Counters.FramesRequeued,
		FramesDropped:       m.Counters.FramesDropped,
	}
	m.Departures = DepartureStats{
		Clean: m.Counters.CleanDepartures,
		Crash: m.Counters.CrashDepartures,
	}
	m.InboxDepth = make([]GaugeSnapshot, len(u.ranks))
	m.CoalesceBuffered = make([]int64, len(u.ranks))
	m.RelPending = make([]GaugeSnapshot, len(u.ranks))
	for i, r := range u.ranks {
		m.InboxDepth[i] = GaugeSnapshot{Value: int64(r.inbox.Len()), Peak: int64(r.inbox.Peak())}
		m.RelPending[i] = GaugeSnapshot{
			Value: u.relPending.ShardValue(i),
			Peak:  u.relPending.ShardMax(i),
		}
		if r.bufs != nil {
			for _, mt := range u.types {
				m.CoalesceBuffered[i] += mt.buffered(r)
			}
		}
	}
	m.Phases = u.phases.Snapshot()
	m.RankPhases = u.RankPhases()
	m.Processes = []obs.ProcessTelemetry{u.Telemetry()}
	if ts, ok := u.net.(telemetrySource); ok {
		m.Processes = append(m.Processes, ts.processTelemetry()...)
	}
	for i := range m.Processes {
		// Bound mismatches cannot happen between same-build processes and
		// degrade to a partial merge otherwise; the per-process entries
		// always carry the unmerged truth.
		obs.MergeTelemetry(&m.Merged, &m.Processes[i])
	}
	m.Merged.Process = "merged"
	if u.typeC == nil {
		return m // before Run: no type-dimensioned state yet
	}
	ts := u.TypeStats()
	m.Types = make([]TypeMetrics, len(ts))
	for i := range ts {
		m.Types[i] = TypeMetrics{TypeStats: ts[i], BatchSize: u.batchHist[i].Snapshot()}
		if u.latHist != nil {
			m.Types[i].HandlerLatency = u.latHist[i].Snapshot()
		}
	}
	if u.ackRTT != nil {
		m.AckRTT = u.ackRTT.Snapshot()
	}
	return m
}

// Telemetry returns this process's telemetry export — the same unit a
// declpat-worker ships over a telemetry frame, built locally: the substrate
// counters, the outstanding-retransmit gauge, and the per-phase histograms
// (empty unless Config.Timing is set).
func (u *Universe) Telemetry() obs.ProcessTelemetry {
	t := obs.ProcessTelemetry{
		Process:  "coordinator",
		PID:      os.Getpid(),
		UptimeNS: obs.Now(),
		Counters: make(map[string]int64, len(u.c.Names())),
	}
	for id, name := range u.c.Names() {
		if v := u.c.Total(id); v != 0 {
			t.Counters[name] = v
		}
	}
	t.Gauges = map[string]obs.GaugeValue{
		"rel_pending": {Cur: u.relPending.Value(), Max: u.relPending.Max()},
	}
	t.Phases = u.phases.Snapshot()
	return t
}

// CounterSeries returns the cumulative counter series a live sampler diffs:
// every non-zero substrate counter plus per-type sent/handled/envelope
// counts, keyed by name. Cheap enough to call on a sampling interval (pure
// atomic loads, no locks).
func (u *Universe) CounterSeries() map[string]int64 {
	out := make(map[string]int64, len(u.c.Names()))
	for id, name := range u.c.Names() {
		if v := u.c.Total(id); v != 0 {
			out[name] = v
		}
	}
	if u.typeC != nil {
		for id, name := range u.typeC.Names() {
			if v := u.typeC.Total(id); v != 0 {
				out[name] = v
			}
		}
	}
	return out
}

// WriteOpenMetrics writes the universe's current metrics in the
// OpenMetrics / Prometheus text exposition format: one counter family per
// substrate counter (labelled per process), gauge families with peaks, and
// the per-phase duration histograms in seconds, labelled per process and
// phase. Safe to call while the universe runs — this is the payload behind
// a live /metrics endpoint (harness.DebugServer.HandleMetrics).
func (u *Universe) WriteOpenMetrics(w io.Writer) error {
	m := u.Metrics()
	om := obs.NewOMWriter(w)
	om.Family("declpat_universe_info", "gauge", "Universe constants: value is always 1, labels carry the configuration.")
	om.Sample("declpat_universe_info", []string{"transport", m.Transport}, 1)
	om.Family("declpat_ranks", "gauge", "Number of ranks in the universe.")
	om.SampleInt("declpat_ranks", nil, int64(u.cfg.Ranks))

	// Counter families: the union of every process's counter names, one
	// family per name, one sample per process that reports it.
	names := map[string]bool{}
	for _, p := range m.Processes {
		for k := range p.Counters {
			names[k] = true
		}
	}
	// The departure counters get dedicated always-emitted families below;
	// emitting them here too (they appear once non-zero) would duplicate the
	// family.
	delete(names, "clean_departures")
	delete(names, "crash_departures")
	for _, name := range obs.SortedKeys(names) {
		fam := "declpat_" + obs.MetricName(name) + "_total"
		om.Family(fam, "counter", "Substrate counter "+name+".")
		for _, p := range m.Processes {
			if v, ok := p.Counters[name]; ok {
				om.SampleInt(fam, []string{"process", p.Process}, v)
			}
		}
	}

	// Gauge families: current value and peak as separate series.
	gnames := map[string]bool{}
	for _, p := range m.Processes {
		for k := range p.Gauges {
			gnames[k] = true
		}
	}
	for _, name := range obs.SortedKeys(gnames) {
		fam := "declpat_" + obs.MetricName(name)
		om.Family(fam, "gauge", "Substrate gauge "+name+" (current value).")
		for _, p := range m.Processes {
			if v, ok := p.Gauges[name]; ok {
				om.SampleInt(fam, []string{"process", p.Process}, v.Cur)
			}
		}
		om.Family(fam+"_peak", "gauge", "Substrate gauge "+name+" (high-water mark).")
		for _, p := range m.Processes {
			if v, ok := p.Gauges[name]; ok {
				om.SampleInt(fam+"_peak", []string{"process", p.Process}, v.Max)
			}
		}
	}

	// Phase histograms: one family, labelled by process and phase,
	// nanosecond observations exported in seconds.
	hasPhases := false
	for _, p := range m.Processes {
		if len(p.Phases) > 0 {
			hasPhases = true
			break
		}
	}
	if hasPhases {
		const fam = "declpat_phase_duration_seconds"
		om.Family(fam, "histogram", "Epoch phase durations by process and phase (collect/build_csr/kernel/emit/barrier/recovery).")
		for _, p := range m.Processes {
			for _, phase := range obs.SortedKeys(p.Phases) {
				om.Hist(fam, []string{"process", p.Process, "phase", phase}, p.Phases[phase], 1e-9)
			}
		}
	}

	// Departure counters are emitted unconditionally: their zero values are
	// the signal ("no one has died") and the counter-union loop above only
	// sees non-zero counters.
	om.Family("declpat_clean_departures_total", "counter", "Fleet peers that departed gracefully (goodbye acknowledged).")
	om.SampleInt("declpat_clean_departures_total", nil, m.Departures.Clean)
	om.Family("declpat_crash_departures_total", "counter", "Fleet peers that died without a goodbye (heartbeat expiry or connection loss).")
	om.SampleInt("declpat_crash_departures_total", nil, m.Departures.Crash)

	om.Family("declpat_inbox_depth", "gauge", "Per-rank inbox queue depth.")
	for i, g := range m.InboxDepth {
		om.SampleInt("declpat_inbox_depth", []string{"rank", labelItoa(i)}, g.Value)
	}
	return om.Close()
}

// labelItoa is a tiny strconv.Itoa for label values (avoids importing strconv in
// every exporter call site).
func labelItoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	n := i
	for n > 0 {
		p--
		b[p] = byte('0' + n%10)
		n /= 10
	}
	return string(b[p:])
}
