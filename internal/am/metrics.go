package am

import "declpat/internal/obs"

// GaugeSnapshot is one gauge reading: the current value and the high-water
// mark since the universe started.
type GaugeSnapshot struct {
	Value, Peak int64
}

// TypeMetrics extends TypeStats with the type's histograms: envelope batch
// size (always collected) and handler latency in nanoseconds (zero unless
// Config.Timing is set).
type TypeMetrics struct {
	TypeStats
	BatchSize      obs.HistSnapshot
	HandlerLatency obs.HistSnapshot
}

// Metrics is a full observability snapshot of the universe: aggregated and
// per-rank counters, per-type traffic with histograms, and the substrate
// gauges. Take it at a quiescent point (between epochs or after Run) for
// exact values; concurrent reads are safe but may be slightly torn across
// counters.
type Metrics struct {
	// Transport names the active transport backend ("chan", "sock-tcp",
	// "sock-unix").
	Transport string
	// Counters is the aggregated counter snapshot (same as Stats.Snapshot).
	Counters Snapshot
	// Wire surfaces the wire-health counters from Counters at the top
	// level: envelope decode failures plus the socket backends' link-state
	// events (all zero on the in-process backend).
	Wire WireHealth
	// PerRank is the per-shard counter breakdown (one entry per rank, or a
	// single entry under Config.UnshardedStats).
	PerRank []Snapshot
	// Types is the per-message-type traffic, in registration order.
	Types []TypeMetrics
	// InboxDepth is each rank's inbox queue depth (current + peak).
	InboxDepth []GaugeSnapshot
	// CoalesceBuffered is each rank's sampled coalescing-buffer occupancy:
	// messages buffered but not yet shipped, summed over types. Sampled on
	// read (walks the buffers under their locks) so it costs the hot path
	// nothing.
	CoalesceBuffered []int64
	// RelPending is each rank's outstanding-retransmit table size
	// (unacknowledged + delayed envelopes; all zero on the trusted
	// transport).
	RelPending []GaugeSnapshot
	// AckRTT is the ack round-trip histogram in nanoseconds (zero unless
	// Config.Timing is set and the transport is reliable).
	AckRTT obs.HistSnapshot
}

// WireHealth is the wire-facing health block of Metrics: what the link
// layer detected (corruption, undecodable envelopes) and what the socket
// backends did about connection failures (liveness expiries, reconnects,
// requeued and dropped frames).
type WireHealth struct {
	CorruptionsDetected int64
	DecodeErrors        int64
	HeartbeatMisses     int64
	Reconnects          int64
	FramesRequeued      int64
	FramesDropped       int64
}

// Metrics returns a full observability snapshot. Callable once Run has
// started (the type-dimensioned state is allocated when the type set
// freezes); before that only the counter sections are populated.
func (u *Universe) Metrics() Metrics {
	m := Metrics{
		Transport: u.net.Name(),
		Counters:  u.Stats.Snapshot(),
		PerRank:   u.Stats.PerRank(),
	}
	m.Wire = WireHealth{
		CorruptionsDetected: m.Counters.CorruptionsDetected,
		DecodeErrors:        m.Counters.DecodeErrors,
		HeartbeatMisses:     m.Counters.HeartbeatMisses,
		Reconnects:          m.Counters.Reconnects,
		FramesRequeued:      m.Counters.FramesRequeued,
		FramesDropped:       m.Counters.FramesDropped,
	}
	m.InboxDepth = make([]GaugeSnapshot, len(u.ranks))
	m.CoalesceBuffered = make([]int64, len(u.ranks))
	m.RelPending = make([]GaugeSnapshot, len(u.ranks))
	for i, r := range u.ranks {
		m.InboxDepth[i] = GaugeSnapshot{Value: int64(r.inbox.Len()), Peak: int64(r.inbox.Peak())}
		m.RelPending[i] = GaugeSnapshot{
			Value: u.relPending.ShardValue(i),
			Peak:  u.relPending.ShardMax(i),
		}
		if r.bufs != nil {
			for _, mt := range u.types {
				m.CoalesceBuffered[i] += mt.buffered(r)
			}
		}
	}
	if u.typeC == nil {
		return m // before Run: no type-dimensioned state yet
	}
	ts := u.TypeStats()
	m.Types = make([]TypeMetrics, len(ts))
	for i := range ts {
		m.Types[i] = TypeMetrics{TypeStats: ts[i], BatchSize: u.batchHist[i].Snapshot()}
		if u.latHist != nil {
			m.Types[i].HandlerLatency = u.latHist[i].Snapshot()
		}
	}
	if u.ackRTT != nil {
		m.AckRTT = u.ackRTT.Snapshot()
	}
	return m
}
