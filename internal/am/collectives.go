package am

import (
	"sync"

	"declpat/internal/obs"
)

// Barrier is a reusable barrier for n participants (the rank main
// goroutines). It creates the happens-before edges the collectives rely on.
type Barrier struct {
	n     int
	mu    sync.Mutex
	cv    *sync.Cond
	count int
	gen   uint64
	// poisoned permanently breaks the barrier: every current and future
	// Wait panics runAbort. The multi-process abort path uses it to unpark
	// rank mains when the fleet is going down — there is no generation in
	// which the missing participants would ever arrive.
	poisoned bool
}

// NewBarrier creates a barrier for n participants.
func NewBarrier(n int) *Barrier {
	b := &Barrier{n: n}
	b.cv = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n participants have called Wait for the current
// generation. Panics runAbort once the barrier is poisoned.
func (b *Barrier) Wait() {
	b.mu.Lock()
	if b.poisoned {
		b.mu.Unlock()
		panic(runAbort{})
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.mu.Unlock()
		b.cv.Broadcast()
		return
	}
	for b.gen == gen && !b.poisoned {
		b.cv.Wait()
	}
	p := b.poisoned
	b.mu.Unlock()
	if p {
		panic(runAbort{})
	}
}

// poison breaks the barrier for good and wakes every waiter.
func (b *Barrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.mu.Unlock()
	b.cv.Broadcast()
}

// collectives holds the scratch space for rank collectives.
type collectives struct {
	vals []int64
}

func (c *collectives) init(n int) {
	c.vals = make([]int64, n)
}

// Barrier synchronizes all rank main goroutines. Collective: every rank must
// call it. Must not be called from message handlers or extra body threads.
// Time spent blocked here lands in the rank's barrier-phase histogram when
// Config.Timing is set (the wait is the substrate's load-imbalance signal).
func (r *Rank) Barrier() {
	ph := r.Phase(obs.PhaseBarrier)
	if r.u.mp != nil {
		r.mpBarrier(PlainBarrier)
	} else {
		r.u.barrier.Wait()
	}
	ph.End()
}

// AllReduceInt64 reduces one int64 contribution per rank with op and returns
// the result on every rank. Collective. In multi-process mode the global
// vector is gathered over the control plane and folded locally, so the op
// (an arbitrary closure) never crosses the wire.
func (r *Rank) AllReduceInt64(x int64, op func(a, b int64) int64) int64 {
	u := r.u
	if u.mp != nil {
		vals := r.mpAllGather(x)
		acc := vals[0]
		for i := 1; i < u.cfg.Ranks; i++ {
			acc = op(acc, vals[i])
		}
		// Keep the shared scratch vector stable until every local rank has
		// folded it.
		u.mp.localBar.Wait()
		return acc
	}
	u.coll.vals[r.id] = x
	r.Barrier()
	acc := u.coll.vals[0]
	for i := 1; i < u.cfg.Ranks; i++ {
		acc = op(acc, u.coll.vals[i])
	}
	r.Barrier()
	return acc
}

// AllReduceSum returns the sum of every rank's contribution. Collective.
func (r *Rank) AllReduceSum(x int64) int64 {
	return r.AllReduceInt64(x, func(a, b int64) int64 { return a + b })
}

// AllReduceMin returns the minimum of every rank's contribution. Collective.
func (r *Rank) AllReduceMin(x int64) int64 {
	return r.AllReduceInt64(x, func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	})
}

// AllReduceMax returns the maximum of every rank's contribution. Collective.
func (r *Rank) AllReduceMax(x int64) int64 {
	return r.AllReduceInt64(x, func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	})
}

// AllReduceOr returns the logical OR of every rank's contribution.
// Collective. Used by the paper's `once` strategy to learn whether any rank
// performed a property-map modification.
func (r *Rank) AllReduceOr(x bool) bool {
	var v int64
	if x {
		v = 1
	}
	return r.AllReduceMax(v) != 0
}

// AllGatherInt64 gathers one contribution per rank; index i of the result is
// rank i's value. Collective.
func (r *Rank) AllGatherInt64(x int64) []int64 {
	u := r.u
	if u.mp != nil {
		vals := r.mpAllGather(x)
		out := make([]int64, u.cfg.Ranks)
		copy(out, vals)
		u.mp.localBar.Wait()
		return out
	}
	u.coll.vals[r.id] = x
	r.Barrier()
	out := make([]int64, u.cfg.Ranks)
	copy(out, u.coll.vals)
	r.Barrier()
	return out
}
