package am

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// chatterPayload is a wire-safe payload with a per-message identity so tests
// can assert exactly-once handling.
type chatterPayload struct {
	ID  int64
	Hop int64
}

// runChatter runs a two-epoch all-to-all workload where every handler
// forwards the message once (Hop 0 → Hop 1), exercising handler sends,
// multiple epochs, and every rank pair. It returns per-message delivery
// counts (index = message ID) and the number of user messages sent.
func runChatter(t *testing.T, cfg Config, perRank int, gobWire bool) ([]int64, int64) {
	t.Helper()
	u := NewUniverse(cfg)
	n := cfg.Ranks
	total := 2 * n * perRank // each seed message is forwarded once
	counts := make([]int64, total)
	var mt *MsgType[chatterPayload]
	mt = Register(u, "chatter", func(r *Rank, m chatterPayload) {
		atomic.AddInt64(&counts[m.ID], 1)
		if m.Hop == 0 {
			mt.SendTo(r, (r.ID()+1)%r.N(), chatterPayload{ID: m.ID + int64(n*perRank), Hop: 1})
		}
	})
	if gobWire {
		mt.WithGobTransport()
	}
	u.Run(func(r *Rank) {
		for epoch := 0; epoch < 2; epoch++ {
			r.Epoch(func(ep *Epoch) {
				base := epoch * n * perRank / 2
				for i := 0; i < perRank/2; i++ {
					id := int64(base + r.ID()*perRank/2 + i)
					mt.SendTo(r, (r.ID()+1+i)%r.N(), chatterPayload{ID: id, Hop: 0})
				}
			})
		}
	})
	return counts, u.Stats.MsgsSent()
}

// checkExactlyOnce fails the test unless every message was handled exactly
// once, printing the fault seed so a failure is reproducible.
func checkExactlyOnce(t *testing.T, counts []int64, seed uint64) {
	t.Helper()
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("message %d handled %d times, want exactly once (FaultPlan seed %d)", id, c, seed)
		}
	}
}

func TestReliableExactlyOnceUnderFaults(t *testing.T) {
	for _, det := range []DetectorKind{DetectorAtomic, DetectorFourCounter} {
		for _, threads := range []int{0, 2} {
			name := fmt.Sprintf("%s/threads=%d", det, threads)
			t.Run(name, func(t *testing.T) {
				const seed = 1234
				plan := &FaultPlan{Seed: seed, Drop: 0.2, Dup: 0.1, Delay: 0.1}
				cfg := Config{Ranks: 4, ThreadsPerRank: threads, CoalesceSize: 4,
					Detector: det, FaultPlan: plan}
				counts, sent := runChatter(t, cfg, 64, false)
				checkExactlyOnce(t, counts, seed)
				if sent != int64(len(counts)) {
					t.Fatalf("MsgsSent = %d, want %d", sent, len(counts))
				}
			})
		}
	}
}

// TestFaultCountersObservable asserts the injected faults are visible in
// Stats: at a 20% drop rate the run must record drops, retransmits to
// recover them, duplicates, suppressed duplicates, and acks.
func TestFaultCountersObservable(t *testing.T) {
	const seed = 7
	plan := &FaultPlan{Seed: seed, Drop: 0.2, Dup: 0.15, Delay: 0.1}
	cfg := Config{Ranks: 3, ThreadsPerRank: 1, CoalesceSize: 2, FaultPlan: plan}
	u := NewUniverse(cfg)
	mt := Register(u, "ping", func(r *Rank, m int64) {})
	u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {
			for i := 0; i < 200; i++ {
				mt.SendTo(r, (r.ID()+1)%r.N(), int64(i))
			}
		})
	})
	s := u.Stats.Snapshot()
	if s.EnvelopesDropped == 0 || s.Retransmits == 0 {
		t.Fatalf("expected drops and retransmits, got %+v (seed %d)", s, seed)
	}
	if s.EnvelopesDuplicated == 0 || s.DupsSuppressed == 0 {
		t.Fatalf("expected duplicates and suppressions, got %+v (seed %d)", s, seed)
	}
	if s.AckMsgs == 0 {
		t.Fatalf("expected acks, got %+v (seed %d)", s, seed)
	}
	if s.HandlersRun != s.MsgsSent {
		t.Fatalf("HandlersRun %d != MsgsSent %d: lost or duplicated messages (seed %d)",
			s.HandlersRun, s.MsgsSent, seed)
	}
}

// TestFourCounterPollOnlyUnderDrops covers the previously untested
// combination: DetectorFourCounter with ThreadsPerRank 0 (messages are
// delivered only when a rank polls) while envelopes are being dropped,
// duplicated, and reordered. The four-counter protocol must still terminate
// each epoch exactly once per message.
func TestFourCounterPollOnlyUnderDrops(t *testing.T) {
	const seed = 99
	plan := &FaultPlan{Seed: seed, Drop: 0.2, Dup: 0.1, Delay: 0.15}
	cfg := Config{Ranks: 3, ThreadsPerRank: 0, CoalesceSize: 3,
		Detector: DetectorFourCounter, FaultPlan: plan}
	counts, _ := runChatter(t, cfg, 60, false)
	checkExactlyOnce(t, counts, seed)
}

// TestGobCorruptionDetectedAndRecovered injects payload corruption into a
// gob-wire type: every corrupted envelope must be detected by the wire
// checksum, counted, and recovered by retransmission, with no handler ever
// observing damaged data.
func TestGobCorruptionDetectedAndRecovered(t *testing.T) {
	const seed = 5150
	plan := &FaultPlan{Seed: seed, Corrupt: 0.3}
	cfg := Config{Ranks: 2, ThreadsPerRank: 1, CoalesceSize: 4, FaultPlan: plan}
	u := NewUniverse(cfg)
	var bad atomic.Int64
	var handled atomic.Int64
	mt := Register(u, "wire", func(r *Rank, m chatterPayload) {
		handled.Add(1)
		if m.Hop != m.ID*3 {
			bad.Add(1)
		}
	}).WithGobTransport()
	const per = 300
	u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {
			for i := 0; i < per; i++ {
				mt.SendTo(r, 1-r.ID(), chatterPayload{ID: int64(i), Hop: int64(i) * 3})
			}
		})
	})
	if got := handled.Load(); got != 2*per {
		t.Fatalf("handled %d, want %d (seed %d)", got, 2*per, seed)
	}
	if bad.Load() != 0 {
		t.Fatalf("%d handlers observed corrupted payloads (seed %d)", bad.Load(), seed)
	}
	if u.Stats.CorruptionsDetected() == 0 {
		t.Fatalf("no corruptions detected at 30%% corruption rate (seed %d)", seed)
	}
	if u.Stats.Retransmits() == 0 {
		t.Fatalf("corrupted envelopes were not retransmitted (seed %d)", seed)
	}
}

// TestReliableZeroRatesProtocolOnly runs the reliable protocol with all
// fault rates zero: pure protocol overhead, no faults, exact delivery.
func TestReliableZeroRatesProtocolOnly(t *testing.T) {
	cfg := Config{Ranks: 3, ThreadsPerRank: 2, FaultPlan: &FaultPlan{Seed: 1}}
	counts, _ := runChatter(t, cfg, 40, false)
	checkExactlyOnce(t, counts, 1)
}

// TestReliableDeterministicSchedule runs an identical single-rank,
// poll-only workload twice: with one goroutine the whole execution is
// sequential, so the stateless fault schedule must reproduce the exact same
// counter values run to run.
func TestReliableDeterministicSchedule(t *testing.T) {
	run := func() Snapshot {
		plan := &FaultPlan{Seed: 42, Drop: 0.25, Dup: 0.2, Delay: 0.2}
		u := NewUniverse(Config{Ranks: 1, ThreadsPerRank: 0, CoalesceSize: 2, FaultPlan: plan})
		mt := Register(u, "self", func(r *Rank, m int64) {})
		u.Run(func(r *Rank) {
			r.Epoch(func(ep *Epoch) {
				for i := 0; i < 500; i++ {
					mt.SendTo(r, 0, int64(i))
				}
			})
		})
		return u.Stats.Snapshot()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different fault schedule:\n run1 %+v\n run2 %+v", a, b)
	}
	if a.EnvelopesDropped == 0 || a.Retransmits == 0 {
		t.Fatalf("schedule injected nothing: %+v", a)
	}
}

// TestShutdownStress hammers the Universe.Run teardown path — four-counter
// probes, handler threads, and the reliable layer's retransmit polling all
// winding down at epoch end — to demonstrate the absence of a
// send-on-closed-channel race between the ctrl responder teardown and late
// probe/retransmit activity. Run with -race.
func TestShutdownStress(t *testing.T) {
	for i := 0; i < 30; i++ {
		plan := &FaultPlan{Seed: uint64(i), Drop: 0.15, Dup: 0.1, Delay: 0.1,
			RetransmitBase: 1}
		u := NewUniverse(Config{Ranks: 4, ThreadsPerRank: 2, CoalesceSize: 1,
			Detector: DetectorFourCounter, FaultPlan: plan})
		var got atomic.Int64
		mt := Register(u, "m", func(r *Rank, m int64) { got.Add(1) })
		u.Run(func(r *Rank) {
			// Several tiny epochs so teardown happens right after
			// termination-detection and retransmit activity.
			for e := 0; e < 4; e++ {
				r.Epoch(func(ep *Epoch) {
					for d := 0; d < r.N(); d++ {
						mt.SendTo(r, d, int64(d))
					}
				})
			}
		})
		want := int64(4 * 4 * 4)
		if got.Load() != want {
			t.Fatalf("iteration %d: handled %d, want %d", i, got.Load(), want)
		}
	}
}

// TestTrustedShutdownStress is the same teardown stress without a fault
// plan, guarding the original transport's shutdown ordering.
func TestTrustedShutdownStress(t *testing.T) {
	for i := 0; i < 30; i++ {
		u := NewUniverse(Config{Ranks: 4, ThreadsPerRank: 2, CoalesceSize: 1,
			Detector: DetectorFourCounter})
		var got atomic.Int64
		mt := Register(u, "m", func(r *Rank, m int64) { got.Add(1) })
		u.Run(func(r *Rank) {
			for e := 0; e < 4; e++ {
				r.Epoch(func(ep *Epoch) {
					for d := 0; d < r.N(); d++ {
						mt.SendTo(r, d, int64(d))
					}
				})
			}
		})
		if want := int64(4 * 4 * 4); got.Load() != want {
			t.Fatalf("iteration %d: handled %d, want %d", i, got.Load(), want)
		}
	}
}

// TestReliableWithReduction checks the caching/reduction layer composes
// with reliable delivery: suppressed messages never enter the wire, and the
// survivors are delivered exactly once under faults.
func TestReliableWithReduction(t *testing.T) {
	const seed = 31337
	plan := &FaultPlan{Seed: seed, Drop: 0.2, Dup: 0.1}
	u := NewUniverse(Config{Ranks: 2, ThreadsPerRank: 1, CoalesceSize: 1 << 20, FaultPlan: plan})
	var handled atomic.Int64
	mt := Register(u, "upd", func(r *Rank, m chatterPayload) { handled.Add(1) }).
		WithReduction(
			func(m chatterPayload) uint64 { return uint64(m.ID) },
			func(old, in chatterPayload) (chatterPayload, bool) { return old, false },
		)
	u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {
			if r.ID() == 0 {
				for i := 0; i < 50; i++ {
					mt.SendTo(r, 1, chatterPayload{ID: int64(i % 10)})
				}
			}
		})
	})
	if handled.Load() != 10 {
		t.Fatalf("handled %d, want 10 (seed %d)", handled.Load(), seed)
	}
}
