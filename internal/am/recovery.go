package am

import (
	"fmt"
	"runtime"
	"strings"

	"declpat/internal/obs"
)

// Rank-fault containment and epoch-granular checkpoint/restart.
//
// The epoch structure of the paper (§II, §III-D) gives the substrate exact
// recovery points for free: an epoch ends only when every message it caused
// — transitively — has been handled, and in reliable mode additionally
// acknowledged (relPending == 0 everywhere). The instant between two epochs
// is therefore a consistent cut: no envelope is in flight, no handler is
// running, no coalescing buffer holds data, and all registered deferred work
// is zero. Checkpoints are taken exactly there, and recovery rolls every
// rank back to that cut.
//
// Fault model: crash-stop ranks. A faulted rank (injected crash, contained
// handler panic, or the suspected endpoint of a dead link) stops handling,
// drops its inbox, and goes silent; peers observe it only through missing
// acknowledgements. Because the fault plan's reliable transport never lets
// an epoch commit while any envelope is unacknowledged, a mid-epoch fault
// can only delay the epoch, never corrupt a committed one.
//
// Recovery (Config.Recovery) aborts the damaged epoch: the shared epoch
// state moves running→aborting, every body participant unwinds at its next
// Flush/TryFinish, in-flight handlers retire, and then — under barriers —
// every rank scrubs its transport state (inbox, coalescing buffers, link
// tables, detector counters) and restores the snapshots taken at the epoch
// boundary. The dead rank is restarted and the epoch body replays. Replay
// is exact because bodies and handlers are deterministic functions of the
// restored state; the chaos harness proves BFS/SSSP/CC bit-identical under
// crash schedules.

// Checkpointer is per-rank state that participates in epoch-granular
// checkpoint/restart. Register implementations with
// Universe.RegisterCheckpointer before Run; when Config.Recovery is set the
// universe calls SnapshotRank on every rank at each epoch boundary and
// RestoreRank when an epoch is rolled back.
//
// SnapshotRank must deep-copy: the snapshot is retained across the epoch
// while the live state mutates, and one snapshot may be restored several
// times (repeated faults in one epoch). RestoreRank must leave the live
// state equal to the snapshot and must tolerate the snapshot value it
// returned itself (including nil). Both are called with the rest of the
// universe quiescent with respect to rank — SnapshotRank before the epoch's
// opening barrier, RestoreRank between recovery barriers — so no locking
// against handlers is needed beyond the structure's own invariants.
//
// For recovery to be sound, *all* state a replayed epoch body or handler
// reads and writes must be registered (property maps, frontiers, bucket
// structures). Pure metrics (Stats counters) are exempt: they are
// monotonic diagnostics, not algorithm state, and recovery does not rewind
// them.
type Checkpointer interface {
	SnapshotRank(rank int) any
	RestoreRank(rank int, snap any)
}

// SerializedCheckpointer extends Checkpointer with a byte encoding of its
// snapshots, so a checkpoint can be written to disk and reloaded by a
// *replacement process* (multi-process crash recovery, WithControlPlane).
// EncodeSnapshot/DecodeSnapshot must round-trip exactly: for any snap from
// SnapshotRank, RestoreRank(rank, DecodeSnapshot(EncodeSnapshot(snap)))
// leaves the rank's state equal to restoring snap directly. Both must
// handle the implementation's nil/empty snapshot representation. Encodings
// should be deterministic (sorted iteration over maps) so identical state
// yields identical checkpoint files.
//
// Every checkpointer registered on a multi-process universe must implement
// this interface; Run fails fast otherwise.
type SerializedCheckpointer interface {
	Checkpointer
	EncodeSnapshot(snap any) ([]byte, error)
	DecodeSnapshot(data []byte) (any, error)
}

// RegisterCheckpointer registers per-rank state for epoch-granular
// checkpoint/restart. Must be called before Run.
func (u *Universe) RegisterCheckpointer(c Checkpointer) {
	if u.frozen.Load() {
		panic("am: RegisterCheckpointer after Run")
	}
	u.checkpointers = append(u.checkpointers, c)
}

// FaultKind classifies rank faults.
type FaultKind int

const (
	// FaultCrash: an injected crash-stop failure (FaultPlan.Crashes).
	FaultCrash FaultKind = iota
	// FaultHandlerPanic: a message handler panicked; the panic was
	// contained and converted into a crash of the handling rank.
	FaultHandlerPanic
	// FaultLinkDead: a link's retransmit ceiling (FaultPlan.MaxAttempts)
	// was exceeded; the destination rank is suspected dead.
	FaultLinkDead
	// FaultWatchdog: the stuck-epoch watchdog saw no progress for
	// Config.Watchdog. Watchdog faults are fatal — replaying a wedged
	// epoch would wedge again — and always fail the run.
	FaultWatchdog
	// FaultTransport: a socket transport exhausted a link's reconnect
	// budget; the destination rank is suspected dead. Recoverable:
	// recovery heals the transport's links and replays the epoch.
	FaultTransport
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultHandlerPanic:
		return "handler-panic"
	case FaultLinkDead:
		return "link-dead"
	case FaultWatchdog:
		return "watchdog"
	case FaultTransport:
		return "transport"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// RankFault describes one rank fault observed by the universe. It is the
// error Universe.Run wraps when a fault cannot be recovered.
type RankFault struct {
	Kind   FaultKind
	Rank   int   // faulted (or suspected) rank
	Epoch  int64 // epoch sequence the fault hit
	Detail string
}

func (f *RankFault) Error() string {
	return fmt.Sprintf("rank %d %s at epoch %d: %s", f.Rank, f.Kind, f.Epoch, f.Detail)
}

// Epoch state machine. The shared epoch flag of the original design
// (epochDone) became a three-state machine so that a fault and a detector
// cannot both claim the epoch: detectors CAS running→done, faults CAS
// running→aborting, and whichever wins decides whether the epoch commits
// or rolls back. Both transitions are observed by every rank at the barrier
// that follows the epoch attempt.
const (
	epochRunning int32 = iota
	epochFinished
	epochAborting
)

// epochAbort is the sentinel panic that unwinds an epoch-body participant
// when its epoch is rolling back. Thrown only by Flush and TryFinish (the
// body's mandatory progress points) and by abortCheck; recovered by the
// body wrappers in EpochThreaded.
type epochAbort struct{}

// runAbort is the sentinel panic that unwinds a rank main when the run has
// failed; recovered at the top of each rank-main goroutine in Run, which
// then reports Universe.Run's error.
type runAbort struct{}

// resilient reports whether rank faults are contained (converted into
// RankFaults) rather than propagated as process panics. Containment is on
// whenever a fault plan is installed or recovery is enabled; the plain
// trusted transport keeps the original fail-fast behavior.
func (u *Universe) resilient() bool {
	return u.cfg.Recovery || u.fp != nil
}

// raiseFault records f and tries to move the current epoch running→aborting.
// It reports whether f became the epoch's deciding fault; a fault raised
// while the epoch is already aborting (concurrent faults) or already done
// (lost the race to the detector) is logged only.
func (u *Universe) raiseFault(f RankFault) bool {
	if u.mp != nil && u.runExited.Load() {
		// The run already completed: every rank main returned and the results
		// are final. In multi-process mode peers close their data-plane
		// sockets at slightly different times, so a slower worker's
		// heartbeats can exhaust a reconnect budget against an
		// already-departed peer — that is teardown noise, not a fault, and
		// must not trigger a spurious fleet restart.
		return false
	}
	u.faultMu.Lock()
	u.faultLog = append(u.faultLog, f)
	u.faultMu.Unlock()
	if !u.epochState.CompareAndSwap(epochRunning, epochAborting) {
		return false
	}
	u.faultMu.Lock()
	u.fault = &f
	u.faultMu.Unlock()
	u.ranks[0].st.Inc(cEpochAborts)
	u.trace(f.Rank, TraceEpochAbort, f.Epoch, int64(f.Kind))
	// Every fault class converges here — injected crash, handler panic, dead
	// link, watchdog fire, transport escalation — so this is the single
	// black-box persistence point for the "worker died messily" cases.
	u.flightPersist("fault: " + f.Error())
	if u.mp != nil {
		// No in-process rollback in multi-process mode: report the fault so
		// the coordinator aborts the fleet, and take this process down the
		// abort path immediately — the launcher respawns every worker from
		// the last committed checkpoint.
		u.mp.plane.ReportFault(f)
		u.mpFail(fmt.Errorf("am: rank fault aborted multi-process run (restart required): %w", &f))
	}
	return true
}

// currentFault returns the deciding fault of the aborting epoch.
func (u *Universe) currentFault() *RankFault {
	u.faultMu.Lock()
	defer u.faultMu.Unlock()
	return u.fault
}

// clearFault discards the deciding fault after a successful recovery.
func (u *Universe) clearFault() {
	u.faultMu.Lock()
	u.fault = nil
	u.faultMu.Unlock()
}

// FaultLog returns every rank fault observed so far, deciding or not.
// Read at quiescent points (after Run).
func (u *Universe) FaultLog() []RankFault {
	u.faultMu.Lock()
	defer u.faultMu.Unlock()
	return append([]RankFault(nil), u.faultLog...)
}

// failRun records the terminal error; every rank main unwinds via runAbort
// at the next recovery barrier and Run returns the error.
func (u *Universe) failRun(err error) {
	u.faultMu.Lock()
	if u.runErr == nil {
		u.runErr = err
	}
	u.faultMu.Unlock()
	u.runFailed.Store(true)
}

// runError returns the terminal error recorded by failRun, if any.
func (u *Universe) runError() error {
	u.faultMu.Lock()
	defer u.faultMu.Unlock()
	return u.runErr
}

// abortCheck unwinds the calling epoch-body participant when the epoch is
// rolling back (or the rank itself has crashed). Called from the body-side
// entry points Flush and TryFinish.
func (r *Rank) abortCheck() {
	if r.u.epochState.Load() == epochAborting || r.crashed.Load() {
		panic(epochAbort{})
	}
}

// crashNow marks r crashed (crash-stop): it drops the inbox, stops
// handling, sending, flushing, and retransmitting, and raises the fault
// that will abort the current epoch. Peers observe the crash only through
// silence (missing acks keep relPending non-zero, so detectors cannot
// commit the damaged epoch).
func (r *Rank) crashNow(kind FaultKind, detail string) {
	if !r.crashed.CompareAndSwap(false, true) {
		return
	}
	u := r.u
	if kind == FaultCrash {
		r.st.Inc(cRankCrashes)
	}
	u.trace(r.id, TraceCrash, u.epochSeq.Load(), int64(kind))
	r.inbox.DropAll()
	u.raiseFault(RankFault{Kind: kind, Rank: r.id, Epoch: u.epochSeq.Load(), Detail: detail})
}

// armCrashes scans the fault plan for crash entries targeting (r, current
// epoch): an entry with AfterHandled <= 0 fires immediately (the rank is
// dead on epoch entry), otherwise the rank arms a mid-epoch trigger checked
// per delivered envelope. Runs before the epoch attempt's opening barrier,
// so the trigger is armed before any peer can send. Each entry fires at
// most once per run.
func (r *Rank) armCrashes() {
	u := r.u
	r.crashAfter.Store(-1)
	if u.fp == nil || len(u.fp.Crashes) == 0 {
		return
	}
	epoch := u.epochSeq.Load()
	for i := range u.fp.Crashes {
		c := &u.fp.Crashes[i]
		if c.Rank != r.id || c.Epoch != epoch || u.crashFired[i].Load() {
			continue
		}
		if c.AfterHandled <= 0 {
			u.crashFired[i].Store(true)
			r.crashNow(FaultCrash, fmt.Sprintf("injected crash-stop at epoch entry (FaultPlan.Crashes[%d])", i))
			return
		}
		r.crashIdx = i
		r.crashAfter.Store(int64(c.AfterHandled))
		return // at most one armed trigger per rank per epoch attempt
	}
}

// crashDue fires an armed mid-epoch crash once the rank has handled its
// k-th message of the epoch. Called from deliverEnvelope before handling;
// reports whether the rank just died (the triggering envelope dies with it).
func (r *Rank) crashDue() bool {
	ca := r.crashAfter.Load()
	if ca < 0 || r.handledInEpoch.Load() < ca {
		return false
	}
	if !r.crashAfter.CompareAndSwap(ca, -1) {
		return false // another handler thread fired it first
	}
	u := r.u
	u.crashFired[r.crashIdx].Store(true)
	r.crashNow(FaultCrash, fmt.Sprintf(
		"injected crash-stop after %d handled messages (FaultPlan.Crashes[%d])", ca, r.crashIdx))
	return true
}

// linkDown reports whether the fault plan severs (src → dest) during the
// current epoch (FaultPlan.DeadLinks). A severed direction swallows every
// transmission — data and acks — until the sender's retransmit ceiling
// declares the link dead; the link is healed when the epoch recovers.
func (u *Universe) linkDown(src, dest int) bool {
	if !u.hasDeadLinks {
		return false
	}
	epoch := u.epochSeq.Load()
	for i := range u.fp.DeadLinks {
		dl := &u.fp.DeadLinks[i]
		if dl.Src == src && dl.Dest == dest && dl.Epoch == epoch && !u.linkHealed[i].Load() {
			return true
		}
	}
	return false
}

// healLinks marks every dead link of the current epoch healed; called by
// rank 0 during recovery so the replay can succeed.
func (u *Universe) healLinks() {
	if !u.hasDeadLinks {
		return
	}
	epoch := u.epochSeq.Load()
	for i := range u.fp.DeadLinks {
		if u.fp.DeadLinks[i].Epoch == epoch {
			u.linkHealed[i].Store(true)
		}
	}
}

// snapshotRank checkpoints every registered Checkpointer for one rank.
func (u *Universe) snapshotRank(rank int) {
	for i, c := range u.checkpointers {
		u.ckpts[rank][i] = c.SnapshotRank(rank)
	}
}

// restoreRank rolls every registered Checkpointer for one rank back to the
// last epoch boundary.
func (u *Universe) restoreRank(rank int) {
	for i, c := range u.checkpointers {
		c.RestoreRank(rank, u.ckpts[rank][i])
	}
}

// maxRecoveries returns the per-epoch recovery budget.
func (u *Universe) maxRecoveries() int {
	if u.cfg.MaxRecoveries > 0 {
		return u.cfg.MaxRecoveries
	}
	return defaultMaxRecoveries
}

const defaultMaxRecoveries = 8

// recoverEpoch rolls the universe back to the checkpoint taken at the
// current epoch's boundary. On entry every rank sits behind the post-attempt
// barrier with epochState == epochAborting: bodies have unwound and
// progress loops have stopped. The sequence is collective — every rank runs
// it — and barrier-structured:
//
//  1. quiesce: each rank waits for its own in-flight handlers to retire
//     (aborting state stops new ones before they start), then a barrier
//     establishes that no handler runs anywhere and nothing new can be
//     pushed;
//  2. decide (rank 0): recovery disabled, a fatal fault kind, or an
//     exhausted per-epoch recovery budget fails the run — every rank then
//     unwinds via runAbort;
//  3. scrub: each rank drops its inbox, clears its coalescing buffers,
//     re-initializes its link tables, zeroes its detector counters, and
//     restores its registered checkpoints; the dead rank is restarted by
//     clearing its crashed flag;
//  4. reset (rank 0): the shared pending counter is zeroed, dead links are
//     healed, the fault is cleared, and epochState returns to running —
//     after which the final barrier releases every rank into the replay.
func (r *Rank) recoverEpoch() {
	u := r.u
	ph := r.Phase(obs.PhaseRecovery)
	defer ph.End() // runs on the runAbort unwind too: a failed run still reports
	for r.activeH.Load() != 0 {
		runtime.Gosched()
	}
	r.Barrier() // no handler active anywhere; aborting state blocks new ones

	fault := u.currentFault()
	if r.id == 0 {
		u.recoveries++
		switch {
		case fault == nil: // unreachable; defensive
			u.failRun(fmt.Errorf("am: epoch %d aborted without a recorded fault", u.epochSeq.Load()))
		case fault.Kind == FaultWatchdog:
			u.failRun(fmt.Errorf("am: stuck-epoch watchdog: %w", fault))
		case !u.cfg.Recovery:
			u.failRun(fmt.Errorf("am: unrecoverable rank fault (Config.Recovery disabled): %w", fault))
		case u.recoveries > u.maxRecoveries():
			u.failRun(fmt.Errorf("am: epoch %d still failing after %d recoveries: %w",
				u.epochSeq.Load(), u.recoveries-1, fault))
		}
	}
	r.Barrier() // decision visible everywhere
	if u.runFailed.Load() {
		panic(runAbort{})
	}

	// Scrub transport and detector state back to the epoch-boundary cut.
	r.inbox.DropAll()
	for _, mt := range u.types {
		mt.clear(r)
	}
	if u.fp != nil {
		r.initReliability(len(u.types))
		u.relPending.Add(r.id, -u.relPending.ShardValue(r.id))
	}
	r.sentC.Store(0)
	r.recvC.Store(0)
	r.auxWork.Store(0)
	r.handledInEpoch.Store(0)
	r.crashAfter.Store(-1)
	u.restoreRank(r.id)
	r.crashed.Store(false) // restart the dead rank
	r.Barrier()            // all ranks scrubbed and restored

	if r.id == 0 {
		u.pending.Store(0)
		u.healLinks()
		// Heal the transport too: links a socket backend declared dead
		// (reconnect budget exhausted) get a fresh budget and a new
		// reconnect attempt, so the replay is not doomed by the outage
		// that aborted this attempt.
		u.net.healEpoch()
		u.clearFault()
		u.touchProgress()
		r.st.Inc(cRecoveries)
		u.trace(0, TraceRecover, u.epochSeq.Load(), int64(u.recoveries))
		// Advance the envelope generation before reopening the epoch: any
		// envelope created before this point carries a stale gen and is
		// discarded at delivery, so a straggler push (a worker descheduled
		// across the whole recovery) cannot leak pre-abort traffic into the
		// replay.
		u.epochGen.Add(1)
		u.epochState.Store(epochRunning)
	}
	r.Barrier() // state reset visible; every rank replays the epoch body
}

// touchProgress stamps the watchdog's progress clock. Called wherever the
// substrate demonstrably moved: envelopes delivered, buffers flushed,
// epochs opened, recoveries completed.
func (u *Universe) touchProgress() {
	if u.cfg.Watchdog > 0 {
		u.lastProgress.Store(obs.Now())
	}
}

// checkWatchdog fires the stuck-epoch watchdog when no progress has been
// observed for Config.Watchdog. The watchdog converts a silent hang — a
// body spinning on TryFinish over deferred work nobody consumes, a lost
// wakeup — into a diagnostic failure: the raised fault is fatal (replay
// would wedge again) and carries a dump of the detector counters and the
// most recent trace events. Called from the detector-idle branches of
// progressUntilDone and TryFinish; it fires at most once per run.
func (r *Rank) checkWatchdog() {
	u := r.u
	if u.cfg.Watchdog <= 0 {
		return
	}
	last := u.lastProgress.Load()
	if last == 0 || obs.Now()-last < int64(u.cfg.Watchdog) {
		return
	}
	if !u.watchdogFired.CompareAndSwap(false, true) {
		return
	}
	r.st.Inc(cWatchdogFires)
	u.trace(r.id, TraceWatchdog, u.epochSeq.Load(), 0)
	u.raiseFault(RankFault{
		Kind: FaultWatchdog, Rank: r.id, Epoch: u.epochSeq.Load(),
		Detail: fmt.Sprintf("no progress for %v\n%s", u.cfg.Watchdog, u.diagnose()),
	})
}

// diagnose renders the stuck-epoch diagnostic dump: per-rank detector
// counters plus the tail of the trace rings (when tracing is enabled).
func (u *Universe) diagnose() string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch %d diagnostic dump:\n", u.epochSeq.Load())
	fmt.Fprintf(&b, "  pending=%d aux=%d relPending=%d\n",
		u.pending.Load(), u.totalAux(), u.totalRelPending())
	for _, r := range u.ranks {
		fmt.Fprintf(&b, "  rank %d: idle=%d/%d activeH=%d aux=%d rel=%d inbox=%d sent=%d recv=%d crashed=%v\n",
			r.id, r.idleBodies.Load(), r.totalBodies.Load(), r.activeH.Load(),
			r.auxWork.Load(), r.relPendingNow(), r.inbox.Len(),
			r.sentC.Load(), r.recvC.Load(), r.crashed.Load())
	}
	if events := u.Trace(); len(events) > 0 {
		const tail = 32
		start := 0
		if len(events) > tail {
			start = len(events) - tail
		}
		fmt.Fprintf(&b, "  trace tail (%d of %d events):\n", len(events)-start, len(events))
		for _, ev := range events[start:] {
			fmt.Fprintf(&b, "    %s\n", ev)
		}
	} else {
		b.WriteString("  trace: disabled (set Config.TraceCapacity for event history)\n")
	}
	return b.String()
}
