package am

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// configs exercised by the matrix tests.
func testConfigs() []Config {
	return []Config{
		{Ranks: 1, ThreadsPerRank: 0},
		{Ranks: 1, ThreadsPerRank: 2},
		{Ranks: 2, ThreadsPerRank: 1},
		{Ranks: 4, ThreadsPerRank: 2},
		{Ranks: 3, ThreadsPerRank: 2, CoalesceSize: 1},
		{Ranks: 4, ThreadsPerRank: 2, Detector: DetectorFourCounter},
		{Ranks: 2, ThreadsPerRank: 0, Detector: DetectorFourCounter},
	}
}

func TestEpochDeliversAll(t *testing.T) {
	for _, cfg := range testConfigs() {
		cfg := cfg
		t.Run(cfg.Detector.String()+"/"+itoa(cfg.Ranks)+"x"+itoa(cfg.ThreadsPerRank), func(t *testing.T) {
			u := NewUniverse(cfg)
			var handled atomic.Int64
			mt := Register(u, "ping", func(r *Rank, m int64) {
				handled.Add(1)
			})
			const per = 500
			u.Run(func(r *Rank) {
				r.Epoch(func(ep *Epoch) {
					for i := 0; i < per; i++ {
						mt.SendTo(r, (r.ID()+1)%r.N(), int64(i))
					}
				})
			})
			want := int64(per * cfg.Ranks)
			if got := handled.Load(); got != want {
				t.Fatalf("handled %d messages, want %d", got, want)
			}
			if got := u.Stats.MsgsSent(); got != want {
				t.Fatalf("MsgsSent = %d, want %d", got, want)
			}
			if got := u.Stats.HandlersRun(); got != want {
				t.Fatalf("HandlersRun = %d, want %d", got, want)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestHandlerChains verifies the AM++ property that handlers may send: a
// message with TTL k forwards to a random-ish next rank with TTL k-1, and
// the epoch must not end until the whole cascade has drained.
func TestHandlerChains(t *testing.T) {
	for _, cfg := range testConfigs() {
		cfg := cfg
		t.Run(cfg.Detector.String()+"/"+itoa(cfg.Ranks)+"x"+itoa(cfg.ThreadsPerRank), func(t *testing.T) {
			u := NewUniverse(cfg)
			var handled atomic.Int64
			var mt *MsgType[int64]
			mt = Register(u, "ttl", func(r *Rank, ttl int64) {
				handled.Add(1)
				if ttl > 0 {
					mt.SendTo(r, int(ttl)%r.N(), ttl-1)
				}
			})
			const ttl0 = 50
			u.Run(func(r *Rank) {
				r.Epoch(func(ep *Epoch) {
					mt.SendTo(r, 0, int64(ttl0))
				})
				// The epoch guarantee: by now every TTL step ran.
				if got := handled.Load(); got != int64(cfg.Ranks*(ttl0+1)) {
					t.Errorf("rank %d after epoch: handled=%d want %d", r.ID(), got, cfg.Ranks*(ttl0+1))
				}
			})
		})
	}
}

// TestHandlerFanout: each handled message fans out to two more until depth
// exhausts; total must be exactly 2^(d+1)-1 per root.
func TestHandlerFanout(t *testing.T) {
	u := NewUniverse(Config{Ranks: 4, ThreadsPerRank: 2})
	var handled atomic.Int64
	var mt *MsgType[int32]
	mt = Register(u, "fan", func(r *Rank, depth int32) {
		handled.Add(1)
		if depth > 0 {
			mt.SendTo(r, (r.ID()+1)%r.N(), depth-1)
			mt.SendTo(r, (r.ID()+2)%r.N(), depth-1)
		}
	})
	u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {
			if r.ID() == 0 {
				mt.SendTo(r, 0, 10)
			}
		})
	})
	want := int64(1<<11 - 1)
	if got := handled.Load(); got != want {
		t.Fatalf("handled = %d, want %d", got, want)
	}
}

func TestMultipleEpochs(t *testing.T) {
	u := NewUniverse(Config{Ranks: 3, ThreadsPerRank: 1})
	var handled atomic.Int64
	mt := Register(u, "m", func(r *Rank, m int32) { handled.Add(1) })
	const epochs = 5
	u.Run(func(r *Rank) {
		for e := 0; e < epochs; e++ {
			before := handled.Load()
			_ = before
			r.Epoch(func(ep *Epoch) {
				mt.SendTo(r, (r.ID()+e)%r.N(), int32(e))
			})
			// Epoch boundary is a full barrier: totals are multiples
			// of Ranks after each epoch.
			if got := handled.Load(); got != int64(3*(e+1)) {
				t.Fatalf("epoch %d: handled=%d want %d", e, got, 3*(e+1))
			}
		}
	})
	if got := u.Stats.Epochs(); got != epochs {
		t.Fatalf("Epochs stat = %d, want %d", got, epochs)
	}
}

func TestObjectAddressing(t *testing.T) {
	u := NewUniverse(Config{Ranks: 4, ThreadsPerRank: 1})
	var wrongRank atomic.Int64
	mt := Register(u, "obj", func(r *Rank, m int64) {
		if int(m%4) != r.ID() {
			wrongRank.Add(1)
		}
	}).WithAddresser(func(m int64) int { return int(m % 4) })
	u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {
			for i := int64(0); i < 100; i++ {
				mt.Send(r, i)
			}
		})
	})
	if wrongRank.Load() != 0 {
		t.Fatalf("%d messages routed to the wrong rank", wrongRank.Load())
	}
}

func TestCoalescingEnvelopeCounts(t *testing.T) {
	const n = 1000
	// With coalescing factor c, rank 0 sending n messages to rank 1 in
	// one epoch ships ceil(n/c) envelopes.
	for _, c := range []int{1, 16, 64, 1000, 4096} {
		u := NewUniverse(Config{Ranks: 2, ThreadsPerRank: 1, CoalesceSize: c})
		mt := Register(u, "m", func(r *Rank, m int64) {})
		u.Run(func(r *Rank) {
			r.Epoch(func(ep *Epoch) {
				if r.ID() == 0 {
					for i := 0; i < n; i++ {
						mt.SendTo(r, 1, int64(i))
					}
				}
			})
		})
		want := int64((n + c - 1) / c)
		if got := u.Stats.Envelopes(); got != want {
			t.Fatalf("coalesce=%d: envelopes=%d want %d", c, got, want)
		}
		wantBytes := int64(n*8) + want*envelopeHeaderBytes
		if got := u.Stats.BytesSent(); got != wantBytes {
			t.Fatalf("coalesce=%d: bytes=%d want %d", c, got, wantBytes)
		}
	}
}

// TestReduction verifies the caching layer: duplicate keys inside a buffer
// are combined, so at most one handler invocation per key per flush, and the
// surviving payload is the minimum.
func TestReduction(t *testing.T) {
	u := NewUniverse(Config{Ranks: 2, ThreadsPerRank: 1, CoalesceSize: 1 << 20})
	type upd struct {
		Key uint64
		Val int64
	}
	var got atomic.Int64
	mt := Register(u, "upd", func(r *Rank, m upd) {
		got.Add(1)
		if m.Val != 0 {
			_ = r.u.Stats.CtrlMsgs() // no-op; just exercise access
		}
	}).WithReduction(
		func(m upd) uint64 { return m.Key },
		func(old, in upd) (upd, bool) {
			if in.Val < old.Val {
				return in, true
			}
			return old, false
		},
	)
	const keys, dups = 50, 20
	u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {
			if r.ID() != 0 {
				return
			}
			for d := 0; d < dups; d++ {
				for k := 0; k < keys; k++ {
					mt.SendTo(r, 1, upd{Key: uint64(k), Val: int64(dups - d)})
				}
			}
		})
	})
	if got.Load() != keys {
		t.Fatalf("handlers ran %d times, want %d (one per key)", got.Load(), keys)
	}
	if s := u.Stats.MsgsSuppressed(); s != keys*(dups-1) {
		t.Fatalf("suppressed=%d want %d", s, keys*(dups-1))
	}
	if s := u.Stats.MsgsSent(); s != keys {
		t.Fatalf("sent=%d want %d", s, keys)
	}
}

func TestSendOutsideEpochPanics(t *testing.T) {
	u := NewUniverse(Config{Ranks: 1, ThreadsPerRank: 0})
	mt := Register(u, "m", func(r *Rank, m int64) {})
	u.Run(func(r *Rank) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic sending outside an epoch")
			}
		}()
		mt.SendTo(r, 0, 1)
	})
}

func TestFlushMakesProgress(t *testing.T) {
	// With zero handler threads, messages are only handled at Flush or
	// epoch end — Flush must deliver everything buffered so far,
	// including handler-generated follow-ups.
	u := NewUniverse(Config{Ranks: 1, ThreadsPerRank: 0})
	var handled atomic.Int64
	var mt *MsgType[int64]
	mt = Register(u, "m", func(r *Rank, ttl int64) {
		handled.Add(1)
		if ttl > 0 {
			mt.SendTo(r, 0, ttl-1)
		}
	})
	u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {
			mt.SendTo(r, 0, 9)
			if handled.Load() != 0 {
				t.Error("no handler threads: nothing should be handled before Flush")
			}
			ep.Flush()
			if got := handled.Load(); got != 10 {
				t.Errorf("after Flush: handled=%d want 10", got)
			}
		})
	})
}

func TestTryFinishWithAuxWork(t *testing.T) {
	// Model the distributed Δ-stepping loop: handlers deposit rank-local
	// work items (AuxAdd); bodies consume them and call TryFinish when
	// empty. The epoch must not terminate while deposited work remains.
	for _, det := range []DetectorKind{DetectorAtomic, DetectorFourCounter} {
		t.Run(det.String(), func(t *testing.T) {
			u := NewUniverse(Config{Ranks: 3, ThreadsPerRank: 1, Detector: det})
			type unit = struct{}
			_ = unit{}
			var deposited [3]atomic.Int64 // per-rank local "buckets"
			var consumed atomic.Int64
			var mt *MsgType[int64]
			mt = Register(u, "work", func(r *Rank, gens int64) {
				// Deposit a local work unit that, when consumed,
				// sends the next generation.
				r.AuxAdd(1)
				deposited[r.ID()].Add(1)
				_ = gens
			})
			const gens = 5
			u.Run(func(r *Rank) {
				gen := int64(0)
				r.Epoch(func(ep *Epoch) {
					mt.SendTo(r, (r.ID()+1)%r.N(), gen)
					for {
						// Consume all local deposits.
						for deposited[r.ID()].Load() > 0 {
							deposited[r.ID()].Add(-1)
							ep.AuxAdd(-1)
							consumed.Add(1)
							gen++
							if gen < gens {
								mt.SendTo(r, (r.ID()+1)%r.N(), gen)
							}
						}
						if ep.TryFinish() {
							return
						}
					}
				})
			})
			want := int64(3 * gens)
			if got := consumed.Load(); got != want {
				t.Fatalf("consumed=%d want %d", got, want)
			}
		})
	}
}

func TestFourCounterUsesControlMessages(t *testing.T) {
	u := NewUniverse(Config{Ranks: 2, ThreadsPerRank: 1, Detector: DetectorFourCounter})
	mt := Register(u, "m", func(r *Rank, m int64) {})
	u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {
			mt.SendTo(r, 1-r.ID(), 1)
		})
	})
	if u.Stats.CtrlMsgs() == 0 || u.Stats.TDWaves() < 2 {
		t.Fatalf("four-counter detector should exchange control messages over >=2 waves; ctrl=%d waves=%d",
			u.Stats.CtrlMsgs(), u.Stats.TDWaves())
	}
}

func TestTypeStats(t *testing.T) {
	u := NewUniverse(Config{Ranks: 2, ThreadsPerRank: 1, CoalesceSize: 4})
	a := Register(u, "alpha", func(r *Rank, m int64) {})
	b := Register(u, "beta", func(r *Rank, m int32) {})
	u.Run(func(r *Rank) {
		r.Epoch(func(ep *Epoch) {
			if r.ID() == 0 {
				for i := 0; i < 30; i++ {
					a.SendTo(r, 1, int64(i))
				}
				for i := 0; i < 7; i++ {
					b.SendTo(r, 1, int32(i))
				}
			}
		})
	})
	ts := u.TypeStats()
	if len(ts) != 2 {
		t.Fatalf("%d type stats", len(ts))
	}
	if ts[0].Name != "alpha" || ts[0].Sent != 30 || ts[0].Handled != 30 || ts[0].Size != 8 {
		t.Fatalf("alpha: %+v", ts[0])
	}
	if ts[1].Name != "beta" || ts[1].Sent != 7 || ts[1].Handled != 7 || ts[1].Size != 4 {
		t.Fatalf("beta: %+v", ts[1])
	}
	if ts[0].Envelopes != 8 { // ceil(30/4)
		t.Fatalf("alpha envelopes: %d", ts[0].Envelopes)
	}
}

func TestBarrierAndCollectives(t *testing.T) {
	u := NewUniverse(Config{Ranks: 5, ThreadsPerRank: 0})
	u.Run(func(r *Rank) {
		sum := r.AllReduceSum(int64(r.ID()))
		if sum != 0+1+2+3+4 {
			t.Errorf("sum=%d", sum)
		}
		min := r.AllReduceMin(int64(10 - r.ID()))
		if min != 6 {
			t.Errorf("min=%d", min)
		}
		max := r.AllReduceMax(int64(r.ID() * 2))
		if max != 8 {
			t.Errorf("max=%d", max)
		}
		if !r.AllReduceOr(r.ID() == 3) {
			t.Error("or should be true")
		}
		if r.AllReduceOr(false) {
			t.Error("or should be false")
		}
		g := r.AllGatherInt64(int64(r.ID() * r.ID()))
		for i, v := range g {
			if v != int64(i*i) {
				t.Errorf("gather[%d]=%d", i, v)
			}
		}
	})
}

func TestRunTwicePanics(t *testing.T) {
	u := NewUniverse(Config{Ranks: 1})
	u.Run(func(r *Rank) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on second Run")
		}
	}()
	u.Run(func(r *Rank) {})
}

func TestRegisterAfterRunPanics(t *testing.T) {
	u := NewUniverse(Config{Ranks: 1})
	u.Run(func(r *Rank) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering after Run")
		}
	}()
	Register(u, "late", func(r *Rank, m int64) {})
}

// TestDelayInjection verifies termination detection never fires early when
// handlers stall at adversarial points: each handler yields the scheduler a
// pseudo-random number of times before and after sending follow-ups, pulling
// the counters through every interleaving class. The invariant stays exact:
// handled == sent, and each epoch's cascade is complete at epoch exit.
func TestDelayInjection(t *testing.T) {
	for _, det := range []DetectorKind{DetectorAtomic, DetectorFourCounter} {
		t.Run(det.String(), func(t *testing.T) {
			u := NewUniverse(Config{Ranks: 3, ThreadsPerRank: 2, Detector: det, CoalesceSize: 4})
			var handled atomic.Int64
			var mt *MsgType[uint64]
			mt = Register(u, "slow", func(r *Rank, x uint64) {
				x = x*6364136223846793005 + 1442695040888963407
				for i := uint64(0); i < x%7; i++ {
					runtime.Gosched()
				}
				handled.Add(1)
				if x%3 == 0 {
					mt.SendTo(r, int(x>>32)%r.N(), x)
					for i := uint64(0); i < x%5; i++ {
						runtime.Gosched()
					}
					if x%9 == 0 {
						mt.SendTo(r, int(x>>16)%r.N(), x+1)
					}
				}
			})
			u.Run(func(r *Rank) {
				for e := 0; e < 3; e++ {
					before := u.Stats.MsgsSent()
					_ = before
					r.Epoch(func(ep *Epoch) {
						for i := 0; i < 40; i++ {
							mt.SendTo(r, i%r.N(), uint64(r.ID()*1000+i+e*7))
						}
					})
					// Epoch guarantee: all sent messages handled.
					r.Barrier()
					if got, want := handled.Load(), u.Stats.MsgsSent(); got != want {
						t.Errorf("epoch %d: handled=%d sent=%d", e, got, want)
					}
					r.Barrier()
				}
			})
		})
	}
}

// TestStressDiffusion is a randomized termination-detection stress test:
// every handled message forwards to (id*7+3)%N with probability depending on
// a deterministic counter, creating irregular bursts. The invariant is
// exact: messages handled == messages sent, and the epoch returns.
func TestStressDiffusion(t *testing.T) {
	for _, det := range []DetectorKind{DetectorAtomic, DetectorFourCounter} {
		t.Run(det.String(), func(t *testing.T) {
			u := NewUniverse(Config{Ranks: 4, ThreadsPerRank: 3, Detector: det, CoalesceSize: 8})
			var handled atomic.Int64
			var mt *MsgType[uint64]
			mt = Register(u, "diff", func(r *Rank, x uint64) {
				handled.Add(1)
				x = x*6364136223846793005 + 1442695040888963407
				// Forward with ~1/2 probability, occasionally twice;
				// expected offspring ≈ 0.56 keeps the cascade
				// subcritical so it dies out quickly.
				if x>>63 != 0 {
					mt.SendTo(r, int(x>>32)%r.N(), x)
				}
				if x&15 == 0 {
					mt.SendTo(r, int(x>>16)%r.N(), x+1)
				}
			})
			u.Run(func(r *Rank) {
				r.Epoch(func(ep *Epoch) {
					for i := 0; i < 64; i++ {
						mt.SendTo(r, i%r.N(), uint64(r.ID()*1000+i))
					}
				})
			})
			if got, want := handled.Load(), u.Stats.MsgsSent(); got != want {
				t.Fatalf("handled=%d sent=%d", got, want)
			}
		})
	}
}
