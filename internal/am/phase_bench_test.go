package am

import (
	"testing"

	"declpat/internal/obs"
)

// BenchmarkPhaseScope measures the phase-timer hot path — open a scope,
// close it — under both gates. CI gates allocs/op at zero for both: with
// timing off the scope must compile down to a nil check (no clock read),
// and with timing on it must stay allocation-free (two clock reads and a
// sharded histogram bump). A nonzero allocs/op here means every epoch of
// every kernel started paying the allocator.
func BenchmarkPhaseScope(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		timing bool
	}{{"off", false}, {"on", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			u := NewUniverse(Config{Ranks: 1, Timing: cfg.timing})
			b.ReportAllocs()
			b.ResetTimer()
			err := u.Run(func(r *Rank) {
				for i := 0; i < b.N; i++ {
					ph := r.Phase(obs.PhaseKernel)
					ph.End()
				}
			})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
