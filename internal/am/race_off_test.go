//go:build !race

package am

// raceTimingScale is 1 without the race detector; see race_on_test.go.
const raceTimingScale = 1
