package am

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc64"
	"math"
	"math/bits"
	"reflect"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Wire codecs.
//
// A Codec[T] turns a coalesced batch []T into wire bytes and back. Message
// types that ship through the wire transport (WithWire / WithCodec /
// WithGobTransport) encode every envelope with their registered codec, seal
// it with a CRC-64 checksum, account the true serialized size in
// Stats.WireBytes, and decode on arrival.
//
// Two codecs are bundled:
//
//   - FixedCodec: a zero-reflection fixed word-schema encoding for
//     pointer-free payload types (the vertex/distance/component structs every
//     bundled algorithm ships). The schema — the flattened sequence of
//     primitive lanes of T — is computed once at construction with
//     reflection; encoding and decoding then run over a precomputed offset
//     table with no reflection, no type metadata on the wire, and no
//     allocation (buffers come from pools).
//   - GobCodec: the encoding/gob fallback. It handles any gob-encodable T
//     (including reference types FixedCodec rejects) at the cost of
//     reflection and a full type descriptor retransmitted per envelope.
//
// WithWire auto-selects: FixedCodec when T qualifies, GobCodec otherwise.

// Codec serializes batches of one message type for the wire transport.
// Implementations must be safe for concurrent use: one codec instance
// serves every rank and handler thread of the universe.
//
// Append appends the encoded batch to dst and returns the extended slice;
// an error marks T unencodable (a programmer error — the transport panics,
// since retransmitting an unencodable batch could never succeed).
//
// Decode parses b into dst (reusing its capacity; dst may be nil) and
// returns the decoded batch. Decode must treat b as untrusted input: on
// malformed bytes it returns an error and the transport routes the envelope
// through the corruption→retransmit path instead of crashing the rank.
type Codec[T any] interface {
	// Name identifies the codec in diagnostics ("fixed", "gob", ...).
	Name() string
	Append(dst []byte, batch []T) ([]byte, error)
	Decode(dst []T, b []byte) ([]T, error)
}

// crcTable is the checksum polynomial for wire payloads.
var crcTable = crc64.MakeTable(crc64.ECMA)

// crc64Sum computes the wire checksum of an encoded batch.
func crc64Sum(b []byte) uint64 { return crc64.Checksum(b, crcTable) }

// encBuf is a pooled wire-encode buffer plus the delivery refcount of the
// envelope(s) currently sharing it (a duplicated envelope is pushed twice
// from one buffer).
type encBuf struct {
	b    []byte
	refs atomic.Int32
}

// encBufPool recycles wire-encode buffers across envelopes. Ownership rule:
// the sender owns the buffer from encode until the last push; each delivered
// (or discarded) copy releases one reference, and whoever drops it to zero
// returns the buffer. An envelope abandoned inside a queue (recovery DropAll,
// post-run Close) simply leaks its buffer to the GC — never double-release.
var encBufPool = sync.Pool{New: func() any { return &encBuf{b: make([]byte, 0, 1024)} }}

// wirePayload is the wire form of an envelope of a codec-equipped message
// type: the encoded batch plus a checksum computed over the clean bytes at
// the sender. eb, when non-nil, is the pooled buffer backing b.
type wirePayload struct {
	b   []byte
	sum uint64
	eb  *encBuf
}

// release returns one delivery reference; the last reference recycles the
// pooled buffer. Safe (and a no-op) on unpooled payloads.
func (wp wirePayload) release() {
	if wp.eb != nil && wp.eb.refs.Add(-1) == 0 {
		wp.eb.b = wp.b[:0]
		encBufPool.Put(wp.eb)
	}
}

// --- fixed word-schema codec ---------------------------------------------

// The fixed codec's wire format (version 1):
//
//	envelope := version(1 byte = 0x01) uvarint(count) message*
//	message  := bitmap( ceil(lanes/8) bytes ) word*
//
// The schema flattens T into an ordered list of primitive lanes (struct
// fields and array elements, recursively). Bit i of the bitmap is set when
// lane i is non-zero; bool lanes are carried entirely by their bit, every
// other set lane appends one uvarint word in lane order. Transforms make
// common values small: signed lanes are zigzag-encoded, float lanes are
// bit-reversed (as in gob, so round float values keep leading zeros).
// Zero-heavy payloads — the common case for coalesced algorithm traffic —
// cost one bitmap bit per absent field instead of gob's per-field tags and
// per-envelope type descriptor.

const fixedWireVersion = 1

// laneKind classifies one primitive lane of a fixed-layout schema.
type laneKind uint8

const (
	laneUint laneKind = iota
	laneInt
	laneBool
	laneFloat
)

// lane is one primitive slot of the flattened payload type.
type lane struct {
	off  uintptr
	size uint8 // 1, 2, 4, or 8 bytes
	kind laneKind
}

// appendLanes flattens t (rooted at byte offset base) into lanes. It reports
// false when t contains a non-fixed-layout component (pointer, slice, map,
// string, chan, func, interface, complex).
func appendLanes(lanes []lane, t reflect.Type, base uintptr) ([]lane, bool) {
	switch t.Kind() {
	case reflect.Bool:
		return append(lanes, lane{off: base, size: 1, kind: laneBool}), true
	case reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64, reflect.Int:
		return append(lanes, lane{off: base, size: uint8(t.Size()), kind: laneInt}), true
	case reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uint, reflect.Uintptr:
		return append(lanes, lane{off: base, size: uint8(t.Size()), kind: laneUint}), true
	case reflect.Float32, reflect.Float64:
		return append(lanes, lane{off: base, size: uint8(t.Size()), kind: laneFloat}), true
	case reflect.Array:
		elem := t.Elem()
		for i := 0; i < t.Len(); i++ {
			var ok bool
			lanes, ok = appendLanes(lanes, elem, base+uintptr(i)*elem.Size())
			if !ok {
				return nil, false
			}
		}
		return lanes, true
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			var ok bool
			lanes, ok = appendLanes(lanes, f.Type, base+f.Offset)
			if !ok {
				return nil, false
			}
		}
		return lanes, true
	default:
		return nil, false
	}
}

// fixedCodec is the zero-reflection word-schema codec for one payload type.
type fixedCodec[T any] struct {
	lanes  []lane
	bmLen  int // presence-bitmap bytes per message
	nWords int // numeric (non-bool) lanes: worst-case varint count
}

// FixedCodec constructs the fixed word-schema codec for T. It returns an
// error when T is not a fixed-layout type (contains pointers, slices, maps,
// strings, interfaces, chans, funcs, or complex numbers); such types must
// use GobCodec. All reflection happens here, once; the returned codec's
// encode and decode paths are reflection-free.
func FixedCodec[T any]() (Codec[T], error) {
	var zero T
	t := reflect.TypeOf(zero)
	if t == nil {
		return nil, fmt.Errorf("am: FixedCodec: interface payload type")
	}
	lanes, ok := appendLanes(nil, t, 0)
	if !ok {
		return nil, fmt.Errorf("am: FixedCodec: %v is not a fixed-layout type (reference or complex component)", t)
	}
	if len(lanes) == 0 {
		return nil, fmt.Errorf("am: FixedCodec: %v has no encodable fields", t)
	}
	c := &fixedCodec[T]{lanes: lanes, bmLen: (len(lanes) + 7) / 8}
	for _, ln := range lanes {
		if ln.kind != laneBool {
			c.nWords++
		}
	}
	return c, nil
}

// HasFixedLayout reports whether FixedCodec[T] would succeed — whether T is
// composed entirely of fixed-size primitives (bools, integers, floats,
// arrays and structs thereof).
func HasFixedLayout[T any]() bool {
	_, err := FixedCodec[T]()
	return err == nil
}

func (c *fixedCodec[T]) Name() string { return "fixed" }

// loadLane reads one lane of the message at base as its wire word.
func loadLane(base unsafe.Pointer, ln lane) uint64 {
	p := unsafe.Add(base, ln.off)
	var v uint64
	switch ln.size {
	case 1:
		v = uint64(*(*uint8)(p))
	case 2:
		v = uint64(*(*uint16)(p))
	case 4:
		v = uint64(*(*uint32)(p))
	default:
		v = *(*uint64)(p)
	}
	switch ln.kind {
	case laneInt:
		// Sign-extend from the lane width, then zigzag.
		shift := 64 - 8*uint(ln.size)
		s := int64(v<<shift) >> shift
		return uint64((s << 1) ^ (s >> 63))
	case laneFloat:
		if ln.size == 4 {
			v = math.Float64bits(float64(math.Float32frombits(uint32(v))))
		}
		return bits.ReverseBytes64(v)
	default:
		return v
	}
}

// storeLane writes one decoded wire word into the message at base. It
// reports false when the word does not fit the lane (corrupted input).
func storeLane(base unsafe.Pointer, ln lane, w uint64) bool {
	p := unsafe.Add(base, ln.off)
	switch ln.kind {
	case laneBool:
		*(*bool)(p) = w != 0
		return true
	case laneInt:
		s := int64(w>>1) ^ -int64(w&1)
		switch ln.size {
		case 1:
			if s < math.MinInt8 || s > math.MaxInt8 {
				return false
			}
			*(*int8)(p) = int8(s)
		case 2:
			if s < math.MinInt16 || s > math.MaxInt16 {
				return false
			}
			*(*int16)(p) = int16(s)
		case 4:
			if s < math.MinInt32 || s > math.MaxInt32 {
				return false
			}
			*(*int32)(p) = int32(s)
		default:
			*(*int64)(p) = s
		}
		return true
	case laneFloat:
		f := math.Float64frombits(bits.ReverseBytes64(w))
		if ln.size == 4 {
			*(*float32)(p) = float32(f)
		} else {
			*(*float64)(p) = f
		}
		return true
	default:
		switch ln.size {
		case 1:
			if w > math.MaxUint8 {
				return false
			}
			*(*uint8)(p) = uint8(w)
		case 2:
			if w > math.MaxUint16 {
				return false
			}
			*(*uint16)(p) = uint16(w)
		case 4:
			if w > math.MaxUint32 {
				return false
			}
			*(*uint32)(p) = uint32(w)
		default:
			*(*uint64)(p) = w
		}
		return true
	}
}

func (c *fixedCodec[T]) Append(dst []byte, batch []T) ([]byte, error) {
	dst = append(dst, fixedWireVersion)
	dst = binary.AppendUvarint(dst, uint64(len(batch)))
	for i := range batch {
		base := unsafe.Pointer(&batch[i])
		bmAt := len(dst)
		for j := 0; j < c.bmLen; j++ {
			dst = append(dst, 0)
		}
		for li := range c.lanes {
			ln := c.lanes[li]
			w := loadLane(base, ln)
			if w == 0 {
				continue
			}
			dst[bmAt+li>>3] |= 1 << (li & 7)
			if ln.kind != laneBool {
				dst = binary.AppendUvarint(dst, w)
			}
		}
	}
	return dst, nil
}

func (c *fixedCodec[T]) Decode(dst []T, b []byte) ([]T, error) {
	if len(b) < 1 || b[0] != fixedWireVersion {
		return nil, fmt.Errorf("am: fixed codec: bad wire version")
	}
	b = b[1:]
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("am: fixed codec: truncated count")
	}
	b = b[n:]
	// Every message costs at least its bitmap, so an absurd count is
	// detectable before allocating for it. (The first check also keeps the
	// multiplication below from overflowing.)
	if count > uint64(len(b)) || count*uint64(c.bmLen) > uint64(len(b)) {
		return nil, fmt.Errorf("am: fixed codec: count %d exceeds payload", count)
	}
	dst = dst[:0]
	if cap(dst) < int(count) {
		dst = make([]T, 0, count)
	}
	for i := uint64(0); i < count; i++ {
		if len(b) < c.bmLen {
			return nil, fmt.Errorf("am: fixed codec: truncated bitmap at message %d", i)
		}
		bm := b[:c.bmLen]
		b = b[c.bmLen:]
		var m T
		base := unsafe.Pointer(&m)
		for li := range c.lanes {
			if bm[li>>3]&(1<<(li&7)) == 0 {
				continue
			}
			ln := c.lanes[li]
			w := uint64(1) // bool lanes carry their value in the bit itself
			if ln.kind != laneBool {
				var n int
				w, n = binary.Uvarint(b)
				if n <= 0 {
					return nil, fmt.Errorf("am: fixed codec: truncated word at message %d lane %d", i, li)
				}
				if w == 0 {
					return nil, fmt.Errorf("am: fixed codec: explicit zero word at message %d lane %d", i, li)
				}
				b = b[n:]
			}
			if !storeLane(base, ln, w) {
				return nil, fmt.Errorf("am: fixed codec: word overflows lane %d at message %d", li, i)
			}
		}
		dst = append(dst, m)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("am: fixed codec: %d trailing bytes", len(b))
	}
	return dst, nil
}

// --- gob fallback codec ----------------------------------------------------

// gobCodec wraps encoding/gob as a Codec. It is the registered fallback:
// reflective, allocation-heavy, and it retransmits the full type descriptor
// with every envelope, but it accepts any gob-encodable payload type.
type gobCodec[T any] struct{}

// GobCodec returns the encoding/gob fallback codec for T. Payload type T
// must be gob-encodable (exported fields).
func GobCodec[T any]() Codec[T] { return gobCodec[T]{} }

func (gobCodec[T]) Name() string { return "gob" }

func (gobCodec[T]) Append(dst []byte, batch []T) ([]byte, error) {
	buf := bytes.NewBuffer(dst)
	if err := gob.NewEncoder(buf).Encode(batch); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (gobCodec[T]) Decode(dst []T, b []byte) ([]T, error) {
	// gob omits zero-valued fields on the wire and leaves the corresponding
	// destination memory untouched on decode, so a recycled batch's stale
	// elements must be zeroed before gob writes into them.
	clear(dst[:cap(dst)])
	decoded := dst[:0]
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&decoded); err != nil {
		return nil, err
	}
	return decoded, nil
}
