package mp

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"time"

	"declpat/internal/am"
	"declpat/internal/harness"
	"declpat/internal/obs"
)

// Coordinator is the launcher-side control-plane server for one fleet
// attempt: it accepts one connection per worker, runs the hello/welcome
// handshake and the data-plane address exchange, then serves control rounds
// — barriers (plain and checkpoint-commit votes), all-gathers, detector
// waves — one at a time. SPMD lockstep guarantees each worker has at most
// one outstanding collective, and the fleet at most one open round; anything
// else is a protocol violation that aborts the attempt.
//
// The coordinator is also the fleet's recovery authority: it records every
// served gather in its log, advances the committed restart point when a
// commit vote completes, and on any abort (fault report, dead connection,
// timed-out round, goodbye) trims the log to the committed prefix so the
// next attempt replays exactly what the committed checkpoint observed.
type coordinator struct {
	ln   net.Listener
	spec coordSpec

	events chan coordEvent
	conns  []*wconn

	// Round/commit state, owned by the event loop.
	round     *round
	committed int64
	commitLen int
	log       [][]int64
	armKill   bool

	joined    int
	addrs     [][]string
	addrsIn   int
	addrsDone bool

	results   map[int][]int64
	resultsIn int
	complete  []bool // workers that shipped all results (fResultDone)
	departed  int    // worker that said goodbye, -1 otherwise

	// Fleet timeline state: trace records streamed from workers, already
	// aligned onto this process's timebase (TS += the batch's offset, W
	// stamped), plus each worker's last clock estimate for the merged meta.
	traceRecs []obs.Record
	clockErr  []int64 // per worker; -1 = no estimate reported yet
	straggler *stragglerTracker
}

// coordSpec configures one attempt.
type coordSpec struct {
	Workers int
	Ranks   int
	RunID   uint64
	JobJSON []byte
	CkptDir string
	// RootSeed derives each worker's fault seed (harness.WorkerSeed).
	RootSeed uint64
	// Committed / Log carry the restart state into this attempt: the last
	// committed epoch (-1 = none) and the gather log's committed prefix.
	Committed int64
	Log       [][]int64
	// Kill is the seeded kill schedule; armed only when ArmKill (attempt 0).
	Kill    *KillSpec
	ArmKill bool
	// OnKill delivers entry/term kill triggers to the launcher (which owns
	// the worker processes). Must not block.
	OnKill func(worker int, mode string)
	// OnStraggler delivers per-epoch imbalance summaries as the streamed
	// phase data completes each epoch. Called from the event loop — must not
	// block. Nil disables.
	OnStraggler func(StragglerStat)
	// RoundTimeout bounds every control round (and the join/addr phases): a
	// round that cannot complete — a worker wedged, a one-way partition
	// swallowing its frames — aborts the attempt instead of hanging the
	// fleet.
	RoundTimeout time.Duration
	// Liveness is the per-connection read deadline; coordinator heartbeats
	// feed the workers' deadlines at Liveness/4 intervals.
	Liveness time.Duration
	Logf     func(format string, args ...any)
}

// round is the single open collective round.
type round struct {
	kind    byte // fBarrier, fGather, or fWaveStart
	tag     int64
	seq     uint64
	entered []bool
	count   int
	vals    [][]int64 // per-worker gather slices
	wave    am.WaveSample
	starter int // wave: the worker that started it
	opened  time.Time
}

type coordEvent struct {
	worker int
	kind   byte
	body   []byte
	conn   net.Conn // fHello only
	err    error    // evtDown only
	down   bool
}

// wconn is one worker's connection from the coordinator's side.
type wconn struct {
	conn  net.Conn
	alive bool
}

// attemptOutcome is what one coordinator run reports back to the launcher.
type attemptOutcome struct {
	ok    bool
	err   error
	clean bool // a worker departed via goodbye (not a crash)
	// committed / log are the restart state for the next attempt.
	committed int64
	log       [][]int64
	results   map[int][]int64
	// trace is the attempt's merged, offset-corrected record stream (empty
	// when the job streams no traces); clockErr the largest error bound any
	// worker reported.
	trace    []obs.Record
	clockErr int64
}

func newCoordinator(spec coordSpec) (*coordinator, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("mp: coordinator listen: %w", err)
	}
	if spec.RoundTimeout <= 0 {
		spec.RoundTimeout = 30 * time.Second
	}
	if spec.Liveness <= 0 {
		spec.Liveness = 10 * time.Second
	}
	if spec.Logf == nil {
		spec.Logf = func(string, ...any) {}
	}
	c := &coordinator{
		ln:        ln,
		spec:      spec,
		events:    make(chan coordEvent, 64),
		conns:     make([]*wconn, spec.Workers),
		committed: spec.Committed,
		commitLen: len(spec.Log),
		log:       append([][]int64(nil), spec.Log...),
		armKill:   spec.ArmKill && spec.Kill != nil,
		addrs:     make([][]string, spec.Workers),
		results:   map[int][]int64{},
		complete:  make([]bool, spec.Workers),
		departed:  -1,
		clockErr:  make([]int64, spec.Workers),
		straggler: newStragglerTracker(spec.Ranks),
	}
	for i := range c.clockErr {
		c.clockErr[i] = -1
	}
	go c.acceptLoop()
	return c, nil
}

func (c *coordinator) addr() string { return c.ln.Addr().String() }

// acceptLoop admits connections and forwards their hellos to the event
// loop. Connections beyond the worker count (or with bad hellos) are
// dropped; the join-phase timer catches a fleet that never fills up.
func (c *coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			conn.SetReadDeadline(time.Now().Add(c.spec.RoundTimeout))
			kind, body, err := readFrame(conn)
			if err != nil || kind != fHello {
				conn.Close()
				return
			}
			h, err := decodeHello(body)
			if err != nil {
				writeFrame(conn, fAbort, abortMsg{Reason: err.Error()}.encode())
				conn.Close()
				return
			}
			conn.SetReadDeadline(time.Time{})
			c.events <- coordEvent{worker: h.Worker, kind: fHello, conn: conn}
		}(conn)
	}
}

// readerLoop pumps one admitted worker's frames into the event loop.
func (c *coordinator) readerLoop(worker int, conn net.Conn) {
	for {
		conn.SetReadDeadline(time.Now().Add(c.spec.Liveness))
		kind, body, err := readFrame(conn)
		if err != nil {
			c.events <- coordEvent{worker: worker, down: true, err: err}
			return
		}
		if kind == fHeartbeat {
			continue
		}
		if kind == fClockPing {
			// Answer inline rather than through the event loop: the pong's
			// usefulness is its tight RTT, and writeFrame issues exactly one
			// conn.Write per frame, so this write cannot interleave with the
			// event loop's (net.Conn serializes concurrent writes).
			if m, err := decodeClock(body); err == nil {
				conn.SetWriteDeadline(time.Now().Add(c.spec.Liveness))
				writeFrame(conn, fClockPong, clockMsg{T1: m.T1, Remote: obs.Now()}.encode())
			}
			continue
		}
		c.events <- coordEvent{worker: worker, kind: kind, body: body}
	}
}

// run drives one attempt to its outcome. It always closes the listener and
// every connection before returning.
func (c *coordinator) run() attemptOutcome {
	defer c.ln.Close()
	defer func() {
		for _, wc := range c.conns {
			if wc != nil {
				wc.conn.Close()
			}
		}
	}()

	hb := time.NewTicker(c.spec.Liveness / 4)
	defer hb.Stop()
	phase := time.NewTimer(c.spec.RoundTimeout) // join + addr-exchange budget
	defer phase.Stop()

	for {
		select {
		case ev := <-c.events:
			if out, done := c.handle(ev); done {
				return out
			}
		case <-hb.C:
			for _, wc := range c.conns {
				if wc != nil && wc.alive {
					c.send(wc, fHeartbeat, nil)
				}
			}
			if c.round != nil && time.Since(c.round.opened) > c.spec.RoundTimeout {
				return c.abortFleet(false, fmt.Errorf(
					"mp: %s round timed out after %v (%d of %d workers entered)",
					kindName(c.round.kind), c.spec.RoundTimeout, c.round.count, c.spec.Workers))
			}
		case <-phase.C:
			if !c.addrsDone {
				return c.abortFleet(false, fmt.Errorf(
					"mp: fleet never assembled: %d of %d workers joined, address exchange %v",
					c.joined, c.spec.Workers, c.addrsDone))
			}
		}
	}
}

func (c *coordinator) send(wc *wconn, kind byte, body []byte) {
	wc.conn.SetWriteDeadline(time.Now().Add(c.spec.Liveness))
	if err := writeFrame(wc.conn, kind, body); err != nil {
		// The reader will surface the dead connection; just stop writing.
		wc.alive = false
	}
}

func (c *coordinator) broadcast(kind byte, body []byte) {
	for _, wc := range c.conns {
		if wc != nil && wc.alive {
			c.send(wc, kind, body)
		}
	}
}

// handle processes one event; done=true ends the attempt with out.
func (c *coordinator) handle(ev coordEvent) (out attemptOutcome, done bool) {
	if ev.down {
		return c.workerDown(ev)
	}
	switch ev.kind {
	case fHello:
		c.admit(ev)
	case fAddrSet:
		return c.addrSet(ev)
	case fBarrier:
		return c.barrierEntry(ev)
	case fGather:
		return c.gatherEntry(ev)
	case fWaveStart:
		return c.waveStart(ev)
	case fWaveReply:
		return c.waveReply(ev)
	case fFinish:
		c.broadcast(fFinish, nil)
	case fFault:
		f, err := decodeFault(ev.body)
		if err != nil {
			return c.abortFleet(false, err), true
		}
		c.spec.Logf("mp: worker %d reported fault: %v", ev.worker, &f)
		return c.abortFleet(false, fmt.Errorf("mp: worker %d fault: %w", ev.worker, &f)), true
	case fGoodbye:
		if wc := c.conns[ev.worker]; wc != nil && wc.alive {
			c.send(wc, fGoodbyeAck, nil)
		}
		c.departed = ev.worker
		c.spec.Logf("mp: worker %d departed cleanly (goodbye)", ev.worker)
		return c.abortFleet(true, fmt.Errorf("mp: worker %d departed cleanly", ev.worker)), true
	case fTrace:
		tm, err := decodeTrace(ev.body)
		if err != nil {
			return c.abortFleet(false, err), true
		}
		c.foldTrace(tm)
	case fResult:
		r, err := decodeResult(ev.body)
		if err != nil {
			return c.abortFleet(false, err), true
		}
		c.placeResult(r)
	case fResultDone:
		if !c.complete[ev.worker] {
			c.complete[ev.worker] = true
			c.resultsIn++
		}
		if c.resultsIn == c.spec.Workers {
			return attemptOutcome{
				ok: true, committed: c.committed, log: c.log[:c.commitLen], results: c.results,
				trace: c.traceRecs, clockErr: c.maxClockErr(),
			}, true
		}
	default:
		return c.abortFleet(false, fmt.Errorf(
			"%w: unexpected %s frame from worker %d", ErrDecode, kindName(ev.kind), ev.worker)), true
	}
	return attemptOutcome{}, false
}

// admit welcomes a worker connection.
func (c *coordinator) admit(ev coordEvent) {
	w := ev.worker
	if w < 0 || w >= c.spec.Workers || c.conns[w] != nil {
		writeFrame(ev.conn, fAbort, abortMsg{Reason: fmt.Sprintf("worker index %d invalid or already joined", w)}.encode())
		ev.conn.Close()
		return
	}
	lo, hi := rankRange(c.spec.Ranks, c.spec.Workers, w)
	wel := welcome{
		RunID:        c.spec.RunID,
		Workers:      c.spec.Workers,
		Ranks:        c.spec.Ranks,
		Lo:           lo,
		Hi:           hi,
		RestartEpoch: maxI64(c.committed, 0),
		HaveCkpt:     c.committed >= 0,
		Log:          c.log[:c.commitLen],
		CkptDir:      c.spec.CkptDir,
		WorkerSeed:   harness.WorkerSeed(c.spec.RootSeed, w, lo, hi),
		KillEpoch:    -1,
		KillMode:     killNone,
		JobJSON:      c.spec.JobJSON,
	}
	if c.armKill && c.spec.Kill.Mode == "body" && c.spec.Kill.Worker == w {
		wel.KillEpoch = c.spec.Kill.Epoch
		wel.KillMode = killBody
	}
	wc := &wconn{conn: ev.conn, alive: true}
	c.conns[w] = wc
	c.send(wc, fWelcome, wel.encode())
	c.joined++
	go c.readerLoop(w, ev.conn)
}

// addrSet collects one worker's data-plane listener addresses; when all are
// in, the concatenated table (worker order = global rank order, since rank
// ranges are contiguous and ascending) broadcasts to everyone.
func (c *coordinator) addrSet(ev coordEvent) (attemptOutcome, bool) {
	addrs, err := decodeStrings(ev.body)
	if err != nil {
		return c.abortFleet(false, err), true
	}
	lo, hi := rankRange(c.spec.Ranks, c.spec.Workers, ev.worker)
	if len(addrs) != hi-lo {
		return c.abortFleet(false, fmt.Errorf(
			"%w: worker %d registered %d addresses, hosts %d ranks", ErrDecode, ev.worker, len(addrs), hi-lo)), true
	}
	if c.addrs[ev.worker] == nil {
		c.addrsIn++
	}
	c.addrs[ev.worker] = addrs
	if c.addrsIn == c.spec.Workers {
		table := make([]string, 0, c.spec.Ranks)
		for w := 0; w < c.spec.Workers; w++ {
			table = append(table, c.addrs[w]...)
		}
		c.broadcast(fAddrTable, encodeStrings(table))
		c.addrsDone = true
	}
	return attemptOutcome{}, false
}

// openRound validates round-typing: joining an open round must match its
// kind and tag/seq; opening is only legal when no round is open.
func (c *coordinator) openRound(kind byte, tag int64, seq uint64, starter int) error {
	if c.round == nil {
		c.round = &round{
			kind: kind, tag: tag, seq: seq, starter: starter,
			entered: make([]bool, c.spec.Workers),
			vals:    make([][]int64, c.spec.Workers),
			opened:  time.Now(),
		}
		return nil
	}
	r := c.round
	if r.kind != kind || r.tag != tag || r.seq != seq {
		return fmt.Errorf("%w: %s(tag=%d,seq=%d) entry while %s(tag=%d,seq=%d) round is open",
			ErrDecode, kindName(kind), tag, seq, kindName(r.kind), r.tag, r.seq)
	}
	return nil
}

func (c *coordinator) enter(worker int) error {
	if c.round.entered[worker] {
		return fmt.Errorf("%w: worker %d entered a %s round twice", ErrDecode, worker, kindName(c.round.kind))
	}
	c.round.entered[worker] = true
	c.round.count++
	return nil
}

func (c *coordinator) barrierEntry(ev coordEvent) (attemptOutcome, bool) {
	tag, err := decodeTag(ev.body)
	if err != nil {
		return c.abortFleet(false, err), true
	}
	if err := c.openRound(fBarrier, tag, 0, ev.worker); err != nil {
		return c.abortFleet(false, err), true
	}
	if err := c.enter(ev.worker); err != nil {
		return c.abortFleet(false, err), true
	}
	if c.round.count < c.spec.Workers {
		return attemptOutcome{}, false
	}
	// Full entry. A tagged barrier is a checkpoint-commit vote: every
	// worker's slot file for this epoch is on disk.
	if tag >= 0 && c.armKill && c.spec.Kill.Mode == "entry" && tag == c.spec.Kill.Epoch {
		// Seeded kill between the commit vote and its ack: all workers
		// voted, but the commit is NOT recorded and the release is withheld
		// — the fleet must recover from the previous committed epoch. The
		// launcher SIGKILLs the target; the dead connection aborts the
		// attempt.
		c.armKill = false
		c.spec.Logf("mp: withholding commit of epoch %d; killing worker %d at vote", tag, c.spec.Kill.Worker)
		c.spec.OnKill(c.spec.Kill.Worker, "entry")
		return attemptOutcome{}, false
	}
	if tag >= 0 {
		c.committed = tag
		c.commitLen = len(c.log)
	}
	c.round = nil
	c.broadcast(fBarrierRelease, encodeTag(tag))
	if tag >= 0 && c.armKill && c.spec.Kill.Mode == "term" && tag == c.spec.Kill.Epoch {
		// Graceful-departure schedule: release normally, then SIGTERM the
		// target so it drains and says goodbye mid-epoch.
		c.armKill = false
		c.spec.Logf("mp: SIGTERMing worker %d after epoch %d commit", c.spec.Kill.Worker, tag)
		c.spec.OnKill(c.spec.Kill.Worker, "term")
	}
	return attemptOutcome{}, false
}

func (c *coordinator) gatherEntry(ev coordEvent) (attemptOutcome, bool) {
	g, err := decodeGather(ev.body)
	if err != nil {
		return c.abortFleet(false, err), true
	}
	if err := c.openRound(fGather, 0, g.Seq, ev.worker); err != nil {
		return c.abortFleet(false, err), true
	}
	if err := c.enter(ev.worker); err != nil {
		return c.abortFleet(false, err), true
	}
	lo, hi := rankRange(c.spec.Ranks, c.spec.Workers, ev.worker)
	if len(g.Vals) != hi-lo {
		return c.abortFleet(false, fmt.Errorf(
			"%w: worker %d gathered %d values, hosts %d ranks", ErrDecode, ev.worker, len(g.Vals), hi-lo)), true
	}
	c.round.vals[ev.worker] = g.Vals
	if c.round.count < c.spec.Workers {
		return attemptOutcome{}, false
	}
	full := make([]int64, 0, c.spec.Ranks)
	for w := 0; w < c.spec.Workers; w++ {
		full = append(full, c.round.vals[w]...)
	}
	c.log = append(c.log, full)
	seq := c.round.seq
	c.round = nil
	c.broadcast(fGatherRelease, gatherMsg{Seq: seq, Vals: full}.encode())
	return attemptOutcome{}, false
}

func (c *coordinator) waveStart(ev coordEvent) (attemptOutcome, bool) {
	s, err := decodeWave(ev.body)
	if err != nil {
		return c.abortFleet(false, err), true
	}
	if err := c.openRound(fWaveStart, 0, 0, ev.worker); err != nil {
		return c.abortFleet(false, err), true
	}
	if err := c.enter(ev.worker); err != nil {
		return c.abortFleet(false, err), true
	}
	c.round.wave = s
	if c.spec.Workers == 1 {
		c.finishWave()
		return attemptOutcome{}, false
	}
	for w, wc := range c.conns {
		if w != ev.worker && wc != nil && wc.alive {
			c.send(wc, fWavePoll, nil)
		}
	}
	return attemptOutcome{}, false
}

func (c *coordinator) waveReply(ev coordEvent) (attemptOutcome, bool) {
	rep, err := decodeWaveReply(ev.body)
	if err != nil {
		return c.abortFleet(false, err), true
	}
	if c.round == nil || c.round.kind != fWaveStart {
		// A reply can straggle in after the wave round aborted; ignore.
		return attemptOutcome{}, false
	}
	if err := c.enter(ev.worker); err != nil {
		return c.abortFleet(false, err), true
	}
	if rep.OK {
		c.round.wave.Add(rep.Sample)
	} else {
		// The worker is shutting down and cannot sample: poison the merged
		// sample so the detector's quiescence predicate cannot pass on this
		// wave (it retries; it must never falsely terminate).
		c.round.wave.Active++
	}
	if c.round.count == c.spec.Workers {
		c.finishWave()
	}
	return attemptOutcome{}, false
}

func (c *coordinator) finishWave() {
	starter := c.round.starter
	merged := c.round.wave
	c.round = nil
	if wc := c.conns[starter]; wc != nil && wc.alive {
		c.send(wc, fWaveResult, encodeWave(merged))
	}
}

// foldTrace ingests one streamed trace batch: records are shifted onto this
// process's timebase with the batch's offset, stamped with the worker index,
// and accumulated for the merged fleet timeline; kernel-phase spans feed the
// straggler tracker (durations, so offset-independent). A malformed JSON
// body degrades to a logged skip — a damaged observability batch must never
// take a healthy fleet down.
func (c *coordinator) foldTrace(tm traceMsg) {
	if tm.Worker < 0 || tm.Worker >= c.spec.Workers {
		c.spec.Logf("mp: trace batch from out-of-range worker %d; dropped", tm.Worker)
		return
	}
	var recs []obs.Record
	if err := json.Unmarshal(tm.Records, &recs); err != nil {
		c.spec.Logf("mp: trace batch from worker %d undecodable: %v", tm.Worker, err)
		return
	}
	c.clockErr[tm.Worker] = tm.ErrBound
	if c.spec.OnStraggler != nil {
		for _, st := range c.straggler.fold(recs) {
			c.spec.OnStraggler(st)
		}
	} else {
		c.straggler.fold(recs)
	}
	c.traceRecs = append(c.traceRecs, obs.AlignRecords(recs, tm.Worker, tm.Offset)...)
}

// maxClockErr returns the largest error bound any worker reported (0 when no
// worker streamed traces).
func (c *coordinator) maxClockErr() int64 {
	var worst int64
	for _, e := range c.clockErr {
		if e > worst {
			worst = e
		}
	}
	return worst
}

func (c *coordinator) placeResult(r resultMsg) {
	v := c.results[r.Vec]
	need := int(r.VertexLo) + len(r.Vals)
	if need > len(v) {
		grown := make([]int64, need)
		copy(grown, v)
		v = grown
	}
	copy(v[r.VertexLo:], r.Vals)
	c.results[r.Vec] = v
}

// workerDown handles a connection death. After a success or during an abort
// it is expected teardown; otherwise it is the fleet-fatal event (SIGKILL,
// crash, partition escalated by the liveness deadline).
func (c *coordinator) workerDown(ev coordEvent) (attemptOutcome, bool) {
	if wc := c.conns[ev.worker]; wc != nil {
		wc.alive = false
	}
	if c.complete[ev.worker] {
		// The worker shipped all its results and exited; its connection
		// closing is normal teardown, not a fleet failure. The attempt ends
		// when every worker's fResultDone is in.
		return attemptOutcome{}, false
	}
	c.spec.Logf("mp: worker %d control connection down: %v", ev.worker, ev.err)
	return c.abortFleet(false, fmt.Errorf("mp: worker %d connection lost: %w", ev.worker, ev.err)), true
}

// abortFleet broadcasts the abort, trims the gather log to the committed
// prefix, and returns the attempt's outcome.
func (c *coordinator) abortFleet(clean bool, err error) attemptOutcome {
	c.broadcast(fAbort, abortMsg{Clean: clean, Reason: err.Error()}.encode())
	// Drain trace batches already queued behind this event before the reply
	// channels close: aborted attempts are exactly the ones whose timeline
	// matters most. Bounded — only what is in the channel right now.
	for {
		select {
		case ev := <-c.events:
			if !ev.down && ev.kind == fTrace {
				if tm, err := decodeTrace(ev.body); err == nil {
					c.foldTrace(tm)
				}
			}
		default:
			return attemptOutcome{
				ok: false, err: err, clean: clean,
				committed: c.committed, log: c.log[:c.commitLen],
				trace: c.traceRecs, clockErr: c.maxClockErr(),
			}
		}
	}
}

// vecIndices returns the sorted result-vector indices present.
func vecIndices(results map[int][]int64) []int {
	idxs := make([]int, 0, len(results))
	for i := range results {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	return idxs
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
