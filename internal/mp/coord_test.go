package mp

// Control-plane fault interleavings (in-process, wire-level): a hand-rolled
// worker speaks raw frames at a real coordinator and misbehaves — duplicated
// and reordered round entries, lost frames, one-way partitions during
// detector quiescence. Every interleaving must end the attempt in a clean
// error outcome within the round timeout; a hung epoch is the one forbidden
// result, so every test runs under a hard deadline.

import (
	"net"
	"strings"
	"testing"
	"time"

	"declpat/internal/am"
)

// testCoord starts a coordinator with test-speed timers and returns it plus
// its outcome channel.
func testCoord(t *testing.T, workers, ranks int) (*coordinator, <-chan attemptOutcome) {
	t.Helper()
	c, err := newCoordinator(coordSpec{
		Workers:      workers,
		Ranks:        ranks,
		RunID:        1,
		JobJSON:      []byte(`{"algo":"bfs"}`),
		RoundTimeout: 300 * time.Millisecond,
		Liveness:     2 * time.Second,
		Committed:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	outc := make(chan attemptOutcome, 1)
	go func() { outc <- c.run() }()
	return c, outc
}

// fakeWorker is a raw-frame control client for protocol tests.
type fakeWorker struct {
	t    *testing.T
	conn net.Conn
	w    welcome
}

func dialFake(t *testing.T, addr string, worker int) *fakeWorker {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	f := &fakeWorker{t: t, conn: conn}
	f.send(fHello, hello{Worker: worker}.encode())
	kind, body := f.recv(fWelcome)
	_ = kind
	w, err := decodeWelcome(body)
	if err != nil {
		t.Fatal(err)
	}
	f.w = w
	return f
}

func (f *fakeWorker) send(kind byte, body []byte) {
	f.t.Helper()
	if err := writeFrame(f.conn, kind, body); err != nil {
		f.t.Fatalf("send %s: %v", kindName(kind), err)
	}
}

// recv reads frames (skipping heartbeats) until want arrives or 2s passes.
func (f *fakeWorker) recv(want byte) (byte, []byte) {
	f.t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		f.conn.SetReadDeadline(deadline)
		kind, body, err := readFrame(f.conn)
		if err != nil {
			f.t.Fatalf("waiting for %s: %v", kindName(want), err)
		}
		if kind == fHeartbeat {
			continue
		}
		if kind != want {
			f.t.Fatalf("got %s frame, want %s", kindName(kind), kindName(want))
		}
		return kind, body
	}
}

// registerAddrs completes the address-exchange phase for every fake worker
// so the join-phase watchdog is satisfied before the test misbehaves.
func registerAddrs(t *testing.T, fws ...*fakeWorker) {
	t.Helper()
	for _, f := range fws {
		addrs := make([]string, f.w.Hi-f.w.Lo)
		for i := range addrs {
			addrs[i] = "stub"
		}
		f.send(fAddrSet, encodeStrings(addrs))
	}
	for _, f := range fws {
		f.recv(fAddrTable)
	}
}

// waitOutcome asserts the attempt ends (no hung epoch) with a failure.
func waitOutcome(t *testing.T, outc <-chan attemptOutcome, wantSubstr string) attemptOutcome {
	t.Helper()
	select {
	case out := <-outc:
		if out.ok {
			t.Fatalf("attempt succeeded, want failure containing %q", wantSubstr)
		}
		if out.err == nil || !strings.Contains(out.err.Error(), wantSubstr) {
			t.Fatalf("attempt error = %v, want substring %q", out.err, wantSubstr)
		}
		return out
	case <-time.After(5 * time.Second):
		t.Fatal("attempt hung: no outcome within 5s")
		return attemptOutcome{}
	}
}

func TestCoordDuplicateBarrierEntryAborts(t *testing.T) {
	c, outc := testCoord(t, 2, 4)
	f0 := dialFake(t, c.addr(), 0)
	f1 := dialFake(t, c.addr(), 1)
	registerAddrs(t, f0, f1)

	// A duplicated barrier-entry frame (retransmission bug, confused worker)
	// is a protocol violation, not a hang.
	f0.send(fBarrier, encodeTag(-1))
	f0.send(fBarrier, encodeTag(-1))
	waitOutcome(t, outc, "entered a barrier round twice")
	f1.recv(fAbort)
}

func TestCoordLostBarrierFrameTimesOut(t *testing.T) {
	c, outc := testCoord(t, 2, 4)
	f0 := dialFake(t, c.addr(), 0)
	f1 := dialFake(t, c.addr(), 1)
	registerAddrs(t, f0, f1)

	// Worker 1's barrier entry is "lost": it never arrives. The round timer
	// must end the attempt; worker 0 must see the abort, not wait forever.
	f0.send(fBarrier, encodeTag(0))
	waitOutcome(t, outc, "round timed out")
	f0.recv(fAbort)
	_ = f1
}

func TestCoordReorderedRoundsAbort(t *testing.T) {
	c, outc := testCoord(t, 2, 4)
	f0 := dialFake(t, c.addr(), 0)
	f1 := dialFake(t, c.addr(), 1)
	registerAddrs(t, f0, f1)

	// Reordered frames: worker 1 joins the open barrier round with a gather
	// entry. SPMD lockstep makes this impossible in a correct fleet, so the
	// coordinator treats it as protocol damage.
	f0.send(fBarrier, encodeTag(2))
	f1.send(fGather, gatherMsg{Seq: 0, Vals: []int64{1, 1}}.encode())
	waitOutcome(t, outc, "round is open")
}

func TestCoordMismatchedBarrierTagsAbort(t *testing.T) {
	c, outc := testCoord(t, 2, 4)
	f0 := dialFake(t, c.addr(), 0)
	f1 := dialFake(t, c.addr(), 1)
	registerAddrs(t, f0, f1)

	// Divergent epoch tags on the same vote round: the fleet is no longer
	// in lockstep (e.g. a worker replayed a stale frame).
	f0.send(fBarrier, encodeTag(3))
	f1.send(fBarrier, encodeTag(4))
	waitOutcome(t, outc, "round is open")
}

func TestCoordOneWayPartitionDuringWave(t *testing.T) {
	c, outc := testCoord(t, 2, 4)
	f0 := dialFake(t, c.addr(), 0)
	f1 := dialFake(t, c.addr(), 1)
	registerAddrs(t, f0, f1)

	// One-way partition during detector quiescence: the wave starter's
	// frames reach the coordinator, the poll reaches worker 1, but worker
	// 1's reply path is dead (it stays silent). The wave round must time
	// out; quiescence must never be declared from a partial sample.
	f0.send(fWaveStart, encodeWave(am.WaveSample{Sent: 5, Recv: 5}))
	f1.recv(fWavePoll)
	waitOutcome(t, outc, "round timed out")
	f0.recv(fAbort)
}

func TestCoordCommitVoteAdvancesOnlyOnFullEntry(t *testing.T) {
	c, outc := testCoord(t, 2, 4)
	f0 := dialFake(t, c.addr(), 0)
	f1 := dialFake(t, c.addr(), 1)
	registerAddrs(t, f0, f1)

	// Epoch 0 commit vote completes: both slot files are (notionally) on
	// disk, so the release must carry the tag and the outcome must record
	// the commit even though the attempt later dies.
	f0.send(fBarrier, encodeTag(0))
	f1.send(fBarrier, encodeTag(0))
	if _, body := f0.recv(fBarrierRelease); mustTag(t, body) != 0 {
		t.Fatal("release tag != 0")
	}
	f1.recv(fBarrierRelease)

	// Next epoch's vote never completes (worker 1 dies mid-vote): the
	// commit must stay at epoch 0.
	f0.send(fBarrier, encodeTag(1))
	f1.conn.Close()
	out := waitOutcome(t, outc, "connection lost")
	if out.committed != 0 {
		t.Fatalf("committed = %d after torn vote, want 0", out.committed)
	}
}

func mustTag(t *testing.T, body []byte) int64 {
	t.Helper()
	tag, err := decodeTag(body)
	if err != nil {
		t.Fatal(err)
	}
	return tag
}
