package mp

import "sync"

// Clock alignment. Every process stamps trace events with its own monotonic
// clock (obs.Now: nanoseconds since process start), so spans from different
// workers of one fleet are not directly comparable — each worker's zero is
// its own spawn instant. The estimator below measures, per worker, the
// offset that maps worker timestamps onto the coordinator's timebase, using
// the classic midpoint-of-RTT exchange (Cristian's algorithm):
//
//	worker sends  T1 = obs.Now()            (fClockPing)
//	coordinator replies (T1, Tc)            (fClockPong, Tc = its obs.Now())
//	worker receives at T2 = obs.Now()
//
// Assuming the pong was generated halfway through the round trip,
//
//	offset = Tc - (T1+T2)/2        (coordinator ≈ worker + offset)
//	error  ≤ (T2-T1)/2             (the request/reply asymmetry bound)
//
// A burst of pings runs at Dial (the hello/welcome exchange) and every
// heartbeat interval thereafter doubles as a refinement ping, so the
// estimate tightens over the run and tracks clock drift. Samples with
// smaller RTT carry tighter bounds; older samples age (monotonic clocks of
// distinct processes drift apart at up to ~drastically 200 ppm), so a fresh
// slightly-wider sample eventually beats a stale tight one.
type offsetEstimator struct {
	mu sync.Mutex
	// now returns the local monotonic clock (obs.Now in production;
	// injectable for tests).
	now func() int64

	valid    bool
	offset   int64 // remote ≈ local + offset
	errBound int64 // half the RTT of the accepted sample
	at       int64 // local time the accepted sample was taken
	samples  int
}

// driftPPM is the assumed worst-case relative drift between two monotonic
// clocks, in parts per million. The accepted sample's error bound inflates
// at this rate, so a stale tight sample eventually loses to a fresh one.
const driftPPM = 200

func newOffsetEstimator(now func() int64) *offsetEstimator {
	return &offsetEstimator{now: now}
}

// aged returns the accepted sample's error bound inflated by drift since it
// was taken. Callers hold mu.
func (e *offsetEstimator) aged(nowTS int64) int64 {
	if !e.valid {
		return 0
	}
	elapsed := nowTS - e.at
	if elapsed < 0 {
		elapsed = 0
	}
	return e.errBound + elapsed*driftPPM/1_000_000
}

// sample folds one ping/pong exchange into the estimate: t1 is the local
// send time, tRemote the remote clock reading echoed in the pong, t2 the
// local receive time. Exchanges observed out of order (t2 < t1) are
// discarded.
func (e *offsetEstimator) sample(t1, tRemote, t2 int64) {
	if t2 < t1 {
		return
	}
	off := tRemote - (t1+t2)/2
	bound := (t2 - t1) / 2
	e.mu.Lock()
	defer e.mu.Unlock()
	e.samples++
	if !e.valid || bound <= e.aged(t2) {
		e.valid = true
		e.offset = off
		e.errBound = bound
		e.at = t2
	}
}

// estimate returns the current offset (remote ≈ local + offset) and its
// drift-inflated error bound. ok is false before the first sample.
func (e *offsetEstimator) estimate() (offset, errBound int64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.valid {
		return 0, 0, false
	}
	return e.offset, e.aged(e.now()), true
}

// sampleCount returns how many exchanges have been folded in.
func (e *offsetEstimator) sampleCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.samples
}
