package mp

import (
	"encoding/json"
	"fmt"
	"time"
)

// JobSpec describes the algorithm run a launched fleet executes. Every
// worker receives the same spec (inside its welcome frame) and builds the
// same workload from it, so the fleet needs no shared filesystem for inputs
// — only the checkpoint directory is shared. The zero value of each optional
// field selects a sensible default via normalize.
type JobSpec struct {
	// Algo selects the kernel: "bfs", "sssp", or "cc".
	Algo string `json:"algo"`
	// Scale / EdgeFactor / Seed / WMin / WMax parameterize the RMAT workload
	// (2^Scale vertices, EdgeFactor edges per vertex, weights in
	// [WMin, WMax]).
	Scale      int    `json:"scale"`
	EdgeFactor int    `json:"edge_factor"`
	Seed       uint64 `json:"seed"`
	WMin int64 `json:"wmin,omitempty"`
	WMax int64 `json:"wmax,omitempty"`
	// Ranks is the global rank count, split contiguously over the workers;
	// Threads is handler threads per rank; Coalesce the coalescing factor
	// (0 = universe default).
	Ranks    int `json:"ranks"`
	Threads  int `json:"threads"`
	Coalesce int `json:"coalesce,omitempty"`
	// Source seeds bfs/sssp; Delta is the sssp bucket width.
	Source uint32 `json:"source,omitempty"`
	Delta  int64  `json:"delta,omitempty"`
	// Network selects the data-plane socket family inside each worker:
	// "tcp" (default) or "unix". The control plane is always TCP.
	Network string `json:"network,omitempty"`
	// Drop/Dup/Delay/Corrupt are per-worker transport fault rates; each
	// worker's fault plan is seeded with harness.WorkerSeed(root, idx, lo,
	// hi), so the schedule is deterministic per worker and survives
	// respawns.
	Drop    float64 `json:"drop,omitempty"`
	Dup     float64 `json:"dup,omitempty"`
	Delay   float64 `json:"delay,omitempty"`
	Corrupt float64 `json:"corrupt,omitempty"`
	// Data-plane failure-machinery timings (0 = package defaults tuned for
	// tests; production fleets should raise them).
	HeartbeatMS     int `json:"heartbeat_ms,omitempty"`
	LivenessMS      int `json:"liveness_ms,omitempty"`
	ReconnectBaseMS int `json:"reconnect_base_ms,omitempty"`
	ReconnectMaxMS  int `json:"reconnect_max_ms,omitempty"`
	TickIntervalUS  int `json:"tick_interval_us,omitempty"`
	// TraceDir, when set, makes each worker capture a timed trace and write
	// it as JSONL to TraceDir/worker-<idx>.trace.jsonl before exiting
	// (declpat-trace -phases consumes it).
	TraceDir string `json:"trace_dir,omitempty"`
	// TraceCap bounds the trace ring (total events; 0 = 1<<18).
	TraceCap int `json:"trace_cap,omitempty"`
	// FlightDir, when set, points each worker's always-on flight recorder at
	// FlightDir/flight-<idx>.dpfr — the crash-surviving black box that
	// declpat-trace -postmortem renders. Launch defaults it to the checkpoint
	// directory, so every launched fleet leaves dumps without opting in.
	FlightDir string `json:"flight_dir,omitempty"`
}

// Normalize fills defaults and validates the spec.
func (j *JobSpec) Normalize() error {
	switch j.Algo {
	case "bfs", "sssp", "cc":
	default:
		return fmt.Errorf("mp: unknown algorithm %q (want bfs, sssp, or cc)", j.Algo)
	}
	if j.Scale <= 0 {
		j.Scale = 8
	}
	if j.EdgeFactor <= 0 {
		j.EdgeFactor = 8
	}
	if j.WMax <= 0 {
		j.WMin, j.WMax = 1, 16
	}
	if j.Ranks <= 0 {
		j.Ranks = 4
	}
	if j.Threads <= 0 {
		j.Threads = 2
	}
	if j.Algo == "sssp" && j.Delta <= 0 {
		j.Delta = 8
	}
	switch j.Network {
	case "":
		j.Network = "tcp"
	case "tcp", "unix":
	default:
		return fmt.Errorf("mp: unknown data-plane network %q (want tcp or unix)", j.Network)
	}
	if j.TraceCap <= 0 {
		j.TraceCap = 1 << 18
	}
	return nil
}

// sockTimings converts the spec's millisecond knobs into durations,
// defaulting to the chaos harness's test-speed settings: a launched fleet is
// expected to notice a killed worker in tens of milliseconds, not seconds.
func (j *JobSpec) sockTimings() (heartbeat, liveness, reconnBase, reconnMax, tick time.Duration) {
	ms := func(v, def int) time.Duration {
		if v <= 0 {
			return time.Duration(def) * time.Millisecond
		}
		return time.Duration(v) * time.Millisecond
	}
	heartbeat = ms(j.HeartbeatMS, 10)
	liveness = ms(j.LivenessMS, 100)
	reconnBase = ms(j.ReconnectBaseMS, 1)
	reconnMax = ms(j.ReconnectMaxMS, 10)
	if j.TickIntervalUS <= 0 {
		tick = 200 * time.Microsecond
	} else {
		tick = time.Duration(j.TickIntervalUS) * time.Microsecond
	}
	return
}

func (j *JobSpec) marshal() ([]byte, error) { return json.Marshal(j) }

func unmarshalJob(b []byte) (JobSpec, error) {
	var j JobSpec
	if err := json.Unmarshal(b, &j); err != nil {
		return j, fmt.Errorf("%w: job spec: %v", ErrDecode, err)
	}
	if err := j.Normalize(); err != nil {
		return j, err
	}
	return j, nil
}

// rankRange returns the contiguous global rank range worker idx hosts when
// ranks are split over workers: [idx*ranks/workers, (idx+1)*ranks/workers).
func rankRange(ranks, workers, idx int) (lo, hi int) {
	return idx * ranks / workers, (idx + 1) * ranks / workers
}
