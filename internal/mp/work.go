package mp

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/gen"
	"declpat/internal/obs"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
)

// traceFlushInterval paces the worker's incremental trace stream to the
// coordinator. Small enough that the launcher's straggler view and the merged
// fleet timeline stay near-live; large enough that a batch amortizes the
// frame overhead.
const traceFlushInterval = 25 * time.Millisecond

// Environment variables the launcher sets on every spawned worker. A binary
// that wants to host ranks calls MaybeWorker early in main (or TestMain);
// when the variables are absent it is a no-op and the binary runs normally.
const (
	EnvAddr   = "DECLPAT_MP_ADDR"
	EnvWorker = "DECLPAT_MP_WORKER"
)

// MaybeWorker turns the current process into a rank host when the launcher's
// environment variables are set, and never returns in that case (it exits
// with RunWorker's code). This is the self-exec pattern: the launcher's
// default WorkerCommand is its own executable, so one binary is both
// launcher and worker.
func MaybeWorker() {
	addr := os.Getenv(EnvAddr)
	if addr == "" {
		return
	}
	worker, err := strconv.Atoi(os.Getenv(EnvWorker))
	if err != nil {
		fmt.Fprintf(os.Stderr, "mp worker: bad %s=%q: %v\n", EnvWorker, os.Getenv(EnvWorker), err)
		os.Exit(ExitUsage)
	}
	os.Exit(RunWorker(addr, worker))
}

// RunWorker is one rank host: dial the coordinator, receive the job and rank
// range in the welcome, build the workload and a universe whose global
// control operations (barriers, gathers, termination waves, recovery fences)
// ride the control connection, run the unmodified algorithm kernel, and ship
// the local result shards back. The return value is the process exit code
// (see the Exit* constants); in particular ErrPeerClosed and ErrDecode map
// to distinct codes so the launcher can log *why* a worker died.
func RunWorker(addr string, worker int) int {
	cl, err := Dial(addr, worker)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mp worker %d: dial %s: %v\n", worker, addr, err)
		return exitForErr(err, ExitFatal)
	}
	defer cl.Close()
	w := cl.Welcome()
	job, err := unmarshalJob(w.JobJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mp worker %d: %v\n", worker, err)
		return exitForErr(err, ExitFatal)
	}

	n, edges := gen.RMAT(job.Scale, job.EdgeFactor, gen.Weights{Min: job.WMin, Max: job.WMax}, job.Seed)
	hb, live, rbase, rmax, tick := job.sockTimings()
	opts := []am.Option{
		am.WithThreads(job.Threads),
		am.WithCoalesce(job.Coalesce),
		am.WithDetector(am.DetectorFourCounter),
		am.WithControlPlane(cl.MPConfig()),
		am.WithTransport(am.SockTransport(am.SockOptions{
			Network:       job.Network,
			Heartbeat:     hb,
			Liveness:      live,
			ReconnectBase: rbase,
			ReconnectMax:  rmax,
			TickInterval:  tick,
		})),
	}
	if job.Drop > 0 || job.Dup > 0 || job.Delay > 0 || job.Corrupt > 0 {
		opts = append(opts, am.WithFaultPlan(&am.FaultPlan{
			Seed:    w.WorkerSeed,
			Drop:    job.Drop,
			Dup:     job.Dup,
			Delay:   job.Delay,
			Corrupt: job.Corrupt,
		}))
	}
	if job.TraceDir != "" {
		opts = append(opts, am.WithTiming(), am.WithTraceCapacity(job.TraceCap))
	}
	// The flight recorder is built before the universe (am.New wires it into
	// the trace path), but its counter sampler needs the universe — close over
	// a variable assigned right after construction. am.New happens before any
	// rank goroutine starts, so EpochCommit always sees the assignment.
	var flight *obs.FlightRecorder
	var uRef *am.Universe
	if job.FlightDir != "" {
		if err := os.MkdirAll(job.FlightDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "mp worker %d: flight dir: %v\n", worker, err)
		} else {
			flight = obs.NewFlightRecorder(obs.FlightConfig{
				Path:   filepath.Join(job.FlightDir, fmt.Sprintf("flight-%d.dpfr", worker)),
				Label:  fmt.Sprintf("mp-worker-%d", worker),
				Worker: worker,
				RankLo: w.Lo,
				RankHi: w.Hi,
				RunID:  w.RunID,
				Counters: func() map[string]int64 {
					if uRef == nil {
						return nil
					}
					return uRef.CounterSeries()
				},
			})
			opts = append(opts, am.WithFlightRecorder(flight))
		}
	}
	u := am.New(job.Ranks, opts...)
	uRef = u
	hooks := u.ControlHooks()
	cl.SetHooks(hooks)

	// Stream trace batches and clock estimates while the run is live: the
	// coordinator merges the batches into the fleet timeline and feeds the
	// straggler detector, and the flight recorder's header carries the latest
	// offset so postmortem timestamps line up with the fleet trace. A worker
	// killed mid-run has still shipped everything up to its last flush.
	stopFlush := make(chan struct{})
	flushDone := make(chan struct{})
	var cursors []int64
	flushTrace := func(final bool) {
		off, errB, okClk := cl.ClockEstimate()
		if flight != nil && okClk {
			flight.SetClock(off, errB)
		}
		if job.TraceDir == "" {
			return
		}
		var recs []obs.Record
		recs, cursors = u.ExportTraceSince(cursors)
		if len(recs) == 0 && !final {
			return
		}
		js, err := json.Marshal(recs)
		if err != nil {
			return
		}
		cl.SendTrace(traceMsg{
			Worker: worker, Lo: w.Lo, Hi: w.Hi,
			Offset: off, ErrBound: errB, Final: final, Records: js,
		})
	}
	go func() {
		defer close(flushDone)
		tick := time.NewTicker(traceFlushInterval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				flushTrace(false)
			case <-stopFlush:
				flushTrace(true)
				return
			}
		}
	}()
	drainFlush := func() { close(stopFlush); <-flushDone }

	d := distgraph.NewBlockDist(n, u.Ranks())
	g := distgraph.Build(d, edges, distgraph.Options{Symmetrize: job.Algo == "cc"})
	lm := pmap.NewLockMap(d, 1)
	eng := pattern.NewEngine(u, g, lm, pattern.DefaultPlanOptions())
	// The data plane crosses kernel sockets between co-hosted ranks too, so
	// the engine's message type needs a wire codec; the zero-reflection
	// fixed codec is its natural one.
	eng.MsgType().WithWire()

	// Graceful departure: SIGTERM drains via the goodbye/ack handshake
	// instead of dying into the heartbeat fault path. The coordinator acks,
	// counts a clean departure, and aborts the fleet (SPMD cannot continue
	// short-handed); our own copy of that abort unblocks the parked ranks.
	var departing atomic.Bool
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		if _, ok := <-sigs; !ok {
			return
		}
		departing.Store(true)
		if err := cl.Goodbye(2 * time.Second); err != nil {
			// No ack — the coordinator is gone too; unblock locally.
			hooks.RemoteAbort(fmt.Errorf("mp: departing on SIGTERM: %w", err), true)
		}
	}()

	var body func(r *am.Rank)
	var vecs []*pmap.VertexWord
	switch job.Algo {
	case "bfs":
		b := algorithms.NewBFS(eng)
		body = func(r *am.Rank) { b.Run(r, distgraph.Vertex(job.Source)) }
		vecs = []*pmap.VertexWord{b.Level}
	case "sssp":
		s := algorithms.NewSSSP(eng)
		s.UseDelta(u, job.Delta)
		body = func(r *am.Rank) { s.Run(r, distgraph.Vertex(job.Source)) }
		vecs = []*pmap.VertexWord{s.Dist}
	case "cc":
		// RunResolve, not Run: the final pointer-chase rewrite is "not a
		// graph computation" (§II-B) and local rewrites would bake
		// worker-local views into the shipped labels. The launcher resolves
		// components from the full gathered (pnt, chg) tables instead.
		c := algorithms.NewCC(eng, lm)
		body = func(r *am.Rank) { c.RunResolve(r) }
		vecs = []*pmap.VertexWord{c.Pnt, c.Chg}
	}

	if err := u.Run(body); err != nil {
		drainFlush()
		if departing.Load() {
			// A SIGTERM goodbye drain is a *clean* exit: it leaves the same
			// trace artifact a completed run does (this path used to skip
			// it), plus a flight dump naming the departure.
			writeArtifacts(u, cl, job, worker, flight, "sigterm departure")
			return ExitClean
		}
		writeArtifacts(u, cl, job, worker, flight, "run failed: "+err.Error())
		fmt.Fprintf(os.Stderr, "mp worker %d: run failed: %v\n", worker, err)
		if cerr := cl.Err(); cerr != nil {
			return exitForErr(cerr, ExitRestart)
		}
		return ExitRestart
	}

	// Final drain before fResultDone: the coordinator snapshots the merged
	// fleet trace into the attempt outcome when results complete.
	drainFlush()
	writeArtifacts(u, cl, job, worker, flight, "run complete")
	if err := shipResults(cl, d, vecs, int(w.Lo), int(w.Hi)); err != nil {
		fmt.Fprintf(os.Stderr, "mp worker %d: shipping results: %v\n", worker, err)
		return exitForErr(err, ExitFatal)
	}
	return ExitClean
}

// writeArtifacts leaves the worker's on-disk observability record: the timed
// trace (when tracing is on) and a flight dump stamped with the final clock
// estimate. Called on every exit path — clean completion, SIGTERM departure,
// run failure — so the artifacts do not depend on a happy ending.
func writeArtifacts(u *am.Universe, cl *Client, job JobSpec, worker int, flight *obs.FlightRecorder, reason string) {
	if job.TraceDir != "" {
		if err := writeTrace(u, cl, job.TraceDir, worker); err != nil {
			fmt.Fprintf(os.Stderr, "mp worker %d: trace: %v\n", worker, err)
		}
	}
	if flight != nil {
		if off, errB, ok := cl.ClockEstimate(); ok {
			flight.SetClock(off, errB)
		}
		if err := flight.Persist(reason); err != nil {
			fmt.Fprintf(os.Stderr, "mp worker %d: flight dump: %v\n", worker, err)
		}
		// The terminal dump is written; seal so the teardown race (the
		// coordinator closing control connections reads as a fleet abort)
		// cannot overwrite it with a bogus reason.
		flight.Seal()
	}
}

// exitForErr maps the classified control-plane sentinels onto their distinct
// exit codes, falling back to def for everything else.
func exitForErr(err error, def int) int {
	switch {
	case errors.Is(err, ErrPeerClosed):
		return ExitPeerClosed
	case errors.Is(err, ErrDecode):
		return ExitDecode
	}
	return def
}

// writeTrace exports the worker's trace with the fleet meta fields stamped —
// worker index, hosted rank range, and the clock estimate — so a directory of
// per-worker files merges onto the launcher timebase offline
// (obs.ReadTraceDir / declpat-trace -phases DIR).
func writeTrace(u *am.Universe, cl *Client, dir string, worker int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	meta, recs := u.ExportTrace(fmt.Sprintf("mp-worker-%d", worker))
	meta.Worker = worker
	meta.RankLo, meta.RankHi = cl.Welcome().Lo, cl.Welcome().Hi
	if off, errB, ok := cl.ClockEstimate(); ok {
		meta.ClockOffsetNS, meta.ClockErrNS = off, errB
	}
	f, err := os.Create(filepath.Join(dir, fmt.Sprintf("worker-%d.trace.jsonl", worker)))
	if err != nil {
		return err
	}
	if err := obs.WriteJSONL(f, meta, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// shipResults sends every result vector's local shards to the coordinator,
// one fResult frame per (vector, hosted rank), then fResultDone. Shard
// placement is by global vertex id, so the coordinator reassembles the full
// vector without knowing the distribution.
func shipResults(cl *Client, d distgraph.BlockDist, vecs []*pmap.VertexWord, lo, hi int) error {
	for vi, vec := range vecs {
		for rank := lo; rank < hi; rank++ {
			vals, _ := vec.SnapshotRank(rank).([]int64)
			if len(vals) == 0 {
				continue
			}
			body := resultMsg{Vec: vi, VertexLo: uint64(d.Global(rank, 0)), Vals: vals}.encode()
			if err := cl.write(fResult, body); err != nil {
				return err
			}
		}
	}
	return cl.write(fResultDone, nil)
}
