package mp

// Clock-offset estimator tests: Cristian's midpoint-of-RTT estimate against
// fake skewed clocks, asymmetric network legs, and drift-aged sample
// replacement — all with an injected local clock, no real time involved.

import "testing"

// fakeClocks simulates one ping exchange: the local clock advances by the
// request leg, the remote (offset by trueOffset) stamps its reply, the local
// clock advances by the reply leg.
type fakeClocks struct {
	local      int64
	trueOffset int64 // remote = local + trueOffset
}

func (f *fakeClocks) exchange(e *offsetEstimator, reqLeg, repLeg int64) {
	t1 := f.local
	f.local += reqLeg
	remote := f.local + f.trueOffset
	f.local += repLeg
	e.sample(t1, remote, f.local)
}

func TestClockOffsetSymmetricExact(t *testing.T) {
	fc := &fakeClocks{local: 1_000_000, trueOffset: 5_000_000}
	e := newOffsetEstimator(func() int64 { return fc.local })
	fc.exchange(e, 40_000, 40_000) // symmetric 80µs RTT
	off, errB, ok := e.estimate()
	if !ok {
		t.Fatal("no estimate after a sample")
	}
	if off != fc.trueOffset {
		t.Fatalf("symmetric exchange: offset %d, want exactly %d", off, fc.trueOffset)
	}
	if want := int64(40_000); errB != want {
		t.Fatalf("error bound %d, want RTT/2 = %d", errB, want)
	}
}

func TestClockOffsetNegative(t *testing.T) {
	fc := &fakeClocks{local: 9_000_000, trueOffset: -3_000_000}
	e := newOffsetEstimator(func() int64 { return fc.local })
	fc.exchange(e, 10_000, 10_000)
	off, _, ok := e.estimate()
	if !ok || off != fc.trueOffset {
		t.Fatalf("negative offset: got %d (ok=%v), want %d", off, ok, fc.trueOffset)
	}
}

// TestClockOffsetAsymmetryBounded pins the estimator's error model: with
// asymmetric legs the midpoint estimate is wrong by (reply-request)/2, which
// is always within the reported RTT/2 bound.
func TestClockOffsetAsymmetryBounded(t *testing.T) {
	for _, legs := range [][2]int64{{10_000, 90_000}, {90_000, 10_000}, {1_000, 200_000}} {
		fc := &fakeClocks{local: 1_000_000, trueOffset: 7_777_777}
		e := newOffsetEstimator(func() int64 { return fc.local })
		fc.exchange(e, legs[0], legs[1])
		off, errB, ok := e.estimate()
		if !ok {
			t.Fatal("no estimate")
		}
		gotErr := off - fc.trueOffset
		if gotErr < 0 {
			gotErr = -gotErr
		}
		if gotErr > errB {
			t.Fatalf("legs %v: estimate off by %dns, outside the reported ±%dns bound", legs, gotErr, errB)
		}
		if want := (legs[0] + legs[1]) / 2; errB != want {
			t.Fatalf("legs %v: error bound %d, want RTT/2 = %d", legs, errB, want)
		}
	}
}

// TestClockOffsetKeepsTightestSample pins min-RTT retention: a later, slower
// exchange must not displace an earlier tight one.
func TestClockOffsetKeepsTightestSample(t *testing.T) {
	fc := &fakeClocks{local: 1_000_000, trueOffset: 5_000_000}
	e := newOffsetEstimator(func() int64 { return fc.local })
	fc.exchange(e, 10_000, 10_000) // tight: ±10µs
	tightOff, _, _ := e.estimate()
	fc.exchange(e, 400_000, 100_000) // loose and asymmetric: ±250µs
	off, errB, _ := e.estimate()
	if off != tightOff {
		t.Fatalf("loose sample displaced the tight offset: %d -> %d", tightOff, off)
	}
	// The retained bound is the tight sample's ±10µs plus 200 ppm of drift
	// over the 500µs that elapsed during the loose exchange — nowhere near
	// the loose sample's ±250µs.
	if want := int64(10_000 + 500_000*driftPPM/1_000_000); errB != want {
		t.Fatalf("retained bound %d, want %d", errB, want)
	}
	if n := e.sampleCount(); n != 2 {
		t.Fatalf("sampleCount = %d, want 2", n)
	}
}

// TestClockOffsetDriftAgingAdmitsFresh pins the NTP-style aging: a retained
// bound inflates at driftPPM as it ages, so after enough elapsed time a
// moderately loose — but fresh — sample replaces it. This is what keeps
// heartbeat-refreshed estimates tracking real clock drift.
func TestClockOffsetDriftAgingAdmitsFresh(t *testing.T) {
	fc := &fakeClocks{local: 1_000_000, trueOffset: 5_000_000}
	e := newOffsetEstimator(func() int64 { return fc.local })
	fc.exchange(e, 10_000, 10_000) // ±10µs now

	// Immediately after, a ±1ms sample loses to ±10µs (plus a few hundred ns
	// of drift aging over the exchange itself).
	fc.exchange(e, 1_000_000, 1_000_000)
	_, errB, _ := e.estimate()
	if errB >= 1_000_000 {
		t.Fatalf("fresh loose sample accepted immediately: bound %d", errB)
	}

	// 100s later the old ±10µs has aged to ±(10µs + 100s·200ppm) = ±20.01ms;
	// the clocks have also drifted apart. The same ±1ms exchange now wins and
	// re-centers the estimate on the *current* offset.
	fc.local += 100_000_000_000
	fc.trueOffset += 2_000_000 // 2ms of accumulated drift
	fc.exchange(e, 1_000_000, 1_000_000)
	off, errB, _ := e.estimate()
	if errB != 1_000_000 {
		t.Fatalf("aged-out sample not replaced: bound %d, want 1000000", errB)
	}
	if off != fc.trueOffset {
		t.Fatalf("post-drift offset %d, want %d", off, fc.trueOffset)
	}
}

// TestClockOffsetAgedBoundReported pins that estimate() reflects aging even
// without new samples: the caller sees the bound the estimate deserves now,
// not the bound it had when measured.
func TestClockOffsetAgedBoundReported(t *testing.T) {
	fc := &fakeClocks{local: 1_000_000, trueOffset: 5_000_000}
	e := newOffsetEstimator(func() int64 { return fc.local })
	fc.exchange(e, 10_000, 10_000)
	fc.local += 1_000_000_000 // 1s idle: +200ppm·1s = +200µs
	_, errB, ok := e.estimate()
	if !ok {
		t.Fatal("no estimate")
	}
	if want := int64(10_000 + 200_000); errB != want {
		t.Fatalf("aged bound %d, want %d", errB, want)
	}
}

func TestClockOffsetRejectsGarbage(t *testing.T) {
	e := newOffsetEstimator(func() int64 { return 0 })
	if _, _, ok := e.estimate(); ok {
		t.Fatal("estimate ok before any sample")
	}
	e.sample(100, 50, 90) // t2 < t1: non-monotonic garbage
	if _, _, ok := e.estimate(); ok {
		t.Fatal("non-monotonic sample accepted")
	}
	if n := e.sampleCount(); n != 0 {
		t.Fatalf("sampleCount = %d after garbage, want 0", n)
	}
}
