// Package mp is the multi-process SPMD control plane: a launcher-side
// Coordinator serves barrier entry/exit, all-gather collectives,
// termination-detector waves, fault reports, and recovery coordination
// (checkpoint-commit votes, rollback fences) to worker-side Clients over
// versioned CRC-sealed wire frames, so a fleet of real OS processes — each
// hosting a contiguous slice of the global rank range via
// am.WithControlPlane — runs unmodified algorithm kernels with every global
// control operation carried on the wire.
//
// The package also owns the fleet lifecycle: Launch spawns N worker
// processes, wires their data-plane topology through the coordinator's
// address exchange, drives the run, and on worker death (heartbeat loss,
// fault report, seeded kill) respawns the fleet and restarts it from the
// last committed checkpoint, replaying committed collective results from the
// coordinator's gather log so the rerun is bit-identical to an undisturbed
// run. RunWorker is the matching worker-process entry point (reached via
// MaybeWorker self-exec or `declpat-worker -host`).
package mp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"declpat/internal/am"
	"declpat/internal/ckpt"
)

// Wire format: every frame is
//
//	u32 length | u8 kind | body | u64 crc
//
// with length covering kind+body+crc and crc = ckpt.Checksum(kind|body)
// (CRC-64/ECMA, the same integrity seal the checkpoint files use). The
// control plane is low-rate — a handful of frames per epoch — so frames
// favor explicitness over compactness; bodies are encoded with the ckpt
// package's deterministic little-endian primitives.

// protoMagic opens the hello body; a connection speaking anything else (a
// stray data-plane dial, an old binary) is rejected at the handshake.
const protoMagic = "DPCP"

// protoVersion is bumped on any incompatible frame change; coordinator and
// client must match exactly (a launched fleet runs one binary, so a mismatch
// means a stale worker from a previous build).
const protoVersion = 1

// maxFrame bounds a control frame. Gather releases carry one i64 per global
// rank and welcomes carry the committed collective log, both far below this.
const maxFrame = 1 << 26

// Frame kinds. Client→coordinator kinds and coordinator→client kinds share
// one numbering so a misrouted frame is unmistakable in errors.
const (
	fHello          byte = 1  // c→s: magic, version, worker index
	fWelcome        byte = 2  // s→c: fleet config, job, restart state
	fAddrSet        byte = 3  // c→s: data-plane listener addrs of local ranks
	fAddrTable      byte = 4  // s→c: full address table, indexed by global rank
	fBarrier        byte = 5  // c→s: barrier entry (tagged = commit vote)
	fBarrierRelease byte = 6  // s→c: barrier exit
	fGather         byte = 7  // c→s: local slice of an all-gather
	fGatherRelease  byte = 8  // s→c: full gathered vector
	fWaveStart      byte = 9  // c(rank-0 host)→s: detector wave, local sample
	fWavePoll       byte = 10 // s→c: probe a worker for its wave sample
	fWaveReply      byte = 11 // c→s: wave sample (or shutting-down marker)
	fWaveResult     byte = 12 // s→c(rank-0 host): merged global sample
	fFinish         byte = 13 // c→s then s→all: epoch quiesced globally
	fFault          byte = 14 // c→s: local rank fault; fleet must restart
	fAbort          byte = 15 // s→c: fleet is going down (clean flag + reason)
	fGoodbye        byte = 16 // c→s: graceful departure (SIGTERM drain)
	fGoodbyeAck     byte = 17 // s→c: departure acknowledged
	fResult         byte = 18 // c→s: one result vector shard
	fResultDone     byte = 19 // c→s: all result shards shipped
	fHeartbeat      byte = 20 // both: liveness keep-alive, no body
	fClockPing      byte = 21 // c→s: clock-offset probe (worker send time)
	fClockPong      byte = 22 // s→c: probe echo + coordinator clock reading
	fTrace          byte = 23 // c→s: bounded batch of trace records (JSON)
)

func kindName(k byte) string {
	names := map[byte]string{
		fHello: "hello", fWelcome: "welcome", fAddrSet: "addr-set",
		fAddrTable: "addr-table", fBarrier: "barrier", fBarrierRelease: "barrier-release",
		fGather: "gather", fGatherRelease: "gather-release", fWaveStart: "wave-start",
		fWavePoll: "wave-poll", fWaveReply: "wave-reply", fWaveResult: "wave-result",
		fFinish: "finish", fFault: "fault", fAbort: "abort", fGoodbye: "goodbye",
		fGoodbyeAck: "goodbye-ack", fResult: "result", fResultDone: "result-done",
		fHeartbeat: "heartbeat", fClockPing: "clock-ping", fClockPong: "clock-pong",
		fTrace: "trace",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("kind-%d", k)
}

// ErrPeerClosed reports a control connection that ended without protocol
// damage: EOF, a reset, or a closed socket. A worker that dies SIGKILL-style
// surfaces to its peers as this error.
var ErrPeerClosed = errors.New("mp: control peer closed connection")

// ErrDecode reports a control frame that arrived damaged: bad length, CRC
// mismatch, malformed body, or an unexpected kind. Distinct from
// ErrPeerClosed so process exit codes can tell a dead peer from protocol
// corruption (cmd/declpat-worker exits 4 vs 5).
var ErrDecode = errors.New("mp: control frame decode failure")

// writeFrame writes one frame. The caller serializes writers per connection.
func writeFrame(w io.Writer, kind byte, body []byte) error {
	payload := make([]byte, 0, 1+len(body)+8)
	payload = append(payload, kind)
	payload = append(payload, body...)
	crc := ckpt.Checksum(payload)
	buf := make([]byte, 0, 4+len(payload)+8)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)+8))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint64(buf, crc)
	if _, err := w.Write(buf); err != nil {
		return classifyIOErr(err)
	}
	return nil
}

// readFrame reads and verifies one frame.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, classifyIOErr(err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 9 || n > maxFrame {
		return 0, nil, fmt.Errorf("%w: frame length %d out of range", ErrDecode, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, classifyIOErr(err)
	}
	payload, crcB := buf[:n-8], buf[n-8:]
	if got, want := ckpt.Checksum(payload), binary.LittleEndian.Uint64(crcB); got != want {
		return 0, nil, fmt.Errorf("%w: %s frame checksum mismatch (got %016x want %016x)",
			ErrDecode, kindName(payload[0]), got, want)
	}
	return payload[0], payload[1:], nil
}

// classifyIOErr folds transport-level errors into the two sentinels: clean
// connection endings become ErrPeerClosed; anything else passes through.
func classifyIOErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || isConnReset(err) {
		return fmt.Errorf("%w: %v", ErrPeerClosed, err)
	}
	return err
}

func isConnReset(err error) bool {
	var oe *net.OpError
	if errors.As(err, &oe) {
		return true // read/write on a dead connection, whatever the syscall said
	}
	return false
}

// --- frame bodies ---

// hello is the client's opening frame.
type hello struct {
	Worker int
}

func (h hello) encode() []byte {
	var e ckpt.Enc
	e.String(protoMagic)
	e.U8(protoVersion)
	e.U32(uint32(h.Worker))
	return e.B
}

func decodeHello(b []byte) (hello, error) {
	d := ckpt.Dec{B: b}
	magic := d.String()
	ver := d.U8()
	h := hello{Worker: int(d.U32())}
	if err := d.Done(true); err != nil {
		return h, fmt.Errorf("%w: hello: %v", ErrDecode, err)
	}
	if magic != protoMagic {
		return h, fmt.Errorf("%w: hello magic %q, want %q", ErrDecode, magic, protoMagic)
	}
	if ver != protoVersion {
		return h, fmt.Errorf("%w: hello protocol version %d, want %d", ErrDecode, ver, protoVersion)
	}
	return h, nil
}

// Kill modes a welcome can arm on the target worker (client-side arming is
// only needed for the self-kill variant; entry/term kills are driven by the
// coordinator and launcher).
const (
	killNone byte = 0
	killBody byte = 1 // self-SIGKILL right after the armed epoch's commit vote releases
)

// welcome is the coordinator's reply to a hello: everything the worker needs
// to build its universe — fleet shape, restart state, the committed
// collective log, its derived fault seed, and an optionally armed kill.
type welcome struct {
	RunID        uint64
	Workers      int
	Ranks        int
	Lo, Hi       int
	RestartEpoch int64
	HaveCkpt     bool
	Log          [][]int64
	CkptDir      string
	WorkerSeed   uint64
	KillEpoch    int64 // meaningful when KillMode != killNone
	KillMode     byte
	JobJSON      []byte
}

func (w welcome) encode() []byte {
	var e ckpt.Enc
	e.U64(w.RunID)
	e.U32(uint32(w.Workers))
	e.U32(uint32(w.Ranks))
	e.U32(uint32(w.Lo))
	e.U32(uint32(w.Hi))
	e.I64(w.RestartEpoch)
	if w.HaveCkpt {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.U32(uint32(len(w.Log)))
	for _, v := range w.Log {
		e.I64Slice(v)
	}
	e.String(w.CkptDir)
	e.U64(w.WorkerSeed)
	e.I64(w.KillEpoch)
	e.U8(w.KillMode)
	e.Bytes(w.JobJSON)
	return e.B
}

func decodeWelcome(b []byte) (welcome, error) {
	d := ckpt.Dec{B: b}
	var w welcome
	w.RunID = d.U64()
	w.Workers = int(d.U32())
	w.Ranks = int(d.U32())
	w.Lo = int(d.U32())
	w.Hi = int(d.U32())
	w.RestartEpoch = d.I64()
	w.HaveCkpt = d.U8() == 1
	n := int(d.U32())
	if d.Err == nil && n > maxFrame/8 {
		return w, fmt.Errorf("%w: welcome log has %d entries", ErrDecode, n)
	}
	for i := 0; i < n && d.Err == nil; i++ {
		w.Log = append(w.Log, d.I64Slice())
	}
	w.CkptDir = d.String()
	w.WorkerSeed = d.U64()
	w.KillEpoch = d.I64()
	w.KillMode = d.U8()
	w.JobJSON = d.Bytes()
	if err := d.Done(true); err != nil {
		return w, fmt.Errorf("%w: welcome: %v", ErrDecode, err)
	}
	return w, nil
}

func encodeStrings(ss []string) []byte {
	var e ckpt.Enc
	e.U32(uint32(len(ss)))
	for _, s := range ss {
		e.String(s)
	}
	return e.B
}

func decodeStrings(b []byte) ([]string, error) {
	d := ckpt.Dec{B: b}
	n := int(d.U32())
	if d.Err == nil && n > maxFrame {
		return nil, fmt.Errorf("%w: string table has %d entries", ErrDecode, n)
	}
	out := make([]string, 0, n)
	for i := 0; i < n && d.Err == nil; i++ {
		out = append(out, d.String())
	}
	if err := d.Done(true); err != nil {
		return nil, fmt.Errorf("%w: string table: %v", ErrDecode, err)
	}
	return out, nil
}

func encodeTag(tag int64) []byte {
	var e ckpt.Enc
	e.I64(tag)
	return e.B
}

func decodeTag(b []byte) (int64, error) {
	d := ckpt.Dec{B: b}
	tag := d.I64()
	if err := d.Done(true); err != nil {
		return 0, fmt.Errorf("%w: barrier tag: %v", ErrDecode, err)
	}
	return tag, nil
}

// gatherMsg carries one direction of an all-gather round: the worker's local
// slice up, the full global vector down. Seq numbers the gathers of one
// attempt so a late release can never satisfy the wrong call.
type gatherMsg struct {
	Seq  uint64
	Vals []int64
}

func (g gatherMsg) encode() []byte {
	var e ckpt.Enc
	e.U64(g.Seq)
	e.I64Slice(g.Vals)
	return e.B
}

func decodeGather(b []byte) (gatherMsg, error) {
	d := ckpt.Dec{B: b}
	g := gatherMsg{Seq: d.U64(), Vals: d.I64Slice()}
	if err := d.Done(true); err != nil {
		return g, fmt.Errorf("%w: gather: %v", ErrDecode, err)
	}
	return g, nil
}

func encodeSample(e *ckpt.Enc, s am.WaveSample) {
	e.I64(s.Sent)
	e.I64(s.Recv)
	e.I64(s.Aux)
	e.I64(s.Rel)
	e.I64(int64(s.Active))
	e.I64(int64(s.Idle))
	e.I64(int64(s.Total))
}

func decodeSample(d *ckpt.Dec) am.WaveSample {
	return am.WaveSample{
		Sent: d.I64(), Recv: d.I64(), Aux: d.I64(), Rel: d.I64(),
		Active: int32(d.I64()), Idle: int32(d.I64()), Total: int32(d.I64()),
	}
}

func encodeWave(s am.WaveSample) []byte {
	var e ckpt.Enc
	encodeSample(&e, s)
	return e.B
}

func decodeWave(b []byte) (am.WaveSample, error) {
	d := ckpt.Dec{B: b}
	s := decodeSample(&d)
	if err := d.Done(true); err != nil {
		return s, fmt.Errorf("%w: wave sample: %v", ErrDecode, err)
	}
	return s, nil
}

// waveReply is a worker's answer to a wave poll; OK is false when the worker
// is shutting down and cannot sample (the coordinator treats that as
// non-quiescent, never as an error).
type waveReply struct {
	OK     bool
	Sample am.WaveSample
}

func (r waveReply) encode() []byte {
	var e ckpt.Enc
	if r.OK {
		e.U8(1)
	} else {
		e.U8(0)
	}
	encodeSample(&e, r.Sample)
	return e.B
}

func decodeWaveReply(b []byte) (waveReply, error) {
	d := ckpt.Dec{B: b}
	r := waveReply{OK: d.U8() == 1}
	r.Sample = decodeSample(&d)
	if err := d.Done(true); err != nil {
		return r, fmt.Errorf("%w: wave reply: %v", ErrDecode, err)
	}
	return r, nil
}

func encodeFault(f am.RankFault) []byte {
	var e ckpt.Enc
	e.I64(int64(f.Kind))
	e.I64(int64(f.Rank))
	e.I64(f.Epoch)
	e.String(f.Detail)
	return e.B
}

func decodeFault(b []byte) (am.RankFault, error) {
	d := ckpt.Dec{B: b}
	f := am.RankFault{
		Kind:  am.FaultKind(d.I64()),
		Rank:  int(d.I64()),
		Epoch: d.I64(),
	}
	f.Detail = d.String()
	if err := d.Done(true); err != nil {
		return f, fmt.Errorf("%w: fault report: %v", ErrDecode, err)
	}
	return f, nil
}

// abortMsg tells a worker the fleet is going down. Clean distinguishes a
// peer that drained and said goodbye (SIGTERM departure) from one that died.
type abortMsg struct {
	Clean  bool
	Reason string
}

func (a abortMsg) encode() []byte {
	var e ckpt.Enc
	if a.Clean {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.String(a.Reason)
	return e.B
}

func decodeAbort(b []byte) (abortMsg, error) {
	d := ckpt.Dec{B: b}
	a := abortMsg{Clean: d.U8() == 1}
	a.Reason = d.String()
	if err := d.Done(true); err != nil {
		return a, fmt.Errorf("%w: abort: %v", ErrDecode, err)
	}
	return a, nil
}

// clockPing carries the worker's local monotonic send time; the pong echoes
// it back together with the coordinator's clock reading so the worker can run
// the midpoint-of-RTT offset estimate (see clock.go). Both directions share
// one body shape — the pong simply fills Remote in.
type clockMsg struct {
	T1     int64 // worker's obs.Now() at ping send
	Remote int64 // coordinator's obs.Now() at pong send (0 in the ping)
}

func (m clockMsg) encode() []byte {
	var e ckpt.Enc
	e.I64(m.T1)
	e.I64(m.Remote)
	return e.B
}

func decodeClock(b []byte) (clockMsg, error) {
	d := ckpt.Dec{B: b}
	m := clockMsg{T1: d.I64(), Remote: d.I64()}
	if err := d.Done(true); err != nil {
		return m, fmt.Errorf("%w: clock: %v", ErrDecode, err)
	}
	return m, nil
}

// traceMsg streams one bounded batch of trace records from a worker to the
// coordinator for the merged fleet timeline. Records is the JSON encoding of
// []obs.Record (worker-local timestamps; the coordinator applies the clock
// offset when merging). Offset/ErrBound are the worker's current estimate at
// flush time so the merge uses the tightest bound available.
type traceMsg struct {
	Worker   int
	Lo, Hi   int
	Offset   int64
	ErrBound int64
	Final    bool // last batch of this worker's run (drain flush)
	Records  []byte
}

func (m traceMsg) encode() []byte {
	var e ckpt.Enc
	e.U32(uint32(m.Worker))
	e.U32(uint32(m.Lo))
	e.U32(uint32(m.Hi))
	e.I64(m.Offset)
	e.I64(m.ErrBound)
	if m.Final {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.Bytes(m.Records)
	return e.B
}

func decodeTrace(b []byte) (traceMsg, error) {
	d := ckpt.Dec{B: b}
	m := traceMsg{
		Worker: int(d.U32()),
		Lo:     int(d.U32()),
		Hi:     int(d.U32()),
	}
	m.Offset = d.I64()
	m.ErrBound = d.I64()
	m.Final = d.U8() == 1
	m.Records = d.Bytes()
	if err := d.Done(true); err != nil {
		return m, fmt.Errorf("%w: trace batch: %v", ErrDecode, err)
	}
	return m, nil
}

// resultMsg ships one result-vector shard: the values of one local rank of
// one output vector, placed at VertexLo in the global vector.
type resultMsg struct {
	Vec      int
	VertexLo uint64
	Vals     []int64
}

func (r resultMsg) encode() []byte {
	var e ckpt.Enc
	e.U32(uint32(r.Vec))
	e.U64(r.VertexLo)
	e.I64Slice(r.Vals)
	return e.B
}

func decodeResult(b []byte) (resultMsg, error) {
	d := ckpt.Dec{B: b}
	r := resultMsg{Vec: int(d.U32()), VertexLo: d.U64()}
	r.Vals = d.I64Slice()
	if err := d.Done(true); err != nil {
		return r, fmt.Errorf("%w: result shard: %v", ErrDecode, err)
	}
	return r, nil
}
