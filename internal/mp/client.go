package mp

import (
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"declpat/internal/am"
	"declpat/internal/obs"
)

// Client is the worker-side half of the control plane: it implements
// am.ControlPlane over one TCP connection to the coordinator. A reader
// goroutine dispatches coordinator frames (releases, polls, broadcasts,
// aborts); ops write their request under a connection-level mutex and park
// on a reply channel. Ops never time out on their own — a stuck round is the
// coordinator's to detect (round timers) and a dead coordinator surfaces as
// a read error — so the only client-side deadlines are socket-level.
type Client struct {
	conn   net.Conn
	w      welcome
	worker int

	heartbeat time.Duration
	liveness  time.Duration

	wmu       sync.Mutex
	lastWrite atomic.Int64 // monotonic-ish: time.Now().UnixNano()

	// hooks wiring. The client dials before the universe exists (the welcome
	// carries the universe's configuration), so coordinator traffic can
	// arrive before SetHooks: aborts and finishes latch and deliver on
	// SetHooks; wave polls answer "not ready" (ok=false).
	hmu        sync.Mutex
	hooks      am.ControlHooks
	hooksSet   bool
	pendFinish bool
	pendAbort  *abortMsg

	// Reply channels, one per op family. The SPMD run has at most one
	// outstanding op at a time, so capacity 1 never blocks the reader.
	addrCh chan []string
	barCh  chan int64
	gatCh  chan gatherMsg
	wavCh  chan am.WaveSample
	byeCh  chan struct{}

	// down is closed when the connection is unusable (reader exit or abort
	// frame); err latches why. Parked ops unblock on it.
	down     chan struct{}
	downOnce sync.Once
	emu      sync.Mutex
	err      error

	gatherSeq atomic.Uint64
	stopHB    chan struct{}
	killed    atomic.Bool

	// clk estimates the coordinator-clock offset from ping/pong exchanges: a
	// burst at Dial seeds it, and every idle-interval heartbeat doubles as a
	// refinement probe.
	clk *offsetEstimator
}

var _ am.ControlPlane = (*Client)(nil)

// clientHeartbeat / clientLiveness are the control-plane keep-alive timings.
// The liveness deadline is generous: control rounds park workers for entire
// epoch bodies, so only the heartbeat stream (not round latency) feeds it.
const (
	clientHeartbeat = 100 * time.Millisecond
	clientLiveness  = 10 * time.Second
)

// Dial connects to the coordinator, performs the hello/welcome handshake,
// and starts the reader and heartbeat goroutines. The returned client's
// Welcome carries everything needed to build the worker's universe; call
// SetHooks once the universe exists.
func Dial(addr string, worker int) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("mp: dialing coordinator %s: %w", addr, err)
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if err := writeFrame(conn, fHello, hello{Worker: worker}.encode()); err != nil {
		conn.Close()
		return nil, fmt.Errorf("mp: hello: %w", err)
	}
	kind, body, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("mp: reading welcome: %w", err)
	}
	if kind == fAbort {
		a, _ := decodeAbort(body)
		conn.Close()
		return nil, fmt.Errorf("mp: coordinator rejected worker %d: %s", worker, a.Reason)
	}
	if kind != fWelcome {
		conn.Close()
		return nil, fmt.Errorf("%w: expected welcome, got %s", ErrDecode, kindName(kind))
	}
	w, err := decodeWelcome(body)
	if err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	c := &Client{
		conn:      conn,
		w:         w,
		worker:    worker,
		heartbeat: clientHeartbeat,
		liveness:  clientLiveness,
		addrCh:    make(chan []string, 1),
		barCh:     make(chan int64, 1),
		gatCh:     make(chan gatherMsg, 1),
		wavCh:     make(chan am.WaveSample, 1),
		byeCh:     make(chan struct{}, 1),
		down:      make(chan struct{}),
		stopHB:    make(chan struct{}),
		clk:       newOffsetEstimator(obs.Now),
	}
	c.lastWrite.Store(time.Now().UnixNano())
	go c.readLoop()
	go c.heartbeatLoop()
	// Seed the clock-offset estimate with a small ping burst: pongs fold in
	// asynchronously via readLoop, and the min-RTT sample wins. Heartbeats
	// keep refining it for the rest of the run.
	for i := 0; i < 4; i++ {
		if c.sendPing() != nil {
			break
		}
	}
	return c, nil
}

// sendPing writes one clock probe stamped with the local monotonic clock.
func (c *Client) sendPing() error {
	return c.write(fClockPing, clockMsg{T1: obs.Now()}.encode())
}

// ClockEstimate returns the current coordinator-clock offset estimate
// (coordinator ≈ worker + offset) and its error bound; ok is false before the
// first pong.
func (c *Client) ClockEstimate() (offset, errBound int64, ok bool) {
	return c.clk.estimate()
}

// SendTrace ships one bounded batch of trace records to the coordinator for
// the merged fleet timeline. Best-effort: a failed write means the connection
// is down and the run is ending anyway.
func (c *Client) SendTrace(m traceMsg) error {
	return c.write(fTrace, m.encode())
}

// Welcome returns the coordinator's fleet configuration for this worker.
func (c *Client) Welcome() welcome { return c.w }

// MPConfig builds the am.MPConfig this worker's universe runs under.
func (c *Client) MPConfig() am.MPConfig {
	return am.MPConfig{
		Plane:          c,
		Lo:             c.w.Lo,
		Hi:             c.w.Hi,
		RunID:          c.w.RunID,
		RestartEpoch:   c.w.RestartEpoch,
		HaveCheckpoint: c.w.HaveCkpt,
		CollectiveLog:  c.w.Log,
		CheckpointDir:  c.w.CkptDir,
		WorkerIndex:    c.worker,
	}
}

// SetHooks installs the universe callbacks and delivers any coordinator
// traffic that arrived before the universe existed.
func (c *Client) SetHooks(h am.ControlHooks) {
	c.hmu.Lock()
	c.hooks = h
	c.hooksSet = true
	finish := c.pendFinish
	abort := c.pendAbort
	c.pendFinish = false
	c.pendAbort = nil
	c.hmu.Unlock()
	if finish && h.RemoteFinish != nil {
		h.RemoteFinish()
	}
	if abort != nil && h.RemoteAbort != nil {
		h.RemoteAbort(fmt.Errorf("mp: fleet aborting: %s", abort.Reason), abort.Clean)
	}
}

// Close tears the control connection down; pending ops unblock with
// ErrPeerClosed.
func (c *Client) Close() {
	close(c.stopHB)
	c.conn.Close()
}

// Err returns the latched connection error, if any.
func (c *Client) Err() error {
	c.emu.Lock()
	defer c.emu.Unlock()
	return c.err
}

func (c *Client) fail(err error) {
	c.emu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.emu.Unlock()
	c.downOnce.Do(func() { close(c.down) })
}

func (c *Client) write(kind byte, body []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.conn.SetWriteDeadline(time.Now().Add(c.liveness))
	err := writeFrame(c.conn, kind, body)
	c.lastWrite.Store(time.Now().UnixNano())
	if err != nil {
		c.fail(fmt.Errorf("mp: control write (%s): %w", kindName(kind), err))
	}
	return err
}

func (c *Client) heartbeatLoop() {
	t := time.NewTicker(c.heartbeat / 2)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if time.Now().UnixNano()-c.lastWrite.Load() >= int64(c.heartbeat) {
				// A clock ping serves double duty: it feeds the coordinator's
				// liveness deadline like a plain heartbeat, and its pong
				// refines the offset estimate across the run.
				if c.sendPing() != nil {
					return
				}
			}
		case <-c.stopHB:
			return
		case <-c.down:
			return
		}
	}
}

// readLoop dispatches coordinator frames until the connection dies.
func (c *Client) readLoop() {
	for {
		c.conn.SetReadDeadline(time.Now().Add(c.liveness))
		kind, body, err := readFrame(c.conn)
		if err != nil {
			err = fmt.Errorf("mp: control read: %w", err)
			c.fail(err)
			c.deliverAbort(abortMsg{Clean: false, Reason: err.Error()}, err)
			return
		}
		switch kind {
		case fHeartbeat:
		case fClockPong:
			m, err := decodeClock(body)
			if err != nil {
				c.protoFail(err)
				return
			}
			c.clk.sample(m.T1, m.Remote, obs.Now())
		case fAddrTable:
			table, err := decodeStrings(body)
			if err != nil {
				c.protoFail(err)
				return
			}
			c.addrCh <- table
		case fBarrierRelease:
			tag, err := decodeTag(body)
			if err != nil {
				c.protoFail(err)
				return
			}
			c.barCh <- tag
		case fGatherRelease:
			g, err := decodeGather(body)
			if err != nil {
				c.protoFail(err)
				return
			}
			c.gatCh <- g
		case fWaveResult:
			s, err := decodeWave(body)
			if err != nil {
				c.protoFail(err)
				return
			}
			c.wavCh <- s
		case fWavePoll:
			c.answerPoll()
		case fFinish:
			c.deliverFinish()
		case fGoodbyeAck:
			select {
			case c.byeCh <- struct{}{}:
			default:
			}
		case fAbort:
			a, err := decodeAbort(body)
			if err != nil {
				c.protoFail(err)
				return
			}
			err = fmt.Errorf("mp: fleet aborting: %s", a.Reason)
			c.fail(err)
			c.deliverAbort(a, err)
			// Keep reading: the goodbye ack can legitimately follow the
			// abort broadcast (a departing worker's goodbye aborts the rest
			// of the fleet, itself included).
		default:
			c.protoFail(fmt.Errorf("%w: unexpected %s frame from coordinator", ErrDecode, kindName(kind)))
			return
		}
	}
}

func (c *Client) protoFail(err error) {
	c.fail(err)
	c.deliverAbort(abortMsg{Clean: false, Reason: err.Error()}, err)
	c.conn.Close()
}

func (c *Client) deliverFinish() {
	c.hmu.Lock()
	if !c.hooksSet {
		c.pendFinish = true
		c.hmu.Unlock()
		return
	}
	h := c.hooks
	c.hmu.Unlock()
	if h.RemoteFinish != nil {
		h.RemoteFinish()
	}
}

func (c *Client) deliverAbort(a abortMsg, err error) {
	c.hmu.Lock()
	if !c.hooksSet {
		if c.pendAbort == nil {
			c.pendAbort = &a
		}
		c.hmu.Unlock()
		return
	}
	h := c.hooks
	c.hmu.Unlock()
	if h.RemoteAbort != nil {
		h.RemoteAbort(err, a.Clean)
	}
}

func (c *Client) answerPoll() {
	c.hmu.Lock()
	h := c.hooks
	set := c.hooksSet
	c.hmu.Unlock()
	rep := waveReply{}
	if set && h.SampleWave != nil {
		if s, ok := h.SampleWave(); ok {
			rep = waveReply{OK: true, Sample: s}
		}
	}
	c.write(fWaveReply, rep.encode())
}

// downErr is the error a parked op returns when the connection went down.
func (c *Client) downErr() error {
	if err := c.Err(); err != nil {
		return err
	}
	return fmt.Errorf("%w: control connection down", ErrPeerClosed)
}

// ExchangeAddrs implements am.ControlPlane.
func (c *Client) ExchangeAddrs(local []string) ([]string, error) {
	if err := c.write(fAddrSet, encodeStrings(local)); err != nil {
		return nil, err
	}
	select {
	case table := <-c.addrCh:
		return table, nil
	case <-c.down:
		return nil, c.downErr()
	}
}

// WireBarrier implements am.ControlPlane. A release of the epoch tagged by
// an armed body-kill triggers the seeded self-SIGKILL: the commit vote
// completed (the checkpoint is the restart point) and the epoch body is
// about to run — the harshest moment to die.
func (c *Client) WireBarrier(epoch int64) error {
	if err := c.write(fBarrier, encodeTag(epoch)); err != nil {
		return err
	}
	select {
	case tag := <-c.barCh:
		if tag != epoch {
			err := fmt.Errorf("%w: barrier release tagged %d, want %d", ErrDecode, tag, epoch)
			c.fail(err)
			return err
		}
		if c.w.KillMode == killBody && epoch == c.w.KillEpoch && c.killed.CompareAndSwap(false, true) {
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // unreachable; SIGKILL is not deliverable to a handler
		}
		return nil
	case <-c.down:
		return c.downErr()
	}
}

// WireGather implements am.ControlPlane.
func (c *Client) WireGather(local []int64) ([]int64, error) {
	seq := c.gatherSeq.Add(1)
	if err := c.write(fGather, gatherMsg{Seq: seq, Vals: local}.encode()); err != nil {
		return nil, err
	}
	select {
	case g := <-c.gatCh:
		if g.Seq != seq {
			err := fmt.Errorf("%w: gather release seq %d, want %d", ErrDecode, g.Seq, seq)
			c.fail(err)
			return nil, err
		}
		return g.Vals, nil
	case <-c.down:
		return nil, c.downErr()
	}
}

// WireWave implements am.ControlPlane. Only the worker hosting global rank 0
// calls this (it owns the four-counter driver).
func (c *Client) WireWave(local am.WaveSample) (am.WaveSample, error) {
	if err := c.write(fWaveStart, encodeWave(local)); err != nil {
		return am.WaveSample{}, err
	}
	select {
	case s := <-c.wavCh:
		return s, nil
	case <-c.down:
		return am.WaveSample{}, c.downErr()
	}
}

// AnnounceFinish implements am.ControlPlane. Fire-and-forget: the
// coordinator rebroadcasts the finish to every worker (including this one,
// where it lands on an already-finished epoch as a no-op).
func (c *Client) AnnounceFinish() error {
	return c.write(fFinish, nil)
}

// ReportFault implements am.ControlPlane. Best-effort: if the write fails
// the connection is already down and the coordinator has (or will) notice.
func (c *Client) ReportFault(f am.RankFault) {
	c.write(fFault, encodeFault(f))
}

// Goodbye performs the graceful-departure handshake (SIGTERM drain): the
// coordinator acks the goodbye and aborts the rest of the fleet with the
// clean flag, so peers count a clean departure instead of tripping the
// heartbeat fault path. Returns once the ack arrives (or the connection
// dies, or the timeout expires).
func (c *Client) Goodbye(timeout time.Duration) error {
	if err := c.write(fGoodbye, nil); err != nil {
		return err
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-c.byeCh:
		return nil
	case <-c.down:
		return c.downErr()
	case <-t.C:
		return fmt.Errorf("mp: goodbye ack timed out after %v", timeout)
	}
}
