package mp

// Launcher-side observability unit tests: the straggler tracker's fold/emit
// discipline and the fleet monitor's OpenMetrics rendering. The end-to-end
// path (real workers streaming real kernel spans) is covered by
// TestLaunchFleetObservability.

import (
	"strings"
	"testing"

	"declpat/internal/obs"
)

func kernelSpan(rank int, epoch, dur int64) obs.Record {
	return obs.Record{Kind: "phase", Type: obs.PhaseKernel.String(),
		Rank: rank, Arg2: epoch, TS: epoch * 1_000, Dur: dur}
}

func TestStragglerTrackerFold(t *testing.T) {
	tr := newStragglerTracker(2)

	// One rank reported: the epoch is incomplete, nothing emits.
	if out := tr.fold([]obs.Record{kernelSpan(0, 1, 40)}); len(out) != 0 {
		t.Fatalf("emitted with half the ranks missing: %+v", out)
	}
	// Non-kernel spans never count toward completion.
	barrier := obs.Record{Kind: "phase", Type: obs.PhaseBarrier.String(), Rank: 1, Arg2: 1, Dur: 999}
	if out := tr.fold([]obs.Record{barrier}); len(out) != 0 {
		t.Fatalf("barrier span completed the epoch: %+v", out)
	}
	// The missing rank arrives: exactly one summary, with the slow rank named.
	out := tr.fold([]obs.Record{kernelSpan(1, 1, 120)})
	if len(out) != 1 {
		t.Fatalf("complete epoch emitted %d summaries, want 1", len(out))
	}
	st := out[0]
	if st.Epoch != 1 || st.Ranks != 2 || st.SlowRank != 1 || st.MaxNS != 120 || st.MinNS != 40 || st.MeanNS != 80 {
		t.Fatalf("summary: %+v", st)
	}
	if st.Imbalance != 1.5 {
		t.Fatalf("imbalance %v, want 120/80 = 1.5", st.Imbalance)
	}
	// Replayed spans for an emitted epoch (a restarted attempt re-running it)
	// never re-emit.
	if out := tr.fold([]obs.Record{kernelSpan(0, 1, 40), kernelSpan(1, 1, 40)}); len(out) != 0 {
		t.Fatalf("emitted epoch re-emitted: %+v", out)
	}
	if got, ok := tr.Latest(); !ok || got.Epoch != 1 {
		t.Fatalf("Latest() = %+v ok=%v", got, ok)
	}
}

func TestFleetMonitorOpenMetrics(t *testing.T) {
	mon := NewFleetMonitor()
	mon.Straggler(StragglerStat{Epoch: 4, Ranks: 2, MeanNS: 80, MaxNS: 120, MinNS: 40,
		SlowRank: 1, Imbalance: 1.5, PerRank: map[int]int64{0: 40, 1: 120}})
	mon.Finish(&LaunchResult{
		Vectors:         [][]int64{{1}},
		Attempts:        2,
		CleanDepartures: 0,
		ClockErrNS:      50_000,
		ExitCodes:       [][]int{{0, -1}, {0, 0}},
	})

	var sb strings.Builder
	if err := mon.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"declpat_fleet_epochs_summarized_total 1",
		"declpat_fleet_epoch_imbalance 1.5",
		"declpat_fleet_epoch_slow_rank 1",
		`declpat_fleet_epoch_kernel_seconds{rank="1"}`,
		"declpat_fleet_attempts_total 2",
		"declpat_fleet_clean_departures_total 0",
		"declpat_fleet_crash_departures_total 1",
		"declpat_fleet_clock_err_seconds 5e-05",
		`declpat_fleet_worker_exits_total{exit="code 0 (clean)"} 3`,
		`declpat_fleet_worker_exits_total{exit="killed by signal"} 1`,
		"# EOF",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("metrics missing %q:\n%s", want, got)
		}
	}
}
