package mp_test

// End-to-end multi-process SPMD tests: Launch spawns real OS worker
// processes (this test binary re-execed; TestMain routes the children into
// mp.MaybeWorker), runs BFS/SSSP/CC with all control traffic on the wire,
// and compares results bit-for-bit with the in-process fault-free reference.
// The kill tests are the tentpole acceptance: a seeded SIGKILL mid-run must
// end in respawn + checkpoint/restart with an identical result.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"declpat/internal/chaos"
	"declpat/internal/harness"
	"declpat/internal/mp"
	"declpat/internal/obs"
)

func TestMain(m *testing.M) {
	mp.MaybeWorker() // does not return in launcher-spawned children
	os.Exit(m.Run())
}

// testJob is the shared fleet workload: small enough to keep the multi-
// process matrix fast, large enough for multi-epoch SSSP/CC runs.
func testJob(algo string) mp.JobSpec {
	return mp.JobSpec{
		Algo:       algo,
		Scale:      6,
		EdgeFactor: 8,
		Seed:       7,
		Ranks:      4,
		Threads:    2,
		Source:     1,
		Delta:      8,
	}
}

// launch runs a fleet attached to the test log and fails the test on error.
func launch(t *testing.T, spec mp.LaunchSpec) *mp.LaunchResult {
	t.Helper()
	var log bytes.Buffer
	spec.Log = &log
	res, err := mp.Launch(spec)
	if err != nil {
		t.Fatalf("launch failed: %v\nlauncher log:\n%s", err, log.String())
	}
	t.Logf("launcher log:\n%s", log.String())
	return res
}

// checkIdentical compares fleet output with the single-process reference.
func checkIdentical(t *testing.T, job mp.JobSpec, got [][]int64) {
	t.Helper()
	want, err := chaos.ReferenceProc(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("fleet produced %d vectors, reference %d", len(got), len(want))
	}
	for i := range want {
		if !chaos.Equal(got[i], want[i]) {
			d := chaos.Diff(got[i], want[i], 8)
			t.Fatalf("vector %d differs from the single-process reference at %d+ indices %v (len %d vs %d)",
				i, len(d), d, len(got[i]), len(want[i]))
		}
	}
}

func TestLaunchBitIdenticalToSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	for _, algo := range []string{"bfs", "sssp", "cc"} {
		t.Run(algo, func(t *testing.T) {
			job := testJob(algo)
			res := launch(t, mp.LaunchSpec{Job: job, Workers: 2, RootSeed: 11})
			if res.Attempts != 1 {
				t.Fatalf("fault-free launch took %d attempts", res.Attempts)
			}
			checkIdentical(t, job, res.Vectors)
		})
	}
}

func TestLaunchFourWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	job := testJob("bfs")
	job.Ranks = 8
	res := launch(t, mp.LaunchSpec{Job: job, Workers: 4, RootSeed: 13})
	if res.Attempts != 1 {
		t.Fatalf("fault-free launch took %d attempts", res.Attempts)
	}
	checkIdentical(t, job, res.Vectors)
}

// TestLaunchKillBody is the acceptance drill: a worker SIGKILLs itself right
// after a mid-run checkpoint-commit vote releases. The launcher must notice
// the death, respawn the fleet, restore from the committed checkpoint, and
// still produce the bit-identical result.
func TestLaunchKillBody(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	job := testJob("sssp") // multi-epoch: the kill lands mid-run
	res := launch(t, mp.LaunchSpec{
		Job: job, Workers: 2, RootSeed: 17,
		Kill: &mp.KillSpec{Worker: 1, Epoch: 2, Mode: "body"},
	})
	if res.Attempts != 2 {
		t.Fatalf("kill-body launch took %d attempts, want 2 (kill + respawn)", res.Attempts)
	}
	if code := res.ExitCodes[0][1]; code != -1 {
		t.Fatalf("killed worker exit code %d, want -1 (signal)", code)
	}
	checkIdentical(t, job, res.Vectors)
}

// TestLaunchKillEntry kills between the checkpoint-commit vote and its ack:
// every worker voted epoch 2 committed, but no release ever arrived, so the
// restart must fall back to the previously committed epoch.
func TestLaunchKillEntry(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	job := testJob("sssp")
	res := launch(t, mp.LaunchSpec{
		Job: job, Workers: 2, RootSeed: 19,
		Kill: &mp.KillSpec{Worker: 0, Epoch: 2, Mode: "entry"},
	})
	if res.Attempts != 2 {
		t.Fatalf("kill-entry launch took %d attempts, want 2", res.Attempts)
	}
	checkIdentical(t, job, res.Vectors)
}

// TestLaunchKillTerm SIGTERMs a worker mid-run: it must drain via the
// goodbye/ack handshake (a clean departure, exit code 0), after which the
// fleet respawns and completes.
func TestLaunchKillTerm(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	job := testJob("sssp")
	res := launch(t, mp.LaunchSpec{
		Job: job, Workers: 2, RootSeed: 23,
		Kill: &mp.KillSpec{Worker: 1, Epoch: 1, Mode: "term"},
	})
	if res.Attempts != 2 {
		t.Fatalf("kill-term launch took %d attempts, want 2", res.Attempts)
	}
	if res.CleanDepartures != 1 {
		t.Fatalf("clean departures = %d, want 1", res.CleanDepartures)
	}
	if code := res.ExitCodes[0][1]; code != 0 {
		t.Fatalf("SIGTERMed worker exit code %d, want 0 (graceful goodbye)", code)
	}
	checkIdentical(t, job, res.Vectors)
}

// TestLaunchWorkerSeedsDiffer pins satellite determinism: per-worker fault
// seeds derive from the root seed and rank range, distinct across workers
// and stable across respawns (same inputs, same seed).
func TestLaunchWorkerSeedsDiffer(t *testing.T) {
	s0 := harness.WorkerSeed(42, 0, 0, 2)
	s1 := harness.WorkerSeed(42, 1, 2, 4)
	if s0 == s1 {
		t.Fatal("workers 0 and 1 derived the same fault seed")
	}
	if s0 != harness.WorkerSeed(42, 0, 0, 2) {
		t.Fatal("worker seed not stable across respawns")
	}
	if s0 == harness.WorkerSeed(43, 0, 0, 2) {
		t.Fatal("worker seed ignores the root seed")
	}
}

// TestLaunchValidation pins the launcher's argument checking.
func TestLaunchValidation(t *testing.T) {
	if _, err := mp.Launch(mp.LaunchSpec{Job: testJob("bfs"), Workers: 0}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := mp.Launch(mp.LaunchSpec{Job: testJob("nope"), Workers: 1}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	bad := testJob("bfs")
	bad.Ranks = 1
	if _, err := mp.Launch(mp.LaunchSpec{Job: bad, Workers: 2}); err == nil {
		t.Fatal("fewer ranks than workers accepted")
	}
	spec := mp.LaunchSpec{Job: testJob("bfs"), Workers: 2,
		Kill: &mp.KillSpec{Worker: 5, Epoch: 1, Mode: "body"}}
	if _, err := mp.Launch(spec); err == nil {
		t.Fatal("out-of-range kill target accepted")
	}
	spec.Kill = &mp.KillSpec{Worker: 0, Epoch: 1, Mode: "maim"}
	if _, err := mp.Launch(spec); err == nil {
		t.Fatal("unknown kill mode accepted")
	}
}

// TestLaunchFleetObservability is the observability acceptance drill: a
// seeded 4-process run with a mid-epoch SIGKILL must produce (a) a merged,
// clock-aligned fleet timeline whose barrier spans from all ranks overlap
// within the measured alignment bound, (b) live straggler summaries covering
// every rank, and (c) a sealed flight dump for the killed worker — archived
// past the respawn — naming the epoch and phase state at its last commit.
func TestLaunchFleetObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	job := testJob("sssp")
	job.Ranks = 8
	dir := t.TempDir()
	job.TraceDir = filepath.Join(dir, "trace")
	job.FlightDir = filepath.Join(dir, "flight")
	res := launch(t, mp.LaunchSpec{
		Job: job, Workers: 4, RootSeed: 29,
		Kill: &mp.KillSpec{Worker: 2, Epoch: 2, Mode: "body"},
	})
	if res.Attempts != 2 {
		t.Fatalf("kill-body launch took %d attempts, want 2", res.Attempts)
	}
	checkIdentical(t, job, res.Vectors)

	// Live straggler detection: the coordinator summarized at least one epoch
	// with every rank's kernel span accounted for.
	if len(res.Stragglers) == 0 {
		t.Fatal("no straggler summaries emitted")
	}
	for _, st := range res.Stragglers {
		if st.Ranks != job.Ranks {
			t.Fatalf("summary covers %d ranks, want %d: %+v", st.Ranks, job.Ranks, st)
		}
		if st.Imbalance < 1 {
			t.Fatalf("imbalance below 1 (max < mean is impossible): %+v", st)
		}
	}

	// The merged fleet timeline: fleet.trace.jsonl written by the launcher,
	// with offset-corrected records from every worker process.
	if res.ClockErrNS <= 0 {
		t.Fatal("launch reported no clock-alignment bound")
	}
	meta, recs, err := obs.ReadTraceDir(job.TraceDir)
	if err != nil {
		t.Fatalf("fleet trace: %v", err)
	}
	if meta.Label != "mp-fleet" {
		t.Fatalf("trace dir did not prefer the coordinator merge: label %q", meta.Label)
	}
	workers := map[int]bool{}
	for _, r := range recs {
		workers[r.W] = true
	}
	if len(workers) != 4 {
		t.Fatalf("fleet timeline has records from %d workers, want 4: %v", len(workers), workers)
	}

	// Barrier spans from all ranks must mutually overlap once aligned: every
	// rank's span contains the release instant, so max(start) <= min(end) up
	// to the clock-alignment error on each side plus release-propagation
	// slack. The check runs on the highest epoch every rank reported: only
	// the final (completing) attempt reached it, so each rank's last barrier
	// span there is the same collective instance — epochs touched by the
	// killed attempt mix spans from both attempts, ~100ms of restart latency
	// apart, and cannot be paired up by epoch number alone.
	type span struct{ start, end int64 }
	barriers := map[int64]map[int]span{}
	for _, r := range recs {
		if r.Kind != "phase" || r.Type != obs.PhaseBarrier.String() {
			continue
		}
		m := barriers[r.Arg2]
		if m == nil {
			m = map[int]span{}
			barriers[r.Arg2] = m
		}
		if s, ok := m[r.Rank]; !ok || r.TS > s.start {
			m[r.Rank] = span{r.TS, r.TS + r.Dur}
		}
	}
	bound := 2*res.ClockErrNS + 2_000_000 // per-side alignment error + 2ms propagation slack
	target := int64(-1)
	for epoch, m := range barriers {
		if len(m) == job.Ranks && epoch > target {
			target = epoch
		}
	}
	if target < 0 {
		t.Fatal("no epoch had barrier spans from all ranks")
	}
	maxStart, minEnd := int64(0), int64(1<<62)
	for _, s := range barriers[target] {
		if s.start > maxStart {
			maxStart = s.start
		}
		if s.end < minEnd {
			minEnd = s.end
		}
	}
	if maxStart > minEnd+bound {
		t.Fatalf("epoch %d: aligned barrier spans do not overlap (gap %dns > bound %dns)",
			target, maxStart-minEnd, bound)
	}
	t.Logf("epoch %d barrier spans from all %d ranks overlap within ±%dns", target, job.Ranks, bound)

	// The black box: the killed worker's dump from attempt 0 was archived
	// before the respawn and names the epoch it last committed (the kill
	// lands in epoch 2's body, so the dump is at most one epoch stale).
	d, err := obs.LoadFlightDump(filepath.Join(job.FlightDir, "flight-2.attempt0.dpfr"))
	if err != nil {
		t.Fatalf("killed worker's archived flight dump: %v", err)
	}
	if d.Worker != 2 {
		t.Fatalf("dump identifies worker %d, want 2", d.Worker)
	}
	if !strings.Contains(d.Reason, "commit") {
		t.Fatalf("dump reason %q does not name a commit point", d.Reason)
	}
	if d.Epoch < 1 || d.Epoch > 2 {
		t.Fatalf("dump epoch %d, want the kill epoch or one before (1..2)", d.Epoch)
	}
	phases := 0
	for _, ev := range d.Events {
		if ev.Kind == "phase" {
			phases++
		}
	}
	if phases == 0 {
		t.Fatalf("killed worker's dump has no phase landmarks among %d events", len(d.Events))
	}

	// The surviving attempt left a fresh sealed dump for every worker.
	for w := 0; w < 4; w++ {
		d, err := obs.LoadFlightDump(filepath.Join(job.FlightDir, fmt.Sprintf("flight-%d.dpfr", w)))
		if err != nil {
			t.Fatalf("worker %d final dump: %v", w, err)
		}
		if d.Reason != "run complete" {
			t.Fatalf("worker %d final dump reason %q, want the clean-completion persist", w, d.Reason)
		}
	}
}
