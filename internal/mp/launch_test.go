package mp_test

// End-to-end multi-process SPMD tests: Launch spawns real OS worker
// processes (this test binary re-execed; TestMain routes the children into
// mp.MaybeWorker), runs BFS/SSSP/CC with all control traffic on the wire,
// and compares results bit-for-bit with the in-process fault-free reference.
// The kill tests are the tentpole acceptance: a seeded SIGKILL mid-run must
// end in respawn + checkpoint/restart with an identical result.

import (
	"bytes"
	"os"
	"testing"

	"declpat/internal/chaos"
	"declpat/internal/harness"
	"declpat/internal/mp"
)

func TestMain(m *testing.M) {
	mp.MaybeWorker() // does not return in launcher-spawned children
	os.Exit(m.Run())
}

// testJob is the shared fleet workload: small enough to keep the multi-
// process matrix fast, large enough for multi-epoch SSSP/CC runs.
func testJob(algo string) mp.JobSpec {
	return mp.JobSpec{
		Algo:       algo,
		Scale:      6,
		EdgeFactor: 8,
		Seed:       7,
		Ranks:      4,
		Threads:    2,
		Source:     1,
		Delta:      8,
	}
}

// launch runs a fleet attached to the test log and fails the test on error.
func launch(t *testing.T, spec mp.LaunchSpec) *mp.LaunchResult {
	t.Helper()
	var log bytes.Buffer
	spec.Log = &log
	res, err := mp.Launch(spec)
	if err != nil {
		t.Fatalf("launch failed: %v\nlauncher log:\n%s", err, log.String())
	}
	t.Logf("launcher log:\n%s", log.String())
	return res
}

// checkIdentical compares fleet output with the single-process reference.
func checkIdentical(t *testing.T, job mp.JobSpec, got [][]int64) {
	t.Helper()
	want, err := chaos.ReferenceProc(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("fleet produced %d vectors, reference %d", len(got), len(want))
	}
	for i := range want {
		if !chaos.Equal(got[i], want[i]) {
			d := chaos.Diff(got[i], want[i], 8)
			t.Fatalf("vector %d differs from the single-process reference at %d+ indices %v (len %d vs %d)",
				i, len(d), d, len(got[i]), len(want[i]))
		}
	}
}

func TestLaunchBitIdenticalToSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	for _, algo := range []string{"bfs", "sssp", "cc"} {
		t.Run(algo, func(t *testing.T) {
			job := testJob(algo)
			res := launch(t, mp.LaunchSpec{Job: job, Workers: 2, RootSeed: 11})
			if res.Attempts != 1 {
				t.Fatalf("fault-free launch took %d attempts", res.Attempts)
			}
			checkIdentical(t, job, res.Vectors)
		})
	}
}

func TestLaunchFourWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	job := testJob("bfs")
	job.Ranks = 8
	res := launch(t, mp.LaunchSpec{Job: job, Workers: 4, RootSeed: 13})
	if res.Attempts != 1 {
		t.Fatalf("fault-free launch took %d attempts", res.Attempts)
	}
	checkIdentical(t, job, res.Vectors)
}

// TestLaunchKillBody is the acceptance drill: a worker SIGKILLs itself right
// after a mid-run checkpoint-commit vote releases. The launcher must notice
// the death, respawn the fleet, restore from the committed checkpoint, and
// still produce the bit-identical result.
func TestLaunchKillBody(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	job := testJob("sssp") // multi-epoch: the kill lands mid-run
	res := launch(t, mp.LaunchSpec{
		Job: job, Workers: 2, RootSeed: 17,
		Kill: &mp.KillSpec{Worker: 1, Epoch: 2, Mode: "body"},
	})
	if res.Attempts != 2 {
		t.Fatalf("kill-body launch took %d attempts, want 2 (kill + respawn)", res.Attempts)
	}
	if code := res.ExitCodes[0][1]; code != -1 {
		t.Fatalf("killed worker exit code %d, want -1 (signal)", code)
	}
	checkIdentical(t, job, res.Vectors)
}

// TestLaunchKillEntry kills between the checkpoint-commit vote and its ack:
// every worker voted epoch 2 committed, but no release ever arrived, so the
// restart must fall back to the previously committed epoch.
func TestLaunchKillEntry(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	job := testJob("sssp")
	res := launch(t, mp.LaunchSpec{
		Job: job, Workers: 2, RootSeed: 19,
		Kill: &mp.KillSpec{Worker: 0, Epoch: 2, Mode: "entry"},
	})
	if res.Attempts != 2 {
		t.Fatalf("kill-entry launch took %d attempts, want 2", res.Attempts)
	}
	checkIdentical(t, job, res.Vectors)
}

// TestLaunchKillTerm SIGTERMs a worker mid-run: it must drain via the
// goodbye/ack handshake (a clean departure, exit code 0), after which the
// fleet respawns and completes.
func TestLaunchKillTerm(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	job := testJob("sssp")
	res := launch(t, mp.LaunchSpec{
		Job: job, Workers: 2, RootSeed: 23,
		Kill: &mp.KillSpec{Worker: 1, Epoch: 1, Mode: "term"},
	})
	if res.Attempts != 2 {
		t.Fatalf("kill-term launch took %d attempts, want 2", res.Attempts)
	}
	if res.CleanDepartures != 1 {
		t.Fatalf("clean departures = %d, want 1", res.CleanDepartures)
	}
	if code := res.ExitCodes[0][1]; code != 0 {
		t.Fatalf("SIGTERMed worker exit code %d, want 0 (graceful goodbye)", code)
	}
	checkIdentical(t, job, res.Vectors)
}

// TestLaunchWorkerSeedsDiffer pins satellite determinism: per-worker fault
// seeds derive from the root seed and rank range, distinct across workers
// and stable across respawns (same inputs, same seed).
func TestLaunchWorkerSeedsDiffer(t *testing.T) {
	s0 := harness.WorkerSeed(42, 0, 0, 2)
	s1 := harness.WorkerSeed(42, 1, 2, 4)
	if s0 == s1 {
		t.Fatal("workers 0 and 1 derived the same fault seed")
	}
	if s0 != harness.WorkerSeed(42, 0, 0, 2) {
		t.Fatal("worker seed not stable across respawns")
	}
	if s0 == harness.WorkerSeed(43, 0, 0, 2) {
		t.Fatal("worker seed ignores the root seed")
	}
}

// TestLaunchValidation pins the launcher's argument checking.
func TestLaunchValidation(t *testing.T) {
	if _, err := mp.Launch(mp.LaunchSpec{Job: testJob("bfs"), Workers: 0}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := mp.Launch(mp.LaunchSpec{Job: testJob("nope"), Workers: 1}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	bad := testJob("bfs")
	bad.Ranks = 1
	if _, err := mp.Launch(mp.LaunchSpec{Job: bad, Workers: 2}); err == nil {
		t.Fatal("fewer ranks than workers accepted")
	}
	spec := mp.LaunchSpec{Job: testJob("bfs"), Workers: 2,
		Kill: &mp.KillSpec{Worker: 5, Epoch: 1, Mode: "body"}}
	if _, err := mp.Launch(spec); err == nil {
		t.Fatal("out-of-range kill target accepted")
	}
	spec.Kill = &mp.KillSpec{Worker: 0, Epoch: 1, Mode: "maim"}
	if _, err := mp.Launch(spec); err == nil {
		t.Fatal("unknown kill mode accepted")
	}
}
