package mp

import (
	"io"
	"sort"
	"strconv"
	"sync"

	"declpat/internal/obs"
)

// FleetMonitor aggregates launcher-side observability — the live straggler
// feed plus the post-launch departure census — and serves it as OpenMetrics
// text. Wire Straggler into LaunchSpec.OnStraggler and WriteOpenMetrics into
// a harness.DebugServer's /metrics handler; call Finish when Launch returns
// so the scrape picks up the exit-code tallies.
type FleetMonitor struct {
	mu       sync.Mutex
	latest   StragglerStat
	has      bool
	epochs   int64
	attempts int64
	clean    int64
	crash    int64
	clockErr int64
	exits    map[string]int
}

// NewFleetMonitor builds an empty monitor.
func NewFleetMonitor() *FleetMonitor {
	return &FleetMonitor{exits: map[string]int{}}
}

// Straggler records one per-epoch imbalance summary (the
// LaunchSpec.OnStraggler feed; safe to call from the coordinator event loop).
func (m *FleetMonitor) Straggler(st StragglerStat) {
	m.mu.Lock()
	m.latest = st
	m.has = true
	m.epochs++
	m.mu.Unlock()
}

// Finish folds a completed launch's departure census into the monitor: the
// attempt count, the clean/crash split, the clock-alignment bound, and the
// per-classification worker exit tally.
func (m *FleetMonitor) Finish(res *LaunchResult) {
	if res == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.attempts = int64(res.Attempts)
	m.clean = int64(res.CleanDepartures)
	// Every failed attempt ended in either a goodbye drain or a crash; the
	// successful attempt (when there was one) ended in neither.
	failed := int64(res.Attempts)
	if res.Vectors != nil {
		failed--
	}
	if m.crash = failed - m.clean; m.crash < 0 {
		m.crash = 0
	}
	m.clockErr = res.ClockErrNS
	for k, v := range res.ExitTally() {
		m.exits[k] += v
	}
}

// Latest returns the most recent straggler summary.
func (m *FleetMonitor) Latest() (StragglerStat, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.latest, m.has
}

// WriteOpenMetrics emits the monitor's families in OpenMetrics text form.
func (m *FleetMonitor) WriteOpenMetrics(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	om := obs.NewOMWriter(w)

	om.Family("declpat_fleet_epochs_summarized_total", "counter",
		"Epochs for which every rank's kernel span arrived and an imbalance summary was emitted.")
	om.SampleInt("declpat_fleet_epochs_summarized_total", nil, m.epochs)
	if m.has {
		om.Family("declpat_fleet_epoch_imbalance", "gauge",
			"Last summarized epoch's kernel-time imbalance (max/mean; 1.0 = perfectly balanced).")
		om.Sample("declpat_fleet_epoch_imbalance", nil, m.latest.Imbalance)
		om.Family("declpat_fleet_epoch_slow_rank", "gauge",
			"Last summarized epoch's slowest (straggler) rank.")
		om.SampleInt("declpat_fleet_epoch_slow_rank", nil, int64(m.latest.SlowRank))
		om.Family("declpat_fleet_epoch_kernel_seconds", "gauge",
			"Last summarized epoch's per-rank kernel time.")
		ranks := make([]int, 0, len(m.latest.PerRank))
		for rank := range m.latest.PerRank {
			ranks = append(ranks, rank)
		}
		sort.Ints(ranks)
		for _, rank := range ranks {
			om.Sample("declpat_fleet_epoch_kernel_seconds",
				[]string{"rank", strconv.Itoa(rank)}, float64(m.latest.PerRank[rank])/1e9)
		}
	}

	om.Family("declpat_fleet_attempts_total", "counter", "Fleet attempts (1 = no restart was needed).")
	om.SampleInt("declpat_fleet_attempts_total", nil, m.attempts)
	om.Family("declpat_fleet_clean_departures_total", "counter",
		"Attempts ended by a goodbye drain rather than a crash.")
	om.SampleInt("declpat_fleet_clean_departures_total", nil, m.clean)
	om.Family("declpat_fleet_crash_departures_total", "counter",
		"Attempts ended by a worker crash (heartbeat expiry or connection loss).")
	om.SampleInt("declpat_fleet_crash_departures_total", nil, m.crash)
	if m.clockErr > 0 {
		om.Family("declpat_fleet_clock_err_seconds", "gauge",
			"Largest clock-offset error bound any worker reported (fleet-timeline alignment uncertainty).")
		om.Sample("declpat_fleet_clock_err_seconds", nil, float64(m.clockErr)/1e9)
	}
	if len(m.exits) > 0 {
		om.Family("declpat_fleet_worker_exits_total", "counter",
			"Reaped worker exits across all attempts, by classification.")
		kinds := make([]string, 0, len(m.exits))
		for k := range m.exits {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			om.SampleInt("declpat_fleet_worker_exits_total", []string{"exit", k}, int64(m.exits[k]))
		}
	}
	return om.Close()
}
