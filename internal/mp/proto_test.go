package mp

import (
	"bytes"
	"errors"
	"testing"

	"declpat/internal/am"
)

func TestFrameRoundTrip(t *testing.T) {
	bodies := map[byte][]byte{
		fHello:      hello{Worker: 3}.encode(),
		fBarrier:    encodeTag(-1),
		fGather:     gatherMsg{Seq: 7, Vals: []int64{1, -2, 3}}.encode(),
		fWaveStart:  encodeWave(am.WaveSample{Sent: 10, Recv: 9, Active: 1}),
		fAbort:      abortMsg{Clean: true, Reason: "worker 1 departed cleanly"}.encode(),
		fResult:     resultMsg{Vec: 1, VertexLo: 64, Vals: []int64{5, 6}}.encode(),
		fResultDone: nil,
	}
	var buf bytes.Buffer
	for kind, body := range bodies {
		buf.Reset()
		if err := writeFrame(&buf, kind, body); err != nil {
			t.Fatalf("write %s: %v", kindName(kind), err)
		}
		gotKind, gotBody, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("read %s: %v", kindName(kind), err)
		}
		if gotKind != kind || !bytes.Equal(gotBody, body) {
			t.Fatalf("%s round trip: got kind %s body %v, want body %v", kindName(kind), kindName(gotKind), gotBody, body)
		}
	}
}

func TestFrameCorruptionIsDecodeError(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, fBarrier, encodeTag(4)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-3] ^= 0x40 // damage the CRC seal
	_, _, err := readFrame(bytes.NewReader(raw))
	if !errors.Is(err, ErrDecode) {
		t.Fatalf("corrupted frame: got %v, want ErrDecode", err)
	}
}

func TestFrameTruncationIsPeerClosed(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, fGather, gatherMsg{Seq: 1, Vals: []int64{9}}.encode()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	_, _, err := readFrame(bytes.NewReader(raw[:len(raw)-4]))
	if !errors.Is(err, ErrPeerClosed) {
		t.Fatalf("truncated frame: got %v, want ErrPeerClosed", err)
	}
	_, _, err = readFrame(bytes.NewReader(nil))
	if !errors.Is(err, ErrPeerClosed) {
		t.Fatalf("empty stream: got %v, want ErrPeerClosed", err)
	}
}

func TestHelloValidation(t *testing.T) {
	h := hello{Worker: 2}
	got, err := decodeHello(h.encode())
	if err != nil || got != h {
		t.Fatalf("hello round trip: got %+v, %v", got, err)
	}
	bad := h.encode()
	bad[len(bad)-5] = protoVersion + 1 // version byte precedes the worker u32
	if _, err := decodeHello(bad); !errors.Is(err, ErrDecode) {
		t.Fatalf("version mismatch: got %v, want ErrDecode", err)
	}
}

func TestWelcomeRoundTrip(t *testing.T) {
	w := welcome{
		RunID: 0xdeadbeef, Workers: 4, Ranks: 8, Lo: 2, Hi: 4,
		RestartEpoch: 3, HaveCkpt: true,
		Log:        [][]int64{{1, 2}, {3}},
		CkptDir:    "/tmp/ckpt",
		WorkerSeed: 99, KillEpoch: 2, KillMode: killBody,
		JobJSON: []byte(`{"algo":"bfs"}`),
	}
	got, err := decodeWelcome(w.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.RunID != w.RunID || got.Lo != w.Lo || got.Hi != w.Hi ||
		got.RestartEpoch != w.RestartEpoch || !got.HaveCkpt ||
		len(got.Log) != 2 || got.Log[0][1] != 2 ||
		got.CkptDir != w.CkptDir || got.WorkerSeed != w.WorkerSeed ||
		got.KillEpoch != 2 || got.KillMode != killBody ||
		string(got.JobJSON) != string(w.JobJSON) {
		t.Fatalf("welcome round trip: got %+v, want %+v", got, w)
	}
}

func TestRankRange(t *testing.T) {
	// 10 ranks over 4 workers: contiguous, covering, ascending.
	prev := 0
	total := 0
	for w := 0; w < 4; w++ {
		lo, hi := rankRange(10, 4, w)
		if lo != prev {
			t.Fatalf("worker %d: lo=%d, want %d", w, lo, prev)
		}
		if hi <= lo {
			t.Fatalf("worker %d: empty range [%d,%d)", w, lo, hi)
		}
		prev = hi
		total += hi - lo
	}
	if total != 10 {
		t.Fatalf("ranges cover %d ranks, want 10", total)
	}
}

func TestJobSpecValidation(t *testing.T) {
	j := JobSpec{Algo: "bfs"}
	if err := j.Normalize(); err != nil {
		t.Fatal(err)
	}
	if j.Ranks == 0 || j.Scale == 0 || j.Network != "tcp" {
		t.Fatalf("defaults not applied: %+v", j)
	}
	bad := JobSpec{Algo: "pagerank"}
	if err := bad.Normalize(); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	badNet := JobSpec{Algo: "bfs", Network: "sctp"}
	if err := badNet.Normalize(); err == nil {
		t.Fatal("unknown network accepted")
	}
	if _, err := unmarshalJob([]byte("{not json")); !errors.Is(err, ErrDecode) {
		t.Fatalf("bad job JSON: got %v, want ErrDecode", err)
	}
}
