package mp

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"declpat/internal/harness"
	"declpat/internal/obs"
)

// KillSpec schedules one seeded worker kill for a launch (attempt 0 only —
// the respawned fleet runs undisturbed, which is what makes the
// bit-identical comparison meaningful).
type KillSpec struct {
	// Worker is the target worker index.
	Worker int
	// Epoch is the epoch whose checkpoint-commit vote triggers the kill.
	Epoch int64
	// Mode selects the kill point:
	//   - "entry": the coordinator withholds the commit vote's release and
	//     the launcher SIGKILLs the target — the kill lands between the vote
	//     and its ack, so recovery must fall back to the previous committed
	//     epoch;
	//   - "body": the target worker SIGKILLs itself right after the vote's
	//     release — a mid-epoch crash recovered from the epoch just
	//     committed;
	//   - "term": the launcher SIGTERMs the target after the vote commits —
	//     the graceful-departure drain (goodbye/ack) instead of the
	//     heartbeat fault path.
	Mode string
}

// LaunchSpec configures a multi-process fleet run.
type LaunchSpec struct {
	// Job is the algorithm workload every worker executes.
	Job JobSpec
	// Workers is the number of OS worker processes; global ranks are split
	// contiguously over them.
	Workers int
	// RootSeed derives the fleet's RunID and every worker's fault seed.
	RootSeed uint64
	// Kill, when non-nil, schedules one seeded kill on attempt 0.
	Kill *KillSpec
	// MaxRestarts bounds fleet respawns (0 selects 3).
	MaxRestarts int
	// RoundTimeout bounds every control round; Liveness is the control-
	// plane heartbeat deadline (0 selects 30s / 10s; tests shrink both).
	RoundTimeout time.Duration
	Liveness     time.Duration
	// WorkerCommand is the worker process argv. Empty selects
	// [os.Executable()] — the self-exec pattern, where the launched binary
	// calls MaybeWorker early in main (or TestMain) and becomes a rank host
	// when the mp environment variables are set.
	WorkerCommand []string
	// CheckpointDir holds the fleet's checkpoint slot files; "" creates a
	// temporary directory removed after the launch. Must be on a filesystem
	// shared by launcher and workers.
	CheckpointDir string
	// OnStraggler, when non-nil, receives one per-epoch imbalance summary as
	// the workers' streamed phase data completes each epoch — the live
	// straggler feed behind declpat-launch -watch. Called from the
	// coordinator event loop; must not block.
	OnStraggler func(StragglerStat)
	// Log receives launcher diagnostics and worker stderr (nil discards).
	Log io.Writer
}

// LaunchResult is a completed launch.
type LaunchResult struct {
	// Vectors is the algorithm output: [levels] for bfs, [distances] for
	// sssp, [canonical components] for cc.
	Vectors [][]int64
	// Attempts counts fleet attempts (1 = no restart was needed);
	// CleanDepartures counts attempts ended by a goodbye drain rather than
	// a crash.
	Attempts        int
	CleanDepartures int
	// RunID is the fleet identity (constant across attempts; checkpoint
	// files are validated against it).
	RunID uint64
	// ExitCodes records every reaped worker's exit code per attempt,
	// indexed [attempt][worker]. Killed-by-signal workers report -1.
	ExitCodes [][]int
	// Stragglers collects every per-epoch imbalance summary emitted across
	// the launch (all attempts, in emission order).
	Stragglers []StragglerStat
	// ClockErrNS is the largest clock-offset error bound any worker reported
	// — the fleet timeline's alignment uncertainty. Zero when no worker
	// streamed traces.
	ClockErrNS int64
}

// ExitTally tallies reaped worker exit codes across all attempts, keyed by
// their classification (describeExit) — the launcher's departure census,
// exported through the fleet /metrics endpoint.
func (r *LaunchResult) ExitTally() map[string]int {
	tally := map[string]int{}
	for _, attempt := range r.ExitCodes {
		for _, code := range attempt {
			tally[describeExit(code)]++
		}
	}
	return tally
}

// Launch runs a multi-process SPMD fleet to completion: spawn N workers,
// exchange data-plane addresses, run the job with all global control
// operations on the wire, and — when a worker dies or departs — respawn the
// fleet from the last committed checkpoint until the run completes or the
// restart budget is exhausted. The final result is bit-identical to a
// fault-free run: committed collective results replay from the coordinator's
// gather log and checkpointed state reloads from the slot files.
func Launch(spec LaunchSpec) (*LaunchResult, error) {
	if spec.Workers <= 0 {
		return nil, fmt.Errorf("mp: launch needs at least one worker, got %d", spec.Workers)
	}
	if err := spec.Job.Normalize(); err != nil {
		return nil, err
	}
	if spec.Job.Ranks < spec.Workers {
		return nil, fmt.Errorf("mp: %d workers need at least as many ranks, got %d", spec.Workers, spec.Job.Ranks)
	}
	if spec.Kill != nil {
		switch spec.Kill.Mode {
		case "entry", "body", "term":
		default:
			return nil, fmt.Errorf("mp: unknown kill mode %q (want entry, body, or term)", spec.Kill.Mode)
		}
		if spec.Kill.Worker < 0 || spec.Kill.Worker >= spec.Workers {
			return nil, fmt.Errorf("mp: kill targets worker %d of %d", spec.Kill.Worker, spec.Workers)
		}
	}
	if spec.MaxRestarts <= 0 {
		spec.MaxRestarts = 3
	}
	if spec.Log == nil {
		spec.Log = io.Discard
	}
	// Worker stderr arrives via exec's pipe-copy goroutines concurrently
	// with launcher diagnostics; serialize every write to the shared sink.
	sink := &syncWriter{w: spec.Log}
	logf := func(format string, args ...any) {
		fmt.Fprintf(sink, format+"\n", args...)
	}
	if len(spec.WorkerCommand) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("mp: resolving worker executable: %w", err)
		}
		spec.WorkerCommand = []string{exe}
	}
	ckptDir := spec.CheckpointDir
	if ckptDir == "" {
		dir, err := os.MkdirTemp("", "declpat-mp-*")
		if err != nil {
			return nil, fmt.Errorf("mp: checkpoint dir: %w", err)
		}
		defer os.RemoveAll(dir)
		ckptDir = dir
	}
	// Flight recorders are always on: default the dump directory to the
	// checkpoint directory (already required to be launcher/worker-shared),
	// so every launched fleet leaves a postmortem black box per worker.
	if spec.Job.FlightDir == "" {
		spec.Job.FlightDir = ckptDir
	}
	jobJSON, err := spec.Job.marshal()
	if err != nil {
		return nil, fmt.Errorf("mp: encoding job: %w", err)
	}

	res := &LaunchResult{RunID: harness.DeriveSeed(spec.RootSeed, "mp-run-id")}
	committed := int64(-1)
	var log [][]int64
	// Fleet timeline: every attempt's streamed records accumulate here. The
	// coordinator already aligned them onto the launcher's timebase, which is
	// stable across attempts (same process), so records from a killed attempt
	// and its respawn interleave correctly in one merged trace.
	var fleetRecs []obs.Record

	for attempt := 0; ; attempt++ {
		if attempt > spec.MaxRestarts {
			// The merged timeline of a fleet that never finished is exactly
			// what the operator wants to look at — write it anyway.
			writeFleetTrace(spec, fleetRecs, res.ClockErrNS, logf)
			return nil, fmt.Errorf("mp: fleet still failing after %d restarts", spec.MaxRestarts)
		}
		res.Attempts++
		procs := make([]*workerProc, spec.Workers)
		coord, err := newCoordinator(coordSpec{
			Workers:   spec.Workers,
			Ranks:     spec.Job.Ranks,
			RunID:     res.RunID,
			JobJSON:   jobJSON,
			CkptDir:   ckptDir,
			RootSeed:  spec.RootSeed,
			Committed: committed,
			Log:       log,
			Kill:      spec.Kill,
			ArmKill:   attempt == 0,
			OnKill: func(worker int, mode string) {
				p := procs[worker]
				if p == nil {
					return
				}
				switch mode {
				case "entry":
					p.cmd.Process.Kill()
				case "term":
					p.cmd.Process.Signal(syscall.SIGTERM)
				}
			},
			OnStraggler: func(st StragglerStat) {
				// coord.run() blocks the loop below until the attempt ends,
				// so appending from the event loop cannot race Launch.
				res.Stragglers = append(res.Stragglers, st)
				if spec.OnStraggler != nil {
					spec.OnStraggler(st)
				}
			},
			RoundTimeout: spec.RoundTimeout,
			Liveness:     spec.Liveness,
			Logf:         logf,
		})
		if err != nil {
			return nil, err
		}
		if attempt > 0 {
			logf("mp: attempt %d: respawning %d workers from committed epoch %d (%d logged collectives)",
				attempt+1, spec.Workers, committed, len(log))
		}
		spawnErr := error(nil)
		for w := 0; w < spec.Workers; w++ {
			p, err := spawnWorker(spec.WorkerCommand, coord.addr(), w, sink)
			if err != nil {
				spawnErr = fmt.Errorf("mp: spawning worker %d: %w", w, err)
				break
			}
			procs[w] = p
			logf("mp: worker %d: pid %d (ranks [%d,%d))", w, p.cmd.Process.Pid,
				w*spec.Job.Ranks/spec.Workers, (w+1)*spec.Job.Ranks/spec.Workers)
		}
		var out attemptOutcome
		if spawnErr != nil {
			coord.ln.Close()
			out = attemptOutcome{err: spawnErr, committed: committed, log: log}
		} else {
			out = coord.run()
		}
		codes := reapWorkers(procs, logf)
		res.ExitCodes = append(res.ExitCodes, codes)
		if spawnErr != nil {
			return nil, spawnErr
		}
		fleetRecs = append(fleetRecs, out.trace...)
		if out.clockErr > res.ClockErrNS {
			res.ClockErrNS = out.clockErr
		}
		if out.ok {
			writeFleetTrace(spec, fleetRecs, res.ClockErrNS, logf)
			vectors, err := assemble(spec.Job, out.results)
			if err != nil {
				return nil, err
			}
			res.Vectors = vectors
			return res, nil
		}
		if out.clean {
			res.CleanDepartures++
		}
		logf("mp: attempt %d failed: %v", attempt+1, out.err)
		// Preserve the evidence: the respawned fleet's recorders would
		// otherwise overwrite the dead attempt's dumps at their first epoch
		// commit — exactly the dumps a postmortem is about.
		archiveFlightDumps(spec.Job.FlightDir, attempt, logf)
		committed, log = out.committed, out.log
	}
}

// archiveFlightDumps renames an ended attempt's flight-<w>.dpfr dumps to
// flight-<w>.attempt<k>.dpfr. The archived names still match the
// flight-*.dpfr pattern, so declpat-trace -postmortem shows the killed
// attempt's black boxes alongside the final attempt's.
func archiveFlightDumps(dir string, attempt int, logf func(string, ...any)) {
	paths, _ := filepath.Glob(filepath.Join(dir, "flight-*.dpfr"))
	for _, p := range paths {
		base := filepath.Base(p)
		if strings.Contains(base, ".attempt") {
			continue // already archived by an earlier attempt
		}
		dst := strings.TrimSuffix(p, ".dpfr") + fmt.Sprintf(".attempt%d.dpfr", attempt)
		if err := os.Rename(p, dst); err != nil {
			logf("mp: archiving flight dump %s: %v", base, err)
		}
	}
	// A worker killed (or exiting) mid-Persist leaves the unrenamed temp
	// behind; every reaped worker is dead by now, so any temp is garbage.
	tmps, _ := filepath.Glob(filepath.Join(dir, "flight-*.dpfr.tmp-*"))
	for _, p := range tmps {
		os.Remove(p)
	}
}

// writeFleetTrace writes the coordinator's merged, offset-corrected record
// stream as TraceDir/fleet.trace.jsonl — the unified fleet timeline. Unlike
// the per-worker files (written by each worker on exit), this merge includes
// every batch a killed worker streamed before dying. Best-effort: a launch
// never fails over its trace artifact.
func writeFleetTrace(spec LaunchSpec, recs []obs.Record, clockErr int64, logf func(string, ...any)) {
	if spec.Job.TraceDir == "" || len(recs) == 0 {
		return
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].TS < recs[j].TS })
	types := map[string]bool{}
	meta := obs.Meta{
		Label:      "mp-fleet",
		Ranks:      spec.Job.Ranks,
		ClockErrNS: clockErr,
	}
	for _, r := range recs {
		if r.Type != "" && !types[r.Type] {
			types[r.Type] = true
			meta.Types = append(meta.Types, r.Type)
		}
	}
	if err := os.MkdirAll(spec.Job.TraceDir, 0o755); err != nil {
		logf("mp: fleet trace: %v", err)
		return
	}
	path := filepath.Join(spec.Job.TraceDir, "fleet.trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		logf("mp: fleet trace: %v", err)
		return
	}
	if err := obs.WriteJSONL(f, meta, recs); err != nil {
		f.Close()
		logf("mp: fleet trace: %v", err)
		return
	}
	if err := f.Close(); err != nil {
		logf("mp: fleet trace: %v", err)
		return
	}
	logf("mp: fleet trace: %d records -> %s", len(recs), path)
}

// syncWriter serializes writes to the launch log sink.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// workerProc is one spawned worker process plus its asynchronous wait.
type workerProc struct {
	cmd    *exec.Cmd
	waitCh chan int
}

func spawnWorker(argv []string, addr string, worker int, log io.Writer) (*workerProc, error) {
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(),
		"DECLPAT_MP_ADDR="+addr,
		fmt.Sprintf("DECLPAT_MP_WORKER=%d", worker),
	)
	cmd.Stdout = log
	cmd.Stderr = log
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &workerProc{cmd: cmd, waitCh: make(chan int, 1)}
	go func() {
		err := cmd.Wait()
		code := 0
		if err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				code = ee.ExitCode() // -1 when killed by a signal
			} else {
				code = -1
			}
		}
		p.waitCh <- code
	}()
	return p, nil
}

// reapGrace bounds how long a worker gets to exit on its own after the
// attempt ended before the launcher SIGKILLs it.
const reapGrace = 5 * time.Second

// reapWorkers joins every worker process, escalating to SIGKILL after the
// grace period, and logs each exit code with its meaning — the launcher's
// record of *why* it is respawning (satellite: exit-code classification).
func reapWorkers(procs []*workerProc, logf func(string, ...any)) []int {
	codes := make([]int, len(procs))
	for w, p := range procs {
		if p == nil {
			codes[w] = -1
			continue
		}
		select {
		case code := <-p.waitCh:
			codes[w] = code
		case <-time.After(reapGrace):
			p.cmd.Process.Kill()
			codes[w] = <-p.waitCh
		}
		logf("mp: worker %d exited: %s", w, describeExit(codes[w]))
	}
	return codes
}

// Worker process exit codes (RunWorker and cmd/declpat-worker).
const (
	// ExitClean: the run completed (or the worker departed gracefully after
	// a SIGTERM drain).
	ExitClean = 0
	// ExitFatal: an unclassified fatal error (bad job, dial failure).
	ExitFatal = 1
	// ExitUsage: bad command line / missing environment.
	ExitUsage = 2
	// ExitRestart: the fleet aborted (a peer died or a fault was reported);
	// the worker exited so the launcher can respawn it.
	ExitRestart = 3
	// ExitPeerClosed: the control (or relay) peer closed the connection.
	ExitPeerClosed = 4
	// ExitDecode: a control (or relay) frame failed to decode — protocol
	// damage, distinct from a dead peer.
	ExitDecode = 5
)

func describeExit(code int) string {
	switch code {
	case ExitClean:
		return "code 0 (clean)"
	case ExitFatal:
		return "code 1 (fatal error)"
	case ExitUsage:
		return "code 2 (usage)"
	case ExitRestart:
		return "code 3 (restart requested: fleet aborted)"
	case ExitPeerClosed:
		return "code 4 (control peer closed)"
	case ExitDecode:
		return "code 5 (control frame decode failure)"
	case -1:
		return "killed by signal"
	}
	return fmt.Sprintf("code %d", code)
}

// assemble turns the coordinator's collected result vectors into the
// algorithm's output. For cc the two gathered vectors (pnt, chg) are
// resolved into component labels here — the paper's final rewrite is "not a
// graph computation" (§II-B), so the launcher performs it from the full
// label tables — and canonicalized (CC's raw root labels are race-dependent;
// the induced partition is the deterministic output).
func assemble(job JobSpec, results map[int][]int64) ([][]int64, error) {
	idxs := vecIndices(results)
	want := 1
	if job.Algo == "cc" {
		want = 2
	}
	if len(idxs) != want {
		return nil, fmt.Errorf("mp: collected %d result vectors for %s, want %d", len(idxs), job.Algo, want)
	}
	if job.Algo != "cc" {
		return [][]int64{results[idxs[0]]}, nil
	}
	pnt, chg := results[0], results[1]
	if len(pnt) != len(chg) {
		return nil, fmt.Errorf("mp: cc result vectors disagree: %d pnt, %d chg entries", len(pnt), len(chg))
	}
	comp := make([]int64, len(pnt))
	for v := range pnt {
		lbl := pnt[v]
		for i := 0; i < 64; i++ {
			if lbl < 0 || int(lbl) >= len(chg) {
				return nil, fmt.Errorf("mp: cc rewrite escaped the label table at vertex %d (label %d)", v, lbl)
			}
			next := chg[lbl]
			if next == lbl {
				break
			}
			lbl = next
		}
		comp[v] = lbl
	}
	return [][]int64{canonicalize(comp)}, nil
}

// canonicalize relabels a component vector by smallest member (the same
// normalization the chaos harness applies; duplicated because chaos imports
// this package for its process-kill dimension).
func canonicalize(comp []int64) []int64 {
	min := make(map[int64]int64)
	for v, c := range comp {
		if m, ok := min[c]; !ok || int64(v) < m {
			min[c] = int64(v)
		}
	}
	out := make([]int64, len(comp))
	for v, c := range comp {
		out[v] = min[c]
	}
	return out
}
