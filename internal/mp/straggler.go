package mp

import (
	"fmt"
	"sync"

	"declpat/internal/obs"
)

// Live straggler detection: the coordinator folds the kernel-phase spans
// streamed in trace batches into per-(epoch, rank) busy time, and emits one
// imbalance summary per epoch once every rank has reported. Durations are
// clock-offset-free (a span's length is the same on every timebase), so the
// summary is exact even while the offset estimates are still converging.

// StragglerStat is one epoch's imbalance summary across the fleet.
type StragglerStat struct {
	Epoch   int64
	Ranks   int   // ranks that reported a kernel span
	MeanNS  int64 // mean per-rank kernel time
	MaxNS   int64 // slowest rank's kernel time
	MinNS   int64
	SlowRank  int     // global rank of the straggler
	Imbalance float64 // MaxNS / MeanNS (1.0 = perfectly balanced)
	PerRank   map[int]int64
}

func (s StragglerStat) String() string {
	return fmt.Sprintf("epoch %d: imbalance %.2f (slowest rank %d at %.2fms, mean %.2fms, %d ranks)",
		s.Epoch, s.Imbalance, s.SlowRank, float64(s.MaxNS)/1e6, float64(s.MeanNS)/1e6, s.Ranks)
}

// stragglerTracker accumulates streamed phase data. Owned by the coordinator
// event loop for folding; the mutex lets the launcher read latest stats from
// another goroutine (fleet /metrics).
type stragglerTracker struct {
	mu       sync.Mutex
	ranks    int
	perEpoch map[int64]map[int]int64
	emitted  map[int64]bool
	latest   StragglerStat
	has      bool
}

func newStragglerTracker(ranks int) *stragglerTracker {
	return &stragglerTracker{
		ranks:    ranks,
		perEpoch: map[int64]map[int]int64{},
		emitted:  map[int64]bool{},
	}
}

// fold consumes one trace batch's records and returns the summaries of any
// epochs completed by it (all ranks reported, not yet emitted). Only kernel
// spans count: they are the substrate's one-per-rank-per-epoch measure of
// epoch body time, while collect/build_csr/emit nest inside them and barrier
// measures waiting (a straggler's peers have long barriers — the straggler
// itself has the long kernel).
func (t *stragglerTracker) fold(recs []obs.Record) []StragglerStat {
	t.mu.Lock()
	defer t.mu.Unlock()
	touched := map[int64]bool{}
	for _, r := range recs {
		if r.Kind != "phase" || r.Type != obs.PhaseKernel.String() {
			continue
		}
		epoch := r.Arg2
		m := t.perEpoch[epoch]
		if m == nil {
			m = map[int]int64{}
			t.perEpoch[epoch] = m
		}
		m[r.Rank] += r.Dur
		touched[epoch] = true
	}
	var out []StragglerStat
	for epoch := range touched {
		if t.emitted[epoch] || len(t.perEpoch[epoch]) < t.ranks {
			continue
		}
		st := t.summarize(epoch)
		t.emitted[epoch] = true
		t.latest = st
		t.has = true
		out = append(out, st)
		delete(t.perEpoch, epoch)
	}
	return out
}

// summarize builds one epoch's stat. Caller holds mu.
func (t *stragglerTracker) summarize(epoch int64) StragglerStat {
	m := t.perEpoch[epoch]
	st := StragglerStat{Epoch: epoch, Ranks: len(m), PerRank: m, SlowRank: -1}
	var sum int64
	first := true
	for rank, ns := range m {
		sum += ns
		if ns > st.MaxNS {
			st.MaxNS = ns
			st.SlowRank = rank
		}
		if first || ns < st.MinNS {
			st.MinNS = ns
			first = false
		}
	}
	if len(m) > 0 {
		st.MeanNS = sum / int64(len(m))
	}
	if st.MeanNS > 0 {
		st.Imbalance = float64(st.MaxNS) / float64(st.MeanNS)
	}
	return st
}

// Latest returns the most recently completed epoch's summary.
func (t *stragglerTracker) Latest() (StragglerStat, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.latest, t.has
}
