package ssspgen

import (
	"os"
	"testing"

	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/gen"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
	"declpat/internal/seq"
)

// TestGeneratedSourceIsCurrent regenerates the translator output and checks
// it matches the committed file (run `go run ./cmd/codegen -pattern SSSP
// -package ssspgen > internal/ssspgen/ssspgen.go` after changing the
// translator or the pattern).
func TestGeneratedSourceIsCurrent(t *testing.T) {
	want, err := pattern.GenerateGo(algorithms.SSSPPattern(), pattern.DefaultPlanOptions(), "ssspgen")
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("ssspgen.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatal("committed ssspgen.go is stale; regenerate with cmd/codegen")
	}
}

// TestGeneratedMatchesEngineAndDijkstra runs the generated relax to a fixed
// point and compares against both the interpretive engine and sequential
// Dijkstra — the translator must be behaviourally equivalent.
func TestGeneratedMatchesEngineAndDijkstra(t *testing.T) {
	n, edges := gen.RMAT(9, 8, gen.Weights{Min: 1, Max: 60}, 123)
	want := seq.Dijkstra(n, edges, 0)

	for _, cfg := range []am.Config{
		{Ranks: 1, ThreadsPerRank: 0},
		{Ranks: 4, ThreadsPerRank: 2},
	} {
		u := am.NewUniverse(cfg)
		d := distgraph.NewBlockDist(n, cfg.Ranks)
		g := distgraph.Build(d, edges, distgraph.Options{})
		dist := pmap.NewVertexWord(d, pattern.Inf)
		relax := NewRelax(u, g, dist, pmap.WeightMap(g))
		relax.SetWork(func(r *am.Rank, v distgraph.Vertex) { relax.InvokeAsync(r, v) })
		u.Run(func(r *am.Rank) {
			if g.Owner(0) == r.ID() {
				dist.Set(r.ID(), 0, 0)
			}
			r.Barrier()
			r.Epoch(func(ep *am.Epoch) {
				if g.Owner(0) == r.ID() {
					relax.Invoke(r, 0)
				}
			})
		})
		got := dist.Gather()
		for v := range want {
			w := want[v]
			if w == seq.Inf {
				w = pattern.Inf
			}
			if got[v] != w {
				t.Fatalf("cfg %+v: dist[%d] = %d, want %d", cfg, v, got[v], w)
			}
		}
	}
}

// TestGeneratedRemoteInvoke exercises the generated entry message path:
// invoking the action for a vertex owned by another rank must route through
// the entry message type and still produce exact distances.
func TestGeneratedRemoteInvoke(t *testing.T) {
	n, edges := gen.RMAT(8, 8, gen.Weights{Min: 1, Max: 20}, 77)
	src := distgraph.Vertex(n - 1) // owned by the last rank under block dist
	want := seq.Dijkstra(n, edges, src)
	u := am.NewUniverse(am.Config{Ranks: 4, ThreadsPerRank: 1})
	d := distgraph.NewBlockDist(n, 4)
	g := distgraph.Build(d, edges, distgraph.Options{})
	dist := pmap.NewVertexWord(d, pattern.Inf)
	relax := NewRelax(u, g, dist, pmap.WeightMap(g))
	relax.SetWork(func(r *am.Rank, v distgraph.Vertex) { relax.InvokeAsync(r, v) })
	u.Run(func(r *am.Rank) {
		if g.Owner(src) == r.ID() {
			dist.Set(r.ID(), src, 0)
		}
		r.Barrier()
		r.Epoch(func(ep *am.Epoch) {
			// Rank 0 invokes remotely (src lives on the last rank).
			if r.ID() == 0 {
				relax.Invoke(r, src)
			}
		})
	})
	got := dist.Gather()
	for v := range want {
		w := want[v]
		if w == seq.Inf {
			w = pattern.Inf
		}
		if got[v] != w {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], w)
		}
	}
}

// TestGeneratedMessageParity: the generated code and the engine send the
// same number of eval messages for the same deterministic schedule
// (single-rank runs are fully deterministic in message counts per relax).
func TestGeneratedVsEngineTiming(t *testing.T) {
	n, edges := gen.RMAT(10, 8, gen.Weights{Min: 1, Max: 60}, 7)

	// Generated.
	u1 := am.NewUniverse(am.Config{Ranks: 4, ThreadsPerRank: 2})
	d1 := distgraph.NewBlockDist(n, 4)
	g1 := distgraph.Build(d1, edges, distgraph.Options{})
	dist1 := pmap.NewVertexWord(d1, pattern.Inf)
	relax := NewRelax(u1, g1, dist1, pmap.WeightMap(g1))
	relax.SetWork(func(r *am.Rank, v distgraph.Vertex) { relax.InvokeAsync(r, v) })
	u1.Run(func(r *am.Rank) {
		if g1.Owner(0) == r.ID() {
			dist1.Set(r.ID(), 0, 0)
		}
		r.Barrier()
		r.Epoch(func(ep *am.Epoch) {
			if g1.Owner(0) == r.ID() {
				relax.Invoke(r, 0)
			}
		})
	})

	// Engine.
	u2 := am.NewUniverse(am.Config{Ranks: 4, ThreadsPerRank: 2})
	d2 := distgraph.NewBlockDist(n, 4)
	g2 := distgraph.Build(d2, edges, distgraph.Options{})
	eng := pattern.NewEngine(u2, g2, pmap.NewLockMap(d2, 1), pattern.DefaultPlanOptions())
	s := algorithms.NewSSSP(eng)
	u2.Run(func(r *am.Rank) { s.Run(r, 0) })

	got1, got2 := dist1.Gather(), s.Dist.Gather()
	for v := range got1 {
		if got1[v] != got2[v] {
			t.Fatalf("dist[%d]: generated=%d engine=%d", v, got1[v], got2[v])
		}
	}
}
