package chaos

import (
	"fmt"
	"testing"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/gen"
	"declpat/internal/harness"
	"declpat/internal/seq"
)

// baseSeed drives every seed in this file (workloads and fault plans) via
// harness.DeriveSeed; failure messages include the derived fault seed.
const baseSeed = 2026

func workload(tb testing.TB, scale, ef int) Workload {
	tb.Helper()
	n, edges := gen.RMAT(scale, ef, gen.Weights{Min: 1, Max: 100},
		harness.DeriveSeed(baseSeed, "chaos/workload"))
	return Workload{N: n, Edges: edges}
}

// faultGrid is the acceptance grid: drop rates up to 20% with duplication
// and reordering enabled throughout.
func faultGrid(label string) []*am.FaultPlan {
	var plans []*am.FaultPlan
	for _, drop := range []float64{0.01, 0.05, 0.20} {
		plans = append(plans, &am.FaultPlan{
			Seed:  harness.DeriveSeed(baseSeed, fmt.Sprintf("%s/drop=%g", label, drop)),
			Drop:  drop,
			Dup:   0.10,
			Delay: 0.10,
		})
	}
	return plans
}

func scenarios(plan *am.FaultPlan) []Scenario {
	return []Scenario{
		{Ranks: 4, Threads: 2, Coalesce: 4, Detector: am.DetectorAtomic, Plan: plan},
		{Ranks: 3, Threads: 0, Coalesce: 4, Detector: am.DetectorFourCounter, Plan: plan},
	}
}

// check asserts got is bit-identical to the fault-free result, naming the
// scenario (including the fault seed) on failure.
func check(t *testing.T, alg string, sc Scenario, got, want []int64) {
	t.Helper()
	if !Equal(got, want) {
		d := Diff(got, want, 5)
		t.Fatalf("%s under %s: results diverge from fault-free run at %d vertices (first %v); rerun with this scenario's seed to reproduce",
			alg, sc, len(Diff(got, want, len(got))), d)
	}
}

func TestBFSUnderChaos(t *testing.T) {
	w := workload(t, 9, 8)
	src := distgraph.Vertex(3)
	for _, plan := range faultGrid("bfs") {
		for _, sc := range scenarios(plan) {
			base := sc
			base.Plan = nil
			want, _ := RunBFS(w, base, src)
			got, stats := RunBFS(w, sc, src)
			check(t, "BFS", sc, got, want)
			if plan.Drop >= 0.05 && stats.Retransmits == 0 {
				t.Fatalf("BFS under %s: no retransmits at %g%% drop — faults not injected?",
					sc, 100*plan.Drop)
			}
		}
	}
}

func TestSSSPUnderChaos(t *testing.T) {
	w := workload(t, 9, 8)
	src := distgraph.Vertex(3)
	// Validate the baseline itself against Dijkstra once.
	want, _ := RunSSSP(w, Scenario{Ranks: 4, Threads: 2, Detector: am.DetectorAtomic}, src, 30)
	dij := seq.Dijkstra(w.N, w.Edges, src)
	for v, d := range dij {
		if d == seq.Inf {
			continue
		}
		if want[v] != d {
			t.Fatalf("fault-free SSSP disagrees with Dijkstra at %d", v)
		}
	}
	for _, plan := range faultGrid("sssp") {
		for _, sc := range scenarios(plan) {
			base := sc
			base.Plan = nil
			want, _ := RunSSSP(w, base, src, 30)
			got, _ := RunSSSP(w, sc, src, 30)
			check(t, "SSSP", sc, got, want)
		}
	}
}

func TestCCUnderChaos(t *testing.T) {
	w := workload(t, 9, 8)
	for _, plan := range faultGrid("cc") {
		for _, sc := range scenarios(plan) {
			base := sc
			base.Plan = nil
			want, _ := RunCC(w, base)
			got, _ := RunCC(w, sc)
			check(t, "CC", sc, got, want)
		}
	}
}

// TestCorruptionUnderChaos routes the pattern engine's messages through the
// gob wire transport and corrupts payloads in flight: the checksum must
// catch every corruption and retransmits must recover exact results.
func TestCorruptionUnderChaos(t *testing.T) {
	w := workload(t, 8, 6)
	src := distgraph.Vertex(1)
	plan := &am.FaultPlan{
		Seed:    harness.DeriveSeed(baseSeed, "corrupt"),
		Drop:    0.05,
		Corrupt: 0.15,
	}
	sc := Scenario{Ranks: 3, Threads: 1, Coalesce: 4, Detector: am.DetectorAtomic,
		Plan: plan, GobWire: true}
	base := Scenario{Ranks: 3, Threads: 1, Coalesce: 4, Detector: am.DetectorAtomic,
		GobWire: true}
	want, _ := RunBFS(w, base, src)
	got, stats := RunBFS(w, sc, src)
	check(t, "BFS+gob", sc, got, want)
	if stats.CorruptionsDetected == 0 {
		t.Fatalf("no corruptions detected at 15%% corruption (seed %d)", plan.Seed)
	}
}

// TestWireCodecsUnderChaos runs BFS/SSSP/CC through both wire codecs under
// drop+dup+delay+corrupt faults on both detectors: every codec's result must
// be bit-identical to the in-memory fault-free run (and therefore to the
// other codec's), and the corruption checksum must actually fire.
func TestWireCodecsUnderChaos(t *testing.T) {
	w := workload(t, 8, 6)
	src := distgraph.Vertex(3)
	plan := &am.FaultPlan{
		Seed:    harness.DeriveSeed(baseSeed, "wirecodec"),
		Drop:    0.05,
		Dup:     0.10,
		Delay:   0.10,
		Corrupt: 0.10,
	}
	for _, det := range []am.DetectorKind{am.DetectorAtomic, am.DetectorFourCounter} {
		for _, codec := range []string{"gob", "fixed"} {
			sc := Scenario{Ranks: 3, Threads: 1, Coalesce: 4, Detector: det,
				Plan: plan, WireCodec: codec}
			base := sc
			base.Plan = nil
			base.WireCodec = ""

			want, _ := RunBFS(w, base, src)
			got, stats := RunBFS(w, sc, src)
			check(t, "BFS+"+codec, sc, got, want)
			if stats.CorruptionsDetected == 0 {
				t.Fatalf("BFS under %s: no corruptions detected at 10%% corruption", sc)
			}

			wantD, _ := RunSSSP(w, base, src, 30)
			gotD, _ := RunSSSP(w, sc, src, 30)
			check(t, "SSSP+"+codec, sc, gotD, wantD)

			wantC, _ := RunCC(w, base)
			gotC, _ := RunCC(w, sc)
			check(t, "CC+"+codec, sc, gotC, wantC)
		}
	}
}

// TestWireCodecCrashRecovery crosses the fixed codec with the crash-stop
// schedules: pooled wire buffers and checkpoint/replay must coexist, and
// replayed results must stay bit-identical to the fault-free run.
func TestWireCodecCrashRecovery(t *testing.T) {
	w := workload(t, 9, 8)
	src := distgraph.Vertex(3)
	for name, plan := range crashSchedules() {
		for _, sc := range recoveryScenarios(plan) {
			sc.WireCodec = "fixed"
			t.Run(fmt.Sprintf("%s/%s", name, sc.Detector), func(t *testing.T) {
				base := sc
				base.Plan, base.Recovery, base.WireCodec = nil, false, ""
				want, _ := RunBFS(w, base, src)
				got, stats := RunBFS(w, sc, src)
				check(t, "BFS+fixed", sc, got, want)
				checkRecovered(t, "BFS+fixed", sc, stats)

				wantD, _ := RunSSSP(w, base, src, 30)
				gotD, _ := RunSSSP(w, sc, src, 30)
				check(t, "SSSP+fixed", sc, gotD, wantD)
			})
		}
	}
}

// TestChaosResultsDeterministic runs the same faulty scenario twice and
// requires bit-identical results — the reliable protocol makes the
// *outcome* a pure function of (workload, seed), even though scheduling
// varies between runs.
func TestChaosResultsDeterministic(t *testing.T) {
	w := workload(t, 9, 8)
	plan := faultGrid("determinism")[2] // 20% drop
	for _, sc := range scenarios(plan) {
		a, _ := RunSSSP(w, sc, 7, 25)
		b, _ := RunSSSP(w, sc, 7, 25)
		check(t, "SSSP(rerun)", sc, a, b)
	}
}
