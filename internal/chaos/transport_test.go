package chaos

import (
	"net"
	"testing"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/harness"
)

// Transport acceptance matrix: the same algorithms over the in-process
// channel transport, Unix-domain sockets, and TCP loopback — where every
// envelope is framed, CRC-sealed, and crosses a kernel socket — must produce
// bit-identical results on both termination detectors, including under
// seeded connection kills, link flaps, and one-way partitions.

// requireLoopback skips socket scenarios in sandboxes that forbid binding
// loopback listeners.
func requireLoopback(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback sockets unavailable: %v", err)
	}
	ln.Close()
}

// transportAlgos names the three algorithm runners as result-vector
// functions of a scenario.
func transportAlgos(w Workload) map[string]func(Scenario) ([]int64, am.Snapshot) {
	src := distgraph.Vertex(3)
	return map[string]func(Scenario) ([]int64, am.Snapshot){
		"BFS":  func(sc Scenario) ([]int64, am.Snapshot) { return RunBFS(w, sc, src) },
		"SSSP": func(sc Scenario) ([]int64, am.Snapshot) { return RunSSSP(w, sc, src, 30) },
		"CC":   func(sc Scenario) ([]int64, am.Snapshot) { return RunCC(w, sc) },
	}
}

// flakySockFaults is the seeded disconnect + flap schedule (deterministic in
// frame counts, so reproducible without any clock): one-shot connection
// kills on two links plus a link that dies every 7th frame, three times.
func flakySockFaults() *am.SockFaultPlan {
	return &am.SockFaultPlan{
		Disconnects: []am.SockDisconnect{
			{Src: 0, Dest: 1, AfterFrames: 5},
			{Src: 2, Dest: 0, AfterFrames: 9},
		},
		Flaps: []am.SockFlap{{Src: 1, Dest: 2, Period: 7, Count: 3}},
	}
}

func TestTransportMatrix(t *testing.T) {
	requireLoopback(t)
	w := workload(t, 9, 8)
	for alg, run := range transportAlgos(w) {
		for _, det := range []am.DetectorKind{am.DetectorAtomic, am.DetectorFourCounter} {
			base := Scenario{Ranks: 3, Threads: 2, Coalesce: 4, Detector: det}
			want, _ := run(base)
			for _, tr := range []string{"unix", "tcp"} {
				for name, faults := range map[string]*am.SockFaultPlan{
					"clean": nil, "flaky": flakySockFaults(),
				} {
					if testing.Short() && (tr == "tcp" || name == "clean") {
						continue
					}
					t.Run(alg+"/"+det.String()+"/"+tr+"/"+name, func(t *testing.T) {
						sc := base
						sc.Transport = tr
						sc.SockFaults = faults
						got, stats := run(sc)
						check(t, alg, sc, got, want)
						if stats.WireBytes == 0 {
							t.Fatalf("%s under %s: no wire bytes on a socket transport", alg, sc)
						}
						if faults != nil {
							if stats.Reconnects == 0 {
								t.Fatalf("%s under %s: disconnect schedule never reconnected (stats %+v)", alg, sc, stats)
							}
							if stats.FramesDropped == 0 {
								t.Fatalf("%s under %s: disconnect schedule dropped no frames (stats %+v)", alg, sc, stats)
							}
						}
					})
				}
			}
		}
	}
}

// TestTransportPartitionEscalation black-holes one direction mid-run with no
// closing frame: retransmits die against the partition until the ceiling
// raises a rank fault, recovery rolls the epoch back and heals the window,
// and the replay must still match the channel-transport result bit for bit
// on both detectors.
func TestTransportPartitionEscalation(t *testing.T) {
	requireLoopback(t)
	w := workload(t, 9, 8)
	src := distgraph.Vertex(3)
	for _, det := range []am.DetectorKind{am.DetectorAtomic, am.DetectorFourCounter} {
		t.Run(det.String(), func(t *testing.T) {
			base := Scenario{Ranks: 3, Threads: 2, Coalesce: 4, Detector: det}
			want, _ := RunBFS(w, base, src)
			sc := base
			sc.Transport = "tcp"
			sc.SockFaults = &am.SockFaultPlan{
				Partitions: []am.SockPartition{{Src: 0, Dest: 1, FromFrame: 3, ToFrame: 0}}, // open-ended
			}
			sc.Recovery = true
			sc.MaxRecoveries = 50
			// A low retransmit ceiling keeps the escalation (and so the test)
			// fast; the jitter desynchronizes the post-heal retransmit storm.
			sc.Plan = &am.FaultPlan{
				Seed:           harness.DeriveSeed(baseSeed, "transport/partition"),
				RetransmitBase: 2, MaxAttempts: 12, BackoffJitter: 0.25,
			}
			got, stats := RunBFS(w, sc, src)
			check(t, "BFS", sc, got, want)
			if stats.EpochAborts == 0 || stats.Recoveries == 0 {
				t.Fatalf("open-ended partition must escalate to checkpoint/restart, got %+v", stats)
			}
			if stats.FramesDropped == 0 {
				t.Fatalf("black-holed frames must be counted dropped, got %+v", stats)
			}
		})
	}
}
