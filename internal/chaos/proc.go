// Process-kill dimension of the chaos harness: scenarios whose fault is the
// death of an entire OS worker process, not a dropped envelope. A fleet is
// launched with mp.Launch under a seeded kill schedule and its result is
// compared bit-for-bit against the fault-free single-process reference — the
// strongest statement the harness makes: checkpoint/restart across a process
// boundary is invisible in the output.
package chaos

import (
	"fmt"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/gen"
	"declpat/internal/mp"
)

// ProcScenario is one multi-process run: a job, a fleet width, and an
// optional seeded kill.
type ProcScenario struct {
	Job      mp.JobSpec
	Workers  int
	RootSeed uint64
	// Kill schedules one worker kill on attempt 0 (nil = fault-free fleet).
	Kill *mp.KillSpec
	// WorkerCommand overrides the worker argv (empty = self-exec; the test
	// binary must call mp.MaybeWorker in TestMain).
	WorkerCommand []string
	// MaxRestarts bounds respawns (0 = launcher default).
	MaxRestarts int
}

// String names the scenario for test output.
func (sc ProcScenario) String() string {
	kill := "fault-free"
	if sc.Kill != nil {
		kill = fmt.Sprintf("kill=%s/w%d@e%d", sc.Kill.Mode, sc.Kill.Worker, sc.Kill.Epoch)
	}
	return fmt.Sprintf("%s/procs=%d/ranks=%d/%s/seed=%d",
		sc.Job.Algo, sc.Workers, sc.Job.Ranks, kill, sc.RootSeed)
}

// RunProc launches the fleet and returns its assembled result vectors plus
// the launch record (attempts, exit codes, clean departures).
func RunProc(sc ProcScenario) (*mp.LaunchResult, error) {
	return mp.Launch(mp.LaunchSpec{
		Job:           sc.Job,
		Workers:       sc.Workers,
		RootSeed:      sc.RootSeed,
		Kill:          sc.Kill,
		MaxRestarts:   sc.MaxRestarts,
		WorkerCommand: sc.WorkerCommand,
	})
}

// ReferenceProc computes the fault-free single-process reference for the same
// job: identical workload, rank count, and detector, on the trusted
// in-process transport. RunProc's vectors must equal it bit-for-bit.
func ReferenceProc(job mp.JobSpec) ([][]int64, error) {
	if err := (&job).Normalize(); err != nil {
		return nil, err
	}
	n, edges := gen.RMAT(job.Scale, job.EdgeFactor, gen.Weights{Min: job.WMin, Max: job.WMax}, job.Seed)
	w := Workload{N: n, Edges: edges}
	sc := Scenario{Ranks: job.Ranks, Threads: job.Threads, Detector: am.DetectorFourCounter}
	switch job.Algo {
	case "bfs":
		levels, _ := RunBFS(w, sc, distgraph.Vertex(job.Source))
		return [][]int64{levels}, nil
	case "sssp":
		dist, _ := RunSSSP(w, sc, distgraph.Vertex(job.Source), job.Delta)
		return [][]int64{dist}, nil
	case "cc":
		comp, _ := RunCC(w, sc)
		return [][]int64{comp}, nil
	}
	return nil, fmt.Errorf("chaos: unknown algorithm %q", job.Algo)
}
