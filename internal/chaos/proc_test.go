package chaos

import (
	"os"
	"testing"

	"declpat/internal/mp"
)

func TestMain(m *testing.M) {
	mp.MaybeWorker() // launched worker children of the process-kill scenarios
	os.Exit(m.Run())
}

// TestProcessKillDimension runs the chaos matrix's process-level fault: an
// entire OS worker SIGKILLed mid-run, with the fleet required to respawn,
// restore from the committed checkpoint, and match the fault-free
// single-process reference bit-for-bit.
func TestProcessKillDimension(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	scenarios := []ProcScenario{
		{
			Job:      mp.JobSpec{Algo: "bfs", Scale: 6, Seed: 3, Ranks: 4, Threads: 2, Source: 1},
			Workers:  2,
			RootSeed: 31,
		},
		{
			Job:      mp.JobSpec{Algo: "sssp", Scale: 6, Seed: 3, Ranks: 4, Threads: 2, Source: 1, Delta: 8},
			Workers:  2,
			RootSeed: 37,
			Kill:     &mp.KillSpec{Worker: 0, Epoch: 1, Mode: "body"},
		},
		{
			Job:      mp.JobSpec{Algo: "cc", Scale: 6, Seed: 3, Ranks: 4, Threads: 2},
			Workers:  2,
			RootSeed: 41,
			Kill:     &mp.KillSpec{Worker: 1, Epoch: 1, Mode: "entry"},
		},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.String(), func(t *testing.T) {
			res, err := RunProc(sc)
			if err != nil {
				t.Fatal(err)
			}
			if sc.Kill != nil && res.Attempts < 2 {
				t.Fatalf("killed fleet completed in %d attempt(s); the kill never landed", res.Attempts)
			}
			want, err := ReferenceProc(sc.Job)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if !Equal(res.Vectors[i], want[i]) {
					t.Fatalf("vector %d differs from reference at indices %v",
						i, Diff(res.Vectors[i], want[i], 8))
				}
			}
		})
	}
}
