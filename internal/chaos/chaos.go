// Package chaos is the fault-injection harness: it runs the pattern-based
// algorithms (BFS, SSSP, CC) on the reliable transport while the fault
// injector drops, duplicates, reorders, and corrupts envelopes, and checks
// that every run computes results identical to the fault-free run. It is
// the repo's evidence that the paper's declarative patterns — and the epoch
// / termination-detection machinery they depend on — survive a realistic
// lossy network, not just the trusted in-process simulation.
//
// All randomness is explicitly seeded: the workload generator takes a seed,
// and every FaultPlan's seed is derived from the scenario seed with
// harness.DeriveSeed, so any failure is reproducible from the seed recorded
// in the failure message.
package chaos

import (
	"fmt"
	"slices"
	"time"

	"declpat/internal/algorithms"
	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
)

// Workload is a generated input graph.
type Workload struct {
	N     int
	Edges []distgraph.Edge
}

// Scenario is one machine + fault configuration.
type Scenario struct {
	Ranks   int
	Threads int
	// Coalesce is the envelope coalescing factor (0 = universe default).
	// Small values ship many small envelopes, giving the injector more
	// targets.
	Coalesce int
	Detector am.DetectorKind
	// Plan is the fault plan; nil runs the trusted transport (the
	// fault-free baseline).
	Plan *am.FaultPlan
	// WireCodec routes the pattern engine's message type through the wire
	// transport (so Corrupt faults apply to it) with the named codec:
	// "gob" (the reflective fallback), "fixed" (the zero-reflection
	// word-schema codec), or "" for the in-memory reference transport.
	WireCodec string
	// GobWire routes the pattern engine's message type through the gob
	// wire transport. Deprecated: set WireCodec to "gob".
	GobWire bool
	// Recovery enables epoch-granular checkpoint/restart: rank faults
	// (injected crashes, dead links, contained panics) roll the damaged
	// epoch back and replay it instead of failing the run.
	Recovery bool
	// Watchdog arms the stuck-epoch watchdog (0 = off).
	Watchdog time.Duration
	// Transport selects the message backend: "" or "chan" for the
	// in-process channel transport, "unix" or "tcp" for real sockets
	// (loopback), where every envelope is framed, CRC-sealed, and crosses a
	// kernel socket. Socket scenarios default WireCodec to "fixed" — the
	// backend refuses codec-less types.
	Transport string
	// SockFaults injects socket-level failures (connection kills, one-way
	// partitions, link flaps) into a socket transport; ignored on "chan".
	SockFaults *am.SockFaultPlan
	// MaxRecoveries overrides the per-epoch recovery budget (0 = default).
	MaxRecoveries int
}

// String names the scenario for test output.
func (sc Scenario) String() string {
	wire := ""
	if sc.WireCodec != "" {
		wire = "/wire=" + sc.WireCodec
	} else if sc.GobWire {
		wire = "/wire=gob"
	}
	if sc.Transport != "" && sc.Transport != "chan" {
		wire += "/transport=" + sc.Transport
		if sc.SockFaults != nil {
			wire += fmt.Sprintf("/sockfaults=%d",
				len(sc.SockFaults.Disconnects)+len(sc.SockFaults.Partitions)+len(sc.SockFaults.Flaps))
		}
	}
	if sc.Plan == nil {
		return fmt.Sprintf("baseline/%dx%d/%s%s", sc.Ranks, sc.Threads, sc.Detector, wire)
	}
	rec := wire
	if sc.Recovery {
		rec += "/recovery"
	}
	if n := len(sc.Plan.Crashes) + len(sc.Plan.DeadLinks); n > 0 {
		rec += fmt.Sprintf("/faults=%d", n)
	}
	return fmt.Sprintf("drop=%g,dup=%g,delay=%g,corrupt=%g/%dx%d/%s/seed=%d%s",
		sc.Plan.Drop, sc.Plan.Dup, sc.Plan.Delay, sc.Plan.Corrupt,
		sc.Ranks, sc.Threads, sc.Detector, sc.Plan.Seed, rec)
}

func (sc Scenario) options() []am.Option {
	opts := []am.Option{
		am.WithThreads(sc.Threads),
		am.WithCoalesce(sc.Coalesce),
		am.WithDetector(sc.Detector),
		am.WithFaultPlan(sc.Plan),
		am.WithWatchdog(sc.Watchdog),
	}
	if sc.Recovery {
		opts = append(opts, am.WithRecovery())
	}
	if sc.MaxRecoveries > 0 {
		opts = append(opts, am.WithMaxRecoveries(sc.MaxRecoveries))
	}
	switch sc.Transport {
	case "", "chan":
	case "unix", "tcp":
		// Test-speed timings: the chaos matrix runs many scenarios, so the
		// failure machinery (heartbeats, liveness, reconnect backoff) is
		// tuned to milliseconds rather than the production defaults.
		opts = append(opts, am.WithTransport(am.SockTransport(am.SockOptions{
			Network:       sc.Transport,
			Heartbeat:     10 * time.Millisecond,
			Liveness:      100 * time.Millisecond,
			ReconnectBase: time.Millisecond,
			ReconnectMax:  10 * time.Millisecond,
			TickInterval:  200 * time.Microsecond,
			Faults:        sc.SockFaults,
		})))
	default:
		panic(fmt.Sprintf("chaos: unknown Transport %q", sc.Transport))
	}
	return opts
}

// engine builds a fresh universe + engine over w for one algorithm run.
func engine(w Workload, sc Scenario, gopts distgraph.Options) (*am.Universe, *pattern.Engine, *pmap.LockMap) {
	u := am.New(sc.Ranks, sc.options()...)
	d := distgraph.NewBlockDist(w.N, u.Ranks())
	g := distgraph.Build(d, w.Edges, gopts)
	lm := pmap.NewLockMap(d, 1)
	eng := pattern.NewEngine(u, g, lm, pattern.DefaultPlanOptions())
	codec := sc.WireCodec
	if codec == "" && sc.GobWire {
		codec = "gob"
	}
	if codec == "" && sc.Transport != "" && sc.Transport != "chan" {
		// Socket backends refuse codec-less types; the zero-reflection
		// fixed codec is the natural default for the engine's message.
		codec = "fixed"
	}
	switch codec {
	case "":
	case "gob":
		eng.MsgType().WithGobTransport()
	case "fixed":
		// WithWire auto-selects the fixed codec for the engine's
		// pointer-free message type; the assertion pins that property so a
		// future reference-typed field can't silently demote the chaos
		// matrix to the gob fallback.
		if eng.MsgType().WithWire().CodecName() != "fixed" {
			panic("chaos: pattern message type no longer has a fixed layout")
		}
	default:
		panic(fmt.Sprintf("chaos: unknown WireCodec %q", codec))
	}
	return u, eng, lm
}

// RunBFS computes BFS levels from src under sc and returns the level vector
// plus the run's transport statistics.
func RunBFS(w Workload, sc Scenario, src distgraph.Vertex) ([]int64, am.Snapshot) {
	u, eng, _ := engine(w, sc, distgraph.Options{})
	b := algorithms.NewBFS(eng)
	mustRun(sc, u.Run(func(r *am.Rank) { b.Run(r, src) }))
	return b.Level.Gather(), u.Stats.Snapshot()
}

// mustRun panics on an unexpected Run error: the harness's scenarios are all
// expected to complete (faults are either absent or recoverable), so an
// error here is a finding, not a usage mistake.
func mustRun(sc Scenario, err error) {
	if err != nil {
		panic(fmt.Sprintf("chaos: run under %s failed: %v", sc, err))
	}
}

// RunSSSP computes shortest distances from src under sc (Δ-stepping, the
// strategy with the richest epoch structure) and returns the distance
// vector plus statistics.
func RunSSSP(w Workload, sc Scenario, src distgraph.Vertex, delta int64) ([]int64, am.Snapshot) {
	u, eng, _ := engine(w, sc, distgraph.Options{})
	s := algorithms.NewSSSP(eng)
	s.UseDelta(u, delta)
	mustRun(sc, u.Run(func(r *am.Rank) { s.Run(r, src) }))
	return s.Dist.Gather(), u.Stats.Snapshot()
}

// RunCC computes connected components under sc and returns the canonical
// partition (see Canonicalize) plus statistics.
func RunCC(w Workload, sc Scenario) ([]int64, am.Snapshot) {
	u, eng, lm := engine(w, sc, distgraph.Options{Symmetrize: true})
	c := algorithms.NewCC(eng, lm)
	mustRun(sc, u.Run(func(r *am.Rank) { c.Run(r) }))
	return Canonicalize(c.Comp.Gather()), u.Stats.Snapshot()
}

// Canonicalize relabels a component vector so each class is named by its
// smallest member vertex. CC's raw root labels depend on which searches won
// the claiming races (they differ run to run even fault-free); the induced
// partition is the algorithm's deterministic output, and in canonical form
// it can be compared bit-for-bit.
func Canonicalize(comp []int64) []int64 {
	min := make(map[int64]int64)
	for v, c := range comp {
		if m, ok := min[c]; !ok || int64(v) < m {
			min[c] = int64(v)
		}
	}
	out := make([]int64, len(comp))
	for v, c := range comp {
		out[v] = min[c]
	}
	return out
}

// Diff returns the indices (up to max) where two result vectors differ, for
// failure messages.
func Diff(a, b []int64, max int) []int {
	var d []int
	for i := range a {
		if a[i] != b[i] {
			d = append(d, i)
			if len(d) == max {
				break
			}
		}
	}
	return d
}

// Equal reports whether two result vectors are bit-identical.
func Equal(a, b []int64) bool { return slices.Equal(a, b) }
