package chaos

import (
	"fmt"
	"testing"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/harness"
)

// Crash-recovery acceptance: under deterministic crash-stop schedules —
// including mid-epoch crashes with handlers half applied — every algorithm
// must recover via epoch rollback/replay and produce results bit-identical
// to the fault-free run, on both termination detectors.

// crashSchedules are the seeded crash schedules of the acceptance matrix.
// Ranks referenced here must exist in every recoveryScenarios entry.
func crashSchedules() map[string]*am.FaultPlan {
	return map[string]*am.FaultPlan{
		// Rank 1 dies the moment epoch 0 opens, before its body runs.
		"epoch-entry": {
			Seed:    harness.DeriveSeed(baseSeed, "recovery/entry"),
			Crashes: []am.Crash{{Rank: 1, Epoch: 0}},
		},
		// Mid-epoch crashes with handlers half applied, on top of a lossy
		// network: rank 2 dies after its 5th handled message of epoch 0 and
		// rank 0 after its 3rd of epoch 1 (algorithms with a single epoch
		// simply never arm the second entry).
		"mid-epoch": {
			Seed:    harness.DeriveSeed(baseSeed, "recovery/mid"),
			Drop:    0.05,
			Dup:     0.05,
			Crashes: []am.Crash{{Rank: 2, Epoch: 0, AfterHandled: 5}, {Rank: 0, Epoch: 1, AfterHandled: 3}},
		},
	}
}

// recoveryScenarios covers both detectors, threaded and unthreaded.
func recoveryScenarios(plan *am.FaultPlan) []Scenario {
	return []Scenario{
		{Ranks: 4, Threads: 2, Coalesce: 4, Detector: am.DetectorAtomic, Plan: plan, Recovery: true},
		{Ranks: 3, Threads: 0, Coalesce: 4, Detector: am.DetectorFourCounter, Plan: plan, Recovery: true},
	}
}

// checkRecovered asserts the crash schedule actually executed and was
// recovered: at least one injected crash, at least one epoch abort, at least
// one completed recovery, and checkpoints taken.
func checkRecovered(t *testing.T, alg string, sc Scenario, stats am.Snapshot) {
	t.Helper()
	if stats.RankCrashes == 0 {
		t.Fatalf("%s under %s: crash schedule never fired (handled-message thresholds too high for this workload?)", alg, sc)
	}
	if stats.EpochAborts == 0 || stats.Recoveries == 0 {
		t.Fatalf("%s under %s: crash fired but no epoch abort/recovery (aborts=%d recoveries=%d)",
			alg, sc, stats.EpochAborts, stats.Recoveries)
	}
	if stats.Checkpoints == 0 {
		t.Fatalf("%s under %s: recovery ran without checkpoints", alg, sc)
	}
}

func TestCrashRecoveryMatrix(t *testing.T) {
	w := workload(t, 9, 8)
	src := distgraph.Vertex(3)
	for name, plan := range crashSchedules() {
		for _, sc := range recoveryScenarios(plan) {
			t.Run(fmt.Sprintf("%s/%s", name, sc.Detector), func(t *testing.T) {
				base := sc
				base.Plan, base.Recovery = nil, false

				want, _ := RunBFS(w, base, src)
				got, stats := RunBFS(w, sc, src)
				check(t, "BFS", sc, got, want)
				checkRecovered(t, "BFS", sc, stats)

				wantD, _ := RunSSSP(w, base, src, 30)
				gotD, statsD := RunSSSP(w, sc, src, 30)
				check(t, "SSSP", sc, gotD, wantD)
				checkRecovered(t, "SSSP", sc, statsD)

				wantC, _ := RunCC(w, base)
				gotC, statsC := RunCC(w, sc)
				check(t, "CC", sc, gotC, wantC)
				checkRecovered(t, "CC", sc, statsC)
			})
		}
	}
}

// TestCrashRecoveryDeterministic reruns a crashy scenario and requires
// bit-identical results: recovery replay keeps the outcome a pure function
// of (workload, plan).
func TestCrashRecoveryDeterministic(t *testing.T) {
	w := workload(t, 9, 8)
	plan := crashSchedules()["mid-epoch"]
	for _, sc := range recoveryScenarios(plan) {
		a, _ := RunSSSP(w, sc, 7, 25)
		b, _ := RunSSSP(w, sc, 7, 25)
		check(t, "SSSP(rerun)", sc, a, b)
	}
}

// TestLinkDeathRecovery severs the 0→1 link for epoch 0 with a tight
// retransmit ceiling: the sender must declare the link dead (a structured
// fault, not a panic), recovery must heal the link and replay, and the
// result must match the fault-free run.
func TestLinkDeathRecovery(t *testing.T) {
	w := workload(t, 8, 6)
	src := distgraph.Vertex(1)
	plan := &am.FaultPlan{
		Seed:           harness.DeriveSeed(baseSeed, "recovery/linkdead"),
		RetransmitBase: 1,
		MaxAttempts:    4,
		DeadLinks:      []am.DeadLink{{Src: 0, Dest: 1, Epoch: 0}},
	}
	for _, sc := range recoveryScenarios(plan) {
		base := sc
		base.Plan, base.Recovery = nil, false
		want, _ := RunBFS(w, base, src)
		got, stats := RunBFS(w, sc, src)
		check(t, "BFS", sc, got, want)
		if stats.LinkDeaths == 0 {
			t.Fatalf("BFS under %s: severed link never hit the retransmit ceiling", sc)
		}
		if stats.Recoveries == 0 {
			t.Fatalf("BFS under %s: link death raised but never recovered", sc)
		}
	}
}
