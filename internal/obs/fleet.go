package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Fleet trace assembly: aligning per-process trace exports onto one timebase
// and merging them into a single record stream that the analyzers and the
// Chrome converter consume unchanged.

// TracePart is one process's contribution to a merged fleet trace: its
// records (local timestamps), the worker index, and the clock estimate that
// maps its timestamps onto the launcher timebase.
type TracePart struct {
	Meta    Meta
	Records []Record
}

// AlignRecords stamps worker onto every record and shifts timestamps by
// offset (launcher ≈ local + offset), in place, returning recs.
func AlignRecords(recs []Record, worker int, offset int64) []Record {
	for i := range recs {
		recs[i].W = worker
		recs[i].TS += offset
	}
	return recs
}

// MergeTraces aligns each part by its meta's worker/offset and merges them
// into one timestamp-sorted stream. The merged meta carries the union of the
// type tables, the widest rank range, the summed drop count, and the worst
// (largest) clock error bound among the parts.
func MergeTraces(parts []TracePart) (Meta, []Record) {
	merged := Meta{Kind: "meta"}
	var out []Record
	types := map[string]bool{}
	for _, p := range parts {
		if merged.Label == "" {
			merged.Label = p.Meta.Label
		}
		if p.Meta.Ranks > merged.Ranks {
			merged.Ranks = p.Meta.Ranks
		}
		merged.Dropped += p.Meta.Dropped
		if p.Meta.ClockErrNS > merged.ClockErrNS {
			merged.ClockErrNS = p.Meta.ClockErrNS
		}
		for _, t := range p.Meta.Types {
			if !types[t] {
				types[t] = true
				merged.Types = append(merged.Types, t)
			}
		}
		out = append(out, AlignRecords(p.Records, p.Meta.Worker, p.Meta.ClockOffsetNS)...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	for _, r := range out {
		if r.Rank+1 > merged.Ranks {
			merged.Ranks = r.Rank + 1
		}
	}
	return merged, out
}

// ReadTraceDir reads every worker-*.trace.jsonl in dir and merges them onto
// the launcher timebase via each file's meta header (offset zero — i.e. no
// correction — when a file predates clock alignment). An explicit
// fleet.trace.jsonl, if present, is preferred: it is the coordinator's own
// merge and includes workers that died without writing a per-worker file.
func ReadTraceDir(dir string) (Meta, []Record, error) {
	if fleet := filepath.Join(dir, "fleet.trace.jsonl"); fileExists(fleet) {
		f, err := os.Open(fleet)
		if err != nil {
			return Meta{}, nil, err
		}
		defer f.Close()
		return ReadJSONL(f)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "worker-*.trace.jsonl"))
	if err != nil {
		return Meta{}, nil, err
	}
	if len(paths) == 0 {
		return Meta{}, nil, fmt.Errorf("obs: no worker-*.trace.jsonl or fleet.trace.jsonl in %s", dir)
	}
	sort.Strings(paths)
	var parts []TracePart
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return Meta{}, nil, err
		}
		meta, recs, err := ReadJSONL(f)
		f.Close()
		if err != nil {
			return Meta{}, nil, fmt.Errorf("%s: %w", p, err)
		}
		parts = append(parts, TracePart{Meta: meta, Records: recs})
	}
	meta, recs := MergeTraces(parts)
	return meta, recs, nil
}

func fileExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && !st.IsDir()
}
