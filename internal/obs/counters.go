package obs

import "sync/atomic"

// cacheLine is the assumed coherence granularity. Each mutable slot is padded
// to this size so two shards (or two counters of one shard) never share a
// line; 64 bytes covers x86-64 and most arm64 parts (128-byte-line parts pay
// one extra line of false sharing between adjacent counters, never between
// shards of the same counter, which is the case that matters).
const cacheLine = 64

// padded is one cache-line-sized atomic counter cell.
type padded struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Counters is a fixed set of named counters, each sharded n ways. Writers
// pick a shard (their rank) once and increment through a Shard view; readers
// aggregate over shards with Total. Memory is shards × counters × 64 bytes.
type Counters struct {
	names  []string
	slots  []padded // shard-major: slots[shard*len(names)+id]
	shards int
}

// NewCounters allocates a counter set with the given shard count and counter
// names. Counter ids are the indexes into names.
func NewCounters(shards int, names ...string) *Counters {
	if shards < 1 {
		shards = 1
	}
	return &Counters{
		names:  names,
		slots:  make([]padded, shards*len(names)),
		shards: shards,
	}
}

// Shards returns the shard count.
func (c *Counters) Shards() int { return c.shards }

// Names returns the counter names (ids are indexes).
func (c *Counters) Names() []string { return c.names }

// Shard returns the writer view for one shard. Views are cheap values meant
// to be cached by the writer (one per rank).
func (c *Counters) Shard(i int) Shard {
	n := len(c.names)
	return Shard{slots: c.slots[i*n : (i+1)*n]}
}

// Total returns the sum of counter id over all shards.
func (c *Counters) Total(id int) int64 {
	var s int64
	for i := 0; i < c.shards; i++ {
		s += c.slots[i*len(c.names)+id].v.Load()
	}
	return s
}

// ShardTotal returns counter id of a single shard.
func (c *Counters) ShardTotal(shard, id int) int64 {
	return c.slots[shard*len(c.names)+id].v.Load()
}

// Shard is the write-side view of one shard of a Counters set.
type Shard struct {
	slots []padded
}

// Add adds d to counter id on this shard.
func (s Shard) Add(id int, d int64) { s.slots[id].v.Add(d) }

// Inc adds 1 to counter id on this shard.
func (s Shard) Inc(id int) { s.slots[id].v.Add(1) }

// Get reads counter id on this shard.
func (s Shard) Get(id int) int64 { return s.slots[id].v.Load() }
