package obs

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func sampleTelemetry() ProcessTelemetry {
	h := HistSnapshot{Bounds: []int64{10, 100}, Counts: []int64{2, 1, 1}, Count: 4, Sum: 260, Max: 150}
	return ProcessTelemetry{
		Process:  "relay",
		Addr:     "unix:///tmp/x.sock",
		PID:      4242,
		UptimeNS: 7e9,
		Counters: map[string]int64{"relay_conns": 3, "relay_bytes_to_target": 9000},
		Gauges:   map[string]GaugeValue{"relay_active_conns": {Cur: 1, Max: 2}},
		Phases:   map[string]HistSnapshot{"kernel": h},
	}
}

func TestTelemetryFrameRoundTrip(t *testing.T) {
	want := sampleTelemetry()
	var buf bytes.Buffer
	if err := WriteTelemetryFrame(&buf, want); err != nil {
		t.Fatalf("WriteTelemetryFrame: %v", err)
	}
	got, err := ReadTelemetryFrame(&buf)
	if err != nil {
		t.Fatalf("ReadTelemetryFrame: %v", err)
	}
	if got.Process != want.Process || got.PID != want.PID || got.Addr != want.Addr {
		t.Fatalf("identity fields corrupted: got %+v", got)
	}
	if got.Counters["relay_conns"] != 3 || got.Counters["relay_bytes_to_target"] != 9000 {
		t.Fatalf("counters corrupted: %v", got.Counters)
	}
	if g := got.Gauges["relay_active_conns"]; g.Cur != 1 || g.Max != 2 {
		t.Fatalf("gauge corrupted: %+v", g)
	}
	h := got.Phases["kernel"]
	if h.Count != 4 || h.Sum != 260 || h.Max != 150 || len(h.Bounds) != 2 || h.Counts[2] != 1 {
		t.Fatalf("phase histogram corrupted: %+v", h)
	}
}

func TestTelemetryFrameRejectsNewerVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTelemetryFrame(&buf, sampleTelemetry()); err != nil {
		t.Fatalf("WriteTelemetryFrame: %v", err)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint16(b[4:6], TelemetryVersion+1)
	if _, err := ReadTelemetryFrame(bytes.NewReader(b)); err == nil {
		t.Fatal("frame from a newer version must be rejected, not guessed at")
	} else if !strings.Contains(err.Error(), "version") {
		t.Fatalf("want a version error, got: %v", err)
	}
}

func TestTelemetryFrameRejectsBadLength(t *testing.T) {
	for _, n := range []uint32{0, 1, maxTelemetryFrame + 1} {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], n)
		if _, err := ReadTelemetryFrame(bytes.NewReader(hdr[:])); err == nil {
			t.Fatalf("length %d must be rejected", n)
		}
	}
}

func TestMergeTelemetry(t *testing.T) {
	dst := ProcessTelemetry{
		Process:  "coordinator",
		Counters: map[string]int64{"msgs_sent": 100},
		Gauges:   map[string]GaugeValue{"inbox": {Cur: 5, Max: 9}},
		Phases: map[string]HistSnapshot{
			"kernel": {Bounds: []int64{10, 100}, Counts: []int64{1, 0, 0}, Count: 1, Sum: 4, Max: 4},
		},
	}
	src := sampleTelemetry()
	src.Counters["msgs_sent"] = 50
	src.Gauges["inbox"] = GaugeValue{Cur: 2, Max: 20}
	if err := MergeTelemetry(&dst, &src); err != nil {
		t.Fatalf("MergeTelemetry: %v", err)
	}
	if dst.Counters["msgs_sent"] != 150 {
		t.Fatalf("shared counter must add: got %d", dst.Counters["msgs_sent"])
	}
	if dst.Counters["relay_conns"] != 3 {
		t.Fatalf("src-only counter must appear: got %d", dst.Counters["relay_conns"])
	}
	if g := dst.Gauges["inbox"]; g.Cur != 7 || g.Max != 20 {
		t.Fatalf("gauge must add Cur and max Max: %+v", g)
	}
	h := dst.Phases["kernel"]
	if h.Count != 5 || h.Sum != 264 || h.Max != 150 || h.Counts[0] != 3 {
		t.Fatalf("phase merge wrong: %+v", h)
	}
}

func TestMergeTelemetryIntoEmpty(t *testing.T) {
	var dst ProcessTelemetry
	src := sampleTelemetry()
	if err := MergeTelemetry(&dst, &src); err != nil {
		t.Fatalf("MergeTelemetry into zero value: %v", err)
	}
	if dst.Counters["relay_conns"] != 3 || dst.Phases["kernel"].Count != 4 {
		t.Fatalf("zero-value dst must adopt src maps: %+v", dst)
	}
}

func TestMergeTelemetryBoundMismatchIsPartial(t *testing.T) {
	dst := ProcessTelemetry{
		Phases: map[string]HistSnapshot{
			"kernel":  {Bounds: []int64{1, 2}, Counts: []int64{1, 0, 0}, Count: 1, Sum: 1, Max: 1},
			"barrier": {Bounds: []int64{10, 100}, Counts: []int64{1, 0, 0}, Count: 1, Sum: 3, Max: 3},
		},
	}
	src := ProcessTelemetry{
		Counters: map[string]int64{"msgs_sent": 7},
		Phases: map[string]HistSnapshot{
			"kernel":  {Bounds: []int64{10, 100}, Counts: []int64{1, 0, 0}, Count: 1, Sum: 5, Max: 5},
			"barrier": {Bounds: []int64{10, 100}, Counts: []int64{0, 1, 0}, Count: 1, Sum: 50, Max: 50},
		},
	}
	err := MergeTelemetry(&dst, &src)
	if err == nil {
		t.Fatal("bound mismatch must be reported")
	}
	if !strings.Contains(err.Error(), "kernel") {
		t.Fatalf("error must name the skipped phase: %v", err)
	}
	if dst.Phases["kernel"].Count != 1 {
		t.Fatalf("mismatched histogram must be left untouched: %+v", dst.Phases["kernel"])
	}
	if dst.Phases["barrier"].Count != 2 || dst.Counters["msgs_sent"] != 7 {
		t.Fatalf("rest of the merge must still happen: %+v", dst)
	}
}

func TestHistSnapshotMergeAdoptsBounds(t *testing.T) {
	var dst HistSnapshot
	src := HistSnapshot{Bounds: []int64{10}, Counts: []int64{1, 2}, Count: 3, Sum: 40, Max: 30}
	if err := dst.Merge(src); err != nil {
		t.Fatalf("Merge into empty: %v", err)
	}
	if dst.Count != 3 || dst.Sum != 40 || len(dst.Bounds) != 1 {
		t.Fatalf("empty receiver must adopt src: %+v", dst)
	}
	// The adoption must copy, not alias: mutating dst can't corrupt src.
	dst.Counts[0] = 99
	if src.Counts[0] != 1 {
		t.Fatal("Merge aliased the source's bucket slice")
	}
	// Merging an empty snapshot is a no-op even when bounds differ.
	before := dst.Count
	if err := dst.Merge(HistSnapshot{Bounds: []int64{1, 2, 3}}); err != nil {
		t.Fatalf("empty src must be a no-op, got: %v", err)
	}
	if dst.Count != before {
		t.Fatal("empty src changed the receiver")
	}
}

func TestHistSnapshotMergeMatchesShards(t *testing.T) {
	// Merging per-shard snapshots must equal the all-shard snapshot: the
	// cross-process merge path and the in-process aggregation path agree.
	h := NewHistogram(3, ExpBounds(1, 8)...)
	for i := 0; i < 300; i++ {
		h.Observe(i%3, int64(i))
	}
	var merged HistSnapshot
	for s := 0; s < 3; s++ {
		if err := merged.Merge(h.ShardSnapshot(s)); err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
	}
	want := h.Snapshot()
	if merged.Count != want.Count || merged.Sum != want.Sum || merged.Max != want.Max {
		t.Fatalf("merged shards %+v != full snapshot %+v", merged, want)
	}
	for i := range want.Counts {
		if merged.Counts[i] != want.Counts[i] {
			t.Fatalf("bucket %d: merged %d != snapshot %d", i, merged.Counts[i], want.Counts[i])
		}
	}
}
