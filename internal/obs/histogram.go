package obs

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// histShard is one shard's bucket array plus count/sum/max, heap-separated
// from its siblings (each shard owns its own slice) so shards never share
// lines.
type histShard struct {
	buckets []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	_       [cacheLine - 24]byte
}

// Histogram is a fixed-bucket sharded histogram. Bucket i counts observations
// v with v <= bounds[i] (and > bounds[i-1]); one implicit overflow bucket
// catches everything above the last bound. Observe is a binary search over
// the (small, fixed) bound set plus two or three atomic adds on the shard's
// own memory.
type Histogram struct {
	bounds []int64
	shards []*histShard
}

// NewHistogram allocates a histogram with the given shard count and ascending
// upper bucket bounds. It panics on an empty or unsorted bound set — bounds
// are compiled in, so this is a programmer error.
func NewHistogram(shards int, bounds ...int64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	if shards < 1 {
		shards = 1
	}
	h := &Histogram{bounds: bounds, shards: make([]*histShard, shards)}
	for i := range h.shards {
		h.shards[i] = &histShard{buckets: make([]atomic.Int64, len(bounds)+1)}
	}
	return h
}

// ExpBounds returns n strictly ascending bounds starting at lo and doubling:
// lo, 2lo, 4lo, … — the usual shape for latencies and sizes.
func ExpBounds(lo int64, n int) []int64 {
	if lo < 1 {
		lo = 1
	}
	b := make([]int64, n)
	for i := range b {
		b[i] = lo << i
	}
	return b
}

// bucketIndex returns the bucket for v: the first bound >= v, or the overflow
// bucket.
func (h *Histogram) bucketIndex(v int64) int {
	return sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
}

// Observe records v on the given shard.
func (h *Histogram) Observe(shard int, v int64) {
	s := h.shards[shard]
	s.buckets[h.bucketIndex(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
	for {
		m := s.max.Load()
		if v <= m || s.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Bounds returns the configured bucket bounds.
func (h *Histogram) Bounds() []int64 { return h.bounds }

// Snapshot aggregates all shards into a plain-value view.
func (h *Histogram) Snapshot() HistSnapshot {
	out := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.bounds)+1),
	}
	for _, s := range h.shards {
		for i := range s.buckets {
			out.Counts[i] += s.buckets[i].Load()
		}
		out.Count += s.count.Load()
		out.Sum += s.sum.Load()
		if m := s.max.Load(); m > out.Max {
			out.Max = m
		}
	}
	return out
}

// ShardSnapshot returns a plain-value view of a single shard (one rank's
// observations), with the same shape as Snapshot.
func (h *Histogram) ShardSnapshot(shard int) HistSnapshot {
	out := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.bounds)+1),
	}
	s := h.shards[shard]
	for i := range s.buckets {
		out.Counts[i] = s.buckets[i].Load()
	}
	out.Count = s.count.Load()
	out.Sum = s.sum.Load()
	out.Max = s.max.Load()
	return out
}

// HistSnapshot is an aggregated histogram view.
type HistSnapshot struct {
	Bounds []int64 // upper bounds; Counts has one extra overflow bucket
	Counts []int64
	Count  int64
	Sum    int64
	Max    int64
}

// Merge folds o into s: bucket counts, totals, and max combine so the result
// is the histogram both sides would have produced recording into one set of
// buckets. An empty receiver adopts o's bounds; an empty o is a no-op. The
// bucket bounds must otherwise match exactly — telemetry frames carry their
// bounds on the wire, so a mismatch means the peer runs a different bucket
// layout and the merge would misattribute counts.
func (s *HistSnapshot) Merge(o HistSnapshot) error {
	if o.Count == 0 && o.Max == 0 && o.Sum == 0 {
		return nil
	}
	if s.Bounds == nil && s.Count == 0 {
		s.Bounds = append([]int64(nil), o.Bounds...)
		s.Counts = append([]int64(nil), o.Counts...)
		s.Count, s.Sum, s.Max = o.Count, o.Sum, o.Max
		return nil
	}
	if len(s.Bounds) != len(o.Bounds) {
		return fmt.Errorf("obs: histogram merge: bound count mismatch (%d vs %d)", len(s.Bounds), len(o.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return fmt.Errorf("obs: histogram merge: bound %d mismatch (%d vs %d)", i, s.Bounds[i], o.Bounds[i])
		}
	}
	for i := range o.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	return nil
}

// Mean returns the mean observation, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// inside the containing bucket; the overflow bucket reports Max. Returns 0
// when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if c == 0 {
			continue
		}
		if i == len(s.Bounds) {
			return s.Max
		}
		lo := int64(0)
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := (rank - float64(cum)) / float64(c)
		return lo + int64(frac*float64(hi-lo))
	}
	return s.Max
}
