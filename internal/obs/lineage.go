package obs

import (
	"fmt"
	"sort"
	"time"

	"declpat/internal/harness"
)

// Causal message lineage.
//
// The substrate stamps every send with the lineage id of the handler
// invocation that produced it (sends from an epoch body carry a synthetic
// per-(epoch, rank) root id), and records one "handler" span per handler
// invocation carrying its own id and its parent's. Because every handler
// invocation is triggered by exactly one message, the parent links form a
// forest per epoch: roots are the epoch bodies' send sites, interior nodes
// are handler invocations, and an edge parent→child means "the message that
// started child was sent while parent was running". This file rebuilds that
// forest offline from an exported trace and derives the analyses the flat
// event stream cannot answer: which handler→send→handler chain bounded the
// epoch (the realized critical path), how deep the causal chains run, and
// where each rank's time inside the epoch went (busy vs slack).

// Lineage id scheme. Ids are uint64, 0 means "none". Root ids (sends issued
// by an epoch body rather than a handler) set bit 62 and encode the epoch
// sequence and sending rank; handler ids encode the handling rank and a
// per-rank monotonic invocation counter. The split keeps ids unique across
// ranks without any cross-rank coordination — exactly the property a real
// distributed deployment needs — and lets the reconstructor resolve a root
// parent without ever having seen a root event.
const (
	lineageRootBit  = uint64(1) << 62
	lineageRankBits = 20 // root ids: ranks up to 2^20
	lineageSeqBits  = 40 // handler ids: 2^40 invocations per rank
)

// RootLineageID returns the lineage id stamped on sends issued directly by
// an epoch body (the chain roots) during the given epoch on the given rank.
func RootLineageID(epoch int64, rank int) uint64 {
	return lineageRootBit | uint64(epoch)<<lineageRankBits | uint64(rank)
}

// HandlerLineageID returns the lineage id of the seq-th handler invocation
// on rank (seq must be >= 1 so that no handler id collides with 0 = none).
func HandlerLineageID(rank int, seq uint64) uint64 {
	return uint64(rank)<<lineageSeqBits | seq
}

// IsRootLineageID reports whether id identifies an epoch-body root.
func IsRootLineageID(id uint64) bool { return id&lineageRootBit != 0 }

// RootLineageEpoch extracts the epoch sequence from a root lineage id.
func RootLineageEpoch(id uint64) int64 {
	return int64((id &^ lineageRootBit) >> lineageRankBits)
}

// RootLineageRank extracts the sending rank from a root lineage id.
func RootLineageRank(id uint64) int {
	return int(id & (1<<lineageRankBits - 1))
}

// HandlerLineageRank extracts the handling rank from a handler lineage id.
func HandlerLineageRank(id uint64) int { return int(id >> lineageSeqBits) }

// LineageNode is one handler invocation in the reconstructed causal forest.
type LineageNode struct {
	ID     uint64
	Parent uint64 // handler id, root id, or 0 (never stamped)
	Rank   int
	Epoch  int64 // committed epoch the invocation ran in, -1 if unattributable
	Start  int64 // monotonic ns (handler entry)
	End    int64 // monotonic ns (handler return)
	Type   string
	Depth  int // root = depth 0, first handler = 1; orphans restart at 1
	Orphan bool
}

// Exec returns the handler execution time in ns.
func (n *LineageNode) Exec() int64 { return n.End - n.Start }

// rankEpoch is one rank's span inside one epoch.
type rankEpoch struct {
	begin, end int64
}

// EpochLineage groups the causal forest of one committed epoch.
type EpochLineage struct {
	Epoch int64
	Nodes []*LineageNode // sorted by Start
	// Begin / End bracket the epoch across ranks (earliest begin, latest
	// end). RankSpan holds each participating rank's own span.
	Begin, End int64
	RankSpan   map[int]rankEpoch
}

// Lineage is the reconstructed causal forest of a whole trace.
type Lineage struct {
	ByID    map[uint64]*LineageNode
	Epochs  []*EpochLineage // sorted by epoch sequence
	Orphans int             // handler events whose parent was overwritten by the ring
}

// Epoch returns the lineage of one epoch, or nil.
func (l *Lineage) Epoch(seq int64) *EpochLineage {
	for _, e := range l.Epochs {
		if e.Epoch == seq {
			return e
		}
	}
	return nil
}

// Handlers returns the total number of handler invocations reconstructed.
func (l *Lineage) Handlers() int { return len(l.ByID) }

// Connected reports whether every non-root handler event resolved its
// parent (no ring overwrite broke a chain).
func (l *Lineage) Connected() bool { return l.Orphans == 0 }

// BuildLineage reconstructs the causal forest from an exported trace. It
// needs "handler" records (Config.Lineage left on, tracing enabled); traces
// without them yield an empty Lineage. Handler events that fall outside any
// committed epoch span (e.g. an attempt that was rolled back before its
// epoch-end was recorded, or a mid-run capture) are attributed to epoch -1
// and excluded from the per-epoch analyses.
func BuildLineage(meta Meta, recs []Record) *Lineage {
	idx := epochIndex(meta, recs)
	l := &Lineage{ByID: map[uint64]*LineageNode{}}
	epochs := map[int64]*EpochLineage{}
	getEpoch := func(seq int64) *EpochLineage {
		e := epochs[seq]
		if e == nil {
			e = &EpochLineage{Epoch: seq, RankSpan: map[int]rankEpoch{}}
			epochs[seq] = e
		}
		return e
	}
	for _, r := range recs {
		switch r.Kind {
		case "epoch":
			e := getEpoch(r.Arg)
			span := rankEpoch{begin: r.TS, end: r.TS + r.Dur}
			e.RankSpan[r.Rank] = span
			if e.Begin == 0 || span.begin < e.Begin {
				e.Begin = span.begin
			}
			if span.end > e.End {
				e.End = span.end
			}
		case "handler":
			n := &LineageNode{
				ID: r.ID, Parent: r.Parent, Rank: r.Rank,
				Start: r.TS, End: r.TS + r.Dur, Type: r.Type,
				Epoch: epochOf(idx, r.Rank, r.TS),
			}
			l.ByID[n.ID] = n
		}
	}
	for _, n := range l.ByID {
		if n.Epoch >= 0 {
			getEpoch(n.Epoch).Nodes = append(getEpoch(n.Epoch).Nodes, n)
		}
	}
	// Depth: walk each unresolved chain up to a root (or an orphaned link)
	// iteratively — chains can be long, recursion is off the table.
	var stack []*LineageNode
	for _, n := range l.ByID {
		cur := n
		for cur.Depth == 0 {
			if IsRootLineageID(cur.Parent) {
				cur.Depth = 1
				break
			}
			p := l.ByID[cur.Parent]
			if p == nil { // parent overwritten by the ring (or never stamped)
				cur.Depth = 1
				cur.Orphan = true
				l.Orphans++
				break
			}
			if p.Depth != 0 {
				cur.Depth = p.Depth + 1
				break
			}
			stack = append(stack, cur)
			cur = p
		}
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			c.Depth = l.ByID[c.Parent].Depth + 1
		}
	}
	for _, e := range epochs {
		sort.Slice(e.Nodes, func(i, j int) bool { return e.Nodes[i].Start < e.Nodes[j].Start })
		l.Epochs = append(l.Epochs, e)
	}
	sort.Slice(l.Epochs, func(i, j int) bool { return l.Epochs[i].Epoch < l.Epochs[j].Epoch })
	return l
}

// PathHop is one step of a critical path: the handler invocation, the time
// the triggering message spent between its producer's return and the
// handler's entry (coalescing-buffer residence + inbox queueing + simulated
// link delay), and the handler execution time.
type PathHop struct {
	Node *LineageNode
	Wait int64 // ns from parent finish (or root send availability) to Start
	Exec int64 // ns inside the handler
}

// CriticalPath is the realized critical chain of one epoch: the backwalk
// from the causally last handler invocation to its epoch-body root. Because
// each invocation has exactly one parent, the chain is unique — it is the
// dependency sequence that actually gated the epoch's quiescence.
type CriticalPath struct {
	Epoch    int64
	Root     uint64    // root lineage id the chain starts from
	RootRank int       // rank whose epoch body issued the first send
	Hops     []PathHop // root-first
	// SpanNs is the epoch duration (slowest rank); ExecNs/WaitNs decompose
	// the chain; TailNs is the quiescence tail after the last handler
	// returned (termination detection + final barriers).
	SpanNs, ExecNs, WaitNs, TailNs int64
	Broken                         bool // chain hit an orphaned link before a root
}

// Depth returns the chain length in handler invocations.
func (p *CriticalPath) Depth() int { return len(p.Hops) }

// CriticalPathOf computes the realized critical path of one epoch. Returns
// nil when the epoch has no handler invocations (an empty epoch's duration
// is pure protocol: barriers and termination detection).
func (l *Lineage) CriticalPathOf(e *EpochLineage) *CriticalPath {
	if len(e.Nodes) == 0 {
		return nil
	}
	sink := e.Nodes[0]
	for _, n := range e.Nodes {
		if n.End > sink.End {
			sink = n
		}
	}
	cp := &CriticalPath{Epoch: e.Epoch, SpanNs: e.End - e.Begin, TailNs: e.End - sink.End}
	for cur := sink; ; {
		hop := PathHop{Node: cur, Exec: cur.Exec()}
		var prevEnd int64
		done := false
		switch {
		case IsRootLineageID(cur.Parent):
			cp.Root = cur.Parent
			cp.RootRank = RootLineageRank(cur.Parent)
			// The root send became available no earlier than the sending
			// rank's epoch entry.
			prevEnd = e.Begin
			if span, ok := e.RankSpan[cp.RootRank]; ok {
				prevEnd = span.begin
			}
			done = true
		case cur.Orphan || l.ByID[cur.Parent] == nil:
			cp.Broken = true
			prevEnd = cur.Start
			done = true
		default:
			prevEnd = l.ByID[cur.Parent].Start // refined below to parent End
		}
		if !done {
			prevEnd = l.ByID[cur.Parent].End
		}
		if w := cur.Start - prevEnd; w > 0 {
			hop.Wait = w
		}
		cp.Hops = append(cp.Hops, hop)
		cp.ExecNs += hop.Exec
		cp.WaitNs += hop.Wait
		if done {
			break
		}
		cur = l.ByID[cur.Parent]
	}
	// Reverse into root-first order.
	for i, j := 0, len(cp.Hops)-1; i < j; i, j = i+1, j-1 {
		cp.Hops[i], cp.Hops[j] = cp.Hops[j], cp.Hops[i]
	}
	return cp
}

// CriticalPaths computes the per-epoch critical paths (epochs without
// handler work are skipped).
func (l *Lineage) CriticalPaths() []*CriticalPath {
	var out []*CriticalPath
	for _, e := range l.Epochs {
		if cp := l.CriticalPathOf(e); cp != nil {
			out = append(out, cp)
		}
	}
	return out
}

// CriticalPathTable renders one row per epoch: span, chain depth, the
// decomposition of the chain into handler execution and wait, the
// quiescence tail, and the share of the epoch's span the chain explains.
func CriticalPathTable(l *Lineage) *harness.Table {
	t := harness.NewTable("per-epoch critical path (realized handler→send→handler chain)",
		"epoch", "span", "handlers", "depth", "path-exec", "path-wait", "quiesce-tail", "path/span")
	for _, e := range l.Epochs {
		cp := l.CriticalPathOf(e)
		if cp == nil {
			t.Add(e.Epoch, time.Duration(e.End-e.Begin), 0, 0,
				time.Duration(0), time.Duration(0), time.Duration(e.End-e.Begin), "-")
			continue
		}
		share := "-"
		if cp.SpanNs > 0 {
			share = fmt.Sprintf("%.0f%%", 100*float64(cp.ExecNs+cp.WaitNs+cp.TailNs)/float64(cp.SpanNs))
		}
		depth := fmt.Sprintf("%d", cp.Depth())
		if cp.Broken {
			depth += "+" // chain truncated at an orphaned link
		}
		t.Add(cp.Epoch, time.Duration(cp.SpanNs), len(e.Nodes), depth,
			time.Duration(cp.ExecNs), time.Duration(cp.WaitNs), time.Duration(cp.TailNs), share)
	}
	return t
}

// ChainTable renders a critical path hop by hop, rank by rank: where each
// link of the chain ran, how long its message waited, and how long the
// handler took. maxHops > 0 elides the middle of longer chains.
func ChainTable(cp *CriticalPath, maxHops int) *harness.Table {
	t := harness.NewTable(
		fmt.Sprintf("critical path of epoch %d (root: rank %d epoch body)", cp.Epoch, cp.RootRank),
		"hop", "rank", "type", "wait", "exec", "finish@")
	base := int64(0)
	if len(cp.Hops) > 0 {
		base = cp.Hops[0].Node.Start - cp.Hops[0].Wait
	}
	show := func(i int) {
		h := cp.Hops[i]
		t.Add(i+1, h.Node.Rank, h.Node.Type,
			time.Duration(h.Wait), time.Duration(h.Exec), time.Duration(h.Node.End-base))
	}
	if maxHops <= 0 || len(cp.Hops) <= maxHops {
		for i := range cp.Hops {
			show(i)
		}
	} else {
		head := maxHops / 2
		tail := maxHops - head
		for i := 0; i < head; i++ {
			show(i)
		}
		t.Add("...", fmt.Sprintf("(%d hops elided)", len(cp.Hops)-maxHops), "", "", "", "")
		for i := len(cp.Hops) - tail; i < len(cp.Hops); i++ {
			show(i)
		}
	}
	t.Add("(tail)", "-", "quiescence", time.Duration(cp.TailNs), time.Duration(0),
		time.Duration(cp.SpanNs))
	return t
}

// ChainDepthTable renders the chain-depth histogram: how many handler
// invocations sit at each causal depth (depth 1 = triggered directly by an
// epoch-body send), aggregated across the trace's committed epochs.
func ChainDepthTable(l *Lineage) *harness.Table {
	depths := map[int]int{}
	maxDepth := 0
	for _, e := range l.Epochs {
		for _, n := range e.Nodes {
			depths[n.Depth]++
			if n.Depth > maxDepth {
				maxDepth = n.Depth
			}
		}
	}
	t := harness.NewTable("chain-depth histogram (handler invocations per causal depth)",
		"depth", "handlers")
	for d := 1; d <= maxDepth; d++ {
		if depths[d] > 0 {
			t.Add(d, depths[d])
		}
	}
	return t
}

// RankSlackTable attributes each rank's time inside epochs: handler
// execution (busy), time on critical paths, and slack (span − busy — queue
// idling, detector spinning, barrier waits). Aggregated over the trace's
// committed epochs.
func RankSlackTable(l *Lineage) *harness.Table {
	type acc struct {
		span, busy, critical int64
		handlers             int
	}
	byRank := map[int]*acc{}
	get := func(rank int) *acc {
		a := byRank[rank]
		if a == nil {
			a = &acc{}
			byRank[rank] = a
		}
		return a
	}
	for _, e := range l.Epochs {
		for rank, span := range e.RankSpan {
			get(rank).span += span.end - span.begin
		}
		for _, n := range e.Nodes {
			a := get(n.Rank)
			a.busy += n.Exec()
			a.handlers++
		}
		if cp := l.CriticalPathOf(e); cp != nil {
			for _, h := range cp.Hops {
				get(h.Node.Rank).critical += h.Exec
			}
		}
	}
	ranks := make([]int, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	t := harness.NewTable("per-rank slack attribution (all committed epochs)",
		"rank", "handlers", "epoch-span", "busy", "on-crit-path", "slack", "busy%")
	for _, r := range ranks {
		a := byRank[r]
		busyPct := "-"
		if a.span > 0 {
			busyPct = fmt.Sprintf("%.1f%%", 100*float64(a.busy)/float64(a.span))
		}
		t.Add(r, a.handlers, time.Duration(a.span), time.Duration(a.busy),
			time.Duration(a.critical), time.Duration(a.span-a.busy), busyPct)
	}
	return t
}
