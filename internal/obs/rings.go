package obs

import (
	"sort"
	"sync"
)

// ringShard is one shard's event ring. The mutex serializes recorders on the
// same shard (concurrent handler threads of one rank) and readers; recorders
// on different shards never touch each other's state, so cross-rank recording
// is contention-free and race-free by construction.
type ringShard[T any] struct {
	mu   sync.Mutex
	buf  []T
	next int64 // total appended on this shard
	_    [cacheLine]byte
}

// Rings is a set of fixed-capacity per-shard event rings. When a shard's ring
// is full, its oldest events are overwritten — the tail of a long run is
// usually what matters.
type Rings[T any] struct {
	shards []*ringShard[T]
}

// NewRings allocates `shards` rings of `capacity` events each.
func NewRings[T any](shards, capacity int) *Rings[T] {
	if shards < 1 {
		shards = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	r := &Rings[T]{shards: make([]*ringShard[T], shards)}
	for i := range r.shards {
		r.shards[i] = &ringShard[T]{buf: make([]T, 0, capacity)}
	}
	return r
}

// Append records v on the given shard.
func (r *Rings[T]) Append(shard int, v T) {
	s := r.shards[shard]
	s.mu.Lock()
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, v)
	} else {
		s.buf[s.next%int64(cap(s.buf))] = v
	}
	s.next++
	s.mu.Unlock()
}

// Shard returns a copy of one shard's retained events, oldest first.
func (r *Rings[T]) Shard(shard int) []T {
	s := r.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	n := int64(len(s.buf))
	out := make([]T, 0, n)
	if s.next <= n {
		// Ring never wrapped: buf is already oldest-first.
		return append(out, s.buf...)
	}
	start := s.next % n
	out = append(out, s.buf[start:]...)
	return append(out, s.buf[:start]...)
}

// ShardSince returns the shard's events appended at or after the cursor
// (a total-appended count from a previous call; start with 0), oldest first,
// plus the new cursor. Events that the ring overwrote before this call are
// gone — the caller observes the gap as cursor jumps past returned length.
// This is the incremental-export path: a flusher polls each shard with its
// last cursor and ships only what is new.
func (r *Rings[T]) ShardSince(shard int, cursor int64) ([]T, int64) {
	s := r.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	n := int64(len(s.buf))
	if cursor >= s.next || n == 0 {
		return nil, s.next
	}
	oldest := s.next - n // total index of the oldest retained event
	if cursor < oldest {
		cursor = oldest
	}
	out := make([]T, 0, s.next-cursor)
	for i := cursor; i < s.next; i++ {
		if s.next <= n {
			out = append(out, s.buf[i])
		} else {
			out = append(out, s.buf[i%n])
		}
	}
	return out, s.next
}

// Merged returns all retained events across shards, stably sorted by less
// (events comparing equal keep their per-shard recording order), with
// finalize applied to each event and its merged index — the hook for
// assigning a global sequence number.
func (r *Rings[T]) Merged(less func(a, b T) bool, finalize func(i int, v T) T) []T {
	var out []T
	for shard := range r.shards {
		out = append(out, r.Shard(shard)...)
	}
	sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
	if finalize != nil {
		for i := range out {
			out[i] = finalize(i, out[i])
		}
	}
	return out
}

// Shards returns the shard count.
func (r *Rings[T]) Shards() int { return len(r.shards) }

// Recorded returns the total number of events appended across shards.
func (r *Rings[T]) Recorded() int64 {
	var total int64
	for _, s := range r.shards {
		s.mu.Lock()
		total += s.next
		s.mu.Unlock()
	}
	return total
}

// Dropped returns how many events were overwritten across shards.
func (r *Rings[T]) Dropped() int64 {
	var total int64
	for _, s := range r.shards {
		s.mu.Lock()
		if d := s.next - int64(cap(s.buf)); d > 0 {
			total += d
		}
		s.mu.Unlock()
	}
	return total
}
