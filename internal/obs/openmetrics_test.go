package obs

import (
	"strings"
	"testing"
)

func TestOMWriterFormat(t *testing.T) {
	var b strings.Builder
	o := NewOMWriter(&b)
	o.Family("declpat_msgs_total", "counter", "messages sent")
	o.SampleInt("declpat_msgs_total", []string{"process", "coordinator"}, 42)
	o.Family("declpat_depth", "gauge", "")
	o.Sample("declpat_depth", nil, 1.5)
	if err := o.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := b.String()
	want := "# HELP declpat_msgs_total messages sent\n" +
		"# TYPE declpat_msgs_total counter\n" +
		"declpat_msgs_total{process=\"coordinator\"} 42\n" +
		"# TYPE declpat_depth gauge\n" +
		"declpat_depth 1.5\n" +
		"# EOF\n"
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestOMWriterHistCumulativeBuckets(t *testing.T) {
	s := HistSnapshot{
		Bounds: []int64{500, 1000},
		Counts: []int64{3, 2, 1}, // per-bucket; exposition must be cumulative
		Count:  6,
		Sum:    5500,
	}
	var b strings.Builder
	o := NewOMWriter(&b)
	o.Family("declpat_phase_duration_seconds", "histogram", "")
	o.Hist("declpat_phase_duration_seconds", []string{"phase", "kernel"}, s, 1e-3)
	if err := o.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := b.String()
	for _, line := range []string{
		`declpat_phase_duration_seconds_bucket{phase="kernel",le="0.5"} 3`,
		`declpat_phase_duration_seconds_bucket{phase="kernel",le="1"} 5`,
		`declpat_phase_duration_seconds_bucket{phase="kernel",le="+Inf"} 6`,
		`declpat_phase_duration_seconds_sum{phase="kernel"} 5.5`,
		`declpat_phase_duration_seconds_count{phase="kernel"} 6`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("missing line %q in:\n%s", line, got)
		}
	}
	// +Inf must come from Count (includes overflow), after the bounded buckets.
	if strings.Index(got, `le="+Inf"`) < strings.Index(got, `le="1"`) {
		t.Fatalf("+Inf bucket must be last:\n%s", got)
	}
}

func TestOMWriterLabelEscaping(t *testing.T) {
	var b strings.Builder
	o := NewOMWriter(&b)
	o.SampleInt("m", []string{"path", `C:\x "y"` + "\n"}, 1)
	if err := o.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if want := `m{path="C:\\x \"y\"\n"} 1`; !strings.Contains(b.String(), want) {
		t.Fatalf("escaping wrong: got %q, want it to contain %q", b.String(), want)
	}
}

func TestMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"msgs_sent":    "msgs_sent",
		"relay.active": "relay_active",
		"99th-pct":     "_99th_pct",
		"büld":         "b_ld",
	} {
		if got := MetricName(in); got != want {
			t.Fatalf("MetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[string]int{"c": 1, "a": 2, "b": 3})
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("SortedKeys = %v", got)
	}
}
