package obs

import "sync/atomic"

// gaugeSlot is one shard of a Gauge: current value plus high-water mark, on
// its own cache line.
type gaugeSlot struct {
	cur atomic.Int64
	max atomic.Int64
	_   [cacheLine - 16]byte
}

// Gauge is a sharded up/down counter that also tracks each shard's high-water
// mark (the peak matters for queue depths and outstanding-envelope tables,
// where a between-epochs sample always reads zero). Add is two atomic ops on
// the shard's own cache line; reads aggregate.
type Gauge struct {
	shards []gaugeSlot
}

// NewGauge allocates a gauge with the given shard count.
func NewGauge(shards int) *Gauge {
	if shards < 1 {
		shards = 1
	}
	return &Gauge{shards: make([]gaugeSlot, shards)}
}

// Add adds d (which may be negative) to the shard's current value and raises
// its high-water mark if the new value exceeds it.
func (g *Gauge) Add(shard int, d int64) {
	s := &g.shards[shard]
	v := s.cur.Add(d)
	for {
		m := s.max.Load()
		if v <= m || s.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the sum of all shards' current values.
func (g *Gauge) Value() int64 {
	var s int64
	for i := range g.shards {
		s += g.shards[i].cur.Load()
	}
	return s
}

// ShardValue returns one shard's current value.
func (g *Gauge) ShardValue(shard int) int64 { return g.shards[shard].cur.Load() }

// ShardMax returns one shard's high-water mark.
func (g *Gauge) ShardMax(shard int) int64 { return g.shards[shard].max.Load() }

// Max returns the largest per-shard high-water mark. (Shards peak at
// different times, so this is the max of per-shard peaks, not the peak of
// the sum.)
func (g *Gauge) Max() int64 {
	var m int64
	for i := range g.shards {
		if v := g.shards[i].max.Load(); v > m {
			m = v
		}
	}
	return m
}

// Shards returns the shard count.
func (g *Gauge) Shards() int { return len(g.shards) }
