package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Meta is the header line of a JSONL trace export: universe shape and the
// message-type name table needed to resolve Record.Type at analysis time.
type Meta struct {
	Kind    string   `json:"kind"` // always "meta"
	Label   string   `json:"label,omitempty"`
	Ranks   int      `json:"ranks"`
	Types   []string `json:"types,omitempty"`
	Dropped int64    `json:"dropped,omitempty"` // ring-overwritten events
}

// Record is one exported trace event. TS and Dur are monotonic nanoseconds
// (Dur 0 for instants). Span records ("epoch", "deliver") carry a duration;
// everything else is a point event. Arg/Arg2 keep the substrate's raw event
// arguments; Type is the resolved message-type name where Arg is a type id.
type Record struct {
	Kind string `json:"kind"`
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur,omitempty"`
	Rank int    `json:"rank"`
	Arg  int64  `json:"arg,omitempty"`
	Arg2 int64  `json:"arg2,omitempty"`
	Type string `json:"type,omitempty"`
	// Causal lineage ("handler" records only): ID identifies the handler
	// invocation, Parent the invocation (or epoch-body root) whose send
	// triggered it. See lineage.go for the id scheme.
	ID     uint64 `json:"id,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
}

// WriteJSONL writes the meta header followed by one record per line.
func WriteJSONL(w io.Writer, meta Meta, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	meta.Kind = "meta"
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace export. The meta header is optional (its
// absence yields a zero Meta with Ranks inferred from the records).
func ReadJSONL(r io.Reader) (Meta, []Record, error) {
	var meta Meta
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(b, &probe); err != nil {
			return meta, nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		if probe.Kind == "meta" {
			if err := json.Unmarshal(b, &meta); err != nil {
				return meta, nil, fmt.Errorf("obs: line %d: %w", line, err)
			}
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return meta, nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return meta, nil, err
	}
	if meta.Ranks == 0 {
		for _, rec := range recs {
			if rec.Rank+1 > meta.Ranks {
				meta.Ranks = rec.Rank + 1
			}
		}
	}
	return meta, recs, nil
}

// ChromeEvent is one entry of the Chrome trace-event format (the JSON array
// format understood by Perfetto and chrome://tracing). Timestamps and
// durations are microseconds.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`  // instant scope ("t" = thread)
	ID   uint64         `json:"id,omitempty"` // flow-event binding id ("s"/"f")
	BP   string         `json:"bp,omitempty"` // flow binding point ("e" = enclosing slice)
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level JSON object of a Chrome trace export.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

// ToChrome converts a record stream into a Chrome trace: one process for the
// universe, one thread row per rank. Records with a duration become complete
// ("X") events; the rest become thread-scoped instants ("i"). Lineage-stamped
// "handler" records additionally emit flow-event pairs ("s" on the producing
// invocation's slice, "f" bound to the consuming one), which Perfetto renders
// as causal arrows between ranks.
func ToChrome(meta Meta, recs []Record) ChromeTrace {
	const pid = 1
	evs := make([]ChromeEvent, 0, len(recs)+meta.Ranks+1)
	// Handler index for flow-arrow sources (the producing invocation's
	// slice). Root parents (epoch-body sends) have no slice to anchor on.
	handlers := map[uint64]Record{}
	for _, rec := range recs {
		if rec.Kind == "handler" && rec.ID != 0 {
			handlers[rec.ID] = rec
		}
	}
	procName := "declpat substrate"
	if meta.Label != "" {
		procName += " — " + meta.Label
	}
	evs = append(evs, ChromeEvent{
		Name: "process_name", Ph: "M", PID: pid, TID: 0,
		Args: map[string]any{"name": procName},
	})
	for r := 0; r < meta.Ranks; r++ {
		evs = append(evs, ChromeEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: r,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
		})
	}
	for _, rec := range recs {
		name := rec.Kind
		if rec.Type != "" {
			name += ":" + rec.Type
		}
		ev := ChromeEvent{
			Name: name,
			Cat:  rec.Kind,
			TS:   float64(rec.TS) / 1e3,
			PID:  pid,
			TID:  rec.Rank,
			Args: map[string]any{"arg": rec.Arg, "arg2": rec.Arg2},
		}
		if rec.Dur > 0 || rec.Kind == "handler" {
			ev.Ph = "X"
			ev.Dur = float64(rec.Dur) / 1e3
		} else {
			ev.Ph = "i"
			ev.S = "t"
		}
		if rec.Kind == "handler" && rec.ID != 0 {
			ev.Args["id"] = rec.ID
			ev.Args["parent"] = rec.Parent
			evs = append(evs, ev)
			if p, ok := handlers[rec.Parent]; ok {
				// Bind the arrow just inside the producing slice's end (an
				// exact end timestamp could fall outside it) and at the
				// consuming slice's start; bp "e" attaches "f" to the
				// enclosing slice. The binding id is the consumer's lineage
				// id — unique, since each invocation has one parent.
				src := float64(p.TS+p.Dur) / 1e3
				if p.Dur > 0 {
					src -= 0.0005
				}
				evs = append(evs,
					ChromeEvent{Name: "lineage", Cat: "lineage", Ph: "s",
						ID: rec.ID, TS: src, PID: pid, TID: p.Rank},
					ChromeEvent{Name: "lineage", Cat: "lineage", Ph: "f", BP: "e",
						ID: rec.ID, TS: float64(rec.TS) / 1e3, PID: pid, TID: rec.Rank})
			}
			continue
		}
		evs = append(evs, ev)
	}
	return ChromeTrace{TraceEvents: evs, DisplayTimeUnit: "ns"}
}

// WriteChromeTrace converts and writes a record stream as Chrome trace JSON.
func WriteChromeTrace(w io.Writer, meta Meta, recs []Record) error {
	enc := json.NewEncoder(w)
	return enc.Encode(ToChrome(meta, recs))
}
