package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Meta is the header line of a JSONL trace export: universe shape and the
// message-type name table needed to resolve Record.Type at analysis time.
type Meta struct {
	Kind    string   `json:"kind"` // always "meta"
	Label   string   `json:"label,omitempty"`
	Ranks   int      `json:"ranks"`
	Types   []string `json:"types,omitempty"`
	Dropped int64    `json:"dropped,omitempty"` // ring-overwritten events
	// Fleet fields (multi-process runs). Worker is the hosting worker's index
	// and RankLo/RankHi its contiguous global-rank slice. ClockOffsetNS maps
	// this process's monotonic timestamps onto the launcher's timebase
	// (launcher ≈ local + offset) with ClockErrNS as the estimate's error
	// bound; both zero in single-process exports.
	Worker        int   `json:"worker,omitempty"`
	RankLo        int   `json:"rank_lo,omitempty"`
	RankHi        int   `json:"rank_hi,omitempty"`
	ClockOffsetNS int64 `json:"clock_offset_ns,omitempty"`
	ClockErrNS    int64 `json:"clock_err_ns,omitempty"`
}

// Record is one exported trace event. TS and Dur are monotonic nanoseconds
// (Dur 0 for instants). Span records ("epoch", "deliver") carry a duration;
// everything else is a point event. Arg/Arg2 keep the substrate's raw event
// arguments; Type is the resolved message-type name where Arg is a type id.
type Record struct {
	Kind string `json:"kind"`
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur,omitempty"`
	Rank int    `json:"rank"`
	Arg  int64  `json:"arg,omitempty"`
	Arg2 int64  `json:"arg2,omitempty"`
	Type string `json:"type,omitempty"`
	// Q is the query context the event was recorded under (0 outside any
	// query epoch). The analyzers group interleaved-query timelines by it.
	Q int64 `json:"q,omitempty"`
	// Causal lineage ("handler" records only): ID identifies the handler
	// invocation, Parent the invocation (or epoch-body root) whose send
	// triggered it. See lineage.go for the id scheme.
	ID     uint64 `json:"id,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	// W is the worker-process index in a merged fleet trace (0 in
	// single-process exports; worker 0's records also carry 0 — the meta
	// header and rank ranges disambiguate).
	W int `json:"w,omitempty"`
}

// WriteJSONL writes the meta header followed by one record per line.
func WriteJSONL(w io.Writer, meta Meta, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	meta.Kind = "meta"
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace export. The meta header is optional (its
// absence yields a zero Meta with Ranks inferred from the records).
func ReadJSONL(r io.Reader) (Meta, []Record, error) {
	var meta Meta
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(b, &probe); err != nil {
			return meta, nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		if probe.Kind == "meta" {
			if err := json.Unmarshal(b, &meta); err != nil {
				return meta, nil, fmt.Errorf("obs: line %d: %w", line, err)
			}
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return meta, nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return meta, nil, err
	}
	if meta.Ranks == 0 {
		for _, rec := range recs {
			if rec.Rank+1 > meta.Ranks {
				meta.Ranks = rec.Rank + 1
			}
		}
	}
	return meta, recs, nil
}

// ChromeEvent is one entry of the Chrome trace-event format (the JSON array
// format understood by Perfetto and chrome://tracing). Timestamps and
// durations are microseconds.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`  // instant scope ("t" = thread)
	ID   uint64         `json:"id,omitempty"` // flow-event binding id ("s"/"f")
	BP   string         `json:"bp,omitempty"` // flow binding point ("e" = enclosing slice)
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level JSON object of a Chrome trace export.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

// ToChrome converts a record stream into a Chrome trace: one process row per
// worker (single-process exports collapse to one), one thread row per rank.
// Records with a duration become complete ("X") events; the rest become
// thread-scoped instants ("i"). Lineage-stamped "handler" records
// additionally emit flow-event pairs ("s" on the producing invocation's
// slice, "f" bound to the consuming one), which Perfetto renders as causal
// arrows between ranks — and, in a merged fleet trace, across process rows.
func ToChrome(meta Meta, recs []Record) ChromeTrace {
	evs := make([]ChromeEvent, 0, len(recs)+meta.Ranks+1)
	// Handler index for flow-arrow sources (the producing invocation's
	// slice). Root parents (epoch-body sends) have no slice to anchor on.
	// Lineage ids are globally unique across workers (rank ranges are
	// disjoint), so one index serves the merged fleet trace too.
	handlers := map[uint64]Record{}
	fleet := false
	for _, rec := range recs {
		if rec.Kind == "handler" && rec.ID != 0 {
			handlers[rec.ID] = rec
		}
		if rec.W != 0 {
			fleet = true
		}
	}
	procName := "declpat substrate"
	if meta.Label != "" {
		procName += " — " + meta.Label
	}
	if !fleet {
		// Single process: one row named for the universe, threads for every
		// rank in the declared range (records or not).
		evs = append(evs, ChromeEvent{
			Name: "process_name", Ph: "M", PID: 1, TID: 0,
			Args: map[string]any{"name": procName},
		})
		for r := 0; r < meta.Ranks; r++ {
			evs = append(evs, ChromeEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: r,
				Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
			})
		}
	} else {
		// Fleet: one process row per observed worker (pid = W+1 so worker 0
		// keeps pid 1), thread rows for every observed (worker, rank) pair.
		seenW := map[int]bool{}
		seenT := map[[2]int]bool{}
		for _, rec := range recs {
			if !seenW[rec.W] {
				seenW[rec.W] = true
				evs = append(evs, ChromeEvent{
					Name: "process_name", Ph: "M", PID: rec.W + 1, TID: 0,
					Args: map[string]any{"name": fmt.Sprintf("%s — worker %d", procName, rec.W)},
				})
			}
			key := [2]int{rec.W, rec.Rank}
			if !seenT[key] {
				seenT[key] = true
				evs = append(evs, ChromeEvent{
					Name: "thread_name", Ph: "M", PID: rec.W + 1, TID: rec.Rank,
					Args: map[string]any{"name": fmt.Sprintf("rank %d", rec.Rank)},
				})
			}
		}
	}
	for _, rec := range recs {
		name := rec.Kind
		if rec.Type != "" {
			name += ":" + rec.Type
		}
		pid := rec.W + 1
		ev := ChromeEvent{
			Name: name,
			Cat:  rec.Kind,
			TS:   float64(rec.TS) / 1e3,
			PID:  pid,
			TID:  rec.Rank,
			Args: map[string]any{"arg": rec.Arg, "arg2": rec.Arg2},
		}
		if rec.Q != 0 {
			ev.Args["q"] = rec.Q
		}
		if rec.Dur > 0 || rec.Kind == "handler" {
			ev.Ph = "X"
			ev.Dur = float64(rec.Dur) / 1e3
		} else {
			ev.Ph = "i"
			ev.S = "t"
		}
		if rec.Kind == "handler" && rec.ID != 0 {
			ev.Args["id"] = rec.ID
			ev.Args["parent"] = rec.Parent
			evs = append(evs, ev)
			if p, ok := handlers[rec.Parent]; ok {
				// Bind the arrow just inside the producing slice's end (an
				// exact end timestamp could fall outside it) and at the
				// consuming slice's start; bp "e" attaches "f" to the
				// enclosing slice. The binding id is the consumer's lineage
				// id — unique, since each invocation has one parent.
				src := float64(p.TS+p.Dur) / 1e3
				if p.Dur > 0 {
					src -= 0.0005
				}
				evs = append(evs,
					ChromeEvent{Name: "lineage", Cat: "lineage", Ph: "s",
						ID: rec.ID, TS: src, PID: p.W + 1, TID: p.Rank},
					ChromeEvent{Name: "lineage", Cat: "lineage", Ph: "f", BP: "e",
						ID: rec.ID, TS: float64(rec.TS) / 1e3, PID: pid, TID: rec.Rank})
			}
			continue
		}
		evs = append(evs, ev)
	}
	return ChromeTrace{TraceEvents: evs, DisplayTimeUnit: "ns"}
}

// WriteChromeTrace converts and writes a record stream as Chrome trace JSON.
func WriteChromeTrace(w io.Writer, meta Meta, recs []Record) error {
	enc := json.NewEncoder(w)
	return enc.Encode(ToChrome(meta, recs))
}
