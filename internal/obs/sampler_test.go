package obs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSamplerDeltas(t *testing.T) {
	var n int64
	s := NewSampler(8, func() map[string]int64 {
		return map[string]int64{"msgs": atomic.LoadInt64(&n)}
	})
	atomic.StoreInt64(&n, 10)
	s.Tick()
	atomic.StoreInt64(&n, 25)
	s.Tick()
	w := s.Samples()
	if len(w) != 2 {
		t.Fatalf("Samples() len = %d, want 2", len(w))
	}
	// A series' first appearance reports its full cumulative value as delta.
	if w[0].Deltas["msgs"] != 10 || w[0].Values["msgs"] != 10 {
		t.Fatalf("first sample: %+v", w[0])
	}
	if w[1].Deltas["msgs"] != 15 || w[1].Values["msgs"] != 25 {
		t.Fatalf("second sample: %+v", w[1])
	}
	if w[1].TS < w[0].TS {
		t.Fatalf("timestamps must be monotone: %d then %d", w[0].TS, w[1].TS)
	}
}

func TestSamplerRingWraparound(t *testing.T) {
	var n int64
	s := NewSampler(4, func() map[string]int64 {
		return map[string]int64{"c": atomic.AddInt64(&n, 1)}
	})
	if s.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4", s.Cap())
	}
	for i := 0; i < 10; i++ {
		s.Tick()
	}
	if s.Len() != 4 {
		t.Fatalf("Len() after 10 ticks into a 4-ring = %d, want 4", s.Len())
	}
	w := s.Samples()
	if len(w) != 4 {
		t.Fatalf("Samples() len = %d, want 4", len(w))
	}
	// Ticks 7..10 survive, oldest first; deltas stay 1 across the wrap.
	for i, want := range []int64{7, 8, 9, 10} {
		if w[i].Values["c"] != want {
			t.Fatalf("sample %d value = %d, want %d (window %v)", i, w[i].Values["c"], want, w)
		}
		if w[i].Deltas["c"] != 1 {
			t.Fatalf("sample %d delta = %d, want 1", i, w[i].Deltas["c"])
		}
	}
}

func TestSamplerRate(t *testing.T) {
	var n int64
	s := NewSampler(4, func() map[string]int64 {
		return map[string]int64{"c": atomic.LoadInt64(&n)}
	})
	if s.Rate("c") != 0 {
		t.Fatal("rate with no samples must be 0")
	}
	s.Tick()
	if s.Rate("c") != 0 {
		t.Fatal("rate with one sample must be 0")
	}
	atomic.StoreInt64(&n, 1000)
	time.Sleep(10 * time.Millisecond) // a real dt so the rate is finite
	s.Tick()
	r := s.Rate("c")
	if r <= 0 {
		t.Fatalf("Rate = %v, want > 0 after 1000 increments", r)
	}
	if s.Rate("absent") != 0 {
		t.Fatal("unknown series must rate 0, not panic")
	}
}

func TestSamplerStopIdempotent(t *testing.T) {
	s := NewSampler(4, func() map[string]int64 { return nil })
	s.Stop() // never started: no-op
	s.Start(time.Millisecond)
	s.Stop()
	s.Stop() // second stop: no-op, no panic, no deadlock
	// The loop slot is free again after Stop.
	s.Start(time.Millisecond)
	s.Stop()
}

func TestSamplerStartTwicePanics(t *testing.T) {
	s := NewSampler(4, func() map[string]int64 { return nil })
	s.Start(time.Millisecond)
	defer s.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start must panic: one loop per sampler")
		}
	}()
	s.Start(time.Millisecond)
}

func TestSamplerConcurrent(t *testing.T) {
	// Ticks, reads, and a background loop racing — the race detector is the
	// assertion; the counts just keep the work honest.
	var n int64
	s := NewSampler(16, func() map[string]int64 {
		return map[string]int64{"c": atomic.AddInt64(&n, 1)}
	})
	s.Start(100 * time.Microsecond)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Tick()
				_ = s.Samples()
				_ = s.Rate("c")
				_ = s.Len()
			}
		}()
	}
	wg.Wait()
	s.Stop()
	if s.Len() == 0 {
		t.Fatal("no samples retained after concurrent ticking")
	}
}
