package obs

// Phase identifies one uniform phase of an epoch. Every algorithm and the
// substrate itself record into the same small taxonomy (the STYLE_ALGO
// phase-prefix discipline), so per-phase cost is comparable across kernels:
//
//	collect   — frontier/seed/contribution gathering before the kernel
//	build_csr — auxiliary-structure construction (CSR caches, buckets)
//	kernel    — the epoch body proper: handler execution until quiescence
//	emit      — result writeback/folds after the kernel
//	barrier   — time blocked in Rank.Barrier (includes collective waits)
//	recovery  — rollback/replay after a fault
//
// Phases are a breakdown, not a strict partition: barrier time spent inside
// an epoch attempt is also part of that attempt's kernel span.
type Phase uint8

const (
	PhaseCollect Phase = iota
	PhaseBuildCSR
	PhaseKernel
	PhaseEmit
	PhaseBarrier
	PhaseRecovery
	NumPhases // count sentinel, not a phase
)

var phaseNames = [NumPhases]string{
	PhaseCollect:  "collect",
	PhaseBuildCSR: "build_csr",
	PhaseKernel:   "kernel",
	PhaseEmit:     "emit",
	PhaseBarrier:  "barrier",
	PhaseRecovery: "recovery",
}

// String returns the phase's wire/series name.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseByName returns the phase with the given series name, or NumPhases
// when the name is unknown (e.g. a frame from a newer peer).
func PhaseByName(name string) Phase {
	for p, n := range phaseNames {
		if n == name {
			return Phase(p)
		}
	}
	return NumPhases
}

// PhaseBounds are the default duration bucket bounds for phase histograms:
// 256ns doubling up to ~0.5s. Epoch phases on simulated ranks land mid-range;
// the overflow bucket catches wedged epochs.
func PhaseBounds() []int64 { return ExpBounds(256, 21) }

// PhaseSet is one histogram per phase, each sharded per rank. The zero
// value is not usable; a nil *PhaseSet is the disabled state and Observe on
// it is a cheap no-op (callers still guard with their own gate to avoid the
// clock read).
type PhaseSet struct {
	hists [NumPhases]*Histogram
}

// NewPhaseSet allocates per-phase histograms with the given shard count and
// bucket bounds (PhaseBounds() when bounds is empty).
func NewPhaseSet(shards int, bounds ...int64) *PhaseSet {
	if len(bounds) == 0 {
		bounds = PhaseBounds()
	}
	ps := &PhaseSet{}
	for p := range ps.hists {
		ps.hists[p] = NewHistogram(shards, bounds...)
	}
	return ps
}

// Observe records a duration (ns) for a phase on a shard. No-op on nil.
func (ps *PhaseSet) Observe(p Phase, shard int, ns int64) {
	if ps == nil || p >= NumPhases {
		return
	}
	ps.hists[p].Observe(shard, ns)
}

// Histogram returns the histogram backing one phase (nil on a nil set).
func (ps *PhaseSet) Histogram(p Phase) *Histogram {
	if ps == nil || p >= NumPhases {
		return nil
	}
	return ps.hists[p]
}

// Snapshot aggregates every phase across all shards. Keys of the returned
// map are phase names; empty phases are omitted.
func (ps *PhaseSet) Snapshot() map[string]HistSnapshot {
	if ps == nil {
		return nil
	}
	out := make(map[string]HistSnapshot, NumPhases)
	for p := range ps.hists {
		s := ps.hists[p].Snapshot()
		if s.Count > 0 {
			out[Phase(p).String()] = s
		}
	}
	return out
}

// ShardSnapshot returns one shard's (rank's) view of every phase; empty
// phases are omitted.
func (ps *PhaseSet) ShardSnapshot(shard int) map[string]HistSnapshot {
	if ps == nil {
		return nil
	}
	out := make(map[string]HistSnapshot, NumPhases)
	for p := range ps.hists {
		s := ps.hists[p].ShardSnapshot(shard)
		if s.Count > 0 {
			out[Phase(p).String()] = s
		}
	}
	return out
}
