package obs

import (
	"sync"
	"time"
)

// Sample is one sampler tick: the tick's timestamp (Now() ns), the cumulative
// source values at that instant, and the deltas since the previous tick.
// Values and Deltas share keys; a series that first appears mid-run gets its
// full cumulative value as its first delta.
type Sample struct {
	TS     int64
	Values map[string]int64
	Deltas map[string]int64
}

// Sampler periodically reads a cumulative snapshot source, diffs it against
// the previous read, and stores the result in a fixed-size ring — the
// time-series memory behind live scraping. The ring never grows: once full,
// each tick overwrites the oldest sample, so a long-running universe holds a
// sliding window instead of an unbounded log. All methods are safe for
// concurrent use; sampling is off the hot path (the source reads the sharded
// counters, writers never see the sampler).
type Sampler struct {
	mu   sync.Mutex
	src  func() map[string]int64
	ring []Sample
	n    uint64 // total ticks taken; ring index is n % len(ring)
	last map[string]int64

	stop chan struct{}
	done chan struct{}
}

// NewSampler creates a sampler over src with a ring of size slots. src must
// return cumulative (monotone) series values; it is called once per tick.
func NewSampler(size int, src func() map[string]int64) *Sampler {
	if size < 1 {
		size = 1
	}
	return &Sampler{src: src, ring: make([]Sample, size)}
}

// Tick takes one sample now. Exposed so tests and pull-based exporters can
// sample without running the background loop.
func (s *Sampler) Tick() {
	cur := s.src()
	s.mu.Lock()
	defer s.mu.Unlock()
	deltas := make(map[string]int64, len(cur))
	for k, v := range cur {
		deltas[k] = v - s.last[k]
	}
	s.ring[s.n%uint64(len(s.ring))] = Sample{TS: Now(), Values: cur, Deltas: deltas}
	s.n++
	s.last = cur
}

// Start launches the background sampling loop at the given interval. It
// panics if the loop is already running (one loop per sampler).
func (s *Sampler) Start(interval time.Duration) {
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		panic("obs: sampler already started")
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.Tick()
			}
		}
	}()
}

// Stop halts the background loop and waits for it to exit. Safe to call when
// the loop was never started, and idempotent.
func (s *Sampler) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Samples returns the retained window, oldest first. The returned slice and
// its maps are snapshots — safe to hold across further ticks.
func (s *Sampler) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	size := uint64(len(s.ring))
	count := s.n
	if count > size {
		count = size
	}
	out := make([]Sample, 0, count)
	for i := s.n - count; i < s.n; i++ {
		out = append(out, s.ring[i%size])
	}
	return out
}

// Len returns the number of samples currently retained.
func (s *Sampler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n > uint64(len(s.ring)) {
		return len(s.ring)
	}
	return int(s.n)
}

// Cap returns the ring size.
func (s *Sampler) Cap() int { return len(s.ring) }

// Rate returns series name's mean per-second rate over the retained window,
// or 0 when fewer than two samples exist. Computed from the cumulative
// values at the window's edges, so overwritten middle samples don't bias it.
func (s *Sampler) Rate(name string) float64 {
	w := s.Samples()
	if len(w) < 2 {
		return 0
	}
	first, last := w[0], w[len(w)-1]
	dt := last.TS - first.TS
	if dt <= 0 {
		return 0
	}
	return float64(last.Values[name]-first.Values[name]) / (float64(dt) / 1e9)
}
