package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTrace() (Meta, []Record) {
	meta := Meta{Label: "test", Ranks: 2, Types: []string{"relax"}, Dropped: 3}
	recs := []Record{
		{Kind: "epoch", TS: 100, Dur: 900, Rank: 0, Arg: 0},
		{Kind: "epoch", TS: 120, Dur: 880, Rank: 1, Arg: 0},
		{Kind: "ship", TS: 200, Rank: 0, Arg: 0, Arg2: 64, Type: "relax"},
		{Kind: "deliver", TS: 300, Dur: 50, Rank: 1, Arg: 0, Arg2: 64, Type: "relax"},
		{Kind: "flush", TS: 400, Rank: 0},
		{Kind: "td-wave", TS: 800, Rank: 0, Arg: 1},
		{Kind: "epoch", TS: 1200, Dur: 100, Rank: 0, Arg: 1},
		{Kind: "epoch", TS: 1200, Dur: 90, Rank: 1, Arg: 1},
	}
	return meta, recs
}

func TestJSONLRoundTrip(t *testing.T) {
	meta, recs := sampleTrace()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, meta, recs); err != nil {
		t.Fatal(err)
	}
	gotMeta, gotRecs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.Ranks != 2 || gotMeta.Label != "test" || gotMeta.Dropped != 3 {
		t.Fatalf("meta = %+v", gotMeta)
	}
	if len(gotMeta.Types) != 1 || gotMeta.Types[0] != "relax" {
		t.Fatalf("types = %v", gotMeta.Types)
	}
	if len(gotRecs) != len(recs) {
		t.Fatalf("got %d records, want %d", len(gotRecs), len(recs))
	}
	for i, r := range recs {
		if gotRecs[i] != r {
			t.Fatalf("record %d: got %+v, want %+v", i, gotRecs[i], r)
		}
	}
}

func TestReadJSONLWithoutMeta(t *testing.T) {
	in := `{"kind":"ship","ts":5,"rank":3,"arg2":1}` + "\n"
	meta, recs, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Ranks != 4 {
		t.Fatalf("inferred ranks = %d, want 4", meta.Ranks)
	}
	if len(recs) != 1 || recs[0].Kind != "ship" {
		t.Fatalf("recs = %+v", recs)
	}
}

// TestChromeTraceSchema checks the exported Chrome trace against the
// trace-event format: the traceEvents array must unmarshal cleanly and every
// event must carry ph/ts/pid/tid, with spans as "X" + dur and instants as
// thread-scoped "i".
func TestChromeTraceSchema(t *testing.T) {
	meta, recs := sampleTrace()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, meta, recs); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace does not unmarshal: %v", err)
	}
	// Metadata (process + 2 threads) plus one event per record.
	if want := 3 + len(recs); len(parsed.TraceEvents) != want {
		t.Fatalf("got %d traceEvents, want %d", len(parsed.TraceEvents), want)
	}
	spans, instants := 0, 0
	for i, ev := range parsed.TraceEvents {
		for _, field := range []string{"ph", "ts", "pid", "tid", "name"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, ev)
			}
		}
		switch ev["ph"] {
		case "X":
			spans++
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("span without dur: %v", ev)
			}
		case "i":
			instants++
			if ev["s"] != "t" {
				t.Fatalf("instant without thread scope: %v", ev)
			}
		case "M":
		default:
			t.Fatalf("unexpected ph %v", ev["ph"])
		}
	}
	// 4 epoch spans + 1 deliver span; ship/flush/td-wave are instants.
	if spans != 5 || instants != 3 {
		t.Fatalf("spans=%d instants=%d, want 5/3", spans, instants)
	}
	// Type names are folded into event names.
	round := ToChrome(meta, recs)
	found := false
	for _, ev := range round.TraceEvents {
		if ev.Name == "ship:relax" {
			found = true
		}
	}
	if !found {
		t.Fatal("expected a ship:relax event name")
	}
}

func TestAnalyzeTables(t *testing.T) {
	meta, recs := sampleTrace()
	tables := Analyze(meta, recs)
	if len(tables) != 3 {
		t.Fatalf("got %d tables, want 3 (epoch, latency, rank)", len(tables))
	}
	es := tables[0].String()
	if !strings.Contains(es, "per-epoch summary") {
		t.Fatalf("missing epoch table: %s", es)
	}
	// Epoch 0 collects the ship of 64 messages and one td-wave.
	if !strings.Contains(es, "64") {
		t.Fatalf("epoch table lost the shipped batch:\n%s", es)
	}
	lat := tables[1].String()
	if !strings.Contains(lat, "relax") {
		t.Fatalf("latency table missing type name:\n%s", lat)
	}
	rank := tables[2].String()
	if !strings.Contains(rank, "imbalance") {
		t.Fatalf("rank table missing imbalance row:\n%s", rank)
	}
}

// TestEpochSummaryLinkHealthColumns: the per-epoch table surfaces the socket
// transport's link-health events (corruption, decode errors, reconnects,
// heartbeat misses) as their own columns, attributed to the enclosing epoch.
func TestEpochSummaryLinkHealthColumns(t *testing.T) {
	meta := Meta{Label: "t", Ranks: 2, Types: []string{"relax"}}
	recs := []Record{
		{Kind: "epoch", TS: 100, Dur: 900, Rank: 0, Arg: 0},
		{Kind: "epoch", TS: 100, Dur: 900, Rank: 1, Arg: 0},
		{Kind: "corrupt", TS: 200, Rank: 1, Arg: 0},
		{Kind: "decode-error", TS: 250, Rank: 1, Arg: 0},
		{Kind: "reconnect", TS: 300, Rank: 0, Arg: 1},
		{Kind: "reconnect", TS: 350, Rank: 0, Arg: 1},
		{Kind: "hb-miss", TS: 400, Rank: 1, Arg: 0},
	}
	es := EpochSummary(meta, recs).String()
	for _, col := range []string{"corrupt", "decode-err", "reconn", "hb-miss"} {
		if !strings.Contains(es, col) {
			t.Fatalf("epoch summary missing %q column:\n%s", col, es)
		}
	}
	// One row for epoch 0 carrying counts 1/1/2/1.
	if !strings.Contains(es, "2") {
		t.Fatalf("epoch summary lost the reconnect count:\n%s", es)
	}
}
