package obs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"declpat/internal/ckpt"
)

// Flight recorder: an always-on, bounded black box. Where the trace rings
// capture everything and cost accordingly (they are opt-in), the recorder
// captures only low-rate landmarks — epoch boundaries, phase transitions,
// faults, control-plane events, per-epoch counter snapshots — in fixed-size
// per-rank rings, and persists them atomically (tmp+rename, CRC-sealed, the
// checkpoint files' discipline) at epoch commits and on every fault path. A
// worker that dies SIGKILL-style therefore leaves a dump at most one epoch
// stale; one that faults, trips the watchdog, loses its transport, or drains
// on SIGTERM leaves a dump from the moment of death. declpat-trace
// -postmortem renders the dumps.

// FlightEvent is one black-box event. Kind is a short tag ("epoch-begin",
// "phase", "crash", "abort", ...); Arg/Arg2 carry the source event's raw
// arguments (for phase events: phase id and epoch).
type FlightEvent struct {
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur,omitempty"`
	Kind string `json:"kind"`
	Rank int    `json:"rank"`
	Arg  int64  `json:"arg,omitempty"`
	Arg2 int64  `json:"arg2,omitempty"`
	Note string `json:"note,omitempty"`
}

// RankPhase is a rank's in-progress phase at dump time — how a postmortem
// names the phase a killed worker died in even though the phase never closed.
type RankPhase struct {
	Rank  int    `json:"rank"`
	Phase string `json:"phase"`
	Since int64  `json:"since"` // local monotonic ns
	Epoch int64  `json:"epoch"`
}

// EpochCounters is one per-epoch counter snapshot (cumulative totals at the
// epoch's commit; diff consecutive snapshots for the epoch's deltas).
type EpochCounters struct {
	Epoch    int64            `json:"epoch"`
	TS       int64            `json:"ts"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// FlightDump is the persisted black box.
type FlightDump struct {
	Label    string `json:"label,omitempty"`
	Worker   int    `json:"worker"`
	RankLo   int    `json:"rank_lo"`
	RankHi   int    `json:"rank_hi"`
	RunID    uint64 `json:"run_id,omitempty"`
	Reason   string `json:"reason"`
	Epoch    int64  `json:"epoch"` // current epoch at dump time
	DumpedTS int64  `json:"dumped_ts"`
	WallTime string `json:"wall_time,omitempty"`
	// Clock estimate at dump time (launcher ≈ local + offset), so postmortem
	// timestamps from different workers line up like the fleet trace.
	ClockOffsetNS int64            `json:"clock_offset_ns,omitempty"`
	ClockErrNS    int64            `json:"clock_err_ns,omitempty"`
	OpenPhases    []RankPhase      `json:"open_phases,omitempty"`
	Events        []FlightEvent    `json:"events,omitempty"`
	Epochs        []EpochCounters  `json:"epochs,omitempty"`
	Counters      map[string]int64 `json:"counters,omitempty"`
	Notes         []string         `json:"notes,omitempty"`
}

// flightMagic / flightVersion seal a dump file:
//
//	"DPFR" | u8 version | u32 bodyLen | body (JSON) | u64 crc
//
// with crc = ckpt.Checksum over everything before it.
const (
	flightMagic   = "DPFR"
	flightVersion = 1
)

// flightPhaseState is one rank's open-phase cell. phase holds phase-id+1 (0 =
// no open phase) so the zero value means idle.
type flightPhaseState struct {
	phase atomic.Int64
	since atomic.Int64
	epoch atomic.Int64
	_     [cacheLine]byte
}

// FlightConfig configures a recorder.
type FlightConfig struct {
	Path     string // dump destination for Persist ("" = Persist is a no-op)
	Label    string
	Worker   int
	RankLo   int // global rank range hosted by this process
	RankHi   int
	RunID    uint64
	Capacity int // per-rank event ring capacity (default 256)
	// Counters, when set, is sampled at every EpochCommit and at dump time
	// (cumulative totals; consecutive epoch samples diff to per-epoch deltas).
	Counters func() map[string]int64
	// EpochWindow bounds the retained per-epoch counter snapshots (default 8).
	EpochWindow int
}

// FlightRecorder is safe for concurrent use by all ranks of a process.
type FlightRecorder struct {
	cfg    FlightConfig
	rings  *Rings[FlightEvent]
	phases []flightPhaseState
	epoch  atomic.Int64

	offset atomic.Int64
	errNS  atomic.Int64
	hasClk atomic.Bool

	mu     sync.Mutex // epochs ring + notes + Persist serialization
	epochs []EpochCounters
	notes  []string
	sealed bool
}

// NewFlightRecorder builds a recorder for cfg.RankHi-cfg.RankLo ranks.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	if cfg.EpochWindow <= 0 {
		cfg.EpochWindow = 8
	}
	n := cfg.RankHi - cfg.RankLo
	if n < 1 {
		n = 1
	}
	return &FlightRecorder{
		cfg:    cfg,
		rings:  NewRings[FlightEvent](n, cfg.Capacity),
		phases: make([]flightPhaseState, n),
		epoch:  atomic.Int64{},
	}
}

func (f *FlightRecorder) shard(rank int) int {
	s := rank - f.cfg.RankLo
	if s < 0 || s >= f.rings.Shards() {
		return 0
	}
	return s
}

// Record appends one event on the given global rank's ring.
func (f *FlightRecorder) Record(rank int, ev FlightEvent) {
	ev.Rank = rank
	f.rings.Append(f.shard(rank), ev)
}

// PhaseEnter marks rank as inside phase (named by the obs.Phase taxonomy)
// since ts. The cell survives until PhaseExit — a rank killed mid-phase is
// dumped with the phase still open.
func (f *FlightRecorder) PhaseEnter(rank int, phase Phase, ts int64) {
	st := &f.phases[f.shard(rank)]
	st.phase.Store(int64(phase) + 1)
	st.since.Store(ts)
	st.epoch.Store(f.epoch.Load())
}

// PhaseExit clears rank's open phase.
func (f *FlightRecorder) PhaseExit(rank int) {
	f.phases[f.shard(rank)].phase.Store(0)
}

// SetEpoch advances the recorder's current-epoch marker (used to stamp open
// phases and the dump header).
func (f *FlightRecorder) SetEpoch(epoch int64) {
	f.epoch.Store(epoch)
}

// Epoch returns the recorder's current-epoch marker.
func (f *FlightRecorder) Epoch() int64 { return f.epoch.Load() }

// EpochCommit records that epoch committed at ts and samples the counter
// snapshot into the bounded per-epoch window.
func (f *FlightRecorder) EpochCommit(epoch int64, ts int64) {
	var snap map[string]int64
	if f.cfg.Counters != nil {
		snap = f.cfg.Counters()
	}
	f.mu.Lock()
	f.epochs = append(f.epochs, EpochCounters{Epoch: epoch, TS: ts, Counters: snap})
	if len(f.epochs) > f.cfg.EpochWindow {
		f.epochs = f.epochs[len(f.epochs)-f.cfg.EpochWindow:]
	}
	f.mu.Unlock()
}

// SetClock records the current launcher-clock estimate for the dump header.
func (f *FlightRecorder) SetClock(offset, errNS int64) {
	f.offset.Store(offset)
	f.errNS.Store(errNS)
	f.hasClk.Store(true)
}

// Note appends a free-form line to the dump (bounded; oldest dropped).
func (f *FlightRecorder) Note(s string) {
	f.mu.Lock()
	f.notes = append(f.notes, s)
	if len(f.notes) > 64 {
		f.notes = f.notes[len(f.notes)-64:]
	}
	f.mu.Unlock()
}

// snapshot assembles the dump body.
func (f *FlightRecorder) snapshot(reason string) *FlightDump {
	d := &FlightDump{
		Label:    f.cfg.Label,
		Worker:   f.cfg.Worker,
		RankLo:   f.cfg.RankLo,
		RankHi:   f.cfg.RankHi,
		RunID:    f.cfg.RunID,
		Reason:   reason,
		Epoch:    f.epoch.Load(),
		DumpedTS: Now(),
		WallTime: time.Now().UTC().Format(time.RFC3339Nano),
	}
	if f.hasClk.Load() {
		d.ClockOffsetNS = f.offset.Load()
		d.ClockErrNS = f.errNS.Load()
	}
	for i := range f.phases {
		st := &f.phases[i]
		if p := st.phase.Load(); p > 0 {
			d.OpenPhases = append(d.OpenPhases, RankPhase{
				Rank:  f.cfg.RankLo + i,
				Phase: Phase(p - 1).String(),
				Since: st.since.Load(),
				Epoch: st.epoch.Load(),
			})
		}
	}
	d.Events = f.rings.Merged(
		func(a, b FlightEvent) bool { return a.TS < b.TS }, nil)
	if f.cfg.Counters != nil {
		d.Counters = f.cfg.Counters()
	}
	f.mu.Lock()
	d.Epochs = append([]EpochCounters(nil), f.epochs...)
	d.Notes = append([]string(nil), f.notes...)
	f.mu.Unlock()
	return d
}

// Dump persists the black box to path: tmp file in the same directory,
// fsync, rename — the same sealing discipline as the checkpoint slots, so a
// dump is either the previous complete one or the new complete one.
func (f *FlightRecorder) Dump(path, reason string) error {
	body, err := json.Marshal(f.snapshot(reason))
	if err != nil {
		return fmt.Errorf("obs: flight dump encode: %w", err)
	}
	buf := make([]byte, 0, len(flightMagic)+1+4+len(body)+8)
	buf = append(buf, flightMagic...)
	buf = append(buf, flightVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	buf = binary.LittleEndian.AppendUint64(buf, ckpt.Checksum(buf))

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Persist dumps to the configured path (flight-<worker>.dpfr naming is the
// caller's choice via FlightConfig.Path). Serialized: concurrent fault paths
// and the epoch-commit writer cannot interleave half-written files (the
// atomic rename already guarantees that; the lock just orders them). A
// recorder with no configured path is a no-op.
func (f *FlightRecorder) Persist(reason string) error {
	if f.cfg.Path == "" {
		return nil
	}
	f.mu.Lock()
	path, sealed := f.cfg.Path, f.sealed
	f.mu.Unlock()
	if sealed {
		return nil
	}
	return f.Dump(path, reason)
}

// Seal makes every later Persist a no-op. A worker seals after writing its
// terminal dump ("run complete", a goodbye drain, or a run failure) so that
// teardown noise — the coordinator closing control connections once results
// are shipped looks exactly like a fleet abort to the reader loop — cannot
// overwrite the dump that names how the run actually ended.
func (f *FlightRecorder) Seal() {
	f.mu.Lock()
	f.sealed = true
	f.mu.Unlock()
}

// LoadFlightDump reads and validates a dump file.
func LoadFlightDump(path string) (*FlightDump, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	hdr := len(flightMagic) + 1 + 4
	if len(b) < hdr+8 {
		return nil, fmt.Errorf("obs: flight dump %s: truncated (%d bytes)", path, len(b))
	}
	if string(b[:4]) != flightMagic {
		return nil, fmt.Errorf("obs: flight dump %s: bad magic %q", path, b[:4])
	}
	if b[4] != flightVersion {
		return nil, fmt.Errorf("obs: flight dump %s: version %d, want %d", path, b[4], flightVersion)
	}
	n := int(binary.LittleEndian.Uint32(b[5:9]))
	if len(b) != hdr+n+8 {
		return nil, fmt.Errorf("obs: flight dump %s: body length %d does not match file size %d", path, n, len(b))
	}
	want := binary.LittleEndian.Uint64(b[hdr+n:])
	if got := ckpt.Checksum(b[:hdr+n]); got != want {
		return nil, fmt.Errorf("obs: flight dump %s: checksum mismatch (got %016x want %016x)", path, got, want)
	}
	var d FlightDump
	if err := json.Unmarshal(b[hdr:hdr+n], &d); err != nil {
		return nil, fmt.Errorf("obs: flight dump %s: body: %w", path, err)
	}
	return &d, nil
}

// LoadFlightDir loads every flight-*.dpfr in dir, sorted by worker index.
// Unreadable or corrupt files are reported in errs but do not block the
// readable ones — a postmortem wants whatever survived.
func LoadFlightDir(dir string) (dumps []*FlightDump, errs []error) {
	paths, _ := filepath.Glob(filepath.Join(dir, "flight-*.dpfr"))
	sort.Strings(paths)
	for _, p := range paths {
		d, err := LoadFlightDump(p)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		dumps = append(dumps, d)
	}
	sort.SliceStable(dumps, func(i, j int) bool { return dumps[i].Worker < dumps[j].Worker })
	return dumps, errs
}
