package obs

import (
	"sync"
	"testing"
)

func TestCountersShardingAndTotals(t *testing.T) {
	c := NewCounters(4, "a", "b")
	for shard := 0; shard < 4; shard++ {
		v := c.Shard(shard)
		v.Add(0, int64(shard+1))
		v.Inc(1)
	}
	if got := c.Total(0); got != 1+2+3+4 {
		t.Fatalf("Total(a) = %d, want 10", got)
	}
	if got := c.Total(1); got != 4 {
		t.Fatalf("Total(b) = %d, want 4", got)
	}
	if got := c.ShardTotal(2, 0); got != 3 {
		t.Fatalf("ShardTotal(2, a) = %d, want 3", got)
	}
	if got := c.Shard(2).Get(0); got != 3 {
		t.Fatalf("Shard(2).Get(a) = %d, want 3", got)
	}
}

func TestCountersConcurrent(t *testing.T) {
	const shards, per = 8, 10000
	c := NewCounters(shards, "n")
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			v := c.Shard(s)
			for i := 0; i < per; i++ {
				v.Inc(0)
			}
		}(s)
	}
	wg.Wait()
	if got := c.Total(0); got != shards*per {
		t.Fatalf("Total = %d, want %d", got, shards*per)
	}
}

func TestGaugeCurrentAndPeak(t *testing.T) {
	g := NewGauge(2)
	g.Add(0, 5)
	g.Add(0, -3)
	g.Add(1, 4)
	g.Add(1, 3)
	g.Add(1, -6)
	if got := g.Value(); got != 2+1 {
		t.Fatalf("Value = %d, want 3", got)
	}
	if got := g.ShardMax(0); got != 5 {
		t.Fatalf("ShardMax(0) = %d, want 5", got)
	}
	if got := g.ShardMax(1); got != 7 {
		t.Fatalf("ShardMax(1) = %d, want 7", got)
	}
	if got := g.Max(); got != 7 {
		t.Fatalf("Max = %d, want 7", got)
	}
}

// TestHistogramBucketBoundaries pins the boundary semantics: bucket i counts
// v <= bounds[i] (and > bounds[i-1]); values above the last bound land in the
// overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(1, 10, 100, 1000)
	for _, v := range []int64{0, 1, 10} { // <= 10 → bucket 0
		h.Observe(0, v)
	}
	for _, v := range []int64{11, 100} { // (10, 100] → bucket 1
		h.Observe(0, v)
	}
	h.Observe(0, 101)  // (100, 1000] → bucket 2
	h.Observe(0, 1001) // > 1000 → overflow
	h.Observe(0, 5000)
	s := h.Snapshot()
	want := []int64{3, 2, 1, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 8 {
		t.Fatalf("Count = %d, want 8", s.Count)
	}
	if s.Max != 5000 {
		t.Fatalf("Max = %d, want 5000", s.Max)
	}
	if s.Sum != 0+1+10+11+100+101+1001+5000 {
		t.Fatalf("Sum = %d", s.Sum)
	}
}

func TestHistogramShardAggregation(t *testing.T) {
	h := NewHistogram(4, ExpBounds(1, 10)...)
	for s := 0; s < 4; s++ {
		for i := 0; i < 100; i++ {
			h.Observe(s, int64(i))
		}
	}
	snap := h.Snapshot()
	if snap.Count != 400 {
		t.Fatalf("Count = %d, want 400", snap.Count)
	}
	var bucketSum int64
	for _, c := range snap.Counts {
		bucketSum += c
	}
	if bucketSum != snap.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, snap.Count)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 10, 20, 30, 40)
	for i := int64(1); i <= 40; i++ {
		h.Observe(0, i)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q < 15 || q > 25 {
		t.Fatalf("p50 = %d, want ≈20", q)
	}
	if q := s.Quantile(1.0); q != 40 {
		t.Fatalf("p100 = %d, want 40", q)
	}
	if q := s.Quantile(0); q > 10 {
		t.Fatalf("p0 = %d, want <= 10", q)
	}
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty snapshot should report zeros")
	}
	// Overflow-bucket quantile reports the tracked max.
	h2 := NewHistogram(1, 10)
	h2.Observe(0, 999)
	if q := h2.Snapshot().Quantile(0.9); q != 999 {
		t.Fatalf("overflow quantile = %d, want 999", q)
	}
}

func TestExpBounds(t *testing.T) {
	b := ExpBounds(1000, 4)
	want := []int64{1000, 2000, 4000, 8000}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBounds = %v, want %v", b, want)
		}
	}
}

func TestRingsOrderAndWrap(t *testing.T) {
	r := NewRings[int](2, 4)
	for i := 0; i < 10; i++ {
		r.Append(0, i)
	}
	r.Append(1, 100)
	got := r.Shard(0)
	want := []int{6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("Shard(0) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Shard(0) = %v, want %v", got, want)
		}
	}
	if s1 := r.Shard(1); len(s1) != 1 || s1[0] != 100 {
		t.Fatalf("Shard(1) = %v", s1)
	}
	if r.Recorded() != 11 {
		t.Fatalf("Recorded = %d, want 11", r.Recorded())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
}

// TestRingsConcurrentReadWrite exercises concurrent recording on every shard
// while a reader drains snapshots — race-free by construction (run under
// -race in CI).
func TestRingsConcurrentReadWrite(t *testing.T) {
	const shards = 4
	r := NewRings[[3]int64](shards, 64)
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < shards; s++ {
		for w := 0; w < 2; w++ { // two writers per shard, like handler threads
			writers.Add(1)
			go func(s int) {
				defer writers.Done()
				for i := int64(0); i < 5000; i++ {
					r.Append(s, [3]int64{int64(s), i, i * 2})
				}
			}(s)
		}
	}
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for s := 0; s < shards; s++ {
				for _, ev := range r.Shard(s) {
					if ev[0] != int64(s) || ev[2] != ev[1]*2 {
						t.Errorf("torn event on shard %d: %v", s, ev)
						return
					}
				}
			}
			_ = r.Dropped()
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()
	if got := r.Recorded(); got != shards*2*5000 {
		t.Fatalf("Recorded = %d, want %d", got, shards*2*5000)
	}
}
