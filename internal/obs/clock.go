package obs

import "time"

// epoch anchors the package's monotonic clock. All timestamps produced by
// Now are nanoseconds since process start (well, package init), which keeps
// them small, strictly comparable, and wall-clock independent.
var epoch = time.Now()

// Now returns the current monotonic timestamp in nanoseconds since the
// package was initialized. time.Since uses the runtime's monotonic reading,
// so Now never goes backwards across clock adjustments.
func Now() int64 { return int64(time.Since(epoch)) }
