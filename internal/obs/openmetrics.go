package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// OMWriter streams metric families in the OpenMetrics / Prometheus text
// exposition format: for each family a # TYPE (and optional # HELP) line,
// then its samples; Close appends the terminating # EOF. The caller declares
// each family exactly once with Family before emitting its samples — the
// format requires samples grouped under their family, which a streaming
// writer gets for free as long as callers keep that order.
type OMWriter struct {
	bw  *bufio.Writer
	err error
}

// NewOMWriter wraps w in an OpenMetrics text encoder.
func NewOMWriter(w io.Writer) *OMWriter {
	return &OMWriter{bw: bufio.NewWriter(w)}
}

// Family starts a metric family. typ is one of "counter", "gauge",
// "histogram", "unknown". help may be empty.
func (o *OMWriter) Family(name, typ, help string) {
	if o.err != nil {
		return
	}
	if help != "" {
		o.writeString("# HELP " + name + " " + escapeHelp(help) + "\n")
	}
	o.writeString("# TYPE " + name + " " + typ + "\n")
}

// Sample emits one sample. labels is a sequence of key, value pairs; a
// counter family's sample name should carry the _total suffix.
func (o *OMWriter) Sample(name string, labels []string, v float64) {
	if o.err != nil {
		return
	}
	o.writeString(name)
	o.writeLabels(labels)
	o.writeString(" ")
	o.writeString(formatFloat(v))
	o.writeString("\n")
}

// SampleInt emits one integer-valued sample.
func (o *OMWriter) SampleInt(name string, labels []string, v int64) {
	if o.err != nil {
		return
	}
	o.writeString(name)
	o.writeLabels(labels)
	o.writeString(" ")
	o.writeString(strconv.FormatInt(v, 10))
	o.writeString("\n")
}

// Hist emits a histogram family's _bucket/_sum/_count samples for one label
// set. scale converts the histogram's integer unit into the exported unit
// (1e-9 turns nanosecond observations into seconds, the Prometheus duration
// convention). Bucket counts are cumulative with a trailing le="+Inf", as
// the format requires.
func (o *OMWriter) Hist(name string, labels []string, s HistSnapshot, scale float64) {
	if o.err != nil {
		return
	}
	var cum int64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		o.SampleInt(name+"_bucket", append(append([]string(nil), labels...), "le", formatFloat(float64(b)*scale)), cum)
	}
	o.SampleInt(name+"_bucket", append(append([]string(nil), labels...), "le", "+Inf"), s.Count)
	o.Sample(name+"_sum", labels, float64(s.Sum)*scale)
	o.SampleInt(name+"_count", labels, s.Count)
}

// Flush writes buffered output without the # EOF terminator — for composing
// several exporters' families into one exposition, where only the final
// writer Closes.
func (o *OMWriter) Flush() error {
	if o.err != nil {
		return o.err
	}
	return o.bw.Flush()
}

// Close writes the # EOF terminator and flushes. The writer is unusable
// afterwards.
func (o *OMWriter) Close() error {
	if o.err == nil {
		o.writeString("# EOF\n")
	}
	if o.err != nil {
		return o.err
	}
	return o.bw.Flush()
}

func (o *OMWriter) writeString(s string) {
	if o.err != nil {
		return
	}
	_, o.err = o.bw.WriteString(s)
}

func (o *OMWriter) writeLabels(labels []string) {
	if len(labels) == 0 {
		return
	}
	o.writeString("{")
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			o.writeString(",")
		}
		o.writeString(labels[i])
		o.writeString("=\"")
		o.writeString(escapeLabel(labels[i+1]))
		o.writeString("\"")
	}
	o.writeString("}")
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer("\\", "\\\\", "\"", "\\\"", "\n", "\\n")
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer("\\", "\\\\", "\n", "\\n")
	return r.Replace(s)
}

// MetricName sanitizes an arbitrary series name into a legal metric-name
// component: letters, digits, underscores; anything else becomes '_'.
func MetricName(s string) string {
	var b strings.Builder
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// SortedKeys returns m's keys sorted — exporters iterate in deterministic
// order so scrapes are diffable.
func SortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
