package obs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// TelemetryVersion is the telemetry frame schema version. Readers reject
// frames from a newer major version instead of guessing at their shape.
const TelemetryVersion = 1

// maxTelemetryFrame bounds a telemetry frame's JSON body. Telemetry is a
// handful of counters and small fixed-bucket histograms; anything near this
// size is a corrupt length prefix, not a metric export.
const maxTelemetryFrame = 4 << 20

// GaugeValue is a gauge's current value plus its high-water mark.
type GaugeValue struct {
	Cur int64 `json:"cur"`
	Max int64 `json:"max"`
}

// ProcessTelemetry is one process's metric export: the unit shipped over a
// telemetry control frame and merged into the coordinator's metrics. All
// maps are keyed by series name; histograms carry their bucket bounds so the
// receiver can merge (or reject) without out-of-band schema agreement.
type ProcessTelemetry struct {
	Process  string                  `json:"process"`             // e.g. "coordinator", "relay"
	Addr     string                  `json:"addr,omitempty"`      // listen address, when the process has one
	PID      int                     `json:"pid,omitempty"`       // OS pid, for per-process breakdowns
	UptimeNS int64                   `json:"uptime_ns,omitempty"` // ns since the process's obs clock started
	Counters map[string]int64        `json:"counters,omitempty"`
	Gauges   map[string]GaugeValue   `json:"gauges,omitempty"`
	Phases   map[string]HistSnapshot `json:"phases,omitempty"` // phase name -> histogram
}

// WriteTelemetryFrame writes t as one length-prefixed versioned JSON frame:
// u32 body length, then a body of u16 version followed by the JSON document.
// JSON (not the fixed-layout codec) because telemetry frames are rare, small,
// and cross version boundaries: an old coordinator scraping a new worker
// should degrade to ignoring unknown fields, not misparse them.
func WriteTelemetryFrame(w io.Writer, t ProcessTelemetry) error {
	doc, err := json.Marshal(t)
	if err != nil {
		return fmt.Errorf("obs: telemetry encode: %w", err)
	}
	frame := make([]byte, 4+2+len(doc))
	binary.BigEndian.PutUint32(frame[0:4], uint32(2+len(doc)))
	binary.BigEndian.PutUint16(frame[4:6], TelemetryVersion)
	copy(frame[6:], doc)
	_, err = w.Write(frame)
	return err
}

// ReadTelemetryFrame reads one frame written by WriteTelemetryFrame.
func ReadTelemetryFrame(r io.Reader) (ProcessTelemetry, error) {
	var t ProcessTelemetry
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return t, fmt.Errorf("obs: telemetry frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 2 || n > maxTelemetryFrame {
		return t, fmt.Errorf("obs: telemetry frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return t, fmt.Errorf("obs: telemetry frame body: %w", err)
	}
	if v := binary.BigEndian.Uint16(body[0:2]); v > TelemetryVersion {
		return t, fmt.Errorf("obs: telemetry frame version %d newer than %d", v, TelemetryVersion)
	}
	if err := json.Unmarshal(body[2:], &t); err != nil {
		return t, fmt.Errorf("obs: telemetry decode: %w", err)
	}
	return t, nil
}

// MergeTelemetry folds src into dst in place: counters add, gauges add
// current values and take the max of peaks, and phase histograms merge
// bucket-wise. Histograms whose bounds disagree are skipped and reported in
// the returned error (the rest of the merge still happens — partial
// telemetry beats none when scraping a mixed-version fleet).
func MergeTelemetry(dst, src *ProcessTelemetry) error {
	if len(src.Counters) > 0 && dst.Counters == nil {
		dst.Counters = make(map[string]int64, len(src.Counters))
	}
	for k, v := range src.Counters {
		dst.Counters[k] += v
	}
	if len(src.Gauges) > 0 && dst.Gauges == nil {
		dst.Gauges = make(map[string]GaugeValue, len(src.Gauges))
	}
	for k, v := range src.Gauges {
		g := dst.Gauges[k]
		g.Cur += v.Cur
		if v.Max > g.Max {
			g.Max = v.Max
		}
		dst.Gauges[k] = g
	}
	var firstErr error
	if len(src.Phases) > 0 && dst.Phases == nil {
		dst.Phases = make(map[string]HistSnapshot, len(src.Phases))
	}
	for k, v := range src.Phases {
		h := dst.Phases[k]
		if err := h.Merge(v); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("phase %s: %w", k, err)
			}
			continue
		}
		dst.Phases[k] = h
	}
	return firstErr
}
