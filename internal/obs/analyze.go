package obs

import (
	"fmt"
	"sort"
	"time"

	"declpat/internal/harness"
)

// Analyze derives the standard report from a trace export: a per-epoch
// summary, handler-latency percentiles per message type (when the trace
// contains deliver spans), and a per-rank load table. It is the engine behind
// cmd/declpat-trace.
func Analyze(meta Meta, recs []Record) []*harness.Table {
	tables := []*harness.Table{EpochSummary(meta, recs)}
	if lat := HandlerLatency(meta, recs); lat.Rows() > 0 {
		tables = append(tables, lat)
	}
	tables = append(tables, RankLoad(meta, recs))
	return tables
}

// PhaseTables derives the phase-timer report from a trace export: the
// per-epoch breakdown across phases and the per-rank phase load. Both are
// empty when the trace carries no phase spans (captured with Timing off).
func PhaseTables(meta Meta, recs []Record) []*harness.Table {
	return []*harness.Table{PhaseBreakdown(meta, recs), RankPhaseLoad(meta, recs)}
}

// phaseDist accumulates one cell of the phase tables: all span durations
// for a (group, phase) pair.
type phaseDist struct {
	ds    []int64
	total int64
}

func (d *phaseDist) add(ns int64) { d.ds = append(d.ds, ns); d.total += ns }

func (d *phaseDist) row(t *harness.Table, phase string, first ...any) {
	sort.Slice(d.ds, func(i, j int) bool { return d.ds[i] < d.ds[j] })
	t.Add(append(first, phase, len(d.ds), time.Duration(d.total),
		percentile(d.ds, 0.50), percentile(d.ds, 0.95),
		time.Duration(d.ds[len(d.ds)-1]))...)
}

// queryLabel renders a query-context id for the tables: "-" for the untagged
// context so single-query traces stay visually quiet.
func queryLabel(q int64) any {
	if q == 0 {
		return "-"
	}
	return q
}

// PhaseBreakdown reports, per (query, epoch), the distribution of each
// phase's spans across ranks: span count, total time, p50/p95/max. Phase
// spans carry the epoch sequence observed at span close (Arg2), so pre-epoch
// phases (seed collection, bucket builds) attribute to the epoch they feed.
// Grouping by the query context (Record.Q) keeps interleaved queries on a
// resident universe apart instead of silently merging their timelines; the
// untagged context renders as "-".
func PhaseBreakdown(meta Meta, recs []Record) *harness.Table {
	type key struct {
		q     int64
		epoch int64
		phase string
	}
	cells := map[key]*phaseDist{}
	for _, r := range recs {
		if r.Kind != "phase" {
			continue
		}
		k := key{q: r.Q, epoch: r.Arg2, phase: r.Type}
		d := cells[k]
		if d == nil {
			d = &phaseDist{}
			cells[k] = d
		}
		d.add(r.Dur)
	}
	keys := make([]key, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].epoch != keys[j].epoch {
			return keys[i].epoch < keys[j].epoch
		}
		if keys[i].q != keys[j].q {
			return keys[i].q < keys[j].q
		}
		return PhaseByName(keys[i].phase) < PhaseByName(keys[j].phase)
	})
	t := harness.NewTable("per-epoch phase breakdown",
		"query", "epoch", "phase", "spans", "total", "p50", "p95", "max")
	for _, k := range keys {
		cells[k].row(t, k.phase, queryLabel(k.q), k.epoch)
	}
	return t
}

// RankPhaseLoad reports each rank's time per phase over the whole trace —
// the imbalance view: a rank whose kernel total towers over the others is
// the straggler.
func RankPhaseLoad(meta Meta, recs []Record) *harness.Table {
	type key struct {
		rank  int
		phase string
	}
	cells := map[key]*phaseDist{}
	for _, r := range recs {
		if r.Kind != "phase" {
			continue
		}
		k := key{rank: r.Rank, phase: r.Type}
		d := cells[k]
		if d == nil {
			d = &phaseDist{}
			cells[k] = d
		}
		d.add(r.Dur)
	}
	keys := make([]key, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rank != keys[j].rank {
			return keys[i].rank < keys[j].rank
		}
		return PhaseByName(keys[i].phase) < PhaseByName(keys[j].phase)
	})
	t := harness.NewTable("per-rank phase load",
		"rank", "phase", "spans", "total", "p50", "p95", "max")
	for _, k := range keys {
		cells[k].row(t, k.phase, k.rank)
	}
	return t
}

// epochKey locates one rank's participation in one epoch.
type epochSpan struct {
	seq      int64
	ts, done int64 // [ts, done) in trace time
}

// epochIndex builds, per rank, the sorted list of epoch spans, so point
// events can be attributed to the epoch their rank was in when they fired.
func epochIndex(meta Meta, recs []Record) [][]epochSpan {
	idx := make([][]epochSpan, meta.Ranks)
	for _, r := range recs {
		if r.Kind != "epoch" || r.Rank >= meta.Ranks {
			continue
		}
		idx[r.Rank] = append(idx[r.Rank], epochSpan{seq: r.Arg, ts: r.TS, done: r.TS + r.Dur})
	}
	for _, spans := range idx {
		sort.Slice(spans, func(i, j int) bool { return spans[i].ts < spans[j].ts })
	}
	return idx
}

// epochOf returns the epoch sequence enclosing ts on rank, or -1.
func epochOf(idx [][]epochSpan, rank int, ts int64) int64 {
	if rank >= len(idx) {
		return -1
	}
	spans := idx[rank]
	i := sort.Search(len(spans), func(i int) bool { return spans[i].done > ts })
	if i < len(spans) && spans[i].ts <= ts {
		return spans[i].seq
	}
	return -1
}

// epochAgg accumulates one epoch's cross-rank totals.
type epochAgg struct {
	q                                 int64
	seq                               int64
	dur                               int64 // max over ranks
	msgs, envelopes, delivered        int64
	tdWaves, flushes                  int64
	retransmits, drops, acks, corrupt int64
	decodeErrs, reconnects, hbMiss    int64
	faults, aborts, recoveries        int64
}

// EpochSummary aggregates the trace into one row per (query, epoch): message
// and envelope volume, termination-detection waves, and fault-recovery
// traffic, with the epoch duration taken as the slowest rank's span. Epochs
// on a resident universe are globally serialized but belong to interleaved
// queries; grouping by the query context (Record.Q) keeps each query's
// epochs on their own rows instead of silently merging the timelines.
func EpochSummary(meta Meta, recs []Record) *harness.Table {
	type key struct{ q, seq int64 }
	idx := epochIndex(meta, recs)
	bysSeq := map[key]*epochAgg{}
	get := func(q, seq int64) *epochAgg {
		k := key{q, seq}
		a := bysSeq[k]
		if a == nil {
			a = &epochAgg{q: q, seq: seq}
			bysSeq[k] = a
		}
		return a
	}
	for _, r := range recs {
		if r.Kind == "epoch" {
			a := get(r.Q, r.Arg)
			if r.Dur > a.dur {
				a.dur = r.Dur
			}
			continue
		}
		// Fault-path events carry their epoch sequence in Arg, so they
		// attribute exactly even when the epoch never completed (a failed
		// run has no enclosing epoch span to look up).
		switch r.Kind {
		case "crash", "watchdog":
			a := get(r.Q, r.Arg)
			a.faults++
			continue
		case "abort":
			get(r.Q, r.Arg).aborts++
			continue
		case "recover":
			get(r.Q, r.Arg).recoveries++
			continue
		}
		seq := epochOf(idx, r.Rank, r.TS)
		if seq < 0 {
			continue
		}
		a := get(r.Q, seq)
		switch r.Kind {
		case "panic", "link-dead":
			// These carry the message type in Arg; attribute by span. The
			// crash they trigger is already counted above, so they only
			// add context within completed epochs.
			a.faults++
		case "ship":
			a.envelopes++
			a.msgs += r.Arg2
		case "deliver":
			a.delivered += r.Arg2
		case "td-wave":
			a.tdWaves++
		case "flush":
			a.flushes++
		case "retransmit":
			a.retransmits++
		case "drop":
			a.drops++
		case "ack":
			a.acks++
		case "corrupt":
			a.corrupt++
		case "decode-error":
			a.decodeErrs++
		case "reconnect":
			a.reconnects++
		case "hb-miss":
			a.hbMiss++
		}
	}
	keys := make([]key, 0, len(bysSeq))
	for k := range bysSeq {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].seq != keys[j].seq {
			return keys[i].seq < keys[j].seq
		}
		return keys[i].q < keys[j].q
	})
	t := harness.NewTable("per-epoch summary",
		"query", "epoch", "duration", "messages", "envelopes", "delivered", "td-waves", "flushes", "retransmits", "drops", "acks",
		"corrupt", "decode-err", "reconn", "hb-miss",
		"faults", "aborts", "recoveries")
	for _, k := range keys {
		a := bysSeq[k]
		t.Add(queryLabel(a.q), a.seq, time.Duration(a.dur), a.msgs, a.envelopes, a.delivered,
			a.tdWaves, a.flushes, a.retransmits, a.drops, a.acks,
			a.corrupt, a.decodeErrs, a.reconnects, a.hbMiss,
			a.faults, a.aborts, a.recoveries)
	}
	return t
}

// percentile returns the q-quantile of sorted (ascending) ns durations.
func percentile(sorted []int64, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return time.Duration(sorted[i-1])
}

// HandlerLatency reports exact handler-latency percentiles per message type,
// computed from deliver spans (envelope delivery: dedup + handlers for the
// whole batch). Returns an empty table when the trace has no timed delivers.
func HandlerLatency(meta Meta, recs []Record) *harness.Table {
	byType := map[string][]int64{}
	batch := map[string]int64{}
	for _, r := range recs {
		if r.Kind != "deliver" || r.Dur <= 0 {
			continue
		}
		name := r.Type
		if name == "" {
			name = fmt.Sprintf("type-%d", r.Arg)
		}
		byType[name] = append(byType[name], r.Dur)
		batch[name] += r.Arg2
	}
	names := make([]string, 0, len(byType))
	for n := range byType {
		names = append(names, n)
	}
	sort.Strings(names)
	t := harness.NewTable("handler latency per message type (envelope delivery spans)",
		"type", "envelopes", "messages", "p50", "p90", "p99", "max")
	for _, n := range names {
		ds := byType[n]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		t.Add(n, len(ds), batch[n],
			percentile(ds, 0.50), percentile(ds, 0.90), percentile(ds, 0.99),
			time.Duration(ds[len(ds)-1]))
	}
	return t
}

// RankLoad reports per-rank traffic and handler time, plus the load-imbalance
// factor (slowest rank's handler time over the mean — 1.00 is perfectly
// balanced). Without deliver spans the imbalance falls back to delivered
// message counts.
func RankLoad(meta Meta, recs []Record) *harness.Table {
	type load struct {
		events, sent, envelopes, delivered, handlerNs int64
	}
	loads := make([]load, meta.Ranks)
	for _, r := range recs {
		if r.Rank >= meta.Ranks {
			continue
		}
		l := &loads[r.Rank]
		l.events++
		switch r.Kind {
		case "ship":
			l.sent += r.Arg2
			l.envelopes++
		case "deliver":
			l.delivered += r.Arg2
			l.handlerNs += r.Dur
		}
	}
	t := harness.NewTable("per-rank load",
		"rank", "events", "msgs-sent", "envelopes", "msgs-delivered", "handler-time")
	var totalNs, totalDelivered, maxNs, maxDelivered int64
	for i, l := range loads {
		t.Add(i, l.events, l.sent, l.envelopes, l.delivered, time.Duration(l.handlerNs))
		totalNs += l.handlerNs
		totalDelivered += l.delivered
		if l.handlerNs > maxNs {
			maxNs = l.handlerNs
		}
		if l.delivered > maxDelivered {
			maxDelivered = l.delivered
		}
	}
	if meta.Ranks > 0 {
		imb := "-"
		if totalNs > 0 {
			imb = fmt.Sprintf("%.2fx", float64(maxNs)/(float64(totalNs)/float64(meta.Ranks)))
		} else if totalDelivered > 0 {
			imb = fmt.Sprintf("%.2fx", float64(maxDelivered)/(float64(totalDelivered)/float64(meta.Ranks)))
		}
		t.Add("imbalance", "-", "-", "-", "-", imb)
	}
	return t
}
