package obs

// Flight-recorder tests: dump/load round-trip through the sealed DPFR file,
// open-phase capture across a simulated kill, ring bounding, and the loader's
// rejection of truncated, corrupted, and mislabeled files.

import (
	"os"
	"path/filepath"
	"testing"
)

func testRecorder(path string) *FlightRecorder {
	return NewFlightRecorder(FlightConfig{
		Path:   path,
		Label:  "test-worker",
		Worker: 2,
		RankLo: 4,
		RankHi: 8,
		RunID:  0xdeadbeef,
		Counters: func() map[string]int64 {
			return map[string]int64{"msgs": 100, "epochs": 3}
		},
	})
}

func TestFlightRecorderRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight-2.dpfr")
	f := testRecorder(path)
	f.SetEpoch(3)
	f.Record(5, FlightEvent{TS: 10, Kind: "epoch-begin", Arg: 3})
	f.Record(6, FlightEvent{TS: 20, Dur: 7, Kind: "phase", Arg: int64(PhaseKernel), Arg2: 3})
	f.PhaseEnter(7, PhaseKernel, 25)
	f.EpochCommit(3, 30)
	f.SetClock(1_500_000, 80_000)
	f.Note("hello from the black box")
	if err := f.Persist("test fault"); err != nil {
		t.Fatal(err)
	}

	d, err := LoadFlightDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Label != "test-worker" || d.Worker != 2 || d.RankLo != 4 || d.RankHi != 8 || d.RunID != 0xdeadbeef {
		t.Fatalf("identity fields mangled: %+v", d)
	}
	if d.Reason != "test fault" || d.Epoch != 3 {
		t.Fatalf("reason/epoch mangled: %q epoch %d", d.Reason, d.Epoch)
	}
	if d.ClockOffsetNS != 1_500_000 || d.ClockErrNS != 80_000 {
		t.Fatalf("clock estimate mangled: %d ±%d", d.ClockOffsetNS, d.ClockErrNS)
	}
	if len(d.Events) != 2 || d.Events[0].Rank != 5 || d.Events[1].Rank != 6 || d.Events[1].Dur != 7 {
		t.Fatalf("events mangled: %+v", d.Events)
	}
	if len(d.OpenPhases) != 1 {
		t.Fatalf("open phases: %+v, want exactly rank 7's", d.OpenPhases)
	}
	if p := d.OpenPhases[0]; p.Rank != 7 || p.Phase != PhaseKernel.String() || p.Since != 25 || p.Epoch != 3 {
		t.Fatalf("open phase mangled: %+v", p)
	}
	if len(d.Epochs) != 1 || d.Epochs[0].Epoch != 3 || d.Epochs[0].Counters["msgs"] != 100 {
		t.Fatalf("epoch counter window mangled: %+v", d.Epochs)
	}
	if d.Counters["epochs"] != 3 {
		t.Fatalf("dump-time counters mangled: %+v", d.Counters)
	}
	if len(d.Notes) != 1 || d.Notes[0] != "hello from the black box" {
		t.Fatalf("notes mangled: %+v", d.Notes)
	}
	if d.WallTime == "" || d.DumpedTS == 0 {
		t.Fatalf("dump not timestamped: wall=%q ts=%d", d.WallTime, d.DumpedTS)
	}
}

// TestFlightRecorderPhaseExitClears pins the kill-mid-phase semantics: a
// closed phase leaves no open cell; an open one survives into the dump.
func TestFlightRecorderPhaseExitClears(t *testing.T) {
	f := testRecorder("")
	f.PhaseEnter(4, PhaseBarrier, 10)
	f.PhaseExit(4)
	f.PhaseEnter(5, PhaseEmit, 20)
	d := f.snapshot("test")
	if len(d.OpenPhases) != 1 || d.OpenPhases[0].Rank != 5 || d.OpenPhases[0].Phase != PhaseEmit.String() {
		t.Fatalf("open phases after exit: %+v, want only rank 5 in emit", d.OpenPhases)
	}
}

// TestFlightRecorderBounded pins the black-box guarantee: the ring never
// grows past its capacity and keeps the most recent events.
func TestFlightRecorderBounded(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{RankLo: 0, RankHi: 1, Capacity: 8})
	for i := 0; i < 100; i++ {
		f.Record(0, FlightEvent{TS: int64(i), Kind: "tick"})
	}
	d := f.snapshot("test")
	if len(d.Events) != 8 {
		t.Fatalf("ring held %d events, capacity 8", len(d.Events))
	}
	if d.Events[0].TS != 92 || d.Events[7].TS != 99 {
		t.Fatalf("ring kept %d..%d, want the newest 92..99", d.Events[0].TS, d.Events[7].TS)
	}
}

// TestFlightRecorderEpochWindowBounded pins the per-epoch counter window.
func TestFlightRecorderEpochWindowBounded(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{RankLo: 0, RankHi: 1, EpochWindow: 4})
	for e := int64(0); e < 20; e++ {
		f.EpochCommit(e, e*10)
	}
	d := f.snapshot("test")
	if len(d.Epochs) != 4 || d.Epochs[0].Epoch != 16 || d.Epochs[3].Epoch != 19 {
		t.Fatalf("epoch window %+v, want epochs 16..19", d.Epochs)
	}
}

func writeDump(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "flight-0.dpfr")
	f := testRecorder(path)
	f.Record(4, FlightEvent{TS: 1, Kind: "epoch-begin"})
	if err := f.Persist("seed"); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFlightDumpRejectsTruncated(t *testing.T) {
	path := writeDump(t, t.TempDir())
	b, _ := os.ReadFile(path)
	for _, n := range []int{0, 4, len(b) / 2, len(b) - 1} {
		if err := os.WriteFile(path, b[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFlightDump(path); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestFlightDumpRejectsCorruption(t *testing.T) {
	path := writeDump(t, t.TempDir())
	orig, _ := os.ReadFile(path)

	flip := func(i int) {
		b := append([]byte(nil), orig...)
		b[i] ^= 0x40
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	flip(len(orig) / 2) // body byte: checksum must catch it
	if _, err := LoadFlightDump(path); err == nil {
		t.Fatal("corrupt body accepted")
	}
	flip(0) // magic byte
	if _, err := LoadFlightDump(path); err == nil {
		t.Fatal("bad magic accepted")
	}
	flip(4) // version byte
	if _, err := LoadFlightDump(path); err == nil {
		t.Fatal("unknown version accepted")
	}
	// The untouched original still loads — the checks reject damage, not the
	// format.
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFlightDump(path); err != nil {
		t.Fatalf("pristine dump rejected: %v", err)
	}
}

// TestLoadFlightDirPartial pins the postmortem contract: corrupt dumps are
// reported but do not block the readable ones.
func TestLoadFlightDirPartial(t *testing.T) {
	dir := t.TempDir()
	writeDump(t, dir) // flight-0.dpfr, healthy
	if err := os.WriteFile(filepath.Join(dir, "flight-1.dpfr"), []byte("DPFRgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	dumps, errs := LoadFlightDir(dir)
	if len(dumps) != 1 || dumps[0].Reason != "seed" {
		t.Fatalf("loaded %d dumps, want the 1 healthy one", len(dumps))
	}
	if len(errs) != 1 {
		t.Fatalf("got %d errors, want 1 for the corrupt file", len(errs))
	}
}

// TestFlightPersistAtomic pins the tmp+rename discipline: a Persist over an
// existing dump leaves no stray temp files and the file stays loadable.
func TestFlightPersistAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flight-0.dpfr")
	f := testRecorder(path)
	for i := 0; i < 5; i++ {
		f.Record(4, FlightEvent{TS: int64(i), Kind: "tick"})
		if err := f.Persist("again"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := LoadFlightDump(path); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("%d files left in dump dir, want only the dump", len(ents))
	}
}
