package obs

import (
	"strings"
	"testing"
)

func TestLineageIDScheme(t *testing.T) {
	root := RootLineageID(37, 1023)
	if !IsRootLineageID(root) {
		t.Fatal("root id not recognized")
	}
	if e := RootLineageEpoch(root); e != 37 {
		t.Fatalf("epoch %d, want 37", e)
	}
	if r := RootLineageRank(root); r != 1023 {
		t.Fatalf("rank %d, want 1023", r)
	}
	h := HandlerLineageID(7, 123456)
	if IsRootLineageID(h) {
		t.Fatal("handler id misread as root")
	}
	if r := HandlerLineageRank(h); r != 7 {
		t.Fatalf("handler rank %d, want 7", r)
	}
	if h == 0 || root == 0 {
		t.Fatal("ids must not collide with 0 = none")
	}
	if RootLineageID(0, 0) == HandlerLineageID(0, 1) {
		t.Fatal("root and handler id spaces overlap")
	}
}

// syntheticTrace builds a two-rank, one-epoch trace: rank 0's epoch body
// seeds a chain r0→r1→r0, plus an independent shallow handler on rank 1.
// Timestamps (ns): epoch spans [100, 1000] on both ranks; chain handlers
// a [200,300] r1, b [400,450] r0, c [500,700] r1; shallow d [250,260] r1.
func syntheticTrace() (Meta, []Record, [4]uint64) {
	root := RootLineageID(0, 0)
	a := HandlerLineageID(1, 1)
	b := HandlerLineageID(0, 1)
	c := HandlerLineageID(1, 2)
	d := HandlerLineageID(1, 3)
	meta := Meta{Ranks: 2, Types: []string{"relax"}}
	recs := []Record{
		{Kind: "epoch", TS: 100, Dur: 900, Rank: 0, Arg: 0},
		{Kind: "epoch", TS: 100, Dur: 900, Rank: 1, Arg: 0},
		{Kind: "handler", TS: 200, Dur: 100, Rank: 1, Type: "relax", ID: a, Parent: root},
		{Kind: "handler", TS: 400, Dur: 50, Rank: 0, Type: "relax", ID: b, Parent: a},
		{Kind: "handler", TS: 500, Dur: 200, Rank: 1, Type: "relax", ID: c, Parent: b},
		{Kind: "handler", TS: 250, Dur: 10, Rank: 1, Type: "relax", ID: d, Parent: root},
	}
	return meta, recs, [4]uint64{a, b, c, d}
}

func TestBuildLineageSynthetic(t *testing.T) {
	meta, recs, ids := syntheticTrace()
	a, b, c, d := ids[0], ids[1], ids[2], ids[3]
	l := BuildLineage(meta, recs)
	if !l.Connected() {
		t.Fatalf("orphans = %d, want 0", l.Orphans)
	}
	if l.Handlers() != 4 {
		t.Fatalf("handlers = %d, want 4", l.Handlers())
	}
	wantDepth := map[uint64]int{a: 1, b: 2, c: 3, d: 1}
	for id, want := range wantDepth {
		if got := l.ByID[id].Depth; got != want {
			t.Fatalf("depth(%#x) = %d, want %d", id, got, want)
		}
	}
	e := l.Epoch(0)
	if e == nil || len(e.Nodes) != 4 {
		t.Fatalf("epoch 0 lineage = %+v", e)
	}
	if e.Begin != 100 || e.End != 1000 {
		t.Fatalf("epoch span [%d, %d], want [100, 1000]", e.Begin, e.End)
	}

	cp := l.CriticalPathOf(e)
	if cp == nil {
		t.Fatal("no critical path")
	}
	// Sink is c (End 700); backwalk c→b→a→root.
	if cp.Root != RootLineageID(0, 0) || cp.RootRank != 0 {
		t.Fatalf("path root %#x rank %d", cp.Root, cp.RootRank)
	}
	if len(cp.Hops) != 3 ||
		cp.Hops[0].Node.ID != a || cp.Hops[1].Node.ID != b || cp.Hops[2].Node.ID != c {
		t.Fatalf("hops = %+v", cp.Hops)
	}
	// Waits: a waits from rank 0's epoch begin (100) to 200 = 100;
	// b from a's end (300) to 400 = 100; c from b's end (450) to 500 = 50.
	for i, want := range []int64{100, 100, 50} {
		if cp.Hops[i].Wait != want {
			t.Fatalf("hop %d wait = %d, want %d", i, cp.Hops[i].Wait, want)
		}
	}
	// Execs: 100, 50, 200; tail = 1000 − 700 = 300; span = 900.
	if cp.ExecNs != 350 || cp.WaitNs != 250 || cp.TailNs != 300 || cp.SpanNs != 900 {
		t.Fatalf("decomposition exec=%d wait=%d tail=%d span=%d", cp.ExecNs, cp.WaitNs, cp.TailNs, cp.SpanNs)
	}
	// The decomposition is exhaustive here: 350+250+300 == 900.
	if cp.ExecNs+cp.WaitNs+cp.TailNs != cp.SpanNs {
		t.Fatalf("path does not explain the span")
	}

	if tb := CriticalPathTable(l); tb.Rows() != 1 {
		t.Fatalf("critical-path table rows = %d", tb.Rows())
	}
	if tb := ChainDepthTable(l); tb.Rows() != 3 { // depths 1 (×2), 2, 3
		t.Fatalf("chain-depth table rows = %d", tb.Rows())
	}
	if tb := RankSlackTable(l); tb.Rows() != 2 {
		t.Fatalf("slack table rows = %d", tb.Rows())
	}
	chain := ChainTable(cp, 0).String()
	for _, want := range []string{"relax", "quiescence"} {
		if !strings.Contains(chain, want) {
			t.Fatalf("chain table missing %q:\n%s", want, chain)
		}
	}
	// Eliding works and keeps head and tail.
	elided := ChainTable(cp, 2).String()
	if !strings.Contains(elided, "elided") {
		t.Fatalf("no elision marker:\n%s", elided)
	}
}

func TestBuildLineageOrphans(t *testing.T) {
	meta, recs, ids := syntheticTrace()
	// Drop handler a (ring overwrite): b's parent becomes unresolvable.
	var pruned []Record
	for _, r := range recs {
		if r.ID == ids[0] {
			continue
		}
		pruned = append(pruned, r)
	}
	l := BuildLineage(meta, pruned)
	if l.Connected() || l.Orphans != 1 {
		t.Fatalf("orphans = %d, want 1", l.Orphans)
	}
	b, c := ids[1], ids[2]
	if !l.ByID[b].Orphan || l.ByID[b].Depth != 1 {
		t.Fatalf("orphaned node b = %+v", l.ByID[b])
	}
	if l.ByID[c].Depth != 2 {
		t.Fatalf("depth below orphan = %d, want 2", l.ByID[c].Depth)
	}
	cp := l.CriticalPathOf(l.Epoch(0))
	if cp == nil || !cp.Broken {
		t.Fatalf("critical path through an orphan must be marked broken: %+v", cp)
	}
}

func TestChromeFlowEvents(t *testing.T) {
	meta, recs, ids := syntheticTrace()
	ct := ToChrome(meta, recs)
	slices, starts, finishes := 0, 0, 0
	for _, ev := range ct.TraceEvents {
		switch {
		case ev.Cat == "handler" && ev.Ph == "X":
			slices++
		case ev.Cat == "lineage" && ev.Ph == "s":
			starts++
		case ev.Cat == "lineage" && ev.Ph == "f":
			finishes++
			if ev.BP != "e" {
				t.Fatalf("flow finish without bp=e: %+v", ev)
			}
		}
	}
	if slices != 4 {
		t.Fatalf("handler slices = %d, want 4", slices)
	}
	// Arrows exist only for handler→handler edges (b←a, c←b); root edges
	// have no producing slice to anchor on.
	if starts != 2 || finishes != 2 {
		t.Fatalf("flow events s=%d f=%d, want 2/2", starts, finishes)
	}
	// The binding id pairs s with f and matches the consumer's lineage id.
	for _, want := range []uint64{ids[1], ids[2]} {
		n := 0
		for _, ev := range ct.TraceEvents {
			if ev.Cat == "lineage" && ev.ID == want {
				n++
			}
		}
		if n != 2 {
			t.Fatalf("flow pair for id %#x has %d events", want, n)
		}
	}
}
