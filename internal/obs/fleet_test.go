package obs

// Fleet trace assembly tests: offset alignment, multi-part merge, directory
// reading, the incremental ring cursor, and the Chrome exporter's
// multi-process output.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAlignRecords(t *testing.T) {
	recs := []Record{{Kind: "phase", TS: 100, Rank: 1}, {Kind: "epoch", TS: 200, Rank: 2}}
	out := AlignRecords(recs, 3, 1_000)
	for i, r := range out {
		if r.W != 3 {
			t.Fatalf("record %d worker %d, want 3", i, r.W)
		}
	}
	if out[0].TS != 1_100 || out[1].TS != 1_200 {
		t.Fatalf("timestamps not shifted: %d, %d", out[0].TS, out[1].TS)
	}
}

func TestMergeTraces(t *testing.T) {
	parts := []TracePart{
		{
			Meta: Meta{Label: "fleet", Ranks: 2, Types: []string{"a", "b"}, Dropped: 1,
				Worker: 0, ClockOffsetNS: 0, ClockErrNS: 50},
			Records: []Record{{Kind: "phase", TS: 500, Rank: 0}},
		},
		{
			Meta: Meta{Ranks: 2, Types: []string{"b", "c"}, Dropped: 2,
				Worker: 1, ClockOffsetNS: -400, ClockErrNS: 90},
			Records: []Record{{Kind: "phase", TS: 700, Rank: 3}},
		},
	}
	meta, recs := MergeTraces(parts)
	if meta.Label != "fleet" || meta.Dropped != 3 || meta.ClockErrNS != 90 {
		t.Fatalf("merged meta: %+v", meta)
	}
	if len(meta.Types) != 3 {
		t.Fatalf("type union: %v", meta.Types)
	}
	if meta.Ranks != 4 {
		t.Fatalf("ranks %d, want 4 (inferred from worker 1's rank 3)", meta.Ranks)
	}
	if len(recs) != 2 {
		t.Fatalf("merged %d records", len(recs))
	}
	// Worker 1's record lands at 700-400=300 < 500, so it sorts first.
	if recs[0].W != 1 || recs[0].TS != 300 {
		t.Fatalf("first record %+v, want worker 1 at TS 300", recs[0])
	}
	if recs[1].W != 0 || recs[1].TS != 500 {
		t.Fatalf("second record %+v, want worker 0 at TS 500", recs[1])
	}
}

func writeWorkerTrace(t *testing.T, dir string, name string, meta Meta, recs []Record) {
	t.Helper()
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := WriteJSONL(f, meta, recs); err != nil {
		t.Fatal(err)
	}
}

func TestReadTraceDirMergesWorkers(t *testing.T) {
	dir := t.TempDir()
	writeWorkerTrace(t, dir, "worker-0.trace.jsonl",
		Meta{Label: "mp-worker-0", Ranks: 4, Worker: 0, ClockOffsetNS: 0},
		[]Record{{Kind: "phase", TS: 10, Rank: 0}})
	writeWorkerTrace(t, dir, "worker-1.trace.jsonl",
		Meta{Label: "mp-worker-1", Ranks: 4, Worker: 1, ClockOffsetNS: 5_000},
		[]Record{{Kind: "phase", TS: 10, Rank: 2}})
	meta, recs, err := ReadTraceDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || meta.Ranks != 4 {
		t.Fatalf("merged %d records, %d ranks", len(recs), meta.Ranks)
	}
	if recs[1].W != 1 || recs[1].TS != 5_010 {
		t.Fatalf("worker 1's record not offset-corrected: %+v", recs[1])
	}
}

func TestReadTraceDirPrefersFleetFile(t *testing.T) {
	dir := t.TempDir()
	writeWorkerTrace(t, dir, "worker-0.trace.jsonl",
		Meta{Label: "mp-worker-0", Ranks: 2}, []Record{{Kind: "phase", TS: 1, Rank: 0}})
	writeWorkerTrace(t, dir, "fleet.trace.jsonl",
		Meta{Label: "mp-fleet", Ranks: 2},
		[]Record{{Kind: "phase", TS: 1, Rank: 0}, {Kind: "phase", TS: 2, Rank: 1, W: 1}})
	meta, recs, err := ReadTraceDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Label != "mp-fleet" || len(recs) != 2 {
		t.Fatalf("got %q with %d records, want the coordinator's fleet merge", meta.Label, len(recs))
	}
}

func TestReadTraceDirEmpty(t *testing.T) {
	if _, _, err := ReadTraceDir(t.TempDir()); err == nil {
		t.Fatal("empty directory accepted")
	}
}

func TestRingsShardSince(t *testing.T) {
	r := NewRings[int](1, 4)
	for i := 0; i < 3; i++ {
		r.Append(0, i)
	}
	out, cur := r.ShardSince(0, 0)
	if len(out) != 3 || out[0] != 0 || out[2] != 2 || cur != 3 {
		t.Fatalf("first poll: %v cur=%d", out, cur)
	}
	// Nothing new: empty batch, cursor unchanged.
	out, cur = r.ShardSince(0, cur)
	if len(out) != 0 || cur != 3 {
		t.Fatalf("idle poll: %v cur=%d", out, cur)
	}
	// Overflow the ring: events 3..9 appended, ring holds 6..9; the cursor at
	// 3 clamps to the oldest retained (6) — the flusher observes the gap.
	for i := 3; i < 10; i++ {
		r.Append(0, i)
	}
	out, cur = r.ShardSince(0, cur)
	if len(out) != 4 || out[0] != 6 || out[3] != 9 || cur != 10 {
		t.Fatalf("post-wrap poll: %v cur=%d, want 6..9 cur=10", out, cur)
	}
}

// TestToChromeFleet pins the multi-process Chrome export: records from
// different workers land in different Perfetto process groups, with process
// metadata naming each worker.
func TestToChromeFleet(t *testing.T) {
	meta := Meta{Label: "fleet", Ranks: 4}
	recs := []Record{
		{Kind: "phase", Type: "kernel", TS: 100, Dur: 10, Rank: 0, W: 0},
		{Kind: "phase", Type: "kernel", TS: 105, Dur: 12, Rank: 2, W: 1},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, meta, recs); err != nil {
		t.Fatal(err)
	}
	var trace ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome export does not parse: %v", err)
	}
	pids := map[int]bool{}
	procNames := 0
	for _, ev := range trace.TraceEvents {
		pids[ev.PID] = true
		if ev.Name == "process_name" {
			procNames++
			name, _ := ev.Args["name"].(string)
			if !strings.Contains(name, "worker") {
				t.Fatalf("process_name does not name the worker: %q", name)
			}
		}
	}
	if !pids[1] || !pids[2] {
		t.Fatalf("fleet export pids %v, want workers on pids 1 and 2", pids)
	}
	if procNames != 2 {
		t.Fatalf("%d process_name metadata events, want 2", procNames)
	}
}

// TestToChromeSingleProcessUnchanged pins backward compatibility: without
// worker stamps every event stays in the legacy single process (pid 1).
func TestToChromeSingleProcessUnchanged(t *testing.T) {
	meta := Meta{Label: "solo", Ranks: 2}
	recs := []Record{{Kind: "phase", Type: "kernel", TS: 100, Dur: 10, Rank: 1}}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, meta, recs); err != nil {
		t.Fatal(err)
	}
	var trace ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatal(err)
	}
	for _, ev := range trace.TraceEvents {
		if ev.PID != 1 {
			t.Fatalf("single-process export used pid %d: %+v", ev.PID, ev)
		}
	}
}
