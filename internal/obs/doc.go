// Package obs is the substrate-wide observability layer: per-shard (per-rank)
// metrics primitives and timestamped event tracing, with exporters for the
// Chrome trace-event format (loadable in Perfetto / chrome://tracing) and a
// JSONL interchange format consumed by cmd/declpat-trace.
//
// The package knows nothing about the active-message substrate; internal/am
// wires its counters, gauges, histograms, and trace rings through the
// primitives here. Design goals, in order:
//
//   - Write-path scalability. Every mutable slot is sharded (one shard per
//     rank) and padded to a cache line, so handler threads on different ranks
//     never contend on a shared cache line — the single shared Stats block of
//     atomics this package replaced was the one substrate-wide hot spot.
//     Reads aggregate over shards and are assumed rare (snapshots between
//     epochs, experiment tables, expvar scrapes).
//
//   - Race-freedom by construction. Trace rings are per-shard and
//     mutex-guarded: concurrent recorders on the same rank serialize briefly
//     against each other (never across ranks), and a reader never observes a
//     torn event. The previous design — one global ring indexed through one
//     atomic counter — allowed torn reads by documented caveat.
//
//   - Zero interpretation. Events carry monotonic nanosecond timestamps and
//     optional durations; everything else (epoch pairing, percentiles, load
//     imbalance) is derived at export/analysis time.
package obs
