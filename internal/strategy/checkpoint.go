package strategy

import "declpat/internal/distgraph"

// Epoch-granular checkpoint/restart support (am.Checkpointer). The Δ-stepping
// strategies auto-register their bucket structures at construction, so a
// fault inside a per-bucket epoch rolls the buckets back together with the
// property maps and the epoch replays from the same frontier.
//
// Snapshots are taken at epoch boundaries, i.e. before the body's
// BeginBucket call: the boundary state always has no active bucket (cur ==
// -1) and an empty deferred-work ledger (counted), so only the bucket
// contents themselves need copying. DeltaLightHeavy's per-bucket settled set
// is deliberately not checkpointed: a replayed light phase repopulates it,
// and any extra vertices retained from an aborted attempt only cause
// redundant heavy relaxations, which are monotone-min and therefore
// harmless.

// bucketsSnap is one bucket structure's epoch-boundary snapshot.
type bucketsSnap struct {
	items map[int][]distgraph.Vertex
}

func copyItems(items map[int][]distgraph.Vertex) map[int][]distgraph.Vertex {
	cp := make(map[int][]distgraph.Vertex, len(items))
	for idx, s := range items {
		if len(s) == 0 {
			continue
		}
		cp[idx] = append([]distgraph.Vertex(nil), s...)
	}
	return cp
}

// snapshot deep-copies the bucket contents. Called at an epoch boundary
// (no active bucket).
func (b *Buckets) snapshot() *bucketsSnap {
	b.mu.Lock()
	defer b.mu.Unlock()
	return &bucketsSnap{items: copyItems(b.items)}
}

// restore rebuilds the bucket contents from a snapshot, deactivating any
// bucket the aborted attempt had begun. The snapshot is cloned again, so one
// snapshot can seed several replays.
func (b *Buckets) restore(s *bucketsSnap) {
	b.mu.Lock()
	b.items = copyItems(s.items)
	b.cur = -1
	for i := range b.counted {
		delete(b.counted, i)
	}
	b.mu.Unlock()
}

// SnapshotRank checkpoints rank's bucket structure (am.Checkpointer). Nil
// before the strategy's Run has installed it — epochs run before Δ-stepping
// starts have no bucket state to save.
func (d *Delta) SnapshotRank(rank int) any {
	if b := d.buckets[rank]; b != nil {
		return b.snapshot()
	}
	return nil
}

// RestoreRank rolls rank's bucket structure back (am.Checkpointer).
func (d *Delta) RestoreRank(rank int, snap any) {
	if snap == nil {
		return
	}
	d.buckets[rank].restore(snap.(*bucketsSnap))
}

// SnapshotRank checkpoints rank's bucket structure (am.Checkpointer).
func (d *DeltaLightHeavy) SnapshotRank(rank int) any {
	if b := d.buckets[rank]; b != nil {
		return b.snapshot()
	}
	return nil
}

// RestoreRank rolls rank's bucket structure back (am.Checkpointer).
func (d *DeltaLightHeavy) RestoreRank(rank int, snap any) {
	if snap == nil {
		return
	}
	d.buckets[rank].restore(snap.(*bucketsSnap))
}

// SnapshotRank checkpoints rank's per-thread bucket structures
// (am.Checkpointer).
func (d *DeltaDistributed) SnapshotRank(rank int) any {
	locals := d.buckets[rank]
	if locals == nil {
		return nil
	}
	snaps := make([]*bucketsSnap, len(locals))
	for t, lb := range locals {
		snaps[t] = lb.snapshot()
	}
	return snaps
}

// RestoreRank rolls rank's per-thread bucket structures back
// (am.Checkpointer).
func (d *DeltaDistributed) RestoreRank(rank int, snap any) {
	if snap == nil {
		return
	}
	for t, s := range snap.([]*bucketsSnap) {
		d.buckets[rank][t].restore(s)
	}
}
