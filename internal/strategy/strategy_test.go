package strategy_test

import (
	"testing"
	"testing/quick"

	"declpat/internal/am"
	"declpat/internal/distgraph"
	"declpat/internal/gen"
	"declpat/internal/pattern"
	"declpat/internal/pmap"
	"declpat/internal/seq"
	"declpat/internal/strategy"
)

// ssspPattern is the paper's Fig. 2 pattern.
func ssspPattern() *pattern.Pattern {
	p := pattern.New("SSSP")
	dist := p.VertexProp("dist")
	weight := p.EdgeProp("weight")
	relax := p.Action("relax", pattern.OutEdges())
	d := pattern.Add(dist.At(pattern.V()), weight.At(pattern.E()))
	relax.If(pattern.Lt(d, dist.At(pattern.Trg()))).Set(dist.At(pattern.Trg()), d)
	return p
}

type ssspRig struct {
	u     *am.Universe
	g     *distgraph.Graph
	dmap  *pmap.VertexWord
	relax *pattern.BoundAction
}

func newSSSPRig(cfg am.Config, n int, edges []distgraph.Edge) *ssspRig {
	u := am.NewUniverse(cfg)
	dist := distgraph.NewBlockDist(n, cfg.Ranks)
	g := distgraph.Build(dist, edges, distgraph.Options{})
	lm := pmap.NewLockMap(dist, 1)
	eng := pattern.NewEngine(u, g, lm, pattern.DefaultPlanOptions())
	dmap := pmap.NewVertexWord(dist, pattern.Inf)
	bound, err := eng.Bind(ssspPattern(), pattern.Bindings{"dist": dmap, "weight": pmap.WeightMap(g)})
	if err != nil {
		panic(err)
	}
	return &ssspRig{u: u, g: g, dmap: dmap, relax: bound.Action("relax")}
}

func (rig *ssspRig) check(t *testing.T, want []int64, label string) {
	t.Helper()
	got := rig.dmap.Gather()
	for v := range want {
		w := want[v]
		if w == seq.Inf {
			w = pattern.Inf
		}
		if got[v] != w {
			t.Fatalf("%s: dist[%d] = %d, want %d", label, v, got[v], w)
		}
	}
}

func seedBody(rig *ssspRig, src distgraph.Vertex) func(r *am.Rank) []distgraph.Vertex {
	return func(r *am.Rank) []distgraph.Vertex {
		if rig.g.Owner(src) == r.ID() {
			rig.dmap.Set(r.ID(), src, 0)
			return []distgraph.Vertex{src}
		}
		return nil
	}
}

func TestFixedPointSSSP(t *testing.T) {
	n, edges := gen.RMAT(8, 8, gen.Weights{Min: 1, Max: 40}, 21)
	want := seq.Dijkstra(n, edges, 0)
	for _, cfg := range []am.Config{
		{Ranks: 1, ThreadsPerRank: 0},
		{Ranks: 4, ThreadsPerRank: 2},
		{Ranks: 2, ThreadsPerRank: 1, Detector: am.DetectorFourCounter},
	} {
		rig := newSSSPRig(cfg, n, edges)
		fp := strategy.NewFixedPoint(rig.relax)
		seeds := seedBody(rig, 0)
		rig.u.Run(func(r *am.Rank) {
			s := seeds(r)
			r.Barrier()
			fp.Run(r, s)
		})
		rig.check(t, want, "fixed_point")
	}
}

func TestDeltaSSSP(t *testing.T) {
	n, edges := gen.RMAT(8, 8, gen.Weights{Min: 1, Max: 40}, 33)
	want := seq.Dijkstra(n, edges, 0)
	for _, delta := range []int64{1, 5, 25, 1000000} {
		for _, cfg := range []am.Config{
			{Ranks: 1, ThreadsPerRank: 1},
			{Ranks: 3, ThreadsPerRank: 2},
		} {
			rig := newSSSPRig(cfg, n, edges)
			d := strategy.NewDelta(rig.u, rig.relax, rig.dmap, delta)
			seeds := seedBody(rig, 0)
			rig.u.Run(func(r *am.Rank) {
				s := seeds(r)
				r.Barrier()
				d.Run(r, s)
			})
			rig.check(t, want, "delta")
			if delta == 1 && d.BucketEpochs < 2 {
				t.Errorf("delta=1: expected multiple bucket epochs, got %d", d.BucketEpochs)
			}
			if delta == 1000000 && d.BucketEpochs != 1 {
				t.Errorf("delta=inf: expected a single bucket epoch, got %d", d.BucketEpochs)
			}
		}
	}
}

func TestDeltaDistributedSSSP(t *testing.T) {
	n, edges := gen.RMAT(8, 8, gen.Weights{Min: 1, Max: 40}, 44)
	want := seq.Dijkstra(n, edges, 0)
	for _, det := range []am.DetectorKind{am.DetectorAtomic, am.DetectorFourCounter} {
		cfg := am.Config{Ranks: 2, ThreadsPerRank: 2, Detector: det}
		rig := newSSSPRig(cfg, n, edges)
		dd := strategy.NewDeltaDistributed(rig.u, rig.relax, rig.dmap, 20, 3)
		seeds := seedBody(rig, 0)
		rig.u.Run(func(r *am.Rank) {
			s := seeds(r)
			r.Barrier()
			dd.Run(r, s)
		})
		rig.check(t, want, "delta-distributed/"+det.String())
	}
}

func TestOnceReachesFixedPoint(t *testing.T) {
	// cap action: if x > 0 then x = x - 1; Once returns true while any
	// vertex still decrements.
	const n = 12
	u := am.NewUniverse(am.Config{Ranks: 3, ThreadsPerRank: 1})
	dist := distgraph.NewBlockDist(n, 3)
	g := distgraph.Build(dist, gen.Path(n, gen.Weights{}, 0), distgraph.Options{})
	eng := pattern.NewEngine(u, g, pmap.NewLockMap(dist, 1), pattern.DefaultPlanOptions())

	p := pattern.New("Dec")
	x := p.VertexProp("x")
	a := p.Action("dec", pattern.None())
	a.If(pattern.Gt(x.At(pattern.V()), pattern.C(0))).
		Set(x.At(pattern.V()), pattern.Sub(x.At(pattern.V()), pattern.C(1)))
	xmap := pmap.NewVertexWord(dist, 0)
	bound, err := eng.Bind(p, pattern.Bindings{"x": xmap})
	if err != nil {
		t.Fatal(err)
	}
	dec := bound.Action("dec")

	rounds := make([]int, 3)
	u.Run(func(r *am.Rank) {
		// x[v] = v % 4: needs exactly 3 rounds to reach zero, plus one
		// round to observe the fixed point.
		xmap.ForEachLocal(r.ID(), func(v distgraph.Vertex, _ int64) {
			xmap.Set(r.ID(), v, int64(v)%4)
		})
		r.Barrier()
		var locals []distgraph.Vertex
		lg := g.Local(r.ID())
		for li := 0; li < lg.NumLocal(); li++ {
			locals = append(locals, g.Dist().Global(r.ID(), li))
		}
		n := 0
		for strategy.Once(r, dec, locals) {
			n++
			if n > 10 {
				t.Errorf("once did not converge")
				break
			}
		}
		rounds[r.ID()] = n
	})
	for r, n := range rounds {
		if n != 3 {
			t.Fatalf("rank %d: %d decrement rounds, want 3", r, n)
		}
	}
	for v, xv := range xmap.Gather() {
		if xv != 0 {
			t.Fatalf("x[%d]=%d", v, xv)
		}
	}
}

func TestBucketsBasics(t *testing.T) {
	u := am.NewUniverse(am.Config{Ranks: 1})
	u.Run(func(r *am.Rank) {
		b := strategy.NewBuckets(r, 10)
		if b.MinNonEmpty() != strategy.NoBucket {
			t.Error("fresh buckets should be empty")
		}
		b.Insert(1, 5)   // bucket 0
		b.Insert(2, 15)  // bucket 1
		b.Insert(3, 105) // bucket 10
		b.Insert(4, 0)   // bucket 0
		if b.MinNonEmpty() != 0 {
			t.Errorf("min = %d", b.MinNonEmpty())
		}
		if b.Len(0) != 2 || b.Len(1) != 1 || b.Len(10) != 1 {
			t.Errorf("lens: %d %d %d", b.Len(0), b.Len(1), b.Len(10))
		}
		seen := map[distgraph.Vertex]bool{}
		for {
			v, ok := b.Pop(0)
			if !ok {
				break
			}
			seen[v] = true
		}
		if !seen[1] || !seen[4] || len(seen) != 2 {
			t.Errorf("popped %v", seen)
		}
		if b.MinNonEmpty() != 1 {
			t.Errorf("min after drain = %d", b.MinNonEmpty())
		}
		if b.Index(-3) != 0 {
			t.Error("negative keys clamp to bucket 0")
		}
	})
}

// lhPattern builds the light/heavy pattern pair directly (mirroring
// algorithms.SSSPLightHeavyPattern) for strategy-level testing.
func lhPattern(delta int64) *pattern.Pattern {
	p := pattern.New("LH")
	dist := p.VertexProp("dist")
	weight := p.EdgeProp("weight")
	mk := func(name string, guard pattern.Expr) {
		a := p.Action(name, pattern.OutEdges())
		d := pattern.Add(dist.At(pattern.V()), weight.At(pattern.E()))
		a.If(pattern.And(guard, pattern.Lt(d, dist.At(pattern.Trg())))).
			Set(dist.At(pattern.Trg()), d)
	}
	mk("light", pattern.Lt(weight.At(pattern.E()), pattern.C(delta)))
	mk("heavy", pattern.Ge(weight.At(pattern.E()), pattern.C(delta)))
	return p
}

func TestDeltaLightHeavyStrategy(t *testing.T) {
	n, edges := gen.RMAT(8, 8, gen.Weights{Min: 1, Max: 80}, 55)
	want := seq.Dijkstra(n, edges, 0)
	const delta = 20
	u := am.NewUniverse(am.Config{Ranks: 3, ThreadsPerRank: 2})
	d := distgraph.NewBlockDist(n, 3)
	g := distgraph.Build(d, edges, distgraph.Options{})
	eng := pattern.NewEngine(u, g, pmap.NewLockMap(d, 1), pattern.DefaultPlanOptions())
	dmap := pmap.NewVertexWord(d, pattern.Inf)
	bound, err := eng.Bind(lhPattern(delta), pattern.Bindings{"dist": dmap, "weight": pmap.WeightMap(g)})
	if err != nil {
		t.Fatal(err)
	}
	lh := strategy.NewDeltaLightHeavy(u, bound.Action("light"), bound.Action("heavy"), dmap, delta)
	u.Run(func(r *am.Rank) {
		var seeds []distgraph.Vertex
		if g.Owner(0) == r.ID() {
			dmap.Set(r.ID(), 0, 0)
			seeds = []distgraph.Vertex{0}
		}
		r.Barrier()
		lh.Run(r, seeds)
	})
	got := dmap.Gather()
	for v := range want {
		w := want[v]
		if w == seq.Inf {
			w = pattern.Inf
		}
		if got[v] != w {
			t.Fatalf("dist[%d]=%d want %d", v, got[v], w)
		}
	}
	if lh.BucketEpochs < 2 {
		t.Fatalf("bucket epochs = %d", lh.BucketEpochs)
	}
}

// Property: pops return exactly the inserted multiset per bucket, across
// random insert/pop interleavings.
func TestBucketsQuick(t *testing.T) {
	u := am.NewUniverse(am.Config{Ranks: 1})
	u.Run(func(r *am.Rank) {
		f := func(keys []uint16) bool {
			b := strategy.NewBuckets(r, 7)
			want := map[int]int{}
			for i, k := range keys {
				b.Insert(distgraph.Vertex(i), int64(k))
				want[int(int64(k)/7)]++
			}
			for idx, n := range want {
				if b.Len(idx) != n {
					return false
				}
				for i := 0; i < n; i++ {
					if _, ok := b.Pop(idx); !ok {
						return false
					}
				}
				if _, ok := b.Pop(idx); ok {
					return false
				}
			}
			return b.MinNonEmpty() == strategy.NoBucket
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Error(err)
		}
	})
}

// Property-style check: Δ-stepping with any Δ equals Dijkstra on several
// random graphs.
func TestDeltaSweepAgainstDijkstra(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		edges := gen.ER(64, 400, gen.Weights{Min: 1, Max: 9}, seed)
		want := seq.Dijkstra(64, edges, 0)
		for _, delta := range []int64{1, 3, 9, 100} {
			rig := newSSSPRig(am.Config{Ranks: 2, ThreadsPerRank: 1}, 64, edges)
			d := strategy.NewDelta(rig.u, rig.relax, rig.dmap, delta)
			seeds := seedBody(rig, 0)
			rig.u.Run(func(r *am.Rank) {
				s := seeds(r)
				r.Barrier()
				d.Run(r, s)
			})
			rig.check(t, want, "sweep")
		}
	}
}
